package fastcap

import (
	"bytes"
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/stats"
)

// The facade integration test: exercise the public API end to end the
// way the README quick start does.
func TestPublicAPIQuickstart(t *testing.T) {
	mix, err := WorkloadByName("MIX3")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ExperimentConfig{
		Sim:        DefaultSystemConfig(8),
		Mix:        mix,
		BudgetFrac: 0.60,
		Epochs:     8,
		Policy:     NewFastCapPolicy(),
	}
	cfg.Sim.EpochNs = 1e6
	cfg.Sim.ProfileNs = 1e5
	res, base, err := RunExperimentPair(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgPowerW() > res.BudgetW*1.05 {
		t.Errorf("average power %g W above budget %g W", res.AvgPowerW(), res.BudgetW)
	}
	norm, err := res.NormalizedPerf(base)
	if err != nil {
		t.Fatal(err)
	}
	s := stats.SummarizePerf(norm)
	if s.Worst > s.Avg*1.3 {
		t.Errorf("fairness gap: worst %g vs avg %g", s.Worst, s.Avg)
	}
}

func TestPublicAPILadders(t *testing.T) {
	core, mem := DefaultCoreLadder(), DefaultMemLadder()
	if core.Len() != 10 || mem.Len() != 10 {
		t.Errorf("ladders: %d core, %d mem steps", core.Len(), mem.Len())
	}
	sb := SbCandidatesFromLadder(5.0, mem)
	if len(sb) != 10 || math.Abs(sb[0]-5.0) > 1e-9 {
		t.Errorf("candidates: %v", sb)
	}
}

func TestPublicAPIWorkloads(t *testing.T) {
	if got := len(Workloads()); got != 16 {
		t.Fatalf("got %d workloads", got)
	}
	spec, err := WorkloadByName("MEM1")
	if err != nil {
		t.Fatal(err)
	}
	wl, err := InstantiateWorkload(spec, 16)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wl.MeanMPKI()-18.22) > 1e-9 {
		t.Errorf("MEM1 MPKI = %g", wl.MeanMPKI())
	}
	if _, err := WorkloadByName("bogus"); err == nil {
		t.Error("bogus workload accepted")
	}
}

func TestPublicAPIAllPolicyConstructors(t *testing.T) {
	pols := []Policy{
		NewFastCapPolicy(),
		NewCPUOnlyPolicy(),
		NewFreqParPolicy(),
		NewEqlPwrPolicy(),
		NewEqlFreqPolicy(),
		NewMaxBIPSPolicy(),
		NewGreedyPolicy(),
	}
	names := map[string]bool{}
	for _, p := range pols {
		if p == nil || p.Name() == "" {
			t.Fatalf("bad policy %v", p)
		}
		if names[p.Name()] {
			t.Errorf("duplicate policy name %q", p.Name())
		}
		names[p.Name()] = true
	}
}

func TestPublicAPISystem(t *testing.T) {
	spec, err := WorkloadByName("ILP2")
	if err != nil {
		t.Fatal(err)
	}
	wl, err := InstantiateWorkload(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSystemConfig(4)
	cfg.EpochNs = 5e5
	cfg.ProfileNs = 5e4
	sys, err := NewSystem(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if sys.PeakPowerW() <= 0 {
		t.Error("no peak power")
	}
	sys.Start()
	prof := sys.RunProfile()
	if len(prof.Cores) != 4 {
		t.Errorf("profile has %d cores", len(prof.Cores))
	}
}

func TestPublicAPILab(t *testing.T) {
	lab := NewLab(LabOptions{Cores: 4, Epochs: 3, EpochNs: 2e5, MixesPerClass: 1})
	bars, err := lab.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(bars) != 16 {
		t.Errorf("Fig3 returned %d bars", len(bars))
	}
}

// The streaming session facade: step-wise run with observer, mid-run
// retargeting, and batch equivalence.
func TestPublicAPISession(t *testing.T) {
	mix, err := WorkloadByName("MIX3")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ExperimentConfig{
		Sim:        DefaultSystemConfig(8),
		Mix:        mix,
		BudgetFrac: 0.60,
		Epochs:     8,
		Policy:     NewFastCapPolicy(),
	}
	cfg.Sim.EpochNs = 1e6
	cfg.Sim.ProfileNs = 1e5

	var streamed int
	ses, err := NewSession(cfg, WithObserver(func(e EpochRecord) { streamed++ }))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := ses.Step(context.Background()); err != nil {
			if errors.Is(err, ErrSessionDone) {
				break
			}
			t.Fatal(err)
		}
	}
	res := ses.Result()
	if streamed != cfg.Epochs || len(res.Epochs) != cfg.Epochs {
		t.Fatalf("streamed %d epochs, recorded %d, want %d", streamed, len(res.Epochs), cfg.Epochs)
	}

	cfg.Policy = NewFastCapPolicy()
	batch, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch, res) {
		t.Error("session loop and RunExperiment diverged")
	}

	bad := cfg
	bad.Epochs = 0
	if _, err := NewSession(bad); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("invalid config error %v, want ErrInvalidConfig", err)
	}
}

// Record a run through the facade, replay it, and get the same result.
func TestPublicAPIRecordReplay(t *testing.T) {
	mix, err := WorkloadByName("MID2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ExperimentConfig{
		Sim:        DefaultSystemConfig(4),
		Mix:        mix,
		BudgetFrac: 0.60,
		Epochs:     4,
		Policy:     NewFastCapPolicy(),
	}
	cfg.Sim.EpochNs = 5e5
	cfg.Sim.ProfileNs = 5e4

	wl, err := InstantiateWorkload(mix, cfg.Sim.Cores)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(cfg.Sim, wl)
	if err != nil {
		t.Fatal(err)
	}
	recorder := NewRecorder(sys)
	ses, err := NewSession(cfg, WithPlatform(recorder))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := ses.Step(context.Background()); err != nil {
			if !errors.Is(err, ErrSessionDone) {
				t.Fatal(err)
			}
			break
		}
	}
	live := ses.Result()

	var buf bytes.Buffer
	if err := recorder.Recording().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rec, err := ReadRecording(&buf)
	if err != nil {
		t.Fatal(err)
	}
	plat, err := NewReplayPlatform(rec)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = NewFastCapPolicy()
	ses, err = NewSession(cfg, WithPlatform(plat))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := ses.Step(context.Background()); err != nil {
			if !errors.Is(err, ErrSessionDone) {
				t.Fatal(err)
			}
			break
		}
	}
	if !reflect.DeepEqual(live, ses.Result()) {
		t.Error("replayed session diverged from the recorded live run")
	}
}

// The serving surface: a SessionManager multiplexes sessions whose
// streamed records and results match solo runs, over the re-exported
// types and the HTTP handler.
func TestPublicAPIServingLayer(t *testing.T) {
	m := NewSessionManager(ServeOptions{Workers: 2})
	defer m.Shutdown(context.Background())
	if h := NewServeHandler(m); h == nil {
		t.Fatal("nil HTTP handler")
	}

	req := SessionRequest{Mix: "MIX3", BudgetFrac: 0.6, Cores: 4, Epochs: 4, EpochMs: 0.5}
	st, err := m.Create(req)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []EpochRecord
	for cursor := 0; ; cursor++ {
		rec, err := m.Next(context.Background(), st.ID, cursor)
		if err != nil {
			break
		}
		streamed = append(streamed, rec)
	}
	res, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}

	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	solo, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, solo) {
		t.Error("served result diverged from the solo run")
	}
	if !reflect.DeepEqual(streamed, solo.Epochs) {
		t.Error("served stream diverged from the solo run's epochs")
	}

	if _, err := m.Status("nope"); !errors.Is(err, ErrSessionNotFound) {
		t.Errorf("unknown id: %v, want ErrSessionNotFound", err)
	}
	if _, err := m.Create(SessionRequest{Mix: "NOPE", BudgetFrac: 0.6}); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("bad mix: %v, want ErrInvalidConfig", err)
	}
}
