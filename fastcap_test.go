package fastcap

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// The facade integration test: exercise the public API end to end the
// way the README quick start does.
func TestPublicAPIQuickstart(t *testing.T) {
	mix, err := WorkloadByName("MIX3")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ExperimentConfig{
		Sim:        DefaultSystemConfig(8),
		Mix:        mix,
		BudgetFrac: 0.60,
		Epochs:     8,
		Policy:     NewFastCapPolicy(),
	}
	cfg.Sim.EpochNs = 1e6
	cfg.Sim.ProfileNs = 1e5
	res, base, err := RunExperimentPair(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgPowerW() > res.BudgetW*1.05 {
		t.Errorf("average power %g W above budget %g W", res.AvgPowerW(), res.BudgetW)
	}
	norm, err := res.NormalizedPerf(base)
	if err != nil {
		t.Fatal(err)
	}
	s := stats.SummarizePerf(norm)
	if s.Worst > s.Avg*1.3 {
		t.Errorf("fairness gap: worst %g vs avg %g", s.Worst, s.Avg)
	}
}

func TestPublicAPILadders(t *testing.T) {
	core, mem := DefaultCoreLadder(), DefaultMemLadder()
	if core.Len() != 10 || mem.Len() != 10 {
		t.Errorf("ladders: %d core, %d mem steps", core.Len(), mem.Len())
	}
	sb := SbCandidatesFromLadder(5.0, mem)
	if len(sb) != 10 || math.Abs(sb[0]-5.0) > 1e-9 {
		t.Errorf("candidates: %v", sb)
	}
}

func TestPublicAPIWorkloads(t *testing.T) {
	if got := len(Workloads()); got != 16 {
		t.Fatalf("got %d workloads", got)
	}
	spec, err := WorkloadByName("MEM1")
	if err != nil {
		t.Fatal(err)
	}
	wl, err := InstantiateWorkload(spec, 16)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wl.MeanMPKI()-18.22) > 1e-9 {
		t.Errorf("MEM1 MPKI = %g", wl.MeanMPKI())
	}
	if _, err := WorkloadByName("bogus"); err == nil {
		t.Error("bogus workload accepted")
	}
}

func TestPublicAPIAllPolicyConstructors(t *testing.T) {
	pols := []Policy{
		NewFastCapPolicy(),
		NewCPUOnlyPolicy(),
		NewFreqParPolicy(),
		NewEqlPwrPolicy(),
		NewEqlFreqPolicy(),
		NewMaxBIPSPolicy(),
		NewGreedyPolicy(),
	}
	names := map[string]bool{}
	for _, p := range pols {
		if p == nil || p.Name() == "" {
			t.Fatalf("bad policy %v", p)
		}
		if names[p.Name()] {
			t.Errorf("duplicate policy name %q", p.Name())
		}
		names[p.Name()] = true
	}
}

func TestPublicAPISystem(t *testing.T) {
	spec, err := WorkloadByName("ILP2")
	if err != nil {
		t.Fatal(err)
	}
	wl, err := InstantiateWorkload(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSystemConfig(4)
	cfg.EpochNs = 5e5
	cfg.ProfileNs = 5e4
	sys, err := NewSystem(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if sys.PeakPowerW() <= 0 {
		t.Error("no peak power")
	}
	sys.Start()
	prof := sys.RunProfile()
	if len(prof.Cores) != 4 {
		t.Errorf("profile has %d cores", len(prof.Cores))
	}
}

func TestPublicAPILab(t *testing.T) {
	lab := NewLab(LabOptions{Cores: 4, Epochs: 3, EpochNs: 2e5, MixesPerClass: 1})
	bars, err := lab.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(bars) != 16 {
		t.Errorf("Fig3 returned %d bars", len(bars))
	}
}
