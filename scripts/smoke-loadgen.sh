#!/usr/bin/env sh
# smoke-loadgen.sh — boot fastcapd and drive it with fastcap-loadgen:
# 16 concurrent closed-loop session lifecycles plus 2 cluster-group
# workers, then assert the report is clean (zero errors), made forward
# progress (nonzero epochs/sec), and carries latency percentiles. This
# is the capacity harness's own smoke test: if it fails, the bench.sh
# capacity rows cannot be trusted either.
#
# Usage: scripts/smoke-loadgen.sh [port]
set -eu

PORT="${1:-8361}"
BASE="http://127.0.0.1:$PORT"

cd "$(dirname "$0")/.."
go build -o /tmp/fastcapd-lg ./cmd/fastcapd
go build -o /tmp/fastcap-loadgen ./cmd/fastcap-loadgen

/tmp/fastcapd-lg -addr "127.0.0.1:$PORT" -max-sessions 64 &
PID=$!
cleanup() { kill "$PID" 2>/dev/null || true; }
trap cleanup EXIT

i=0
until curl -fs "$BASE/readyz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 50 ] || { echo "FAIL: fastcapd never became ready"; exit 1; }
    sleep 0.2
done

REPORT=$(/tmp/fastcap-loadgen -base "$BASE" -sessions 16 -clusters 2 \
    -lifecycles 2 -epochs 10 -epoch-ms 0.5) \
    || { echo "FAIL: loadgen reported errors: $REPORT"; exit 1; }
echo "$REPORT"

check() { # check <description> <grep pattern>
    printf '%s' "$REPORT" | grep -q "$2" || { echo "FAIL: $1"; exit 1; }
}
check "lifecycles failed"        '"errors":0'
check "no lifecycles completed"  '"lifecycles":36'
check "no epoch throughput"      '"epochs_per_sec":[1-9]'
check "create percentiles missing"   '"create":{"n":36,"p50_ms":'
check "retarget percentiles missing" '"retarget":{"n":36,"p50_ms":'

# The daemon's own counters must agree with the load that just ran:
# 16 workers x 2 lifecycles = 32 sessions, 2 x 2 = 4 cluster groups.
MET=$(curl -fs "$BASE/metrics")
printf '%s' "$MET" | grep -q '^fastcap_serve_sessions_created_total 32$' \
    || { echo "FAIL: daemon did not count 32 sessions"; exit 1; }
printf '%s' "$MET" | grep -q '^fastcap_serve_cluster_groups_created_total 4$' \
    || { echo "FAIL: daemon did not count 4 cluster groups"; exit 1; }

# Empty latency classes are omitted, not reported as zeros: with
# retargets disabled the report must carry no "retarget" block at all
# (a p50 of 0 would be indistinguishable from an instant retarget).
NORETARGET=$(/tmp/fastcap-loadgen -base "$BASE" -sessions 4 \
    -lifecycles 1 -epochs 5 -epoch-ms 0.5 -retarget 0) \
    || { echo "FAIL: retarget-free loadgen reported errors: $NORETARGET"; exit 1; }
printf '%s' "$NORETARGET" | grep -q '"retarget"' \
    && { echo "FAIL: zero-sample retarget class not omitted"; exit 1; }
printf '%s' "$NORETARGET" | grep -q '"create":{"n":4,"p50_ms":' \
    || { echo "FAIL: create percentiles missing in retarget-free run"; exit 1; }

kill -TERM "$PID"
wait "$PID" || { echo "FAIL: fastcapd exited non-zero"; exit 1; }
trap - EXIT
echo "smoke-loadgen ok"
