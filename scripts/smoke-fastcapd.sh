#!/usr/bin/env sh
# smoke-fastcapd.sh — boot the fastcapd daemon and drive the cluster
# HTTP surface end to end with curl: create (valid and invalid), stream,
# live global-budget retarget, member attach/detach, per-member results,
# delete, and a clean SIGTERM drain. Run by CI after the unit suite; the
# in-process httptest coverage lives in internal/serve, this proves the
# real daemon wiring (flags, listener, signal handling) serves the same
# API.
#
# Usage: scripts/smoke-fastcapd.sh [port]
set -eu

PORT="${1:-8321}"
BASE="http://127.0.0.1:$PORT"

cd "$(dirname "$0")/.."
go build -o /tmp/fastcapd-smoke ./cmd/fastcapd
/tmp/fastcapd-smoke -addr "127.0.0.1:$PORT" -workers 2 -max-sessions 8 -drain-timeout 20s &
PID=$!
cleanup() { kill "$PID" 2>/dev/null || true; }
trap cleanup EXIT

# Readiness probe, not a sleep: /readyz is 200 only once the daemon is
# accepting sessions (and flips to 503 the moment a drain starts).
i=0
until curl -fs "$BASE/readyz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 50 ] || { echo "fastcapd never became ready"; exit 1; }
    sleep 0.2
done
curl -fs "$BASE/healthz" >/dev/null || { echo "FAIL: ready but not healthy"; exit 1; }
echo "readyz ok"

expect_code() { # expect_code <want> <curl args...>
    want="$1"; shift
    got=$(curl -s -o /dev/null -w '%{http_code}' "$@")
    if [ "$got" != "$want" ]; then
        echo "FAIL: got HTTP $got, want $want ($*)"
        exit 1
    fi
}

# Malformed creates are typed 4xx, never 5xx.
expect_code 400 -d '{"budget_w":-5,"members":[{"session":{"mix":"MIX3","budget_frac":0.6}}]}' "$BASE/clusters"
expect_code 400 -d '{"budget_w":50,"arbiter":"chaos","members":[{"session":{"mix":"MIX3","budget_frac":0.6}}]}' "$BASE/clusters"
expect_code 400 -d '{"budget_w":50,"members":[{"id":"a","session":{"mix":"MIX3","budget_frac":0.6}},{"id":"a","session":{"mix":"MID1","budget_frac":0.6}}]}' "$BASE/clusters"
expect_code 429 -d '{"budget_w":50,"members":[
  {"session":{"mix":"MIX3","budget_frac":0.6}},{"session":{"mix":"MIX3","budget_frac":0.6}},
  {"session":{"mix":"MIX3","budget_frac":0.6}},{"session":{"mix":"MIX3","budget_frac":0.6}},
  {"session":{"mix":"MIX3","budget_frac":0.6}},{"session":{"mix":"MIX3","budget_frac":0.6}},
  {"session":{"mix":"MIX3","budget_frac":0.6}},{"session":{"mix":"MIX3","budget_frac":0.6}},
  {"session":{"mix":"MIX3","budget_frac":0.6}}]}' "$BASE/clusters"
echo "invalid creates rejected"

# A long-lived group for the live-management surface.
LONG=$(curl -fs -d '{"budget_frac":0.65,"arbiter":"slack","members":[
  {"id":"ilp","session":{"mix":"ILP1","budget_frac":0.6,"cores":4,"epochs":5000,"epoch_ms":0.5}},
  {"id":"mem","session":{"mix":"MEM2","budget_frac":0.6,"cores":4,"epochs":5000,"epoch_ms":0.5}}]}' \
    "$BASE/clusters" | grep -o '"id":"c[0-9]*"' | head -1 | cut -d'"' -f4)
[ -n "$LONG" ] || { echo "FAIL: cluster create returned no id"; exit 1; }
echo "created $LONG"

# Stream: two NDJSON member-grant records, each naming both members.
LINES=$( (curl -Ns --max-time 20 "$BASE/clusters/$LONG/stream" || true) | head -n 2)
[ "$(printf '%s\n' "$LINES" | wc -l)" -eq 2 ] || { echo "FAIL: stream produced fewer than 2 lines"; exit 1; }
printf '%s' "$LINES" | grep -q '"id":"ilp"' || { echo "FAIL: stream lacks member ilp"; exit 1; }
printf '%s' "$LINES" | grep -q '"grant_w"' || { echo "FAIL: stream lacks grants"; exit 1; }
echo "stream ok"

# Live management: retarget (good + bad), attach, detach, status.
expect_code 200 -d '{"budget_w":55}' "$BASE/clusters/$LONG/budget"
expect_code 400 -d '{"budget_w":-1}' "$BASE/clusters/$LONG/budget"
expect_code 404 -d '{"budget_w":55}' "$BASE/clusters/nope/budget"
expect_code 200 -d '{"id":"late","session":{"mix":"MID1","budget_frac":0.6,"cores":4,"epochs":5000,"epoch_ms":0.5}}' "$BASE/clusters/$LONG/members"
expect_code 400 -d '{"id":"late","session":{"mix":"MID1","budget_frac":0.6}}' "$BASE/clusters/$LONG/members"
expect_code 404 -X DELETE "$BASE/clusters/$LONG/members/nope"
expect_code 204 -X DELETE "$BASE/clusters/$LONG/members/mem"
curl -fs "$BASE/clusters/$LONG" | grep -q '"arbiter":"slack"' || { echo "FAIL: status lost the arbiter"; exit 1; }
expect_code 409 "$BASE/clusters/$LONG/result"
echo "retarget/attach/detach ok"

# A quick group: drain its stream, fetch per-member results, delete.
QUICK=$(curl -fs -d '{"budget_w":60,"members":[
  {"id":"a","session":{"mix":"MIX3","budget_frac":0.6,"cores":4,"epochs":8,"epoch_ms":0.5}}]}' \
    "$BASE/clusters" | grep -o '"id":"c[0-9]*"' | head -1 | cut -d'"' -f4)
curl -Ns --max-time 60 "$BASE/clusters/$QUICK/stream" >/dev/null
curl -fs "$BASE/clusters/$QUICK/result" | grep -q '"id":"a"' || { echo "FAIL: result lacks member a"; exit 1; }
expect_code 204 -X DELETE "$BASE/clusters/$QUICK"
expect_code 404 "$BASE/clusters/$QUICK"
echo "result/delete ok"

# Sessions still serve next to clusters.
SID=$(curl -fs -d '{"mix":"MIX3","budget_frac":0.6,"cores":4,"epochs":4,"epoch_ms":0.5}' \
    "$BASE/sessions" | grep -o '"id":"s[0-9]*"' | head -1 | cut -d'"' -f4)
curl -Ns --max-time 60 "$BASE/sessions/$SID/stream" >/dev/null
expect_code 200 "$BASE/sessions/$SID/result"
echo "sessions ok"

# Observability: /metrics serves Prometheus text covering every layer,
# and the counters reflect the traffic this script just generated.
MET=$(curl -fs "$BASE/metrics")
printf '%s' "$MET" | grep -q '^fastcap_serve_sessions_created_total [1-9]' \
    || { echo "FAIL: /metrics lacks a nonzero sessions_created counter"; exit 1; }
printf '%s' "$MET" | grep -q '^fastcap_serve_cluster_epochs_total' \
    || { echo "FAIL: /metrics lacks the cluster layer"; exit 1; }
printf '%s' "$MET" | grep -q '^fastcap_dist_epochs_total' \
    || { echo "FAIL: /metrics lacks the dist layer"; exit 1; }
printf '%s' "$MET" | grep -q 'fastcap_serve_retargets_total{target="cluster"} [1-9]' \
    || { echo "FAIL: cluster retargets not counted"; exit 1; }
echo "metrics ok"

# Drain: delete the long group so SIGTERM settles promptly, then stop.
expect_code 204 -X DELETE "$BASE/clusters/$LONG"
kill -TERM "$PID"
wait "$PID" || { echo "FAIL: fastcapd exited non-zero"; exit 1; }
trap - EXIT
echo "smoke ok"
