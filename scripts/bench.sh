#!/usr/bin/env sh
# bench.sh — run the benchmark suite and emit a BENCH_<sha>.json
# snapshot so the performance trajectory is trackable per commit.
#
# Usage:
#   scripts/bench.sh                 # default suite, short benchtime
#   scripts/bench.sh -bench 'Fig9'   # extra args forwarded to go test
#
# Output: BENCH_<git-sha>.json in the repository root, e.g.
#   {"commit":"abc1234","date":"...","gomaxprocs":8,
#    "benchmarks":[{"name":"BenchmarkEndToEndEpoch","ns_per_op":2.4e7,
#                   "b_per_op":126488,"allocs_per_op":642}, ...]}
#
# The suite includes BenchmarkSessionEpoch next to BenchmarkEndToEndEpoch:
# the first measures one epoch through the streaming Session API, the
# second through the batch Run wrapper. Compare them across snapshots to
# catch session-layer overhead creeping into the hot loop.
# BenchmarkClusterArbitration{8,64} track the cluster coordinator's
# per-epoch rebalance (target: O(members), zero steady-state allocs).
set -eu

cd "$(dirname "$0")/.."

SHA=$(git rev-parse --short HEAD 2>/dev/null || echo "worktree")
OUT="BENCH_${SHA}.json"
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

if [ "$#" -gt 0 ]; then
    go test -run '^$' -bench . -benchmem -benchtime 1x "$@" . | tee "$RAW"
else
    go test -run '^$' -bench . -benchmem -benchtime 1x . | tee "$RAW"
fi

awk -v sha="$SHA" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v gmp="$(nproc 2>/dev/null || echo 1)" '
BEGIN { n = 0 }
/^Benchmark/ && NF >= 3 {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix
    ns = ""; b = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      b = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns != "") {
        rows[n++] = sprintf("{\"name\":\"%s\",\"ns_per_op\":%s,\"b_per_op\":%s,\"allocs_per_op\":%s}",
                            name, ns, (b == "" ? "null" : b), (allocs == "" ? "null" : allocs))
    }
}
END {
    printf "{\"commit\":\"%s\",\"date\":\"%s\",\"gomaxprocs\":%s,\"benchmarks\":[", sha, date, gmp
    for (i = 0; i < n; i++) printf "%s%s", (i ? "," : ""), rows[i]
    print "]}"
}' "$RAW" > "$OUT"

echo "wrote $OUT"
