#!/usr/bin/env sh
# bench.sh — run the benchmark suite and emit a BENCH_<sha>.json
# snapshot so the performance trajectory is trackable per commit.
#
# Usage:
#   scripts/bench.sh                 # default suite, short benchtime
#   scripts/bench.sh -bench 'Fig9'   # extra args forwarded to go test
#
# Output: BENCH_<git-sha>.json in the repository root, e.g.
#   {"commit":"abc1234","date":"...","gomaxprocs":8,
#    "benchmarks":[{"name":"BenchmarkEndToEndEpoch","ns_per_op":2.4e7,
#                   "b_per_op":126488,"allocs_per_op":642}, ...]}
#
# The suite includes BenchmarkSessionEpoch next to BenchmarkEndToEndEpoch:
# the first measures one epoch through the streaming Session API, the
# second through the batch Run wrapper. Compare them across snapshots to
# catch session-layer overhead creeping into the hot loop.
# BenchmarkClusterArbitration{8,64} track the cluster coordinator's
# per-epoch rebalance (target: O(members), zero steady-state allocs);
# BenchmarkSLOArbitration{8,64} track the contract-aware arbiter's
# demand-estimation pass on a partially contracted fleet, same bar;
# BenchmarkPredictiveArbitration{8,64} track the forecast-driven
# arbiter's observe+predict+fund pass on a warm fleet, same bar.
#
# After the Go benchmarks the script boots a real fastcapd and measures
# serving capacity with fastcap-loadgen at increasing closed-loop tenant
# counts (default 64, 256 and 1024; override with BENCH_CAPACITY_LEVELS,
# or set BENCH_SKIP_CAPACITY=1 to skip). Each level's full loadgen
# report lands in the snapshot's "capacity" array, so sessions/sec and
# create/retarget latency percentiles are trackable per commit alongside
# ns/op.
set -eu

cd "$(dirname "$0")/.."

SHA=$(git rev-parse --short HEAD 2>/dev/null || echo "worktree")
OUT="BENCH_${SHA}.json"
RAW=$(mktemp)
CAP=$(mktemp)
trap 'rm -f "$RAW" "$CAP"' EXIT

# 3 iterations, not 1: single-op numbers are dominated by cold-start
# effects a served epoch never pays — in particular the process-wide
# baseline cache (runner.SharedBaselines) is empty on op 1, so a 1x
# Fig12And13 measures the cache miss, not the steady state the daemon
# runs in. Three ops amortize that while keeping the suite under a
# minute. Later flags win in go test, so extra args can still override.
if [ "$#" -gt 0 ]; then
    go test -run '^$' -bench . -benchmem -benchtime 3x "$@" . | tee "$RAW"
else
    go test -run '^$' -bench . -benchmem -benchtime 3x . | tee "$RAW"
fi

awk -v sha="$SHA" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v gmp="$(nproc 2>/dev/null || echo 1)" '
BEGIN { n = 0 }
/^Benchmark/ && NF >= 3 {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix
    ns = ""; b = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      b = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns != "") {
        rows[n++] = sprintf("{\"name\":\"%s\",\"ns_per_op\":%s,\"b_per_op\":%s,\"allocs_per_op\":%s}",
                            name, ns, (b == "" ? "null" : b), (allocs == "" ? "null" : allocs))
    }
}
END {
    printf "{\"commit\":\"%s\",\"date\":\"%s\",\"gomaxprocs\":%s,\"benchmarks\":[", sha, date, gmp
    for (i = 0; i < n; i++) printf "%s%s", (i ? "," : ""), rows[i]
    print "]}"
}' "$RAW" > "$OUT"

# --- capacity rows: loadgen against a live daemon ---------------------
if [ "${BENCH_SKIP_CAPACITY:-0}" != "1" ]; then
    LEVELS="${BENCH_CAPACITY_LEVELS:-64 256 1024}"
    # Default to an ephemeral port so a live fastcapd or a parallel CI
    # job cannot collide; BENCH_CAPACITY_PORT pins one explicitly.
    PORT="${BENCH_CAPACITY_PORT:-0}"
    DLOG=$(mktemp)
    go build -o /tmp/fastcapd-bench ./cmd/fastcapd
    go build -o /tmp/fastcap-loadgen-bench ./cmd/fastcap-loadgen
    /tmp/fastcapd-bench -addr "127.0.0.1:$PORT" -max-sessions 1100 >"$DLOG" 2>&1 &
    DPID=$!
    trap 'rm -f "$RAW" "$CAP" "$DLOG"; kill "$DPID" 2>/dev/null || true' EXIT
    # Discover the bound address from the daemon's log (it prints the
    # resolved port when given :0) and fail fast — dumping that log —
    # if the daemon dies instead of becoming ready.
    BASE=""
    i=0
    while [ -z "$BASE" ]; do
        if ! kill -0 "$DPID" 2>/dev/null; then
            echo "fastcapd exited during startup:" >&2
            cat "$DLOG" >&2
            exit 1
        fi
        ADDR=$(sed -n 's/.*listening on \(127\.0\.0\.1:[0-9][0-9]*\).*/\1/p' "$DLOG" | head -n 1)
        if [ -n "$ADDR" ] && curl -fs "http://$ADDR/readyz" >/dev/null 2>&1; then
            BASE="http://$ADDR"
            break
        fi
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "fastcapd never became ready; daemon log:" >&2
            cat "$DLOG" >&2
            exit 1
        fi
        sleep 0.2
    done
    for n in $LEVELS; do
        echo "capacity: $n closed-loop tenants ..."
        # Closed loop: at level n every stream is in flight for most of
        # the run, so the per-stream follow timeout must cover the whole
        # level, not one session. 10m clears 1024 tenants on a 1-CPU box.
        /tmp/fastcap-loadgen-bench -base "$BASE" -sessions "$n" \
            -lifecycles 1 -epochs 10 -epoch-ms 0.5 -timeout 10m >> "$CAP" \
            || { echo "loadgen failed at $n tenants"; exit 1; }
    done
    kill -TERM "$DPID" 2>/dev/null || true
    wait "$DPID" 2>/dev/null || true
    trap 'rm -f "$RAW" "$CAP" "$DLOG"' EXIT

    # Splice the per-level reports (one JSON object per line) into the
    # snapshot as its "capacity" array.
    awk -v capfile="$CAP" '
    { line = $0 }
    END {
        sub(/\]\}$/, "],\"capacity\":[", line)
        printf "%s", line
        n = 0
        while ((getline row < capfile) > 0) printf "%s%s", (n++ ? "," : ""), row
        print "]}"
    }' "$OUT" > "$OUT.tmp" && mv "$OUT.tmp" "$OUT"
fi

echo "wrote $OUT"
