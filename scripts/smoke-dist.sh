#!/usr/bin/env sh
# smoke-dist.sh — distributed fastcapd end to end with real daemons:
# one coordinator daemon and two agent daemons on separate ports, a
# cluster arbitrating one watt budget across members on both agents,
# and the robustness path the whole design exists for — one agent is
# SIGKILLed mid-run, restarted, and must recover from its grant
# journal, be readmitted after its eviction, and finish the run. The
# deterministic protocol coverage lives in internal/dist (SimNet); this
# proves the real wiring: flags, HTTP transport, feed reconnect,
# journal files, signal handling.
#
# Usage: scripts/smoke-dist.sh [base-port]
set -eu

PORT="${1:-8341}"
P_COORD="$PORT"
P_A1=$((PORT + 1))
P_A2=$((PORT + 2))
COORD="http://127.0.0.1:$P_COORD"
A1="http://127.0.0.1:$P_A1"
A2="http://127.0.0.1:$P_A2"

cd "$(dirname "$0")/.."

JDIR=$(mktemp -d)
go build -o /tmp/fastcapd-dist ./cmd/fastcapd

/tmp/fastcapd-dist -addr "127.0.0.1:$P_COORD" -workers 2 &
PID_COORD=$!
/tmp/fastcapd-dist -addr "127.0.0.1:$P_A1" -workers 2 -agent-journal "$JDIR/a1" &
PID_A1=$!
/tmp/fastcapd-dist -addr "127.0.0.1:$P_A2" -workers 2 -agent-journal "$JDIR/a2" &
PID_A2=$!
cleanup() {
    kill "$PID_COORD" "$PID_A1" "$PID_A2" 2>/dev/null || true
    rm -rf "$JDIR"
}
trap cleanup EXIT

wait_ready() { # wait_ready <base-url> — readiness probe, not a sleep
    i=0
    until curl -fs "$1/readyz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -lt 50 ] || { echo "FAIL: $1 never became ready"; exit 1; }
        sleep 0.2
    done
}
wait_ready "$COORD"; wait_ready "$A1"; wait_ready "$A2"
echo "three daemons ready"

expect_code() { # expect_code <want> <curl args...>
    want="$1"; shift
    got=$(curl -s -o /dev/null -w '%{http_code}' "$@")
    if [ "$got" != "$want" ]; then
        echo "FAIL: got HTTP $got, want $want ($*)"
        exit 1
    fi
}

# The cluster: three members expected, slack-reclaim arbitration, a
# straggler deadline short enough that the killed agent is evicted
# quickly. Hostile frames on the wire endpoint are typed 400s.
expect_code 201 -d '{"id":"smoke","budget_w":25,"arbiter":"slack","expect":3,
  "epoch_deadline_ms":1500,"grace_ms":30000,"join_timeout_ms":30000}' "$COORD/dist/clusters"
expect_code 409 -d '{"id":"smoke","budget_w":25,"expect":3}' "$COORD/dist/clusters"
expect_code 400 -d '{"type":"grant"' "$COORD/dist/clusters/smoke/msgs"
expect_code 400 -d '{"type":"report","member":"m","agent":"a","epoch":-4}' "$COORD/dist/clusters/smoke/msgs"
expect_code 409 "$COORD/dist/clusters/smoke/result"
echo "cluster created, hostile frames rejected"

CL="$COORD/dist/clusters/smoke"

# Agent 1 (will be killed and restarted): two members, enough epochs
# that the run is still going when the kill lands.
expect_code 201 -d '{"id":"a1","coordinator":"'"$CL"'","members":[
  {"id":"m1","session":{"mix":"MIX1","budget_frac":1,"cores":4,"epochs":400,"epoch_ms":0.5}},
  {"id":"m2","session":{"mix":"MEM2","budget_frac":1,"cores":4,"epochs":400,"epoch_ms":0.5}}]}' "$A1/dist/agents"
# Agent 2 (stays up) hosts the third member.
expect_code 201 -d '{"id":"a2","coordinator":"'"$CL"'","members":[
  {"id":"m3","session":{"mix":"ILP2","budget_frac":1,"cores":4,"epochs":400,"epoch_ms":0.5}}]}' "$A2/dist/agents"
echo "two agents announced"

# Wait for the barrier to be visibly turning.
i=0
until curl -fs "$CL" | grep -q '"epoch":[1-9]'; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "FAIL: cluster never reached epoch 1"; exit 1; }
    sleep 0.2
done
echo "epochs turning"

# Kill agent 1 the way a crash does — no drain, no detach. Its two
# members miss the straggler deadline and are evicted; their floors
# return to the pool while m3 keeps running.
kill -9 "$PID_A1"
wait "$PID_A1" 2>/dev/null || true
i=0
until curl -Ns --max-time 5 "$CL/events" 2>/dev/null | grep -q '"type":"evict"'; do
    i=$((i + 1))
    [ "$i" -lt 30 ] || { echo "FAIL: no eviction after the kill"; exit 1; }
    sleep 0.5
done
echo "killed agent evicted"

# Restart the daemon on the same port with the same journal directory
# and re-create the agent by id with no member list: the journal holds
# the members and every executed grant, so the new process replays to
# its pre-crash state and re-announces with its done-epoch counts.
/tmp/fastcapd-dist -addr "127.0.0.1:$P_A1" -workers 2 -agent-journal "$JDIR/a1" &
PID_A1=$!
wait_ready "$A1"
expect_code 201 -d '{"id":"a1","coordinator":"'"$CL"'"}' "$A1/dist/agents"
i=0
until curl -Ns --max-time 5 "$CL/events" 2>/dev/null | grep -q '"type":"readmit"'; do
    i=$((i + 1))
    [ "$i" -lt 60 ] || { echo "FAIL: restarted agent never readmitted"; exit 1; }
    sleep 0.5
done
echo "restarted agent readmitted from journal"

# The run must now drain to a complete result: every member finishes
# (non-null results), no coordinator error.
i=0
until curl -fs "$CL" | grep -q '"finished":true'; do
    i=$((i + 1))
    [ "$i" -lt 240 ] || { echo "FAIL: cluster never finished"; exit 1; }
    sleep 0.5
done
RES=$(curl -fs "$CL/result")
printf '%s' "$RES" | grep -q '"error"' && { echo "FAIL: cluster finished with error: $RES"; exit 1; }
for m in m1 m2 m3; do
    printf '%s' "$RES" | grep -q "\"id\":\"$m\"" || { echo "FAIL: result lacks member $m"; exit 1; }
done
printf '%s' "$RES" | grep -q '"result":null' && { echo "FAIL: a member finished without a result: $RES"; exit 1; }
echo "cluster drained to a complete result"

# The coordinator's metrics must show the story this script just told:
# joins for every member, the crash's evictions, journal readmissions,
# and refused hostile wire frames. The restarted agent daemon must show
# a journal recovery with replayed grants.
CMET=$(curl -fs "$COORD/metrics")
printf '%s' "$CMET" | grep -q 'fastcap_dist_events_total{type="join"} [1-9]' \
    || { echo "FAIL: joins not counted"; exit 1; }
printf '%s' "$CMET" | grep -q 'fastcap_dist_events_total{type="evict"} [1-9]' \
    || { echo "FAIL: evictions not counted"; exit 1; }
printf '%s' "$CMET" | grep -q 'fastcap_dist_events_total{type="readmit"} [1-9]' \
    || { echo "FAIL: readmissions not counted"; exit 1; }
printf '%s' "$CMET" | grep -q 'fastcap_dist_wire_errors_total{surface="msgs"} [1-9]' \
    || { echo "FAIL: refused wire frames not counted"; exit 1; }
AMET=$(curl -fs "$A1/metrics")
printf '%s' "$AMET" | grep -q '^fastcap_dist_recoveries_total [1-9]' \
    || { echo "FAIL: journal recovery not counted"; exit 1; }
printf '%s' "$AMET" | grep -q '^fastcap_dist_journal_replays_total [1-9]' \
    || { echo "FAIL: journal replays not counted"; exit 1; }
echo "dist metrics ok"

# Clean shutdown: agents drain (keeping journals), coordinator drains.
expect_code 204 -X DELETE "$CL"
kill -TERM "$PID_A1" "$PID_A2" "$PID_COORD"
wait "$PID_A1" || { echo "FAIL: agent 1 exited non-zero"; exit 1; }
wait "$PID_A2" || { echo "FAIL: agent 2 exited non-zero"; exit 1; }
wait "$PID_COORD" || { echo "FAIL: coordinator exited non-zero"; exit 1; }
trap - EXIT
rm -rf "$JDIR"
echo "smoke-dist ok"
