// manycore-scaling demonstrates the paper's scalability claims: FastCap
// holds the cap and stays fair from 4 to 64 cores while its decision
// latency grows only linearly (paper Figs. 12–13 and the §IV-B overhead
// study).
//
//	go run ./examples/manycore-scaling
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/stats"
)

func main() {
	mix, err := fastcap.WorkloadByName("MIX2")
	if err != nil {
		log.Fatal(err)
	}

	tbl := &report.Table{
		Title:   "FastCap scaling on MIX2, budget 60%",
		Headers: []string{"cores", "peak W", "avg W", "pwr/peak", "avg perf", "worst perf", "Jain"},
	}
	for _, n := range []int{4, 16, 32, 64} {
		cfg := fastcap.ExperimentConfig{
			Sim:        fastcap.DefaultSystemConfig(n),
			Mix:        mix,
			BudgetFrac: 0.60,
			Epochs:     10,
			Policy:     fastcap.NewFastCapPolicy(),
		}
		cfg.Sim.EpochNs = 1e6
		cfg.Sim.ProfileNs = 1e5
		res, base, err := fastcap.RunExperimentPair(cfg)
		if err != nil {
			log.Fatal(err)
		}
		norm, err := res.NormalizedPerf(base)
		if err != nil {
			log.Fatal(err)
		}
		s := stats.SummarizePerf(norm)
		tbl.AddRow(
			fmt.Sprint(n),
			report.F(res.PeakW, 0),
			report.F(res.AvgPowerW(), 1),
			report.F(res.AvgPowerW()/res.PeakW, 3),
			report.F(s.Avg, 3),
			report.F(s.Worst, 3),
			report.F(s.Jain, 3),
		)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	rows, err := experiments.Overhead(1000)
	if err != nil {
		log.Fatal(err)
	}
	tbl2 := &report.Table{
		Title:   "Decision latency (linear in N — paper: 33.5/64.9/133.5 µs)",
		Headers: []string{"cores", "mean µs", "% of 5 ms epoch"},
	}
	for _, r := range rows {
		tbl2.AddRow(fmt.Sprint(r.Cores), report.F(r.MeanUs, 1), report.F(r.PctOfEpoch, 2))
	}
	if err := tbl2.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
