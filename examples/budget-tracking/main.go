// budget-tracking subjects FastCap to a datacenter power emergency: the
// budget steps from 80% down to 50% while a mixed workload runs, then
// an operator retargets the session mid-flight to 65% — demonstrating
// the per-epoch cap tracking of the paper's Figs. 4–5 under a *dynamic*
// budget (the extension §III-B notes the formulation supports).
//
// The run streams: a budget trace drives the emergency, an observer
// draws each epoch's bar the moment the epoch completes, and the
// recovery is an explicit SetBudgetFrac call between steps — the three
// session primitives a real power-management service would use.
//
//	go run ./examples/budget-tracking
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	mix, err := fastcap.WorkloadByName("MIX1")
	if err != nil {
		log.Fatal(err)
	}
	// The emergency, as a per-epoch budget trace: normal operation at
	// 80%, then a breaker overload forces shedding to 50%.
	trace := func(epoch int) float64 {
		if epoch < 10 {
			return 0.80 // normal operation
		}
		return 0.50 // breaker overload: shed power now
	}
	cfg := fastcap.ExperimentConfig{
		Sim:        fastcap.DefaultSystemConfig(16),
		Mix:        mix,
		BudgetFrac: 0.80, // PeakW reference; the trace overrides per epoch
		Epochs:     35,
		Policy:     fastcap.NewFastCapPolicy(),
	}
	cfg.Sim.EpochNs = 1e6
	cfg.Sim.ProfileNs = 1e5

	ses, err := fastcap.NewSession(cfg,
		fastcap.WithBudgetTrace(trace),
		fastcap.WithObserver(func(e fastcap.EpochRecord) {
			frac := e.AvgPowerW / e.PeakW
			bar := strings.Repeat("#", int(frac*60))
			capMark := int(e.BudgetW / e.PeakW * 60)
			if capMark < len(bar) {
				bar = bar[:capMark] + "!" + bar[capMark:]
			}
			fmt.Printf("%5d  %5.1fW  %5.1fW  %.3f  %s\n", e.Epoch, e.BudgetW, e.AvgPowerW, frac, bar)
		}))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("MIX1 on 16 cores, peak %.0f W — budget 80%% → 50%% (trace) → 65%% (retarget)\n\n", ses.PeakPowerW())
	fmt.Println("epoch  budget  power   power/peak")
	for {
		// Partial recovery at epoch 25: an explicit mid-run retarget,
		// which detaches the emergency trace and takes effect on the
		// next epoch.
		if ses.Epoch() == 25 {
			if err := ses.SetBudgetFrac(0.65); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := ses.Step(context.Background()); err != nil {
			if errors.Is(err, fastcap.ErrSessionDone) {
				break
			}
			log.Fatal(err)
		}
	}
	ses.Result()
	fmt.Println("\n('!' marks the cap; power follows each budget step within ~1 epoch)")
}
