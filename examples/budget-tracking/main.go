// budget-tracking subjects FastCap to a datacenter power emergency: the
// budget steps from 80% down to 50% and back while a mixed workload
// runs, demonstrating the per-epoch cap tracking of the paper's
// Figs. 4–5 under a *dynamic* budget (the extension §III-B notes the
// formulation supports).
//
//	go run ./examples/budget-tracking
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	mix, err := fastcap.WorkloadByName("MIX1")
	if err != nil {
		log.Fatal(err)
	}
	schedule := func(epoch int) float64 {
		switch {
		case epoch < 10:
			return 0.80 // normal operation
		case epoch < 25:
			return 0.50 // breaker overload: shed power now
		default:
			return 0.65 // partial recovery
		}
	}
	cfg := fastcap.ExperimentConfig{
		Sim:            fastcap.DefaultSystemConfig(16),
		Mix:            mix,
		BudgetFrac:     0.80, // PeakW reference; schedule overrides
		Epochs:         35,
		Policy:         fastcap.NewFastCapPolicy(),
		BudgetSchedule: schedule,
	}
	cfg.Sim.EpochNs = 1e6
	cfg.Sim.ProfileNs = 1e5

	res, err := fastcap.RunExperiment(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("MIX1 on 16 cores, peak %.0f W — budget steps 80%% → 50%% → 65%%\n\n", res.PeakW)
	fmt.Println("epoch  budget  power   power/peak")
	for _, e := range res.Epochs {
		frac := e.AvgPowerW / res.PeakW
		bar := strings.Repeat("#", int(frac*60))
		capMark := int(e.BudgetW / res.PeakW * 60)
		if capMark < len(bar) {
			bar = bar[:capMark] + "!" + bar[capMark:]
		}
		fmt.Printf("%5d  %5.1fW  %5.1fW  %.3f  %s\n", e.Epoch, e.BudgetW, e.AvgPowerW, frac, bar)
	}
	fmt.Println("\n('!' marks the cap; power follows each budget step within ~1 epoch)")
}
