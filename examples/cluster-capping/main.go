// cluster-capping arbitrates one datacenter-level power budget across
// three capped machines: a compute-bound web tier, a balanced batch
// tier, and a memory-bound analytics tier. The analytics machine's
// cores spend their time waiting on DRAM, so it physically cannot burn
// its proportional share of the budget — the slack-reclaiming arbiter
// notices the unused watts each epoch and migrates them to the web
// tier, which is pressed against its cap (its cores are being held
// below full frequency). Watch the grant columns: "web" climbs, "ana"
// falls, and the reclaimed budget buys real throughput.
//
//	go run ./examples/cluster-capping
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strings"

	"repro"
)

// member builds one tenant machine: a 16-core simulated system running
// mix under FastCap, sized for epochs control epochs.
func member(id, mixName string, epochs int) fastcap.ClusterMember {
	mix, err := fastcap.WorkloadByName(mixName)
	if err != nil {
		log.Fatal(err)
	}
	cfg := fastcap.ExperimentConfig{
		Sim:        fastcap.DefaultSystemConfig(16),
		Mix:        mix,
		BudgetFrac: 1, // the coordinator overrides this every epoch
		Epochs:     epochs,
		Policy:     fastcap.NewFastCapPolicy(),
	}
	cfg.Sim.EpochNs = 1e6
	cfg.Sim.ProfileNs = 1e5
	ses, err := fastcap.NewSession(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return fastcap.ClusterMember{ID: id, Session: ses}
}

func main() {
	members := []fastcap.ClusterMember{
		member("web", "ILP1", 30), // compute-bound: wants every watt
		member("bat", "MIX3", 30), // balanced batch work
		member("ana", "MEM4", 30), // memory-bound: stalls on DRAM
	}
	peak := 0.0
	for _, m := range members {
		peak += m.Session.PeakPowerW()
	}
	budget := 0.75 * peak

	coord, err := fastcap.NewClusterCoordinator(fastcap.ClusterConfig{
		BudgetW: budget,
		Arbiter: fastcap.NewSlackReclaimArbiter(),
	}, members)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("three machines, %.0f W combined peak, one %.0f W budget (75%%)\n", peak, budget)
	fmt.Printf("%5s  %22s  %22s  %22s\n", "epoch", "web grant/power", "bat grant/power", "ana grant/power")
	bar := func(g, p float64) string {
		width := int(g / 8)
		used := int(p / 8)
		if used > width {
			used = width
		}
		return strings.Repeat("#", used) + strings.Repeat("-", width-used)
	}
	for {
		rec, err := coord.Step(context.Background())
		if errors.Is(err, fastcap.ErrClusterDone) {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d", rec.Epoch)
		for _, m := range rec.Members {
			fmt.Printf("  %5.1f/%5.1fW %-10s", m.GrantW, m.PowerW, bar(m.GrantW, m.PowerW))
		}
		fmt.Println()
	}

	fmt.Println()
	for _, mr := range coord.Results() {
		total := 0.0
		for _, v := range mr.Result.TotalInstr {
			total += v
		}
		fmt.Printf("%-4s ran %.2f Ginstr under %s\n", mr.ID, total/1e9, mr.Result.PolicyName)
	}
	fmt.Println("\nthe arbiter reclaimed the analytics tier's unusable watts for the web tier —")
	fmt.Println("compare the first and last grant columns above.")
}
