// cluster-capping arbitrates one datacenter-level power budget across
// three capped machines: a compute-bound web tier, a balanced batch
// tier, and a memory-bound analytics tier. The web tier holds a
// throughput contract (a BIPS target calibrated against its own
// uncapped baseline) and the SLO-aware arbiter funds that contract's
// estimated demand first, water-filling the rest of the fleet with
// whatever remains. The run starts budget-starved: the cold-start
// proportional split leaves the contract violated (a typed
// slo_violated event in the grant stream), then the arbiter migrates
// watts from the best-effort tiers until the stream shows the
// slo_restored transition — all inside the valley. A mid-run budget
// raise (the diurnal valley ending) then relaxes the whole fleet.
//
//	go run ./examples/cluster-capping
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strings"

	"repro"
)

// memberCfg builds one tenant machine's configuration: a 16-core
// simulated system running mix under FastCap for epochs control epochs.
func memberCfg(mixName string, epochs int) fastcap.ExperimentConfig {
	mix, err := fastcap.WorkloadByName(mixName)
	if err != nil {
		log.Fatal(err)
	}
	cfg := fastcap.ExperimentConfig{
		Sim:        fastcap.DefaultSystemConfig(16),
		Mix:        mix,
		BudgetFrac: 1, // the coordinator overrides this every epoch
		Epochs:     epochs,
		Policy:     fastcap.NewFastCapPolicy(),
	}
	cfg.Sim.EpochNs = 1e6
	cfg.Sim.ProfileNs = 1e5
	return cfg
}

// member turns a configuration into a cluster tenant; target > 0
// declares a throughput contract in BIPS.
func member(id string, cfg fastcap.ExperimentConfig, target float64) fastcap.ClusterMember {
	ses, err := fastcap.NewSession(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return fastcap.ClusterMember{ID: id, Session: ses, TargetBIPS: target}
}

func main() {
	const epochs = 30

	// Calibrate the web tier's contract against its own uncapped
	// baseline: 95% of the throughput it retires with nobody throttling
	// it.
	webCfg := memberCfg("ILP1", epochs)
	base, err := fastcap.RunExperiment(webCfg)
	if err != nil {
		log.Fatal(err)
	}
	baseInstr := 0.0
	for _, v := range base.TotalInstr {
		baseInstr += v
	}
	target := 0.95 * baseInstr / epochs / webCfg.Sim.EpochNs

	members := []fastcap.ClusterMember{
		member("web", webCfg, target),               // contracted: 95% of its solo BIPS
		member("bat", memberCfg("MIX3", epochs), 0), // balanced batch work
		member("ana", memberCfg("MEM4", epochs), 0), // memory-bound: stalls on DRAM
	}
	peak := 0.0
	for _, m := range members {
		peak += m.Session.PeakPowerW()
	}

	coord, err := fastcap.NewClusterCoordinator(fastcap.ClusterConfig{
		BudgetW: 0.45 * peak,
		Arbiter: fastcap.NewSLOArbiter(),
	}, members)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("three machines, %.0f W combined peak; web holds a %.2f BIPS contract\n", peak, target)
	fmt.Printf("budget starts at 45%% (starved) and rises to 90%% at epoch %d\n\n", epochs/2)
	fmt.Printf("%5s  %22s  %22s  %22s\n", "epoch", "web grant/power", "bat grant/power", "ana grant/power")
	bar := func(g, p float64) string {
		width := int(g / 8)
		used := int(p / 8)
		if used > width {
			used = width
		}
		return strings.Repeat("#", used) + strings.Repeat("-", width-used)
	}
	violations, restorations := 0, 0
	for {
		rec, err := coord.Step(context.Background())
		if errors.Is(err, fastcap.ErrClusterDone) {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		if rec.Epoch == epochs/2 {
			if err := coord.SetBudgetW(0.9 * peak); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%5d", rec.Epoch)
		for _, m := range rec.Members {
			fmt.Printf("  %5.1f/%5.1fW %-10s", m.GrantW, m.PowerW, bar(m.GrantW, m.PowerW))
		}
		for _, ev := range rec.Events {
			fmt.Printf("  !%s %s (%.2f of %.2f BIPS)", ev.Member, ev.Type, ev.BIPS, ev.TargetBIPS)
			switch ev.Type {
			case "slo_violated":
				violations++
			case "slo_restored":
				restorations++
			}
		}
		fmt.Println()
	}

	fmt.Println()
	for _, mr := range coord.Results() {
		total := 0.0
		for _, v := range mr.Result.TotalInstr {
			total += v
		}
		fmt.Printf("%-4s ran %.2f Ginstr under %s\n", mr.ID, total/1e9, mr.Result.PolicyName)
	}
	fmt.Printf("\nthe contract was violated %d time(s) at the cold start and restored %d time(s)\n",
		violations, restorations)
	fmt.Println("by the arbiter reclaiming best-effort watts — watch the !web lines above.")
}
