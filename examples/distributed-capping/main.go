// distributed-capping arbitrates one power budget across three capped
// machines that live on two separate daemons, connected only by the
// distributed coordination protocol — every grant and report crosses a
// wire. The run is deliberately unlucky: at epoch 10 the "edge" daemon
// (hosting the memory-bound analytics machine) crashes. The coordinator
// evicts the silent member at the straggler deadline and its floor
// watts return to the arbitration pool; a few virtual milliseconds
// later the daemon reboots, replays its grant journal back to the exact
// pre-crash state, re-announces, and is readmitted at an epoch boundary.
// The cluster still drains to a complete result for all three machines.
//
// The transport here is the deterministic in-memory simulation the
// protocol's chaos suite runs on (same code path as real HTTP transport
// in fastcapd, minus the sockets), so this example reproduces the same
// grants on every run.
//
//	go run ./examples/distributed-capping
package main

import (
	"encoding/json"
	"fmt"
	"log"

	"repro"
)

// spec is the member session in the same JSON schema fastcapd's
// POST /sessions (and /dist/agents member sessions) accept.
func spec(mix string) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(
		`{"mix":%q,"budget_frac":1,"cores":8,"epochs":30,"epoch_ms":1}`, mix))
}

func main() {
	build := fastcap.DistSessionBuilder()

	// Three machines on two daemons: the "rack" daemon hosts the
	// compute-bound web tier and the balanced batch tier, the "edge"
	// daemon hosts the memory-bound analytics tier.
	members := map[string][]fastcap.DistMemberSpec{
		"rack": {
			{ID: "web", Spec: spec("ILP1")},
			{ID: "bat", Spec: spec("MIX3")},
		},
		"edge": {
			{ID: "ana", Spec: spec("MEM4")},
		},
	}

	// Size the budget at 75% of combined peak, like the in-process
	// cluster example.
	peak := 0.0
	for _, specs := range members {
		for _, ms := range specs {
			ses, err := build(ms.Spec)
			if err != nil {
				log.Fatal(err)
			}
			peak += ses.PeakPowerW()
		}
	}
	budget := 0.75 * peak

	// The fault plan: the edge daemon crashes right after executing its
	// epoch-10 grant and reboots 20 virtual milliseconds later. With a
	// 10 ms straggler deadline the eviction lands first.
	net := fastcap.NewDistSimNet(fastcap.DistSimConfig{
		Seed: 1,
		Faults: fastcap.DistFaults{
			Restarts: []fastcap.DistRestart{
				{Agent: "edge", Epoch: 10, AfterStep: true, RestartAfterNs: 20e6},
			},
		},
	})
	coord, err := fastcap.NewDistCoordinator(fastcap.DistConfig{
		BudgetW:         budget,
		Arbiter:         fastcap.NewSlackReclaimArbiter(),
		Expect:          3,
		EpochDeadlineNs: 10e6,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Boot each agent daemon. The start closure doubles as the reboot
	// hook: a restarted agent is rebuilt through NewDistAgent, which
	// replays the journal before announcing — that is the whole
	// crash-recovery story.
	for name, specs := range members {
		name, specs := name, specs
		journal := &fastcap.DistMemJournal{}
		var start func()
		start = func() {
			a, err := fastcap.NewDistAgent(fastcap.DistAgentConfig{
				Name:    name,
				Members: specs,
				Build:   build,
				Send:    net.Sender(name),
				Clock:   net.Clock(name),
				Journal: journal,
			})
			if err != nil {
				log.Fatalf("agent %s: %v", name, err)
			}
			net.Register(name, a.Handle, start)
			a.Start()
		}
		start()
	}

	fmt.Printf("three machines on two daemons, %.0f W combined peak, one %.0f W budget (75%%)\n\n", peak, budget)
	if err := coord.Run(net); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%5s  %11s  %11s  %11s\n", "epoch", "web grant", "bat grant", "ana grant")
	for _, rec := range coord.Records() {
		grants := map[string]string{"web": "      —", "bat": "      —", "ana": "      —"}
		for _, m := range rec.Members {
			grants[m.ID] = fmt.Sprintf("%6.1f W", m.GrantW)
		}
		note := ""
		for _, ev := range coord.Events() {
			if ev.Epoch == rec.Epoch && ev.Type != "join" {
				note += fmt.Sprintf("   ← %s %s", ev.Type, ev.Member)
			}
		}
		fmt.Printf("%5d  %11s  %11s  %11s%s\n", rec.Epoch, grants["web"], grants["bat"], grants["ana"], note)
	}

	fmt.Println("\nmembership pressure events:")
	for _, ev := range coord.Events() {
		fmt.Printf("  epoch %2d  %-8s %s (%s)\n", ev.Epoch, ev.Type, ev.Member, ev.Reason)
	}

	fmt.Println()
	for _, mr := range coord.Results() {
		if mr.Result == nil {
			log.Fatalf("member %s finished without a result", mr.ID)
		}
		total := 0.0
		for _, v := range mr.Result.TotalInstr {
			total += v
		}
		fmt.Printf("%-4s ran %.2f Ginstr under %s\n", mr.ID, total/1e9, mr.Result.PolicyName)
	}
	fmt.Println("\nthe crash cost the analytics tier its seat for a few epochs — watch its")
	fmt.Println("grant column go dark and come back — but the journal replay meant zero")
	fmt.Println("lost work: every executed epoch was executed exactly once.")
}
