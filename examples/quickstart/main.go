// Quickstart: cap a simulated 16-core server at 60% of peak power with
// FastCap, watching each control epoch stream by, and report what the
// cap cost each application.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"repro"
)

func main() {
	// Pick a Table III workload: MIX3 mixes memory-bound (equake, ammp)
	// with CPU-bound (sjeng, crafty) applications.
	mix, err := fastcap.WorkloadByName("MIX3")
	if err != nil {
		log.Fatal(err)
	}

	cfg := fastcap.ExperimentConfig{
		Sim:        fastcap.DefaultSystemConfig(16),
		Mix:        mix,
		BudgetFrac: 0.60,
		Epochs:     20,
		Policy:     fastcap.NewFastCapPolicy(),
	}
	// Shrink the epoch so the example finishes in seconds (the paper
	// uses 5 ms epochs; behaviour is unchanged).
	cfg.Sim.EpochNs = 1e6
	cfg.Sim.ProfileNs = 1e5

	// A session runs the §III-C control loop one epoch per Step; the
	// observer sees every epoch's telemetry the moment it completes.
	ses, err := fastcap.NewSession(cfg, fastcap.WithObserver(func(e fastcap.EpochRecord) {
		fmt.Printf("epoch %2d  %5.1f W (budget %5.1f W)\n", e.Epoch, e.AvgPowerW, e.BudgetW)
	}))
	if err != nil {
		log.Fatal(err)
	}
	for {
		if _, err := ses.Step(context.Background()); err != nil {
			if errors.Is(err, fastcap.ErrSessionDone) {
				break
			}
			log.Fatal(err)
		}
	}
	res := ses.Result()

	fmt.Printf("\npeak power:      %.0f W\n", res.PeakW)
	fmt.Printf("budget:          %.0f W (60%%)\n", res.BudgetW)
	fmt.Printf("average power:   %.1f W (%.1f%% of peak)\n",
		res.AvgPowerW(), 100*res.AvgPowerW()/res.PeakW)
	fmt.Printf("max epoch power: %.1f W\n\n", res.MaxEpochPowerW())

	// Normalize against the all-max baseline to see the cap's cost.
	bcfg := cfg
	bcfg.Policy = nil
	base, err := fastcap.RunExperiment(bcfg)
	if err != nil {
		log.Fatal(err)
	}
	norm, err := res.NormalizedPerf(base)
	if err != nil {
		log.Fatal(err)
	}
	wl, err := fastcap.InstantiateWorkload(mix, cfg.Sim.Cores)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-application slowdown under the cap (1.00 = full speed):")
	for i, v := range norm {
		fmt.Printf("  core %2d  %-8s %.3f\n", i, wl.Apps[i].Name, v)
	}
}
