// policy-compare runs all six capping policies on the same workload and
// budget, reproducing the comparisons of the paper's Figs. 9–11 on one
// mix: who holds the cap, who is fast on average, and who creates
// performance outliers.
//
//	go run ./examples/policy-compare [-mix MIX4] [-budget 0.6] [-cores 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/report"
	"repro/internal/stats"
)

func main() {
	mixName := flag.String("mix", "MIX4", "Table III workload")
	budget := flag.Float64("budget", 0.60, "budget fraction of peak")
	cores := flag.Int("cores", 4, "cores (multiple of 4; MaxBIPS needs ≤4)")
	epochs := flag.Int("epochs", 15, "epochs per run")
	flag.Parse()

	mix, err := fastcap.WorkloadByName(*mixName)
	if err != nil {
		log.Fatal(err)
	}

	policies := []fastcap.Policy{
		fastcap.NewFastCapPolicy(),
		fastcap.NewCPUOnlyPolicy(),
		fastcap.NewFreqParPolicy(),
		fastcap.NewEqlPwrPolicy(),
		fastcap.NewEqlFreqPolicy(),
		fastcap.NewGreedyPolicy(),
	}
	if *cores <= 4 {
		policies = append(policies, fastcap.NewMaxBIPSPolicy())
	}

	tbl := &report.Table{
		Title: fmt.Sprintf("%s on %d cores, budget %.0f%%: policy comparison",
			mix.Name, *cores, *budget*100),
		Headers: []string{"policy", "avg W", "max W", "avg perf", "worst perf", "Jain"},
	}

	var baseline *fastcap.ExperimentResult
	for _, pol := range policies {
		cfg := fastcap.ExperimentConfig{
			Sim:        fastcap.DefaultSystemConfig(*cores),
			Mix:        mix,
			BudgetFrac: *budget,
			Epochs:     *epochs,
			Policy:     pol,
		}
		cfg.Sim.EpochNs = 1e6
		cfg.Sim.ProfileNs = 1e5

		res, err := fastcap.RunExperiment(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if baseline == nil {
			bcfg := cfg
			bcfg.Policy = nil
			if baseline, err = fastcap.RunExperiment(bcfg); err != nil {
				log.Fatal(err)
			}
		}
		norm, err := res.NormalizedPerf(baseline)
		if err != nil {
			log.Fatal(err)
		}
		s := stats.SummarizePerf(norm)
		tbl.AddRow(pol.Name(),
			report.F(res.AvgPowerW(), 1),
			report.F(res.MaxEpochPowerW(), 1),
			report.F(s.Avg, 3),
			report.F(s.Worst, 3),
			report.F(s.Jain, 3))
	}
	fmt.Printf("budget: %.1f W of %.1f W peak\n\n", *budget*baseline.PeakW, baseline.PeakW)
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("reading the table: lower avg/worst perf is better (1.0 = uncapped speed);")
	fmt.Println("a wide gap between avg and worst marks unfair policies (Eql-Pwr, MaxBIPS).")
}
