// multi-socket demonstrates the paper's §III-B per-processor budget
// extension: a 16-core machine built from two 8-core sockets, where
// socket 0 is additionally capped at a tight thermal budget while the
// whole system holds a 70% cap. FastCap keeps both constraints while
// still equalizing the performance impact as much as the socket cap
// allows.
//
//	go run ./examples/multi-socket
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/report"
	"repro/internal/stats"
)

func main() {
	mix, err := fastcap.WorkloadByName("MID2")
	if err != nil {
		log.Fatal(err)
	}

	const socketCap = 18.0 // W for socket 0 (a hot spot / failing VRM)
	groups := []fastcap.BudgetGroup{
		{Cores: []int{0, 1, 2, 3, 4, 5, 6, 7}, Budget: socketCap},
	}

	run := func(pol fastcap.Policy) *fastcap.ExperimentResult {
		cfg := fastcap.ExperimentConfig{
			Sim:        fastcap.DefaultSystemConfig(16),
			Mix:        mix,
			BudgetFrac: 0.70,
			Epochs:     15,
			Policy:     pol,
		}
		cfg.Sim.EpochNs = 1e6
		cfg.Sim.ProfileNs = 1e5
		res, err := fastcap.RunExperiment(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	plain := run(fastcap.NewFastCapPolicy())
	grouped := run(fastcap.NewGroupedFastCapPolicy(groups))

	socketPower := func(res *fastcap.ExperimentResult, lo, hi int) (mean, max float64) {
		for _, e := range res.Epochs[2:] {
			sum := 0.0
			for i := lo; i < hi; i++ {
				sum += e.CoreW[i]
			}
			mean += sum
			if sum > max {
				max = sum
			}
		}
		mean /= float64(len(res.Epochs) - 2)
		return mean, max
	}

	tbl := &report.Table{
		Title:   "MID2 on 2×8 cores, global cap 70%, socket-0 cap 18 W",
		Headers: []string{"policy", "system W", "socket0 mean W", "socket0 max W", "socket1 mean W"},
	}
	for _, r := range []*fastcap.ExperimentResult{plain, grouped} {
		s0m, s0x := socketPower(r, 0, 8)
		s1m, _ := socketPower(r, 8, 16)
		tbl.AddRow(r.PolicyName,
			report.F(r.AvgPowerW(), 1),
			report.F(s0m, 1), report.F(s0x, 1), report.F(s1m, 1))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-core slowdown (grouped run):")
	base := run(nil)
	norm, err := grouped.NormalizedPerf(base)
	if err != nil {
		log.Fatal(err)
	}
	s := stats.SummarizePerf(norm[:8])
	fmt.Printf("  socket 0 (capped): avg %.3f worst %.3f\n", s.Avg, s.Worst)
	s = stats.SummarizePerf(norm[8:])
	fmt.Printf("  socket 1:          avg %.3f worst %.3f\n", s.Avg, s.Worst)
	fmt.Println("\nsocket 0 obeys its thermal cap; FastCap's common slowdown bound keeps")
	fmt.Println("socket 1 at the same performance (strict equal degradation, paper Eq. 5).")
}
