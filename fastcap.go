// Package fastcap is the public API of this FastCap reproduction — an
// implementation of "FastCap: An Efficient and Fair Algorithm for Power
// Capping in Many-Core Systems" (Liu, Cox, Deng, Draper, Bianchini —
// ISPASS 2016), together with the simulated many-core platform, the
// baseline policies, and the experiment harness of the paper's
// evaluation.
//
// The heavy lifting lives in internal packages; this package re-exports
// the stable surface:
//
//   - the FastCap optimizer (Algorithm 1) and its inputs: Inputs, Solve;
//   - capping policies behind the Policy interface: NewFastCapPolicy,
//     NewCPUOnlyPolicy, NewFreqParPolicy, NewEqlPwrPolicy,
//     NewEqlFreqPolicy, NewMaxBIPSPolicy;
//   - the simulated platform and epoch runner: DefaultSystemConfig,
//     RunExperiment, RunExperimentPair;
//   - Table III workloads: Workloads, WorkloadByName;
//   - the figure-level experiment harness: NewLab.
//
// Quick start:
//
//	mix, _ := fastcap.WorkloadByName("MIX3")
//	cfg := fastcap.ExperimentConfig{
//		Sim:        fastcap.DefaultSystemConfig(16),
//		Mix:        mix,
//		BudgetFrac: 0.6,
//		Epochs:     40,
//		Policy:     fastcap.NewFastCapPolicy(),
//	}
//	res, base, _ := fastcap.RunExperimentPair(cfg)
//	norm, _ := res.NormalizedPerf(base)
package fastcap

import (
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/experiments"
	"repro/internal/policy"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Optimizer surface (paper §III-B, Algorithm 1).
type (
	// Inputs are the FastCap optimizer inputs: think times, cache times,
	// fitted power models, queue statistics, budget.
	Inputs = core.Inputs
	// Result is the continuous optimizer solution (objective D, think
	// times, bus transfer time) before DVFS-ladder quantization.
	Result = core.Result
	// Assignment is the quantized ladder assignment.
	Assignment = core.Assignment
	// ResponseFunc evaluates the per-core memory response time R_i(s_b).
	ResponseFunc = core.ResponseFunc
)

// SbCandidatesFromLadder derives the optimizer's M candidate bus
// transfer times from a memory DVFS ladder.
func SbCandidatesFromLadder(sbBar float64, memLadder *Ladder) []float64 {
	return core.SbCandidatesFromLadder(sbBar, memLadder)
}

// DVFS ladders (paper §IV-A).
type Ladder = dvfs.Ladder

// DefaultCoreLadder returns 10 steps spanning 2.2–4.0 GHz at 0.65–1.2 V.
func DefaultCoreLadder() *Ladder { return dvfs.DefaultCoreLadder() }

// DefaultMemLadder returns 200–800 MHz in 66 MHz steps.
func DefaultMemLadder() *Ladder { return dvfs.DefaultMemLadder() }

// Policies (paper §IV-B).
type (
	// Policy is one capping algorithm: Snapshot in, Decision out.
	//
	// Ownership contracts (performance-motivated):
	//   - A policy instance may keep internal scratch across Decide
	//     calls; use one instance per concurrent run. Instances must not
	//     be shared between goroutines.
	//   - The Snapshot (and its slices) passed to Decide is only valid
	//     for the duration of the call — the runner refills one buffer
	//     per epoch. Implementations that retain per-epoch data must
	//     copy it.
	Policy = policy.Policy
	// Snapshot is the per-epoch controller input. Snapshots handed to
	// Policy.Decide are reused across epochs; copy anything you keep.
	Snapshot = policy.Snapshot
	// Decision is a full per-core + memory DVFS assignment.
	Decision = policy.Decision
)

// NewFastCapPolicy returns the paper's algorithm (guarded quantization,
// binary search over memory frequencies).
func NewFastCapPolicy() Policy { return policy.NewFastCap() }

// NewCPUOnlyPolicy returns FastCap restricted to core DVFS with memory
// pinned at maximum frequency.
func NewCPUOnlyPolicy() Policy { return policy.NewCPUOnly() }

// NewFreqParPolicy returns the linear-feedback frequency-quota policy
// of Ma et al. [22].
func NewFreqParPolicy() Policy { return policy.NewFreqPar() }

// NewEqlPwrPolicy returns the equal-power-share policy of Sharkey et
// al. [16], extended with memory DVFS.
func NewEqlPwrPolicy() Policy { return policy.NewEqlPwr() }

// NewEqlFreqPolicy returns the uniform-frequency policy of Herbert and
// Marculescu [42], extended with memory DVFS.
func NewEqlFreqPolicy() Policy { return policy.NewEqlFreq() }

// NewMaxBIPSPolicy returns the exhaustive throughput-maximizing policy
// of Isci et al. [14]; it refuses core counts where O(F^N) explodes.
func NewMaxBIPSPolicy() Policy { return policy.NewMaxBIPS() }

// NewGreedyPolicy returns the heap-based greedy heuristic of Meng et
// al. [18] / Winter et al. [19]: near-MaxBIPS throughput at
// O(M·F·N·log N) cost, with the same fairness blind spot.
func NewGreedyPolicy() Policy { return policy.NewGreedy() }

// BudgetGroup caps the joint power of a set of cores (a socket or
// voltage island) — the paper's §III-B per-processor extension.
type BudgetGroup = core.BudgetGroup

// NewGroupedFastCapPolicy returns FastCap with additional per-group
// power budgets on top of the global cap.
func NewGroupedFastCapPolicy(groups []BudgetGroup) Policy {
	return policy.NewGroupedFastCap(groups)
}

// Simulated platform (paper §IV-A, Table II).
type (
	// SystemConfig describes the simulated machine.
	SystemConfig = sim.Config
	// System is an instantiated machine bound to a workload.
	//
	// The Profiles returned by RunProfile and FinishEpoch alias
	// System-owned buffers: each is valid until the next call of the
	// same method. Callers accumulating per-epoch profiles must copy
	// the slices they keep.
	System = sim.System
)

// DefaultSystemConfig mirrors the paper's evaluation platform for n
// cores (n a positive multiple of 4).
func DefaultSystemConfig(n int) SystemConfig { return sim.DefaultConfig(n) }

// NewSystem builds a simulated machine running the given workload.
func NewSystem(cfg SystemConfig, wl *Workload) (*System, error) { return sim.New(cfg, wl) }

// Workloads (paper Table III).
type (
	// WorkloadSpec is one Table III row.
	WorkloadSpec = workload.MixSpec
	// Workload is an instantiated mix: one application per core.
	Workload = workload.Workload
)

// Workloads returns all 16 Table III mixes.
func Workloads() []WorkloadSpec { return workload.TableIII }

// WorkloadByName returns a Table III mix by name (e.g. "MEM1").
func WorkloadByName(name string) (WorkloadSpec, error) { return workload.MixByName(name) }

// InstantiateWorkload builds the per-core application instances of a
// mix for an n-core machine.
func InstantiateWorkload(spec WorkloadSpec, n int) (*Workload, error) {
	return workload.Instantiate(spec, n)
}

// Experiment runner (paper §III-C epoch protocol).
type (
	// ExperimentConfig describes one capping run.
	ExperimentConfig = runner.Config
	// ExperimentResult carries per-epoch power series and per-core
	// performance.
	ExperimentResult = runner.Result
)

// RunExperiment executes one run (Policy nil = all-max baseline).
func RunExperiment(cfg ExperimentConfig) (*ExperimentResult, error) { return runner.Run(cfg) }

// RunExperimentPair executes a policy run and its matching baseline.
func RunExperimentPair(cfg ExperimentConfig) (pol, base *ExperimentResult, err error) {
	return runner.RunPair(cfg)
}

// Figure-level harness (paper §IV).
type (
	// LabOptions control experiment fidelity.
	LabOptions = experiments.Options
	// Lab caches baselines and reproduces each figure.
	Lab = experiments.Lab
)

// NewLab builds an experiment harness; see the Lab's Fig* methods.
func NewLab(o LabOptions) *Lab { return experiments.NewLab(o) }
