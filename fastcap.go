// Package fastcap is the public API of this FastCap reproduction — an
// implementation of "FastCap: An Efficient and Fair Algorithm for Power
// Capping in Many-Core Systems" (Liu, Cox, Deng, Draper, Bianchini —
// ISPASS 2016), together with the simulated many-core platform, the
// baseline policies, and the experiment harness of the paper's
// evaluation.
//
// The heavy lifting lives in internal packages; this package re-exports
// the stable surface:
//
//   - the FastCap optimizer (Algorithm 1) and its inputs: Inputs, Solve;
//   - capping policies behind the Policy interface: NewFastCapPolicy,
//     NewCPUOnlyPolicy, NewFreqParPolicy, NewEqlPwrPolicy,
//     NewEqlFreqPolicy, NewMaxBIPSPolicy;
//   - the streaming controller: Platform, NewSession, Session.Step,
//     with the batch wrappers RunExperiment, RunExperimentPair;
//   - trace record/replay for policy dry-runs: NewRecorder,
//     NewReplayPlatform;
//   - the multi-session serving layer behind cmd/fastcapd:
//     NewSessionManager, NewServeHandler;
//   - cluster-level budget coordination (one global watt budget
//     arbitrated across many sessions): NewClusterCoordinator with the
//     static / slack-reclaiming / priority-weighted / SLO /
//     predictive arbiters;
//   - the simulated platform: DefaultSystemConfig, NewSystem;
//   - Table III workloads: Workloads, WorkloadByName;
//   - the figure-level experiment harness: NewLab.
//
// Quick start — stream a capped run one control epoch at a time:
//
//	mix, _ := fastcap.WorkloadByName("MIX3")
//	cfg := fastcap.ExperimentConfig{
//		Sim:        fastcap.DefaultSystemConfig(16),
//		Mix:        mix,
//		BudgetFrac: 0.6,
//		Epochs:     40,
//		Policy:     fastcap.NewFastCapPolicy(),
//	}
//	ses, _ := fastcap.NewSession(cfg, fastcap.WithObserver(func(e fastcap.EpochRecord) {
//		fmt.Printf("epoch %d: %.1f W under a %.1f W cap\n", e.Epoch, e.AvgPowerW, e.BudgetW)
//	}))
//	for {
//		if _, err := ses.Step(ctx); err != nil {
//			break // fastcap.ErrSessionDone after the last epoch
//		}
//	}
//	res := ses.Result()
//
// Sessions can be retargeted mid-run (SetBudgetFrac), driven by a
// per-epoch budget trace (WithBudgetTrace), cancelled via the Step
// context, and attached to any Platform — the event-driven simulator,
// a recorded trace (NewReplayPlatform), or a production adapter. The
// batch form is one call:
//
//	res, base, _ := fastcap.RunExperimentPair(cfg)
//	norm, _ := res.NormalizedPerf(base)
package fastcap

import (
	"io"
	"net/http"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/dvfs"
	"repro/internal/experiments"
	"repro/internal/policy"
	"repro/internal/replay"
	"repro/internal/runner"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Optimizer surface (paper §III-B, Algorithm 1).
type (
	// Inputs are the FastCap optimizer inputs: think times, cache times,
	// fitted power models, queue statistics, budget.
	Inputs = core.Inputs
	// Result is the continuous optimizer solution (objective D, think
	// times, bus transfer time) before DVFS-ladder quantization.
	Result = core.Result
	// Assignment is the quantized ladder assignment.
	Assignment = core.Assignment
	// ResponseFunc evaluates the per-core memory response time R_i(s_b).
	ResponseFunc = core.ResponseFunc
)

// SbCandidatesFromLadder derives the optimizer's M candidate bus
// transfer times from a memory DVFS ladder.
func SbCandidatesFromLadder(sbBar float64, memLadder *Ladder) []float64 {
	return core.SbCandidatesFromLadder(sbBar, memLadder)
}

// DVFS ladders (paper §IV-A).
type Ladder = dvfs.Ladder

// DefaultCoreLadder returns 10 steps spanning 2.2–4.0 GHz at 0.65–1.2 V.
func DefaultCoreLadder() *Ladder { return dvfs.DefaultCoreLadder() }

// EfficiencyCoreLadder returns the little-core ladder (1.2–2.4 GHz) of
// the heterogeneous machine specs.
func EfficiencyCoreLadder() *Ladder { return dvfs.EfficiencyCoreLadder() }

// BinnedCoreLadder returns the slow-bin core ladder (2.0–3.6 GHz).
func BinnedCoreLadder() *Ladder { return dvfs.BinnedCoreLadder() }

// NamedCoreLadder resolves a ladder preset: "perf", "efficiency" or
// "binned".
func NamedCoreLadder(name string) (*Ladder, error) { return dvfs.NamedCoreLadder(name) }

// DefaultMemLadder returns 200–800 MHz in 66 MHz steps.
func DefaultMemLadder() *Ladder { return dvfs.DefaultMemLadder() }

// Heterogeneous machines: named core classes with per-class DVFS
// ladders, power curves, ExecCPI scaling, and optional explicit app
// placement. Set SystemConfig.Machine to build one; class counts must
// sum to the core count, and the homogeneous path (nil Machine) is
// bit-identical to earlier releases.
type (
	// MachineSpec describes an asymmetric machine as named core classes.
	MachineSpec = sim.MachineSpec
	// CoreClass is one named group of identical cores.
	CoreClass = sim.CoreClass
	// MachineLayout is the per-core resolution of a machine description
	// (ladders, power calibrations, placement).
	MachineLayout = sim.MachineLayout
)

// Policies (paper §IV-B).
type (
	// Policy is one capping algorithm: Snapshot in, Decision out.
	//
	// Ownership contracts (performance-motivated):
	//   - A policy instance may keep internal scratch across Decide
	//     calls; use one instance per concurrent run. Instances must not
	//     be shared between goroutines.
	//   - The Snapshot (and its slices) passed to Decide is only valid
	//     for the duration of the call — the runner refills one buffer
	//     per epoch. Implementations that retain per-epoch data must
	//     copy it.
	Policy = policy.Policy
	// Snapshot is the per-epoch controller input. Snapshots handed to
	// Policy.Decide are reused across epochs; copy anything you keep.
	Snapshot = policy.Snapshot
	// Decision is a full per-core + memory DVFS assignment.
	Decision = policy.Decision
)

// NewFastCapPolicy returns the paper's algorithm (guarded quantization,
// binary search over memory frequencies).
func NewFastCapPolicy() Policy { return policy.NewFastCap() }

// NewCPUOnlyPolicy returns FastCap restricted to core DVFS with memory
// pinned at maximum frequency.
func NewCPUOnlyPolicy() Policy { return policy.NewCPUOnly() }

// NewFreqParPolicy returns the linear-feedback frequency-quota policy
// of Ma et al. [22].
func NewFreqParPolicy() Policy { return policy.NewFreqPar() }

// NewEqlPwrPolicy returns the equal-power-share policy of Sharkey et
// al. [16], extended with memory DVFS.
func NewEqlPwrPolicy() Policy { return policy.NewEqlPwr() }

// NewEqlFreqPolicy returns the uniform-frequency policy of Herbert and
// Marculescu [42], extended with memory DVFS.
func NewEqlFreqPolicy() Policy { return policy.NewEqlFreq() }

// NewMaxBIPSPolicy returns the exhaustive throughput-maximizing policy
// of Isci et al. [14]; it refuses core counts where O(F^N) explodes.
func NewMaxBIPSPolicy() Policy { return policy.NewMaxBIPS() }

// NewGreedyPolicy returns the heap-based greedy heuristic of Meng et
// al. [18] / Winter et al. [19]: near-MaxBIPS throughput at
// O(M·F·N·log N) cost, with the same fairness blind spot.
func NewGreedyPolicy() Policy { return policy.NewGreedy() }

// BudgetGroup caps the joint power of a set of cores (a socket or
// voltage island) — the paper's §III-B per-processor extension.
type BudgetGroup = core.BudgetGroup

// NewGroupedFastCapPolicy returns FastCap with additional per-group
// power budgets on top of the global cap.
func NewGroupedFastCapPolicy(groups []BudgetGroup) Policy {
	return policy.NewGroupedFastCap(groups)
}

// Simulated platform (paper §IV-A, Table II).
type (
	// SystemConfig describes the simulated machine.
	SystemConfig = sim.Config
	// System is an instantiated machine bound to a workload.
	//
	// The Profiles returned by RunProfile and FinishEpoch alias
	// System-owned buffers: each is valid until the next call of the
	// same method. Callers accumulating per-epoch profiles must copy
	// the slices they keep.
	System = sim.System
)

// DefaultSystemConfig mirrors the paper's evaluation platform for n
// cores (n a positive multiple of 4).
func DefaultSystemConfig(n int) SystemConfig { return sim.DefaultConfig(n) }

// NewSystem builds a simulated machine running the given workload.
func NewSystem(cfg SystemConfig, wl *Workload) (*System, error) { return sim.New(cfg, wl) }

// Workloads (paper Table III).
type (
	// WorkloadSpec is one Table III row.
	WorkloadSpec = workload.MixSpec
	// Workload is an instantiated mix: one application per core.
	Workload = workload.Workload
	// PhaseSchedule scales workload intensity at chosen epochs —
	// diurnal load shifts for churn experiments. Zero value: no shifts.
	PhaseSchedule = workload.PhaseSchedule
	// PhaseShift is one step of a PhaseSchedule.
	PhaseShift = workload.PhaseShift
)

// Workloads returns all 16 Table III mixes.
func Workloads() []WorkloadSpec { return workload.TableIII }

// WorkloadByName returns a Table III mix by name (e.g. "MEM1").
func WorkloadByName(name string) (WorkloadSpec, error) { return workload.MixByName(name) }

// InstantiateWorkload builds the per-core application instances of a
// mix for an n-core machine.
func InstantiateWorkload(spec WorkloadSpec, n int) (*Workload, error) {
	return workload.Instantiate(spec, n)
}

// PlaceWorkload builds a workload from an explicit application-per-core
// placement (the heterogeneous machines' layout; rates are standalone).
func PlaceWorkload(name string, appNames []string) (*Workload, error) {
	return workload.InstantiatePlacement(name, appNames)
}

// Experiment runner (paper §III-C epoch protocol).
type (
	// ExperimentConfig describes one capping run.
	ExperimentConfig = runner.Config
	// ExperimentResult carries per-epoch power series and per-core
	// performance.
	ExperimentResult = runner.Result
	// EpochRecord is one epoch's telemetry: powers, budget in force,
	// applied DVFS decision, per-core instruction counts, and the
	// model-validation signals.
	EpochRecord = runner.EpochRecord
)

// RunExperiment executes one run (Policy nil = all-max baseline).
func RunExperiment(cfg ExperimentConfig) (*ExperimentResult, error) { return runner.Run(cfg) }

// RunExperimentPair executes a policy run and its matching baseline.
func RunExperimentPair(cfg ExperimentConfig) (pol, base *ExperimentResult, err error) {
	return runner.RunPair(cfg)
}

// Streaming controller (the session API).
type (
	// Platform is the minimal machine surface the controller drives:
	// profile window, DVFS apply, epoch finish, and power/queue-stat
	// accessors. *System implements it; so do replay platforms and
	// (by design) production adapters.
	Platform = runner.Platform
	// Session runs the control loop one epoch per Step call, streaming
	// telemetry to observers and supporting mid-run budget retargeting
	// and cancellation.
	Session = runner.Session
	// SessionOption configures NewSession.
	SessionOption = runner.SessionOption
)

// Typed errors of the session API.
var (
	// ErrInvalidConfig tags configuration rejected up front by
	// NewSession/RunExperiment; test with errors.Is.
	ErrInvalidConfig = runner.ErrInvalidConfig
	// ErrSessionDone is returned by Session.Step after the last epoch:
	// normal termination, not failure.
	ErrSessionDone = runner.ErrDone
	// ErrConcurrentStep is returned by Session.Step when another Step
	// (or Result) is already in flight — the typed refusal that replaces
	// what would otherwise be a data race between two drivers.
	ErrConcurrentStep = runner.ErrConcurrentStep
)

// NewSession builds a streaming run: validate the configuration, build
// the platform (or use WithPlatform's), and start the machine. Step
// executes one epoch; Result finalizes. RunExperiment is the batch
// equivalent and produces a bit-identical ExperimentResult.
func NewSession(cfg ExperimentConfig, opts ...SessionOption) (*Session, error) {
	return runner.NewSession(cfg, opts...)
}

// WithObserver streams every completed epoch's record to fn.
func WithObserver(fn func(EpochRecord)) SessionOption { return runner.WithObserver(fn) }

// WithBudgetTrace drives the cap from a per-epoch schedule (fractions
// of peak in (0, 1]).
func WithBudgetTrace(trace func(epoch int) float64) SessionOption {
	return runner.WithBudgetTrace(trace)
}

// WithPlatform attaches the controller to a custom Platform instead of
// building a simulator from the config.
func WithPlatform(p Platform) SessionOption { return runner.WithPlatform(p) }

// WithPlatformWrap interposes a wrapper (e.g. NewRecorder) around the
// session's platform after construction, however it was built.
func WithPlatformWrap(wrap func(Platform) Platform) SessionOption {
	return runner.WithPlatformWrap(wrap)
}

// Trace record/replay (policy dry-runs without the event engine).
type (
	// Recording is a captured run: static machine characteristics plus
	// the per-epoch measurement-window stream; JSON-serializable via
	// WriteJSON/ReadJSON.
	Recording = replay.Recording
	// Recorder is a pass-through Platform capturing everything a live
	// platform produces.
	Recorder = replay.Recorder
	// ReplayPlatform plays a Recording back to the controller with no
	// simulation; replaying under the original configuration and
	// policy reproduces the run bit for bit.
	ReplayPlatform = replay.Platform
)

// NewRecorder wraps a live platform for capture; drive a session with
// WithPlatform(recorder), then take Recording().
func NewRecorder(live Platform) *Recorder { return replay.NewRecorder(live) }

// NewReplayPlatform mounts a recording for playback.
func NewReplayPlatform(rec *Recording) (*ReplayPlatform, error) { return replay.New(rec) }

// ReadRecording deserializes a Recording written with WriteJSON.
func ReadRecording(r io.Reader) (*Recording, error) { return replay.ReadJSON(r) }

// Serving layer (the fastcapd service): many concurrent sessions,
// stepped fair round-robin on a bounded scheduler pool, with NDJSON
// epoch streaming and live budget retargeting over HTTP.
type (
	// SessionManager owns concurrent capping sessions — the full
	// create / scheduled-stepping / retarget / close lifecycle — and
	// guarantees every session's stream and result are bit-identical
	// to a solo RunExperiment of the same configuration.
	SessionManager = serve.Manager
	// ServeOptions bounds the manager: scheduler pool size and the
	// resident-session admission limit.
	ServeOptions = serve.Options
	// SessionRequest is the create-session payload (POST /sessions).
	SessionRequest = serve.Request
	// SessionMachineRequest is the JSON machine spec of a session
	// request (named core classes).
	SessionMachineRequest = serve.MachineRequest
	// SessionClassRequest is one core class of a machine request.
	SessionClassRequest = serve.ClassRequest
	// SessionStatus is one session's externally visible snapshot.
	SessionStatus = serve.Status
	// SessionState is the lifecycle state machine position.
	SessionState = serve.State
)

// Typed errors of the serving layer; test with errors.Is.
var (
	// ErrSessionNotFound reports an unknown or deleted session id.
	ErrSessionNotFound = serve.ErrNotFound
	// ErrManagerDraining rejects creates after Shutdown began.
	ErrManagerDraining = serve.ErrDraining
	// ErrTooManySessions rejects creates above ServeOptions.MaxSessions.
	ErrTooManySessions = serve.ErrTooManySessions
	// ErrSessionRunning guards results/recordings of live sessions.
	ErrSessionRunning = serve.ErrNotFinished
	// ErrSessionFinished rejects operations that can no longer take
	// effect — retargeting the budget of a session that is already
	// terminal (or stepping its final epoch).
	ErrSessionFinished = serve.ErrFinished
	// ErrNoRecording reports a session created without Record.
	ErrNoRecording = serve.ErrNoRecording
)

// NewSessionManager starts a serving-layer manager and its scheduler
// pool; drain it with Shutdown.
func NewSessionManager(o ServeOptions) *SessionManager { return serve.NewManager(o) }

// NewServeHandler returns the fastcapd HTTP API over m: POST /sessions,
// GET /sessions/{id}/stream (NDJSON), POST /sessions/{id}/budget,
// GET /sessions/{id}/result, GET /sessions/{id}/recording,
// DELETE /sessions/{id}.
func NewServeHandler(m *SessionManager) http.Handler { return serve.NewHandler(m) }

// Cluster coordination: one global watt budget arbitrated across many
// sessions at epoch boundaries — the fleet-level layer above Session.
type (
	// ClusterCoordinator owns a global power budget and re-partitions
	// it across member sessions each epoch via a pluggable arbiter,
	// stepping every member in deterministic lockstep.
	ClusterCoordinator = cluster.Coordinator
	// ClusterConfig bounds a coordinator: global budget, arbiter,
	// member-step worker pool.
	ClusterConfig = cluster.Config
	// ClusterMember is one tenant: a Session plus its arbitration
	// parameters (id, priority weight, guaranteed floor).
	ClusterMember = cluster.Member
	// ClusterArbiter re-partitions the global budget each epoch.
	ClusterArbiter = cluster.Arbiter
	// ClusterObservation is one member's epoch-boundary view (peak,
	// floor, weight, grant, measured power, throttle signal).
	ClusterObservation = cluster.Observation
	// ClusterEpochRecord is one cluster epoch: budget in force and
	// every member's grant/draw/slack line.
	ClusterEpochRecord = cluster.EpochRecord
	// ClusterMemberGrant is one member's line of a cluster epoch.
	ClusterMemberGrant = cluster.MemberGrant
	// ClusterMemberResult pairs a member id with its finalized run.
	ClusterMemberResult = cluster.MemberResult
	// ClusterMemberParams normalizes one member's arbitration
	// parameters (weight, floor fraction, optional BIPS target).
	ClusterMemberParams = cluster.MemberParams
	// ClusterSLOEvent is one throughput-contract transition
	// (slo_violated / slo_restored) in an epoch record's event list.
	ClusterSLOEvent = cluster.SLOEvent
)

// Typed errors of the cluster layer.
var (
	// ErrClusterDone is returned by Coordinator.Step once every member
	// finished: normal termination, not failure.
	ErrClusterDone = cluster.ErrDone
	// ErrUnknownClusterMember reports a Detach target that is not a
	// member.
	ErrUnknownClusterMember = cluster.ErrUnknownMember
)

// NewClusterCoordinator validates members and builds the fleet
// coordinator; Step runs one arbitrated cluster epoch.
func NewClusterCoordinator(cfg ClusterConfig, members []ClusterMember) (*ClusterCoordinator, error) {
	return cluster.New(cfg, members)
}

// NewStaticProportionalArbiter grants fixed shares proportional to each
// member machine's peak power.
func NewStaticProportionalArbiter() ClusterArbiter { return cluster.NewStaticProportional() }

// NewSlackReclaimArbiter shifts budget from members leaving watts on
// the table to members pressed against their cap, with hysteresis.
func NewSlackReclaimArbiter() ClusterArbiter { return cluster.NewSlackReclaim() }

// NewPriorityWeightedArbiter grants shares proportional to
// weight × peak.
func NewPriorityWeightedArbiter() ClusterArbiter { return cluster.NewPriorityWeighted() }

// NewSLOArbiter funds each contracted member's estimated demand for its
// BIPS target first and water-fills the remainder; infeasible contract
// sets degrade deterministically in proportion to the targets.
func NewSLOArbiter() ClusterArbiter { return cluster.NewSLOArbiter() }

// NewPredictiveArbiter pre-allocates each epoch's budget to a
// per-member forecast of next-epoch draw (EWMA level + trend),
// clamped to [floor, peak]; until every member's model is warm it
// behaves exactly like the slack reclaimer.
func NewPredictiveArbiter() ClusterArbiter { return cluster.NewPredictiveArbiter() }

// ClusterArbiterByName resolves an arbiter registry name ("static",
// "slack", "priority", "slo", "predictive") to a fresh arbiter
// instance.
func ClusterArbiterByName(name string) (ClusterArbiter, bool) { return cluster.ArbiterByName(name) }

// ClusterArbiterNames lists the arbiter registry in resolution order —
// the same table ClusterArbiterByName and the serving layer accept.
func ClusterArbiterNames() []string { return cluster.ArbiterNames() }

// Serving-layer cluster groups (POST /clusters on fastcapd).
type (
	// ClusterRequest is the create-group payload: global budget,
	// arbiter, members.
	ClusterRequest = serve.ClusterRequest
	// ClusterMemberRequest is one member of a group create or attach.
	ClusterMemberRequest = serve.ClusterMemberRequest
	// ClusterStatus is a group's externally visible snapshot.
	ClusterStatus = serve.ClusterStatus
	// ClusterMemberStatus describes one group member statically.
	ClusterMemberStatus = serve.ClusterMemberStatus
)

// Distributed coordination (fastcapd's /dist surface): the cluster
// coordinator split from its members, arbitrating one watt budget over
// the network with epoch barriers, straggler eviction and journaled
// crash recovery. See internal/dist.
type (
	// DistConfig bounds a distributed coordinator (budget, quorum,
	// straggler deadline, epoch cap).
	DistConfig = dist.Config
	// DistCoordinator runs the epoch-barrier protocol over a Transport.
	DistCoordinator = dist.Coordinator
	// DistAgentConfig wires an agent daemon: members, session builder,
	// send path, clock, journal, announce backoff.
	DistAgentConfig = dist.AgentConfig
	// DistAgent hosts member sessions for a remote coordinator.
	DistAgent = dist.Agent
	// DistMemberSpec declares one hosted member (id, weight, floor,
	// session spec).
	DistMemberSpec = dist.MemberSpec
	// DistMsg is one coordinator↔agent wire frame.
	DistMsg = dist.Msg
	// DistEvent is one typed membership-pressure event (join, readmit,
	// evict, detach, abandon).
	DistEvent = dist.Event
	// DistSimConfig seeds the deterministic in-memory transport and its
	// fault schedule.
	DistSimConfig = dist.SimConfig
	// DistFaults is the injectable fault mix: drop, duplicate, delay,
	// agent restarts.
	DistFaults = dist.Faults
	// DistRestart schedules one agent crash (and optional reboot) in a
	// simulated-transport fault plan.
	DistRestart = dist.Restart
	// DistSimNet is the simulated transport the chaos suite runs on.
	DistSimNet = dist.SimNet
	// DistBuildFunc constructs a member session from its JSON spec.
	DistBuildFunc = dist.BuildFunc
	// DistJournalStore persists an agent's grant history for restart
	// recovery.
	DistJournalStore = dist.JournalStore
	// DistMemJournal is the in-memory journal store (tests, examples).
	DistMemJournal = dist.MemJournal
	// DistFileJournal is the file-backed journal store fastcapd's
	// -agent-journal flag uses.
	DistFileJournal = dist.FileJournal
)

// DistSessionBuilder returns the session builder distributed agents
// use in fastcapd: member specs are the same JSON schema as
// POST /sessions (SessionRequest).
func DistSessionBuilder() DistBuildFunc { return serve.SessionFromSpec }

// NewDistCoordinator validates cfg and builds an idle distributed
// coordinator; Run starts the protocol over a transport.
func NewDistCoordinator(cfg DistConfig) (*DistCoordinator, error) { return dist.NewCoordinator(cfg) }

// NewDistAgent builds an agent (recovering journaled state when the
// config's journal store holds any); Start announces its members.
func NewDistAgent(cfg DistAgentConfig) (*DistAgent, error) { return dist.NewAgent(cfg) }

// NewDistSimNet builds the seeded in-memory transport used to test
// coordinator and agents deterministically, faults included.
func NewDistSimNet(cfg DistSimConfig) *DistSimNet { return dist.NewSimNet(cfg) }

// Figure-level harness (paper §IV).
type (
	// LabOptions control experiment fidelity.
	LabOptions = experiments.Options
	// Lab caches baselines and reproduces each figure.
	Lab = experiments.Lab
)

// NewLab builds an experiment harness; see the Lab's Fig* methods.
func NewLab(o LabOptions) *Lab { return experiments.NewLab(o) }
