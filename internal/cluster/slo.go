package cluster

import "math"

// SLO event types carried in an EpochRecord's Events stream. A member
// transitions to violated when its measured BIPS falls below
// target × (1 − band) and back to restored only once it reaches the
// full target again — the asymmetry is the hysteresis that keeps a
// marginal member from flapping between states every epoch.
const (
	// SLOViolated marks the epoch a member's throughput first dropped
	// below its declared target (beyond the hysteresis band).
	SLOViolated = "slo_violated"
	// SLORestored marks the epoch a previously-violated member climbed
	// back to (or above) its full target.
	SLORestored = "slo_restored"
)

// SLOEvent is a typed per-member pressure event in the grant stream:
// the boundary crossings of a member's throughput contract. Events
// appear only on transition epochs, so a healthy cluster streams none.
type SLOEvent struct {
	// Member is the member ID the event concerns.
	Member string `json:"member"`
	// Type is SLOViolated or SLORestored.
	Type string `json:"type"`
	// BIPS is the member's measured throughput over the epoch that
	// crossed the boundary.
	BIPS float64 `json:"bips"`
	// TargetBIPS is the member's declared target.
	TargetBIPS float64 `json:"target_bips"`
}

// SLOTracker derives SLO pressure events from finished epoch records.
// It is deliberately decoupled from the arbiter: the in-process
// Coordinator and the distributed one both run a tracker over the
// records they assemble, and because the records are byte-identical the
// event streams are too — an arbiter-side implementation would instead
// depend on each coordinator's private observation plumbing.
//
// Not safe for concurrent use; each coordinator owns one.
type SLOTracker struct {
	// Band is the hysteresis dead zone: a member is violated only below
	// target × (1 − Band), restored only at the full target.
	Band float64

	violated map[string]bool
}

// NewSLOTracker returns a tracker with the default hysteresis band.
func NewSLOTracker() *SLOTracker {
	return &SLOTracker{Band: defaultSLOBand, violated: make(map[string]bool)}
}

// Apply inspects rec's member lines in order, updates each contracted
// member's violation state with hysteresis, marks currently-violated
// lines (SLOViolated) and appends transition events to rec.Events. It
// returns the number of violation transitions this epoch, the number of
// contracted members currently meeting their target, and the number of
// contracted members observed — the coordinator's metric feed.
//
// Members without a contract (TargetBIPS == 0) are untouched: their
// lines carry no SLO fields and they never produce events, which keeps
// contract-free clusters byte-identical to pre-SLO builds.
func (t *SLOTracker) Apply(rec *EpochRecord) (violations, satisfied, tracked int) {
	for i := range rec.Members {
		mg := &rec.Members[i]
		if mg.TargetBIPS <= 0 {
			continue
		}
		tracked++
		was := t.violated[mg.ID]
		now := was
		if !was && mg.BIPS < mg.TargetBIPS*(1-t.Band) {
			now = true
			violations++
			rec.Events = append(rec.Events, SLOEvent{
				Member: mg.ID, Type: SLOViolated,
				BIPS: mg.BIPS, TargetBIPS: mg.TargetBIPS,
			})
		} else if was && mg.BIPS >= mg.TargetBIPS {
			now = false
			rec.Events = append(rec.Events, SLOEvent{
				Member: mg.ID, Type: SLORestored,
				BIPS: mg.BIPS, TargetBIPS: mg.TargetBIPS,
			})
		}
		if now != was {
			t.violated[mg.ID] = now
		}
		mg.SLOViolated = now
		if !now {
			satisfied++
		}
	}
	return violations, satisfied, tracked
}

// Forget drops a detached member's violation state so a later member
// reusing the ID starts clean.
func (t *SLOTracker) Forget(id string) { delete(t.violated, id) }

// defaultSLOBand is the shared hysteresis band for the arbiter's
// feasible/degraded switch and the tracker's violated/restored switch.
const defaultSLOBand = 0.05

// SLOArbiter arbitrates on throughput contracts instead of raw slack:
// members declare a target rate (Observation.TargetBIPS) and the
// arbiter works out the watts each needs to hold it, satisfies those
// floors first, then water-fills the remainder via the shared clamp
// path. Per-member demand is estimated from measured efficiency —
// watts-per-BIPS over the completed epoch, scaled to the target plus a
// Headroom cushion — and moved toward with a Gain-limited step, the
// same rate limiting SlackReclaim uses.
//
// When Σ demands exceed the budget the cluster is infeasible and the
// arbiter degrades deterministically: grants become a pure function of
// the declared contracts — floors first, remainder proportional to
// TargetBIPS, clamped to peaks — with no measured quantity in the mix,
// so the infeasible regime is a fixed point, not an oscillation chasing
// noisy telemetry. Hysteresis (Band) keeps the arbiter in the degraded
// regime until demands drop clearly below budget, so a cluster on the
// boundary does not flap between regimes.
//
// Members without a contract (TargetBIPS == 0) are floor-first
// best-effort: they hold their FloorW and share in whatever remains
// after contracted members are funded.
type SLOArbiter struct {
	// Band is the hysteresis dead zone for leaving the degraded regime:
	// once infeasible, the arbiter returns to demand-driven grants only
	// when Σ demands ≤ budget × (1 − Band). Default 0.05.
	Band float64
	// Headroom is the cushion multiplier on the watts-for-target
	// estimate, keeping a member that just reached its target from
	// being squeezed back below it. Default 1.15.
	Headroom float64
	// Gain is the fraction of the demand delta applied per epoch, in
	// (0, 1]. Default 0.5.
	Gain float64

	f        fillScratch
	demand   []float64
	degraded bool
}

// NewSLOArbiter returns the SLO arbiter with its default hysteresis
// parameters.
func NewSLOArbiter() *SLOArbiter {
	return &SLOArbiter{Band: defaultSLOBand, Headroom: 1.15, Gain: 0.5}
}

// Name implements Arbiter.
func (*SLOArbiter) Name() string { return "slo" }

// FillPasses implements FillPassReporter.
func (a *SLOArbiter) FillPasses() int { return a.f.passes }

// Rebalance implements Arbiter.
func (a *SLOArbiter) Rebalance(budgetW float64, obs []Observation, grants []float64) {
	n := len(obs)
	a.f.passes = 0
	if coldStart(obs) {
		// No telemetry to estimate efficiency from yet: seed plain
		// proportional-to-peak, like every other arbiter (identical
		// seeds are what let a freshly-attached member join without
		// perturbing the stream).
		a.degraded = false
		a.f.proportional(budgetW, obs, grants, false)
		return
	}
	if cap(a.demand) < n {
		a.demand = make([]float64, n)
	}
	a.demand = a.demand[:n]
	sumDemand := 0.0
	for i, o := range obs {
		d := o.FloorW // best-effort members: floor now, surplus later
		if o.TargetBIPS > 0 {
			// Watts the contract needs at the member's measured
			// efficiency; with no usable signal assume the worst case.
			est := o.PeakW
			if o.BIPS > 0 && o.PowerW > 0 {
				est = o.PowerW * (o.TargetBIPS / o.BIPS) * a.Headroom
			}
			d = o.GrantW + a.Gain*(est-o.GrantW)
			d = math.Min(math.Max(d, o.FloorW), o.PeakW)
		}
		a.demand[i] = d
		sumDemand += d
	}
	if !a.degraded && sumDemand > budgetW {
		a.degraded = true
	} else if a.degraded && sumDemand <= budgetW*(1-a.Band) {
		a.degraded = false
	}
	a.f.grow(n)
	if a.degraded {
		// Infeasible: grants depend only on the declared contracts —
		// floors first, remainder split proportional to TargetBIPS
		// (best-effort members propose 0 and clamp to their floors) —
		// so the degraded regime is an exact fixed point.
		for i, o := range obs {
			a.f.lo[i] = o.FloorW
			a.f.hi[i] = o.PeakW
			a.f.share[i] = o.TargetBIPS
		}
		a.f.fill(budgetW, grants)
		return
	}
	// Feasible: every demand becomes a funded floor (sumDemand ≤ budget,
	// so the fill covers them all) and the surplus lands
	// weight-proportionally with whoever has peak left to use it.
	for i, o := range obs {
		a.f.lo[i] = a.demand[i]
		a.f.hi[i] = o.PeakW
		a.f.share[i] = o.Weight * o.PeakW
	}
	a.f.fill(budgetW, grants)
}
