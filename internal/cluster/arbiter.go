package cluster

import (
	"fmt"
	"math"

	"repro/internal/runner"
)

// ComputeGrants runs one arbitration round: arb re-partitions budgetW
// across the members described by obs (ids names them, for error
// reporting), and every resulting grant is clamped symmetrically into
// [FloorW, PeakW] — the built-in arbiters already respect the bounds,
// but Arbiter is a public seam, and a custom implementation returning
// an out-of-range grant should lose precision, not poison the cluster.
// Only NaN — no sane clamp — is a fatal arbiter bug, reported as a
// runner.ErrInvalidConfig. grants[i] holds member i's next-epoch budget
// in watts on return.
//
// Observations are validated before the arbiter sees them: a non-finite
// or negative-count telemetry field (a zero-duration epoch dividing
// into a rate, a corrupted wire frame) is rejected typed at this seam,
// so Inf/NaN can never reach an arbiter's state, the SLO tracker, or
// the NDJSON stream.
//
// This is the single arbitration core shared by the in-process
// Coordinator and the distributed coordinator (internal/dist): both
// feed it identical (budgetW, obs) sequences, which is what makes the
// remote grant stream byte-identical to the local one. Arbiters that
// additionally implement IDRebalancer receive the member ids and can
// key per-member state on identity rather than position.
func ComputeGrants(arb Arbiter, budgetW float64, ids []string, obs []Observation, grants []float64) error {
	if err := ValidateObservations(ids, obs); err != nil {
		return err
	}
	if ir, ok := arb.(IDRebalancer); ok {
		ir.RebalanceIDs(budgetW, ids, obs, grants)
	} else {
		arb.Rebalance(budgetW, obs, grants)
	}
	for i := range grants {
		g := grants[i]
		if math.IsNaN(g) {
			return fmt.Errorf("%w: arbiter %q granted NaN W to member %q", runner.ErrInvalidConfig, arb.Name(), ids[i])
		}
		if g < obs[i].FloorW {
			g = obs[i].FloorW
		}
		if g > obs[i].PeakW {
			g = obs[i].PeakW
		}
		grants[i] = g
	}
	return nil
}

// Observation is one live member's view at an epoch boundary — what the
// arbiter knows about the member when it re-partitions the global
// budget. GrantW and PowerW describe the epoch just completed; a member
// with no completed epoch yet (epoch 0, or freshly attached) reports
// Warm == false, which every arbiter treats as "seed me proportionally".
// Warm is an explicit flag, not a GrantW sentinel: a legitimately
// granted ~0 W member (floor 0, budget exhausted) must not silently
// re-trigger proportional reseeding.
type Observation struct {
	// PeakW is the member machine's nameplate peak — the most a grant
	// can ever be worth to it.
	PeakW float64
	// FloorW is the member's guaranteed minimum grant. Arbiters never
	// allocate below it, and when the global budget cannot cover the sum
	// of floors every member degrades to exactly its floor.
	FloorW float64
	// Weight is the member's priority weight (the priority-weighted
	// arbiter's share multiplier; 1 for equal treatment).
	Weight float64
	// GrantW is the budget the member held during the completed epoch
	// (0 when it has not run one yet).
	GrantW float64
	// PowerW is the average power the member actually drew over that
	// epoch. GrantW − PowerW is its slack.
	PowerW float64
	// ThrottleFrac is the fraction of the member's cores the capping
	// policy held below their top DVFS step during the epoch — the
	// signal that the member could convert more budget into
	// performance. 0 means every core ran at full frequency, so any
	// slack is genuine.
	ThrottleFrac float64

	// Instr is the total instructions the member retired over the
	// completed epoch (0 when it has not run one yet). Together with the
	// epoch length it is the member's progress telemetry — what turns
	// the arbiter from a watt balancer into a contract enforcer.
	Instr float64
	// BIPS is Instr expressed as a rate: giga-instructions per second
	// over the completed epoch (instr/epochNs, numerically identical).
	// Both coordinators compute it with the same division so the
	// distributed grant stream stays byte-identical to the local one.
	BIPS float64
	// TargetBIPS is the member's declared throughput SLO in BIPS; 0
	// means the member carries no contract and is arbitrated on watts
	// alone. Watt-only arbiters ignore it.
	TargetBIPS float64

	// Warm reports that GrantW/PowerW/ThrottleFrac describe a really
	// completed epoch. False for a member that has not run one yet
	// (epoch 0, freshly attached, or readmitted after an eviction) —
	// the arbiters reseed proportionally and history-keeping arbiters
	// restart the member's model cold.
	Warm bool
}

// DeriveBIPS converts an instruction count over an epoch into a BIPS
// rate (instructions per nanosecond ≡ giga-instructions per second),
// guarding the degenerate inputs that would otherwise mint Inf/NaN: a
// zero or negative epoch duration, a negative instruction count, or
// non-finite inputs all derive to 0 — "no measured progress" — instead
// of poisoning downstream consumers. Both coordinators derive member
// BIPS through this one division, which keeps the distributed grant
// stream byte-identical to the local one.
func DeriveBIPS(instr, epochNs float64) float64 {
	if !(epochNs > 0) || math.IsInf(epochNs, 0) {
		return 0
	}
	if !(instr > 0) || math.IsInf(instr, 0) {
		return 0
	}
	return instr / epochNs
}

// ValidateObservations rejects telemetry no arbiter should ever see:
// any non-finite float field, or a negative progress count. The error
// wraps runner.ErrInvalidConfig and names the offending member (ids is
// indexed alongside obs; it may be nil, degrading the name to the
// position). ComputeGrants calls it on every round, so the check sits
// once at the seam instead of inside every arbiter.
func ValidateObservations(ids []string, obs []Observation) error {
	name := func(i int) string {
		if i < len(ids) {
			return ids[i]
		}
		return fmt.Sprintf("#%d", i)
	}
	for i, o := range obs {
		for _, v := range [...]float64{o.PeakW, o.FloorW, o.Weight, o.GrantW, o.PowerW, o.ThrottleFrac, o.Instr, o.BIPS, o.TargetBIPS} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: member %q reported non-finite telemetry %+v", runner.ErrInvalidConfig, name(i), o)
			}
		}
		if o.Instr < 0 || o.BIPS < 0 {
			return fmt.Errorf("%w: member %q reported negative progress (instr %g, bips %g)", runner.ErrInvalidConfig, name(i), o.Instr, o.BIPS)
		}
	}
	return nil
}

// Arbiter re-partitions the global watt budget across cluster members
// at each epoch boundary. Implementations fill grants[i] (same order as
// obs) with member i's next-epoch budget in watts, keeping every grant
// inside [obs[i].FloorW, obs[i].PeakW] whenever budgetW covers the sum
// of floors, and degrading every member to exactly its floor when it
// does not. The Coordinator clamps out-of-range grants into
// [floor, peak] defensively — a sloppy custom arbiter loses precision,
// not the cluster — but a NaN grant is a fatal arbiter bug.
//
// Ownership follows the policy.Policy contract: an instance may keep
// scratch between Rebalance calls, so use one instance per Coordinator
// and never share instances across concurrent clusters. Rebalance must
// be deterministic in (budgetW, obs) — the cluster's bit-identical
// stream guarantee rests on it — and is expected to run in O(len(obs))
// with no steady-state allocations.
type Arbiter interface {
	// Name labels the arbiter in records and tables.
	Name() string
	// Rebalance fills grants with next-epoch budgets for the members
	// described by obs. len(grants) == len(obs); both may be empty.
	Rebalance(budgetW float64, obs []Observation, grants []float64)
}

// fillScratch is the clamped proportional water-fill shared by every
// arbiter: distribute budgetW proportionally to share_i, clamped to
// [lo_i, hi_i], redistributing whatever clamping frees (or costs) among
// the still-unclamped members. It is exact — at most n passes, each
// O(n) — and allocation-free once the scratch has grown to the member
// count.
type fillScratch struct {
	clamped []bool
	lo      []float64
	hi      []float64
	share   []float64
	passes  int // redistribution passes used by the last fill
}

// FillPassReporter is the optional introspection seam for arbiters
// built on the shared water-fill: FillPasses reports how many
// redistribution passes the last Rebalance used (0 when it resolved on
// a trivial bound, without iterating). The Coordinator exports the
// running total as a metric — convergence cost is the water-fill's one
// interesting performance dimension, and the 2n pass bound deserves a
// live gauge on it. Kept out of the Arbiter interface so existing
// custom arbiters stay valid.
type FillPassReporter interface {
	FillPasses() int
}

// IDRebalancer is the optional identity-aware arbitration seam: an
// arbiter that keeps per-member history keyed by member id (so state
// survives positional churn from attach/detach) implements RebalanceIDs
// and receives the same ids slice ComputeGrants validates against.
// ids[i] names obs[i]; the contract is otherwise identical to
// Rebalance, which such arbiters must still implement (falling back to
// positional state) for direct callers. Kept out of the Arbiter
// interface so existing custom arbiters stay valid.
type IDRebalancer interface {
	RebalanceIDs(budgetW float64, ids []string, obs []Observation, grants []float64)
}

// MemberForgetter is the optional per-member state-lifecycle seam,
// mirroring SLOTracker.Forget: arbiters that accumulate per-member
// history implement Forget and both coordinators call it when a member
// leaves the pool for any reason — detach, eviction, or abandonment —
// so a later readmission starts with a cold model instead of stale
// history. Forgetting an unknown id is a no-op.
type MemberForgetter interface {
	Forget(id string)
}

func (f *fillScratch) grow(n int) {
	if cap(f.clamped) < n {
		f.clamped = make([]bool, n)
		f.lo = make([]float64, n)
		f.hi = make([]float64, n)
		f.share = make([]float64, n)
	}
	f.clamped = f.clamped[:n]
	f.lo = f.lo[:n]
	f.hi = f.hi[:n]
	f.share = f.share[:n]
}

// fill distributes budgetW over the bounds currently loaded in f.lo /
// f.hi / f.share and writes the result to grants.
//
// Ceiling clamps are applied before floor clamps: a hi-clamp frees
// budget that raises everyone else's share, so clamping a member to its
// floor in the same pass — off the stale, pre-clamp remainder — would
// freeze it there and leave the freed watts permanently unallocated
// (e.g. weights 1000:1 on equal machines used to strand a third of the
// budget). Floor clamps only shrink the others' shares, which can never
// create a new ceiling violation, so once the floor phase starts the
// ceiling set is final. At most 2n passes, each O(n).
func (f *fillScratch) fill(budgetW float64, grants []float64) {
	n := len(grants)
	f.passes = 0
	sumLo, sumHi := 0.0, 0.0
	for i := 0; i < n; i++ {
		f.clamped[i] = false
		sumLo += f.lo[i]
		sumHi += f.hi[i]
	}
	// Infeasibly tight: every member degrades to its floor — a stable
	// fixed point, not an oscillation between competing claims.
	if budgetW <= sumLo {
		copy(grants, f.lo)
		return
	}
	// More budget than the members can use: everyone runs uncapped.
	if budgetW >= sumHi {
		copy(grants, f.hi)
		return
	}
	for pass := 0; pass < 2*n; pass++ {
		f.passes = pass + 1
		rem := budgetW
		sumShare := 0.0
		open := 0
		for i := 0; i < n; i++ {
			if f.clamped[i] {
				rem -= grants[i]
			} else {
				sumShare += f.share[i]
				open++
			}
		}
		if open == 0 {
			return
		}
		propose := func(i int) float64 {
			// Degenerate all-zero shares split the remainder evenly.
			if sumShare > 0 {
				return rem * f.share[i] / sumShare
			}
			return rem / float64(open)
		}
		hiClamped := false
		for i := 0; i < n; i++ {
			if !f.clamped[i] && propose(i) > f.hi[i] {
				grants[i] = f.hi[i]
				f.clamped[i] = true
				hiClamped = true
			}
		}
		if hiClamped {
			continue // recompute shares off the freed budget first
		}
		changed := false
		for i := 0; i < n; i++ {
			if f.clamped[i] {
				continue
			}
			if g := propose(i); g < f.lo[i] {
				grants[i] = f.lo[i]
				f.clamped[i] = true
				changed = true
			} else {
				grants[i] = g
			}
		}
		if !changed {
			return
		}
	}
}

// proportional loads the scratch with the member floors/peaks and a
// weight·peak (or plain peak) share, then fills — the cold-start seed
// and the whole of the two static arbiters.
func (f *fillScratch) proportional(budgetW float64, obs []Observation, grants []float64, weighted bool) {
	f.grow(len(obs))
	for i, o := range obs {
		f.lo[i] = o.FloorW
		f.hi[i] = o.PeakW
		f.share[i] = o.PeakW
		if weighted {
			f.share[i] = o.Weight * o.PeakW
		}
	}
	f.fill(budgetW, grants)
}

// coldStart reports whether any member has no completed epoch yet — the
// signal to reseed every grant proportionally instead of arbitrating on
// stale (or absent) slack measurements. The signal is the explicit
// Warm flag, not a GrantW == 0 sentinel: a member legitimately granted
// ~0 W (floor 0, budget exhausted by other members' demands) has real
// telemetry and must not silently re-trigger proportional reseeding.
func coldStart(obs []Observation) bool {
	for _, o := range obs {
		if !o.Warm {
			return true
		}
	}
	return false
}

// StaticProportional grants each member a fixed share of the global
// budget proportional to its machine's peak power, ignoring measured
// draw entirely. It is the predictable baseline the reclaiming arbiter
// is judged against.
type StaticProportional struct{ f fillScratch }

// NewStaticProportional returns the proportional-to-peak arbiter.
func NewStaticProportional() *StaticProportional { return &StaticProportional{} }

// Name implements Arbiter.
func (*StaticProportional) Name() string { return "static" }

// FillPasses implements FillPassReporter.
func (a *StaticProportional) FillPasses() int { return a.f.passes }

// Rebalance implements Arbiter.
func (a *StaticProportional) Rebalance(budgetW float64, obs []Observation, grants []float64) {
	a.f.proportional(budgetW, obs, grants, false)
}

// PriorityWeighted grants shares proportional to weight × peak: a
// weight-2 member gets twice the per-watt-of-peak share of a weight-1
// member. Like StaticProportional it ignores measured draw.
type PriorityWeighted struct{ f fillScratch }

// NewPriorityWeighted returns the priority-weighted arbiter.
func NewPriorityWeighted() *PriorityWeighted { return &PriorityWeighted{} }

// Name implements Arbiter.
func (*PriorityWeighted) Name() string { return "priority" }

// FillPasses implements FillPassReporter.
func (a *PriorityWeighted) FillPasses() int { return a.f.passes }

// Rebalance implements Arbiter.
func (a *PriorityWeighted) Rebalance(budgetW float64, obs []Observation, grants []float64) {
	a.f.proportional(budgetW, obs, grants, true)
}

// SlackReclaim shifts budget from members that leave watts on the table
// to members pressed against their cap. The discriminator is the
// member's DVFS state, not its utilization — a capping policy given a
// non-binding budget draws its workload's natural power (which can sit
// anywhere below the grant), so watts alone cannot separate "throttled"
// from "satisfied". Each epoch the arbiter computes a per-member demand
// and moves grants toward it:
//
//   - a member whose cores were held below their top frequency
//     (ThrottleFrac > ThrottleBand) is power-bound; its demand grows by
//     the Headroom factor so the policy gets room to raise frequencies;
//   - a member running every core at full frequency cannot convert more
//     watts; its demand settles at PowerW × Headroom and the difference
//     to its grant returns to the pool.
//
// Hysteresis comes from three places: the ThrottleBand dead zone (a
// marginally-shed core does not flip the member to "bound"), the Gain
// factor that applies only a fraction of each demand delta per epoch,
// and the Headroom cushion that keeps reclaimed members from being
// squeezed to their instantaneous draw. Demands are funded in full when
// the budget covers them (leftover distributed proportionally to
// weight × peak, so reclaimed watts land where they help) or scaled
// back proportionally above the floors when it does not.
type SlackReclaim struct {
	// ThrottleBand is the ThrottleFrac above which a member counts as
	// power-bound. Default 0.10 (more than a tenth of its cores shed).
	ThrottleBand float64
	// Headroom is the demand multiplier over measured draw (and the
	// per-epoch growth factor for power-bound members). Default 1.25.
	Headroom float64
	// Gain is the fraction of the demand delta applied per epoch, in
	// (0, 1]. Default 0.5.
	Gain float64

	f      fillScratch
	demand []float64
}

// NewSlackReclaim returns the slack-reclaiming arbiter with its default
// hysteresis parameters.
func NewSlackReclaim() *SlackReclaim {
	return &SlackReclaim{ThrottleBand: 0.10, Headroom: 1.25, Gain: 0.5}
}

// Name implements Arbiter.
func (*SlackReclaim) Name() string { return "slack" }

// FillPasses implements FillPassReporter.
func (a *SlackReclaim) FillPasses() int { return a.f.passes }

// Rebalance implements Arbiter.
func (a *SlackReclaim) Rebalance(budgetW float64, obs []Observation, grants []float64) {
	n := len(obs)
	a.f.passes = 0 // the scaled-demand branches resolve without a fill
	if coldStart(obs) {
		// Seed plain proportional-to-peak: weights express who deserves
		// surplus, not a bigger starting share — an inflated seed would
		// just be reclaimed again over the first epochs.
		a.f.proportional(budgetW, obs, grants, false)
		return
	}
	if cap(a.demand) < n {
		a.demand = make([]float64, n)
	}
	a.demand = a.demand[:n]
	sumFloor, sumDemand := 0.0, 0.0
	for i, o := range obs {
		target := o.PowerW * a.Headroom // satisfied: draw plus cushion
		if o.ThrottleFrac > a.ThrottleBand {
			target = o.GrantW * a.Headroom // bound: grow, rate-limited
		}
		d := o.GrantW + a.Gain*(target-o.GrantW)
		d = math.Min(math.Max(d, o.FloorW), o.PeakW)
		a.demand[i] = d
		sumFloor += o.FloorW
		sumDemand += d
	}
	if sumDemand >= budgetW {
		// Demands outstrip the budget: fund floors, scale the rest.
		if budgetW <= sumFloor {
			for i, o := range obs {
				grants[i] = o.FloorW
			}
			return
		}
		lambda := (budgetW - sumFloor) / (sumDemand - sumFloor)
		for i, o := range obs {
			grants[i] = o.FloorW + lambda*(a.demand[i]-o.FloorW)
		}
		return
	}
	// Budget covers every demand: demands become the floor of a
	// proportional fill, so reclaimed slack lands with the members that
	// can convert it (bounded by their peaks).
	a.f.grow(n)
	for i, o := range obs {
		a.f.lo[i] = a.demand[i]
		a.f.hi[i] = o.PeakW
		a.f.share[i] = o.Weight * o.PeakW
	}
	a.f.fill(budgetW, grants)
}

// arbiterRegistry is the single source of truth for the named arbiters:
// ArbiterByName resolves against it and ArbiterNames exposes it, so the
// accepted names in serve, fastcap-tables and the experiment sweeps
// cannot drift apart (a registry-sync test asserts they match). Order
// is presentation order in tables and error messages.
var arbiterRegistry = []struct {
	name string
	make func() Arbiter
}{
	{"static", func() Arbiter { return NewStaticProportional() }},
	{"slack", func() Arbiter { return NewSlackReclaim() }},
	{"priority", func() Arbiter { return NewPriorityWeighted() }},
	{"slo", func() Arbiter { return NewSLOArbiter() }},
	{"predictive", func() Arbiter { return NewPredictiveArbiter() }},
}

// ArbiterNames returns the registered arbiter names in presentation
// order. The returned slice is freshly allocated.
func ArbiterNames() []string {
	names := make([]string, len(arbiterRegistry))
	for i, e := range arbiterRegistry {
		names[i] = e.name
	}
	return names
}

// ArbiterByName instantiates a fresh arbiter by registered name (see
// ArbiterNames). Instances keep scratch state — never share one across
// concurrent clusters.
func ArbiterByName(name string) (Arbiter, bool) {
	for _, e := range arbiterRegistry {
		if e.name == name {
			return e.make(), true
		}
	}
	return nil, false
}
