package cluster_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/runner"
)

// DeriveBIPS is the one seam between raw epoch telemetry and every
// rate consumer (SLO tracker, predictive model, NDJSON lines): a
// zero-length or hostile epoch must yield 0, never Inf or NaN.
func TestDeriveBIPS(t *testing.T) {
	cases := []struct {
		name           string
		instr, epochNs float64
		want           float64
	}{
		{"normal", 2e6, 5e5, 4},
		{"zero epoch", 1e6, 0, 0},
		{"negative epoch", 1e6, -5e5, 0},
		{"nan epoch", 1e6, math.NaN(), 0},
		{"inf epoch", 1e6, math.Inf(1), 0},
		{"zero instr", 0, 5e5, 0},
		{"negative instr", -1e6, 5e5, 0},
		{"nan instr", math.NaN(), 5e5, 0},
		{"inf instr", math.Inf(1), 5e5, 0},
		{"both hostile", math.Inf(1), 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := cluster.DeriveBIPS(tc.instr, tc.epochNs)
			if got != tc.want {
				t.Errorf("DeriveBIPS(%g, %g) = %g, want %g", tc.instr, tc.epochNs, got, tc.want)
			}
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Errorf("DeriveBIPS(%g, %g) = %g is non-finite", tc.instr, tc.epochNs, got)
			}
		})
	}
}

// ValidateObservations is the arbitration seam's telemetry firewall:
// non-finite floats and negative progress counters fail typed, naming
// the offending member, before any arbiter model can ingest them.
func TestValidateObservations(t *testing.T) {
	good := func() []cluster.Observation {
		return []cluster.Observation{
			{PeakW: 100, FloorW: 10, Weight: 1, GrantW: 50, PowerW: 40, Instr: 1e6, BIPS: 2, Warm: true},
			{PeakW: 100, FloorW: 10, Weight: 1, GrantW: 50, PowerW: 30, Warm: true},
		}
	}
	cases := []struct {
		name   string
		mutate func(obs []cluster.Observation)
		ok     bool
	}{
		{"clean", func([]cluster.Observation) {}, true},
		{"nan power", func(o []cluster.Observation) { o[1].PowerW = math.NaN() }, false},
		{"inf peak", func(o []cluster.Observation) { o[0].PeakW = math.Inf(1) }, false},
		{"neg-inf grant", func(o []cluster.Observation) { o[1].GrantW = math.Inf(-1) }, false},
		{"nan throttle", func(o []cluster.Observation) { o[0].ThrottleFrac = math.NaN() }, false},
		{"inf bips", func(o []cluster.Observation) { o[0].BIPS = math.Inf(1) }, false},
		{"nan target", func(o []cluster.Observation) { o[0].TargetBIPS = math.NaN() }, false},
		{"negative instr", func(o []cluster.Observation) { o[1].Instr = -1 }, false},
		{"negative bips", func(o []cluster.Observation) { o[1].BIPS = -0.5 }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			obs := good()
			tc.mutate(obs)
			err := cluster.ValidateObservations([]string{"alpha", "beta"}, obs)
			if tc.ok {
				if err != nil {
					t.Fatalf("clean telemetry rejected: %v", err)
				}
				return
			}
			if !errors.Is(err, runner.ErrInvalidConfig) {
				t.Fatalf("hostile telemetry error = %v, want ErrInvalidConfig", err)
			}
		})
	}

	// The error names the offending member by id, falling back to its
	// index when ids are unknown.
	obs := good()
	obs[1].PowerW = math.NaN()
	if err := cluster.ValidateObservations([]string{"alpha", "beta"}, obs); err == nil || !strings.Contains(err.Error(), "beta") {
		t.Errorf("error %v does not name member beta", err)
	}
	if err := cluster.ValidateObservations(nil, obs); err == nil || !strings.Contains(err.Error(), "#1") {
		t.Errorf("error %v does not name member #1", err)
	}
}

// ComputeGrants — the single arbitration core both coordinators call —
// must reject hostile telemetry typed before the arbiter sees it, so
// Inf/NaN can never be laundered into grants or forecaster state.
func TestComputeGrantsRejectsHostileTelemetry(t *testing.T) {
	obs := []cluster.Observation{
		{PeakW: 100, FloorW: 10, Weight: 1, GrantW: 50, PowerW: math.Inf(1), Warm: true},
	}
	grants := make([]float64, 1)
	err := cluster.ComputeGrants(cluster.NewPredictiveArbiter(), 100, []string{"m"}, obs, grants)
	if !errors.Is(err, runner.ErrInvalidConfig) {
		t.Fatalf("ComputeGrants on Inf draw = %v, want ErrInvalidConfig", err)
	}
}

// The cold-start signal is the explicit Warm flag, not a GrantW == 0
// sentinel: a warm member legitimately granted zero watts (floor 0,
// budget claimed by a throttled peer) must NOT re-trigger proportional
// reseeding, while a genuinely cold member still must.
func TestWarmZeroGrantDoesNotReseed(t *testing.T) {
	mk := func(warmA bool) []cluster.Observation {
		return []cluster.Observation{
			{PeakW: 100, FloorW: 0, Weight: 1, GrantW: 0, PowerW: 0, Warm: warmA},
			{PeakW: 100, FloorW: 10, Weight: 1, GrantW: 90, PowerW: 85, ThrottleFrac: 0.5, Warm: true},
		}
	}
	arb := cluster.NewSlackReclaim()
	grants := make([]float64, 2)

	// Warm zero-grant member: the reactive rule keeps it at its 0 W
	// demand and the throttled peer claims the whole 100 W budget.
	arb.Rebalance(100, mk(true), grants)
	if grants[0] != 0 || grants[1] != 100 {
		t.Errorf("warm zero-grant member reseeded: grants %v, want [0 100]", grants)
	}

	// The same shape with the member genuinely cold is a full
	// proportional reseed: equal peaks split the budget evenly.
	arb.Rebalance(100, mk(false), grants)
	if grants[0] != 50 || grants[1] != 50 {
		t.Errorf("cold member not reseeded: grants %v, want [50 50]", grants)
	}
}

// predFixture drives an arbiter over a scripted draw sequence, feeding
// each round's grants back as the next round's GrantW — the closed loop
// a live coordinator runs.
type predFixture struct {
	obs    []cluster.Observation
	ids    []string
	grants []float64
}

func newPredFixture(n int, budget float64) *predFixture {
	f := &predFixture{
		obs:    make([]cluster.Observation, n),
		ids:    make([]string, n),
		grants: make([]float64, n),
	}
	for i := range f.obs {
		f.obs[i] = cluster.Observation{PeakW: 100, FloorW: 10, Weight: 1, GrantW: budget / float64(n), Warm: true}
		f.ids[i] = fmt.Sprintf("m%d", i)
	}
	return f
}

func (f *predFixture) round(t *testing.T, arb cluster.Arbiter, budget float64, draws ...float64) []float64 {
	t.Helper()
	for i, d := range draws {
		f.obs[i].PowerW = d
		if d >= f.obs[i].GrantW*0.999 {
			f.obs[i].ThrottleFrac = 0.5 // pressed against its cap
		} else {
			f.obs[i].ThrottleFrac = 0
		}
	}
	if err := cluster.ComputeGrants(arb, budget, f.ids, f.obs, f.grants); err != nil {
		t.Fatalf("ComputeGrants: %v", err)
	}
	for i := range f.obs {
		f.obs[i].GrantW = f.grants[i]
	}
	return f.grants
}

// During warm-up (fewer than WarmEpochs of history) the predictive
// arbiter must behave exactly like the slack reclaimer at the same
// parameters — a short history window can never whipsaw the fleet.
func TestPredictiveWarmupMatchesSlack(t *testing.T) {
	pred := cluster.NewPredictiveArbiter()
	pred.Headroom = 1.25 // align the cushion with SlackReclaim's
	slack := cluster.NewSlackReclaim()

	// WarmEpochs = 3: the first two rounds leave every member below the
	// gate (the third observe reaches it), so exactly two rounds must be
	// bit-equal to the reactive rule.
	fp := newPredFixture(2, 100)
	fs := newPredFixture(2, 100)
	draws := [][]float64{{60, 20}, {62, 18}}
	for round, d := range draws {
		gp := append([]float64(nil), fp.round(t, pred, 100, d...)...)
		gs := fs.round(t, slack, 100, d...)
		for i := range gp {
			if gp[i] != gs[i] {
				t.Fatalf("warm-up round %d grant[%d]: predictive %g, slack %g", round, i, gp[i], gs[i])
			}
		}
	}
}

// The headline behavior: after a phase change the forecast-driven
// demand releases a donor's slack faster than the reactive
// gain-stepped decay, so the freed watts reach the throttled member in
// fewer epochs.
func TestPredictiveReclaimsFasterThanSlack(t *testing.T) {
	const budget = 120.0
	run := func(arb cluster.Arbiter) []float64 {
		f := newPredFixture(2, budget)
		// Phase 1: member 0 draws hot, member 1 idles — long enough for
		// the forecaster to pass WarmEpochs.
		var donorGrants []float64
		for i := 0; i < 5; i++ {
			f.round(t, arb, budget, 80, 30)
		}
		// Phase change: member 0 collapses to 15 W, member 1 surges and
		// is throttled at whatever it holds.
		for i := 0; i < 6; i++ {
			g := f.round(t, arb, budget, 15, f.obs[1].GrantW)
			donorGrants = append(donorGrants, g[0])
		}
		return donorGrants
	}

	pred := run(cluster.NewPredictiveArbiter())
	slack := run(cluster.NewSlackReclaim())
	// Two epochs after the flip the forecast has collapsed toward the
	// 15 W draw while the reactive decay is still halving its way down.
	if pred[1] >= slack[1] {
		t.Errorf("2 epochs after phase flip: predictive donor holds %.2f W, slack %.2f W — forecast did not release faster", pred[1], slack[1])
	}
	for i, g := range pred {
		if g < 10-1e-9 || g > 100+1e-9 {
			t.Errorf("epoch %d: predictive donor grant %.2f W outside [floor, peak]", i, g)
		}
	}
}

// Adversarial phase flip: a model warmed on a steep upward ramp is
// maximally wrong when the draw collapses. Containment means every
// grant stays inside [floor, peak], the budget is always fully placed,
// and the model re-converges within a few epochs instead of riding its
// stale trend.
func TestPredictiveMispredictContainment(t *testing.T) {
	arb := cluster.NewPredictiveArbiter()
	const budget = 150.0
	f := newPredFixture(2, budget)
	// Steep ramp: the trend term goes strongly positive.
	for _, d := range []float64{20, 40, 60, 80, 95} {
		f.round(t, arb, budget, d, 30)
	}
	// Flip: the ramping member collapses to 5 W. Containment: every
	// grant stays in [floor, peak] and the budget is fully placed (the
	// surplus the misprediction frees is water-filled, never stranded).
	var firstErr, lastErr float64
	for i := 0; i < 6; i++ {
		g := f.round(t, arb, budget, 5, 30)
		if i == 0 {
			firstErr = arb.PredictionErrorW()
		}
		lastErr = arb.PredictionErrorW()
		sum := 0.0
		for j, gw := range g {
			sum += gw
			if gw < f.obs[j].FloorW-1e-9 || gw > f.obs[j].PeakW+1e-9 {
				t.Fatalf("post-flip epoch %d: grant[%d] = %.3f W outside [%.0f, %.0f]",
					i, j, gw, f.obs[j].FloorW, f.obs[j].PeakW)
			}
		}
		if math.Abs(sum-budget) > 1e-6 {
			t.Fatalf("post-flip epoch %d: placed %.3f W of a %.0f W budget", i, sum, budget)
		}
	}
	// The flip really was adversarial (the stale ramp extrapolation
	// misses by tens of watts), and the model re-converges instead of
	// riding the dead trend.
	if firstErr < 20 {
		t.Errorf("flip epoch prediction error %.2f W — the scenario is not adversarial", firstErr)
	}
	if lastErr > 5 {
		t.Errorf("6 epochs after the flip prediction error is still %.2f W, want < 5 W", lastErr)
	}
}

// A Warm == false member (fresh attach, readmission) resets its model
// and forces the same proportional reseed every other arbiter performs.
func TestPredictiveColdMemberReseedsProportionally(t *testing.T) {
	arb := cluster.NewPredictiveArbiter()
	f := newPredFixture(2, 100)
	for i := 0; i < 4; i++ {
		f.round(t, arb, 100, 70, 20)
	}
	f.obs[1].Warm = false // member 1 readmitted cold
	g := f.round(t, arb, 100, 70, 0)
	if g[0] != 50 || g[1] != 50 {
		t.Errorf("cold member round grants %v, want proportional [50 50]", g)
	}
}

// Forget drops a member's history: the next warm round has no standing
// forecast to score, so the reported prediction error restarts at 0.
func TestPredictiveForgetResetsModel(t *testing.T) {
	arb := cluster.NewPredictiveArbiter()
	f := newPredFixture(1, 100)
	for _, d := range []float64{40, 60, 40, 60} {
		f.round(t, arb, 100, d)
	}
	if err := arb.PredictionErrorW(); err == 0 {
		t.Fatal("oscillating draw produced zero prediction error — the model is not being scored")
	}
	arb.Forget("m0")
	f.round(t, arb, 100, 60)
	if err := arb.PredictionErrorW(); err != 0 {
		t.Errorf("first post-Forget round reports %.3f W error, want 0 (no standing forecast)", err)
	}
}

// The full arbitration path — validation, id-keyed model update,
// forecast demands, water-fill — allocates nothing in the steady state.
func TestPredictiveArbitrationZeroAlloc(t *testing.T) {
	arb := cluster.NewPredictiveArbiter()
	n := 64
	obs := make([]cluster.Observation, n)
	ids := make([]string, n)
	for i := range obs {
		obs[i] = cluster.Observation{
			PeakW: 120, FloorW: 12, Weight: 1 + float64(i%3),
			GrantW: 60 + float64(i%17), PowerW: 50 + float64(i%23),
			ThrottleFrac: float64(i%2) * 0.5, Warm: true,
		}
		ids[i] = fmt.Sprintf("m%02d", i)
	}
	grants := make([]float64, n)
	for i := 0; i < arb.WarmEpochs+1; i++ { // warm scratch and model
		if err := cluster.ComputeGrants(arb, 80*float64(n), ids, obs, grants); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(200, func() {
		_ = cluster.ComputeGrants(arb, 80*float64(n), ids, obs, grants)
	}); avg != 0 {
		t.Errorf("steady-state predictive ComputeGrants allocates %.1f per epoch, want 0", avg)
	}
}

// End-to-end determinism under churn: a predictive cluster with an
// attach and a detach mid-run streams byte-identical records between
// worker pools of 1 and 8 (run under -race -shuffle=on in CI).
func TestPredictiveDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []byte {
		members := []cluster.Member{
			{ID: "hot", Session: sessionSpec{mix: "ILP1", cores: 8, epochs: 8, pol: fastcap}.build(t)},
			{ID: "mem", Session: sessionSpec{mix: "MEM4", cores: 8, epochs: 8, pol: fastcap}.build(t)},
			{ID: "be", Session: sessionSpec{mix: "MIX3", cores: 4, epochs: 6, pol: fastcap}.build(t)},
		}
		c, err := cluster.New(cluster.Config{BudgetW: 60, Arbiter: cluster.NewPredictiveArbiter(), Workers: workers}, members)
		if err != nil {
			t.Fatal(err)
		}
		var recs []cluster.EpochRecord
		for epoch := 0; ; epoch++ {
			if epoch == 2 {
				if err := c.Attach(cluster.Member{ID: "late",
					Session: sessionSpec{mix: "MID1", cores: 4, epochs: 4, pol: fastcap}.build(t)}); err != nil {
					t.Fatalf("Attach: %v", err)
				}
			}
			if epoch == 4 {
				if _, err := c.Detach("be"); err != nil {
					t.Fatalf("Detach: %v", err)
				}
			}
			rec, err := c.Step(context.Background())
			if errors.Is(err, cluster.ErrDone) {
				break
			}
			if err != nil {
				t.Fatalf("Step: %v", err)
			}
			recs = append(recs, rec)
		}
		return mustJSON(t, recs)
	}
	b1 := run(1)
	b8 := run(8)
	if !bytes.Equal(b1, b8) {
		t.Fatal("predictive cluster streams differ between Workers=1 and Workers=8")
	}
}
