package cluster

import "repro/internal/metrics"

// Metrics is the Coordinator's instrumentation surface: a value struct
// of pre-resolved, nil-safe handles. The zero value disables everything
// at zero cost — each update is an atomic store against a nil receiver
// no-op — so library users and tests pay nothing, and the serving layer
// enables per-cluster telemetry by filling the handles with labeled
// series. Updates happen under stepMu on the arbitration path, which is
// allocation-free, so enabling metrics does not perturb the zero-alloc
// steady state (benchmark-guarded in bench_test.go).
type Metrics struct {
	// BudgetW / GrantW / DrawW / SlackW mirror the last epoch record:
	// the global budget in force, the sum granted, the sum actually
	// drawn, and their difference.
	BudgetW *metrics.Gauge
	GrantW  *metrics.Gauge
	DrawW   *metrics.Gauge
	SlackW  *metrics.Gauge
	// Members is the live member count at the last epoch.
	Members *metrics.Gauge
	// Epochs counts completed cluster epochs.
	Epochs *metrics.Counter
	// ArbitrationSeconds observes the latency of each ComputeGrants
	// round (the arbiter proper, not member stepping).
	ArbitrationSeconds *metrics.Histogram
	// FillPasses accumulates water-fill redistribution passes, when the
	// arbiter reports them (see FillPassReporter).
	FillPasses *metrics.Counter
	// SLOViolations counts per-member transitions into SLO violation
	// (the slo_violated events); SLOSatisfied is the number of
	// contracted members currently meeting their target.
	SLOViolations *metrics.Counter
	SLOSatisfied  *metrics.Gauge
	// PredictionErrW is the forecasting arbiter's mean absolute
	// one-epoch-ahead prediction error over the last round, in watts;
	// PredictionAbsErrW accumulates the same values as a distribution.
	// Only updated when the arbiter reports predictions (see
	// PredictionErrorReporter).
	PredictionErrW    *metrics.Gauge
	PredictionAbsErrW *metrics.Histogram
}

// SetMetrics installs the instrumentation handles. It must be called
// before the first Step — the serving layer only learns the cluster's
// id (the metric label) after the Coordinator is built, hence a setter
// rather than a Config field. Publication happens-before the first
// Step via the caller's own synchronization (the group is not runnable
// until after SetMetrics returns).
func (c *Coordinator) SetMetrics(m Metrics) {
	c.met = m
	c.fillRep, _ = c.arb.(FillPassReporter)
	c.predRep, _ = c.arb.(PredictionErrorReporter)
}
