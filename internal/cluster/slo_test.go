package cluster_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/cluster"
)

// sloObs builds a two-member observation set: member 0 carries a
// throughput contract, member 1 is best-effort.
func sloObs(bips0 float64) []cluster.Observation {
	return []cluster.Observation{
		{PeakW: 100, FloorW: 10, Weight: 1, GrantW: 50, PowerW: 40,
			Instr: bips0 * 5e5, BIPS: bips0, TargetBIPS: 4, Warm: true},
		{PeakW: 100, FloorW: 10, Weight: 1, GrantW: 50, PowerW: 30, BIPS: 1.5, Warm: true},
	}
}

func rebalance(t *testing.T, arb cluster.Arbiter, budget float64, obs []cluster.Observation) []float64 {
	t.Helper()
	grants := make([]float64, len(obs))
	ids := make([]string, len(obs))
	for i := range ids {
		ids[i] = string(rune('a' + i))
	}
	if err := cluster.ComputeGrants(arb, budget, ids, obs, grants); err != nil {
		t.Fatalf("ComputeGrants: %v", err)
	}
	return grants
}

// Feasible regime: a contracted member running at half its target must
// be granted at least the watts its measured efficiency says the target
// needs (Gain-limited), the best-effort member keeps its floor, and the
// whole budget is placed.
func TestSLOArbiterFeasibleFundsContract(t *testing.T) {
	arb := cluster.NewSLOArbiter()
	obs := sloObs(2) // half the target of 4 BIPS
	grants := rebalance(t, arb, 150, obs)

	// Demand: est = 40 W × (4/2) × 1.15 = 92 W; one Gain=0.5 step from
	// the 50 W grant is 71 W. The fill may add surplus on top but must
	// never fund below the demand.
	const wantDemand = 71.0
	if grants[0] < wantDemand-1e-9 {
		t.Errorf("contracted grant %g W, want >= %g W", grants[0], wantDemand)
	}
	if grants[1] < 10 {
		t.Errorf("best-effort grant %g W below its 10 W floor", grants[1])
	}
	if sum := grants[0] + grants[1]; math.Abs(sum-150) > 1e-9 {
		t.Errorf("granted %g W of a 150 W budget", sum)
	}
}

// Cold start (any member without a completed epoch) must reseed exactly
// like the other arbiters: plain proportional-to-peak, ignoring targets
// and telemetry.
func TestSLOArbiterColdStartMatchesStatic(t *testing.T) {
	obs := sloObs(2)
	obs[1].Warm = false // freshly attached
	got := rebalance(t, cluster.NewSLOArbiter(), 120, obs)
	want := rebalance(t, cluster.NewStaticProportional(), 120, obs)
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("grant[%d] = %g, static seed %g", i, got[i], want[i])
		}
	}
}

// Infeasible regime: when Σ demands exceed the budget the grants must
// become a pure function of the declared contracts — identical across
// epochs no matter how the measured telemetry jitters. An arbiter that
// kept consuming measurements here would oscillate, starving members in
// alternating epochs.
func TestSLOArbiterInfeasibleFixedPoint(t *testing.T) {
	arb := cluster.NewSLOArbiter()
	mk := func(bips0, bips1, pw0, pw1 float64) []cluster.Observation {
		return []cluster.Observation{
			{PeakW: 100, FloorW: 10, Weight: 1, GrantW: 30, PowerW: pw0, BIPS: bips0, TargetBIPS: 6, Warm: true},
			{PeakW: 100, FloorW: 10, Weight: 1, GrantW: 30, PowerW: pw1, BIPS: bips1, TargetBIPS: 3, Warm: true},
		}
	}
	// 60 W cannot fund two members whose efficiency says the targets
	// need hundreds of watts.
	first := rebalance(t, arb, 60, mk(1, 1, 30, 30))
	for epoch := 0; epoch < 10; epoch++ {
		jitter := float64(epoch%3) * 0.4
		got := rebalance(t, arb, 60, mk(1+jitter, 1-0.1*jitter, 30+5*jitter, 30-3*jitter))
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("epoch %d grant[%d] = %g, want fixed point %g", epoch, i, got[i], first[i])
			}
		}
	}
	// The fixed point splits the budget proportionally to the declared
	// targets (floors non-binding here): member 0 (6 BIPS) gets twice
	// member 1's (3 BIPS) share.
	if math.Abs(first[0]-2*first[1]) > 1e-9 {
		t.Errorf("degraded grants %v, want 2:1 by target", first)
	}
	if math.Abs(first[0]+first[1]-60) > 1e-9 {
		t.Errorf("degraded grants %v do not place the 60 W budget", first)
	}
}

// Hysteresis on the regime switch: demands just below the budget must
// not leave the degraded regime; demands clearly below must.
func TestSLOArbiterRegimeHysteresis(t *testing.T) {
	arb := cluster.NewSLOArbiter()
	mk := func(target float64) []cluster.Observation {
		// BIPS == target with 50 W draw: est = 50 × 1.15 = 57.5 W, and
		// GrantW == 57.5 makes the demand an exact fixed point at
		// 57.5 W per member — 115 W for two.
		return []cluster.Observation{
			{PeakW: 100, FloorW: 10, Weight: 1, GrantW: 57.5, PowerW: 50, BIPS: target, TargetBIPS: target, Warm: true},
			{PeakW: 100, FloorW: 10, Weight: 1, GrantW: 57.5, PowerW: 50, BIPS: target, TargetBIPS: target, Warm: true},
		}
	}
	degraded := rebalance(t, arb, 100, mk(4)) // 115 > 100: enter degraded
	// 115 ≤ 116 but > 116×(1−0.05): inside the band, stay degraded.
	inBand := rebalance(t, arb, 116, mk(4))
	wantInBand := []float64{10 + 48, 10 + 48} // floors + target-split of 96
	for i := range inBand {
		if inBand[i] != wantInBand[i] {
			t.Errorf("in-band grant[%d] = %g, want degraded %g", i, inBand[i], wantInBand[i])
		}
	}
	_ = degraded
	// 115 ≤ 130×(1−0.05) = 123.5: clearly feasible, regime flips back
	// and demands become funded floors again.
	feasible := rebalance(t, arb, 130, mk(4))
	if feasible[0] < 57.5-1e-9 {
		t.Errorf("post-recovery grant %g W, want >= the 57.5 W demand", feasible[0])
	}
}

// The tracker's per-member hysteresis: violated below target×(1−band),
// restored only at the full target, transitions reported exactly once.
func TestSLOTrackerHysteresis(t *testing.T) {
	tr := cluster.NewSLOTracker()
	rec := func(bips float64) *cluster.EpochRecord {
		return &cluster.EpochRecord{Members: []cluster.MemberGrant{
			{ID: "a", BIPS: bips, TargetBIPS: 4},
			{ID: "b", Instr: 1}, // no contract: never tracked
		}}
	}

	r := rec(3.9) // inside the 5% band: not a violation
	if v, sat, tracked := tr.Apply(r); v != 0 || sat != 1 || tracked != 1 {
		t.Fatalf("in-band Apply = (%d,%d,%d), want (0,1,1)", v, sat, tracked)
	}
	if len(r.Events) != 0 || r.Members[0].SLOViolated {
		t.Fatalf("in-band epoch produced events %v", r.Events)
	}

	r = rec(3.0) // clearly below: violation transition
	if v, sat, _ := tr.Apply(r); v != 1 || sat != 0 {
		t.Fatalf("violation Apply = (%d,%d), want (1,0)", v, sat)
	}
	if len(r.Events) != 1 || r.Events[0].Type != cluster.SLOViolated || r.Events[0].Member != "a" {
		t.Fatalf("violation events = %+v", r.Events)
	}
	if !r.Members[0].SLOViolated {
		t.Fatal("violated member line not marked")
	}

	r = rec(3.95) // recovered into the band: still violated, no event
	if v, sat, _ := tr.Apply(r); v != 0 || sat != 0 {
		t.Fatalf("band-recovery Apply = (%d,%d), want (0,0)", v, sat)
	}
	if len(r.Events) != 0 || !r.Members[0].SLOViolated {
		t.Fatalf("band recovery flapped: events %v, violated %v", r.Events, r.Members[0].SLOViolated)
	}

	r = rec(4.0) // full target: restored exactly once
	if v, sat, _ := tr.Apply(r); v != 0 || sat != 1 {
		t.Fatalf("restore Apply = (%d,%d), want (0,1)", v, sat)
	}
	if len(r.Events) != 1 || r.Events[0].Type != cluster.SLORestored {
		t.Fatalf("restore events = %+v", r.Events)
	}
	if r.Members[0].SLOViolated {
		t.Fatal("restored member line still marked")
	}

	// Forget drops the state: a re-violation is a fresh transition.
	tr.Apply(rec(3.0))
	tr.Forget("a")
	r = rec(3.0)
	if v, _, _ := tr.Apply(r); v != 1 {
		t.Fatalf("post-Forget Apply violations = %d, want 1", v)
	}
}

// The arbiter registry is the single source of truth: every name
// resolves, the instance reports the same name, and "slo" is in it.
func TestArbiterRegistry(t *testing.T) {
	names := cluster.ArbiterNames()
	hasSLO := false
	for _, n := range names {
		arb, ok := cluster.ArbiterByName(n)
		if !ok {
			t.Fatalf("registered name %q does not resolve", n)
		}
		if arb.Name() != n {
			t.Errorf("ArbiterByName(%q).Name() = %q", n, arb.Name())
		}
		if n == "slo" {
			hasSLO = true
		}
	}
	if !hasSLO {
		t.Error("registry lacks the slo arbiter")
	}
	if _, ok := cluster.ArbiterByName("nonesuch"); ok {
		t.Error("unknown arbiter name resolved")
	}
}

// End-to-end churn + contracts under the SLO arbiter: a cluster whose
// contracted member carries an unreachable target must stream a
// violation event, mark the member's lines, and stay byte-identical
// between worker pools of 1 and 8 under -race -shuffle=on — including
// the deterministic infeasible degradation (tiny budget). A member
// attaches and another detaches mid-run to exercise churn.
func TestClusterSLODeterministicAcrossWorkers(t *testing.T) {
	build := func(workers int) (*cluster.Coordinator, error) {
		members := []cluster.Member{
			// Unreachable target: 16 cores cannot retire 1e6 BIPS.
			{ID: "slo-hot", TargetBIPS: 1e6, Session: sessionSpec{mix: "MEM4", cores: 8, epochs: 8, pol: fastcap}.build(t)},
			{ID: "slo-easy", TargetBIPS: 1e-9, Session: sessionSpec{mix: "ILP1", cores: 8, epochs: 8, pol: fastcap}.build(t)},
			{ID: "be", Session: sessionSpec{mix: "MIX3", cores: 4, epochs: 6, pol: fastcap}.build(t)},
		}
		// A budget far below what the hot member's efficiency demands:
		// the arbiter must enter (and hold) the degraded regime.
		return cluster.New(cluster.Config{BudgetW: 30, Arbiter: cluster.NewSLOArbiter(), Workers: workers}, members)
	}
	run := func(workers int) []byte {
		c, err := build(workers)
		if err != nil {
			t.Fatal(err)
		}
		var recs []cluster.EpochRecord
		for epoch := 0; ; epoch++ {
			if epoch == 2 {
				if err := c.Attach(cluster.Member{ID: "late", TargetBIPS: 0.5,
					Session: sessionSpec{mix: "MID1", cores: 4, epochs: 4, pol: fastcap}.build(t)}); err != nil {
					t.Fatalf("Attach: %v", err)
				}
			}
			if epoch == 4 {
				if _, err := c.Detach("be"); err != nil {
					t.Fatalf("Detach: %v", err)
				}
			}
			rec, err := c.Step(context.Background())
			if errors.Is(err, cluster.ErrDone) {
				break
			}
			if err != nil {
				t.Fatalf("Step: %v", err)
			}
			recs = append(recs, rec)
		}
		return mustJSON(t, recs)
	}

	b1 := run(1)
	b8 := run(8)
	if !bytes.Equal(b1, b8) {
		t.Fatal("SLO cluster streams differ between Workers=1 and Workers=8")
	}
	if !bytes.Contains(b1, []byte(cluster.SLOViolated)) {
		t.Error("unreachable target produced no slo_violated event")
	}
	if !bytes.Contains(b1, []byte(`"target_bips":1e+06`)) && !bytes.Contains(b1, []byte(`"target_bips":1000000`)) {
		t.Error("contracted member lines carry no target")
	}
}

// A contract-free cluster must not emit a single SLO byte: no bips, no
// target, no events keys anywhere in the stream — the golden-stream
// guarantee for pre-SLO clients.
func TestClusterNoContractStreamUnchanged(t *testing.T) {
	members := []cluster.Member{
		{ID: "a", Session: sessionSpec{mix: "ILP1", cores: 4, epochs: 4, pol: fastcap}.build(t)},
		{ID: "b", Session: sessionSpec{mix: "MEM2", cores: 4, epochs: 4, pol: fastcap}.build(t)},
	}
	c, err := cluster.New(cluster.Config{BudgetW: 60, Arbiter: cluster.NewSLOArbiter()}, members)
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := runCluster(t, c)
	b := mustJSON(t, recs)
	for _, key := range []string{`"bips"`, `"target_bips"`, `"slo_violated"`, `"events"`} {
		if bytes.Contains(b, []byte(key)) {
			t.Errorf("contract-free stream contains %s", key)
		}
	}
}

// Hostile member parameters fail typed through the refactored
// MemberParams bundle.
func TestMemberParamsNormalize(t *testing.T) {
	cases := []struct {
		name string
		p    cluster.MemberParams
		ok   bool
	}{
		{"defaults", cluster.MemberParams{}, true},
		{"full", cluster.MemberParams{Weight: 2, FloorFrac: 0.2, TargetBIPS: 3}, true},
		{"neg weight", cluster.MemberParams{Weight: -1}, false},
		{"nan weight", cluster.MemberParams{Weight: math.NaN()}, false},
		{"floor > 1", cluster.MemberParams{FloorFrac: 1.5}, false},
		{"neg target", cluster.MemberParams{TargetBIPS: -2}, false},
		{"nan target", cluster.MemberParams{TargetBIPS: math.NaN()}, false},
		{"inf target", cluster.MemberParams{TargetBIPS: math.Inf(1)}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.p.Normalize("m")
			if tc.ok {
				if err != nil {
					t.Fatalf("Normalize: %v", err)
				}
				if got.Weight <= 0 || got.FloorFrac <= 0 {
					t.Fatalf("normalized bundle %+v lacks defaults", got)
				}
				return
			}
			if err == nil {
				t.Fatal("hostile bundle accepted")
			}
		})
	}
}
