package cluster

import "math"

// predState is one member's online forecaster: a Holt-style double
// exponential smoother over the member's measured draw. level tracks
// the EWMA of PowerW, trend the AR(1)-smoothed per-epoch delta of the
// level, and forecast their one-epoch-ahead extrapolation. n counts the
// epochs folded in since the last cold start — the warm-up gate.
type predState struct {
	n        int
	level    float64
	trend    float64
	forecast float64
}

// observe folds one epoch's measured draw into the model and refreshes
// the one-epoch-ahead forecast. The first sample initializes the level
// directly (no trend), so the model never extrapolates off nothing.
func (st *predState) observe(alpha, beta, powerW float64) {
	if st.n == 0 {
		st.level, st.trend = powerW, 0
	} else {
		prev := st.level
		st.level += alpha * (powerW - st.level)
		st.trend = beta*(st.level-prev) + (1-beta)*st.trend
	}
	st.n++
	st.forecast = math.Max(0, st.level+st.trend)
}

// PredictiveArbiter pre-allocates budget to *predicted* demand instead
// of reacting to last epoch's throttle signal. Per member it fits a
// deterministic, allocation-free online forecaster — an EWMA level plus
// an AR(1)-style trend term over the member's draw history, no external
// deps — and grants next epoch's forecast (with headroom), clamped into
// [floor, peak], water-filling any surplus by weight × peak.
//
// The reactive slack arbiter moves a donor's grant toward its draw one
// Gain-step per epoch; the predictive arbiter's demand *is* the
// forecast, so a phase change propagates into the grants as fast as the
// smoother tracks it — freed watts reach the bound member epochs
// sooner. A throttled member's draw is cap-limited (the forecast learns
// the ceiling, not the appetite), so while ThrottleFrac sits above
// ThrottleBand the demand is floored at GrantW × Headroom, which
// compounds like the slack arbiter's growth path.
//
// Until a member has WarmEpochs of history — and whenever any member is
// cold (epoch 0, fresh attach, readmission after eviction) — the
// arbiter falls back to slack-reclaiming behavior, so a short history
// window can never whipsaw the fleet. A mispredicting model is further
// contained by the [floor, peak] clamp net every demand passes through.
//
// Per-member history is keyed by member id via the IDRebalancer seam
// (positional when driven through plain Rebalance) and dropped through
// MemberForgetter when a member detaches, is evicted, or is abandoned —
// a readmitted member provably restarts cold. The arbiter reports its
// trailing absolute prediction error (|forecast − draw| averaged over
// the last round's warm members) through PredictionErrorReporter, which
// the serving layer exports as fastcap_cluster_prediction_error_w.
type PredictiveArbiter struct {
	// Alpha is the EWMA gain on the level term, in (0, 1]. Default 0.5.
	Alpha float64
	// Beta is the AR(1) smoothing gain on the trend term, in [0, 1].
	// Default 0.4.
	Beta float64
	// Headroom is the demand cushion multiplied onto the forecast (and
	// onto GrantW for throttled members). Default 1.15 — tighter than
	// the slack arbiter's 1.25, because the forecast already anticipates
	// growth the reactive cushion has to buy blind.
	Headroom float64
	// ThrottleBand is the ThrottleFrac above which a member counts as
	// power-bound (its draw is cap-limited, so the forecast is a lower
	// bound on appetite). Default 0.10.
	ThrottleBand float64
	// Gain is the warm-up fallback's reactive gain, matching
	// SlackReclaim. Default 0.5.
	Gain float64
	// WarmEpochs is how many epochs of history a member needs before
	// its forecast drives its demand; below it the member is funded by
	// the reactive fallback rule. Default 3.
	WarmEpochs int

	f      fillScratch
	demand []float64
	hist   map[string]*predState // id-keyed state (RebalanceIDs path)
	pos    []predState           // positional state (plain Rebalance path)

	errSum float64 // Σ |forecast − draw| over the last round's
	errN   int     // warm members, for PredictionErrorW
}

// NewPredictiveArbiter returns the forecast-driven arbiter with its
// default model parameters.
func NewPredictiveArbiter() *PredictiveArbiter {
	return &PredictiveArbiter{
		Alpha: 0.5, Beta: 0.4, Headroom: 1.15,
		ThrottleBand: 0.10, Gain: 0.5, WarmEpochs: 3,
		hist: make(map[string]*predState),
	}
}

// Name implements Arbiter.
func (*PredictiveArbiter) Name() string { return "predictive" }

// FillPasses implements FillPassReporter.
func (a *PredictiveArbiter) FillPasses() int { return a.f.passes }

// Forget implements MemberForgetter: drop the member's history so a
// readmission restarts its model cold. Unknown ids are a no-op.
func (a *PredictiveArbiter) Forget(id string) { delete(a.hist, id) }

// PredictionErrorW reports the mean absolute one-epoch-ahead prediction
// error, in watts, over the warm members of the last rebalance round
// (0 when no member had a standing forecast to score).
func (a *PredictiveArbiter) PredictionErrorW() float64 {
	if a.errN == 0 {
		return 0
	}
	return a.errSum / float64(a.errN)
}

// PredictionErrorReporter is the optional introspection seam for
// forecasting arbiters: PredictionErrorW reports the mean absolute
// prediction error of the last rebalance round in watts. The serving
// layer exports it per cluster as a gauge and an error histogram.
type PredictionErrorReporter interface {
	PredictionErrorW() float64
}

// state returns member i's forecaster: id-keyed when ids are known,
// positional otherwise. The map insert only happens the first time a
// member id is seen, so the steady state stays allocation-free.
func (a *PredictiveArbiter) state(ids []string, i int) *predState {
	if ids == nil {
		return &a.pos[i]
	}
	st := a.hist[ids[i]]
	if st == nil {
		st = &predState{}
		if a.hist == nil {
			a.hist = make(map[string]*predState)
		}
		a.hist[ids[i]] = st
	}
	return st
}

// Rebalance implements Arbiter, keying history by position. Prefer
// driving the arbiter through ComputeGrants, which supplies member ids
// and makes history churn-proof.
func (a *PredictiveArbiter) Rebalance(budgetW float64, obs []Observation, grants []float64) {
	if cap(a.pos) < len(obs) {
		a.pos = make([]predState, len(obs))
	}
	a.pos = a.pos[:len(obs)]
	a.rebalance(budgetW, nil, obs, grants)
}

// RebalanceIDs implements IDRebalancer, keying history by member id.
func (a *PredictiveArbiter) RebalanceIDs(budgetW float64, ids []string, obs []Observation, grants []float64) {
	a.rebalance(budgetW, ids, obs, grants)
}

func (a *PredictiveArbiter) rebalance(budgetW float64, ids []string, obs []Observation, grants []float64) {
	n := len(obs)
	a.f.passes = 0
	a.errSum, a.errN = 0, 0

	// Model pass: score the standing forecast against the measured
	// draw, then fold the epoch in. Cold members reset explicitly —
	// belt and braces under the coordinators' Forget calls, and the
	// only lifecycle hook the positional path has.
	cold := false
	for i := range obs {
		st := a.state(ids, i)
		if !obs[i].Warm {
			*st = predState{}
			cold = true
			continue
		}
		if st.n > 0 {
			a.errSum += math.Abs(st.forecast - obs[i].PowerW)
			a.errN++
		}
		st.observe(a.Alpha, a.Beta, obs[i].PowerW)
	}
	if cold {
		// Same cold-start seed as every other arbiter: plain
		// proportional-to-peak until the whole fleet has telemetry.
		a.f.proportional(budgetW, obs, grants, false)
		return
	}

	if cap(a.demand) < n {
		a.demand = make([]float64, n)
	}
	a.demand = a.demand[:n]
	sumFloor, sumDemand := 0.0, 0.0
	for i, o := range obs {
		st := a.state(ids, i)
		var d float64
		if st.n >= a.WarmEpochs {
			d = st.forecast * a.Headroom
			if o.ThrottleFrac > a.ThrottleBand {
				// Cap-limited draw: the forecast learned the ceiling,
				// not the appetite. Keep growing off the grant.
				d = math.Max(d, o.GrantW*a.Headroom)
			}
		} else {
			// Warm-up fallback: the slack arbiter's reactive rule.
			target := o.PowerW * a.Headroom
			if o.ThrottleFrac > a.ThrottleBand {
				target = o.GrantW * a.Headroom
			}
			d = o.GrantW + a.Gain*(target-o.GrantW)
		}
		d = math.Min(math.Max(d, o.FloorW), o.PeakW)
		a.demand[i] = d
		sumFloor += o.FloorW
		sumDemand += d
	}
	if sumDemand >= budgetW {
		// Demands outstrip the budget: fund floors, scale the rest —
		// identical degradation to SlackReclaim.
		if budgetW <= sumFloor {
			for i, o := range obs {
				grants[i] = o.FloorW
			}
			return
		}
		lambda := (budgetW - sumFloor) / (sumDemand - sumFloor)
		for i, o := range obs {
			grants[i] = o.FloorW + lambda*(a.demand[i]-o.FloorW)
		}
		return
	}
	// Budget covers every demand: demands floor a proportional fill, so
	// the surplus lands by weight × peak, bounded by the peaks.
	a.f.grow(n)
	for i, o := range obs {
		a.f.lo[i] = a.demand[i]
		a.f.hi[i] = o.PeakW
		a.f.share[i] = o.Weight * o.PeakW
	}
	a.f.fill(budgetW, grants)
}
