// Package cluster coordinates one global power budget across many
// capping sessions — the fleet-level layer above runner. A Coordinator
// owns N member runner.Sessions and arbitrates a shared watt budget
// between them at epoch boundaries: each epoch it collects every
// member's measured power from the completed window, computes slack
// (grant minus draw), re-partitions the global budget through a
// pluggable Arbiter, and pushes the new per-member caps through
// SetBudgetFrac before stepping everyone's next epoch in lockstep.
//
// Members step concurrently on a bounded worker pool, but the protocol
// is epoch-synchronized and every arbitration input is assembled in
// member order, so the per-member grant stream and final results are
// bit-identical at any worker count — the same determinism contract as
// the experiment engine and the serving layer, extended one level up.
//
// The serving layer exposes Coordinators as cluster groups (POST
// /clusters); experiments.ClusterSweep compares the arbiters.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runner"
)

// DefaultFloorFrac is the guaranteed minimum grant of a member that
// does not set its own floor: 10% of the member machine's peak.
const DefaultFloorFrac = 0.1

// ErrDone is returned by Coordinator.Step once every member has
// finished (or Results finalized the cluster). Normal termination, not
// failure.
var ErrDone = errors.New("cluster: all members done")

// ErrConcurrentStep is returned by Step when another Step (or a
// Results finalization) is already in flight. The arbitration loop is
// strictly sequential; a second concurrent driver is a caller bug,
// refused typed instead of racing.
var ErrConcurrentStep = errors.New("cluster: concurrent Step on coordinator")

// ErrUnknownMember reports a Detach target that is not (or no longer)
// a member of the cluster.
var ErrUnknownMember = errors.New("cluster: unknown member")

// Member describes one tenant of the cluster: a session plus its
// arbitration parameters. The Session must be exclusively owned by the
// Coordinator from Attach/New on — nothing else may Step it.
type Member struct {
	// ID names the member in records and Detach calls. Required,
	// unique within the cluster.
	ID string
	// Weight is the priority-weighted arbiter's share multiplier.
	// 0 defaults to 1; otherwise it must be positive and finite.
	Weight float64
	// FloorFrac is the member's guaranteed minimum grant as a fraction
	// of its machine's peak, in (0, 1]. 0 defaults to DefaultFloorFrac.
	FloorFrac float64
	// TargetBIPS is the member's optional throughput SLO in
	// giga-instructions per second. 0 means no contract: the member is
	// arbitrated on watts alone and never produces SLO events.
	TargetBIPS float64
	// Session is the member's capping run.
	Session *runner.Session
}

// Config bounds the Coordinator.
type Config struct {
	// BudgetW is the global power budget arbitrated across members, in
	// watts. Required, positive and finite.
	BudgetW float64
	// Arbiter re-partitions the budget each epoch. Defaults to
	// NewStaticProportional(). The instance must not be shared with
	// another cluster.
	Arbiter Arbiter
	// Workers bounds how many members step their epoch concurrently.
	// Defaults to GOMAXPROCS. Output is identical at any worker count.
	Workers int
}

// MemberGrant is one member's line of a cluster epoch record.
type MemberGrant struct {
	ID string `json:"id"`
	// Epoch is the member-local epoch index just executed (equals the
	// cluster epoch for founding members, lags for attached ones).
	Epoch int `json:"epoch"`
	// GrantW is the budget the member held during this epoch; PowerW
	// what it measured; SlackW their difference.
	GrantW float64 `json:"grant_w"`
	PowerW float64 `json:"power_w"`
	SlackW float64 `json:"slack_w"`
	// ThrottleFrac is the fraction of the member's cores its capping
	// policy held below top frequency this epoch (the slack arbiter's
	// power-bound signal).
	ThrottleFrac float64 `json:"throttle_frac"`
	// Instr is the member's total instructions retired this epoch.
	Instr float64 `json:"instr"`
	// BIPS is Instr as a rate (giga-instructions per second) and
	// TargetBIPS the member's declared SLO; both appear only for
	// contracted members, so contract-free streams stay byte-identical
	// to pre-SLO builds.
	BIPS       float64 `json:"bips,omitempty"`
	TargetBIPS float64 `json:"target_bips,omitempty"`
	// SLOViolated marks a contracted member currently below its target
	// (transitions are additionally reported as EpochRecord.Events).
	SLOViolated bool `json:"slo_violated,omitempty"`
	// Done marks the member's final epoch.
	Done bool `json:"done,omitempty"`
}

// EpochRecord is one cluster epoch: the global budget in force, the sum
// actually granted, and every live member's grant/draw/slack line.
type EpochRecord struct {
	Epoch int `json:"epoch"`
	// BudgetW is the global budget in force; GrantedW the sum of member
	// grants (less than BudgetW when members cannot absorb it, more
	// only when floors force it).
	BudgetW  float64       `json:"budget_w"`
	GrantedW float64       `json:"granted_w"`
	Members  []MemberGrant `json:"members"`
	// Events are the epoch's SLO boundary crossings (violations and
	// restorations), in member order. Nil on quiet epochs — and always
	// nil for contract-free clusters, preserving their golden streams.
	Events []SLOEvent `json:"events,omitempty"`
}

// MemberResult pairs a member with its finalized run aggregate.
type MemberResult struct {
	ID     string         `json:"id"`
	Result *runner.Result `json:"result"`
}

// member is the coordinator-side state of one tenant.
type member struct {
	Member
	peak     float64
	floorW   float64
	epochNs  float64 // control-epoch length (BIPS denominator)
	maxSteps []int   // each core's top ladder step (throttle reference)
	grantW   float64 // grant in force during the last stepped epoch
	powerW   float64 // measured average power of that epoch
	throttle float64 // fraction of cores shed below top step
	instr    float64 // instructions retired over that epoch
	local    int     // member-local epochs completed
	total    int     // the session's configured run length
	done     bool    // ran its last epoch
	detached bool    // removed by Detach; result finalized
}

// bips converts the member's last-epoch instruction count to a rate.
// Both coordinators derive it through cluster.DeriveBIPS — the same
// guarded division — keeping streams byte-identical and Inf/NaN-free
// even for degenerate epoch durations.
func (m *member) bips() float64 {
	return DeriveBIPS(m.instr, m.epochNs)
}

// throttleFrac measures how many of the member's cores the epoch's
// decision held below their top DVFS step.
func (m *member) throttleFrac(coreSteps []int) float64 {
	if len(coreSteps) == 0 {
		return 0
	}
	shed := 0
	for i, st := range coreSteps {
		if st < m.maxSteps[i] {
			shed++
		}
	}
	return float64(shed) / float64(len(coreSteps))
}

// Coordinator arbitrates one global power budget across its members.
// Step is single-driver (a concurrent Step fails typed with
// ErrConcurrentStep); SetBudgetW, Attach, Detach and Epoch may be
// called concurrently with Step and take effect at the next epoch
// boundary, deterministically.
type Coordinator struct {
	cfg Config
	arb Arbiter

	// mu guards the retargetable budget, the pending membership ops,
	// the members slice layout (Step mutates it only inside
	// applyPending, which holds mu), and the done latch.
	mu            sync.Mutex
	budgetW       float64
	pendingAttach []*member
	pendingDetach []string
	members       []*member
	// done latches when the coordinator finalizes (every member
	// finished, or Results was called). Attach/Detach check it under mu
	// so a membership op can never be queued past the last boundary and
	// silently ignored.
	done bool

	// stepMu serializes Step and Results, Session-style.
	stepMu    sync.Mutex
	epoch     atomic.Int64
	total     atomic.Int64 // cluster epochs until every member is done
	err       error        // sticky: first failure poisons the cluster
	finalized bool

	// Reused per-epoch scratch (allocation-free steady state).
	live     []*member
	ids      []string
	obs      []Observation
	grants   []float64
	stepRecs []runner.EpochRecord
	stepErrs []error

	// grantBuf backs the records' member lines in flat chunks.
	grantBuf []MemberGrant
	grantOff int

	// met holds the instrumentation handles (zero value: disabled);
	// fillRep and predRep are the arbiter's optional reporters,
	// type-asserted once in SetMetrics rather than per epoch.
	met     Metrics
	fillRep FillPassReporter
	predRep PredictionErrorReporter

	// forgetter is the arbiter's optional per-member state reset
	// (type-asserted once in New): called alongside slo.Forget when a
	// member detaches, so history-keeping arbiters drop its model.
	forgetter MemberForgetter

	// slo derives per-member SLO pressure events from each finished
	// record (no-op for contract-free clusters).
	slo *SLOTracker
}

// MemberParams is a member's arbitration-parameter bundle — the
// contract half of the member-telemetry seam, shared verbatim by the
// in-process Coordinator, the serving layer's pure request resolution
// and the distributed protocol so the bounds cannot drift between them.
// It grows with the contract (TargetBIPS today); call sites that pass
// the whole bundle pick new fields up automatically.
type MemberParams struct {
	// Weight is the priority-weighted share multiplier. 0 defaults to 1.
	Weight float64
	// FloorFrac is the guaranteed minimum grant as a fraction of the
	// member machine's peak, in (0, 1]. 0 defaults to DefaultFloorFrac.
	FloorFrac float64
	// TargetBIPS is the optional throughput SLO in giga-instructions
	// per second; 0 means no contract. Negative, NaN and infinite
	// targets are rejected.
	TargetBIPS float64
}

// Normalize validates the bundle and applies defaults, returning the
// normalized copy. NaN, infinite and out-of-range values fail with
// runner.ErrInvalidConfig; id labels the member in errors.
func (p MemberParams) Normalize(id string) (MemberParams, error) {
	if p.Weight == 0 {
		p.Weight = 1
	}
	if math.IsNaN(p.Weight) || math.IsInf(p.Weight, 0) || p.Weight <= 0 {
		return MemberParams{}, fmt.Errorf("%w: member %q weight %g, want positive and finite", runner.ErrInvalidConfig, id, p.Weight)
	}
	if p.FloorFrac == 0 {
		p.FloorFrac = DefaultFloorFrac
	}
	if math.IsNaN(p.FloorFrac) || p.FloorFrac < 0 || p.FloorFrac > 1 {
		return MemberParams{}, fmt.Errorf("%w: member %q floor fraction %g outside (0, 1]", runner.ErrInvalidConfig, id, p.FloorFrac)
	}
	if math.IsNaN(p.TargetBIPS) || math.IsInf(p.TargetBIPS, 0) || p.TargetBIPS < 0 {
		return MemberParams{}, fmt.Errorf("%w: member %q target %g BIPS, want finite and >= 0", runner.ErrInvalidConfig, id, p.TargetBIPS)
	}
	return p, nil
}

// validateMember normalizes and checks one member against the already
// accepted set.
func validateMember(m *Member, seen map[string]bool) error {
	if m.Session == nil {
		return fmt.Errorf("%w: member %q has no session", runner.ErrInvalidConfig, m.ID)
	}
	if m.ID == "" {
		return fmt.Errorf("%w: member with empty id", runner.ErrInvalidConfig)
	}
	if seen[m.ID] {
		return fmt.Errorf("%w: duplicate member id %q", runner.ErrInvalidConfig, m.ID)
	}
	p, err := MemberParams{Weight: m.Weight, FloorFrac: m.FloorFrac, TargetBIPS: m.TargetBIPS}.Normalize(m.ID)
	if err != nil {
		return err
	}
	m.Weight, m.FloorFrac, m.TargetBIPS = p.Weight, p.FloorFrac, p.TargetBIPS
	if peak := m.Session.PeakPowerW(); math.IsNaN(peak) || peak <= 0 {
		return fmt.Errorf("%w: member %q platform peak %g W, want > 0", runner.ErrInvalidConfig, m.ID, peak)
	}
	seen[m.ID] = true
	return nil
}

func newMember(m Member) *member {
	peak := m.Session.PeakPowerW()
	return &member{
		Member:   m,
		peak:     peak,
		floorW:   m.FloorFrac * peak,
		epochNs:  m.Session.EpochNs(),
		maxSteps: m.Session.MaxCoreSteps(),
		total:    m.Session.TotalEpochs(),
	}
}

// ValidBudgetW validates a global watt budget: NaN, infinite and
// non-positive values fail with runner.ErrInvalidConfig. Exported so
// the serving layer's pure request validation enforces exactly the
// bounds the Coordinator does — one source of truth, like MemberParams.
func ValidBudgetW(w float64) error {
	if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
		return fmt.Errorf("%w: global budget %g W, want positive and finite", runner.ErrInvalidConfig, w)
	}
	return nil
}

// New validates the configuration and members and builds a Coordinator.
// The first Step call executes cluster epoch 0. Sessions handed in must
// not be stepped (or finalized) by anyone else afterwards.
func New(cfg Config, members []Member) (*Coordinator, error) {
	if err := ValidBudgetW(cfg.BudgetW); err != nil {
		return nil, err
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("%w: cluster has no members", runner.ErrInvalidConfig)
	}
	if cfg.Arbiter == nil {
		cfg.Arbiter = NewStaticProportional()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	seen := make(map[string]bool, len(members))
	sessions := make(map[*runner.Session]bool, len(members))
	c := &Coordinator{cfg: cfg, arb: cfg.Arbiter, budgetW: cfg.BudgetW, slo: NewSLOTracker()}
	c.forgetter, _ = cfg.Arbiter.(MemberForgetter)
	maxTotal := 0
	for i := range members {
		m := members[i]
		if err := validateMember(&m, seen); err != nil {
			return nil, err
		}
		if sessions[m.Session] {
			return nil, fmt.Errorf("%w: member %q shares a session with another member", runner.ErrInvalidConfig, m.ID)
		}
		sessions[m.Session] = true
		mm := newMember(m)
		c.members = append(c.members, mm)
		if mm.total > maxTotal {
			maxTotal = mm.total
		}
	}
	c.total.Store(int64(maxTotal))
	// A flat chunk backs the records' member lines; memberLines
	// allocates fresh chunks as the run (or an attach) outgrows it. The
	// initial chunk is capped: a full-horizon buffer for a many-member
	// long cluster would hand an unauthenticated create hundreds of
	// megabytes before the first epoch runs.
	chunk := maxTotal
	if chunk > 256 {
		chunk = 256
	}
	c.grantBuf = make([]MemberGrant, chunk*len(members))
	return c, nil
}

// Epoch returns the number of cluster epochs completed — the index the
// next Step would execute. Safe to call concurrently with Step.
func (c *Coordinator) Epoch() int { return int(c.epoch.Load()) }

// TotalEpochs returns how many cluster epochs the current membership
// runs for — the latest-finishing live member's horizon. Attaching
// extends it; detaches and early finishes shrink it at the next
// boundary. Safe to call concurrently with Step.
func (c *Coordinator) TotalEpochs() int { return int(c.total.Load()) }

// BudgetW returns the global budget currently in force (the pending
// value after a retarget, ahead of the boundary that applies it).
func (c *Coordinator) BudgetW() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.budgetW
}

// Name returns the arbiter's name.
func (c *Coordinator) Name() string { return c.arb.Name() }

// SetBudgetW retargets the global budget: from the next epoch on, the
// arbiter partitions w watts. NaN, infinite and non-positive values are
// rejected with runner.ErrInvalidConfig. Safe to call concurrently with
// Step; the change takes effect at the next epoch boundary, never the
// epoch in progress.
func (c *Coordinator) SetBudgetW(w float64) error {
	if err := ValidBudgetW(w); err != nil {
		return err
	}
	c.mu.Lock()
	c.budgetW = w
	c.mu.Unlock()
	return nil
}

// Attach adds a member starting at the next epoch boundary. A
// membership change reseeds every grant proportionally (the arbiter
// restarts from the seed), keeping the post-attach allocation
// independent of when the attach raced the epoch in progress.
// Attaching to a finished cluster fails with ErrDone — there is no
// boundary left for the member to join at.
func (c *Coordinator) Attach(m Member) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done {
		return fmt.Errorf("%w: cannot attach %q", ErrDone, m.ID)
	}
	seen := make(map[string]bool, len(c.members)+len(c.pendingAttach)+1)
	sessions := make(map[*runner.Session]bool, len(c.members)+len(c.pendingAttach))
	for _, ex := range c.members {
		seen[ex.ID] = true
		sessions[ex.Session] = true
	}
	for _, p := range c.pendingAttach {
		seen[p.ID] = true
		sessions[p.Session] = true
	}
	if err := validateMember(&m, seen); err != nil {
		return err
	}
	if sessions[m.Session] {
		return fmt.Errorf("%w: member %q shares a session with another member", runner.ErrInvalidConfig, m.ID)
	}
	p := newMember(m)
	c.pendingAttach = append(c.pendingAttach, p)
	// Extend the horizon estimate immediately so supervisors consulting
	// TotalEpochs (e.g. the serve layer's final-epoch retarget guard)
	// see the extension before the boundary applies it; applyPending
	// recomputes the exact value with the boundary's epoch index. When
	// the attach races an in-flight Step the estimate is deliberately
	// one epoch conservative (the member joins at the *next* boundary):
	// a supervisor's final-epoch check then refuses with a retryable
	// conflict for one epoch at worst, instead of accepting an
	// operation that would silently never apply.
	if h := int64(int(c.epoch.Load()) + p.total); h > c.total.Load() {
		c.total.Store(h)
	}
	return nil
}

// Detach removes a member at the next epoch boundary: it stops being
// stepped and its prefix result is finalized (still reported by
// Results). Detaching a member whose attach is still pending revokes
// the attach instead — the member never ran, never joins Results, and
// pending=true tells the caller to erase it from its own bookkeeping.
// Unknown ids fail with ErrUnknownMember; a finished cluster has no
// boundary left, so Detach fails with ErrDone.
func (c *Coordinator) Detach(id string) (pending bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done {
		return false, fmt.Errorf("%w: cannot detach %q", ErrDone, id)
	}
	for _, m := range c.members {
		if m.ID == id && !m.detached {
			c.pendingDetach = append(c.pendingDetach, id)
			return false, nil
		}
	}
	for i, p := range c.pendingAttach {
		if p.ID == id {
			c.pendingAttach = append(c.pendingAttach[:i], c.pendingAttach[i+1:]...)
			return true, nil
		}
	}
	return false, fmt.Errorf("%w: %q", ErrUnknownMember, id)
}

// applyPending folds queued attaches/detaches into the member set at an
// epoch boundary and reports whether membership changed in a way that
// requires reseeding grants (any attach).
func (c *Coordinator) applyPending() (attached bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.pendingDetach {
		for _, m := range c.members {
			if m.ID == id && !m.detached {
				m.detached = true
				m.Session.Result() // finalize the prefix
				c.slo.Forget(id)
				if c.forgetter != nil {
					c.forgetter.Forget(id)
				}
			}
		}
	}
	c.pendingDetach = c.pendingDetach[:0]
	cur := int(c.epoch.Load())
	for _, p := range c.pendingAttach {
		c.members = append(c.members, p)
		attached = true
	}
	c.pendingAttach = c.pendingAttach[:0]
	// Recompute the horizon from the members that will actually keep
	// running — a detach of the longest-running member shrinks it, so
	// supervisors consulting TotalEpochs (the serve final-epoch retarget
	// guard, status reporting) see the real remaining run, not a stale
	// upper bound.
	horizon := cur
	for _, m := range c.members {
		if m.done || m.detached {
			continue
		}
		if h := cur + m.total - m.local; h > horizon {
			horizon = h
		}
	}
	c.total.Store(int64(horizon))
	return attached
}

// Step executes one cluster epoch: apply pending membership and budget
// changes, arbitrate the global budget across live members, push the
// new caps, and advance every live member exactly one control epoch
// (concurrently, up to Config.Workers at a time). It returns the
// epoch's record, ErrDone once every member has finished, and
// ErrConcurrentStep if another Step or Results is in flight. Any member
// failure or context error is sticky.
func (c *Coordinator) Step(ctx context.Context) (EpochRecord, error) {
	if !c.stepMu.TryLock() {
		return EpochRecord{}, ErrConcurrentStep
	}
	defer c.stepMu.Unlock()
	if c.err != nil {
		return EpochRecord{}, c.err
	}
	if c.finalized {
		return EpochRecord{}, ErrDone
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			c.err = err
			return EpochRecord{}, err
		}
	}

	attached := false
	for {
		attached = c.applyPending() || attached
		c.live = c.live[:0]
		for _, m := range c.members {
			if !m.done && !m.detached {
				c.live = append(c.live, m)
			}
		}
		if len(c.live) > 0 {
			break
		}
		// Nobody left to step: latch done — unless an attach raced in
		// after applyPending, in which case fold it in and keep going.
		// The latch is taken under mu, so Attach/Detach either land
		// before it (and are honored) or observe done and fail typed.
		c.mu.Lock()
		if len(c.pendingAttach) > 0 {
			c.mu.Unlock()
			continue
		}
		c.done = true
		c.mu.Unlock()
		c.finalized = true
		return EpochRecord{}, ErrDone
	}
	budget := c.BudgetW()

	// Arbitrate on the completed epoch's observations; an attach wipes
	// the grant history so everyone reseeds from the proportional share.
	n := len(c.live)
	c.obs = c.obs[:0]
	c.ids = c.ids[:0]
	for _, m := range c.live {
		g := m.grantW
		if attached {
			g = 0
		}
		c.obs = append(c.obs, Observation{
			PeakW: m.peak, FloorW: m.floorW, Weight: m.Weight,
			GrantW: g, PowerW: m.powerW, ThrottleFrac: m.throttle,
			Instr: m.instr, BIPS: m.bips(), TargetBIPS: m.TargetBIPS,
			Warm: m.local > 0,
		})
		c.ids = append(c.ids, m.ID)
	}
	if cap(c.grants) < n {
		c.grants = make([]float64, n)
		c.stepRecs = make([]runner.EpochRecord, n)
		c.stepErrs = make([]error, n)
	}
	c.grants = c.grants[:n]
	c.stepRecs = c.stepRecs[:n]
	c.stepErrs = c.stepErrs[:n]
	arbStart := time.Now()
	if err := ComputeGrants(c.arb, budget, c.ids, c.obs, c.grants); err != nil {
		c.err = err
		return EpochRecord{}, c.err
	}
	c.met.ArbitrationSeconds.Observe(time.Since(arbStart).Seconds())
	if c.fillRep != nil {
		c.met.FillPasses.Add(uint64(c.fillRep.FillPasses()))
	}
	if c.predRep != nil {
		e := c.predRep.PredictionErrorW()
		c.met.PredictionErrW.Set(e)
		c.met.PredictionAbsErrW.Observe(e)
	}

	// Push the caps, then step everyone's epoch under them.
	for i, m := range c.live {
		g := c.grants[i]
		if err := m.Session.SetBudgetFrac(g / m.peak); err != nil {
			c.err = fmt.Errorf("cluster: member %q grant %g W of %g W peak: %w", m.ID, g, m.peak, err)
			return EpochRecord{}, c.err
		}
		m.grantW = g
	}
	c.parallelStep(ctx, n)
	for i, err := range c.stepErrs {
		if err == nil || errors.Is(err, runner.ErrDone) {
			continue
		}
		c.err = fmt.Errorf("cluster: member %q: %w", c.live[i].ID, err)
		return EpochRecord{}, c.err
	}

	e := int(c.epoch.Load())
	rec := EpochRecord{Epoch: e, BudgetW: budget, Members: c.memberLines(n)[:0]}
	for i, m := range c.live {
		if errors.Is(c.stepErrs[i], runner.ErrDone) {
			// Defensive: a session finalized behind our back. Retire it.
			m.done = true
			continue
		}
		r := c.stepRecs[i]
		m.powerW = r.AvgPowerW
		m.throttle = m.throttleFrac(r.CoreSteps)
		m.local++
		if m.local >= m.total {
			m.done = true
			m.Session.Result()
		}
		instr := 0.0
		for _, v := range r.Instr {
			instr += v
		}
		m.instr = instr
		mg := MemberGrant{
			ID: m.ID, Epoch: r.Epoch,
			GrantW: m.grantW, PowerW: r.AvgPowerW, SlackW: m.grantW - r.AvgPowerW,
			ThrottleFrac: m.throttle, Instr: instr, Done: m.done,
		}
		if m.TargetBIPS > 0 {
			mg.BIPS = m.bips()
			mg.TargetBIPS = m.TargetBIPS
		}
		rec.Members = append(rec.Members, mg)
		rec.GrantedW += m.grantW
	}
	violations, satisfied, _ := c.slo.Apply(&rec)
	c.epoch.Add(1)
	c.met.Epochs.Inc()
	if violations > 0 {
		c.met.SLOViolations.Add(uint64(violations))
	}
	c.met.SLOSatisfied.Set(float64(satisfied))
	if c.met.DrawW != nil {
		draw := 0.0
		for i := range rec.Members {
			draw += rec.Members[i].PowerW
		}
		c.met.DrawW.Set(draw)
		c.met.SlackW.Set(rec.GrantedW - draw)
	}
	c.met.BudgetW.Set(budget)
	c.met.GrantW.Set(rec.GrantedW)
	c.met.Members.Set(float64(len(rec.Members)))
	return rec, nil
}

// memberLines carves the next n member lines out of the flat chunk,
// falling back to a fresh chunk when attaches outgrew the original.
func (c *Coordinator) memberLines(n int) []MemberGrant {
	if c.grantOff+n > len(c.grantBuf) {
		size := n * 64
		if size < n {
			size = n
		}
		c.grantBuf = make([]MemberGrant, size)
		c.grantOff = 0
	}
	s := c.grantBuf[c.grantOff : c.grantOff+n : c.grantOff+n]
	c.grantOff += n
	return s
}

// parallelStep advances every live member one epoch on the worker pool,
// recording each outcome at the member's index — submission order, so
// the epoch's results are identical at any worker count.
func (c *Coordinator) parallelStep(ctx context.Context, n int) {
	workers := c.cfg.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			c.stepRecs[i], c.stepErrs[i] = c.live[i].Session.Step(ctx)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				c.stepRecs[i], c.stepErrs[i] = c.live[i].Session.Step(ctx)
			}
		}()
	}
	wg.Wait()
}

// Results finalizes every member session and returns their aggregates
// in membership order (founding order, then attach order; detached and
// finished members included with their prefix results). Finalizing ends
// the cluster: subsequent Steps return ErrDone. Results serializes
// against Step — a concurrent caller blocks until the in-flight epoch
// completes.
func (c *Coordinator) Results() []MemberResult {
	c.stepMu.Lock()
	defer c.stepMu.Unlock()
	c.finalized = true
	c.mu.Lock()
	c.done = true
	members := append([]*member(nil), c.members...)
	c.mu.Unlock()
	out := make([]MemberResult, len(members))
	for i, m := range members {
		out[i] = MemberResult{ID: m.ID, Result: m.Session.Result()}
	}
	return out
}
