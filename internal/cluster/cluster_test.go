package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/cpusim"
	"repro/internal/dvfs"
	"repro/internal/policy"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// sessionSpec describes one member session so tests can build the exact
// same session twice (determinism runs) without sharing state.
type sessionSpec struct {
	mix    string
	cores  int
	epochs int
	seed   int64
	pol    func() policy.Policy
	mach   *sim.MachineSpec
}

func (sp sessionSpec) build(t *testing.T) *runner.Session {
	t.Helper()
	mix, err := workload.MixByName(sp.mix)
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.DefaultConfig(sp.cores)
	sc.EpochNs = 5e5
	sc.ProfileNs = 5e4
	if sp.seed != 0 {
		sc.Seed = sp.seed
	}
	sc.Machine = sp.mach
	var pol policy.Policy
	if sp.pol != nil {
		pol = sp.pol()
	}
	s, err := runner.NewSession(runner.Config{Sim: sc, Mix: mix, BudgetFrac: 1, Epochs: sp.epochs, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// bigLittle is a 2+2 asymmetric machine spec for mixed-machine members.
func bigLittle() *sim.MachineSpec {
	return &sim.MachineSpec{
		Name: "bigLITTLE-2+2",
		Classes: []sim.CoreClass{
			{Name: "big", Count: 2},
			{Name: "little", Count: 2,
				Ladder:       dvfs.EfficiencyCoreLadder(),
				Power:        cpusim.PowerConfig{DynMaxW: 1.5, StaticW: 0.2, GateFrac: 0.12},
				ExecCPIScale: 1.25},
		},
	}
}

func fastcap() policy.Policy { return policy.NewFastCap() }

// runCluster drives a coordinator to ErrDone and returns every record
// plus the final results.
func runCluster(t *testing.T, c *cluster.Coordinator) ([]cluster.EpochRecord, []cluster.MemberResult) {
	t.Helper()
	var recs []cluster.EpochRecord
	for {
		rec, err := c.Step(context.Background())
		if errors.Is(err, cluster.ErrDone) {
			break
		}
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		recs = append(recs, rec)
	}
	return recs, c.Results()
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// The golden determinism test of the cluster layer: an 8-member cluster
// of mixed machine specs (homogeneous and big.LITTLE, different mixes,
// policies, seeds and run lengths — some finishing mid-cluster) under
// the slack-reclaiming arbiter must produce byte-identical per-member
// grant streams and final results on worker pools of 1 and 8. On a
// 1-CPU host wall-clock proves nothing; bit-equality under -race is the
// parallelism proof (see FastCap repo environment note).
func TestClusterDeterministicAcrossWorkers(t *testing.T) {
	specs := []struct {
		id string
		sp sessionSpec
	}{
		{"ilp", sessionSpec{mix: "ILP1", cores: 8, epochs: 8, pol: fastcap}},
		{"mem", sessionSpec{mix: "MEM4", cores: 8, epochs: 8, pol: fastcap}},
		{"mix", sessionSpec{mix: "MIX3", cores: 4, epochs: 7, seed: 7, pol: fastcap}},
		{"mid", sessionSpec{mix: "MID1", cores: 4, epochs: 5, pol: func() policy.Policy { return policy.NewEqlPwr() }}},
		{"bl1", sessionSpec{mix: "MIX1", cores: 4, epochs: 8, mach: bigLittle(), pol: fastcap}},
		{"bl2", sessionSpec{mix: "MEM2", cores: 4, epochs: 6, seed: 42, mach: bigLittle(), pol: fastcap}},
		{"base", sessionSpec{mix: "MID2", cores: 4, epochs: 4, pol: nil}},
		{"grd", sessionSpec{mix: "ILP2", cores: 4, epochs: 8, pol: func() policy.Policy { return policy.NewGreedy() }}},
	}
	run := func(workers int) ([]byte, []byte) {
		members := make([]cluster.Member, len(specs))
		peak := 0.0
		for i, s := range specs {
			ses := s.sp.build(t)
			peak += ses.PeakPowerW()
			members[i] = cluster.Member{ID: s.id, Session: ses}
		}
		c, err := cluster.New(cluster.Config{
			BudgetW: 0.7 * peak,
			Arbiter: cluster.NewSlackReclaim(),
			Workers: workers,
		}, members)
		if err != nil {
			t.Fatal(err)
		}
		recs, results := runCluster(t, c)
		return mustJSON(t, recs), mustJSON(t, results)
	}
	recs1, res1 := run(1)
	recs8, res8 := run(8)
	if !bytes.Equal(recs1, recs8) {
		t.Error("grant streams diverged between worker pools of 1 and 8")
	}
	if !bytes.Equal(res1, res8) {
		t.Error("final results diverged between worker pools of 1 and 8")
	}
}

// The slack-reclaiming arbiter must shift budget toward the
// power-bottlenecked member: a compute-bound tenant pressed against its
// cap gains watts that a memory-bound tenant cannot use.
func TestSlackReclaimShiftsBudgetTowardBottleneck(t *testing.T) {
	ilp := sessionSpec{mix: "ILP1", cores: 16, epochs: 20, pol: fastcap}.build(t)
	mem := sessionSpec{mix: "MEM4", cores: 16, epochs: 20, pol: fastcap}.build(t)
	budget := 0.75 * (ilp.PeakPowerW() + mem.PeakPowerW())
	c, err := cluster.New(cluster.Config{BudgetW: budget, Arbiter: cluster.NewSlackReclaim(), Workers: 1},
		[]cluster.Member{{ID: "ilp", Session: ilp}, {ID: "mem", Session: mem}})
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := runCluster(t, c)
	if len(recs) != 20 {
		t.Fatalf("ran %d epochs, want 20", len(recs))
	}
	for _, rec := range recs {
		if rec.GrantedW > rec.BudgetW*(1+1e-9) {
			t.Errorf("epoch %d granted %.2f W above the %.2f W budget", rec.Epoch, rec.GrantedW, rec.BudgetW)
		}
	}
	first, last := recs[0], recs[len(recs)-1]
	grant := func(r cluster.EpochRecord, id string) float64 {
		for _, m := range r.Members {
			if m.ID == id {
				return m.GrantW
			}
		}
		t.Fatalf("member %q missing from epoch %d", id, r.Epoch)
		return 0
	}
	if gained := grant(last, "ilp") - grant(first, "ilp"); gained < 2 {
		t.Errorf("bottlenecked member gained %.2f W, want a clear reclaim (>= 2 W)", gained)
	}
	if ceded := grant(first, "mem") - grant(last, "mem"); ceded < 2 {
		t.Errorf("memory-bound member ceded %.2f W, want a clear reclaim (>= 2 W)", ceded)
	}
}

// Construction-time validation: every malformed cluster is refused with
// the typed, errors.Is-able runner.ErrInvalidConfig before any stepping.
func TestNewValidationTable(t *testing.T) {
	okMember := func(id string) cluster.Member {
		return cluster.Member{ID: id, Session: sessionSpec{mix: "MIX3", cores: 4, epochs: 2, pol: fastcap}.build(t)}
	}
	okCfg := cluster.Config{BudgetW: 50}
	cases := []struct {
		name    string
		cfg     cluster.Config
		members func() []cluster.Member
	}{
		{"zero members", okCfg, func() []cluster.Member { return nil }},
		{"NaN budget", cluster.Config{BudgetW: math.NaN()}, func() []cluster.Member { return []cluster.Member{okMember("a")} }},
		{"zero budget", cluster.Config{BudgetW: 0}, func() []cluster.Member { return []cluster.Member{okMember("a")} }},
		{"negative budget", cluster.Config{BudgetW: -40}, func() []cluster.Member { return []cluster.Member{okMember("a")} }},
		{"infinite budget", cluster.Config{BudgetW: math.Inf(1)}, func() []cluster.Member { return []cluster.Member{okMember("a")} }},
		{"nil session", okCfg, func() []cluster.Member { return []cluster.Member{{ID: "a"}} }},
		{"empty id", okCfg, func() []cluster.Member { return []cluster.Member{okMember("")} }},
		{"duplicate id", okCfg, func() []cluster.Member { return []cluster.Member{okMember("a"), okMember("a")} }},
		{"shared session", okCfg, func() []cluster.Member {
			m := okMember("a")
			return []cluster.Member{m, {ID: "b", Session: m.Session}}
		}},
		{"NaN weight", okCfg, func() []cluster.Member {
			m := okMember("a")
			m.Weight = math.NaN()
			return []cluster.Member{m}
		}},
		{"negative weight", okCfg, func() []cluster.Member {
			m := okMember("a")
			m.Weight = -1
			return []cluster.Member{m}
		}},
		{"infinite weight", okCfg, func() []cluster.Member {
			m := okMember("a")
			m.Weight = math.Inf(1)
			return []cluster.Member{m}
		}},
		{"NaN floor", okCfg, func() []cluster.Member {
			m := okMember("a")
			m.FloorFrac = math.NaN()
			return []cluster.Member{m}
		}},
		{"negative floor", okCfg, func() []cluster.Member {
			m := okMember("a")
			m.FloorFrac = -0.2
			return []cluster.Member{m}
		}},
		{"floor above one", okCfg, func() []cluster.Member {
			m := okMember("a")
			m.FloorFrac = 1.5
			return []cluster.Member{m}
		}},
	}
	for _, tc := range cases {
		if _, err := cluster.New(tc.cfg, tc.members()); !errors.Is(err, runner.ErrInvalidConfig) {
			t.Errorf("%s: New error %v, want ErrInvalidConfig", tc.name, err)
		}
	}
}

// Live retargets reject NaN, negative, zero and infinite budgets typed,
// and a valid retarget takes effect at the next epoch boundary.
func TestSetBudgetW(t *testing.T) {
	ses := sessionSpec{mix: "MIX3", cores: 4, epochs: 4, pol: fastcap}.build(t)
	c, err := cluster.New(cluster.Config{BudgetW: 40, Workers: 1},
		[]cluster.Member{{ID: "a", Session: ses}})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{math.NaN(), -5, 0, math.Inf(1), math.Inf(-1)} {
		if err := c.SetBudgetW(bad); !errors.Is(err, runner.ErrInvalidConfig) {
			t.Errorf("SetBudgetW(%g): %v, want ErrInvalidConfig", bad, err)
		}
	}
	if _, err := c.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.SetBudgetW(33); err != nil {
		t.Fatal(err)
	}
	rec, err := c.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rec.BudgetW != 33 {
		t.Errorf("epoch after retarget ran under %.1f W, want 33 W", rec.BudgetW)
	}
}

// A global budget below the sum of member floors degrades every grant
// to exactly its floor — a stable fixed point, not an oscillation —
// under every arbiter.
func TestBudgetBelowFloorsDegradesToFloors(t *testing.T) {
	for _, arbName := range []string{"static", "slack", "priority", "slo", "predictive"} {
		arb, ok := cluster.ArbiterByName(arbName)
		if !ok {
			t.Fatalf("unknown arbiter %q", arbName)
		}
		a := sessionSpec{mix: "MIX3", cores: 4, epochs: 5, pol: fastcap}.build(t)
		b := sessionSpec{mix: "MEM2", cores: 4, epochs: 5, pol: fastcap}.build(t)
		floorA, floorB := 0.3*a.PeakPowerW(), 0.3*b.PeakPowerW()
		budget := 0.5 * (floorA + floorB) // far below the floors
		c, err := cluster.New(cluster.Config{BudgetW: budget, Arbiter: arb, Workers: 1},
			[]cluster.Member{
				{ID: "a", FloorFrac: 0.3, Session: a},
				{ID: "b", FloorFrac: 0.3, Session: b},
			})
		if err != nil {
			t.Fatal(err)
		}
		recs, _ := runCluster(t, c)
		for _, rec := range recs {
			for _, m := range rec.Members {
				want := floorA
				if m.ID == "b" {
					want = floorB
				}
				if m.GrantW != want {
					t.Errorf("%s: epoch %d member %s granted %.3f W, want its floor %.3f W",
						arbName, rec.Epoch, m.ID, m.GrantW, want)
				}
			}
		}
	}
}

// A member that finishes mid-cluster drops out of arbitration at the
// next boundary and its budget is redistributed to the survivors.
func TestMemberFinishingMidClusterFreesBudget(t *testing.T) {
	short := sessionSpec{mix: "MIX3", cores: 4, epochs: 3, pol: fastcap}.build(t)
	long := sessionSpec{mix: "ILP1", cores: 4, epochs: 6, pol: fastcap}.build(t)
	budget := 0.6 * (short.PeakPowerW() + long.PeakPowerW())
	c, err := cluster.New(cluster.Config{BudgetW: budget, Workers: 1}, // static arbiter
		[]cluster.Member{{ID: "short", Session: short}, {ID: "long", Session: long}})
	if err != nil {
		t.Fatal(err)
	}
	recs, results := runCluster(t, c)
	if len(recs) != 6 {
		t.Fatalf("cluster ran %d epochs, want 6", len(recs))
	}
	if n := len(recs[2].Members); n != 2 {
		t.Fatalf("epoch 2 has %d members, want 2", n)
	}
	if !recs[2].Members[0].Done {
		t.Error("short member's final epoch not marked Done")
	}
	if n := len(recs[3].Members); n != 1 {
		t.Fatalf("epoch 3 has %d members, want 1 (short finished)", n)
	}
	longBefore, longAfter := recs[2].Members[1], recs[3].Members[0]
	if longAfter.ID != "long" || longBefore.ID != "long" {
		t.Fatalf("unexpected member order: %q then %q", longBefore.ID, longAfter.ID)
	}
	if longAfter.GrantW <= longBefore.GrantW {
		t.Errorf("survivor grant %.2f W did not grow from %.2f W after the short member freed its budget",
			longAfter.GrantW, longBefore.GrantW)
	}
	if len(results) != 2 {
		t.Fatalf("Results has %d members, want 2", len(results))
	}
	if got := len(results[0].Result.Epochs); got != 3 {
		t.Errorf("short member result has %d epochs, want 3", got)
	}
	if got := len(results[1].Result.Epochs); got != 6 {
		t.Errorf("long member result has %d epochs, want 6", got)
	}
}

// Attach adds a member at the next epoch boundary (extending the
// cluster horizon); Detach removes one and keeps its prefix result;
// unknown detach targets fail typed.
func TestAttachDetach(t *testing.T) {
	a := sessionSpec{mix: "MIX3", cores: 4, epochs: 4, pol: fastcap}.build(t)
	b := sessionSpec{mix: "MID1", cores: 4, epochs: 4, pol: fastcap}.build(t)
	c, err := cluster.New(cluster.Config{BudgetW: 80, Workers: 1},
		[]cluster.Member{{ID: "a", Session: a}, {ID: "b", Session: b}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	late := sessionSpec{mix: "MEM2", cores: 4, epochs: 4, pol: fastcap}.build(t)
	if err := c.Attach(cluster.Member{ID: "late", Session: late}); err != nil {
		t.Fatal(err)
	}
	if err := c.Attach(cluster.Member{ID: "a", Session: sessionSpec{mix: "MIX3", cores: 4, epochs: 2, pol: fastcap}.build(t)}); !errors.Is(err, runner.ErrInvalidConfig) {
		t.Errorf("duplicate attach: %v, want ErrInvalidConfig", err)
	}
	if pending, err := c.Detach("b"); err != nil || pending {
		t.Fatalf("detach of an active member: pending=%v err=%v", pending, err)
	}
	if _, err := c.Detach("nope"); !errors.Is(err, cluster.ErrUnknownMember) {
		t.Errorf("unknown detach: %v, want ErrUnknownMember", err)
	}
	rec, err := c.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Members) != 2 {
		t.Fatalf("epoch 1 has %d members, want 2 (a + late)", len(rec.Members))
	}
	if rec.Members[0].ID != "a" || rec.Members[1].ID != "late" {
		t.Errorf("epoch 1 members %q, %q; want a, late", rec.Members[0].ID, rec.Members[1].ID)
	}
	if got := c.TotalEpochs(); got != 5 {
		t.Errorf("attach did not extend the horizon: TotalEpochs %d, want 5", got)
	}
	recs, results := runCluster(t, c)
	// late attached at epoch 1 runs its 4 epochs through cluster epoch 4,
	// so epochs 2..4 remain after the two manual steps.
	if want := 3; len(recs) != want {
		t.Errorf("drained %d more epochs, want %d", len(recs), want)
	}
	if len(results) != 3 {
		t.Fatalf("Results has %d members, want 3", len(results))
	}
	if got := len(results[1].Result.Epochs); got != 1 {
		t.Errorf("detached member kept %d epochs, want its 1-epoch prefix", got)
	}
	if got := len(results[2].Result.Epochs); got != 4 {
		t.Errorf("attached member ran %d epochs, want 4", got)
	}
}

// A re-entrant Step (here: from a member observer, the same shape as a
// second driver goroutine) is refused typed instead of racing.
func TestConcurrentStepRefused(t *testing.T) {
	var c *cluster.Coordinator
	mix, err := workload.MixByName("MIX3")
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.DefaultConfig(4)
	sc.EpochNs = 5e5
	sc.ProfileNs = 5e4
	reentered := false
	ses, err := runner.NewSession(
		runner.Config{Sim: sc, Mix: mix, BudgetFrac: 1, Epochs: 2, Policy: policy.NewFastCap()},
		runner.WithObserver(func(runner.EpochRecord) {
			if _, err := c.Step(context.Background()); !errors.Is(err, cluster.ErrConcurrentStep) {
				t.Errorf("re-entrant Step: %v, want ErrConcurrentStep", err)
			}
			reentered = true
		}))
	if err != nil {
		t.Fatal(err)
	}
	c, err = cluster.New(cluster.Config{BudgetW: 40, Workers: 1},
		[]cluster.Member{{ID: "a", Session: ses}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !reentered {
		t.Fatal("observer never ran")
	}
}

// Context cancellation between epochs is sticky, and the member prefix
// results stay available.
func TestContextCancellationSticky(t *testing.T) {
	ses := sessionSpec{mix: "MIX3", cores: 4, epochs: 10, pol: fastcap}.build(t)
	c, err := cluster.New(cluster.Config{BudgetW: 40, Workers: 1},
		[]cluster.Member{{ID: "a", Session: ses}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Step(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Step: %v", err)
	}
	if _, err := c.Step(context.Background()); !errors.Is(err, context.Canceled) {
		t.Errorf("sticky error lost: %v", err)
	}
	results := c.Results()
	if got := len(results[0].Result.Epochs); got != 1 {
		t.Errorf("prefix result has %d epochs, want 1", got)
	}
}

// Detaching the longest-running member shrinks the horizon at the next
// boundary — TotalEpochs reports the real remaining run, so a
// supervisor's final-epoch checks cannot accept operations that will
// never apply.
func TestDetachShrinksHorizon(t *testing.T) {
	long := sessionSpec{mix: "ILP1", cores: 4, epochs: 10, pol: fastcap}.build(t)
	short := sessionSpec{mix: "MIX3", cores: 4, epochs: 4, pol: fastcap}.build(t)
	c, err := cluster.New(cluster.Config{BudgetW: 80, Workers: 1},
		[]cluster.Member{{ID: "long", Session: long}, {ID: "short", Session: short}})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.TotalEpochs(); got != 10 {
		t.Fatalf("initial horizon %d, want 10", got)
	}
	if _, err := c.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Detach("long"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := c.TotalEpochs(); got != 4 {
		t.Errorf("horizon after detaching the long member: %d, want 4 (short's run)", got)
	}
	recs, _ := runCluster(t, c)
	if want := 2; len(recs) != want { // epochs 2..3 remain
		t.Errorf("drained %d more epochs, want %d", len(recs), want)
	}
}

// Membership operations on a finished cluster fail typed instead of
// queuing a member that would never run (the attach would otherwise be
// silently ignored — no boundary remains to apply it).
func TestAttachDetachAfterDone(t *testing.T) {
	ses := sessionSpec{mix: "MIX3", cores: 4, epochs: 2, pol: fastcap}.build(t)
	c, err := cluster.New(cluster.Config{BudgetW: 40, Workers: 1},
		[]cluster.Member{{ID: "a", Session: ses}})
	if err != nil {
		t.Fatal(err)
	}
	runCluster(t, c)
	late := sessionSpec{mix: "MID1", cores: 4, epochs: 2, pol: fastcap}.build(t)
	if err := c.Attach(cluster.Member{ID: "late", Session: late}); !errors.Is(err, cluster.ErrDone) {
		t.Errorf("attach after done: %v, want ErrDone", err)
	}
	if _, err := c.Detach("a"); !errors.Is(err, cluster.ErrDone) {
		t.Errorf("detach after done: %v, want ErrDone", err)
	}
}

// sloppyArbiter exercises the coordinator's defense against custom
// Arbiter implementations: out-of-range grants, then a NaN grant.
type sloppyArbiter struct{ epoch int }

func (*sloppyArbiter) Name() string { return "sloppy" }

func (a *sloppyArbiter) Rebalance(budgetW float64, obs []Observation, grants []float64) {
	defer func() { a.epoch++ }()
	for i := range grants {
		switch a.epoch {
		case 0:
			grants[i] = -50 // below every floor
		case 1:
			grants[i] = budgetW * 10 // far above every peak
		default:
			grants[i] = math.NaN()
		}
	}
}

// Alias the exported Observation type for the custom-arbiter test.
type Observation = cluster.Observation

// A custom arbiter returning out-of-range grants is clamped into
// [floor, peak] — the cluster keeps running — while a NaN grant is a
// typed, sticky arbiter bug.
func TestCoordinatorClampsCustomArbiterGrants(t *testing.T) {
	ses := sessionSpec{mix: "MIX3", cores: 4, epochs: 5, pol: fastcap}.build(t)
	peak := ses.PeakPowerW()
	c, err := cluster.New(cluster.Config{BudgetW: 40, Arbiter: &sloppyArbiter{}, Workers: 1},
		[]cluster.Member{{ID: "a", FloorFrac: 0.2, Session: ses}})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.Step(context.Background())
	if err != nil {
		t.Fatalf("below-floor grant epoch: %v", err)
	}
	if got, want := rec.Members[0].GrantW, 0.2*peak; got != want {
		t.Errorf("below-floor grant clamped to %.2f W, want the %.2f W floor", got, want)
	}
	rec, err = c.Step(context.Background())
	if err != nil {
		t.Fatalf("above-peak grant epoch: %v", err)
	}
	if got := rec.Members[0].GrantW; got != peak {
		t.Errorf("above-peak grant clamped to %.2f W, want the %.2f W peak", got, peak)
	}
	if _, err := c.Step(context.Background()); !errors.Is(err, runner.ErrInvalidConfig) {
		t.Fatalf("NaN grant: %v, want ErrInvalidConfig", err)
	}
	if _, err := c.Step(context.Background()); !errors.Is(err, runner.ErrInvalidConfig) {
		t.Errorf("NaN arbiter error not sticky: %v", err)
	}
}

// Arbiters must handle an empty member list without panicking (the
// transient state between the last detach and ErrDone).
func TestArbitersEmptyObservations(t *testing.T) {
	for _, name := range []string{"static", "slack", "priority", "slo", "predictive"} {
		arb, _ := cluster.ArbiterByName(name)
		arb.Rebalance(100, nil, nil) // must not panic
	}
	if _, ok := cluster.ArbiterByName("nope"); ok {
		t.Error("unknown arbiter name resolved")
	}
}

// Budget freed by a ceiling clamp must be redistributed to the other
// members, not stranded (regression: the fill used to clamp both
// directions off the same stale remainder, so extreme weight skew
// starved the light member at its floor with budget left over).
func TestFillRedistributesCeilingClampedBudget(t *testing.T) {
	arb := cluster.NewPriorityWeighted()
	obs := []cluster.Observation{
		{PeakW: 100, FloorW: 10, Weight: 1000},
		{PeakW: 100, FloorW: 10, Weight: 1},
	}
	grants := make([]float64, 2)
	arb.Rebalance(150, obs, grants)
	if grants[0] != 100 || math.Abs(grants[1]-50) > 1e-9 {
		t.Errorf("grants %v of a 150 W budget, want [100 50] (freed ceiling budget redistributed)", grants)
	}
}

// Detaching a member whose attach has not reached a boundary yet
// revokes the attach: it never runs, never appears in Results, and the
// horizon estimate is corrected at the next boundary.
func TestDetachPendingAttachRevokes(t *testing.T) {
	a := sessionSpec{mix: "MIX3", cores: 4, epochs: 4, pol: fastcap}.build(t)
	c, err := cluster.New(cluster.Config{BudgetW: 40, Workers: 1},
		[]cluster.Member{{ID: "a", Session: a}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	late := sessionSpec{mix: "MID1", cores: 4, epochs: 8, pol: fastcap}.build(t)
	if err := c.Attach(cluster.Member{ID: "late", Session: late}); err != nil {
		t.Fatal(err)
	}
	pending, err := c.Detach("late")
	if err != nil || !pending {
		t.Fatalf("detach of a pending attach: pending=%v err=%v, want true/nil", pending, err)
	}
	rec, err := c.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Members) != 1 || rec.Members[0].ID != "a" {
		t.Errorf("revoked member still ran: %+v", rec.Members)
	}
	if got := c.TotalEpochs(); got != 4 {
		t.Errorf("horizon %d after revoked attach, want 4", got)
	}
	_, results := runCluster(t, c)
	if len(results) != 1 {
		t.Errorf("Results has %d members, want 1 (revoked attach excluded)", len(results))
	}
}

// Priority weights skew shares: a weight-3 member gets three times the
// per-peak share of a weight-1 member on identical machines.
func TestPriorityWeightedShares(t *testing.T) {
	hi := sessionSpec{mix: "MIX3", cores: 4, epochs: 2, pol: fastcap}.build(t)
	lo := sessionSpec{mix: "MIX3", cores: 4, epochs: 2, pol: fastcap}.build(t)
	budget := 0.5 * (hi.PeakPowerW() + lo.PeakPowerW())
	c, err := cluster.New(cluster.Config{BudgetW: budget, Arbiter: cluster.NewPriorityWeighted(), Workers: 1},
		[]cluster.Member{
			{ID: "hi", Weight: 3, Session: hi},
			{ID: "lo", Weight: 1, Session: lo},
		})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ratio := rec.Members[0].GrantW / rec.Members[1].GrantW
	if math.Abs(ratio-3) > 1e-6 {
		t.Errorf("grant ratio %.4f, want 3 (weights 3:1 on identical machines)", ratio)
	}
}

// Steady-state arbitration must not allocate: the cluster's per-epoch
// overhead is O(members) arithmetic on pre-grown scratch.
func TestArbitersSteadyStateAllocationFree(t *testing.T) {
	obs := make([]cluster.Observation, 64)
	for i := range obs {
		obs[i] = cluster.Observation{
			PeakW: 100, FloorW: 10, Weight: 1 + float64(i%3),
			GrantW: 50 + float64(i), PowerW: 40 + float64(i%7),
			ThrottleFrac: float64(i%2) * 0.5, Warm: true,
		}
	}
	grants := make([]float64, len(obs))
	for _, name := range []string{"static", "slack", "priority", "slo", "predictive"} {
		arb, _ := cluster.ArbiterByName(name)
		arb.Rebalance(3000, obs, grants) // warm the scratch
		allocs := testing.AllocsPerRun(100, func() {
			arb.Rebalance(3000, obs, grants)
		})
		if allocs != 0 {
			t.Errorf("%s: %.1f allocs per steady-state Rebalance, want 0", name, allocs)
		}
	}
}
