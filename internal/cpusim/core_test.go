package cpusim

import (
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/memsim"
	"repro/internal/workload"
)

func testApp(mpki float64) workload.App {
	return workload.App{
		AppProfile: workload.AppProfile{
			Name:        "test",
			ExecCPI:     1.2,
			Activity:    0.9,
			RowLocality: 0.5,
			WriteFrac:   0.3,
		},
		MPKI: mpki,
		WPKI: mpki * 0.3,
	}
}

func newRig(t *testing.T, mpki float64, ooo bool) (*engine.Engine, *memsim.Controller, *Core) {
	t.Helper()
	eng := engine.New()
	ctl, err := memsim.NewController(eng, 32, memsim.DDR3(), memsim.DefaultPower(), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{
		ID:          0,
		App:         testApp(mpki),
		Engine:      eng,
		Controllers: []*memsim.Controller{ctl},
		FreqMax:     4.0,
		OoO:         ooo,
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, ctl, c
}

func TestNewErrors(t *testing.T) {
	eng := engine.New()
	ctl, _ := memsim.NewController(eng, 4, memsim.DDR3(), memsim.DefaultPower(), 0.8)
	base := Config{ID: 0, App: testApp(1), Engine: eng, Controllers: []*memsim.Controller{ctl}, FreqMax: 4}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"nil engine", func(c *Config) { c.Engine = nil }},
		{"no controllers", func(c *Config) { c.Controllers = nil }},
		{"zero freq", func(c *Config) { c.FreqMax = 0 }},
		{"zero mpki", func(c *Config) { c.App.MPKI = 0 }},
		{"prob shape", func(c *Config) { c.AccessProb = []float64{0.5, 0.5} }},
		{"negative prob", func(c *Config) { c.AccessProb = []float64{-1} }},
		{"zero probs", func(c *Config) { c.AccessProb = []float64{0} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			if _, err := New(cfg); err == nil {
				t.Error("bad config accepted")
			}
		})
	}
}

func TestInOrderExecutesAndMisses(t *testing.T) {
	eng, ctl, c := newRig(t, 10, false) // 10 MPKI → 100 instr/miss
	c.Start()
	eng.RunUntil(5e6) // 5 ms
	ctr := c.Counters()
	if ctr.Instructions <= 0 || ctr.Misses <= 0 {
		t.Fatalf("no progress: %+v", ctr)
	}
	// Measured MPKI should match the configured rate within sampling noise.
	mpki := float64(ctr.Misses) / ctr.Instructions * 1000
	if math.Abs(mpki-10)/10 > 0.1 {
		t.Errorf("measured MPKI %g, want ≈10", mpki)
	}
	// Writebacks at ≈30% of misses.
	wr := float64(ctr.Writebacks) / float64(ctr.Misses)
	if math.Abs(wr-0.3) > 0.05 {
		t.Errorf("writeback ratio %g, want ≈0.3", wr)
	}
	// All memory traffic landed at the controller.
	mc := ctl.Counters()
	if mc.Reads != ctr.Misses {
		t.Errorf("controller saw %d reads, core issued %d misses", mc.Reads, ctr.Misses)
	}
	// Busy + stall accounts for (almost) the whole window; busy time is
	// credited when a burst is scheduled, so the in-flight burst at the
	// horizon can overshoot slightly.
	total := ctr.BusyNs + ctr.StallNs
	if total > 5.05e6 || total < 4.5e6 {
		t.Errorf("busy+stall = %g ns over a 5e6 ns window", total)
	}
	if c.MaxOutstanding() != 1 {
		t.Errorf("in-order MaxOutstanding = %d", c.MaxOutstanding())
	}
}

func TestInOrderNeverOverlapsMisses(t *testing.T) {
	eng, ctl, c := newRig(t, 30, false)
	c.Start()
	// Sample the controller population frequently: an in-order core can
	// have at most 1 outstanding read (+ writebacks in flight).
	for i := 0; i < 2000; i++ {
		eng.RunUntil(float64(i) * 1000)
		reads := 0
		_ = reads
		if q := ctl.QueuedRequests(); q > 8 {
			t.Fatalf("implausible queue depth %d for a single in-order core", q)
		}
	}
}

func TestThinkTimeScalesWithFrequency(t *testing.T) {
	// At half frequency, busy time per instruction doubles → for a
	// fixed horizon, instructions roughly halve for a CPU-bound app.
	run := func(freq float64) float64 {
		eng, _, c := newRig(t, 0.2, false) // CPU-bound: 5000 instr/miss
		c.SetFreq(freq)
		c.Start()
		eng.RunUntil(5e6)
		return c.Counters().Instructions
	}
	fast := run(4.0)
	slow := run(2.0)
	ratio := fast / slow
	if math.Abs(ratio-2.0) > 0.2 {
		t.Errorf("instruction ratio at 2× frequency = %g, want ≈2 for CPU-bound", ratio)
	}
}

func TestSetFreqTransitionStall(t *testing.T) {
	eng, _, c := newRig(t, 1, false)
	c.Start()
	eng.RunUntil(1e5)
	before := c.Counters()
	c.SetFreq(3.0) // one transition
	eng.RunUntil(3e5)
	delta := c.Counters().Sub(before)
	if delta.StallNs < TransitionStallNs {
		t.Errorf("stall %g ns < transition stall %g", delta.StallNs, TransitionStallNs)
	}
	// Same frequency: no stall charged.
	c2Before := c.Counters()
	c.SetFreq(3.0)
	eng.RunUntil(3.1e5)
	_ = c2Before
	if c.Freq() != 3.0 {
		t.Errorf("freq = %g", c.Freq())
	}
	// Invalid frequency ignored.
	c.SetFreq(-1)
	if c.Freq() != 3.0 {
		t.Error("negative frequency accepted")
	}
}

func TestOoOAllowsMultipleOutstanding(t *testing.T) {
	// 50 MPKI → 20 instructions per miss → window of 128 allows 6
	// outstanding misses.
	eng, ctl, c := newRig(t, 50, true)
	if got := c.MaxOutstanding(); got != 6 {
		t.Fatalf("MaxOutstanding = %d, want 6", got)
	}
	c.Start()
	maxSeen := 0
	for i := 0; i < 5000; i++ {
		eng.RunUntil(float64(i) * 200)
		if q := ctl.QueuedRequests(); q > maxSeen {
			maxSeen = q
		}
	}
	// Reads alone can reach 6; with writebacks the population exceeds an
	// in-order core's but must respect the window bound loosely.
	if maxSeen < 2 {
		t.Errorf("never saw memory-level parallelism (max %d)", maxSeen)
	}
}

func TestOoOFasterThanInOrderWhenMemoryBound(t *testing.T) {
	run := func(ooo bool) float64 {
		eng, _, c := newRig(t, 50, ooo)
		c.Start()
		eng.RunUntil(5e6)
		return c.Counters().Instructions
	}
	inOrder := run(false)
	ooo := run(true)
	if ooo < inOrder*1.5 {
		t.Errorf("OoO %g instr vs in-order %g: want ≥1.5× for memory-bound", ooo, inOrder)
	}
}

func TestOoOCPUBoundDegeneratesToInOrder(t *testing.T) {
	// 1 MPKI → 1000 instr/miss ≫ window → maxOut = 1.
	_, _, c := newRig(t, 1, true)
	if got := c.MaxOutstanding(); got != 1 {
		t.Errorf("MaxOutstanding = %d, want 1 for sparse misses", got)
	}
}

func TestSetPhaseChangesIntensity(t *testing.T) {
	eng, _, c := newRig(t, 10, false)
	c.Start()
	eng.RunUntil(2e6)
	base := c.Counters()
	c.SetPhase(2.0) // double the memory intensity
	eng.RunUntil(4e6)
	delta := c.Counters().Sub(base)
	mpki := float64(delta.Misses) / delta.Instructions * 1000
	if math.Abs(mpki-20)/20 > 0.15 {
		t.Errorf("phase-doubled MPKI = %g, want ≈20", mpki)
	}
	// Degenerate multiplier resets to 1.
	c.SetPhase(0)
	if c.effIPA() != c.App.InstrPerMiss() {
		t.Error("zero phase multiplier not normalized")
	}
}

func TestStartIdempotent(t *testing.T) {
	eng, _, c := newRig(t, 5, false)
	c.Start()
	c.Start() // second call must not double-schedule
	eng.RunUntil(1e5)
	// In-order: at most one burst in flight; if Start double-scheduled,
	// instruction throughput would double. Compare against the expected
	// upper bound: window / (CPI/freq) instructions.
	maxInstr := 1e5 / (1.2 / 4.0) * 1.05
	if got := c.Counters().Instructions; got > maxInstr {
		t.Errorf("instructions %g exceed single-stream bound %g (double start?)", got, maxInstr)
	}
}

func TestPowerModel(t *testing.T) {
	_, _, c := newRig(t, 1, false)
	pcfg := DefaultPower()
	// Full busy at max frequency/voltage.
	full := c.Power(Counters{BusyNs: 1000}, 1000, 1.0, pcfg)
	want := 0.5 + 4.6*0.9*1.0
	if math.Abs(full-want) > 1e-9 {
		t.Errorf("full power = %g, want %g", full, want)
	}
	// Fully stalled: only gated residual.
	idle := c.Power(Counters{BusyNs: 0}, 1000, 1.0, pcfg)
	wantIdle := 0.5 + 4.6*0.9*0.15
	if math.Abs(idle-wantIdle) > 1e-9 {
		t.Errorf("stalled power = %g, want %g", idle, wantIdle)
	}
	// Power decreases with voltage/frequency.
	c.SetFreq(2.0)
	lower := c.Power(Counters{BusyNs: 1000}, 1000, 0.7, pcfg)
	if lower >= full {
		t.Errorf("power did not drop with DVFS: %g vs %g", lower, full)
	}
	// Degenerate window → static only.
	if got := c.Power(Counters{}, 0, 1, pcfg); got != pcfg.StaticW {
		t.Errorf("zero-window power = %g", got)
	}
	if got := c.PeakPower(pcfg); math.Abs(got-want) > 1e-9 {
		t.Errorf("PeakPower = %g, want %g", got, want)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Counters {
		eng := engine.New()
		ctl, _ := memsim.NewController(eng, 32, memsim.DDR3(), memsim.DefaultPower(), 0.8)
		c, _ := New(Config{ID: 3, App: testApp(8), Engine: eng, Controllers: []*memsim.Controller{ctl}, FreqMax: 4, Seed: 99})
		c.Start()
		eng.RunUntil(2e6)
		return c.Counters()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("identical seeds diverged: %+v vs %+v", a, b)
	}
}

func TestMultiControllerRouting(t *testing.T) {
	eng := engine.New()
	mk := func() *memsim.Controller {
		ctl, _ := memsim.NewController(eng, 8, memsim.DDR3(), memsim.DefaultPower(), 0.8)
		return ctl
	}
	c0, c1 := mk(), mk()
	// 90/10 skew.
	core, err := New(Config{
		ID: 0, App: testApp(20), Engine: eng,
		Controllers: []*memsim.Controller{c0, c1},
		AccessProb:  []float64{0.9, 0.1},
		FreqMax:     4, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	core.Start()
	eng.RunUntil(5e6)
	n0 := c0.Counters().Arrivals
	n1 := c1.Counters().Arrivals
	total := float64(n0 + n1)
	if total == 0 {
		t.Fatal("no traffic")
	}
	frac := float64(n0) / total
	// Row-locality repeats inflate the home-controller share; just require
	// a strong skew toward controller 0.
	if frac < 0.8 {
		t.Errorf("controller 0 got %.0f%% of traffic, want ≥80%%", frac*100)
	}
}
