package cpusim

import (
	"math"
	"testing"

	"repro/internal/memsim"
)

// controllersOf wraps a single controller for Config.Controllers.
func controllersOf(ctl *memsim.Controller) []*memsim.Controller {
	return []*memsim.Controller{ctl}
}

// Writebacks must not block the core: an app with 100% writeback
// probability should retire instructions at essentially the same rate as
// one with none (the extra traffic does add memory contention, so allow
// a modest gap).
func TestWritebacksOffCriticalPath(t *testing.T) {
	run := func(wpki float64) float64 {
		app := testApp(5)
		app.WPKI = wpki
		eng, ctl, _ := newRig(t, 5, false) // rig provides engine + controller
		core, err := New(Config{ID: 1, App: app, Engine: eng, Controllers: controllersOf(ctl), FreqMax: 4, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		core.Start()
		eng.RunUntil(5e6)
		return core.Counters().Instructions
	}
	none := run(0)
	all := run(5) // WPKI == MPKI → every miss writes back
	if all < none*0.9 {
		t.Errorf("writebacks slowed the core by >10%%: %g vs %g instructions", all, none)
	}
}

func TestOoOStallAccounting(t *testing.T) {
	// OoO core: busy+stall must still account for (almost) the full
	// window even with several outstanding misses.
	eng, _, c := newRig(t, 50, true)
	c.Start()
	eng.RunUntil(5e6)
	ctr := c.Counters()
	total := ctr.BusyNs + ctr.StallNs
	if total > 5.1e6 || total < 4.0e6 {
		t.Errorf("OoO busy+stall = %g over 5e6 window", total)
	}
	if ctr.StallNs < 0 {
		t.Error("negative stall time")
	}
}

func TestOoOWindowRecomputedOnPhase(t *testing.T) {
	_, _, c := newRig(t, 50, true) // IPA 20 → maxOut 6
	if c.MaxOutstanding() != 6 {
		t.Fatalf("initial maxOut = %d", c.MaxOutstanding())
	}
	c.SetPhase(0.25) // IPA 80 → maxOut 1
	if got := c.MaxOutstanding(); got != 1 {
		t.Errorf("after phase 0.25: maxOut = %d, want 1", got)
	}
	c.SetPhase(4.0) // IPA 5 → maxOut 25
	if got := c.MaxOutstanding(); got != 25 {
		t.Errorf("after phase 4: maxOut = %d, want 25", got)
	}
}

func TestTransitionStallChargedOnce(t *testing.T) {
	eng, _, c := newRig(t, 0.5, false)
	// A real frequency change queues exactly one transition stall.
	c.SetFreq(3.0)
	if c.extraStall != TransitionStallNs {
		t.Fatalf("pending stall %g after one transition", c.extraStall)
	}
	// Re-setting the same frequency is a no-op.
	c.SetFreq(3.0)
	if c.extraStall != TransitionStallNs {
		t.Fatalf("same-frequency SetFreq charged a stall")
	}
	// A second distinct change queues a second stall (two PLL relocks).
	c.SetFreq(2.6)
	if c.extraStall != 2*TransitionStallNs {
		t.Fatalf("pending stall %g after two transitions", c.extraStall)
	}
	// The queued stall is consumed by the next burst and lands in the
	// stall counter.
	c.Start()
	eng.RunUntil(1e6)
	if c.extraStall != 0 {
		t.Errorf("pending stall %g not consumed", c.extraStall)
	}
	if got := c.Counters().StallNs; got < 2*TransitionStallNs {
		t.Errorf("stall counter %g below the two queued transitions", got)
	}
}

// effIPA must clamp at 1 instruction per access for absurd intensities.
func TestEffIPAClamp(t *testing.T) {
	_, _, c := newRig(t, 900, false) // IPA ~1.1
	c.SetPhase(10)                   // would push IPA below 1
	if got := c.effIPA(); got != 1 {
		t.Errorf("effIPA = %g, want clamp at 1", got)
	}
}

func TestPowerScalesWithActivityFactor(t *testing.T) {
	hot := testApp(1)
	hot.Activity = 1.0
	cold := testApp(1)
	cold.Activity = 0.5
	eng, ctl, _ := newRig(t, 1, false)
	h, err := New(Config{ID: 10, App: hot, Engine: eng, Controllers: controllersOf(ctl), FreqMax: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := New(Config{ID: 11, App: cold, Engine: eng, Controllers: controllersOf(ctl), FreqMax: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	pcfg := DefaultPower()
	ph := h.Power(Counters{BusyNs: 1000}, 1000, 1, pcfg)
	pc := c2.Power(Counters{BusyNs: 1000}, 1000, 1, pcfg)
	wantRatio := (pcfg.StaticW + pcfg.DynMaxW*1.0) / (pcfg.StaticW + pcfg.DynMaxW*0.5)
	if math.Abs(ph/pc-wantRatio) > 1e-9 {
		t.Errorf("activity power ratio %g, want %g", ph/pc, wantRatio)
	}
}
