// Package cpusim models the processor cores of the FastCap system
// (paper §III-A and §IV-B): in-order, single-issue cores that alternate
// compute (think time), shared-L2 access, and blocking memory accesses —
// plus the paper's idealized out-of-order mode, where a 128-entry
// instruction window with ignored dependencies allows multiple
// outstanding misses and the think time becomes the interval between
// core *stalls*.
//
// Each core runs one application profile. Compute bursts are
// exponentially distributed around the application's instructions-per-
// miss (modulated by its phase behaviour), matching the closed-network
// think-time abstraction that FastCap's optimizer assumes.
package cpusim

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/memsim"
	"repro/internal/workload"
)

// L2HitTimeNs is the shared L2 access time on the miss path: 30 CPU
// cycles at the (fixed-domain) 4 GHz nominal clock (Table II). The L2
// sits in its own voltage domain and does not scale with core frequency.
const L2HitTimeNs = 7.5

// TransitionStallNs is the core-local stall applied when the core's
// voltage/frequency changes ("tens of microseconds", §III-C).
const TransitionStallNs = 20e3

// OoOWindow is the instruction-window size of the idealized out-of-order
// mode (§IV-B).
const OoOWindow = 128

// Counters accumulate monotonically; snapshot and diff for windows.
type Counters struct {
	Instructions float64 // retired instructions (TIC)
	Misses       int64   // LLC misses = memory accesses (TLM)
	Writebacks   int64
	BusyNs       float64 // time spent executing instructions
	StallNs      float64 // time blocked on L2/memory or transitions
}

// Sub returns c - prev.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		Instructions: c.Instructions - prev.Instructions,
		Misses:       c.Misses - prev.Misses,
		Writebacks:   c.Writebacks - prev.Writebacks,
		BusyNs:       c.BusyNs - prev.BusyNs,
		StallNs:      c.StallNs - prev.StallNs,
	}
}

// PowerConfig calibrates per-core power. With voltage ∝ frequency, the
// dynamic term P ∝ activity·V²f yields the paper's α ∈ [2, 3] curvature.
type PowerConfig struct {
	// DynMaxW is the dynamic power at maximum frequency/voltage with
	// activity factor 1 and no stalls.
	DynMaxW float64
	// StaticW is the per-core leakage floor.
	StaticW float64
	// GateFrac is the residual switching while stalled (clock gating
	// leaves a fraction of the clock tree toggling).
	GateFrac float64
}

// DefaultPower calibrates a core to the paper's breakdown: ~60% of a
// 120 W 16-core system is CPU, i.e. ≈4.5 W per core at peak.
func DefaultPower() PowerConfig {
	return PowerConfig{DynMaxW: 4.6, StaticW: 0.5, GateFrac: 0.15}
}

// Core is one simulated core running one application instance.
type Core struct {
	ID  int
	App workload.App

	eng *engine.Engine
	rng *rand.Rand

	// Memory routing: ctls[i] receives accesses with cumulative
	// probability cumProb[i]; a single controller uses cumProb = [1].
	ctls    []*memsim.Controller
	cumProb []float64

	freq    float64 // current core frequency, GHz
	freqMax float64
	ooo     bool
	maxOut  int // max outstanding misses (1 when in-order)

	ipaMult float64 // phase multiplier on instructions-per-miss
	ipaEff  float64 // cached effIPA() — recomputed on SetPhase
	wbProb  float64 // cached App.WritebackProb() — fixed per app

	outstanding int
	stalled     bool
	stallBegan  float64
	running     bool
	lastCtl     int
	lastBank    int
	lastRow     int32

	ctr        Counters
	extraStall float64 // pending one-shot stall (DVFS transition)

	// Steady-state scheduling is allocation-free: the compute-burst
	// timer is reused every burst, and the L2 lookup stage is a
	// flat slot pool — a miss in flight between burst retirement and
	// controller submission is an int32 slot into a dense array of
	// compact records, with a per-slot timer whose callback is created
	// once when the slot is first minted. After submission the request
	// lives in the controller's own arena; completion comes back through
	// the RegisterDemand callback installed at construction, so the
	// steady state carries no per-request closures at all.
	burstTimer   *engine.Timer
	pendingInstr float64
	l2           []l2req
	l2Timer      []*engine.Timer
	l2Free       []int32
}

// l2req is one L2-stage slot's pending request: controller index plus
// the address triple, packed so issue reads a single record.
type l2req struct {
	ctl  int32
	bank int32
	row  int32
	wb   bool
}

// l2Slot takes a free L2-stage slot, minting slot arrays (and the
// slot's issue timer) on first use.
func (c *Core) l2Slot() int32 {
	if k := len(c.l2Free) - 1; k >= 0 {
		s := c.l2Free[k]
		c.l2Free = c.l2Free[:k]
		return s
	}
	s := int32(len(c.l2Timer))
	c.l2 = append(c.l2, l2req{})
	c.l2Timer = append(c.l2Timer, c.eng.NewTimer(func() { c.issueL2(s) }))
	return s
}

// issueL2 fires when the L2 lookup completes: the slot's request moves
// to its memory controller and the slot is immediately recyclable (the
// in-memory phase is tracked by the controller's arena, not the core).
func (c *Core) issueL2(s int32) {
	r := c.l2[s]
	c.l2Free = append(c.l2Free, s)
	c.ctls[r.ctl].Access(c.ID, int(r.bank), r.row, r.wb)
}

// Config assembles a core.
type Config struct {
	ID          int
	App         workload.App
	Engine      *engine.Engine
	Controllers []*memsim.Controller
	// AccessProb[i] is the probability of using Controllers[i]; nil
	// means uniform.
	AccessProb []float64
	FreqMax    float64 // GHz
	OoO        bool
	Seed       int64
}

// New builds a core; it does not start executing until Start is called.
func New(cfg Config) (*Core, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("cpusim: nil engine")
	}
	if len(cfg.Controllers) == 0 {
		return nil, fmt.Errorf("cpusim: core %d has no memory controllers", cfg.ID)
	}
	if cfg.FreqMax <= 0 {
		return nil, fmt.Errorf("cpusim: non-positive max frequency")
	}
	if cfg.App.MPKI <= 0 {
		return nil, fmt.Errorf("cpusim: app %q has non-positive MPKI", cfg.App.Name)
	}
	probs := cfg.AccessProb
	if probs == nil {
		probs = make([]float64, len(cfg.Controllers))
		for i := range probs {
			probs[i] = 1 / float64(len(cfg.Controllers))
		}
	}
	if len(probs) != len(cfg.Controllers) {
		return nil, fmt.Errorf("cpusim: %d access probabilities for %d controllers", len(probs), len(cfg.Controllers))
	}
	cum := make([]float64, len(probs))
	s := 0.0
	for i, p := range probs {
		if p < 0 {
			return nil, fmt.Errorf("cpusim: negative access probability")
		}
		s += p
		cum[i] = s
	}
	if s <= 0 {
		return nil, fmt.Errorf("cpusim: access probabilities sum to zero")
	}
	for i := range cum {
		cum[i] /= s
	}
	c := &Core{
		ID:      cfg.ID,
		App:     cfg.App,
		eng:     cfg.Engine,
		rng:     rand.New(rand.NewSource(cfg.Seed ^ (int64(cfg.ID)+1)*0x5851F42D4C957F2D)),
		ctls:    cfg.Controllers,
		cumProb: cum,
		freq:    cfg.FreqMax,
		freqMax: cfg.FreqMax,
		ooo:     cfg.OoO,
		ipaMult: 1,
		wbProb:  cfg.App.WritebackProb(),
	}
	c.ipaEff = c.effIPA()
	c.maxOut = c.computeMaxOut()
	c.burstTimer = c.eng.NewTimer(c.fireBurst)
	for _, ctl := range c.ctls {
		ctl.RegisterDemand(c.ID, c.onResponse)
	}
	return c, nil
}

// computeMaxOut derives the outstanding-miss bound: 1 for in-order; for
// idealized OoO, the number of misses that fit in the instruction window
// (dependencies ignored), at least 1.
func (c *Core) computeMaxOut() int {
	if !c.ooo {
		return 1
	}
	ipa := c.effIPA()
	k := int(OoOWindow / ipa)
	if k < 1 {
		k = 1
	}
	return k
}

// effIPA is the current mean instructions per memory access.
func (c *Core) effIPA() float64 {
	ipa := c.App.InstrPerMiss() / c.ipaMult // higher intensity → fewer instr per miss
	if ipa < 1 {
		ipa = 1
	}
	return ipa
}

// Start begins execution. Must be called once.
func (c *Core) Start() {
	if c.running {
		return
	}
	c.running = true
	c.scheduleBurst()
}

// Freq returns the current core frequency (GHz).
func (c *Core) Freq() float64 { return c.freq }

// SetFreq applies a DVFS transition. A change stalls the core for
// TransitionStallNs before the next compute burst (the core does not
// execute instructions during its own transition, §III-C).
func (c *Core) SetFreq(ghz float64) {
	if ghz <= 0 || ghz == c.freq {
		return
	}
	c.freq = ghz
	c.extraStall += TransitionStallNs
}

// SetPhase updates the application's memory-intensity multiplier for a
// new epoch and re-derives the OoO outstanding bound.
func (c *Core) SetPhase(mult float64) {
	if mult <= 0 {
		mult = 1
	}
	c.ipaMult = mult
	c.ipaEff = c.effIPA()
	c.maxOut = c.computeMaxOut()
}

// Counters returns a snapshot of the monotone counters.
func (c *Core) Counters() Counters { return c.ctr }

// MaxOutstanding exposes the current outstanding-miss bound (tests).
func (c *Core) MaxOutstanding() int { return c.maxOut }

// scheduleBurst draws the next compute burst and arms the burst timer
// for its retirement. The core has at most one burst in flight, so a
// single reusable timer (plus the pending instruction count) replaces a
// per-burst closure.
func (c *Core) scheduleBurst() {
	ipa := c.ipaEff
	// Exponential burst length (closed-network think time), ≥ 1 instr.
	instr := c.rng.ExpFloat64() * ipa
	if instr < 1 {
		instr = 1
	}
	exec := instr * c.App.ExecCPI / c.freq
	stall := c.extraStall
	c.extraStall = 0
	c.ctr.BusyNs += exec
	c.ctr.StallNs += stall
	c.pendingInstr = instr
	c.burstTimer.Reset(exec + stall)
}

// fireBurst is the burst timer's callback.
func (c *Core) fireBurst() { c.burstDone(c.pendingInstr) }

// burstDone retires the burst's instructions and issues the LLC miss
// (plus a probabilistic writeback) after the L2 lookup time.
func (c *Core) burstDone(instr float64) {
	c.ctr.Instructions += instr
	c.ctr.Misses++
	c.outstanding++

	ctl, bank, row := c.nextAddress()
	start := c.eng.Now()
	s := c.l2Slot()
	c.l2[s] = l2req{ctl: int32(ctl), bank: int32(bank), row: row}
	c.l2Timer[s].Reset(L2HitTimeNs) // L2 lookup before the miss goes to memory

	if c.rng.Float64() < c.wbProb {
		c.ctr.Writebacks++
		wbCtl, wbBank, wbRow := c.nextAddress()
		w := c.l2Slot()
		c.l2[w] = l2req{ctl: int32(wbCtl), bank: int32(wbBank), row: wbRow, wb: true}
		c.l2Timer[w].Reset(L2HitTimeNs)
	}

	if c.outstanding >= c.maxOut {
		// In-order cores always stall here; OoO cores only when the
		// window is full. Stall time is accounted when the response
		// arrives.
		c.stalled = true
		c.stallBegan = start
		return
	}
	c.scheduleBurst()
}

// onResponse handles a completed memory access.
func (c *Core) onResponse() {
	c.outstanding--
	if c.stalled {
		c.stalled = false
		c.ctr.StallNs += c.eng.Now() - c.stallBegan
		c.scheduleBurst()
	}
}

// nextAddress produces the next (controller, bank, row) triple. With
// probability RowLocality the previous address repeats (row-buffer hit
// stream); otherwise a fresh bank and row are drawn, with the controller
// drawn from the core's access distribution.
func (c *Core) nextAddress() (ctl, bank int, row int32) {
	if c.rng.Float64() < c.App.RowLocality {
		return c.lastCtl, c.lastBank, c.lastRow
	}
	u := c.rng.Float64()
	ctl = len(c.cumProb) - 1
	for i, p := range c.cumProb {
		if u <= p {
			ctl = i
			break
		}
	}
	bank = c.rng.Intn(c.ctls[ctl].Banks())
	row = int32(c.rng.Intn(rowsPerBank))
	c.lastCtl, c.lastBank, c.lastRow = ctl, bank, row
	return ctl, bank, row
}

// rowsPerBank bounds the row address space used by the synthetic access
// streams; small enough that cross-core row conflicts occur, large
// enough that distinct cores rarely alias the same row by chance.
const rowsPerBank = 4096

// Power evaluates the core's measured power (W) over a window given the
// counter delta: leakage plus activity- and duty-cycle-weighted dynamic
// power at the current voltage/frequency point.
//
// voltNorm is V/Vmax for the core's present frequency (supplied by the
// caller, which owns the DVFS ladder).
func (c *Core) Power(delta Counters, windowNs, voltNorm float64, pcfg PowerConfig) float64 {
	if windowNs <= 0 {
		return pcfg.StaticW
	}
	busy := delta.BusyNs / windowNs
	if busy > 1 {
		busy = 1
	}
	duty := busy + pcfg.GateFrac*(1-busy)
	fNorm := c.freq / c.freqMax
	return pcfg.StaticW + pcfg.DynMaxW*c.App.Activity*voltNorm*voltNorm*fNorm*duty
}

// PeakPower is the core's maximum draw for its application (activity at
// full duty, maximum frequency/voltage).
func (c *Core) PeakPower(pcfg PowerConfig) float64 {
	return pcfg.StaticW + pcfg.DynMaxW*c.App.Activity
}
