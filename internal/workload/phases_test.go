package workload

import (
	"math"
	"testing"
)

func TestPhaseScheduleValidate(t *testing.T) {
	cases := []struct {
		name string
		s    PhaseSchedule
		ok   bool
	}{
		{"nil", nil, true},
		{"empty", PhaseSchedule{}, true},
		{"single", PhaseSchedule{{Epoch: 0, Scale: 1.5}}, true},
		{"ascending", PhaseSchedule{{Epoch: 2, Scale: 2}, {Epoch: 5, Scale: 0.5}}, true},
		{"negative epoch", PhaseSchedule{{Epoch: -1, Scale: 1}}, false},
		{"duplicate epoch", PhaseSchedule{{Epoch: 3, Scale: 1}, {Epoch: 3, Scale: 2}}, false},
		{"descending", PhaseSchedule{{Epoch: 5, Scale: 1}, {Epoch: 2, Scale: 2}}, false},
		{"zero scale", PhaseSchedule{{Epoch: 0, Scale: 0}}, false},
		{"negative scale", PhaseSchedule{{Epoch: 0, Scale: -2}}, false},
		{"nan scale", PhaseSchedule{{Epoch: 0, Scale: math.NaN()}}, false},
		{"inf scale", PhaseSchedule{{Epoch: 0, Scale: math.Inf(1)}}, false},
		{"huge scale", PhaseSchedule{{Epoch: 0, Scale: 1e9}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.s.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("Validate() = nil, want error")
			}
		})
	}
}

func TestPhaseScheduleScaleAt(t *testing.T) {
	s := PhaseSchedule{{Epoch: 3, Scale: 2}, {Epoch: 8, Scale: 0.25}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	want := map[int]float64{0: 1, 2: 1, 3: 2, 7: 2, 8: 0.25, 100: 0.25}
	for epoch, scale := range want {
		if got := s.ScaleAt(epoch); got != scale {
			t.Errorf("ScaleAt(%d) = %g, want %g", epoch, got, scale)
		}
	}
	var nilSched PhaseSchedule
	if got := nilSched.ScaleAt(5); got != 1 {
		t.Errorf("nil ScaleAt(5) = %g, want 1", got)
	}
}
