package workload

import (
	"math"
	"testing"
)

func TestInstantiatePlacement(t *testing.T) {
	wl, err := InstantiatePlacement("pinned", []string{"swim", "crafty", "ammp", "ammp"})
	if err != nil {
		t.Fatal(err)
	}
	if len(wl.Apps) != 4 {
		t.Fatalf("placement built %d apps, want 4", len(wl.Apps))
	}
	if wl.Spec.Name != "pinned" {
		t.Errorf("spec name %q", wl.Spec.Name)
	}
	for i, want := range []string{"swim", "crafty", "ammp", "ammp"} {
		if wl.Apps[i].Name != want {
			t.Errorf("core %d runs %q, want %q", i, wl.Apps[i].Name, want)
		}
		if !(wl.Apps[i].MPKI > 0) {
			t.Errorf("core %d has MPKI %g, want > 0", i, wl.Apps[i].MPKI)
		}
	}
	// Repeated instances decorrelate via distinct Copy indices.
	if wl.Apps[2].Copy == wl.Apps[3].Copy {
		t.Error("two copies of ammp share a Copy index")
	}
	// Standalone rates: MPKI is the profile's MemWeight.
	swim, _ := Lookup("swim")
	if wl.Apps[0].MPKI != swim.MemWeight {
		t.Errorf("swim placement MPKI %g, want MemWeight %g", wl.Apps[0].MPKI, swim.MemWeight)
	}
}

func TestInstantiatePlacementErrors(t *testing.T) {
	if _, err := InstantiatePlacement("empty", nil); err == nil {
		t.Error("empty placement accepted")
	}
	if _, err := InstantiatePlacement("bad", []string{"swim", "nonesuch"}); err == nil {
		t.Error("unknown app accepted")
	}
}

// The satellite rate guards: InstrPerMiss and WritebackProb return
// documented safe values for degenerate rates instead of Inf/NaN, and
// negative published rates are rejected at instantiation.
func TestRateGuards(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name       string
		mpki, wpki float64
		wantIPM    float64
		wantWB     float64
	}{
		{"zero MPKI", 0, 1, maxInstrPerMiss, 0},
		{"negative MPKI", -2, 1, maxInstrPerMiss, 0},
		{"NaN MPKI", nan, 1, maxInstrPerMiss, 0},
		{"tiny MPKI clamps", 1e-12, 0, maxInstrPerMiss, 0},
		{"zero WPKI", 2, 0, 500, 0},
		{"negative WPKI", 2, -1, 500, 0},
		{"NaN WPKI", 2, nan, 500, 0},
		{"WPKI above MPKI clamps to 1", 2, 10, 500, 1},
		{"normal", 4, 1, 250, 0.25},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := App{MPKI: c.mpki, WPKI: c.wpki}
			if got := a.InstrPerMiss(); got != c.wantIPM {
				t.Errorf("InstrPerMiss = %g, want %g", got, c.wantIPM)
			}
			if got := a.WritebackProb(); got != c.wantWB {
				t.Errorf("WritebackProb = %g, want %g", got, c.wantWB)
			}
			if got := a.InstrPerMiss(); math.IsNaN(got) || math.IsInf(got, 0) {
				t.Errorf("InstrPerMiss leaked a non-finite value %g", got)
			}
			if got := a.WritebackProb(); math.IsNaN(got) || got < 0 || got > 1 {
				t.Errorf("WritebackProb leaked %g outside [0, 1]", got)
			}
		})
	}
}

// Negative or NaN published mix rates are configuration errors.
func TestInstantiateRejectsInvalidRates(t *testing.T) {
	base := TableIII[0]
	for _, tc := range []struct {
		name   string
		mutate func(*MixSpec)
	}{
		{"negative MPKI", func(m *MixSpec) { m.MPKI = -1 }},
		{"NaN MPKI", func(m *MixSpec) { m.MPKI = math.NaN() }},
		{"negative WPKI", func(m *MixSpec) { m.WPKI = -0.5 }},
		{"NaN WPKI", func(m *MixSpec) { m.WPKI = math.NaN() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec := base
			tc.mutate(&spec)
			if _, err := Instantiate(spec, 4); err == nil {
				t.Error("invalid rates accepted")
			}
		})
	}
}
