package workload

import (
	"fmt"
	"math"
)

// MixSpec is one row of the paper's Table III: four applications plus the
// published workload-level L2 misses and writebacks per kilo-instruction
// (measured on the 16-core configuration).
type MixSpec struct {
	Name  string
	Class Class
	MPKI  float64
	WPKI  float64
	Apps  [4]string
}

// TableIII reproduces the paper's workload table verbatim.
var TableIII = []MixSpec{
	{"ILP1", ClassILP, 0.37, 0.06, [4]string{"vortex", "gcc", "sixtrack", "mesa"}},
	{"ILP2", ClassILP, 0.16, 0.03, [4]string{"perlbmk", "crafty", "gzip", "eon"}},
	{"ILP3", ClassILP, 0.27, 0.07, [4]string{"sixtrack", "mesa", "perlbmk", "crafty"}},
	{"ILP4", ClassILP, 0.25, 0.04, [4]string{"vortex", "gcc", "gzip", "eon"}},
	{"MID1", ClassMID, 1.76, 0.74, [4]string{"ammp", "gap", "wupwise", "vpr"}},
	{"MID2", ClassMID, 2.61, 0.89, [4]string{"astar", "parser", "twolf", "facerec"}},
	{"MID3", ClassMID, 1.00, 0.60, [4]string{"apsi", "bzip2", "ammp", "gap"}},
	{"MID4", ClassMID, 2.13, 0.90, [4]string{"wupwise", "vpr", "astar", "parser"}},
	{"MEM1", ClassMEM, 18.22, 7.92, [4]string{"swim", "applu", "galgel", "equake"}},
	{"MEM2", ClassMEM, 7.75, 2.53, [4]string{"art", "milc", "mgrid", "fma3d"}},
	{"MEM3", ClassMEM, 7.93, 2.55, [4]string{"fma3d", "mgrid", "galgel", "equake"}},
	{"MEM4", ClassMEM, 15.07, 7.31, [4]string{"swim", "applu", "sphinx3", "lucas"}},
	{"MIX1", ClassMIX, 2.93, 2.56, [4]string{"applu", "hmmer", "gap", "gzip"}},
	{"MIX2", ClassMIX, 2.55, 0.80, [4]string{"milc", "gobmk", "facerec", "perlbmk"}},
	{"MIX3", ClassMIX, 2.34, 0.39, [4]string{"equake", "ammp", "sjeng", "crafty"}},
	{"MIX4", ClassMIX, 3.62, 1.20, [4]string{"swim", "ammp", "twolf", "sixtrack"}},
}

// MixByName returns the Table III row with the given name.
func MixByName(name string) (MixSpec, error) {
	for _, m := range TableIII {
		if m.Name == name {
			return m, nil
		}
	}
	return MixSpec{}, fmt.Errorf("workload: unknown mix %q", name)
}

// MixesByClass returns all Table III rows of one class, in table order.
func MixesByClass(c Class) []MixSpec {
	var out []MixSpec
	for _, m := range TableIII {
		if m.Class == c {
			out = append(out, m)
		}
	}
	return out
}

// App is one application instance occupying one core: a profile plus the
// mix-calibrated effective miss and writeback rates.
type App struct {
	AppProfile
	// MPKI and WPKI are the effective L2 miss/writeback rates of this
	// instance within its mix (shared-cache contention folded in).
	MPKI float64
	WPKI float64
	// Copy distinguishes the N/4 copies of the same application so each
	// can follow independently seeded phases.
	Copy int
}

// maxInstrPerMiss caps InstrPerMiss for degenerate (zero-miss) apps: a
// finite "effectively never misses" sentinel, so rate estimates derived
// from it stay usable by the queuing model instead of going Inf/NaN.
const maxInstrPerMiss = 1e9

// InstrPerMiss returns the mean number of instructions between two L2
// misses (memory accesses) of this instance. A non-positive (or NaN)
// MPKI — an app that effectively never misses — returns the documented
// safe value maxInstrPerMiss instead of dividing toward Inf/NaN;
// negative rates are additionally rejected at configuration validation
// (Instantiate / InstantiatePlacement), so this guard is the last line
// of defense, not the API contract.
func (a App) InstrPerMiss() float64 {
	if !(a.MPKI > 0) { // catches <= 0 and NaN
		return maxInstrPerMiss
	}
	ipm := 1000.0 / a.MPKI
	if ipm > maxInstrPerMiss {
		return maxInstrPerMiss
	}
	return ipm
}

// WritebackProb returns the probability that a miss is accompanied by a
// dirty-line writeback, clamped to [0, 1]. Like InstrPerMiss it returns
// a documented safe value (0) for non-positive or NaN rates rather than
// letting a NaN reach the queuing model.
func (a App) WritebackProb() float64 {
	if !(a.MPKI > 0) || !(a.WPKI > 0) { // catches <= 0 and NaN on either rate
		return 0
	}
	p := a.WPKI / a.MPKI
	if p > 1 {
		p = 1
	}
	return p
}

// validRates rejects negative or NaN published rates at configuration
// time so NaNs cannot reach the queuing model through calibration.
func validRates(name string, mpki, wpki float64) error {
	if math.IsNaN(mpki) || mpki < 0 {
		return fmt.Errorf("workload: %s has invalid MPKI %g (want >= 0)", name, mpki)
	}
	if math.IsNaN(wpki) || wpki < 0 {
		return fmt.Errorf("workload: %s has invalid WPKI %g (want >= 0)", name, wpki)
	}
	return nil
}

// Workload is a fully instantiated Table III mix for an N-core machine:
// N/4 copies of each of the four applications, one per core, with
// per-instance rates calibrated so the workload-level MPKI and WPKI
// equal the published values.
type Workload struct {
	Spec MixSpec
	Apps []App // length N; Apps[i] runs on core i
}

// Instantiate builds a Workload for n cores. n must be a positive
// multiple of 4, matching the paper's "×N/4 each" construction.
//
// Calibration: the published mix MPKI is the mean across the four
// applications (equal instruction weighting); each application's share
// is proportional to its global MemWeight. Writebacks likewise, with the
// per-app WriteFrac modulating the split.
func Instantiate(spec MixSpec, n int) (*Workload, error) {
	if n <= 0 || n%4 != 0 {
		return nil, fmt.Errorf("workload: core count %d is not a positive multiple of 4", n)
	}
	if err := validRates("mix "+spec.Name, spec.MPKI, spec.WPKI); err != nil {
		return nil, err
	}
	profiles := make([]AppProfile, 4)
	var wSum, wbSum float64
	for i, name := range spec.Apps {
		p, err := Lookup(name)
		if err != nil {
			return nil, err
		}
		profiles[i] = p
		wSum += p.MemWeight
		wbSum += p.MemWeight * p.WriteFrac
	}
	if wSum <= 0 || wbSum <= 0 {
		return nil, fmt.Errorf("workload: mix %s has zero intensity", spec.Name)
	}
	apps := make([]App, 0, n)
	copies := n / 4
	for c := 0; c < copies; c++ {
		for i := range profiles {
			p := profiles[i]
			mpki := 4 * spec.MPKI * p.MemWeight / wSum
			wpki := 4 * spec.WPKI * p.MemWeight * p.WriteFrac / wbSum
			apps = append(apps, App{AppProfile: p, MPKI: mpki, WPKI: wpki, Copy: c})
		}
	}
	return &Workload{Spec: spec, Apps: apps}, nil
}

// InstantiatePlacement builds a Workload from an explicit application
// placement: appNames[i] runs on core i, with no multiple-of-4 layout
// constraint. It is the workload form behind heterogeneous machine
// specs, where which app lands on which core class is the experiment.
//
// Rates are *standalone*: each instance's MPKI is its profile's
// MemWeight (documented as roughly the app's standalone L2 MPKI) and
// its WPKI is MemWeight·WriteFrac — there is no published mix-level
// rate to calibrate against for an arbitrary placement. Repeated
// instances of the same app get distinct Copy indices so their phases
// decorrelate, exactly as in the N/4 layout.
func InstantiatePlacement(name string, appNames []string) (*Workload, error) {
	if len(appNames) == 0 {
		return nil, fmt.Errorf("workload: placement %q names no applications", name)
	}
	spec := MixSpec{Name: name, Class: ClassMIX}
	for i, an := range appNames {
		if i < len(spec.Apps) {
			spec.Apps[i] = an
		}
	}
	apps := make([]App, 0, len(appNames))
	copies := map[string]int{}
	for _, an := range appNames {
		p, err := Lookup(an)
		if err != nil {
			return nil, err
		}
		mpki := p.MemWeight
		wpki := p.MemWeight * p.WriteFrac
		if err := validRates("app "+an, mpki, wpki); err != nil {
			return nil, err
		}
		apps = append(apps, App{AppProfile: p, MPKI: mpki, WPKI: wpki, Copy: copies[an]})
		copies[an]++
	}
	return &Workload{Spec: spec, Apps: apps}, nil
}

// MeanMPKI returns the workload-level misses per kilo-instruction (the
// equal-weight mean across instances) — by construction equal to the
// Table III value.
func (w *Workload) MeanMPKI() float64 {
	s := 0.0
	for _, a := range w.Apps {
		s += a.MPKI
	}
	return s / float64(len(w.Apps))
}

// MeanWPKI returns the workload-level writebacks per kilo-instruction.
func (w *Workload) MeanWPKI() float64 {
	s := 0.0
	for _, a := range w.Apps {
		s += a.WPKI
	}
	return s / float64(len(w.Apps))
}

// Phase produces the multiplicative memory-intensity factor for an app
// instance at a given epoch. Phases are deterministic in (mix, app,
// copy, epoch): slow sinusoidal drift plus piecewise plateaus, bounded
// to [1-PhaseAmp, 1+PhaseAmp], so runs are exactly reproducible.
func (a App) Phase(epoch int) float64 {
	if a.PhaseAmp == 0 || a.PhaseLen <= 0 {
		return 1
	}
	// Deterministic per-instance offset so copies decorrelate.
	seed := float64(hashString(a.Name)%97)/97.0 + 0.37*float64(a.Copy)
	t := (float64(epoch)/float64(a.PhaseLen) + seed) * 2 * math.Pi
	// Sum of two incommensurate tones approximates plateau-and-jump
	// program phases without requiring a random source at run time.
	v := 0.7*math.Sin(t) + 0.3*math.Sin(2.618*t+1.0)
	return 1 + a.PhaseAmp*v
}

// hashString is a small FNV-1a so phases don't depend on map ordering.
func hashString(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
