package workload

import (
	"fmt"
	"math"
	"sort"
)

// PhaseShift is one step of a PhaseSchedule: from Epoch on, every app's
// memory-intensity multiplier is additionally scaled by Scale.
type PhaseShift struct {
	// Epoch is the control epoch the shift takes effect at. Shifts must
	// be listed in strictly ascending epoch order, epochs >= 0.
	Epoch int `json:"epoch"`
	// Scale multiplies the per-app phase factor (App.Phase) from Epoch
	// on — >1 makes the workload more memory-intensive (a traffic
	// surge), <1 calmer (the overnight lull). Must be positive and
	// finite.
	Scale float64 `json:"scale"`
}

// PhaseSchedule shifts a workload's intensity at epoch boundaries — the
// workload-side twin of a budget schedule, modeling diurnal load,
// batch-window surges and other mid-run behavior changes that the
// per-app sinusoidal drift (App.Phase) cannot express. It is a step
// function: the scale in force at an epoch is the last shift at or
// before it, 1 before the first shift. Nil (or empty) means no shifts —
// byte-identical behavior to a run without a schedule.
type PhaseSchedule []PhaseShift

// maxPhaseScale bounds the per-shift multiplier: beyond it the
// simulated machine is no longer meaningfully the same workload, and an
// unauthenticated request could use an enormous factor to distort
// per-epoch cost.
const maxPhaseScale = 1e3

// Validate checks the schedule's shape: strictly ascending non-negative
// epochs and positive, finite, bounded scales.
func (s PhaseSchedule) Validate() error {
	prev := -1
	for i, sh := range s {
		if sh.Epoch < 0 {
			return fmt.Errorf("workload: phase shift %d at negative epoch %d", i, sh.Epoch)
		}
		if sh.Epoch <= prev {
			return fmt.Errorf("workload: phase shift %d at epoch %d not after epoch %d", i, sh.Epoch, prev)
		}
		if math.IsNaN(sh.Scale) || math.IsInf(sh.Scale, 0) || sh.Scale <= 0 || sh.Scale > maxPhaseScale {
			return fmt.Errorf("workload: phase shift %d scale %g outside (0, %g]", i, sh.Scale, float64(maxPhaseScale))
		}
		prev = sh.Epoch
	}
	return nil
}

// ScaleAt returns the scale in force at epoch: the last shift at or
// before it, 1 before the first shift (and for a nil schedule).
func (s PhaseSchedule) ScaleAt(epoch int) float64 {
	// The schedule is ascending (Validate), so binary-search the first
	// shift strictly after epoch; its predecessor is in force.
	i := sort.Search(len(s), func(i int) bool { return s[i].Epoch > epoch })
	if i == 0 {
		return 1
	}
	return s[i-1].Scale
}
