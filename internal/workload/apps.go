// Package workload synthesizes the SPEC CPU 2000/2006 application mixes
// of the FastCap paper's Table III. Real SPEC binaries and SimPoint
// traces are proprietary; instead each application is a statistical
// profile — memory intensity, execution CPI, writeback share, DRAM row
// locality, core activity factor, and phase behaviour — calibrated so
// that every Table III mix reproduces the published L2 MPKI and WPKI.
//
// Per-application L2 miss rates are *mix-dependent* in the paper (the
// 16 MB L2 is shared, so co-runners change each other's miss rates; the
// same application appears with very different effective MPKI in MEM1
// and MIX1). We model this with a global per-application memory
// intensity weight: within a mix, the published mix MPKI is distributed
// across the four applications in proportion to their weights, which
// both matches the table exactly and keeps relative intensities
// physically plausible.
package workload

import "fmt"

// Class labels the four workload categories of Table III.
type Class int

const (
	ClassILP Class = iota // compute-intensive
	ClassMID              // compute/memory balanced
	ClassMEM              // memory-intensive
	ClassMIX              // one or two applications from each class
)

// String returns the paper's class mnemonic.
func (c Class) String() string {
	switch c {
	case ClassILP:
		return "ILP"
	case ClassMID:
		return "MID"
	case ClassMEM:
		return "MEM"
	case ClassMIX:
		return "MIX"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// AppProfile is the static characterization of one application.
type AppProfile struct {
	Name string
	// MemWeight is the relative L2 miss intensity used to apportion a
	// mix's MPKI across its applications (dimensionless; roughly the
	// app's standalone L2 MPKI on a 16-core machine).
	MemWeight float64
	// WriteFrac scales the app's share of writeback traffic relative to
	// its share of misses (≈ dirty-eviction ratio).
	WriteFrac float64
	// ExecCPI is the cycles-per-instruction of the core pipeline when no
	// L2 miss is outstanding (in-order single-issue, L1 hits folded in).
	ExecCPI float64
	// Activity is the switching-activity factor of the core while
	// executing, scaling dynamic power; compute-dense codes run hotter.
	Activity float64
	// RowLocality is the probability that a memory access hits the
	// currently open DRAM row of its bank (spatial streaming apps high).
	RowLocality float64
	// PhaseAmp is the amplitude of slow multiplicative swings in memory
	// intensity across program phases (0 = flat, 0.5 = ±50%).
	PhaseAmp float64
	// PhaseLen is the characteristic phase duration in epochs.
	PhaseLen int
}

// registry lists every application appearing in Table III. MemWeight
// values are chosen so that, after per-mix normalization, each published
// mix MPKI is met exactly while cross-mix relative intensities remain
// plausible (e.g. swim ≫ gzip). ExecCPI/Activity/RowLocality follow the
// usual characterization of these codes: floating-point streaming codes
// (swim, applu, mgrid) have high row locality and lower activity;
// integer control codes (crafty, sjeng, gobmk) the reverse.
var registry = map[string]AppProfile{
	// SPEC compute-bound (ILP) applications.
	"vortex":   {Name: "vortex", MemWeight: 0.40, WriteFrac: 0.18, ExecCPI: 1.15, Activity: 0.95, RowLocality: 0.45, PhaseAmp: 0.25, PhaseLen: 24},
	"gcc":      {Name: "gcc", MemWeight: 0.27, WriteFrac: 0.20, ExecCPI: 1.25, Activity: 0.90, RowLocality: 0.40, PhaseAmp: 0.45, PhaseLen: 16},
	"sixtrack": {Name: "sixtrack", MemWeight: 0.12, WriteFrac: 0.25, ExecCPI: 1.05, Activity: 1.00, RowLocality: 0.50, PhaseAmp: 0.15, PhaseLen: 40},
	"mesa":     {Name: "mesa", MemWeight: 0.68, WriteFrac: 0.12, ExecCPI: 1.10, Activity: 0.95, RowLocality: 0.55, PhaseAmp: 0.20, PhaseLen: 32},
	"perlbmk":  {Name: "perlbmk", MemWeight: 0.17, WriteFrac: 0.22, ExecCPI: 1.20, Activity: 0.92, RowLocality: 0.40, PhaseAmp: 0.30, PhaseLen: 20},
	"crafty":   {Name: "crafty", MemWeight: 0.12, WriteFrac: 0.15, ExecCPI: 1.10, Activity: 1.00, RowLocality: 0.35, PhaseAmp: 0.10, PhaseLen: 48},
	"gzip":     {Name: "gzip", MemWeight: 0.22, WriteFrac: 0.18, ExecCPI: 1.15, Activity: 0.97, RowLocality: 0.60, PhaseAmp: 0.35, PhaseLen: 12},
	"eon":      {Name: "eon", MemWeight: 0.12, WriteFrac: 0.14, ExecCPI: 1.08, Activity: 0.98, RowLocality: 0.45, PhaseAmp: 0.10, PhaseLen: 36},
	// Balanced (MID) applications.
	"ammp":    {Name: "ammp", MemWeight: 1.40, WriteFrac: 0.38, ExecCPI: 1.30, Activity: 0.85, RowLocality: 0.50, PhaseAmp: 0.30, PhaseLen: 28},
	"gap":     {Name: "gap", MemWeight: 1.20, WriteFrac: 0.40, ExecCPI: 1.25, Activity: 0.85, RowLocality: 0.55, PhaseAmp: 0.25, PhaseLen: 24},
	"wupwise": {Name: "wupwise", MemWeight: 2.20, WriteFrac: 0.42, ExecCPI: 1.20, Activity: 0.82, RowLocality: 0.60, PhaseAmp: 0.20, PhaseLen: 32},
	"vpr":     {Name: "vpr", MemWeight: 2.24, WriteFrac: 0.42, ExecCPI: 1.35, Activity: 0.83, RowLocality: 0.45, PhaseAmp: 0.25, PhaseLen: 20},
	"astar":   {Name: "astar", MemWeight: 2.00, WriteFrac: 0.40, ExecCPI: 1.35, Activity: 0.84, RowLocality: 0.40, PhaseAmp: 0.35, PhaseLen: 16},
	"parser":  {Name: "parser", MemWeight: 2.08, WriteFrac: 0.42, ExecCPI: 1.30, Activity: 0.85, RowLocality: 0.45, PhaseAmp: 0.25, PhaseLen: 24},
	"twolf":   {Name: "twolf", MemWeight: 2.80, WriteFrac: 0.30, ExecCPI: 1.40, Activity: 0.86, RowLocality: 0.40, PhaseAmp: 0.20, PhaseLen: 28},
	"facerec": {Name: "facerec", MemWeight: 3.56, WriteFrac: 0.32, ExecCPI: 1.25, Activity: 0.84, RowLocality: 0.55, PhaseAmp: 0.30, PhaseLen: 20},
	"apsi":    {Name: "apsi", MemWeight: 0.80, WriteFrac: 0.55, ExecCPI: 1.25, Activity: 0.88, RowLocality: 0.50, PhaseAmp: 0.20, PhaseLen: 32},
	"bzip2":   {Name: "bzip2", MemWeight: 0.60, WriteFrac: 0.58, ExecCPI: 1.20, Activity: 0.90, RowLocality: 0.55, PhaseAmp: 0.40, PhaseLen: 12},
	// Memory-bound (MEM) applications.
	"swim":    {Name: "swim", MemWeight: 28.0, WriteFrac: 0.46, ExecCPI: 1.25, Activity: 0.70, RowLocality: 0.75, PhaseAmp: 0.15, PhaseLen: 40},
	"applu":   {Name: "applu", MemWeight: 24.9, WriteFrac: 0.44, ExecCPI: 1.30, Activity: 0.72, RowLocality: 0.70, PhaseAmp: 0.20, PhaseLen: 32},
	"galgel":  {Name: "galgel", MemWeight: 9.0, WriteFrac: 0.34, ExecCPI: 1.25, Activity: 0.75, RowLocality: 0.65, PhaseAmp: 0.30, PhaseLen: 24},
	"equake":  {Name: "equake", MemWeight: 11.0, WriteFrac: 0.30, ExecCPI: 1.35, Activity: 0.74, RowLocality: 0.60, PhaseAmp: 0.25, PhaseLen: 28},
	"art":     {Name: "art", MemWeight: 12.0, WriteFrac: 0.28, ExecCPI: 1.30, Activity: 0.76, RowLocality: 0.55, PhaseAmp: 0.35, PhaseLen: 16},
	"milc":    {Name: "milc", MemWeight: 7.3, WriteFrac: 0.32, ExecCPI: 1.30, Activity: 0.75, RowLocality: 0.60, PhaseAmp: 0.25, PhaseLen: 24},
	"mgrid":   {Name: "mgrid", MemWeight: 5.5, WriteFrac: 0.34, ExecCPI: 1.25, Activity: 0.74, RowLocality: 0.72, PhaseAmp: 0.15, PhaseLen: 36},
	"fma3d":   {Name: "fma3d", MemWeight: 6.2, WriteFrac: 0.33, ExecCPI: 1.30, Activity: 0.75, RowLocality: 0.62, PhaseAmp: 0.20, PhaseLen: 28},
	"sphinx3": {Name: "sphinx3", MemWeight: 4.4, WriteFrac: 0.50, ExecCPI: 1.30, Activity: 0.78, RowLocality: 0.58, PhaseAmp: 0.30, PhaseLen: 20},
	"lucas":   {Name: "lucas", MemWeight: 3.0, WriteFrac: 0.52, ExecCPI: 1.25, Activity: 0.77, RowLocality: 0.66, PhaseAmp: 0.20, PhaseLen: 32},
	// Applications appearing only in the MIX workloads.
	"hmmer": {Name: "hmmer", MemWeight: 1.50, WriteFrac: 0.60, ExecCPI: 1.10, Activity: 0.95, RowLocality: 0.55, PhaseAmp: 0.15, PhaseLen: 36},
	"gobmk": {Name: "gobmk", MemWeight: 1.00, WriteFrac: 0.25, ExecCPI: 1.25, Activity: 0.95, RowLocality: 0.35, PhaseAmp: 0.25, PhaseLen: 20},
	"sjeng": {Name: "sjeng", MemWeight: 0.80, WriteFrac: 0.20, ExecCPI: 1.20, Activity: 0.97, RowLocality: 0.35, PhaseAmp: 0.20, PhaseLen: 24},
}

// Lookup returns the profile for a named application.
func Lookup(name string) (AppProfile, error) {
	p, ok := registry[name]
	if !ok {
		return AppProfile{}, fmt.Errorf("workload: unknown application %q", name)
	}
	return p, nil
}

// Names returns every registered application name (unordered).
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	return out
}
