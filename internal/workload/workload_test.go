package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegistryComplete(t *testing.T) {
	// Every application named in Table III must be registered.
	for _, mix := range TableIII {
		for _, name := range mix.Apps {
			if _, err := Lookup(name); err != nil {
				t.Errorf("mix %s: %v", mix.Name, err)
			}
		}
	}
	if _, err := Lookup("notanapp"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestRegistryPlausibleProfiles(t *testing.T) {
	for _, name := range Names() {
		p, _ := Lookup(name)
		if p.MemWeight <= 0 {
			t.Errorf("%s: non-positive MemWeight", name)
		}
		if p.WriteFrac < 0 || p.WriteFrac > 1 {
			t.Errorf("%s: WriteFrac %g outside [0,1]", name, p.WriteFrac)
		}
		if p.ExecCPI < 1.0 || p.ExecCPI > 2.0 {
			t.Errorf("%s: ExecCPI %g implausible for in-order single-issue", name, p.ExecCPI)
		}
		if p.Activity <= 0 || p.Activity > 1 {
			t.Errorf("%s: Activity %g outside (0,1]", name, p.Activity)
		}
		if p.RowLocality < 0 || p.RowLocality > 1 {
			t.Errorf("%s: RowLocality %g outside [0,1]", name, p.RowLocality)
		}
		if p.PhaseAmp < 0 || p.PhaseAmp >= 1 {
			t.Errorf("%s: PhaseAmp %g outside [0,1)", name, p.PhaseAmp)
		}
	}
}

// Table III: every instantiated mix reproduces the published MPKI and
// WPKI exactly (the central workload calibration claim).
func TestTableIII_MPKIWPKI(t *testing.T) {
	for _, spec := range TableIII {
		for _, n := range []int{4, 16, 64} {
			w, err := Instantiate(spec, n)
			if err != nil {
				t.Fatalf("%s/%d: %v", spec.Name, n, err)
			}
			if got := w.MeanMPKI(); math.Abs(got-spec.MPKI) > 1e-9 {
				t.Errorf("%s/%d cores: MPKI %g, want %g", spec.Name, n, got, spec.MPKI)
			}
			if got := w.MeanWPKI(); math.Abs(got-spec.WPKI) > 1e-9 {
				t.Errorf("%s/%d cores: WPKI %g, want %g", spec.Name, n, got, spec.WPKI)
			}
		}
	}
}

func TestTableIIIClassMembership(t *testing.T) {
	counts := map[Class]int{}
	for _, m := range TableIII {
		counts[m.Class]++
	}
	for _, c := range []Class{ClassILP, ClassMID, ClassMEM, ClassMIX} {
		if counts[c] != 4 {
			t.Errorf("class %v has %d mixes, want 4", c, counts[c])
		}
		if got := len(MixesByClass(c)); got != 4 {
			t.Errorf("MixesByClass(%v) returned %d", c, got)
		}
	}
	if len(TableIII) != 16 {
		t.Errorf("Table III has %d rows, want 16", len(TableIII))
	}
}

func TestClassOrderingByMPKI(t *testing.T) {
	// MEM mixes must be more memory-intensive than MID, and MID than ILP.
	maxOf := func(c Class) float64 {
		v := 0.0
		for _, m := range MixesByClass(c) {
			v = math.Max(v, m.MPKI)
		}
		return v
	}
	minOf := func(c Class) float64 {
		v := math.Inf(1)
		for _, m := range MixesByClass(c) {
			v = math.Min(v, m.MPKI)
		}
		return v
	}
	if maxOf(ClassILP) >= minOf(ClassMID) {
		t.Error("ILP overlaps MID in MPKI")
	}
	if maxOf(ClassMID) >= minOf(ClassMEM) {
		t.Error("MID overlaps MEM in MPKI")
	}
}

func TestMixByName(t *testing.T) {
	m, err := MixByName("MEM1")
	if err != nil {
		t.Fatal(err)
	}
	if m.MPKI != 18.22 || m.Apps[0] != "swim" {
		t.Errorf("MEM1 = %+v", m)
	}
	if _, err := MixByName("NOPE"); err == nil {
		t.Error("unknown mix accepted")
	}
}

func TestInstantiateErrors(t *testing.T) {
	spec := TableIII[0]
	for _, n := range []int{0, -4, 3, 5, 17} {
		if _, err := Instantiate(spec, n); err == nil {
			t.Errorf("Instantiate with n=%d accepted", n)
		}
	}
	bad := spec
	bad.Apps[1] = "notanapp"
	if _, err := Instantiate(bad, 16); err == nil {
		t.Error("unknown app in mix accepted")
	}
}

func TestInstantiateLayout(t *testing.T) {
	w, err := Instantiate(TableIII[8], 16) // MEM1
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Apps) != 16 {
		t.Fatalf("got %d apps", len(w.Apps))
	}
	// 4 copies of each app, cycling through the mix order.
	for i, a := range w.Apps {
		wantName := TableIII[8].Apps[i%4]
		if a.Name != wantName {
			t.Errorf("core %d runs %s, want %s", i, a.Name, wantName)
		}
		if a.Copy != i/4 {
			t.Errorf("core %d copy = %d, want %d", i, a.Copy, i/4)
		}
	}
}

func TestMixDependentMPKI(t *testing.T) {
	// The same application must show different effective MPKI in
	// different mixes (shared-cache contention): applu in MEM1 vs MIX1.
	mem1, _ := Instantiate(TableIII[8], 4)  // MEM1: swim applu galgel equake
	mix1, _ := Instantiate(TableIII[12], 4) // MIX1: applu hmmer gap gzip
	var inMem, inMix float64
	for _, a := range mem1.Apps {
		if a.Name == "applu" {
			inMem = a.MPKI
		}
	}
	for _, a := range mix1.Apps {
		if a.Name == "applu" {
			inMix = a.MPKI
		}
	}
	if inMem <= 0 || inMix <= 0 {
		t.Fatal("applu not found")
	}
	if inMem <= inMix {
		t.Errorf("applu MPKI in MEM1 (%g) should exceed MIX1 (%g)", inMem, inMix)
	}
	// Within MIX1, applu must still dominate the misses.
	for _, a := range mix1.Apps {
		if a.Name != "applu" && a.MPKI >= inMix {
			t.Errorf("%s MPKI %g ≥ applu %g in MIX1", a.Name, a.MPKI, inMix)
		}
	}
}

func TestInstrPerMissAndWritebackProb(t *testing.T) {
	w, _ := Instantiate(TableIII[8], 4)
	for _, a := range w.Apps {
		ipm := a.InstrPerMiss()
		if math.Abs(ipm*a.MPKI-1000) > 1e-6 {
			t.Errorf("%s: InstrPerMiss inconsistent", a.Name)
		}
		p := a.WritebackProb()
		if p < 0 || p > 1 {
			t.Errorf("%s: writeback prob %g", a.Name, p)
		}
	}
	// Degenerate: zero MPKI yields zero writeback probability.
	z := App{AppProfile: AppProfile{Name: "x"}, MPKI: 0, WPKI: 1}
	if z.WritebackProb() != 0 {
		t.Error("zero-MPKI writeback prob should be 0")
	}
	// WPKI > MPKI clamps at 1.
	c := App{AppProfile: AppProfile{Name: "x"}, MPKI: 1, WPKI: 5}
	if c.WritebackProb() != 1 {
		t.Error("writeback prob should clamp at 1")
	}
}

func TestPhaseBounded(t *testing.T) {
	w, _ := Instantiate(TableIII[15], 16) // MIX4
	for _, a := range w.Apps {
		for e := 0; e < 500; e++ {
			v := a.Phase(e)
			if v < 1-a.PhaseAmp-1e-9 || v > 1+a.PhaseAmp+1e-9 {
				t.Fatalf("%s copy %d epoch %d: phase %g outside ±%g", a.Name, a.Copy, e, v, a.PhaseAmp)
			}
		}
	}
}

func TestPhaseDeterministic(t *testing.T) {
	w1, _ := Instantiate(TableIII[15], 16)
	w2, _ := Instantiate(TableIII[15], 16)
	for i := range w1.Apps {
		for e := 0; e < 100; e += 7 {
			if w1.Apps[i].Phase(e) != w2.Apps[i].Phase(e) {
				t.Fatalf("phase not deterministic for core %d epoch %d", i, e)
			}
		}
	}
}

func TestPhaseCopiesDecorrelated(t *testing.T) {
	w, _ := Instantiate(TableIII[8], 16)
	// Two copies of swim (cores 0 and 4) should not track each other.
	same := 0
	const epochs = 64
	for e := 0; e < epochs; e++ {
		if math.Abs(w.Apps[0].Phase(e)-w.Apps[4].Phase(e)) < 1e-9 {
			same++
		}
	}
	if same > epochs/4 {
		t.Errorf("copies identical in %d/%d epochs", same, epochs)
	}
}

func TestPhaseFlatWhenAmpZero(t *testing.T) {
	a := App{AppProfile: AppProfile{Name: "flat", PhaseAmp: 0, PhaseLen: 10}}
	for e := 0; e < 50; e++ {
		if a.Phase(e) != 1 {
			t.Fatalf("flat app phase %g at epoch %d", a.Phase(e), e)
		}
	}
}

func TestClassString(t *testing.T) {
	cases := map[Class]string{ClassILP: "ILP", ClassMID: "MID", ClassMEM: "MEM", ClassMIX: "MIX", Class(9): "Class(9)"}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(c), got, want)
		}
	}
}

// Property: instantiating any mix at any valid core count preserves both
// table values and produces strictly positive per-instance rates.
func TestInstantiateProperty(t *testing.T) {
	f := func(mixIdx, nRaw uint8) bool {
		spec := TableIII[int(mixIdx)%len(TableIII)]
		n := 4 * (1 + int(nRaw)%16)
		w, err := Instantiate(spec, n)
		if err != nil {
			return false
		}
		if math.Abs(w.MeanMPKI()-spec.MPKI) > 1e-9 {
			return false
		}
		if math.Abs(w.MeanWPKI()-spec.WPKI) > 1e-9 {
			return false
		}
		for _, a := range w.Apps {
			if a.MPKI <= 0 || a.WPKI < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
