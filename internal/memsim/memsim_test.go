package memsim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/qmodel"
)

func newTestController(t *testing.T, eng *engine.Engine, banks int) *Controller {
	t.Helper()
	c, err := NewController(eng, banks, DDR3(), DefaultPower(), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewControllerErrors(t *testing.T) {
	eng := engine.New()
	if _, err := NewController(eng, 0, DDR3(), DefaultPower(), 0.8); err == nil {
		t.Error("zero banks accepted")
	}
	if _, err := NewController(eng, 4, DDR3(), DefaultPower(), 0); err == nil {
		t.Error("zero frequency accepted")
	}
}

func TestSingleReadLatency(t *testing.T) {
	eng := engine.New()
	c := newTestController(t, eng, 8)
	done := -1.0
	c.Submit(&Request{Core: 0, Bank: 3, Row: 7, Done: func() { done = eng.Now() }})
	eng.RunUntil(1000)
	// Empty row buffer: tRCD + tCL = 30 ns, plus transfer 4/0.8 = 5 ns.
	want := 30.0 + 5.0
	if math.Abs(done-want) > 1e-9 {
		t.Errorf("read completed at %g ns, want %g", done, want)
	}
	ctr := c.Counters()
	if ctr.Reads != 1 || ctr.Writebacks != 0 || ctr.RowHits != 0 {
		t.Errorf("counters: %+v", ctr)
	}
}

func TestRowHitAndConflictTiming(t *testing.T) {
	eng := engine.New()
	c := newTestController(t, eng, 8)
	var times []float64
	mk := func(row int32) *Request {
		return &Request{Bank: 0, Row: row, Done: func() { times = append(times, eng.Now()) }}
	}
	// Sequential, same bank: first activates (30), second hits (15),
	// third conflicts (45). Each also takes 5 ns on the bus, and the bank
	// is blocked until the transfer finishes.
	c.Submit(mk(1))
	eng.RunUntil(35) // first completes
	c.Submit(mk(1))
	eng.RunUntil(55) // hit: 35 + 15 + 5
	c.Submit(mk(2))
	eng.RunUntil(200)
	if len(times) != 3 {
		t.Fatalf("completed %d, want 3", len(times))
	}
	if math.Abs(times[0]-35) > 1e-9 {
		t.Errorf("activate+read at %g, want 35", times[0])
	}
	if math.Abs(times[1]-55) > 1e-9 {
		t.Errorf("row hit at %g, want 55", times[1])
	}
	if math.Abs(times[2]-105) > 1e-9 { // 55 + (15+15+15) + 5
		t.Errorf("row conflict at %g, want 105", times[2])
	}
	if got := c.Counters().RowHits; got != 1 {
		t.Errorf("row hits = %d, want 1", got)
	}
}

func TestTransferBlocking(t *testing.T) {
	// Two banks finish service while the bus is saturated: the second
	// bank must remain blocked (cannot serve its next request) until its
	// first request clears the bus. This is the paper's Fig. 1 scenario.
	eng := engine.New()
	// Slow bus: 4 cycles at 0.1 GHz = 40 ns per transfer.
	c, err := NewController(eng, 2, DDR3(), DefaultPower(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var done []int
	mk := func(id, bank int, row int32) *Request {
		return &Request{Bank: bank, Row: row, Done: func() { done = append(done, id) }}
	}
	// Bank 0 and bank 1 both get two same-row requests at t=0.
	c.Submit(mk(0, 0, 1))
	c.Submit(mk(1, 1, 1))
	c.Submit(mk(2, 0, 1))
	c.Submit(mk(3, 1, 1))
	// Service (30 ns) overlaps across banks; transfers serialize at 40 ns.
	// req0 done at 30+40 = 70; req1 finishes service at 30, waits for bus
	// until 70, done at 110. Bank 0 is blocked until 70, then serves req2
	// (row hit, 15 ns) at 85, but the bus is busy with req1 until 110 →
	// req2 done at 150. Bank 1 blocked until 110, serves req3 by 125,
	// transfer 150→190.
	eng.RunUntil(1000)
	if len(done) != 4 {
		t.Fatalf("completed %d, want 4", len(done))
	}
	want := []int{0, 1, 2, 3}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completion order %v, want %v", done, want)
		}
	}
	if c.QueuedRequests() != 0 {
		t.Errorf("requests left in controller: %d", c.QueuedRequests())
	}
	// Bus was busy 4 transfers × 40 ns.
	if got := c.Counters().BusBusyNs; math.Abs(got-160) > 1e-9 {
		t.Errorf("bus busy %g ns, want 160", got)
	}
}

func TestTransferBlockingDelaysBankService(t *testing.T) {
	// Direct check of the blocking property: with a very slow bus, a
	// bank's second request must not start service when the first's
	// service ends, but only after the first's transfer completes.
	eng := engine.New()
	c, err := NewController(eng, 1, DDR3(), DefaultPower(), 0.01) // 400 ns transfers
	if err != nil {
		t.Fatal(err)
	}
	var first, second float64
	c.Submit(&Request{Bank: 0, Row: 1, Done: func() { first = eng.Now() }})
	c.Submit(&Request{Bank: 0, Row: 1, Done: func() { second = eng.Now() }})
	eng.RunUntil(5000)
	// first: service 30 + transfer 400 = 430.
	if math.Abs(first-430) > 1e-9 {
		t.Errorf("first done at %g, want 430", first)
	}
	// second: starts service only at 430 (blocked), row hit 15, transfer
	// 400 → 845. Without blocking it would finish at 430+400=830.
	if math.Abs(second-845) > 1e-9 {
		t.Errorf("second done at %g, want 845 (blocking violated)", second)
	}
}

func TestWritebacksCountedSeparately(t *testing.T) {
	eng := engine.New()
	c := newTestController(t, eng, 4)
	c.Submit(&Request{Bank: 0, Row: 1, Writeback: true})
	c.Submit(&Request{Bank: 1, Row: 1})
	eng.RunUntil(100)
	ctr := c.Counters()
	if ctr.Writebacks != 1 || ctr.Reads != 1 {
		t.Errorf("reads=%d writebacks=%d", ctr.Reads, ctr.Writebacks)
	}
}

func TestBankIndexWraps(t *testing.T) {
	eng := engine.New()
	c := newTestController(t, eng, 4)
	ok := false
	c.Submit(&Request{Bank: 9, Row: 1, Done: func() { ok = true }}) // 9 % 4 = 1
	c.Submit(&Request{Bank: -1, Row: 1})                            // wraps to 3
	eng.RunUntil(100)
	if !ok {
		t.Error("wrapped request never completed")
	}
	if c.QueuedRequests() != 0 {
		t.Error("requests stuck after wrap")
	}
}

func TestSetBusFreqChangesTransferTime(t *testing.T) {
	eng := engine.New()
	c := newTestController(t, eng, 4)
	if got := c.TransferTime(); math.Abs(got-5) > 1e-9 {
		t.Errorf("transfer time at 800 MHz = %g, want 5", got)
	}
	c.SetBusFreq(0.2)
	if got := c.TransferTime(); math.Abs(got-20) > 1e-9 {
		t.Errorf("transfer time at 200 MHz = %g, want 20", got)
	}
	if got := c.MinTransferTime(); math.Abs(got-5) > 1e-9 {
		t.Errorf("min transfer time = %g, want 5", got)
	}
	c.SetBusFreq(0) // ignored
	if c.BusFreq() != 0.2 {
		t.Error("zero frequency not ignored")
	}
}

func TestCountersSubAndMemStats(t *testing.T) {
	eng := engine.New()
	c := newTestController(t, eng, 2)
	before := c.Counters()
	for i := 0; i < 10; i++ {
		c.Submit(&Request{Bank: i % 2, Row: int32(i)})
	}
	eng.RunUntil(10000)
	delta := c.Counters().Sub(before)
	if delta.Arrivals != 10 || delta.Departures != 10 {
		t.Fatalf("delta = %+v", delta)
	}
	s := delta.MemStats(DDR3())
	if !s.Valid() {
		t.Fatalf("invalid stats %+v", s)
	}
	// Bursty arrival at t=0 into 2 banks: queues of 5 each → mean
	// queue-at-arrival = (1+2+3+4+5)/5 = 3.
	if math.Abs(s.Q-3) > 1e-9 {
		t.Errorf("Q = %g, want 3", s.Q)
	}
	if s.Sm < 15 || s.Sm > 45 {
		t.Errorf("Sm = %g outside DDR3 service range", s.Sm)
	}
}

func TestMemStatsEmptyWindow(t *testing.T) {
	var delta Counters
	s := delta.MemStats(DDR3())
	if s.Q != 1 || s.U != 1 || s.Sm != 15 {
		t.Errorf("idle defaults = %+v", s)
	}
}

func TestPowerModel(t *testing.T) {
	eng := engine.New()
	c := newTestController(t, eng, 4)
	// Idle window at max frequency: static + clock.
	idle := c.Power(Counters{}, 1000)
	if math.Abs(idle-(10+6)) > 1e-9 {
		t.Errorf("idle power = %g, want 16", idle)
	}
	// Saturated bus at max frequency: full peak.
	sat := c.Power(Counters{BusBusyNs: 1000}, 1000)
	if math.Abs(sat-36) > 1e-9 {
		t.Errorf("saturated power = %g, want peak 36", sat)
	}
	if math.Abs(c.PeakPower()-36) > 1e-9 {
		t.Errorf("PeakPower = %g, want 36", c.PeakPower())
	}
	// Halving frequency halves the dynamic part (β = 1).
	c.SetBusFreq(0.4)
	half := c.Power(Counters{BusBusyNs: 1000}, 1000)
	if math.Abs(half-(10+0.5*26)) > 1e-9 {
		t.Errorf("half-frequency power = %g, want 23", half)
	}
	// Degenerate window.
	if got := c.Power(Counters{}, 0); got != 10 {
		t.Errorf("zero window power = %g, want static", got)
	}
	if c.StaticPower() != 10 {
		t.Errorf("StaticPower = %g", c.StaticPower())
	}
}

func TestRequestConservationUnderLoad(t *testing.T) {
	eng := engine.New()
	c := newTestController(t, eng, 8)
	rng := rand.New(rand.NewSource(3))
	completed := 0
	const total = 5000
	for i := 0; i < total; i++ {
		r := &Request{
			Bank:      rng.Intn(8),
			Row:       int32(rng.Intn(64)),
			Writeback: rng.Intn(4) == 0,
		}
		r.Done = func() { completed++ }
		eng.Schedule(rng.Float64()*50000, func() { c.Submit(r) })
	}
	eng.RunUntil(10e6)
	if completed != total {
		t.Fatalf("completed %d of %d", completed, total)
	}
	if c.QueuedRequests() != 0 {
		t.Errorf("%d requests stranded", c.QueuedRequests())
	}
	ctr := c.Counters()
	if ctr.Arrivals != total || ctr.Departures != total {
		t.Errorf("arrivals=%d departures=%d", ctr.Arrivals, ctr.Departures)
	}
	if ctr.SvcCount != total {
		t.Errorf("service count=%d", ctr.SvcCount)
	}
}

// The measured response time under light load should approach the Eq. 1
// prediction (and both should approach sm + sb with no contention).
func TestResponseMatchesEq1LightLoad(t *testing.T) {
	eng := engine.New()
	c := newTestController(t, eng, 8)
	rng := rand.New(rand.NewSource(11))
	var totalResp float64
	n := 0
	// One request at a time (closed loop, single customer): zero queueing.
	var issue func()
	issue = func() {
		start := eng.Now()
		r := &Request{Bank: rng.Intn(8), Row: int32(rng.Intn(4096))}
		r.Done = func() {
			totalResp += eng.Now() - start
			n++
			if n < 2000 {
				eng.Schedule(100, issue) // think, then next request
			}
		}
		c.Submit(r)
	}
	issue()
	eng.RunUntil(1e9)
	if n != 2000 {
		t.Fatalf("completed %d", n)
	}
	measured := totalResp / float64(n)
	stats := c.Counters().MemStats(DDR3())
	predicted := stats.Response(c.TransferTime())
	if math.Abs(measured-predicted)/measured > 0.15 {
		t.Errorf("Eq.1 prediction %g vs measured %g differs >15%% at light load", predicted, measured)
	}
}

// Under heavy closed-loop load with a saturated bus, Eq. 1 should still
// predict the right order of magnitude (the paper reports it as a good
// approximation; we accept 35%).
func TestResponseMatchesEq1HeavyLoad(t *testing.T) {
	eng := engine.New()
	c := newTestController(t, eng, 8)
	rng := rand.New(rand.NewSource(13))
	const customers = 16
	var totalResp float64
	var n int
	var issue func()
	issue = func() {
		start := eng.Now()
		r := &Request{Bank: rng.Intn(8), Row: int32(rng.Intn(4096))}
		r.Done = func() {
			totalResp += eng.Now() - start
			n++
			eng.Schedule(20, issue) // short think: memory-bound
		}
		c.Submit(r)
	}
	for i := 0; i < customers; i++ {
		issue()
	}
	warm := c.Counters()
	eng.RunUntil(2e6)
	nWarm := n
	respWarm := totalResp
	eng.RunUntil(6e6)
	delta := c.Counters().Sub(warm)
	measured := (totalResp - respWarm) / float64(n-nWarm)
	predicted := delta.MemStats(DDR3()).Response(c.TransferTime())
	if rel := math.Abs(measured-predicted) / measured; rel > 0.35 {
		t.Errorf("Eq.1 heavy-load error %.0f%%: predicted %g measured %g", rel*100, predicted, measured)
	}
}

// Cross-check against exact MVA on the blocking-free network: the
// simulator (with blocking) must show response at or above MVA's.
func TestSimAtLeastMVA(t *testing.T) {
	eng := engine.New()
	c := newTestController(t, eng, 8)
	rng := rand.New(rand.NewSource(17))
	const customers = 8
	const think = 200.0
	var totalResp float64
	var n int
	var issue func()
	issue = func() {
		start := eng.Now()
		r := &Request{Bank: rng.Intn(8), Row: int32(rng.Intn(4096))}
		r.Done = func() {
			totalResp += eng.Now() - start
			n++
			eng.Schedule(think, issue)
		}
		c.Submit(r)
	}
	for i := 0; i < customers; i++ {
		issue()
	}
	eng.RunUntil(4e6)
	measured := totalResp / float64(n)
	ctr := c.Counters()
	sm := ctr.SvcSum / float64(ctr.SvcCount)
	mvaResp, _ := qmodel.MVA(customers, think, 8, sm, c.TransferTime())
	if measured < mvaResp*0.9 {
		t.Errorf("simulated response %g below MVA lower bound %g", measured, mvaResp)
	}
}

func BenchmarkControllerThroughput(b *testing.B) {
	eng := engine.New()
	c, _ := NewController(eng, 32, DDR3(), DefaultPower(), 0.8)
	rng := rand.New(rand.NewSource(1))
	var issue func()
	issue = func() {
		r := &Request{Bank: rng.Intn(32), Row: int32(rng.Intn(128))}
		r.Done = func() { eng.Schedule(50, issue) }
		c.Submit(r)
	}
	for i := 0; i < 16; i++ {
		issue()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}
