// Package memsim is the event-driven DDR3 memory-subsystem model the
// FastCap paper evaluates against (§III-A, Fig. 1, Table II): per-
// controller banks with open-row management, a common FCFS data bus, and
// the *transfer blocking* property — after a bank finishes an access it
// stays blocked until the retrieved line has crossed the bus, so queueing
// at the bus back-pressures the banks exactly as in the paper's closed
// queuing network.
//
// The memory bus (and DIMM clock) is frequency-scaled: a 64-byte line
// occupies the bus for BusCycles/f_bus nanoseconds. DRAM core timing
// (tRCD/tRP/tCL) is in nanoseconds and does not scale, matching the
// MemScale-style mechanism the paper adopts where bus/DIMM frequency
// scales but cell timing is fixed.
//
// The package also measures the counters FastCap consumes (Q, U, s_m —
// paper Eq. 1 and §III-C) and activity-based memory power.
package memsim

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/qmodel"
)

// Timing carries the DDR3 device timing of the paper's Table II.
type Timing struct {
	TRCD float64 // row-to-column delay, ns
	TRP  float64 // row precharge, ns
	TCL  float64 // CAS latency, ns
	// BusCycles is the number of bus clock cycles one 64-byte line
	// occupies on the data bus (8 beats at DDR = 4 clocks).
	BusCycles float64
}

// DDR3 returns the Table II timing: tRCD = tRP = tCL = 15 ns, 4 bus
// clocks per cache-line transfer.
func DDR3() Timing { return Timing{TRCD: 15, TRP: 15, TCL: 15, BusCycles: 4} }

// PowerConfig calibrates the activity-based memory power model. All
// dynamic terms scale linearly with the normalized bus frequency, which
// is what makes the paper's fitted exponent β ≈ 1.
type PowerConfig struct {
	StaticW   float64 // refresh + standby floor, frequency-independent
	ClockW    float64 // PLL/controller/DIMM clock tree at full frequency
	TransferW float64 // incremental power at 100% bus utilization, full frequency
}

// DefaultPower calibrates a 4-channel DDR3 subsystem to the paper's
// breakdown: ~36 W peak (30% of the 120 W 16-core system), 10 W static.
func DefaultPower() PowerConfig {
	return PowerConfig{StaticW: 10, ClockW: 6, TransferW: 20}
}

// Request is one memory transaction: a demand read (LLC miss) or a
// writeback. Done, if non-nil, fires when the bus transfer completes —
// i.e. when the requesting core receives its data.
type Request struct {
	Core      int
	Bank      int
	Row       int32
	Writeback bool
	Done      func()

	arriveNs float64 // set by Submit; feeds the response-time counters
}

// bank states; a bank is blocked from serving its queue while its
// finished request waits for (or occupies) the bus.
const (
	bankIdle = iota
	bankServing
	bankBlocked
)

// reqQueue is a FIFO of requests with a head cursor instead of
// re-slicing, so steady-state push/pop reuses the same backing array
// (the array compacts when the dead prefix dominates).
type reqQueue struct {
	buf  []*Request
	head int
}

func (q *reqQueue) push(r *Request) { q.buf = append(q.buf, r) }

func (q *reqQueue) len() int { return len(q.buf) - q.head }

func (q *reqQueue) front() *Request { return q.buf[q.head] }

func (q *reqQueue) pop() *Request {
	r := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head > 32 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = nil
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	return r
}

type bank struct {
	queue   reqQueue
	openRow int32
	hasOpen bool
	state   int
	// svcTimer fires serviceDone for this bank; created once at
	// controller construction so bank service scheduling is
	// allocation-free.
	svcTimer *engine.Timer
}

// Counters accumulate monotonically; callers snapshot and diff to get
// per-window statistics.
type Counters struct {
	Arrivals   int64   // requests enqueued at banks
	SumQ       float64 // Σ bank queue length at arrival (incl. arriving)
	Departures int64   // requests finishing bank service
	SumU       float64 // Σ bus backlog at departure (incl. departing)
	SvcSum     float64 // Σ bank service times, ns
	SvcCount   int64
	Reads      int64
	Writebacks int64
	RowHits    int64
	BankBusyNs float64 // Σ over banks of service time
	BusBusyNs  float64 // bus transfer time
	RespSumNs  float64 // Σ request response times (Submit → transfer done)
	RespCount  int64
}

// Sub returns c - prev, the window delta.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		Arrivals:   c.Arrivals - prev.Arrivals,
		SumQ:       c.SumQ - prev.SumQ,
		Departures: c.Departures - prev.Departures,
		SumU:       c.SumU - prev.SumU,
		SvcSum:     c.SvcSum - prev.SvcSum,
		SvcCount:   c.SvcCount - prev.SvcCount,
		Reads:      c.Reads - prev.Reads,
		Writebacks: c.Writebacks - prev.Writebacks,
		RowHits:    c.RowHits - prev.RowHits,
		BankBusyNs: c.BankBusyNs - prev.BankBusyNs,
		BusBusyNs:  c.BusBusyNs - prev.BusBusyNs,
		RespSumNs:  c.RespSumNs - prev.RespSumNs,
		RespCount:  c.RespCount - prev.RespCount,
	}
}

// MemStats converts a window delta into the Eq. 1 inputs, falling back
// to light-load defaults (Q = U = 1, s_m = tCL) when the window saw no
// traffic.
func (c Counters) MemStats(t Timing) qmodel.MemStats {
	s := qmodel.MemStats{Q: 1, U: 1, Sm: t.TCL}
	if c.Arrivals > 0 {
		s.Q = c.SumQ / float64(c.Arrivals)
	}
	if c.Departures > 0 {
		s.U = c.SumU / float64(c.Departures)
	}
	if c.SvcCount > 0 {
		s.Sm = c.SvcSum / float64(c.SvcCount)
	}
	return s.Clamp(t.TCL)
}

// MeasuredResponseNs is the window's true mean response time (Submit to
// completed bus transfer), or 0 for an idle window. Validation
// experiments compare it against the Eq. 1 approximation.
func (c Counters) MeasuredResponseNs() float64 {
	if c.RespCount == 0 {
		return 0
	}
	return c.RespSumNs / float64(c.RespCount)
}

// Controller is one memory controller: a set of banks sharing one data
// bus, as in the paper's Fig. 1.
type Controller struct {
	eng    *engine.Engine
	timing Timing
	power  PowerConfig

	busFreq    float64 // GHz
	busFreqMax float64

	banks   []bank
	busQ    reqQueue
	busBusy bool
	// busCur is the request occupying the bus; busTimer fires its
	// transfer completion (one transfer at a time, one reusable timer).
	busCur   *Request
	busTimer *engine.Timer

	ctr Counters
}

// NewController builds a controller with nBanks banks, bus frequency
// initially at busFreqMax (GHz).
func NewController(eng *engine.Engine, nBanks int, timing Timing, pcfg PowerConfig, busFreqMax float64) (*Controller, error) {
	if nBanks <= 0 {
		return nil, fmt.Errorf("memsim: need at least one bank, got %d", nBanks)
	}
	if busFreqMax <= 0 {
		return nil, fmt.Errorf("memsim: non-positive bus frequency %g", busFreqMax)
	}
	c := &Controller{
		eng:        eng,
		timing:     timing,
		power:      pcfg,
		busFreq:    busFreqMax,
		busFreqMax: busFreqMax,
		banks:      make([]bank, nBanks),
	}
	for i := range c.banks {
		bi := i
		c.banks[i].svcTimer = eng.NewTimer(func() { c.serviceDone(bi) })
	}
	c.busTimer = eng.NewTimer(c.busTransferDone)
	return c, nil
}

// Banks returns the number of banks behind this controller.
func (c *Controller) Banks() int { return len(c.banks) }

// BusFreq returns the current bus frequency in GHz.
func (c *Controller) BusFreq() float64 { return c.busFreq }

// SetBusFreq retargets the bus (and DIMM) clock. The transfer time of
// requests already on the bus is unaffected; queued requests see the new
// rate. The paper's PLL/DLL re-sync halt is tens of microseconds per
// multi-millisecond epoch and is accounted as negligible (§III-C).
func (c *Controller) SetBusFreq(ghz float64) {
	if ghz <= 0 {
		return
	}
	c.busFreq = ghz
}

// TransferTime returns the current per-line bus occupancy s_b in ns.
func (c *Controller) TransferTime() float64 { return c.timing.BusCycles / c.busFreq }

// MinTransferTime returns s̄_b, the transfer time at maximum frequency.
func (c *Controller) MinTransferTime() float64 { return c.timing.BusCycles / c.busFreqMax }

// Counters returns a snapshot of the monotone counters.
func (c *Controller) Counters() Counters { return c.ctr }

// Submit enqueues a request at its bank. Request.Bank is reduced modulo
// the bank count so callers can use free-running bank cursors.
func (c *Controller) Submit(r *Request) {
	r.Bank %= len(c.banks)
	if r.Bank < 0 {
		r.Bank += len(c.banks)
	}
	b := &c.banks[r.Bank]
	r.arriveNs = c.eng.Now()
	b.queue.push(r)
	c.ctr.Arrivals++
	c.ctr.SumQ += float64(b.queue.len()) // includes the arriving request
	if r.Writeback {
		c.ctr.Writebacks++
	} else {
		c.ctr.Reads++
	}
	if b.state == bankIdle {
		c.startService(r.Bank)
	}
}

// startService begins the bank access for the head of the bank queue.
func (c *Controller) startService(bi int) {
	b := &c.banks[bi]
	b.state = bankServing
	r := b.queue.front()
	var svc float64
	switch {
	case b.hasOpen && b.openRow == r.Row:
		svc = c.timing.TCL // row-buffer hit
		c.ctr.RowHits++
	case b.hasOpen:
		svc = c.timing.TRP + c.timing.TRCD + c.timing.TCL // conflict
	default:
		svc = c.timing.TRCD + c.timing.TCL // empty row buffer
	}
	b.openRow, b.hasOpen = r.Row, true
	c.ctr.SvcSum += svc
	c.ctr.SvcCount++
	c.ctr.BankBusyNs += svc
	b.svcTimer.Reset(svc)
}

// serviceDone moves the finished request to the bus queue; the bank
// stays blocked until the transfer completes (transfer blocking).
func (c *Controller) serviceDone(bi int) {
	b := &c.banks[bi]
	b.state = bankBlocked
	r := b.queue.front()
	c.ctr.Departures++
	// Bus backlog seen by the departing request: waiters ahead of it,
	// any transfer in flight, and itself.
	u := float64(c.busQ.len()) + 1
	if c.busBusy {
		u++
	}
	c.ctr.SumU += u
	c.busQ.push(r)
	c.tryStartBus()
}

func (c *Controller) tryStartBus() {
	if c.busBusy || c.busQ.len() == 0 {
		return
	}
	r := c.busQ.pop()
	c.busBusy = true
	c.busCur = r
	sb := c.TransferTime()
	c.ctr.BusBusyNs += sb
	c.busTimer.Reset(sb)
}

// busTransferDone releases the bus, unblocks the request's bank, and
// notifies the requesting core.
func (c *Controller) busTransferDone() {
	r := c.busCur
	c.busCur = nil
	c.busBusy = false
	c.ctr.RespSumNs += c.eng.Now() - r.arriveNs
	c.ctr.RespCount++
	b := &c.banks[r.Bank]
	b.queue.pop()
	b.state = bankIdle
	if b.queue.len() > 0 {
		c.startService(r.Bank)
	}
	if r.Done != nil {
		r.Done()
	}
	c.tryStartBus()
}

// Power evaluates the measured memory power (W) over a window of length
// windowNs given the window's counter delta: static floor plus
// frequency-proportional clock-tree and transfer-activity terms.
func (c *Controller) Power(delta Counters, windowNs float64) float64 {
	if windowNs <= 0 {
		return c.power.StaticW
	}
	fNorm := c.busFreq / c.busFreqMax
	busUtil := delta.BusBusyNs / windowNs
	if busUtil > 1 {
		busUtil = 1
	}
	return c.power.StaticW + fNorm*(c.power.ClockW+c.power.TransferW*busUtil)
}

// PeakPower is the controller's maximum power draw: full frequency,
// saturated bus.
func (c *Controller) PeakPower() float64 {
	return c.power.StaticW + c.power.ClockW + c.power.TransferW
}

// StaticPower exposes the frequency-independent floor for the fitters.
func (c *Controller) StaticPower() float64 { return c.power.StaticW }

// QueuedRequests reports the total number of requests resident in the
// controller. A request stays in its bank queue from Submit until its
// bus transfer completes (the bus queue holds aliases, not extra
// requests), so the bank queues alone are the full population; used by
// tests to check request conservation.
func (c *Controller) QueuedRequests() int {
	n := 0
	for i := range c.banks {
		n += c.banks[i].queue.len()
	}
	return n
}
