// Package memsim is the event-driven DDR3 memory-subsystem model the
// FastCap paper evaluates against (§III-A, Fig. 1, Table II): per-
// controller banks with open-row management, a common FCFS data bus, and
// the *transfer blocking* property — after a bank finishes an access it
// stays blocked until the retrieved line has crossed the bus, so queueing
// at the bus back-pressures the banks exactly as in the paper's closed
// queuing network.
//
// The memory bus (and DIMM clock) is frequency-scaled: a 64-byte line
// occupies the bus for BusCycles/f_bus nanoseconds. DRAM core timing
// (tRCD/tRP/tCL) is in nanoseconds and does not scale, matching the
// MemScale-style mechanism the paper adopts where bus/DIMM frequency
// scales but cell timing is fixed.
//
// The package also measures the counters FastCap consumes (Q, U, s_m —
// paper Eq. 1 and §III-C) and activity-based memory power.
//
// Per-request state lives in a flat arena owned by the controller: a
// request is an int32 slot into a dense array of compact records, and
// the bank/bus FIFOs are rings of slots. The epoch inner loop therefore
// walks dense arrays instead of chasing per-request heap objects. Cores
// on the hot path use Access + RegisterDemand; the boxed Submit(*Request)
// entry point copies into the arena and exists for tests and small tools.
package memsim

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/qmodel"
)

// Timing carries the DDR3 device timing of the paper's Table II.
type Timing struct {
	TRCD float64 // row-to-column delay, ns
	TRP  float64 // row precharge, ns
	TCL  float64 // CAS latency, ns
	// BusCycles is the number of bus clock cycles one 64-byte line
	// occupies on the data bus (8 beats at DDR = 4 clocks).
	BusCycles float64
}

// DDR3 returns the Table II timing: tRCD = tRP = tCL = 15 ns, 4 bus
// clocks per cache-line transfer.
func DDR3() Timing { return Timing{TRCD: 15, TRP: 15, TCL: 15, BusCycles: 4} }

// PowerConfig calibrates the activity-based memory power model. All
// dynamic terms scale linearly with the normalized bus frequency, which
// is what makes the paper's fitted exponent β ≈ 1.
type PowerConfig struct {
	StaticW   float64 // refresh + standby floor, frequency-independent
	ClockW    float64 // PLL/controller/DIMM clock tree at full frequency
	TransferW float64 // incremental power at 100% bus utilization, full frequency
}

// DefaultPower calibrates a 4-channel DDR3 subsystem to the paper's
// breakdown: ~36 W peak (30% of the 120 W 16-core system), 10 W static.
func DefaultPower() PowerConfig {
	return PowerConfig{StaticW: 10, ClockW: 6, TransferW: 20}
}

// Request is one memory transaction: a demand read (LLC miss) or a
// writeback. Done, if non-nil, fires when the bus transfer completes —
// i.e. when the requesting core receives its data. Submit copies the
// request into the controller's arena; the struct itself is not retained.
type Request struct {
	Core      int
	Bank      int
	Row       int32
	Writeback bool
	Done      func()
}

// bank states; a bank is blocked from serving its queue while its
// finished request waits for (or occupies) the bus.
const (
	bankIdle = uint8(iota)
	bankServing
	bankBlocked
)

// bank is one bank's service state plus its request queue. The fields
// touched together on the service path sit in one compact record;
// svcTimer fires serviceDone for this bank and is created once at
// controller construction so bank service scheduling is allocation-free.
type bank struct {
	queue    ring
	openRow  int32
	hasOpen  bool
	state    uint8
	svcTimer *engine.Timer
}

// req is the arena record of one in-flight request.
type req struct {
	core   int32
	bank   int32
	row    int32
	wb     bool
	arrive float64 // Submit time; feeds the response-time counters
}

// ring is a FIFO of arena slots over a power-of-two backing array; the
// head cursor wraps via masking, so steady-state push/pop never moves
// or re-allocates memory.
type ring struct {
	buf  []int32
	head uint32
	n    uint32
}

func (q *ring) push(s int32) {
	if int(q.n) == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&uint32(len(q.buf)-1)] = s
	q.n++
}

func (q *ring) grow() {
	sz := len(q.buf) * 2
	if sz < 8 {
		sz = 8
	}
	nb := make([]int32, sz)
	mask := uint32(len(q.buf) - 1)
	for i := uint32(0); i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&mask]
	}
	q.buf, q.head = nb, 0
}

func (q *ring) len() int { return int(q.n) }

func (q *ring) front() int32 { return q.buf[q.head&uint32(len(q.buf)-1)] }

func (q *ring) pop() int32 {
	s := q.buf[q.head&uint32(len(q.buf)-1)]
	q.head++
	q.n--
	return s
}

// Counters accumulate monotonically; callers snapshot and diff to get
// per-window statistics.
type Counters struct {
	Arrivals   int64   // requests enqueued at banks
	SumQ       float64 // Σ bank queue length at arrival (incl. arriving)
	Departures int64   // requests finishing bank service
	SumU       float64 // Σ bus backlog at departure (incl. departing)
	SvcSum     float64 // Σ bank service times, ns
	SvcCount   int64
	Reads      int64
	Writebacks int64
	RowHits    int64
	BankBusyNs float64 // Σ over banks of service time
	BusBusyNs  float64 // bus transfer time
	RespSumNs  float64 // Σ request response times (Submit → transfer done)
	RespCount  int64
}

// Sub returns c - prev, the window delta.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		Arrivals:   c.Arrivals - prev.Arrivals,
		SumQ:       c.SumQ - prev.SumQ,
		Departures: c.Departures - prev.Departures,
		SumU:       c.SumU - prev.SumU,
		SvcSum:     c.SvcSum - prev.SvcSum,
		SvcCount:   c.SvcCount - prev.SvcCount,
		Reads:      c.Reads - prev.Reads,
		Writebacks: c.Writebacks - prev.Writebacks,
		RowHits:    c.RowHits - prev.RowHits,
		BankBusyNs: c.BankBusyNs - prev.BankBusyNs,
		BusBusyNs:  c.BusBusyNs - prev.BusBusyNs,
		RespSumNs:  c.RespSumNs - prev.RespSumNs,
		RespCount:  c.RespCount - prev.RespCount,
	}
}

// MemStats converts a window delta into the Eq. 1 inputs, falling back
// to light-load defaults (Q = U = 1, s_m = tCL) when the window saw no
// traffic.
func (c Counters) MemStats(t Timing) qmodel.MemStats {
	s := qmodel.MemStats{Q: 1, U: 1, Sm: t.TCL}
	if c.Arrivals > 0 {
		s.Q = c.SumQ / float64(c.Arrivals)
	}
	if c.Departures > 0 {
		s.U = c.SumU / float64(c.Departures)
	}
	if c.SvcCount > 0 {
		s.Sm = c.SvcSum / float64(c.SvcCount)
	}
	return s.Clamp(t.TCL)
}

// MeasuredResponseNs is the window's true mean response time (Submit to
// completed bus transfer), or 0 for an idle window. Validation
// experiments compare it against the Eq. 1 approximation.
func (c Counters) MeasuredResponseNs() float64 {
	if c.RespCount == 0 {
		return 0
	}
	return c.RespSumNs / float64(c.RespCount)
}

// Controller is one memory controller: a set of banks sharing one data
// bus, as in the paper's Fig. 1.
type Controller struct {
	eng    *engine.Engine
	timing Timing
	power  PowerConfig

	busFreq    float64 // GHz
	busFreqMax float64
	xferNs     float64 // BusCycles / busFreq, cached per retarget

	// banks[i] is one compact record per bank: fields touched together
	// on the service path share a cache line.
	banks []bank

	busQ    ring
	busBusy bool
	// busCur is the arena slot occupying the bus (-1 when idle);
	// busTimer fires its transfer completion (one transfer at a time,
	// one reusable timer).
	busCur   int32
	busTimer *engine.Timer

	// Request arena: a request is an int32 slot into rq, recycled
	// through rFree when its bus transfer completes. One 24-byte record
	// per request keeps the completion path to a single cache line;
	// rDone is split out because only the boxed Submit path touches it.
	rq    []req
	rDone []func() // boxed-path callback; nil on the Access path
	rFree []int32

	// demandFn[core] is called when a demand read for that core leaves
	// the bus (Access path; writebacks complete silently).
	demandFn []func()

	ctr Counters
}

// NewController builds a controller with nBanks banks, bus frequency
// initially at busFreqMax (GHz).
func NewController(eng *engine.Engine, nBanks int, timing Timing, pcfg PowerConfig, busFreqMax float64) (*Controller, error) {
	if nBanks <= 0 {
		return nil, fmt.Errorf("memsim: need at least one bank, got %d", nBanks)
	}
	if busFreqMax <= 0 {
		return nil, fmt.Errorf("memsim: non-positive bus frequency %g", busFreqMax)
	}
	c := &Controller{
		eng:        eng,
		timing:     timing,
		power:      pcfg,
		busFreq:    busFreqMax,
		busFreqMax: busFreqMax,
		xferNs:     timing.BusCycles / busFreqMax,
		banks:      make([]bank, nBanks),
		busCur:     -1,
	}
	for i := range c.banks {
		bi := i
		c.banks[i].svcTimer = eng.NewTimer(func() { c.serviceDone(bi) })
	}
	c.busTimer = eng.NewTimer(c.busTransferDone)
	return c, nil
}

// Banks returns the number of banks behind this controller.
func (c *Controller) Banks() int { return len(c.banks) }

// BusFreq returns the current bus frequency in GHz.
func (c *Controller) BusFreq() float64 { return c.busFreq }

// SetBusFreq retargets the bus (and DIMM) clock. The transfer time of
// requests already on the bus is unaffected; queued requests see the new
// rate. The paper's PLL/DLL re-sync halt is tens of microseconds per
// multi-millisecond epoch and is accounted as negligible (§III-C).
func (c *Controller) SetBusFreq(ghz float64) {
	if ghz <= 0 {
		return
	}
	c.busFreq = ghz
	c.xferNs = c.timing.BusCycles / ghz
}

// TransferTime returns the current per-line bus occupancy s_b in ns.
func (c *Controller) TransferTime() float64 { return c.xferNs }

// MinTransferTime returns s̄_b, the transfer time at maximum frequency.
func (c *Controller) MinTransferTime() float64 { return c.timing.BusCycles / c.busFreqMax }

// Counters returns a snapshot of the monotone counters.
func (c *Controller) Counters() Counters { return c.ctr }

// RegisterDemand installs the completion callback for a core's demand
// reads submitted through Access. One callback per core, installed once
// at wiring time — the per-request Done closure of the boxed path is
// what this replaces on the hot path.
func (c *Controller) RegisterDemand(core int, fn func()) {
	for len(c.demandFn) <= core {
		c.demandFn = append(c.demandFn, nil)
	}
	c.demandFn[core] = fn
}

// alloc takes a free arena slot, growing the arena when the free list
// is empty.
func (c *Controller) alloc() int32 {
	if k := len(c.rFree) - 1; k >= 0 {
		s := c.rFree[k]
		c.rFree = c.rFree[:k]
		return s
	}
	s := int32(len(c.rq))
	c.rq = append(c.rq, req{})
	c.rDone = append(c.rDone, nil)
	return s
}

// Access enqueues one transaction at its bank without boxing: the hot
// path for cores. bank is reduced modulo the bank count so callers can
// use free-running bank cursors. Demand reads (writeback=false) notify
// the core's RegisterDemand callback when the transfer completes.
func (c *Controller) Access(core, bank int, row int32, writeback bool) {
	c.submit(core, bank, row, writeback)
}

// submit is Access returning the arena slot, so the boxed path can
// attach its callback.
func (c *Controller) submit(core, bank int, row int32, writeback bool) int32 {
	if uint(bank) >= uint(len(c.banks)) { // cores pass in-range banks; keep the div off the hot path
		bank %= len(c.banks)
		if bank < 0 {
			bank += len(c.banks)
		}
	}
	s := c.alloc()
	c.rq[s] = req{core: int32(core), bank: int32(bank), row: row, wb: writeback, arrive: c.eng.Now()}
	b := &c.banks[bank]
	b.queue.push(s)
	c.ctr.Arrivals++
	c.ctr.SumQ += float64(b.queue.len()) // includes the arriving request
	if writeback {
		c.ctr.Writebacks++
	} else {
		c.ctr.Reads++
	}
	if b.state == bankIdle {
		c.startService(bank)
	}
	return s
}

// Submit enqueues a boxed request, copying it into the arena. Request
// fields are read synchronously; the struct is not retained. Nothing
// fires synchronously from submit (service completes through a timer),
// so attaching Done after the fact is race-free.
func (c *Controller) Submit(r *Request) {
	s := c.submit(r.Core, r.Bank, r.Row, r.Writeback)
	c.rDone[s] = r.Done
}

// startService begins the bank access for the head of the bank queue.
func (c *Controller) startService(bi int) {
	b := &c.banks[bi]
	b.state = bankServing
	row := c.rq[b.queue.front()].row
	var svc float64
	switch {
	case b.hasOpen && b.openRow == row:
		svc = c.timing.TCL // row-buffer hit
		c.ctr.RowHits++
	case b.hasOpen:
		svc = c.timing.TRP + c.timing.TRCD + c.timing.TCL // conflict
	default:
		svc = c.timing.TRCD + c.timing.TCL // empty row buffer
	}
	b.openRow, b.hasOpen = row, true
	c.ctr.SvcSum += svc
	c.ctr.SvcCount++
	c.ctr.BankBusyNs += svc
	b.svcTimer.Reset(svc)
}

// serviceDone moves the finished request to the bus queue; the bank
// stays blocked until the transfer completes (transfer blocking).
func (c *Controller) serviceDone(bi int) {
	b := &c.banks[bi]
	b.state = bankBlocked
	s := b.queue.front()
	c.ctr.Departures++
	// Bus backlog seen by the departing request: waiters ahead of it,
	// any transfer in flight, and itself.
	u := float64(c.busQ.len()) + 1
	if c.busBusy {
		u++
	}
	c.ctr.SumU += u
	c.busQ.push(s)
	c.tryStartBus()
}

func (c *Controller) tryStartBus() {
	if c.busBusy || c.busQ.len() == 0 {
		return
	}
	s := c.busQ.pop()
	c.busBusy = true
	c.busCur = s
	sb := c.TransferTime()
	c.ctr.BusBusyNs += sb
	c.busTimer.Reset(sb)
}

// busTransferDone releases the bus, unblocks the request's bank,
// recycles the arena slot, and notifies the requesting core.
func (c *Controller) busTransferDone() {
	s := c.busCur
	c.busCur = -1
	c.busBusy = false
	r := c.rq[s]
	c.ctr.RespSumNs += c.eng.Now() - r.arrive
	c.ctr.RespCount++
	bi := int(r.bank)
	b := &c.banks[bi]
	b.queue.pop()
	b.state = bankIdle
	if b.queue.len() > 0 {
		c.startService(bi)
	}
	// Free the slot before notifying: the callback may submit again and
	// immediately reuse it; all fields were read out above.
	done := c.rDone[s]
	core, wb := int(r.core), r.wb
	c.rFree = append(c.rFree, s)
	if done != nil {
		c.rDone[s] = nil // demand-path slots stay nil: no write barrier there
		done()
	} else if !wb && core >= 0 && core < len(c.demandFn) {
		if fn := c.demandFn[core]; fn != nil {
			fn()
		}
	}
	c.tryStartBus()
}

// Power evaluates the measured memory power (W) over a window of length
// windowNs given the window's counter delta: static floor plus
// frequency-proportional clock-tree and transfer-activity terms.
func (c *Controller) Power(delta Counters, windowNs float64) float64 {
	if windowNs <= 0 {
		return c.power.StaticW
	}
	fNorm := c.busFreq / c.busFreqMax
	busUtil := delta.BusBusyNs / windowNs
	if busUtil > 1 {
		busUtil = 1
	}
	return c.power.StaticW + fNorm*(c.power.ClockW+c.power.TransferW*busUtil)
}

// PeakPower is the controller's maximum power draw: full frequency,
// saturated bus.
func (c *Controller) PeakPower() float64 {
	return c.power.StaticW + c.power.ClockW + c.power.TransferW
}

// StaticPower exposes the frequency-independent floor for the fitters.
func (c *Controller) StaticPower() float64 { return c.power.StaticW }

// QueuedRequests reports the total number of requests resident in the
// controller. A request stays in its bank queue from Submit until its
// bus transfer completes (the bus queue holds aliases, not extra
// requests), so the bank queues alone are the full population; used by
// tests to check request conservation.
func (c *Controller) QueuedRequests() int {
	n := 0
	for i := range c.banks {
		n += c.banks[i].queue.len()
	}
	return n
}
