package memsim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/engine"
)

// Row-locality streams should see mostly row hits; random streams mostly
// conflicts — and the hit fraction shows up in the mean service time.
func TestRowLocalityChangesServiceTime(t *testing.T) {
	run := func(local bool) (hitFrac, meanSvc float64) {
		eng := engine.New()
		c := newTestController(t, eng, 8)
		rng := rand.New(rand.NewSource(21))
		lastBank, lastRow := 0, int32(0)
		var issue func(n int)
		issue = func(n int) {
			if n == 0 {
				return
			}
			bank, row := lastBank, lastRow
			if !local || rng.Float64() > 0.85 {
				bank = rng.Intn(8)
				row = int32(rng.Intn(4096))
				lastBank, lastRow = bank, row
			}
			r := &Request{Bank: bank, Row: row}
			r.Done = func() { issue(n - 1) }
			c.Submit(r)
		}
		issue(4000)
		eng.RunUntil(5e8)
		ctr := c.Counters()
		return float64(ctr.RowHits) / float64(ctr.SvcCount), ctr.SvcSum / float64(ctr.SvcCount)
	}
	hitLocal, svcLocal := run(true)
	hitRand, svcRand := run(false)
	if hitLocal < 0.7 {
		t.Errorf("local stream hit fraction %g, want ≥0.7", hitLocal)
	}
	if hitRand > 0.2 {
		t.Errorf("random stream hit fraction %g, want ≤0.2", hitRand)
	}
	if svcLocal >= svcRand {
		t.Errorf("local service %g ns not below random %g ns", svcLocal, svcRand)
	}
	// Bounds: pure hits = tCL (15), pure conflicts = 45.
	if svcLocal < 15 || svcRand > 45 {
		t.Errorf("service times outside DDR3 envelope: %g, %g", svcLocal, svcRand)
	}
}

// Banks serve in parallel: K banks with independent streams should
// complete ~K× the work of one bank over the same horizon (bus not
// saturated).
func TestBankLevelParallelism(t *testing.T) {
	run := func(banks int) int64 {
		eng := engine.New()
		c := newTestController(t, eng, banks)
		for b := 0; b < banks; b++ {
			b := b
			var issue func()
			issue = func() {
				r := &Request{Bank: b, Row: 1} // same row: pure hits
				r.Done = func() { issue() }
				c.Submit(r)
			}
			issue()
		}
		eng.RunUntil(1e6)
		return c.Counters().Departures
	}
	one := run(1)
	four := run(4)
	ratio := float64(four) / float64(one)
	if ratio < 3.0 {
		t.Errorf("4-bank throughput only %.2f× of 1-bank", ratio)
	}
}

// Slowing the bus by 4× must slow a bus-bound workload by ~4×.
func TestBusFrequencyThroughputScaling(t *testing.T) {
	run := func(freq float64) int64 {
		eng := engine.New()
		c, err := NewController(eng, 32, DDR3(), DefaultPower(), 0.8)
		if err != nil {
			t.Fatal(err)
		}
		c.SetBusFreq(freq)
		rng := rand.New(rand.NewSource(5))
		// Many concurrent streams saturate the bus.
		for k := 0; k < 64; k++ {
			var issue func()
			issue = func() {
				r := &Request{Bank: rng.Intn(32), Row: int32(rng.Intn(64))}
				r.Done = func() { issue() }
				c.Submit(r)
			}
			issue()
		}
		eng.RunUntil(2e6)
		return c.Counters().Departures
	}
	fast := run(0.8)
	slow := run(0.2)
	ratio := float64(fast) / float64(slow)
	if math.Abs(ratio-4) > 0.8 {
		t.Errorf("bus 4× frequency gave %.2f× throughput, want ≈4×", ratio)
	}
}

// The measured mean response equals RespSum/RespCount and is consistent
// with per-request accounting.
func TestMeasuredResponse(t *testing.T) {
	eng := engine.New()
	c := newTestController(t, eng, 4)
	c.Submit(&Request{Bank: 0, Row: 1})
	eng.RunUntil(1000)
	delta := c.Counters()
	// One request: activate+read 30 + transfer 5 = 35 ns.
	if got := delta.MeasuredResponseNs(); math.Abs(got-35) > 1e-9 {
		t.Errorf("measured response %g, want 35", got)
	}
	if (Counters{}).MeasuredResponseNs() != 0 {
		t.Error("idle window response not 0")
	}
}
