package sim

import (
	"testing"

	"repro/internal/cpusim"
	"repro/internal/dvfs"
	"repro/internal/workload"
)

func bigLittle8() Config {
	cfg := DefaultConfig(8)
	cfg.EpochNs = 5e5
	cfg.ProfileNs = 5e4
	cfg.Machine = &MachineSpec{
		Name: "bl",
		Classes: []CoreClass{
			{Name: "big", Count: 4},
			{Name: "little", Count: 4,
				Ladder:       dvfs.EfficiencyCoreLadder(),
				Power:        cpusim.PowerConfig{DynMaxW: 1.5, StaticW: 0.2, GateFrac: 0.12},
				ExecCPIScale: 1.25},
		},
	}
	return cfg
}

func TestLayoutResolution(t *testing.T) {
	// Legacy config: uniform, inherits the config ladder and power.
	legacy := DefaultConfig(4)
	l, err := legacy.Layout()
	if err != nil {
		t.Fatal(err)
	}
	if l.Uniform() != legacy.CoreLadder || l.Ladders() != nil {
		t.Error("legacy layout is not uniform on the config ladder")
	}
	if l.Power(3) != legacy.CorePower || l.ExecCPIScale(0) != 1 {
		t.Error("legacy layout does not inherit config power / unit CPI scale")
	}

	// Heterogeneous config: per-core resolution in class order.
	cfg := bigLittle8()
	l, err = cfg.Layout()
	if err != nil {
		t.Fatal(err)
	}
	if l.Uniform() != nil || l.Ladders() == nil {
		t.Fatal("big.LITTLE layout claims to be uniform")
	}
	for i := 0; i < 4; i++ {
		if l.Ladder(i) != cfg.CoreLadder || l.Class(i) != "big" || l.ExecCPIScale(i) != 1 {
			t.Errorf("core %d not resolved as a big core", i)
		}
		if l.Ladder(4+i).Max() != 2.4 || l.Class(4+i) != "little" || l.ExecCPIScale(4+i) != 1.25 {
			t.Errorf("core %d not resolved as a little core", 4+i)
		}
		if l.Power(4+i).DynMaxW != 1.5 {
			t.Errorf("little core %d power not applied", 4+i)
		}
	}

	// A single class with its own ladder still collapses to uniform.
	one := DefaultConfig(4)
	one.Machine = &MachineSpec{Name: "flat", Classes: []CoreClass{{Name: "all", Count: 4, Ladder: dvfs.BinnedCoreLadder()}}}
	l, err = one.Layout()
	if err != nil {
		t.Fatal(err)
	}
	if l.Uniform() == nil || l.Uniform().Max() != 3.6 {
		t.Error("single-class machine did not collapse to its class ladder")
	}
}

// Fingerprints identify machines by content: structurally different
// specs must differ even with colliding (or empty) names, and equal
// specs must agree.
func TestMachineSpecFingerprint(t *testing.T) {
	mk := func(littleDyn float64) *MachineSpec {
		return &MachineSpec{Classes: []CoreClass{
			{Name: "big", Count: 4},
			{Name: "little", Count: 4, Ladder: dvfs.EfficiencyCoreLadder(),
				Power: cpusim.PowerConfig{DynMaxW: littleDyn, StaticW: 0.2, GateFrac: 0.12}},
		}}
	}
	if mk(1.5).Fingerprint() != mk(1.5).Fingerprint() {
		t.Error("equal unnamed specs fingerprint differently")
	}
	if mk(1.5).Fingerprint() == mk(2.5).Fingerprint() {
		t.Error("different power calibrations share a fingerprint")
	}
	a := mk(1.5)
	b := mk(1.5)
	b.Classes[1].Ladder = dvfs.BinnedCoreLadder()
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("different ladders share a fingerprint")
	}
	c := mk(1.5)
	c.Classes[1].Apps = []string{"swim"}
	c.Classes[0].Apps = []string{"crafty"}
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different placements share a fingerprint")
	}
}

// The built system enforces each core's own ladder bounds in Apply and
// folds class power into the peak.
func TestHeteroSystemApplyAndPeak(t *testing.T) {
	cfg := bigLittle8()
	wl, err := workload.Instantiate(workload.TableIII[14], cfg.Cores) // MIX3
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	steps := []int{9, 9, 9, 9, 7, 7, 7, 7}
	if err := sys.Apply(steps, 0); err != nil {
		t.Fatalf("valid per-class steps rejected: %v", err)
	}
	// Step 9 is valid on the 10-step big ladder but not on the 8-step
	// little ladder.
	steps[4] = 9
	if err := sys.Apply(steps, 0); err == nil {
		t.Error("little-core step beyond its own ladder accepted")
	}

	// Peak power must reflect the little cores' lower calibration: it
	// sits strictly below the same machine built homogeneous.
	hom := cfg
	hom.Machine = nil
	homSys, err := New(hom, wl)
	if err != nil {
		t.Fatal(err)
	}
	if sys.PeakPowerW() >= homSys.PeakPowerW() {
		t.Errorf("big.LITTLE peak %.1f W not below homogeneous peak %.1f W", sys.PeakPowerW(), homSys.PeakPowerW())
	}
}

// ExecCPIScale slows the class's cores: with everything else equal, a
// scaled class retires fewer instructions over the same window.
func TestExecCPIScaleSlowsClass(t *testing.T) {
	run := func(scale float64) float64 {
		cfg := DefaultConfig(4)
		cfg.EpochNs = 5e5
		cfg.ProfileNs = 5e4
		cfg.Machine = &MachineSpec{Name: "s", Classes: []CoreClass{{Name: "all", Count: 4, ExecCPIScale: scale}}}
		wl, err := workload.Instantiate(workload.TableIII[0], 4)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := New(cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		sys.Start()
		sys.RunProfile()
		p := sys.FinishEpoch()
		total := 0.0
		for _, c := range p.Cores {
			total += c.Counters.Instructions
		}
		return total
	}
	fast, slow := run(1), run(2)
	if slow >= fast {
		t.Errorf("ExecCPIScale 2 retired %.0f instructions, want fewer than %.0f", slow, fast)
	}
}
