package sim

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func mustWorkload(t *testing.T, mix string, n int) *workload.Workload {
	t.Helper()
	spec, err := workload.MixByName(mix)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.Instantiate(spec, n)
	if err != nil {
		t.Fatal(err)
	}
	return wl
}

// smallConfig shrinks the epoch so tests run fast.
func smallConfig(n int) Config {
	cfg := DefaultConfig(n)
	cfg.EpochNs = 1e6   // 1 ms
	cfg.ProfileNs = 1e5 // 100 µs
	return cfg
}

func TestNewValidation(t *testing.T) {
	wl := mustWorkload(t, "MID1", 4)
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero cores", func(c *Config) { c.Cores = 0 }},
		{"mismatched workload", func(c *Config) { c.Cores = 8 }},
		{"no controllers", func(c *Config) { c.Controllers = 0 }},
		{"profile ≥ epoch", func(c *Config) { c.ProfileNs = c.EpochNs }},
		{"zero epoch", func(c *Config) { c.EpochNs = 0 }},
		{"nil ladder", func(c *Config) { c.CoreLadder = nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallConfig(4)
			tc.mut(&cfg)
			if _, err := New(cfg, wl); err == nil {
				t.Error("bad config accepted")
			}
		})
	}
}

func TestDefaultConfigScalesWithCores(t *testing.T) {
	c16 := DefaultConfig(16)
	c64 := DefaultConfig(64)
	if c16.BanksPerController != 32 || c64.BanksPerController != 64 {
		t.Errorf("banks: 16-core=%d 64-core=%d", c16.BanksPerController, c64.BanksPerController)
	}
	if c64.MemPower.StaticW != 2*c16.MemPower.StaticW {
		t.Error("64-core memory power not doubled (8 channels)")
	}
}

func TestEpochProtocolAndCounters(t *testing.T) {
	wl := mustWorkload(t, "MID1", 4)
	cfg := smallConfig(4)
	sys, err := New(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()

	prof := sys.RunProfile()
	if prof.WindowNs != cfg.ProfileNs {
		t.Errorf("profile window %g, want %g", prof.WindowNs, cfg.ProfileNs)
	}
	if len(prof.Cores) != 4 || len(prof.Mem) != 1 {
		t.Fatalf("profile shape: %d cores %d mem", len(prof.Cores), len(prof.Mem))
	}
	for i, cp := range prof.Cores {
		if cp.Counters.Instructions <= 0 {
			t.Errorf("core %d made no progress", i)
		}
		if cp.ZBarNs <= 0 {
			t.Errorf("core %d has no think-time estimate", i)
		}
		if cp.FreqGHz != 4.0 {
			t.Errorf("core %d not at max frequency initially", i)
		}
		if cp.PowerW <= 0 {
			t.Errorf("core %d power %g", i, cp.PowerW)
		}
		if cp.IPA <= 0 {
			t.Errorf("core %d IPA %g", i, cp.IPA)
		}
	}
	if !prof.Mem[0].Stats.Valid() {
		t.Errorf("invalid mem stats: %+v", prof.Mem[0].Stats)
	}

	// Apply a lower operating point and finish the epoch.
	if err := sys.Apply([]int{0, 0, 0, 0}, 0); err != nil {
		t.Fatal(err)
	}
	rest := sys.FinishEpoch()
	if rest.WindowNs != cfg.EpochNs-cfg.ProfileNs {
		t.Errorf("rest window %g", rest.WindowNs)
	}
	if sys.Epoch() != 1 {
		t.Errorf("epoch = %d, want 1", sys.Epoch())
	}
	// Lower frequencies → lower power in the rest window than profile.
	if rest.TotalPowerW >= prof.TotalPowerW {
		t.Errorf("power did not drop after throttling: %g → %g", prof.TotalPowerW, rest.TotalPowerW)
	}
	combined := sys.CombinePower(prof, rest)
	lo, hi := math.Min(prof.TotalPowerW, rest.TotalPowerW), math.Max(prof.TotalPowerW, rest.TotalPowerW)
	if combined < lo || combined > hi {
		t.Errorf("combined power %g outside [%g, %g]", combined, lo, hi)
	}
}

func TestApplyValidation(t *testing.T) {
	wl := mustWorkload(t, "MID1", 4)
	sys, err := New(smallConfig(4), wl)
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	if err := sys.Apply([]int{0, 0}, 0); err == nil {
		t.Error("short steps accepted")
	}
	if err := sys.Apply([]int{0, 0, 0, 99}, 0); err == nil {
		t.Error("out-of-range core step accepted")
	}
	if err := sys.Apply([]int{0, 0, 0, 0}, -1); err == nil {
		t.Error("negative mem step accepted")
	}
}

func TestPeakPowerCalibration(t *testing.T) {
	// Paper: ~120 W at 16 cores, ~60 W at 4, ~210 W at 32, ~375 W at 64.
	wants := map[int]struct{ lo, hi float64 }{
		4:  {53, 75},
		16: {106, 134},
		32: {180, 240},
		64: {330, 420},
	}
	for n, want := range wants {
		var mixName string
		if n == 4 {
			mixName = "MIX1"
		} else {
			mixName = "MIX1"
		}
		wl := mustWorkload(t, mixName, n)
		sys, err := New(DefaultConfig(n), wl)
		if err != nil {
			t.Fatal(err)
		}
		got := sys.PeakPowerW()
		if got < want.lo || got > want.hi {
			t.Errorf("%d cores: peak %g W outside [%g, %g]", n, got, want.lo, want.hi)
		}
	}
}

func TestMemFrequencyPlumbing(t *testing.T) {
	wl := mustWorkload(t, "MEM1", 4)
	sys, err := New(smallConfig(4), wl)
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	if got := sys.MemFreqGHz(); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("initial mem freq %g", got)
	}
	if got := sys.SbBarNs(); math.Abs(got-5.0) > 1e-9 {
		t.Errorf("SbBar = %g, want 5", got)
	}
	sys.RunProfile()
	if err := sys.Apply([]int{9, 9, 9, 9}, 0); err != nil {
		t.Fatal(err)
	}
	if got := sys.MemFreqGHz(); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("mem freq after Apply = %g, want 0.2", got)
	}
}

func TestSkewedAccessDistribution(t *testing.T) {
	wl := mustWorkload(t, "MEM1", 8)
	cfg := smallConfig(8)
	cfg.Controllers = 4
	cfg.BanksPerController = 8
	cfg.SkewedAccess = true
	sys, err := New(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	probs := sys.AccessProb()
	for i, row := range probs {
		sum := 0.0
		for _, p := range row {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("core %d probs sum %g", i, sum)
		}
		if row[i%4] != 0.85 {
			t.Errorf("core %d home prob %g, want 0.85", i, row[i%4])
		}
	}
	// Run a little and verify home controllers dominate.
	sys.Start()
	sys.RunProfile()
	prof := sys.FinishEpoch()
	tot := int64(0)
	for _, mp := range prof.Mem {
		tot += mp.Counters.Arrivals
	}
	if tot == 0 {
		t.Fatal("no memory traffic")
	}
}

func TestUniformMultiController(t *testing.T) {
	wl := mustWorkload(t, "MEM1", 8)
	cfg := smallConfig(8)
	cfg.Controllers = 4
	cfg.BanksPerController = 8
	sys, err := New(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	sys.RunProfile()
	rest := sys.FinishEpoch()
	// Traffic should spread across all four controllers roughly evenly.
	var min, max int64 = 1 << 62, 0
	for _, mp := range rest.Mem {
		if mp.Counters.Arrivals < min {
			min = mp.Counters.Arrivals
		}
		if mp.Counters.Arrivals > max {
			max = mp.Counters.Arrivals
		}
	}
	if min == 0 || float64(max)/float64(min) > 2.0 {
		t.Errorf("controller imbalance under uniform access: min=%d max=%d", min, max)
	}
}

func TestPhasesAdvanceEachEpoch(t *testing.T) {
	wl := mustWorkload(t, "MIX3", 4)
	cfg := smallConfig(4)
	sys, err := New(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	// Collect per-epoch miss intensity over several epochs; phase drift
	// must change it measurably for a phased app.
	var mpkis []float64
	for e := 0; e < 12; e++ {
		sys.RunProfile()
		rest := sys.FinishEpoch()
		c := rest.Cores[0].Counters // equake: PhaseAmp 0.25
		if c.Instructions > 0 {
			mpkis = append(mpkis, float64(c.Misses)/c.Instructions*1000)
		}
	}
	if len(mpkis) < 10 {
		t.Fatal("not enough epochs measured")
	}
	min, max := mpkis[0], mpkis[0]
	for _, v := range mpkis {
		min, max = math.Min(min, v), math.Max(max, v)
	}
	if (max-min)/min < 0.05 {
		t.Errorf("no phase variation visible: MPKI range [%g, %g]", min, max)
	}
}

func TestMeasuredMPKIMatchesTableIII(t *testing.T) {
	// End-to-end: simulator-measured workload MPKI tracks Table III.
	for _, mixName := range []string{"ILP1", "MID2", "MEM2"} {
		spec, _ := workload.MixByName(mixName)
		wl := mustWorkload(t, mixName, 4)
		cfg := smallConfig(4)
		cfg.EpochNs = 4e6
		sys, err := New(cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		sys.Start()
		sys.RunProfile()
		rest := sys.FinishEpoch()
		var instr, misses float64
		for _, cp := range rest.Cores {
			instr += cp.Counters.Instructions
			misses += float64(cp.Counters.Misses)
		}
		got := misses / instr * 1000
		// Phases modulate intensity ±amp; allow 30%.
		if math.Abs(got-spec.MPKI)/spec.MPKI > 0.30 {
			t.Errorf("%s: simulated MPKI %g vs table %g", mixName, got, spec.MPKI)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (float64, float64) {
		wl := mustWorkload(t, "MIX4", 4)
		sys, err := New(smallConfig(4), wl)
		if err != nil {
			t.Fatal(err)
		}
		sys.Start()
		p := sys.RunProfile()
		sys.Apply([]int{3, 3, 3, 3}, 4)
		r := sys.FinishEpoch()
		return p.TotalPowerW, r.Cores[2].Counters.Instructions
	}
	p1, i1 := run()
	p2, i2 := run()
	if p1 != p2 || i1 != i2 {
		t.Errorf("runs diverged: (%g,%g) vs (%g,%g)", p1, i1, p2, i2)
	}
}
