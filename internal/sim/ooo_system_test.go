package sim

import (
	"math"
	"testing"
)

// End-to-end OoO: memory-bound workloads retire more instructions per
// epoch than in-order at the same frequencies (memory-level parallelism),
// while CPU-bound workloads are unchanged.
func TestOoOSpeedsUpMemoryBound(t *testing.T) {
	run := func(mix string, ooo bool) float64 {
		wl := mustWorkload(t, mix, 4)
		cfg := smallConfig(4)
		cfg.OoO = ooo
		sys, err := New(cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		sys.Start()
		sys.RunProfile()
		rest := sys.FinishEpoch()
		total := 0.0
		for _, cp := range rest.Cores {
			total += cp.Counters.Instructions
		}
		return total
	}
	memIn := run("MEM1", false)
	memOoO := run("MEM1", true)
	if memOoO < memIn*1.15 {
		t.Errorf("OoO MEM1 %.0f instr vs in-order %.0f: want ≥1.15×", memOoO, memIn)
	}
	ilpIn := run("ILP2", false)
	ilpOoO := run("ILP2", true)
	if math.Abs(ilpOoO-ilpIn)/ilpIn > 0.02 {
		t.Errorf("OoO changed ILP2 throughput: %.0f vs %.0f", ilpOoO, ilpIn)
	}
}

// Memory-bound workloads drive higher utilization in OoO mode — the
// paper's observation that cores and memory "become more highly
// utilized".
func TestOoOIncreasesMemoryUtilization(t *testing.T) {
	busBusy := func(ooo bool) float64 {
		wl := mustWorkload(t, "MEM1", 4)
		cfg := smallConfig(4)
		cfg.OoO = ooo
		sys, err := New(cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		sys.Start()
		sys.RunProfile()
		rest := sys.FinishEpoch()
		return rest.Mem[0].Counters.BusBusyNs
	}
	inOrder := busBusy(false)
	ooo := busBusy(true)
	if ooo <= inOrder {
		t.Errorf("OoO bus busy %g not above in-order %g", ooo, inOrder)
	}
}

// The profiling window and rest-of-epoch window partition the epoch: the
// per-core instruction counters across both must equal a full-epoch run
// at the same operating point.
func TestWindowsPartitionEpoch(t *testing.T) {
	wl := mustWorkload(t, "MID3", 4)
	cfg := smallConfig(4)
	sys, err := New(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	prof := sys.RunProfile()
	rest := sys.FinishEpoch()
	if got := prof.WindowNs + rest.WindowNs; math.Abs(got-cfg.EpochNs) > 1e-9 {
		t.Errorf("windows sum to %g, want epoch %g", got, cfg.EpochNs)
	}
	for i := range prof.Cores {
		a := prof.Cores[i].Counters.Instructions
		b := rest.Cores[i].Counters.Instructions
		if a <= 0 || b <= 0 {
			t.Errorf("core %d: empty window (%g, %g)", i, a, b)
		}
		// The rest window is 9× longer: instruction counts should scale
		// roughly with window length for a steady workload.
		if b < 4*a {
			t.Errorf("core %d: rest window %g instr vs profile %g — not proportional", i, b, a)
		}
	}
}
