package sim

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/cpusim"
	"repro/internal/dvfs"
	"repro/internal/workload"
)

// CoreClass describes one named group of identical cores inside a
// heterogeneous machine: its own DVFS ladder, power calibration,
// microarchitectural speed factor, and (optionally) which applications
// its cores run. Zero-valued optional fields inherit the machine-wide
// defaults from Config (CoreLadder / CorePower).
type CoreClass struct {
	// Name labels the class in errors and reports ("big", "little",
	// "fast-bin", ...). Required, unique within a spec.
	Name string
	// Count is how many cores belong to the class. Classes occupy
	// contiguous core indices in spec order: class 0 owns cores
	// [0, Count0), class 1 the next Count1, and so on.
	Count int
	// Ladder is the class's core DVFS ladder; nil inherits
	// Config.CoreLadder.
	Ladder *dvfs.Ladder
	// Power is the class's power calibration; a zero value inherits
	// Config.CorePower.
	Power cpusim.PowerConfig
	// ExecCPIScale multiplies each application's ExecCPI on this class's
	// cores — the microarchitectural speed difference beyond frequency
	// (a little core retires fewer instructions per cycle). 0 means 1.
	ExecCPIScale float64
	// Apps optionally pins applications to this class's cores. When set,
	// the class's cores run these apps in order, cycling when Count is a
	// multiple of len(Apps). Either every class sets Apps (explicit
	// placement; the run's workload mix is ignored) or none does (the
	// mix's N/4 layout fills all cores, exactly as on a homogeneous
	// machine).
	Apps []string
}

// MachineSpec is a machine built from named core classes — the
// first-class description of asymmetric (big.LITTLE, binned-core)
// many-core parts. A nil spec in Config means the legacy homogeneous
// machine: every core on Config.CoreLadder with Config.CorePower.
type MachineSpec struct {
	// Name labels the machine in results and reports.
	Name string
	// Classes in core-index order; counts must sum to Config.Cores.
	Classes []CoreClass
}

// TotalCores sums the class counts.
func (m *MachineSpec) TotalCores() int {
	n := 0
	for _, c := range m.Classes {
		n += c.Count
	}
	return n
}

// Validate checks the spec's internal consistency against a core count.
// Ladder and power inheritance is resolved by Config.Layout, so nil
// ladders and zero power configs are valid here.
func (m *MachineSpec) Validate(cores int) error {
	if len(m.Classes) == 0 {
		return fmt.Errorf("sim: machine spec %q has no core classes", m.Name)
	}
	seen := map[string]bool{}
	placed := 0
	for ci, c := range m.Classes {
		if c.Name == "" {
			return fmt.Errorf("sim: machine spec %q class %d has no name", m.Name, ci)
		}
		if seen[c.Name] {
			return fmt.Errorf("sim: machine spec %q repeats class name %q", m.Name, c.Name)
		}
		seen[c.Name] = true
		if c.Count <= 0 {
			return fmt.Errorf("sim: class %q has core count %d, want > 0", c.Name, c.Count)
		}
		if c.Ladder != nil {
			if err := c.Ladder.Validate(); err != nil {
				return fmt.Errorf("sim: class %q ladder: %w", c.Name, err)
			}
		}
		if math.IsNaN(c.ExecCPIScale) || c.ExecCPIScale < 0 {
			return fmt.Errorf("sim: class %q ExecCPI scale %g, want >= 0 (0 means 1)", c.Name, c.ExecCPIScale)
		}
		for _, v := range []float64{c.Power.DynMaxW, c.Power.StaticW, c.Power.GateFrac} {
			if math.IsNaN(v) || v < 0 {
				return fmt.Errorf("sim: class %q has invalid power calibration", c.Name)
			}
		}
		if len(c.Apps) > 0 {
			if c.Count%len(c.Apps) != 0 {
				return fmt.Errorf("sim: class %q places %d apps on %d cores (count must be a multiple)", c.Name, len(c.Apps), c.Count)
			}
			placed++
		}
	}
	if placed != 0 && placed != len(m.Classes) {
		return fmt.Errorf("sim: machine spec %q places apps on %d of %d classes (all or none)", m.Name, placed, len(m.Classes))
	}
	if n := m.TotalCores(); n != cores {
		return fmt.Errorf("sim: machine spec %q describes %d cores for a %d-core config", m.Name, n, cores)
	}
	return nil
}

// Fingerprint returns a canonical content string of the spec — class
// counts, ladders (frequencies and voltages), power calibrations, CPI
// scales and placements. Caches must key on this rather than Name:
// names are labels, not identities, and may be empty or collide across
// structurally different machines.
func (m *MachineSpec) Fingerprint() string {
	var b strings.Builder
	b.WriteString(m.Name)
	for _, c := range m.Classes {
		fmt.Fprintf(&b, "|%s:%d:cpi%g:pw%g,%g,%g", c.Name, c.Count, c.ExecCPIScale,
			c.Power.DynMaxW, c.Power.StaticW, c.Power.GateFrac)
		if c.Ladder != nil {
			fmt.Fprintf(&b, ":f%v:v%v", c.Ladder.Freqs(), c.Ladder.Volts())
		}
		if len(c.Apps) > 0 {
			fmt.Fprintf(&b, ":apps%v", c.Apps)
		}
	}
	return b.String()
}

// MachineLayout is the per-core resolution of a Config's machine
// description: one ladder, power calibration and ExecCPI scale per
// core, with defaults inherited and class groups flattened. It is the
// seam every layer consumes — the simulator to build cores, the runner
// to size its controller state, the policies via the snapshot.
type MachineLayout struct {
	ladders  []*dvfs.Ladder
	powers   []cpusim.PowerConfig
	cpiScale []float64
	// uniform is non-nil iff every core shares one ladder — the
	// homogeneous fast path policies key their exact legacy code on.
	uniform *dvfs.Ladder
	// apps is the explicit per-core placement, nil when the workload mix
	// supplies the layout.
	apps []string
	// classOf[i] names core i's class ("" for the legacy machine).
	classOf []string
}

// Layout resolves the config's machine description to per-core terms.
// A nil Machine yields the homogeneous layout (every core on
// Config.CoreLadder with Config.CorePower); a non-nil one is validated
// against Config.Cores first.
func (c Config) Layout() (*MachineLayout, error) {
	n := c.Cores
	if n <= 0 {
		return nil, fmt.Errorf("sim: no cores")
	}
	l := &MachineLayout{
		ladders:  make([]*dvfs.Ladder, n),
		powers:   make([]cpusim.PowerConfig, n),
		cpiScale: make([]float64, n),
		classOf:  make([]string, n),
	}
	if c.Machine == nil {
		if c.CoreLadder == nil {
			return nil, fmt.Errorf("sim: missing core DVFS ladder")
		}
		for i := 0; i < n; i++ {
			l.ladders[i] = c.CoreLadder
			l.powers[i] = c.CorePower
			l.cpiScale[i] = 1
		}
		l.uniform = c.CoreLadder
		return l, nil
	}
	if err := c.Machine.Validate(n); err != nil {
		return nil, err
	}
	var placement []string
	core := 0
	for _, cl := range c.Machine.Classes {
		ladder := cl.Ladder
		if ladder == nil {
			ladder = c.CoreLadder
		}
		if ladder == nil {
			return nil, fmt.Errorf("sim: class %q has no ladder and the config has no default", cl.Name)
		}
		pw := cl.Power
		if pw == (cpusim.PowerConfig{}) {
			pw = c.CorePower
		}
		scale := cl.ExecCPIScale
		if scale == 0 {
			scale = 1
		}
		for k := 0; k < cl.Count; k++ {
			l.ladders[core] = ladder
			l.powers[core] = pw
			l.cpiScale[core] = scale
			l.classOf[core] = cl.Name
			if len(cl.Apps) > 0 {
				placement = append(placement, cl.Apps[k%len(cl.Apps)])
			}
			core++
		}
	}
	l.apps = placement
	l.uniform = l.ladders[0]
	for _, lad := range l.ladders[1:] {
		if lad != l.uniform {
			l.uniform = nil
			break
		}
	}
	return l, nil
}

// Ladder returns core i's DVFS ladder.
func (l *MachineLayout) Ladder(i int) *dvfs.Ladder { return l.ladders[i] }

// Ladders returns the per-core ladder slice when the machine is
// heterogeneous, and nil when every core shares one ladder — exactly
// the shape policy.Snapshot.CoreLadders expects, so the homogeneous
// path keeps its bit-identical legacy computation.
func (l *MachineLayout) Ladders() []*dvfs.Ladder {
	if l.uniform != nil {
		return nil
	}
	return l.ladders
}

// Uniform returns the single shared ladder, or nil for a machine with
// mixed ladders.
func (l *MachineLayout) Uniform() *dvfs.Ladder { return l.uniform }

// Power returns core i's power calibration.
func (l *MachineLayout) Power(i int) cpusim.PowerConfig { return l.powers[i] }

// ExecCPIScale returns core i's microarchitectural CPI factor.
func (l *MachineLayout) ExecCPIScale(i int) float64 { return l.cpiScale[i] }

// Class returns core i's class name ("" on a legacy machine).
func (l *MachineLayout) Class(i int) string { return l.classOf[i] }

// Placement returns the explicit per-core application list, or nil
// when the workload mix supplies the layout.
func (l *MachineLayout) Placement() []string { return l.apps }

// Workload instantiates the machine's workload: the explicit placement
// when the spec pins apps to classes, otherwise the mix's N/4 layout.
func (l *MachineLayout) Workload(mix workload.MixSpec, name string, cores int) (*workload.Workload, error) {
	if l.apps != nil {
		if name == "" {
			name = "placement"
		}
		return workload.InstantiatePlacement(name, l.apps)
	}
	return workload.Instantiate(mix, cores)
}
