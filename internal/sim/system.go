// Package sim assembles the full many-core system simulator: N cores
// (cpusim) attached to one or more memory controllers (memsim) under a
// single discrete-event engine, with the epoch/profiling protocol of the
// FastCap paper's §III-C — each epoch starts with a 300 µs profiling
// window whose counters feed the capping policy, after which new DVFS
// settings apply for the remainder of the epoch.
package sim

import (
	"fmt"

	"repro/internal/cpusim"
	"repro/internal/dvfs"
	"repro/internal/engine"
	"repro/internal/memsim"
	"repro/internal/qmodel"
	"repro/internal/workload"
)

// Config describes a machine, defaulting to the paper's Table II system.
type Config struct {
	Cores       int
	OoO         bool
	Controllers int
	// BanksPerController is the number of DRAM banks behind each
	// controller (channels × banks folded together).
	BanksPerController int
	// SkewedAccess routes 85% of each core's traffic to its home
	// controller (i mod K) instead of uniformly (§IV-B skewed study).
	SkewedAccess bool

	CoreLadder *dvfs.Ladder
	MemLadder  *dvfs.Ladder

	// Machine, when non-nil, describes a heterogeneous machine of named
	// core classes (per-class ladders, power curves, ExecCPI scaling and
	// app placement). Class counts must sum to Cores. Nil keeps the
	// legacy homogeneous machine: every core on CoreLadder/CorePower.
	Machine *MachineSpec

	EpochNs   float64
	ProfileNs float64

	// PhaseSchedule, when non-empty, scales every app's per-epoch phase
	// multiplier by a step function of the epoch index — diurnal load,
	// batch-window surges and other mid-run intensity changes the
	// per-app sinusoidal drift cannot express. Nil keeps runs
	// byte-identical to builds without the field.
	PhaseSchedule workload.PhaseSchedule

	CorePower cpusim.PowerConfig
	MemPower  memsim.PowerConfig
	// PsW is the frequency-independent power of everything else (disks,
	// NICs, L2, ...): a fixed 10 W in the paper.
	PsW float64

	Timing memsim.Timing
	Seed   int64
}

// DefaultConfig mirrors the paper's evaluation platform for n cores:
// 4 DDR3 channels (32 banks) for up to 32 cores, 8 channels (64 banks)
// for more; one memory controller; 5 ms epochs with 300 µs profiling.
func DefaultConfig(n int) Config {
	banks := 32
	memPower := memsim.DefaultPower()
	if n > 32 {
		banks = 64
		// Twice the channels: dynamic and static memory power double.
		memPower = memsim.PowerConfig{
			StaticW:   memPower.StaticW * 2,
			ClockW:    memPower.ClockW * 2,
			TransferW: memPower.TransferW * 2,
		}
	}
	return Config{
		Cores:              n,
		Controllers:        1,
		BanksPerController: banks,
		CoreLadder:         dvfs.DefaultCoreLadder(),
		MemLadder:          dvfs.DefaultMemLadder(),
		EpochNs:            5e6,
		ProfileNs:          3e5,
		CorePower:          cpusim.DefaultPower(),
		MemPower:           memPower,
		PsW:                10,
		Timing:             memsim.DDR3(),
		Seed:               1,
	}
}

// System is an instantiated machine running one workload.
type System struct {
	Cfg Config
	Eng *engine.Engine

	Cores []*cpusim.Core
	Ctls  []*memsim.Controller

	Workload *workload.Workload

	accessProb [][]float64
	layout     *MachineLayout
	epoch      int

	lastCore []cpusim.Counters
	lastMem  []memsim.Counters

	// profBuf and restBuf back the Profiles returned by RunProfile and
	// FinishEpoch. Each is valid until the next call of the same method,
	// which is exactly the epoch protocol the runner follows; reusing
	// them removes two slice allocations per window per epoch.
	profBuf Profile
	restBuf Profile
}

// New builds a system for the given workload; len(wl.Apps) must equal
// cfg.Cores.
func New(cfg Config, wl *workload.Workload) (*System, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("sim: no cores")
	}
	if len(wl.Apps) != cfg.Cores {
		return nil, fmt.Errorf("sim: workload has %d apps for %d cores", len(wl.Apps), cfg.Cores)
	}
	if cfg.Controllers <= 0 {
		return nil, fmt.Errorf("sim: no memory controllers")
	}
	if cfg.EpochNs <= 0 || cfg.ProfileNs <= 0 || cfg.ProfileNs >= cfg.EpochNs {
		return nil, fmt.Errorf("sim: invalid epoch/profile lengths %g/%g", cfg.EpochNs, cfg.ProfileNs)
	}
	if cfg.MemLadder == nil {
		return nil, fmt.Errorf("sim: missing memory DVFS ladder")
	}
	if err := cfg.PhaseSchedule.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	layout, err := cfg.Layout()
	if err != nil {
		return nil, err
	}
	eng := engine.New()
	s := &System{Cfg: cfg, Eng: eng, Workload: wl, layout: layout}

	banks := cfg.BanksPerController
	if banks <= 0 {
		banks = 32
	}
	for k := 0; k < cfg.Controllers; k++ {
		ctl, err := memsim.NewController(eng, banks, cfg.Timing, cfg.MemPower, cfg.MemLadder.Max())
		if err != nil {
			return nil, err
		}
		s.Ctls = append(s.Ctls, ctl)
	}

	s.accessProb = make([][]float64, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		probs := make([]float64, cfg.Controllers)
		if cfg.Controllers == 1 {
			probs[0] = 1
		} else if cfg.SkewedAccess {
			home := i % cfg.Controllers
			rest := 0.15 / float64(cfg.Controllers-1)
			for k := range probs {
				probs[k] = rest
			}
			probs[home] = 0.85
		} else {
			for k := range probs {
				probs[k] = 1 / float64(cfg.Controllers)
			}
		}
		s.accessProb[i] = probs

		app := wl.Apps[i]
		if scale := layout.ExecCPIScale(i); scale != 1 {
			app.ExecCPI *= scale
		}
		core, err := cpusim.New(cpusim.Config{
			ID:          i,
			App:         app,
			Engine:      eng,
			Controllers: s.Ctls,
			AccessProb:  probs,
			FreqMax:     layout.Ladder(i).Max(),
			OoO:         cfg.OoO,
			Seed:        cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		s.Cores = append(s.Cores, core)
	}
	s.lastCore = make([]cpusim.Counters, cfg.Cores)
	s.lastMem = make([]memsim.Counters, cfg.Controllers)
	return s, nil
}

// AccessProb returns the per-core controller access distribution
// ([core][controller]), which policies use for weighted response times.
func (s *System) AccessProb() [][]float64 { return s.accessProb }

// Layout exposes the machine's per-core resolution — the class seam
// (ladders, power calibrations, placement) the controller consumes.
func (s *System) Layout() *MachineLayout { return s.layout }

// Epoch returns the index of the epoch currently executing.
func (s *System) Epoch() int { return s.epoch }

// Start launches all cores and applies epoch-0 phases.
func (s *System) Start() {
	s.applyPhases()
	for _, c := range s.Cores {
		c.Start()
	}
}

func (s *System) applyPhases() {
	// Multiply only when a shift is in force: the scale==1 fast path
	// preserves the exact float sequence (and goldens) of schedule-free
	// runs.
	scale := s.Cfg.PhaseSchedule.ScaleAt(s.epoch)
	for _, c := range s.Cores {
		p := c.App.Phase(s.epoch)
		if scale != 1 {
			p *= scale
		}
		c.SetPhase(p)
	}
}

// CoreProfile is the per-core slice of a profiling (or epoch) window.
type CoreProfile struct {
	Counters cpusim.Counters // window delta
	FreqGHz  float64
	// PowerW is the measured average power over the window at the
	// window's operating point — the signal the online fitters consume.
	PowerW float64
	// ZBarNs is the Eq. 9 think-time estimate scaled to maximum
	// frequency: busy time per miss × f/f_max.
	ZBarNs float64
	// IPA is instructions per memory access observed in the window.
	IPA float64
}

// MemProfile is the per-controller slice of a window.
type MemProfile struct {
	Counters memsim.Counters // window delta
	Stats    qmodel.MemStats
	FreqGHz  float64
	PowerW   float64
	// MeasuredRespNs is the true mean memory response time over the
	// window (0 if idle); validation compares it to the Eq. 1 estimate.
	MeasuredRespNs float64
}

// Profile summarizes one measurement window.
type Profile struct {
	WindowNs float64
	Cores    []CoreProfile
	Mem      []MemProfile
	// TotalPowerW includes cores, memory, and Ps.
	TotalPowerW float64
}

// measureWindow computes a Profile over [since-last-snapshot, now] into
// the given buffer and refreshes the snapshots.
func (s *System) measureWindow(p *Profile, windowNs float64) {
	p.WindowNs = windowNs
	if cap(p.Cores) < len(s.Cores) {
		p.Cores = make([]CoreProfile, len(s.Cores))
	} else {
		p.Cores = p.Cores[:len(s.Cores)]
	}
	total := s.Cfg.PsW
	for i, c := range s.Cores {
		cur := c.Counters()
		delta := cur.Sub(s.lastCore[i])
		s.lastCore[i] = cur
		lad := s.layout.Ladder(i)
		voltNorm := lad.VoltAtFreq(c.Freq()) / lad.Volt(lad.MaxStep())
		pw := c.Power(delta, windowNs, voltNorm, s.layout.Power(i))
		zbar := 0.0
		ipa := 0.0
		if delta.Misses > 0 {
			zbar = delta.BusyNs / float64(delta.Misses) * (c.Freq() / lad.Max())
			ipa = delta.Instructions / float64(delta.Misses)
		}
		p.Cores[i] = CoreProfile{
			Counters: delta,
			FreqGHz:  c.Freq(),
			PowerW:   pw,
			ZBarNs:   zbar,
			IPA:      ipa,
		}
		total += pw
	}
	if cap(p.Mem) < len(s.Ctls) {
		p.Mem = make([]MemProfile, len(s.Ctls))
	} else {
		p.Mem = p.Mem[:len(s.Ctls)]
	}
	for k, ctl := range s.Ctls {
		cur := ctl.Counters()
		delta := cur.Sub(s.lastMem[k])
		s.lastMem[k] = cur
		pw := ctl.Power(delta, windowNs)
		p.Mem[k] = MemProfile{
			Counters:       delta,
			Stats:          delta.MemStats(s.Cfg.Timing),
			FreqGHz:        ctl.BusFreq(),
			PowerW:         pw,
			MeasuredRespNs: delta.MeasuredResponseNs(),
		}
		total += pw
	}
	p.TotalPowerW = total
}

// RunProfile advances the simulation through the epoch's profiling
// window and returns its measurements. Call once per epoch, first. The
// returned Profile's slices are owned by the System and remain valid
// until the next RunProfile call.
func (s *System) RunProfile() Profile {
	start := float64(s.epoch) * s.Cfg.EpochNs
	s.Eng.RunUntil(start + s.Cfg.ProfileNs)
	s.measureWindow(&s.profBuf, s.Cfg.ProfileNs)
	return s.profBuf
}

// Apply transitions the machine to the decided DVFS operating point:
// one ladder step per core plus the memory step (common to all
// controllers, as in the paper).
func (s *System) Apply(coreSteps []int, memStep int) error {
	if len(coreSteps) != len(s.Cores) {
		return fmt.Errorf("sim: %d core steps for %d cores", len(coreSteps), len(s.Cores))
	}
	if memStep < 0 || memStep >= s.Cfg.MemLadder.Len() {
		return fmt.Errorf("sim: memory step %d out of range", memStep)
	}
	for i, step := range coreSteps {
		lad := s.layout.Ladder(i)
		if step < 0 || step >= lad.Len() {
			return fmt.Errorf("sim: core %d step %d out of range", i, step)
		}
		s.Cores[i].SetFreq(lad.Freq(step))
	}
	f := s.Cfg.MemLadder.Freq(memStep)
	for _, ctl := range s.Ctls {
		ctl.SetBusFreq(f)
	}
	return nil
}

// FinishEpoch advances to the epoch boundary, measures the post-decision
// window, advances the epoch counter, and applies the next epoch's
// application phases. The returned Profile covers only the portion of
// the epoch after Apply; combine with the profiling window for
// whole-epoch averages. Its slices are owned by the System and remain
// valid until the next FinishEpoch call.
func (s *System) FinishEpoch() Profile {
	end := float64(s.epoch+1) * s.Cfg.EpochNs
	s.Eng.RunUntil(end)
	s.measureWindow(&s.restBuf, s.Cfg.EpochNs-s.Cfg.ProfileNs)
	s.epoch++
	s.applyPhases()
	return s.restBuf
}

// CombinePower returns the whole-epoch average power given the epoch's
// two windows: the window-weighted mean of their totals. Every Platform
// implementation must use this formula (replay delegates here) so that
// a replayed run reports bit-identical epoch powers.
func CombinePower(profile, rest Profile) float64 {
	return (profile.TotalPowerW*profile.WindowNs + rest.TotalPowerW*rest.WindowNs) /
		(profile.WindowNs + rest.WindowNs)
}

// CombinePower implements the Platform method via the package formula.
func (s *System) CombinePower(profile, rest Profile) float64 {
	return CombinePower(profile, rest)
}

// PeakPowerW is the nameplate full-system peak: every core at maximum
// frequency, voltage and full duty, memory saturated at full frequency,
// plus Ps. Budgets are expressed as a fraction of this value.
func (s *System) PeakPowerW() float64 {
	total := s.Cfg.PsW
	for i, c := range s.Cores {
		total += c.PeakPower(s.layout.Power(i))
	}
	for _, ctl := range s.Ctls {
		total += ctl.PeakPower()
	}
	return total
}

// SbBarNs returns the minimum bus transfer time s̄_b.
func (s *System) SbBarNs() float64 { return s.Ctls[0].MinTransferTime() }

// MemFreqGHz returns the current memory bus frequency.
func (s *System) MemFreqGHz() float64 { return s.Ctls[0].BusFreq() }
