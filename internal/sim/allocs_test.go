package sim

import (
	"testing"

	"repro/internal/workload"
)

// The SoA overhaul's alloc ceiling: once the engine wheel, the memory
// request arenas and the L2 slot pools have grown to steady state, a
// whole epoch (profiling window + rest-of-epoch drain, ~160k events on
// this config) runs essentially allocation-free. The ceiling is not
// zero — the engine's wheel buckets and far heap still take the odd
// capacity-doubling append when the RNG produces a new high-water mark
// — but any per-request allocation would show up as tens of thousands
// per epoch, so a single-digit bound locks the SoA win in place.
func TestEpochSteadyStateAllocs(t *testing.T) {
	mix, err := workload.MixByName("MIX3")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(8)
	cfg.EpochNs = 5e5
	cfg.ProfileNs = 5e4
	wl, err := workload.Instantiate(mix, cfg.Cores)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	for i := 0; i < 10; i++ { // grow pools/buffers to steady state
		sys.RunProfile()
		sys.FinishEpoch()
	}
	avg := testing.AllocsPerRun(10, func() {
		sys.RunProfile()
		sys.FinishEpoch()
	})
	if avg > 2 {
		t.Errorf("steady-state epoch allocates %.1f objects, want ≤ 2", avg)
	}
}
