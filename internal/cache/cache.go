// Package cache models the shared last-level cache (the paper's 16 MB
// L2, Table II) analytically: per-application miss-ratio curves plus the
// LRU occupancy equilibrium that arises when applications share the
// cache. It explains — and is used to validate — the central workload-
// calibration fact of this reproduction: the *same* application exhibits
// very different effective MPKI in different Table III mixes (applu is
// 4× more miss-intensive co-run with three other streaming codes in MEM1
// than next to low-footprint codes in MIX1), because co-runners change
// how much cache each application holds.
//
// Model:
//
//   - Each application has a power-law miss-ratio curve
//     MPKI(c) = max(Floor, Base·(Ref/c)^Theta) for cache share c (MB) —
//     the standard concave MRC shape; streaming codes have Theta ≈ 0
//     (cache-insensitive), cache-friendly codes larger Theta.
//   - Under LRU, steady-state occupancy is proportional to each
//     application's *insertion* (miss) bandwidth: share_i ∝
//     IPS_i·MPKI_i(share_i·C). The equilibrium is the fixed point of
//     that proportionality, found by damped iteration.
package cache

import (
	"fmt"
	"math"
)

// MRC is a power-law miss-ratio curve.
type MRC struct {
	// BaseMPKI is the L2 misses per kilo-instruction when the app holds
	// RefMB of cache.
	BaseMPKI float64
	RefMB    float64
	// Theta is the capacity sensitivity: 0 = pure streaming (no reuse),
	// ~0.5–1.5 typical for cache-friendly codes.
	Theta float64
	// FloorMPKI bounds the curve below (compulsory misses).
	FloorMPKI float64
}

// MPKIAt evaluates the curve at a cache share of c MB.
func (m MRC) MPKIAt(c float64) float64 {
	if c <= 0 {
		// No cache at all: cap at the full working-set miss rate (4× base
		// keeps the model bounded).
		return m.BaseMPKI * 4
	}
	v := m.BaseMPKI * math.Pow(m.RefMB/c, m.Theta)
	if max := m.BaseMPKI * 4; v > max {
		v = max
	}
	if v < m.FloorMPKI {
		v = m.FloorMPKI
	}
	return v
}

// Valid reports whether the curve parameters are physical.
func (m MRC) Valid() bool {
	return m.BaseMPKI > 0 && m.RefMB > 0 && m.Theta >= 0 && m.FloorMPKI >= 0 &&
		m.FloorMPKI <= m.BaseMPKI*4
}

// Sharer is one application competing for the shared cache.
type Sharer struct {
	Name string
	MRC  MRC
	// IPS is the relative instruction rate (copies of the same app on
	// multiple cores can be folded in here).
	IPS float64
}

func validate(sharers []Sharer, totalMB float64) error {
	if len(sharers) == 0 {
		return fmt.Errorf("cache: no sharers")
	}
	if totalMB <= 0 {
		return fmt.Errorf("cache: non-positive capacity %g", totalMB)
	}
	for i, s := range sharers {
		if !s.MRC.Valid() {
			return fmt.Errorf("cache: sharer %d (%s) has invalid MRC", i, s.Name)
		}
		if s.IPS <= 0 {
			return fmt.Errorf("cache: sharer %d (%s) has non-positive IPS", i, s.Name)
		}
	}
	return nil
}

// solveShares runs the damped fixed-point iteration on the occupancy
// simplex. It converges because the update is a continuous map from the
// simplex into itself with damping 0.5.
func solveShares(sharers []Sharer, totalMB float64, iters int) []float64 {
	if iters <= 0 {
		iters = 200
	}
	n := len(sharers)
	share := make([]float64, n)
	for i := range share {
		share[i] = 1.0 / float64(n)
	}
	next := make([]float64, n)
	const damp = 0.5
	for it := 0; it < iters; it++ {
		sum := 0.0
		for i, s := range sharers {
			// Insertion bandwidth at the current allocation.
			next[i] = s.IPS * s.MRC.MPKIAt(share[i]*totalMB)
			sum += next[i]
		}
		if sum <= 0 {
			break
		}
		delta := 0.0
		for i := range next {
			target := next[i] / sum
			nv := share[i] + damp*(target-share[i])
			delta += math.Abs(nv - share[i])
			share[i] = nv
		}
		if delta < 1e-12 {
			break
		}
	}
	return share
}

// Equilibrium computes the LRU occupancy fixed point for the sharers in
// a cache of totalMB and returns each sharer's effective MPKI at its
// equilibrium share.
func Equilibrium(sharers []Sharer, totalMB float64, iters int) ([]float64, error) {
	if err := validate(sharers, totalMB); err != nil {
		return nil, err
	}
	share := solveShares(sharers, totalMB, iters)
	out := make([]float64, len(sharers))
	for i, s := range sharers {
		out[i] = s.MRC.MPKIAt(share[i] * totalMB)
	}
	return out, nil
}

// Shares returns the equilibrium occupancy fractions rather than the
// miss rates; useful for reporting.
func Shares(sharers []Sharer, totalMB float64, iters int) ([]float64, error) {
	if err := validate(sharers, totalMB); err != nil {
		return nil, err
	}
	return solveShares(sharers, totalMB, iters), nil
}
