package cache

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func TestMRCAt(t *testing.T) {
	m := MRC{BaseMPKI: 10, RefMB: 4, Theta: 1, FloorMPKI: 1}
	if got := m.MPKIAt(4); math.Abs(got-10) > 1e-12 {
		t.Errorf("at Ref = %g, want 10", got)
	}
	if got := m.MPKIAt(8); math.Abs(got-5) > 1e-12 {
		t.Errorf("at 2×Ref = %g, want 5", got)
	}
	if got := m.MPKIAt(2); math.Abs(got-20) > 1e-12 {
		t.Errorf("at Ref/2 = %g, want 20", got)
	}
	// Cap at 4× base.
	if got := m.MPKIAt(0.1); got != 40 {
		t.Errorf("tiny share = %g, want cap 40", got)
	}
	if got := m.MPKIAt(0); got != 40 {
		t.Errorf("zero share = %g, want cap 40", got)
	}
	// Floor at large capacity.
	if got := m.MPKIAt(400); got != 1 {
		t.Errorf("huge share = %g, want floor 1", got)
	}
	// Streaming (theta 0): capacity-insensitive.
	s := MRC{BaseMPKI: 20, RefMB: 4, Theta: 0, FloorMPKI: 0}
	if s.MPKIAt(1) != 20 || s.MPKIAt(16) != 20 {
		t.Error("theta=0 curve not flat")
	}
}

func TestMRCValid(t *testing.T) {
	if !(MRC{BaseMPKI: 1, RefMB: 1, Theta: 0.5, FloorMPKI: 0}).Valid() {
		t.Error("good MRC rejected")
	}
	bad := []MRC{
		{BaseMPKI: 0, RefMB: 1, Theta: 0.5},
		{BaseMPKI: 1, RefMB: 0, Theta: 0.5},
		{BaseMPKI: 1, RefMB: 1, Theta: -0.1},
		{BaseMPKI: 1, RefMB: 1, Theta: 0.5, FloorMPKI: 100},
	}
	for i, m := range bad {
		if m.Valid() {
			t.Errorf("bad MRC %d accepted", i)
		}
	}
}

func TestEquilibriumErrors(t *testing.T) {
	ok := Sharer{Name: "a", MRC: MRC{BaseMPKI: 5, RefMB: 4, Theta: 0.5}, IPS: 1}
	if _, err := Equilibrium(nil, 16, 0); err == nil {
		t.Error("empty sharers accepted")
	}
	if _, err := Equilibrium([]Sharer{ok}, 0, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	bad := ok
	bad.IPS = 0
	if _, err := Equilibrium([]Sharer{bad}, 16, 0); err == nil {
		t.Error("zero IPS accepted")
	}
	bad2 := ok
	bad2.MRC.BaseMPKI = 0
	if _, err := Equilibrium([]Sharer{bad2}, 16, 0); err == nil {
		t.Error("invalid MRC accepted")
	}
}

func TestEquilibriumSymmetric(t *testing.T) {
	// Identical sharers split the cache evenly.
	s := Sharer{Name: "x", MRC: MRC{BaseMPKI: 8, RefMB: 4, Theta: 0.8, FloorMPKI: 0.5}, IPS: 1}
	shares, err := Shares([]Sharer{s, s, s, s}, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, sh := range shares {
		if math.Abs(sh-0.25) > 1e-6 {
			t.Errorf("share %d = %g, want 0.25", i, sh)
		}
	}
	mpki, err := Equilibrium([]Sharer{s, s, s, s}, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := s.MRC.MPKIAt(4)
	for _, m := range mpki {
		if math.Abs(m-want) > 1e-6 {
			t.Errorf("mpki = %g, want %g", m, want)
		}
	}
}

func TestEquilibriumStreamingDominates(t *testing.T) {
	// A heavy streaming app (high base MPKI, theta 0) grabs occupancy from
	// a cache-friendly app, raising the latter's miss rate — the classic
	// shared-cache victim story.
	stream := Sharer{Name: "swim", MRC: MRC{BaseMPKI: 25, RefMB: 4, Theta: 0.05, FloorMPKI: 20}, IPS: 1}
	friendly := Sharer{Name: "gzip", MRC: MRC{BaseMPKI: 0.4, RefMB: 4, Theta: 1.2, FloorMPKI: 0.05}, IPS: 1}
	shares, err := Shares([]Sharer{stream, friendly}, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if shares[0] <= shares[1] {
		t.Errorf("streaming app holds %g, friendly %g; want streaming larger", shares[0], shares[1])
	}
	// The friendly app alone would see its miss rate at 16 MB; at the
	// equilibrium it holds less and misses more.
	mpki, _ := Equilibrium([]Sharer{stream, friendly}, 16, 0)
	alone := friendly.MRC.MPKIAt(16)
	if mpki[1] <= alone {
		t.Errorf("victim MPKI %g not above solo %g", mpki[1], alone)
	}
}

// The reproduction's calibration story: applu's effective MPKI must be
// substantially higher when co-run with three other memory hogs (MEM1)
// than with three low-footprint codes (MIX1), qualitatively matching the
// weight-normalized values the workload package assigns.
func TestContentionExplainsMixDependentMPKI(t *testing.T) {
	mrcFor := func(name string) MRC {
		p, err := workload.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		// Derive an MRC from the profile: MemWeight approximates the
		// standalone intensity at a fair share (4 MB of 16 MB);
		// cache-insensitive streaming apps have low theta = high locality
		// of streams, compute codes are capacity-sensitive.
		theta := 1.2 - p.RowLocality // streaming → low theta
		if theta < 0.1 {
			theta = 0.1
		}
		return MRC{BaseMPKI: p.MemWeight, RefMB: 4, Theta: theta, FloorMPKI: p.MemWeight / 8}
	}
	build := func(names [4]string) []Sharer {
		var out []Sharer
		for _, n := range names {
			out = append(out, Sharer{Name: n, MRC: mrcFor(n), IPS: 1})
		}
		return out
	}
	mem1, err := workload.MixByName("MEM1")
	if err != nil {
		t.Fatal(err)
	}
	mix1, err := workload.MixByName("MIX1")
	if err != nil {
		t.Fatal(err)
	}
	memEq, err := Equilibrium(build(mem1.Apps), 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	mixEq, err := Equilibrium(build(mix1.Apps), 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	var apMem, apMix float64
	for i, n := range mem1.Apps {
		if n == "applu" {
			apMem = memEq[i]
		}
	}
	for i, n := range mix1.Apps {
		if n == "applu" {
			apMix = mixEq[i]
		}
	}
	if apMem <= apMix {
		t.Errorf("contention model: applu MPKI %g in MEM1 not above %g in MIX1", apMem, apMix)
	}
	// Same qualitative direction as the Table III calibration (which has
	// applu at 24.9 effective MPKI in MEM1 vs ~10.5 in MIX1).
	t.Logf("contention model: applu %g (MEM1) vs %g (MIX1)", apMem, apMix)
}

// Property: equilibrium shares always form a distribution and every
// effective MPKI stays within the curve's [floor, 4×base] bounds.
func TestEquilibriumProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 || len(raw) > 16 {
			return true
		}
		var sharers []Sharer
		for i, r := range raw {
			sharers = append(sharers, Sharer{
				Name: "s",
				MRC: MRC{
					BaseMPKI:  0.2 + float64(r%40),
					RefMB:     4,
					Theta:     float64(r%13) / 10.0,
					FloorMPKI: 0.1,
				},
				IPS: 0.5 + float64((i*7+int(r))%10)/5.0,
			})
		}
		shares, err := Shares(sharers, 16, 0)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, s := range shares {
			if s < -1e-9 || s > 1+1e-9 {
				return false
			}
			sum += s
		}
		if math.Abs(sum-1) > 1e-6 {
			return false
		}
		mpki, err := Equilibrium(sharers, 16, 0)
		if err != nil {
			return false
		}
		for i, m := range mpki {
			lo := sharers[i].MRC.FloorMPKI
			hi := sharers[i].MRC.BaseMPKI * 4
			if m < lo-1e-9 || m > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
