package qmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestResponseEquation1(t *testing.T) {
	// R = Q(sm + U·sb): hand-computed cases.
	m := MemStats{Q: 2, U: 3, Sm: 20}
	if got := m.Response(5); got != 2*(20+3*5.0) {
		t.Errorf("Response(5) = %g, want 70", got)
	}
	if got := m.Response(0); got != 40 {
		t.Errorf("Response(0) = %g, want 40", got)
	}
	// Linear and increasing in sb.
	if m.Response(10) <= m.Response(5) {
		t.Error("Response not increasing in sb")
	}
}

func TestMemStatsValid(t *testing.T) {
	if !(MemStats{Q: 1, U: 1, Sm: 1}).Valid() {
		t.Error("minimal valid stats rejected")
	}
	bad := []MemStats{
		{Q: 0.5, U: 1, Sm: 1},
		{Q: 1, U: 0, Sm: 1},
		{Q: 1, U: 1, Sm: 0},
		{Q: math.NaN(), U: 1, Sm: 1},
	}
	for i, m := range bad {
		if m.Valid() {
			t.Errorf("bad stats %d accepted: %+v", i, m)
		}
	}
}

func TestClamp(t *testing.T) {
	m := MemStats{Q: 0.2, U: math.NaN(), Sm: -4}
	c := m.Clamp(15)
	if c.Q != 1 || c.U != 1 || c.Sm != 15 {
		t.Errorf("Clamp = %+v", c)
	}
	// Already-valid stats pass through unchanged.
	ok := MemStats{Q: 2.5, U: 1.5, Sm: 22}
	if got := ok.Clamp(15); got != ok {
		t.Errorf("Clamp changed valid stats: %+v", got)
	}
}

func TestTurnaround(t *testing.T) {
	if got := Turnaround(100, 7.5, 40); got != 147.5 {
		t.Errorf("Turnaround = %g", got)
	}
}

func TestMultiUniform(t *testing.T) {
	stats := []MemStats{
		{Q: 1, U: 1, Sm: 20},
		{Q: 3, U: 2, Sm: 30},
	}
	mc := NewUniformMulti(stats, 4)
	if err := mc.Validate(); err != nil {
		t.Fatal(err)
	}
	// Uniform: core response is the average of the two controllers.
	sb := 5.0
	want := 0.5*stats[0].Response(sb) + 0.5*stats[1].Response(sb)
	for i := 0; i < 4; i++ {
		if got := mc.CoreResponse(i, sb); math.Abs(got-want) > 1e-12 {
			t.Errorf("core %d response = %g, want %g", i, got, want)
		}
	}
	f := mc.ResponseFunc(2)
	if got := f(sb); math.Abs(got-want) > 1e-12 {
		t.Errorf("ResponseFunc = %g, want %g", got, want)
	}
}

func TestMultiSkewed(t *testing.T) {
	stats := []MemStats{
		{Q: 1, U: 1, Sm: 20},
		{Q: 5, U: 4, Sm: 40},
	}
	mc := &Multi{
		Stats: stats,
		Access: [][]float64{
			{1.0, 0.0},
			{0.0, 1.0},
		},
	}
	if err := mc.Validate(); err != nil {
		t.Fatal(err)
	}
	sb := 10.0
	if got := mc.CoreResponse(0, sb); got != stats[0].Response(sb) {
		t.Errorf("core 0 sees %g, want controller 0 only", got)
	}
	if got := mc.CoreResponse(1, sb); got != stats[1].Response(sb) {
		t.Errorf("core 1 sees %g, want controller 1 only", got)
	}
	// Core 1's controller is hotter → higher response.
	if mc.CoreResponse(1, sb) <= mc.CoreResponse(0, sb) {
		t.Error("skew not reflected in responses")
	}
}

func TestMultiValidateErrors(t *testing.T) {
	if err := (&Multi{}).Validate(); err == nil {
		t.Error("empty Multi validated")
	}
	bad := &Multi{
		Stats:  []MemStats{{Q: 1, U: 1, Sm: 1}},
		Access: [][]float64{{0.5, 0.5}}, // wrong width
	}
	if err := bad.Validate(); err == nil {
		t.Error("shape mismatch validated")
	}
	bad2 := &Multi{
		Stats:  []MemStats{{Q: 1, U: 1, Sm: 1}, {Q: 1, U: 1, Sm: 1}},
		Access: [][]float64{{0.7, 0.7}}, // sums to 1.4
	}
	if err := bad2.Validate(); err == nil {
		t.Error("bad probability sum validated")
	}
	bad3 := &Multi{
		Stats:  []MemStats{{Q: 1, U: 1, Sm: 1}, {Q: 1, U: 1, Sm: 1}},
		Access: [][]float64{{1.5, -0.5}},
	}
	if err := bad3.Validate(); err == nil {
		t.Error("negative probability validated")
	}
}

func TestMVASingleCustomer(t *testing.T) {
	// One customer: no queueing anywhere, response = sm + sb exactly.
	resp, x := MVA(1, 100, 8, 30, 5)
	if math.Abs(resp-35) > 1e-9 {
		t.Errorf("1-customer response = %g, want 35", resp)
	}
	wantX := 1.0 / (100 + 35)
	if math.Abs(x-wantX) > 1e-12 {
		t.Errorf("1-customer throughput = %g, want %g", x, wantX)
	}
}

func TestMVADegenerate(t *testing.T) {
	if r, x := MVA(0, 10, 4, 10, 1); r != 0 || x != 0 {
		t.Error("MVA(0 customers) must be zero")
	}
	if r, x := MVA(4, 10, 0, 10, 1); r != 0 || x != 0 {
		t.Error("MVA(0 banks) must be zero")
	}
}

func TestMVAMonotoneInPopulation(t *testing.T) {
	// More customers → more contention → response non-decreasing.
	prev := 0.0
	for n := 1; n <= 32; n++ {
		r, _ := MVA(n, 200, 8, 30, 5)
		if r < prev-1e-9 {
			t.Fatalf("MVA response decreased at n=%d: %g < %g", n, r, prev)
		}
		prev = r
	}
}

func TestMVAThroughputSaturates(t *testing.T) {
	// With a slow bus (the bottleneck), throughput must approach 1/sb.
	sb := 10.0
	_, x := MVA(64, 50, 16, 5, sb)
	if x > 1/sb+1e-9 {
		t.Errorf("throughput %g exceeds bus capacity %g", x, 1/sb)
	}
	if x < 0.9/sb {
		t.Errorf("throughput %g did not approach bus capacity %g", x, 1/sb)
	}
}

func TestMVALightLoadMatchesNoQueueing(t *testing.T) {
	// Huge think time → negligible queueing → response ≈ sm + sb.
	r, _ := MVA(16, 1e9, 8, 30, 5)
	if math.Abs(r-35) > 0.1 {
		t.Errorf("light-load response = %g, want ≈35", r)
	}
}

func TestBoundedThroughput(t *testing.T) {
	// MVA throughput never exceeds the analytic bound.
	for _, n := range []int{1, 4, 16, 64} {
		_, x := MVA(n, 100, 8, 30, 5)
		if b := BoundedThroughput(n, 100, 8, 30, 5); x > b+1e-9 {
			t.Errorf("n=%d: MVA throughput %g exceeds bound %g", n, x, b)
		}
	}
	if BoundedThroughput(0, 1, 1, 1, 1) != 0 {
		t.Error("zero population bound must be 0")
	}
}

// Property: Eq. 1 response is affine in sb with slope Q·U and intercept Q·sm.
func TestResponseAffineProperty(t *testing.T) {
	f := func(q8, u8, sm8, sb8 uint8) bool {
		q := 1 + float64(q8)/16.0
		u := 1 + float64(u8)/16.0
		sm := 1 + float64(sm8)
		sb := float64(sb8) / 4.0
		m := MemStats{Q: q, U: u, Sm: sm}
		want := q*sm + q*u*sb
		return math.Abs(m.Response(sb)-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CoreResponse is a convex combination — bounded by the min and
// max controller responses.
func TestCoreResponseBounded(t *testing.T) {
	f := func(p8 uint8, sb8 uint8) bool {
		p := float64(p8) / 255.0
		sb := float64(sb8) / 8.0
		stats := []MemStats{
			{Q: 1.2, U: 1.1, Sm: 20},
			{Q: 4.0, U: 2.5, Sm: 35},
		}
		mc := &Multi{Stats: stats, Access: [][]float64{{p, 1 - p}}}
		r := mc.CoreResponse(0, sb)
		lo := math.Min(stats[0].Response(sb), stats[1].Response(sb))
		hi := math.Max(stats[0].Response(sb), stats[1].Response(sb))
		return r >= lo-1e-9 && r <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
