// Package qmodel implements the closed-network queuing abstractions at
// the heart of FastCap (paper §III-A): the memory response-time
// approximation R(s_b) ≈ Q·(s_m + U·s_b) (Eq. 1), per-core turn-around
// times, and the weighted multi-controller generalization used in §IV-B.
//
// It also provides an exact single-class Mean Value Analysis solver for
// the corresponding closed queuing network *without* transfer blocking,
// used by tests as an analytic cross-check on the event-driven simulator.
//
// Times are in nanoseconds throughout.
package qmodel

import (
	"fmt"
	"math"
)

// MemStats captures the per-controller queue statistics FastCap reads
// from the memory controller's performance counters each epoch:
//
//   - Q:  expected number of requests at a bank when a new request
//     arrives, including the arriving one.
//   - U:  expected number of requests waiting for the data bus when a
//     served request is ready to leave, including the departing one.
//   - Sm: average bank service (access) time, ns.
type MemStats struct {
	Q  float64
	U  float64
	Sm float64
}

// Response evaluates the paper's Eq. 1 approximation of mean memory
// response time for a bus transfer time sb (ns): R = Q·(s_m + U·s_b).
func (m MemStats) Response(sb float64) float64 {
	return m.Q * (m.Sm + m.U*sb)
}

// Valid reports whether the statistics are physical: Q and U are counts
// at least 1 (they include the tagged request itself) and Sm is positive.
// Idle epochs can legitimately produce Q, U slightly below 1 when
// measured as time averages, so callers typically Clamp first.
func (m MemStats) Valid() bool {
	return m.Q >= 1 && m.U >= 1 && m.Sm > 0 &&
		!math.IsNaN(m.Q) && !math.IsNaN(m.U) && !math.IsNaN(m.Sm)
}

// Clamp returns a copy with Q and U raised to at least 1 (the tagged
// request always counts itself) and Sm to at least smFloor.
func (m MemStats) Clamp(smFloor float64) MemStats {
	c := m
	if !(c.Q >= 1) { // catches NaN too
		c.Q = 1
	}
	if !(c.U >= 1) {
		c.U = 1
	}
	if !(c.Sm >= smFloor) {
		c.Sm = smFloor
	}
	return c
}

// Turnaround is the paper's performance metric: the mean time between
// two successive memory accesses of a core, z + c + R (Fig. 2). A core
// executing think time z at frequency f out of fmax has z = z̄·fmax/f.
func Turnaround(z, c, r float64) float64 { return z + c + r }

// Multi models multiple memory controllers running at a common bus
// frequency but with independent queue statistics, as in §IV-B
// ("Multiple memory controllers"). Access[i][k] is the probability that
// core i's requests go to controller k; rows must sum to 1.
type Multi struct {
	Stats  []MemStats
	Access [][]float64
}

// NewUniformMulti builds a Multi where every core spreads its accesses
// uniformly over all controllers.
func NewUniformMulti(stats []MemStats, cores int) *Multi {
	k := len(stats)
	acc := make([][]float64, cores)
	for i := range acc {
		row := make([]float64, k)
		for j := range row {
			row[j] = 1.0 / float64(k)
		}
		acc[i] = row
	}
	return &Multi{Stats: stats, Access: acc}
}

// Validate checks shape and probability invariants.
func (mc *Multi) Validate() error {
	if len(mc.Stats) == 0 {
		return fmt.Errorf("qmodel: no controllers")
	}
	for i, row := range mc.Access {
		if len(row) != len(mc.Stats) {
			return fmt.Errorf("qmodel: core %d has %d access probs, want %d", i, len(row), len(mc.Stats))
		}
		sum := 0.0
		for _, p := range row {
			if p < -1e-9 {
				return fmt.Errorf("qmodel: core %d has negative access probability", i)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("qmodel: core %d access probabilities sum to %g", i, sum)
		}
	}
	return nil
}

// CoreResponse returns the response time experienced by core i at bus
// transfer time sb: the access-probability-weighted average of the
// per-controller Eq. 1 responses.
func (mc *Multi) CoreResponse(core int, sb float64) float64 {
	row := mc.Access[core]
	r := 0.0
	for k, s := range mc.Stats {
		r += row[k] * s.Response(sb)
	}
	return r
}

// ResponseFunc returns a closure computing CoreResponse for a fixed core,
// convenient for handing per-core response curves to the optimizer.
func (mc *Multi) ResponseFunc(core int) func(sb float64) float64 {
	return func(sb float64) float64 { return mc.CoreResponse(core, sb) }
}

// MVA solves a closed single-class queuing network with one delay
// station (aggregate think time Z), nBanks identical FCFS bank stations
// with service time sm, and a single FCFS bus station with service time
// sb, populated by n customers (cores). It returns the mean memory
// response time (time from arrival at a bank to completed bus transfer)
// and the system throughput (requests/ns).
//
// This is exact Mean Value Analysis for the product-form version of the
// network (no transfer blocking); the paper's Eq. 1 and the simulator
// both include blocking, so MVA serves as an analytic lower-bound
// cross-check in tests.
func MVA(n int, z float64, nBanks int, sm, sb float64) (resp, throughput float64) {
	if n <= 0 || nBanks <= 0 {
		return 0, 0
	}
	qBank := make([]float64, nBanks)
	qBus := 0.0
	for k := 1; k <= n; k++ {
		// Residence time at each station with k customers.
		rBank := make([]float64, nBanks)
		sumR := 0.0
		for b := 0; b < nBanks; b++ {
			rBank[b] = sm * (1 + qBank[b])
			sumR += rBank[b] / float64(nBanks) // uniform routing
		}
		rBus := sb * (1 + qBus)
		sumR += rBus
		x := float64(k) / (z + sumR)
		for b := 0; b < nBanks; b++ {
			// Per-bank arrival rate is x/nBanks under uniform routing.
			qBank[b] = x / float64(nBanks) * rBank[b]
		}
		qBus = x * rBus
		if k == n {
			resp = sumR
			throughput = x
		}
	}
	return resp, throughput
}

// BoundedThroughput returns the asymptotic throughput bounds of the
// closed network: min(1/bottleneck demand, n/(z + demand sum)). Used in
// property tests to bracket simulator measurements.
func BoundedThroughput(n int, z float64, nBanks int, sm, sb float64) float64 {
	if n <= 0 {
		return 0
	}
	// Per-request demand at each bank is sm/nBanks overall; bottleneck is
	// the bus (demand sb per request) or a single bank (sm per request at
	// 1/nBanks of the traffic).
	bottleneck := math.Max(sb, sm/float64(nBanks))
	light := float64(n) / (z + sm + sb)
	return math.Min(1/bottleneck, light)
}
