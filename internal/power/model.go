// Package power implements the FastCap power models (paper Eqs. 2 and 3)
// and the online parameter fitting the controller performs from recent
// (frequency, power) observations (paper §III-C).
//
// Core power:   P_i(f) = Pi · (f/f_max)^αi + Pi,static   with αi ∈ [2, 3]
// Memory power: P_m(f) = Pm · (f/f_max)^β  + Pm,static   with β ≈ 1
//
// All powers are in watts; frequencies enter only as the normalized
// scaling factor f/f_max = z̄/z = s̄_b/s_b ∈ (0, 1].
package power

import (
	"fmt"
	"math"
)

// Model is a single fitted frequency-dependent power curve
// P(x) = Scale·x^Exp + Static, where x is the normalized frequency.
type Model struct {
	Scale  float64 // W at x = 1 (maximum frequency), dynamic portion
	Exp    float64 // curvature exponent (α for cores, β for memory)
	Static float64 // frequency-independent floor, W
}

// At evaluates the model at normalized frequency x ∈ (0, 1]. Values
// outside (0, 1] are clamped so the model stays physical when callers
// probe slightly out of range.
func (m Model) At(x float64) float64 {
	if x <= 0 {
		return m.Static
	}
	if x > 1 {
		x = 1
	}
	return m.Scale*math.Pow(x, m.Exp) + m.Static
}

// Dynamic returns only the frequency-dependent portion at x.
func (m Model) Dynamic(x float64) float64 { return m.At(x) - m.Static }

// Peak returns the model's power at maximum frequency.
func (m Model) Peak() float64 { return m.Scale + m.Static }

// Valid reports whether the model parameters are finite and physical.
func (m Model) Valid() bool {
	for _, v := range []float64{m.Scale, m.Exp, m.Static} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return m.Scale >= 0 && m.Exp > 0 && m.Static >= 0
}

// String renders the model for logs and reports.
func (m Model) String() string {
	return fmt.Sprintf("%.3g·x^%.3g + %.3g W", m.Scale, m.Exp, m.Static)
}

// sample is one observed (normalized frequency, measured dynamic power) pair.
type sample struct {
	x float64 // normalized frequency in (0, 1]
	p float64 // measured dynamic (static-subtracted) power, W
}

// Fitter re-estimates Scale and Exp online from recent observations, as
// FastCap does each epoch: "FastCap keeps data about the last three
// frequencies it has seen, and periodically recomputes these parameters"
// (paper §III-C). Static power is measured offline and held fixed.
//
// The fit is a least-squares line in log space: log p = log Scale + Exp·log x.
// Observations at the same (or nearly the same) frequency replace each
// other rather than accumulate, so the history always spans distinct
// frequencies and the system of equations stays well conditioned.
type Fitter struct {
	static   float64
	history  []sample // most recent last; distinct x values
	keep     int      // how many distinct frequencies to retain
	fallback Model    // returned until enough observations arrive
	expLo    float64  // clamp range for the fitted exponent
	expHi    float64
}

// NewCoreFitter builds a fitter for a core power curve. peakGuess seeds
// the fallback model's Scale; the paper notes α is typically between 2
// and 3, so the exponent is clamped to [1.5, 3.5] to reject degenerate
// fits from noisy counters.
func NewCoreFitter(static, peakGuess float64) *Fitter {
	return &Fitter{
		static:   static,
		keep:     3,
		fallback: Model{Scale: peakGuess, Exp: 2.5, Static: static},
		expLo:    1.5,
		expHi:    3.5,
	}
}

// NewMemFitter builds a fitter for the memory power curve. The paper
// observes β close to 1 (frequency-only scaling of bus and DIMMs), so the
// exponent is clamped to [0.5, 2.0].
func NewMemFitter(static, peakGuess float64) *Fitter {
	return &Fitter{
		static:   static,
		keep:     3,
		fallback: Model{Scale: peakGuess, Exp: 1.0, Static: static},
		expLo:    0.5,
		expHi:    2.0,
	}
}

// Static returns the fixed static power used by this fitter.
func (f *Fitter) Static() float64 { return f.static }

// Observe records a measured total power at normalized frequency x.
// Non-positive dynamic residuals (total below static) and out-of-range x
// are ignored: they arise from counter noise during transitions.
func (f *Fitter) Observe(x, totalPower float64) {
	if x <= 0 || x > 1+1e-9 || math.IsNaN(totalPower) {
		return
	}
	if x > 1 {
		x = 1
	}
	dyn := totalPower - f.static
	if dyn <= 0 {
		return
	}
	const sameFreqTol = 1e-3
	for i := range f.history {
		if math.Abs(f.history[i].x-x) < sameFreqTol {
			// Replace in place but move to the back (most recent).
			s := sample{x: x, p: dyn}
			f.history = append(append(f.history[:i:i], f.history[i+1:]...), s)
			return
		}
	}
	f.history = append(f.history, sample{x: x, p: dyn})
	if len(f.history) > f.keep {
		f.history = f.history[len(f.history)-f.keep:]
	}
}

// Model returns the current best-fit model. With fewer than two distinct
// frequencies observed, the dynamic scale is taken from the single
// observation (if any) under the fallback exponent; with none, the
// fallback model is returned unchanged.
func (f *Fitter) Model() Model {
	switch len(f.history) {
	case 0:
		return f.fallback
	case 1:
		s := f.history[0]
		exp := f.fallback.Exp
		scale := s.p / math.Pow(s.x, exp)
		m := Model{Scale: scale, Exp: exp, Static: f.static}
		if !m.Valid() {
			return f.fallback
		}
		return m
	}
	// Least squares in log space over all retained samples.
	var sx, sy, sxx, sxy float64
	n := float64(len(f.history))
	for _, s := range f.history {
		lx := math.Log(s.x)
		ly := math.Log(s.p)
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		// All samples at x≈1 (log x ≈ 0): exponent unidentifiable; keep
		// fallback exponent, refresh the scale from the newest sample.
		s := f.history[len(f.history)-1]
		return Model{Scale: s.p / math.Pow(s.x, f.fallback.Exp), Exp: f.fallback.Exp, Static: f.static}
	}
	exp := (n*sxy - sx*sy) / den
	if exp < f.expLo {
		exp = f.expLo
	} else if exp > f.expHi {
		exp = f.expHi
	}
	// Refit the scale with the clamped exponent (least squares on Scale).
	var num, denS float64
	for _, s := range f.history {
		w := math.Pow(s.x, exp)
		num += s.p * w
		denS += w * w
	}
	scale := num / denS
	m := Model{Scale: scale, Exp: exp, Static: f.static}
	if !m.Valid() {
		return f.fallback
	}
	return m
}

// Reset drops the observation history (used when an application phase
// change makes old samples unrepresentative).
func (f *Fitter) Reset() { f.history = f.history[:0] }

// System aggregates the full-system power model FastCap optimizes over:
// per-core models, one memory model, and the frequency-independent rest
// of the system P_s (paper §III-A: disks, NICs, L2, controller static).
type System struct {
	Cores []Model
	Mem   Model
	Ps    float64
}

// Total evaluates full-system power for normalized core frequencies x
// (one per core) and normalized memory frequency xm.
func (s *System) Total(x []float64, xm float64) float64 {
	sum := s.Ps + s.Mem.At(xm)
	for i, m := range s.Cores {
		sum += m.At(x[i])
	}
	return sum
}

// Peak returns full-system power with every component at maximum
// frequency — the P̄ against which budgets B·P̄ are expressed.
func (s *System) Peak() float64 {
	sum := s.Ps + s.Mem.Peak()
	for _, m := range s.Cores {
		sum += m.Peak()
	}
	return sum
}
