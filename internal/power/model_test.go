package power

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestModelAt(t *testing.T) {
	m := Model{Scale: 4.0, Exp: 3.0, Static: 0.5}
	if got := m.At(1.0); !almostEqual(got, 4.5, 1e-12) {
		t.Errorf("At(1) = %g, want 4.5", got)
	}
	if got := m.At(0.5); !almostEqual(got, 4.0*0.125+0.5, 1e-12) {
		t.Errorf("At(0.5) = %g", got)
	}
	// Clamps.
	if got := m.At(0); got != 0.5 {
		t.Errorf("At(0) = %g, want static 0.5", got)
	}
	if got := m.At(2.0); !almostEqual(got, 4.5, 1e-12) {
		t.Errorf("At(2) = %g, want clamp to peak", got)
	}
	if got := m.Peak(); !almostEqual(got, 4.5, 1e-12) {
		t.Errorf("Peak = %g", got)
	}
	if got := m.Dynamic(1.0); !almostEqual(got, 4.0, 1e-12) {
		t.Errorf("Dynamic(1) = %g", got)
	}
}

func TestModelValid(t *testing.T) {
	good := Model{Scale: 1, Exp: 2, Static: 0}
	if !good.Valid() {
		t.Error("good model reported invalid")
	}
	bad := []Model{
		{Scale: -1, Exp: 2, Static: 0},
		{Scale: 1, Exp: 0, Static: 0},
		{Scale: 1, Exp: 2, Static: -0.1},
		{Scale: math.NaN(), Exp: 2, Static: 0},
		{Scale: 1, Exp: math.Inf(1), Static: 0},
	}
	for i, m := range bad {
		if m.Valid() {
			t.Errorf("bad model %d reported valid: %v", i, m)
		}
	}
}

func TestModelMonotone(t *testing.T) {
	m := Model{Scale: 4.0, Exp: 2.7, Static: 0.5}
	prev := m.At(0.01)
	for x := 0.02; x <= 1.0; x += 0.01 {
		cur := m.At(x)
		if cur < prev {
			t.Fatalf("model not monotone at x=%g", x)
		}
		prev = cur
	}
}

func TestFitterExactRecovery(t *testing.T) {
	// Feed exact samples from a known curve; the fit must recover it.
	truth := Model{Scale: 4.0, Exp: 2.7, Static: 0.5}
	f := NewCoreFitter(truth.Static, 1.0 /* bad guess on purpose */)
	for _, x := range []float64{1.0, 0.8, 0.6} {
		f.Observe(x, truth.At(x))
	}
	got := f.Model()
	if !almostEqual(got.Exp, truth.Exp, 1e-6) {
		t.Errorf("fitted exp = %g, want %g", got.Exp, truth.Exp)
	}
	if !almostEqual(got.Scale, truth.Scale, 1e-6) {
		t.Errorf("fitted scale = %g, want %g", got.Scale, truth.Scale)
	}
}

func TestFitterMemExactRecovery(t *testing.T) {
	truth := Model{Scale: 26.0, Exp: 1.05, Static: 10.0}
	f := NewMemFitter(truth.Static, 20.0)
	for _, x := range []float64{1.0, 0.5, 0.25} {
		f.Observe(x, truth.At(x))
	}
	got := f.Model()
	if !almostEqual(got.Exp, truth.Exp, 1e-6) {
		t.Errorf("fitted beta = %g, want %g", got.Exp, truth.Exp)
	}
	if !almostEqual(got.Scale, truth.Scale, 1e-6) {
		t.Errorf("fitted Pm = %g, want %g", got.Scale, truth.Scale)
	}
}

func TestFitterFallbacks(t *testing.T) {
	f := NewCoreFitter(0.5, 4.0)
	// No observations → fallback verbatim.
	m := f.Model()
	if m.Scale != 4.0 || m.Exp != 2.5 {
		t.Errorf("empty fitter model = %v, want fallback", m)
	}
	// One observation → scale inferred under fallback exponent.
	f.Observe(0.8, 0.5+4.0*math.Pow(0.8, 2.5))
	m = f.Model()
	if !almostEqual(m.Scale, 4.0, 1e-9) {
		t.Errorf("one-sample scale = %g, want 4.0", m.Scale)
	}
}

func TestFitterIgnoresGarbage(t *testing.T) {
	f := NewCoreFitter(0.5, 4.0)
	f.Observe(-1, 3)    // bad x
	f.Observe(0, 3)     // bad x
	f.Observe(1.5, 3)   // bad x (way out of range)
	f.Observe(0.8, 0.2) // below static → ignored
	f.Observe(0.8, math.NaN() /* NaN */)
	if len(f.history) != 0 {
		t.Fatalf("garbage observations retained: %d", len(f.history))
	}
}

func TestFitterSameFrequencyReplaces(t *testing.T) {
	f := NewCoreFitter(0.0, 1.0)
	f.Observe(0.8, 2.0)
	f.Observe(0.8, 3.0) // replaces, does not accumulate
	if len(f.history) != 1 {
		t.Fatalf("history length = %d, want 1", len(f.history))
	}
	if f.history[0].p != 3.0 {
		t.Errorf("replacement kept old value %g", f.history[0].p)
	}
}

func TestFitterKeepsThreeDistinct(t *testing.T) {
	f := NewCoreFitter(0.0, 1.0)
	for _, x := range []float64{0.6, 0.7, 0.8, 0.9, 1.0} {
		f.Observe(x, x*x)
	}
	if len(f.history) != 3 {
		t.Fatalf("history length = %d, want 3 (paper keeps last three)", len(f.history))
	}
	// Oldest retained should be 0.8.
	if f.history[0].x != 0.8 {
		t.Errorf("oldest retained x = %g, want 0.8", f.history[0].x)
	}
}

func TestFitterDegenerateSameX(t *testing.T) {
	// All observations at x = 1.0 collapses the regression; the fitter
	// must fall back to the default exponent with a refreshed scale.
	f := NewCoreFitter(0.5, 99.0)
	f.Observe(1.0, 4.5)
	m := f.Model()
	if !almostEqual(m.Scale, 4.0, 1e-9) {
		t.Errorf("scale = %g, want 4.0", m.Scale)
	}
	if m.Exp != 2.5 {
		t.Errorf("exp = %g, want fallback 2.5", m.Exp)
	}
}

func TestFitterExponentClamps(t *testing.T) {
	// Synthesize a nearly flat power curve (exp ~ 0.1); a core fitter must
	// clamp to its lower bound of 1.5.
	truth := Model{Scale: 4.0, Exp: 0.1, Static: 0}
	f := NewCoreFitter(0, 4.0)
	for _, x := range []float64{1.0, 0.7, 0.5} {
		f.Observe(x, truth.At(x))
	}
	if got := f.Model().Exp; got != 1.5 {
		t.Errorf("exp = %g, want clamp at 1.5", got)
	}
	// And a steep curve clamps at the top.
	steep := Model{Scale: 4.0, Exp: 6.0, Static: 0}
	f2 := NewCoreFitter(0, 4.0)
	for _, x := range []float64{1.0, 0.7, 0.5} {
		f2.Observe(x, steep.At(x))
	}
	if got := f2.Model().Exp; got != 3.5 {
		t.Errorf("exp = %g, want clamp at 3.5", got)
	}
}

func TestFitterPhaseChange(t *testing.T) {
	// After a phase change the fitter converges to the new curve once
	// three fresh samples arrive.
	old := Model{Scale: 2.0, Exp: 2.0, Static: 0.5}
	niu := Model{Scale: 4.5, Exp: 2.9, Static: 0.5}
	f := NewCoreFitter(0.5, 1.0)
	for _, x := range []float64{1.0, 0.8, 0.6} {
		f.Observe(x, old.At(x))
	}
	for _, x := range []float64{0.95, 0.75, 0.55} {
		f.Observe(x, niu.At(x))
	}
	got := f.Model()
	if !almostEqual(got.Exp, niu.Exp, 1e-6) || !almostEqual(got.Scale, niu.Scale, 1e-5) {
		t.Errorf("post-phase fit = %v, want %v", got, niu)
	}
}

func TestFitterReset(t *testing.T) {
	f := NewCoreFitter(0.5, 4.0)
	f.Observe(0.8, 3.0)
	f.Reset()
	if len(f.history) != 0 {
		t.Error("Reset did not clear history")
	}
}

func TestFitterNoisyRecovery(t *testing.T) {
	// With ±3% multiplicative noise the fit should still land within 10%
	// of the true parameters (the paper reports <10% model error).
	truth := Model{Scale: 4.0, Exp: 2.5, Static: 0.5}
	rng := rand.New(rand.NewSource(7))
	f := NewCoreFitter(truth.Static, 1.0)
	for _, x := range []float64{1.0, 0.75, 0.55} {
		noise := 1 + (rng.Float64()-0.5)*0.06
		f.Observe(x, truth.Static+truth.Dynamic(x)*noise)
	}
	got := f.Model()
	for x := 0.55; x <= 1.0; x += 0.05 {
		rel := math.Abs(got.At(x)-truth.At(x)) / truth.At(x)
		if rel > 0.10 {
			t.Errorf("model error %.1f%% at x=%g exceeds 10%%", rel*100, x)
		}
	}
}

// Property: for any positive truth parameters within clamp range, exact
// samples at three distinct frequencies recover the curve.
func TestFitterRecoveryProperty(t *testing.T) {
	f := func(rawScale, rawExp uint16) bool {
		scale := 0.5 + float64(rawScale%1000)/100.0 // [0.5, 10.5)
		exp := 1.6 + float64(rawExp%170)/100.0      // [1.6, 3.3)
		truth := Model{Scale: scale, Exp: exp, Static: 0.3}
		fit := NewCoreFitter(truth.Static, 1.0)
		for _, x := range []float64{1.0, 0.8, 0.6} {
			fit.Observe(x, truth.At(x))
		}
		got := fit.Model()
		return almostEqual(got.Exp, truth.Exp, 1e-5) && almostEqual(got.Scale, truth.Scale, 1e-5)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSystemTotalAndPeak(t *testing.T) {
	s := &System{
		Cores: []Model{
			{Scale: 4, Exp: 3, Static: 0.5},
			{Scale: 4, Exp: 3, Static: 0.5},
		},
		Mem: Model{Scale: 26, Exp: 1, Static: 10},
		Ps:  12,
	}
	wantPeak := 12 + 36.0 + 4.5*2
	if got := s.Peak(); !almostEqual(got, wantPeak, 1e-12) {
		t.Errorf("Peak = %g, want %g", got, wantPeak)
	}
	got := s.Total([]float64{1, 1}, 1)
	if !almostEqual(got, wantPeak, 1e-12) {
		t.Errorf("Total at max = %g, want peak %g", got, wantPeak)
	}
	// Scaling down reduces power.
	lower := s.Total([]float64{0.5, 0.5}, 0.5)
	if lower >= got {
		t.Errorf("Total did not decrease when scaling down: %g >= %g", lower, got)
	}
	// Floor: static + Ps only.
	floor := s.Total([]float64{0, 0}, 0)
	if !almostEqual(floor, 12+10+1.0, 1e-12) {
		t.Errorf("floor = %g", floor)
	}
}
