package dist_test

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dist"
)

// forgetSpy wraps the predictive arbiter and records every Forget call
// the coordinator makes, delegating to the real model. Embedding keeps
// the wrapper satisfying IDRebalancer and PredictionErrorReporter
// through promotion, while the override intercepts MemberForgetter.
type forgetSpy struct {
	*cluster.PredictiveArbiter
	forgets []string
}

func (s *forgetSpy) Forget(id string) {
	s.forgets = append(s.forgets, id)
	s.PredictiveArbiter.Forget(id)
}

func (s *forgetSpy) forgot(id string) bool {
	for _, f := range s.forgets {
		if f == id {
			return true
		}
	}
	return false
}

// The predictive arbiter works unchanged over the wire: the fault-free
// 8-member fixture through SimNet is byte-identical to the in-process
// Coordinator — forecaster state and all.
func TestDistPredictiveGoldenMatchesInProcess(t *testing.T) {
	wantRecs, wantResults := runInProcess(t, goldenFixture(), cluster.NewPredictiveArbiter())

	coord, err := runDist(t, distRun{
		fixture: goldenFixture(), seed: 1,
		arbiter: func() cluster.Arbiter { return cluster.NewPredictiveArbiter() },
	})
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	if got, want := mustJSON(t, coord.Records()), mustJSON(t, wantRecs); !bytes.Equal(got, want) {
		t.Errorf("distributed predictive records diverged from in-process\n got: %.400s\nwant: %.400s", got, want)
	}
	if got, want := mustJSON(t, coord.Results()), mustJSON(t, wantResults); !bytes.Equal(got, want) {
		t.Errorf("distributed predictive results diverged from in-process\n got: %.400s\nwant: %.400s", got, want)
	}
}

// Evict → readmit must restart the member's forecaster cold: the
// coordinator calls Forget at eviction (the spy proves it), and the
// readmitted member rejoins with Warm == false, which forces the
// explicit model reset in the arbiter. Run twice, the whole degraded
// run stays byte-identical — the reset is part of the deterministic
// stream, not a side effect.
func TestDistPredictiveEvictReadmitRestartsModelCold(t *testing.T) {
	run := func() (*dist.Coordinator, *forgetSpy) {
		spy := &forgetSpy{PredictiveArbiter: cluster.NewPredictiveArbiter()}
		coord, err := runDist(t, distRun{
			fixture: chaosFixture(), seed: 15,
			arbiter: func() cluster.Arbiter { return spy },
			faults:  dist.Faults{Restarts: []dist.Restart{{Agent: "a1", Epoch: 2, RestartAfterNs: 3e9}}},
			cfg:     dist.Config{MaxEpochs: 300},
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return coord, spy
	}

	coord, spy := run()
	checkDegradation(t, chaosFixture(), coord.Records(), coord.Events())
	var sawReadmit bool
	for _, ev := range coord.Events() {
		switch ev.Type {
		case "evict":
			if !spy.forgot(ev.Member) {
				t.Errorf("member %q evicted at epoch %d but its predictor history was never forgotten", ev.Member, ev.Epoch)
			}
		case "readmit":
			sawReadmit = true
		}
	}
	if !sawReadmit {
		t.Fatalf("restart schedule produced no readmission: %+v", coord.Events())
	}

	first := [3][]byte{mustJSON(t, coord.Records()), mustJSON(t, coord.Events()), mustJSON(t, coord.Results())}
	coord2, _ := run()
	second := [3][]byte{mustJSON(t, coord2.Records()), mustJSON(t, coord2.Events()), mustJSON(t, coord2.Results())}
	for i, name := range []string{"records", "events", "results"} {
		if !bytes.Equal(first[i], second[i]) {
			t.Errorf("%s diverged between two predictive evict/readmit runs", name)
		}
	}
}

// Regression: the abandon path must drop predictor (and SLO) state just
// like evict and detach do. An agent that dies for good gets its
// members evicted mid-run and abandoned at the end; every one of them
// must reach Forget.
func TestDistPredictiveForgetOnAbandon(t *testing.T) {
	spy := &forgetSpy{PredictiveArbiter: cluster.NewPredictiveArbiter()}
	coord, err := runDist(t, distRun{
		fixture: chaosFixture(), seed: 18,
		arbiter: func() cluster.Arbiter { return spy },
		faults:  dist.Faults{Restarts: []dist.Restart{{Agent: "a2", Epoch: 1}}},
		cfg:     dist.Config{MaxEpochs: 300},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var abandoned int
	for _, ev := range coord.Events() {
		if ev.Type == "abandon" {
			abandoned++
			if !spy.forgot(ev.Member) {
				t.Errorf("member %q abandoned at epoch %d but its predictor history was never forgotten", ev.Member, ev.Epoch)
			}
		}
	}
	if abandoned == 0 {
		t.Fatalf("dead-agent schedule abandoned nobody: %+v", coord.Events())
	}
}
