package dist

import (
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/cluster"
	"repro/internal/runner"
)

// Config bounds the distributed coordinator. All durations are in the
// transport's timebase (virtual nanoseconds under SimNet, wall
// nanoseconds over HTTP).
type Config struct {
	// BudgetW is the global power budget arbitrated across members.
	// Required, positive and finite.
	BudgetW float64
	// Arbiter re-partitions the budget each epoch. Defaults to
	// cluster.NewStaticProportional(). Never share an instance.
	Arbiter cluster.Arbiter
	// Expect is how many members the coordinator gathers before running
	// epoch 0 (announces beyond it still join at later boundaries).
	// Required, >= 1.
	Expect int
	// JoinTimeoutNs bounds the gather phase; if it expires with at
	// least one member, the cluster starts short-handed. Default 30 s.
	JoinTimeoutNs int64
	// EpochDeadlineNs is the straggler deadline: a live member whose
	// report has not arrived this long after the epoch's grants were
	// pushed is evicted. Default 10 s.
	EpochDeadlineNs int64
	// GraceNs is how long an empty arbitration pool waits for an
	// evicted member to re-announce before the run is abandoned.
	// Defaults to EpochDeadlineNs.
	GraceNs int64
	// MaxEpochs hard-bounds the cluster epoch count so adversarial
	// fault schedules (eviction/readmission churn that never converges)
	// terminate. Default 100 000.
	MaxEpochs int
	// Metrics enables instrumentation (see NewMetrics). The zero value
	// disables it; metrics never influence the grant stream.
	Metrics Metrics
}

// Event is one typed pressure event of the degradation sequence:
// membership changes the coordinator decided, in decision order.
type Event struct {
	Epoch int `json:"epoch"`
	// Type is "join", "readmit", "evict", "detach" or "abandon".
	Type   string `json:"type"`
	Member string `json:"member"`
	Agent  string `json:"agent,omitempty"`
	Reason string `json:"reason,omitempty"`
}

// memberState is a member's position in the coordinator's state
// machine:
//
//	pending ──▶ live ──▶ done
//	   ▲          │└───▶ detached
//	   └─(announce)─ evicted ──▶ abandoned
//
// pending→live at an epoch boundary (welcome); live→evicted when the
// straggler deadline fires; evicted→pending when the agent
// re-announces; evicted/live→abandoned when the run terminates without
// recovery.
type memberState int

const (
	statePending memberState = iota
	stateLive
	stateEvicted
	stateDone
	stateDetached
	stateAbandoned
)

func (s memberState) String() string {
	switch s {
	case statePending:
		return "pending"
	case stateLive:
		return "live"
	case stateEvicted:
		return "evicted"
	case stateDone:
		return "done"
	case stateDetached:
		return "detached"
	case stateAbandoned:
		return "abandoned"
	}
	return "invalid"
}

// dmember is the coordinator-side state of one remote member.
type dmember struct {
	id, agent  string
	weight     float64
	floorFrac  float64
	peak       float64
	floorW     float64
	targetBIPS float64 // declared throughput SLO (0 = no contract)
	epochNs    float64 // announced control-epoch length (BIPS denominator)
	total      int

	state  memberState
	joined bool // admitted at least once (join vs readmit events)
	local  int  // member-local epochs completed
	// Arbitration inputs from the last completed epoch, exactly the
	// fields cluster.Coordinator keeps per member.
	grantW, powerW, throttle, instr float64
	// warm marks those inputs as describing a really completed epoch:
	// false from admission (join or readmit) until the member's first
	// report folds in, mirroring the in-process m.local > 0 signal, so
	// a readmitted member arbitrates cold.
	warm bool
	// pendingDone is the member-local epoch count to adopt when the
	// pending admission lands (the agent's journal length).
	pendingDone int
	// Barrier staging for the epoch in flight.
	reported bool
	rep      Msg

	result *runner.Result
}

// bips converts the member's last-epoch instruction count to a rate
// through cluster.DeriveBIPS — the same guarded division the in-process
// Coordinator uses — keeping the distributed grant stream byte-identical
// to the local one and Inf/NaN-free even for a degenerate announced
// epoch length.
func (m *dmember) bips() float64 {
	return cluster.DeriveBIPS(m.instr, m.epochNs)
}

// Coordinator is the network-facing half of the cluster layer: it owns
// the global budget and the epoch barrier and arbitrates across members
// hosted by remote agents. Run drives the protocol on the caller's
// goroutine; records, events, results and status may be read
// concurrently.
type Coordinator struct {
	cfg Config
	arb cluster.Arbiter

	// mu guards everything below: Run mutates under it, observers
	// snapshot under it, streamers cond-wait on it.
	mu       sync.Mutex
	cond     *sync.Cond
	budgetW  float64
	members  []*dmember // announce order — record, result and obs order
	byID     map[string]*dmember
	epoch    int
	records  []cluster.EpochRecord
	events   []Event
	finished bool
	runErr   error

	// Per-epoch scratch.
	live   []*dmember
	ids    []string
	obs    []cluster.Observation
	grants []float64

	// slo derives per-member SLO pressure events from each finished
	// record — the same tracker the in-process Coordinator runs, over
	// byte-identical records, so the event streams match too.
	slo *cluster.SLOTracker
	// forgetter is the arbiter's optional per-member state reset
	// (type-asserted once in NewCoordinator): called with slo.Forget
	// whenever a member leaves the pool — detach, eviction, or
	// abandonment — so a readmission starts its model cold.
	forgetter cluster.MemberForgetter
}

// MemberStatus describes one member of a coordinator snapshot.
type MemberStatus struct {
	ID     string  `json:"id"`
	Agent  string  `json:"agent"`
	State  string  `json:"state"`
	Epochs int     `json:"epochs"`
	Total  int     `json:"total"`
	GrantW float64 `json:"grant_w"`
}

// CoordStatus is a coordinator's externally visible snapshot.
type CoordStatus struct {
	Epoch    int            `json:"epoch"`
	BudgetW  float64        `json:"budget_w"`
	Arbiter  string         `json:"arbiter"`
	Finished bool           `json:"finished"`
	Error    string         `json:"error,omitempty"`
	Members  []MemberStatus `json:"members"`
}

// NewCoordinator validates the configuration and builds an idle
// coordinator; Run starts the protocol.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if err := cluster.ValidBudgetW(cfg.BudgetW); err != nil {
		return nil, err
	}
	if cfg.Expect < 1 {
		return nil, fmt.Errorf("%w: coordinator expects %d members, want >= 1", runner.ErrInvalidConfig, cfg.Expect)
	}
	if cfg.Arbiter == nil {
		cfg.Arbiter = cluster.NewStaticProportional()
	}
	if cfg.JoinTimeoutNs <= 0 {
		cfg.JoinTimeoutNs = 30e9
	}
	if cfg.EpochDeadlineNs <= 0 {
		cfg.EpochDeadlineNs = 10e9
	}
	if cfg.GraceNs <= 0 {
		cfg.GraceNs = cfg.EpochDeadlineNs
	}
	if cfg.MaxEpochs <= 0 {
		cfg.MaxEpochs = 100_000
	}
	c := &Coordinator{cfg: cfg, arb: cfg.Arbiter, budgetW: cfg.BudgetW, byID: make(map[string]*dmember), slo: cluster.NewSLOTracker()}
	c.forgetter, _ = cfg.Arbiter.(cluster.MemberForgetter)
	c.cond = sync.NewCond(&c.mu)
	return c, nil
}

// SetBudgetW retargets the global budget; the new value is read at the
// next epoch boundary, exactly like cluster.Coordinator.SetBudgetW.
func (c *Coordinator) SetBudgetW(w float64) error {
	if err := cluster.ValidBudgetW(w); err != nil {
		return err
	}
	c.mu.Lock()
	c.budgetW = w
	c.mu.Unlock()
	return nil
}

// Run executes the coordinator protocol over tr until every member is
// done (or detached/abandoned), then drains outstanding results and
// returns. The error is non-nil only for fatal coordinator failures —
// no members ever announcing, a NaN-granting arbiter, a broken
// transport. Member faults degrade the membership, never fail the run.
func (c *Coordinator) Run(tr Transport) error {
	err := c.run(tr)
	c.mu.Lock()
	c.finished = true
	c.runErr = err
	c.cond.Broadcast()
	c.mu.Unlock()
	return err
}

func (c *Coordinator) run(tr Transport) error {
	// Gather: collect announces until the expected quorum (or the join
	// timeout, starting short-handed with whoever showed up).
	deadline := tr.Now() + c.cfg.JoinTimeoutNs
	for c.memberCount() < c.cfg.Expect {
		env, timeout, err := tr.Recv(deadline)
		if err != nil {
			return err
		}
		if timeout {
			break
		}
		c.dispatch(tr, env, 0)
	}
	if c.memberCount() == 0 {
		return fmt.Errorf("%w: no members announced within the join timeout", runner.ErrInvalidConfig)
	}

	for e := 0; ; {
		c.applyBoundary(tr, e)
		live := c.liveMembers()
		if len(live) == 0 {
			if !c.anyRecoverable() {
				break
			}
			got, err := c.graceWait(tr, e)
			if err != nil {
				return err
			}
			if !got {
				c.abandonStragglers(e, "grace expired with no readmission")
				break
			}
			continue // boundary re-applies with the new announce
		}
		if e >= c.cfg.MaxEpochs {
			c.abandonStragglers(e, "cluster epoch limit reached")
			break
		}
		if err := c.runEpoch(tr, e, live); err != nil {
			return err
		}
		e++
	}
	c.drainResults(tr)
	return nil
}

func (c *Coordinator) memberCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.members)
}

// applyBoundary folds pending admissions (joins and readmissions) into
// the live set — the distributed applyPending. Readmission lands here
// and only here: an announce mid-epoch waits for the boundary.
func (c *Coordinator) applyBoundary(tr Transport, e int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.members {
		if m.state != statePending {
			continue
		}
		m.local = m.pendingDone
		m.grantW, m.powerW, m.throttle, m.instr = 0, 0, 0, 0
		m.warm = false
		m.reported = false
		typ := "join"
		if m.joined {
			typ = "readmit"
		}
		if m.local >= m.total {
			// The agent's journal already covers the whole run (it
			// finished an epoch whose report was lost, then recovered).
			// Nothing left to arbitrate; ack and await the result.
			m.state = stateDone
			tr.Send(m.agent, Msg{Type: TypeWelcome, Member: m.id, Epoch: e})
			c.eventLocked(Event{Epoch: e, Type: typ, Member: m.id, Agent: m.agent, Reason: "already finished"})
			continue
		}
		m.state = stateLive
		m.joined = true
		tr.Send(m.agent, Msg{Type: TypeWelcome, Member: m.id, Epoch: e})
		c.eventLocked(Event{Epoch: e, Type: typ, Member: m.id, Agent: m.agent})
	}
}

// liveMembers rebuilds the epoch's live list in member (announce)
// order — the order every arbitration input and record line uses.
func (c *Coordinator) liveMembers() []*dmember {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.live = c.live[:0]
	for _, m := range c.members {
		if m.state == stateLive {
			c.live = append(c.live, m)
		}
	}
	return c.live
}

func (c *Coordinator) anyRecoverable() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.members {
		if m.state == stateEvicted || m.state == statePending {
			return true
		}
	}
	return false
}

func (c *Coordinator) anyPending() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.members {
		if m.state == statePending {
			return true
		}
	}
	return false
}

// graceWait blocks until an evicted member re-announces or the grace
// deadline expires with the pool still empty.
func (c *Coordinator) graceWait(tr Transport, e int) (bool, error) {
	deadline := tr.Now() + c.cfg.GraceNs
	for {
		if c.anyPending() {
			return true, nil
		}
		env, timeout, err := tr.Recv(deadline)
		if err != nil {
			return false, err
		}
		if timeout {
			return c.anyPending(), nil
		}
		c.dispatch(tr, env, e)
	}
}

func (c *Coordinator) abandonStragglers(e int, reason string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.members {
		switch m.state {
		case stateLive, stateEvicted, statePending:
			m.state = stateAbandoned
			c.forgetLocked(m.id)
			c.eventLocked(Event{Epoch: e, Type: "abandon", Member: m.id, Agent: m.agent, Reason: reason})
		}
	}
}

// forgetLocked drops a departing member's per-member model state: the
// SLO tracker's hysteresis and the arbiter's history (when it keeps
// any). Called on every pool-departure path — detach, eviction and
// abandonment alike — so a member readmitted later provably restarts
// cold instead of inheriting state from a previous incarnation.
// Callers hold c.mu.
func (c *Coordinator) forgetLocked(id string) {
	c.slo.Forget(id)
	if c.forgetter != nil {
		c.forgetter.Forget(id)
	}
}

// runEpoch is one cluster epoch: arbitrate, push grants, run the
// barrier to the straggler deadline, evict non-reporters, emit the
// record. The deadline always fires — the barrier cannot hang.
func (c *Coordinator) runEpoch(tr Transport, e int, live []*dmember) error {
	c.mu.Lock()
	budget := c.budgetW
	// Arbitrate on the completed epoch's observations, exactly as the
	// in-process Coordinator does. A boundary admission cleared its own
	// warm flag, which is the cold-start signal every arbiter reseeds on.
	c.ids = c.ids[:0]
	c.obs = c.obs[:0]
	for _, m := range live {
		c.obs = append(c.obs, cluster.Observation{
			PeakW: m.peak, FloorW: m.floorW, Weight: m.weight,
			GrantW: m.grantW, PowerW: m.powerW, ThrottleFrac: m.throttle,
			Instr: m.instr, BIPS: m.bips(), TargetBIPS: m.targetBIPS,
			Warm: m.warm,
		})
		c.ids = append(c.ids, m.id)
	}
	if cap(c.grants) < len(live) {
		c.grants = make([]float64, len(live))
	}
	c.grants = c.grants[:len(live)]
	c.mu.Unlock()
	if err := cluster.ComputeGrants(c.arb, budget, c.ids, c.obs, c.grants); err != nil {
		return err
	}

	c.mu.Lock()
	for i, m := range live {
		m.grantW = c.grants[i]
		m.reported = false
	}
	c.mu.Unlock()
	for i, m := range live {
		tr.Send(m.agent, Msg{Type: TypeGrant, Member: m.id, Epoch: e, GrantW: c.grants[i]})
	}

	deadline := tr.Now() + c.cfg.EpochDeadlineNs
	for c.unreported(live) > 0 {
		env, timeout, err := tr.Recv(deadline)
		if err != nil {
			return err
		}
		if timeout {
			break
		}
		c.dispatch(tr, env, e)
	}

	c.mu.Lock()
	for _, m := range live {
		if m.state == stateLive && !m.reported {
			m.state = stateEvicted
			c.forgetLocked(m.id)
			c.eventLocked(Event{Epoch: e, Type: "evict", Member: m.id, Agent: m.agent, Reason: "missed the epoch straggler deadline"})
			tr.Send(m.agent, Msg{Type: TypeEvict, Member: m.id, Epoch: e})
		}
	}
	// The epoch record: grants pushed to every member that entered the
	// barrier, grant/draw/slack lines for those that answered it.
	rec := cluster.EpochRecord{Epoch: e, BudgetW: budget, Members: make([]cluster.MemberGrant, 0, len(live))}
	for _, m := range live {
		rec.GrantedW += m.grantW
		if !m.reported {
			continue
		}
		rep := m.rep
		m.reported = false
		m.powerW = rep.PowerW
		m.throttle = rep.ThrottleFrac
		m.instr = rep.Instr
		m.warm = true
		m.local = rep.MemberEpoch + 1
		if rep.Done {
			m.state = stateDone
		}
		mg := cluster.MemberGrant{
			ID: m.id, Epoch: rep.MemberEpoch,
			GrantW: m.grantW, PowerW: rep.PowerW, SlackW: m.grantW - rep.PowerW,
			ThrottleFrac: rep.ThrottleFrac, Instr: rep.Instr, Done: rep.Done,
		}
		if m.targetBIPS > 0 {
			mg.BIPS = m.bips()
			mg.TargetBIPS = m.targetBIPS
		}
		rec.Members = append(rec.Members, mg)
	}
	c.slo.Apply(&rec)
	c.records = append(c.records, rec)
	c.epoch = e + 1
	c.cond.Broadcast()
	c.mu.Unlock()
	c.cfg.Metrics.epochs.Inc()
	return nil
}

func (c *Coordinator) unreported(live []*dmember) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, m := range live {
		if m.state == stateLive && !m.reported {
			n++
		}
	}
	return n
}

// drainResults gives finished members whose result message is still in
// flight one bounded window to deliver it; whatever is missing after
// that stays nil in Results — a typed degradation, not a hang.
func (c *Coordinator) drainResults(tr Transport) {
	missing := func() int {
		c.mu.Lock()
		defer c.mu.Unlock()
		n := 0
		for _, m := range c.members {
			if m.state == stateDone && m.result == nil {
				n++
			}
		}
		return n
	}
	if missing() == 0 {
		return
	}
	deadline := tr.Now() + c.cfg.EpochDeadlineNs
	for missing() > 0 {
		env, timeout, err := tr.Recv(deadline)
		if err != nil || timeout {
			return
		}
		c.dispatch(tr, env, c.epochNow())
	}
}

func (c *Coordinator) epochNow() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// dispatch routes one inbound message. e is the cluster epoch whose
// barrier (if any) is in flight — reports for any other epoch are
// stale duplicates and dropped idempotently.
func (c *Coordinator) dispatch(tr Transport, env Envelope, e int) {
	switch env.Msg.Type {
	case TypeAnnounce:
		c.handleAnnounce(tr, env.Agent, env.Msg, e)
	case TypeReport:
		c.handleReport(env.Agent, env.Msg, e)
	case TypeResult:
		c.handleResult(env.Agent, env.Msg)
	case TypeDetach:
		c.handleDetach(env.Agent, env.Msg, e)
	case TypeHeartbeat:
		// Liveness only; the barrier judges members by reports.
		c.cfg.Metrics.heartbeats.Inc()
	default:
		// Coordinator-bound surface only; echoes of our own message
		// types are dropped.
	}
}

func (c *Coordinator) handleAnnounce(tr Transport, agent string, m Msg, e int) {
	p, err := cluster.MemberParams{Weight: m.Weight, FloorFrac: m.FloorFrac, TargetBIPS: m.TargetBIPS}.Normalize(m.Member)
	if err != nil {
		tr.Send(agent, Msg{Type: TypeError, Member: m.Member, Err: err.Error()})
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	dm := c.byID[m.Member]
	if dm == nil {
		dm = &dmember{
			id: m.Member, agent: agent,
			weight: p.Weight, floorFrac: p.FloorFrac,
			peak: m.PeakW, floorW: p.FloorFrac * m.PeakW,
			targetBIPS: p.TargetBIPS, epochNs: m.EpochNs,
			total: m.TotalEpochs, state: statePending, pendingDone: m.DoneEpochs,
		}
		c.members = append(c.members, dm)
		c.byID[m.Member] = dm
		return
	}
	switch dm.state {
	case statePending:
		// Announce retry (lost welcome): refresh and wait for the
		// boundary.
		dm.agent, dm.pendingDone = agent, m.DoneEpochs
	case stateEvicted, stateAbandoned:
		dm.state = statePending
		dm.agent, dm.pendingDone = agent, m.DoneEpochs
	case stateLive:
		if agent != dm.agent {
			tr.Send(agent, Msg{Type: TypeError, Member: m.Member,
				Err: fmt.Sprintf("dist: member %q is live from agent %q", m.Member, dm.agent)})
			return
		}
		// The agent restarted under a live member: its in-flight epoch
		// is lost. Leave the barrier now (the floor returns to the pool
		// this boundary) and requeue the recovered journal state for
		// readmission at the next one.
		dm.state = statePending
		dm.pendingDone = m.DoneEpochs
		// An evicted member contributes no line to the epoch it left,
		// even if the dead incarnation's report already landed.
		dm.reported = false
		c.forgetLocked(dm.id)
		c.eventLocked(Event{Epoch: e, Type: "evict", Member: dm.id, Agent: agent, Reason: "agent re-announced mid-epoch"})
	case stateDone, stateDetached:
		// Nothing to rejoin; ack so the agent stops retrying.
		tr.Send(agent, Msg{Type: TypeWelcome, Member: dm.id, Epoch: e})
	}
}

func (c *Coordinator) handleReport(agent string, m Msg, e int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	dm := c.byID[m.Member]
	if dm == nil || dm.state != stateLive || dm.reported || dm.agent != agent || m.Epoch != e {
		return // unknown, stale or duplicate: dropped idempotently
	}
	dm.reported = true
	dm.rep = m
}

func (c *Coordinator) handleResult(agent string, m Msg) {
	c.mu.Lock()
	defer c.mu.Unlock()
	dm := c.byID[m.Member]
	if dm == nil || dm.result != nil || dm.agent != agent {
		return
	}
	dm.result = m.Result
}

func (c *Coordinator) handleDetach(agent string, m Msg, e int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	dm := c.byID[m.Member]
	if dm == nil || dm.agent != agent {
		return
	}
	switch dm.state {
	case statePending, stateLive, stateEvicted:
		dm.state = stateDetached
		c.forgetLocked(dm.id)
		c.eventLocked(Event{Epoch: e, Type: "detach", Member: dm.id, Agent: agent})
	}
}

// eventLocked appends a typed pressure event. Callers hold c.mu.
func (c *Coordinator) eventLocked(ev Event) {
	c.cfg.Metrics.event(ev.Type)
	c.events = append(c.events, ev)
	c.cond.Broadcast()
}

// Records snapshots the epoch records emitted so far.
func (c *Coordinator) Records() []cluster.EpochRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]cluster.EpochRecord(nil), c.records...)
}

// Events snapshots the typed pressure events emitted so far.
func (c *Coordinator) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Results returns every member's final aggregate in announce order.
// Members that never delivered a result (evicted for good, abandoned,
// result lost to the network) carry nil — the typed degradation the
// chaos tests pin down.
func (c *Coordinator) Results() []cluster.MemberResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]cluster.MemberResult, len(c.members))
	for i, m := range c.members {
		out[i] = cluster.MemberResult{ID: m.id, Result: m.result}
	}
	return out
}

// Finished reports whether Run has returned, and with what error.
func (c *Coordinator) Finished() (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.finished, c.runErr
}

// Status snapshots the coordinator for the HTTP surface.
func (c *Coordinator) Status() CoordStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CoordStatus{Epoch: c.epoch, BudgetW: c.budgetW, Arbiter: c.arb.Name(), Finished: c.finished}
	if c.runErr != nil {
		st.Error = c.runErr.Error()
	}
	for _, m := range c.members {
		st.Members = append(st.Members, MemberStatus{
			ID: m.id, Agent: m.agent, State: m.state.String(),
			Epochs: m.local, Total: m.total, GrantW: m.grantW,
		})
	}
	return st
}

// NextRecord blocks until the epoch record at cursor exists and returns
// it; io.EOF once the run has finished with no record there. The
// serving layer's stream loop.
func (c *Coordinator) NextRecord(ctx context.Context, cursor int) (cluster.EpochRecord, error) {
	var rec cluster.EpochRecord
	err := c.next(ctx, func() (bool, error) {
		if cursor < len(c.records) {
			rec = c.records[cursor]
			return true, nil
		}
		return false, nil
	})
	return rec, err
}

// NextEvent blocks until the pressure event at cursor exists; io.EOF at
// end of run.
func (c *Coordinator) NextEvent(ctx context.Context, cursor int) (Event, error) {
	var ev Event
	err := c.next(ctx, func() (bool, error) {
		if cursor < len(c.events) {
			ev = c.events[cursor]
			return true, nil
		}
		return false, nil
	})
	return ev, err
}

func (c *Coordinator) next(ctx context.Context, ready func() (bool, error)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	stop := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if ok, err := ready(); ok || err != nil {
			return err
		}
		if c.finished {
			return io.EOF
		}
		c.cond.Wait()
	}
}
