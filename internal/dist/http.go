package dist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/runner"
)

// This file is the wall-clock half of the package: the HTTP faces of
// the coordinator (Server) and the agent daemon (AgentHost), plus the
// real Clock, the file-backed journal and the in-process transport the
// coordinator runs over. Everything protocol-shaped lives in
// coordinator.go / agent.go and is exercised against SimNet; the code
// here only moves bytes between the protocol and the network.

// Typed service errors, mapped onto HTTP statuses by writeErr.
var (
	// ErrNotFound names an unknown cluster or agent id.
	ErrNotFound = errors.New("dist: not found")
	// ErrExists rejects a create reusing a resident id.
	ErrExists = errors.New("dist: id already in use")
	// ErrNotFinished rejects reading a running cluster's result.
	ErrNotFinished = errors.New("dist: cluster still running")
	// errTransportClosed ends a coordinator run whose transport was shut
	// down underneath it (DELETE of a running cluster).
	errTransportClosed = errors.New("dist: transport closed")
)

// WallClock is the real-time Clock: wall nanoseconds and
// time.AfterFunc timers. SimNet supplies the deterministic twin.
type WallClock struct{}

// Now implements Clock.
func (WallClock) Now() int64 { return time.Now().UnixNano() }

// After implements Clock.
func (WallClock) After(d int64, f func()) (cancel func()) {
	t := time.AfterFunc(time.Duration(d), f)
	return func() { t.Stop() }
}

// FileJournal persists an agent's grant journal as one JSON file,
// written atomically (temp + rename) so a crash mid-save leaves the
// previous journal intact rather than a torn one.
type FileJournal struct {
	Path string
}

// Load implements JournalStore. A missing file is a fresh start, not
// an error.
func (f FileJournal) Load() (AgentJournal, bool, error) {
	b, err := os.ReadFile(f.Path)
	if errors.Is(err, fs.ErrNotExist) {
		return AgentJournal{}, false, nil
	}
	if err != nil {
		return AgentJournal{}, false, err
	}
	var j AgentJournal
	if err := json.Unmarshal(b, &j); err != nil {
		return AgentJournal{}, false, fmt.Errorf("%w: journal %s: %w", runner.ErrInvalidConfig, f.Path, err)
	}
	return j, true, nil
}

// Save implements JournalStore.
func (f FileJournal) Save(j AgentJournal) error {
	b, err := json.Marshal(j)
	if err != nil {
		return err
	}
	tmp := f.Path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, f.Path)
}

// --- coordinator transport -------------------------------------------

// chanTransport is the coordinator's HTTP-facing Transport: upstream
// messages POSTed to /msgs land in an inbox the protocol loop Recvs
// from, and downstream sends append to per-agent feed queues that
// /feed streams replay by cursor — an agent that reconnects resumes
// exactly where it left off, and the agent's own epoch/lastEpoch
// dedupe makes replayed grants harmless.
type chanTransport struct {
	mu     sync.Mutex
	cond   *sync.Cond
	inbox  []Envelope
	feeds  map[string][]Msg
	closed bool
}

func newChanTransport() *chanTransport {
	t := &chanTransport{feeds: make(map[string][]Msg)}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// Now implements Transport.
func (t *chanTransport) Now() int64 { return time.Now().UnixNano() }

// Recv implements Transport: it returns the next upstream envelope, or
// timeout=true once the wall clock passes deadline — the protocol
// loop's straggler deadlines depend on Recv never blocking past it.
func (t *chanTransport) Recv(deadline int64) (Envelope, bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if t.closed {
			return Envelope{}, false, errTransportClosed
		}
		if len(t.inbox) > 0 {
			env := t.inbox[0]
			t.inbox = t.inbox[1:]
			return env, false, nil
		}
		d := deadline - time.Now().UnixNano()
		if d <= 0 {
			return Envelope{}, true, nil
		}
		// Cond has no timed wait; an AfterFunc broadcast bounds this one.
		timer := time.AfterFunc(time.Duration(d), func() {
			t.mu.Lock()
			t.cond.Broadcast()
			t.mu.Unlock()
		})
		t.cond.Wait()
		timer.Stop()
	}
}

// Send implements Transport. It only appends to the agent's feed queue
// — it cannot block, which matters because the coordinator calls it
// with its own epoch loop running.
func (t *chanTransport) Send(agent string, m Msg) {
	t.mu.Lock()
	t.feeds[agent] = append(t.feeds[agent], m)
	t.cond.Broadcast()
	t.mu.Unlock()
}

// Close implements Transport: it fails the next Recv and ends feed
// streams once they drain their queues.
func (t *chanTransport) Close() {
	t.mu.Lock()
	t.closed = true
	t.cond.Broadcast()
	t.mu.Unlock()
}

// deliver queues one upstream message (a POST /msgs body) for Recv.
// After close it is dropped — the run it was for is over.
func (t *chanTransport) deliver(env Envelope) {
	t.mu.Lock()
	if !t.closed {
		t.inbox = append(t.inbox, env)
		t.cond.Broadcast()
	}
	t.mu.Unlock()
}

// nextFeed blocks until the agent's feed queue holds an entry at
// cursor, the transport closes (io.EOF after the queue drains), or ctx
// ends.
func (t *chanTransport) nextFeed(ctx context.Context, agent string, cursor int) (Msg, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	stop := context.AfterFunc(ctx, func() {
		t.mu.Lock()
		t.cond.Broadcast()
		t.mu.Unlock()
	})
	defer stop()
	for {
		if q := t.feeds[agent]; cursor < len(q) {
			return q[cursor], nil
		}
		if t.closed {
			return Msg{}, io.EOF
		}
		if err := ctx.Err(); err != nil {
			return Msg{}, err
		}
		t.cond.Wait()
	}
}

// --- coordinator server ----------------------------------------------

// Server hosts distributed clusters over HTTP:
//
//	POST   /dist/clusters               create a cluster (ClusterCreateRequest) → ClusterInfo
//	GET    /dist/clusters               list resident clusters
//	GET    /dist/clusters/{id}          one cluster's ClusterInfo
//	POST   /dist/clusters/{id}/msgs     deliver one wire Msg (agent → coordinator) → 204
//	GET    /dist/clusters/{id}/feed     NDJSON downstream Msg stream for ?agent=A; ?from=N resumes
//	GET    /dist/clusters/{id}/stream   NDJSON cluster.EpochRecord stream; ?from=N resumes
//	GET    /dist/clusters/{id}/events   NDJSON membership Event stream; ?from=N resumes
//	GET    /dist/clusters/{id}/result   per-member results (finished clusters, else 409)
//	POST   /dist/clusters/{id}/budget   {"budget_w": w} → boundary retarget
//	DELETE /dist/clusters/{id}          close the transport and remove
//
// Every /msgs body and /feed line is one wire Msg (see wire.go) — the
// same frames SimNet round-trips in the deterministic tests. Idle
// streams emit keepalives: {"heartbeat":true} on /stream and /events
// (skipped by golden comparators), a {"type":"heartbeat"} wire message
// on /feed so every feed line still decodes with DecodeMsg.
type Server struct {
	// StreamHeartbeat is the idle keepalive period for the NDJSON
	// endpoints; 0 means the 15 s default, negative disables.
	StreamHeartbeat time.Duration

	// Metrics enables instrumentation (see NewMetrics); set it before
	// serving. The zero value disables it.
	Metrics Metrics

	mu       sync.Mutex
	clusters map[string]*hostedCluster
	nextID   int
}

type hostedCluster struct {
	id    string
	coord *Coordinator
	tr    *chanTransport
}

// NewServer returns an empty coordinator server.
func NewServer() *Server {
	return &Server{clusters: make(map[string]*hostedCluster)}
}

// Register mounts the server's routes on mux.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /dist/clusters", s.create)
	mux.HandleFunc("GET /dist/clusters", s.list)
	mux.HandleFunc("GET /dist/clusters/{id}", s.status)
	mux.HandleFunc("POST /dist/clusters/{id}/msgs", s.msgs)
	mux.HandleFunc("GET /dist/clusters/{id}/feed", s.feed)
	mux.HandleFunc("GET /dist/clusters/{id}/stream", s.stream)
	mux.HandleFunc("GET /dist/clusters/{id}/events", s.events)
	mux.HandleFunc("GET /dist/clusters/{id}/result", s.result)
	mux.HandleFunc("POST /dist/clusters/{id}/budget", s.budget)
	mux.HandleFunc("DELETE /dist/clusters/{id}", s.del)
}

// Handler returns a standalone handler for the server's routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.Register(mux)
	return mux
}

// Close shuts every resident cluster's transport down.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, hc := range s.clusters {
		hc.tr.Close()
	}
}

// ClusterCreateRequest is the body of POST /dist/clusters. Durations
// are milliseconds; zero values take the Config defaults.
type ClusterCreateRequest struct {
	// ID names the cluster; generated ("dc1", "dc2", …) when empty.
	ID string `json:"id,omitempty"`
	// BudgetW is the global budget in watts. Required.
	BudgetW float64 `json:"budget_w"`
	// Arbiter picks the arbitration policy by registered name (default
	// "static"); the authoritative list is cluster.ArbiterNames.
	Arbiter string `json:"arbiter,omitempty"`
	// Expect is how many members to gather before epoch 0. Required.
	Expect          int   `json:"expect"`
	JoinTimeoutMs   int64 `json:"join_timeout_ms,omitempty"`
	EpochDeadlineMs int64 `json:"epoch_deadline_ms,omitempty"`
	GraceMs         int64 `json:"grace_ms,omitempty"`
	MaxEpochs       int   `json:"max_epochs,omitempty"`
}

// ClusterInfo is one hosted cluster's externally visible snapshot.
type ClusterInfo struct {
	ID string `json:"id"`
	CoordStatus
}

// ClusterResult is the body of GET /dist/clusters/{id}/result.
type ClusterResult struct {
	Results []cluster.MemberResult `json:"results"`
	Error   string                 `json:"error,omitempty"`
}

// validID bounds resource ids: they appear in URLs and journal file
// names, so only [A-Za-z0-9._-] up to 64 runes is accepted.
func validID(s string) bool {
	if s == "" || len(s) > 64 {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

func (s *Server) create(w http.ResponseWriter, r *http.Request) {
	var req ClusterCreateRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	arb := cluster.Arbiter(nil)
	if req.Arbiter != "" {
		a, ok := cluster.ArbiterByName(req.Arbiter)
		if !ok {
			writeErr(w, fmt.Errorf("%w: unknown arbiter %q (want %s)", runner.ErrInvalidConfig, req.Arbiter, strings.Join(cluster.ArbiterNames(), ", ")))
			return
		}
		arb = a
	}
	coord, err := NewCoordinator(Config{
		BudgetW:         req.BudgetW,
		Arbiter:         arb,
		Expect:          req.Expect,
		JoinTimeoutNs:   req.JoinTimeoutMs * 1e6,
		EpochDeadlineNs: req.EpochDeadlineMs * 1e6,
		GraceNs:         req.GraceMs * 1e6,
		MaxEpochs:       req.MaxEpochs,
		Metrics:         s.Metrics,
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	s.mu.Lock()
	id := req.ID
	if id == "" {
		s.nextID++
		id = "dc" + strconv.Itoa(s.nextID)
	} else if !validID(id) {
		s.mu.Unlock()
		writeErr(w, fmt.Errorf("%w: cluster id %q, want 1-64 of [A-Za-z0-9._-]", runner.ErrInvalidConfig, id))
		return
	}
	if _, dup := s.clusters[id]; dup {
		s.mu.Unlock()
		writeErr(w, fmt.Errorf("%w: cluster %q", ErrExists, id))
		return
	}
	hc := &hostedCluster{id: id, coord: coord, tr: newChanTransport()}
	s.clusters[id] = hc
	s.mu.Unlock()
	go func() {
		// Run's error lands in the coordinator status; closing the
		// transport afterwards ends the feed streams cleanly.
		_ = hc.coord.Run(hc.tr)
		hc.tr.Close()
	}()
	w.Header().Set("Location", "/dist/clusters/"+id)
	writeJSON(w, http.StatusCreated, ClusterInfo{ID: id, CoordStatus: coord.Status()})
}

func (s *Server) lookup(id string) (*hostedCluster, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	hc, ok := s.clusters[id]
	if !ok {
		return nil, fmt.Errorf("%w: cluster %q", ErrNotFound, id)
	}
	return hc, nil
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	infos := make([]ClusterInfo, 0, len(s.clusters))
	for _, hc := range s.clusters {
		infos = append(infos, ClusterInfo{ID: hc.id, CoordStatus: hc.coord.Status()})
	}
	s.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	hc, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ClusterInfo{ID: hc.id, CoordStatus: hc.coord.Status()})
}

// msgs delivers one agent → coordinator wire message. The body is one
// Msg frame, decoded with the same strict DecodeMsg the fuzzer beats
// on — hostile bytes get a typed 400, never a panic or a hollow 200.
func (s *Server) msgs(w http.ResponseWriter, r *http.Request) {
	hc, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxResultBytes+1))
	if err != nil {
		writeErr(w, fmt.Errorf("%w: message body: %v", ErrBadMessage, err))
		return
	}
	m, err := DecodeMsg(body)
	if err != nil {
		s.Metrics.wireMsgs.Inc()
		writeErr(w, err)
		return
	}
	if m.Agent == "" {
		s.Metrics.wireMsgs.Inc()
		writeErr(w, fmt.Errorf("%w: %s message names no agent", ErrBadMessage, m.Type))
		return
	}
	hc.tr.deliver(Envelope{Agent: m.Agent, Msg: m})
	w.WriteHeader(http.StatusNoContent)
}

// feed streams the coordinator → agent message queue for one agent as
// NDJSON wire frames. ?from=N skips the first N queued messages, so a
// reconnecting agent replays nothing it already handled; keepalives
// are {"type":"heartbeat"} frames and do not advance the cursor.
func (s *Server) feed(w http.ResponseWriter, r *http.Request) {
	hc, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	agent := r.URL.Query().Get("agent")
	if agent == "" {
		writeErr(w, fmt.Errorf("%w: feed needs ?agent=", runner.ErrInvalidConfig))
		return
	}
	streamNDJSON(w, r, s.heartbeat(), Msg{Type: TypeHeartbeat},
		func(ctx context.Context, cursor int) (any, error) {
			return hc.tr.nextFeed(ctx, agent, cursor)
		})
}

func (s *Server) stream(w http.ResponseWriter, r *http.Request) {
	hc, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	streamNDJSON(w, r, s.heartbeat(), heartbeatLine{Heartbeat: true},
		func(ctx context.Context, cursor int) (any, error) {
			return hc.coord.NextRecord(ctx, cursor)
		})
}

func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	hc, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	streamNDJSON(w, r, s.heartbeat(), heartbeatLine{Heartbeat: true},
		func(ctx context.Context, cursor int) (any, error) {
			return hc.coord.NextEvent(ctx, cursor)
		})
}

func (s *Server) result(w http.ResponseWriter, r *http.Request) {
	hc, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	finished, runErr := hc.coord.Finished()
	if !finished {
		writeErr(w, fmt.Errorf("%w: cluster %q", ErrNotFinished, hc.id))
		return
	}
	res := ClusterResult{Results: hc.coord.Results()}
	if runErr != nil {
		res.Error = runErr.Error()
	}
	writeJSON(w, http.StatusOK, res)
}

// budgetRequest is the body of POST /dist/clusters/{id}/budget.
type budgetRequest struct {
	BudgetW float64 `json:"budget_w"`
}

func (s *Server) budget(w http.ResponseWriter, r *http.Request) {
	hc, err := s.lookup(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	var req budgetRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if err := hc.coord.SetBudgetW(req.BudgetW); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{"budget_w": req.BudgetW})
}

func (s *Server) del(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	hc, ok := s.clusters[id]
	if ok {
		delete(s.clusters, id)
	}
	s.mu.Unlock()
	if !ok {
		writeErr(w, fmt.Errorf("%w: cluster %q", ErrNotFound, id))
		return
	}
	hc.tr.Close()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) heartbeat() time.Duration { return effectiveHeartbeat(s.StreamHeartbeat) }

// --- agent host -------------------------------------------------------

// AgentHost exposes this daemon's local sessions as remote cluster
// members:
//
//	POST   /dist/agents        create an agent (AgentCreateRequest) → AgentInfo
//	GET    /dist/agents        list resident agents
//	GET    /dist/agents/{id}   one agent's AgentInfo
//	DELETE /dist/agents/{id}   detach its members and remove
//
// Each created agent runs two goroutines against its coordinator URL:
// a sender draining a bounded queue of upstream messages into POST
// {coordinator}/msgs, and a follower tailing GET {coordinator}/feed
// from a cursor, decoding each NDJSON frame and handing it to the
// protocol Agent. Both survive coordinator restarts: the sender is
// best-effort (the protocol's announce backoff recovers lost frames)
// and the follower reconnects from its cursor with backoff.
type AgentHost struct {
	// Metrics enables instrumentation (see NewMetrics); set it before
	// serving. The zero value disables it.
	Metrics Metrics

	build      BuildFunc
	journalDir string

	// send POSTs one bounded frame and must not hang forever; follow
	// tails an unbounded stream and must not time out while idle.
	send   *http.Client
	follow *http.Client

	mu     sync.Mutex
	agents map[string]*hostedAgent
	nextID int
}

type hostedAgent struct {
	id          string
	coordinator string
	agent       *Agent
	sendq       chan Msg
	cancel      context.CancelFunc
}

// NewAgentHost returns an agent host building member sessions with
// build. journalDir, when non-empty, gives each agent a FileJournal at
// agent-<id>.json under it — the restart-recovery path; empty disables
// journaling.
func NewAgentHost(build BuildFunc, journalDir string) *AgentHost {
	return &AgentHost{
		build:      build,
		journalDir: journalDir,
		send:       &http.Client{Timeout: 10 * time.Second},
		follow:     &http.Client{},
		agents:     make(map[string]*hostedAgent),
	}
}

// Register mounts the host's routes on mux.
func (h *AgentHost) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /dist/agents", h.create)
	mux.HandleFunc("GET /dist/agents", h.list)
	mux.HandleFunc("GET /dist/agents/{id}", h.status)
	mux.HandleFunc("DELETE /dist/agents/{id}", h.del)
}

// Handler returns a standalone handler for the host's routes.
func (h *AgentHost) Handler() http.Handler {
	mux := http.NewServeMux()
	h.Register(mux)
	return mux
}

// Close stops every resident agent's goroutines (without detaching —
// a restarted daemon re-creates the agents and recovers from their
// journals).
func (h *AgentHost) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, ha := range h.agents {
		ha.agent.Stop()
		ha.cancel()
	}
}

// AgentMemberRequest declares one hosted member: arbitration
// parameters plus the session to build, in exactly the schema of
// POST /sessions (the host's BuildFunc decides).
type AgentMemberRequest struct {
	ID        string          `json:"id"`
	Weight    float64         `json:"weight,omitempty"`
	FloorFrac float64         `json:"floor_frac,omitempty"`
	Session   json.RawMessage `json:"session"`
}

// AgentCreateRequest is the body of POST /dist/agents.
type AgentCreateRequest struct {
	// ID names the agent to the coordinator; generated when empty. An
	// agent re-created with its previous id and a journal directory
	// recovers its members' exact pre-crash state.
	ID string `json:"id,omitempty"`
	// Coordinator is the cluster's base URL, e.g.
	// http://host:8080/dist/clusters/dc1. Required.
	Coordinator string `json:"coordinator"`
	// Members may be empty when the journal already holds them.
	Members []AgentMemberRequest `json:"members,omitempty"`
	// AnnounceBackoffMs / HeartbeatMs tune AgentConfig; zero keeps the
	// defaults (2 s first re-announce, heartbeats off).
	AnnounceBackoffMs int64 `json:"announce_backoff_ms,omitempty"`
	HeartbeatMs       int64 `json:"heartbeat_ms,omitempty"`
}

// AgentInfo is one hosted agent's externally visible snapshot.
type AgentInfo struct {
	ID          string `json:"id"`
	Coordinator string `json:"coordinator"`
	AgentStatus
}

func (h *AgentHost) create(w http.ResponseWriter, r *http.Request) {
	var req AgentCreateRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	coordURL := strings.TrimRight(req.Coordinator, "/")
	if coordURL == "" {
		writeErr(w, fmt.Errorf("%w: agent names no coordinator URL", runner.ErrInvalidConfig))
		return
	}
	h.mu.Lock()
	id := req.ID
	if id == "" {
		h.nextID++
		id = "ag" + strconv.Itoa(h.nextID)
	} else if !validID(id) {
		h.mu.Unlock()
		writeErr(w, fmt.Errorf("%w: agent id %q, want 1-64 of [A-Za-z0-9._-]", runner.ErrInvalidConfig, id))
		return
	}
	if _, dup := h.agents[id]; dup {
		h.mu.Unlock()
		writeErr(w, fmt.Errorf("%w: agent %q", ErrExists, id))
		return
	}
	h.mu.Unlock()

	specs := make([]MemberSpec, len(req.Members))
	for i, m := range req.Members {
		specs[i] = MemberSpec{ID: m.ID, Weight: m.Weight, FloorFrac: m.FloorFrac, Spec: m.Session}
	}
	var journal JournalStore
	if h.journalDir != "" {
		journal = FileJournal{Path: filepath.Join(h.journalDir, "agent-"+id+".json")}
	}
	ha := &hostedAgent{id: id, coordinator: coordURL, sendq: make(chan Msg, 256)}
	agent, err := NewAgent(AgentConfig{
		Name:    id,
		Members: specs,
		Build:   h.build,
		Send: func(m Msg) error {
			// Best effort under the protocol mutex: queue, never block.
			// A full queue drops the frame; announce backoff and grant
			// resends recover it.
			select {
			case ha.sendq <- m:
			default:
			}
			return nil
		},
		Clock:             WallClock{},
		Journal:           journal,
		AnnounceBackoffNs: req.AnnounceBackoffMs * 1e6,
		HeartbeatNs:       req.HeartbeatMs * 1e6,
		Metrics:           h.Metrics,
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	ha.agent = agent

	h.mu.Lock()
	if _, dup := h.agents[id]; dup {
		h.mu.Unlock()
		writeErr(w, fmt.Errorf("%w: agent %q", ErrExists, id))
		return
	}
	h.agents[id] = ha
	h.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	ha.cancel = cancel
	go h.runSender(ctx, ha)
	go h.runFollower(ctx, ha)
	agent.Start()

	w.Header().Set("Location", "/dist/agents/"+id)
	writeJSON(w, http.StatusCreated, AgentInfo{ID: id, Coordinator: coordURL, AgentStatus: agent.Status()})
}

// runSender drains the agent's upstream queue into POST /msgs. Frames
// that fail to post are dropped — the protocol layer already treats
// Send as best effort.
func (h *AgentHost) runSender(ctx context.Context, ha *hostedAgent) {
	post := func(m Msg) {
		b, err := EncodeMsg(m)
		if err != nil {
			return
		}
		resp, err := h.send.Post(ha.coordinator+"/msgs", "application/json", bytes.NewReader(b))
		if err != nil {
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}
	for {
		select {
		case m := <-ha.sendq:
			post(m)
		case <-ctx.Done():
			// Flush what is already queued (detach notices on DELETE),
			// bounded by the send client's timeout per frame.
			for {
				select {
				case m := <-ha.sendq:
					post(m)
				default:
					return
				}
			}
		}
	}
}

// runFollower tails GET /feed from a cursor, handing every decoded
// frame to the protocol agent. Disconnects (including a coordinator
// restart) reconnect from the cursor with backoff; the stream's
// keepalive frames do not advance it. The follower exits when every
// member reaches a terminal state or the cluster is gone (404).
func (h *AgentHost) runFollower(ctx context.Context, ha *hostedAgent) {
	cursor := 0
	backoff := 500 * time.Millisecond
	for ctx.Err() == nil && !ha.agent.Done() {
		n, gone := h.followOnce(ctx, ha, cursor)
		cursor += n
		if gone {
			return
		}
		if n > 0 {
			backoff = 500 * time.Millisecond
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return
		}
		if backoff *= 2; backoff > 5*time.Second {
			backoff = 5 * time.Second
		}
	}
}

// followOnce runs one feed connection until it ends, returning how
// many data frames were consumed and whether the cluster is gone.
func (h *AgentHost) followOnce(ctx context.Context, ha *hostedAgent, cursor int) (n int, gone bool) {
	url := fmt.Sprintf("%s/feed?agent=%s&from=%d", ha.coordinator, ha.id, cursor)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, true
	}
	resp, err := h.follow.Do(req)
	if err != nil {
		return 0, false
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusNotFound {
		return 0, true
	}
	if resp.StatusCode != http.StatusOK {
		return 0, false
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), MaxMsgBytes+1)
	for sc.Scan() {
		m, err := DecodeMsg(sc.Bytes())
		if err != nil {
			// A frame this coordinator cannot produce means a broken
			// stream, not a broken protocol: drop the connection and
			// resume from the cursor.
			h.Metrics.wireFeed.Inc()
			return n, false
		}
		if m.Type == TypeHeartbeat {
			continue
		}
		ha.agent.Handle(m)
		n++
		if ha.agent.Done() {
			return n, true
		}
	}
	return n, false
}

func (h *AgentHost) list(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	infos := make([]AgentInfo, 0, len(h.agents))
	for _, ha := range h.agents {
		infos = append(infos, AgentInfo{ID: ha.id, Coordinator: ha.coordinator, AgentStatus: ha.agent.Status()})
	}
	h.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	writeJSON(w, http.StatusOK, infos)
}

func (h *AgentHost) status(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	ha, ok := h.agents[r.PathValue("id")]
	h.mu.Unlock()
	if !ok {
		writeErr(w, fmt.Errorf("%w: agent %q", ErrNotFound, r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, AgentInfo{ID: ha.id, Coordinator: ha.coordinator, AgentStatus: ha.agent.Status()})
}

func (h *AgentHost) del(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	h.mu.Lock()
	ha, ok := h.agents[id]
	if ok {
		delete(h.agents, id)
	}
	h.mu.Unlock()
	if !ok {
		writeErr(w, fmt.Errorf("%w: agent %q", ErrNotFound, id))
		return
	}
	// Detach queues the withdrawal notices; cancelling lets the sender
	// flush them and stops the follower.
	ha.agent.Detach()
	ha.cancel()
	w.WriteHeader(http.StatusNoContent)
}

// --- shared HTTP plumbing --------------------------------------------

const (
	// maxBodyBytes bounds control-plane request bodies (cluster and
	// agent creates); /msgs has its own wire-level cap.
	maxBodyBytes = 1 << 20
	// defaultStreamHeartbeat keeps idle NDJSON streams visibly alive
	// through proxies without a write timeout.
	defaultStreamHeartbeat = 15 * time.Second
)

func effectiveHeartbeat(d time.Duration) time.Duration {
	switch {
	case d < 0:
		return 0
	case d == 0:
		return defaultStreamHeartbeat
	}
	return d
}

// heartbeatLine is the idle keepalive on record/event streams, exactly
// {"heartbeat":true} — the same shape fastcapd's session streams use,
// skipped by golden comparators.
type heartbeatLine struct {
	Heartbeat bool `json:"heartbeat"`
}

// writeErr maps typed service errors onto HTTP statuses.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrBadMessage), errors.Is(err, runner.ErrInvalidConfig):
		code = http.StatusBadRequest
	case errors.Is(err, ErrExists), errors.Is(err, ErrNotFinished):
		code = http.StatusConflict
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// decodeBody strictly decodes a JSON request body.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: request body: %w", runner.ErrInvalidConfig, err)
	}
	return nil
}

// streamNDJSON is the shared live-follow loop: parse ?from, commit the
// NDJSON header, then one record per line until next fails. When no
// record lands within hb the keepalive value is emitted and the same
// cursor retried, so idle streams stay alive without a write timeout;
// keepalives never advance the cursor.
func streamNDJSON(w http.ResponseWriter, r *http.Request, hb time.Duration, keepalive any, next func(ctx context.Context, cursor int) (any, error)) {
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, fmt.Errorf("%w: stream cursor %q, want a non-negative integer", runner.ErrInvalidConfig, v))
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(v any) bool {
		if err := enc.Encode(v); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for cursor := from; ; {
		ctx, cancel := r.Context(), context.CancelFunc(nil)
		if hb > 0 {
			ctx, cancel = context.WithTimeout(ctx, hb)
		}
		rec, err := next(ctx, cursor)
		if cancel != nil {
			cancel()
		}
		if err != nil {
			if hb > 0 && errors.Is(err, context.DeadlineExceeded) && r.Context().Err() == nil {
				if !emit(keepalive) {
					return
				}
				continue
			}
			// io.EOF: clean end. Context errors: the client left. Either
			// way the response can only end here.
			return
		}
		if !emit(rec) {
			return
		}
		cursor++
	}
}
