package dist_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dist"
)

// The decoder's typed-rejection table: every malformed shape fails with
// ErrBadMessage, never a panic and never a silent zero value.
func TestDecodeMsgRejectsHostileInput(t *testing.T) {
	huge := `{"type":"announce","member":"` + strings.Repeat("x", dist.MaxMsgBytes) + `"}`
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"truncated", `{"type":"gra`},
		{"not json", "::::"},
		{"unknown type", `{"type":"gossip","member":"m"}`},
		{"unknown field", `{"type":"grant","member":"m","grant_w":1,"backdoor":true}`},
		{"trailing data", `{"type":"heartbeat"}{"type":"heartbeat"}`},
		{"oversized control", huge},
		{"grant without member", `{"type":"grant","grant_w":5}`},
		{"grant zero watts", `{"type":"grant","member":"m"}`},
		{"grant overflow", `{"type":"grant","member":"m","grant_w":1e999}`},
		{"negative epoch", `{"type":"grant","member":"m","grant_w":1,"epoch":-1}`},
		{"announce zero peak", `{"type":"announce","member":"m","total_epochs":4}`},
		{"announce bad floor", `{"type":"announce","member":"m","peak_w":10,"floor_frac":1.5,"total_epochs":4}`},
		{"announce done past total", `{"type":"announce","member":"m","peak_w":10,"total_epochs":4,"done_epochs":5}`},
		{"announce huge total", `{"type":"announce","member":"m","peak_w":10,"total_epochs":2000000000}`},
		{"report throttle out of range", `{"type":"report","member":"m","throttle_frac":1.5}`},
		{"report negative power", `{"type":"report","member":"m","power_w":-1}`},
		{"result without payload", `{"type":"result","member":"m"}`},
		{"error without cause", `{"type":"error"}`},
		{"long id", `{"type":"heartbeat","member":"` + strings.Repeat("a", 257) + `"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := dist.DecodeMsg([]byte(tc.in)); !errors.Is(err, dist.ErrBadMessage) {
				t.Errorf("DecodeMsg(%q) error = %v, want ErrBadMessage", tc.in, err)
			}
		})
	}
}

// FuzzDistMessage hammers the wire decoder with arbitrary bytes: it
// must return a typed error or a message that survives a lossless
// re-encode round-trip — and never panic. The CI smoke runs this for a
// bounded interval on every push.
func FuzzDistMessage(f *testing.F) {
	seeds := []string{
		`{"type":"announce","member":"m1","agent":"a1","peak_w":40,"weight":2,"floor_frac":0.1,"total_epochs":8}`,
		`{"type":"announce","member":"m1","peak_w":40,"total_epochs":8,"done_epochs":3}`,
		`{"type":"welcome","member":"m1","epoch":2}`,
		`{"type":"grant","member":"m1","epoch":3,"grant_w":17.25}`,
		`{"type":"report","member":"m1","epoch":3,"member_epoch":2,"power_w":12.5,"throttle_frac":0.25,"instr":1e6,"done":true}`,
		`{"type":"evict","member":"m1","epoch":3}`,
		`{"type":"detach","member":"m1"}`,
		`{"type":"heartbeat","agent":"a1"}`,
		`{"type":"error","err":"boom"}`,
		`{"type":"result","member":"m1","result":{"Mix":"MIX1","PolicyName":"fastcap","Cores":4,"PeakW":40,"BudgetW":28,"TotalInstr":[1,2],"NsPerInstr":[3,4],"TotalTimeNs":5e6}}`,
		`{"type":"grant","member":"m1","grant_w":NaN}`,
		`{"type":"grant","member":"m1","grant_w":1e999}`,
		`{"type":"announce","member":"m1","peak_w":-40,"total_epochs":8}`,
		`{"type":"announce","member":"m1","peak_w":40,"total_epochs":8,"target_bips":4,"epoch_ns":5e5}`,
		`{"type":"announce","member":"m1","peak_w":40,"total_epochs":8,"target_bips":-4,"epoch_ns":5e5}`,
		`{"type":"announce","member":"m1","peak_w":40,"total_epochs":8,"target_bips":4}`,
		"",
		"{",
		"[1,2,3]",
		"null",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := dist.DecodeMsg(data)
		if err != nil {
			if !errors.Is(err, dist.ErrBadMessage) {
				t.Fatalf("DecodeMsg error %v is not ErrBadMessage", err)
			}
			return
		}
		// Accepted messages must round-trip: what we re-encode decodes
		// back clean, so accepted input is always forwardable.
		b, err := dist.EncodeMsg(m)
		if err != nil {
			t.Fatalf("EncodeMsg on accepted message: %v", err)
		}
		if _, err := dist.DecodeMsg(b); err != nil {
			t.Fatalf("re-decode of accepted message: %v\nwire: %s", err, b)
		}
	})
}
