package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/runner"
)

// MemberSpec declares one member an agent hosts: arbitration
// parameters plus an opaque session spec the BuildFunc turns into a
// live runner.Session (the serving layer's request JSON over HTTP, a
// test fixture handle under SimNet).
type MemberSpec struct {
	ID        string  `json:"id"`
	Weight    float64 `json:"weight,omitempty"`
	FloorFrac float64 `json:"floor_frac,omitempty"`
	// TargetBIPS is the member's optional throughput SLO in
	// giga-instructions per second; 0 means no contract.
	TargetBIPS float64         `json:"target_bips,omitempty"`
	Spec       json.RawMessage `json:"spec,omitempty"`
}

// MemberJournal is one member's durable state: its spec and every grant
// applied so far, in order. Replaying the grants through a freshly
// built session reproduces the member's state bit for bit — the
// simulator is deterministic, so the grant sequence IS the state.
type MemberJournal struct {
	MemberSpec
	Grants []float64 `json:"grants,omitempty"`
}

// AgentJournal is an agent's full durable state.
type AgentJournal struct {
	Agent   string          `json:"agent"`
	Members []MemberJournal `json:"members"`
}

// JournalStore persists an AgentJournal across agent restarts. Save is
// called after appending each grant and before stepping the session
// under it, so a crash at any point recovers to a state the coordinator
// can readmit: either the epoch never ran (journal without it) or it
// ran to completion (replay covers it).
type JournalStore interface {
	// Load returns the stored journal, ok=false when none exists yet.
	Load() (j AgentJournal, ok bool, err error)
	Save(j AgentJournal) error
}

// MemJournal is an in-memory JournalStore that survives simulated
// restarts: the chaos harness keeps the store, kills the Agent, and
// hands the same store to its replacement.
type MemJournal struct {
	mu sync.Mutex
	j  AgentJournal
	ok bool
}

// Load implements JournalStore.
func (s *MemJournal) Load() (AgentJournal, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return cloneJournal(s.j), s.ok, nil
}

// Save implements JournalStore.
func (s *MemJournal) Save(j AgentJournal) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.j, s.ok = cloneJournal(j), true
	return nil
}

func cloneJournal(j AgentJournal) AgentJournal {
	out := AgentJournal{Agent: j.Agent, Members: make([]MemberJournal, len(j.Members))}
	for i, m := range j.Members {
		out.Members[i] = MemberJournal{
			MemberSpec: MemberSpec{
				ID: m.ID, Weight: m.Weight, FloorFrac: m.FloorFrac,
				TargetBIPS: m.TargetBIPS,
				Spec:       append(json.RawMessage(nil), m.Spec...),
			},
			Grants: append([]float64(nil), m.Grants...),
		}
	}
	return out
}

// BuildFunc turns a member's opaque spec into a fresh session at epoch
// zero. Called at agent construction and again during restart recovery.
type BuildFunc func(spec json.RawMessage) (*runner.Session, error)

// AgentConfig configures an Agent.
type AgentConfig struct {
	// Name identifies the agent to the coordinator. Required.
	Name string
	// Members are the sessions this agent hosts. Required unless the
	// journal already holds them (restart recovery).
	Members []MemberSpec
	// Build constructs sessions from member specs. Required.
	Build BuildFunc
	// Send delivers one message to the coordinator, best effort.
	// Required.
	Send func(Msg) error
	// Clock schedules announce retries and idle heartbeats. Required.
	Clock Clock
	// Journal persists grant history for restart recovery. Optional:
	// nil disables journaling (a restarted agent starts from scratch).
	Journal JournalStore
	// AnnounceBackoffNs is the first re-announce delay; it doubles per
	// attempt up to BackoffMaxNs. Default 2 s.
	AnnounceBackoffNs int64
	// BackoffMaxNs caps the announce backoff. Default 60 s.
	BackoffMaxNs int64
	// MaxAnnounce bounds announce attempts per admission; past it the
	// member fails locally rather than retrying forever. Default 10.
	MaxAnnounce int
	// HeartbeatNs sends coordinator-bound heartbeats at this period
	// while members wait on grants. 0 disables.
	HeartbeatNs int64
	// Metrics enables instrumentation (see NewMetrics). The zero value
	// disables it.
	Metrics Metrics
}

// amember state machine: announcing → active → done, with failed as
// the local sink for fatal errors (coordinator refusal, session error,
// announce retries exhausted).
type amemberState int

const (
	mAnnouncing amemberState = iota
	mActive
	mDone
	mFailed
)

func (s amemberState) String() string {
	switch s {
	case mAnnouncing:
		return "announcing"
	case mActive:
		return "active"
	case mDone:
		return "done"
	case mFailed:
		return "failed"
	}
	return "invalid"
}

// amember is the agent-side state of one hosted member.
type amember struct {
	spec     MemberSpec
	ses      *runner.Session
	peak     float64
	epochNs  float64 // announced so the coordinator can rate telemetry
	maxSteps []int
	total    int

	state amemberState
	local int // member-local epochs executed
	// lastEpoch is the highest cluster epoch whose grant we executed;
	// duplicate grants for it resend the cached report instead of
	// stepping twice.
	lastEpoch  int
	lastReport Msg
	result     *runner.Result
	failure    error

	// Announce retry state.
	attempts   int
	backoffNs  int64
	announceAt int64 // next re-announce time, 0 when none scheduled
}

// Agent hosts member sessions for a remote coordinator: it announces
// them, executes pushed grants (apply budget, step one epoch, report
// draw/slack/throttle), journals every grant for crash recovery, and
// re-announces with bounded exponential backoff after an eviction.
// Handle is the message entry point; it is safe for concurrent use.
type Agent struct {
	cfg AgentConfig

	mu          sync.Mutex
	members     []*amember
	byID        map[string]*amember
	journal     AgentJournal
	stopped     bool
	cancelTimer func()
	nextBeat    int64
}

// MemberState describes one hosted member in an agent snapshot.
type MemberState struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Epochs int    `json:"epochs"`
	Total  int    `json:"total"`
	Error  string `json:"error,omitempty"`
}

// AgentStatus is an agent's externally visible snapshot.
type AgentStatus struct {
	Agent   string        `json:"agent"`
	Members []MemberState `json:"members"`
}

// NewAgent builds an agent and recovers from its journal if the store
// holds one: sessions are rebuilt from their specs and the journaled
// grant sequence is replayed step by step, leaving each member in the
// exact state it reached before the crash. Start announces the members.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("%w: agent without a name", runner.ErrInvalidConfig)
	}
	if cfg.Build == nil || cfg.Send == nil || cfg.Clock == nil {
		return nil, fmt.Errorf("%w: agent %q needs Build, Send and Clock", runner.ErrInvalidConfig, cfg.Name)
	}
	if cfg.AnnounceBackoffNs <= 0 {
		cfg.AnnounceBackoffNs = 2e9
	}
	if cfg.BackoffMaxNs < cfg.AnnounceBackoffNs {
		cfg.BackoffMaxNs = 60e9
	}
	if cfg.MaxAnnounce <= 0 {
		cfg.MaxAnnounce = 10
	}

	journaled := []MemberJournal(nil)
	if cfg.Journal != nil {
		j, ok, err := cfg.Journal.Load()
		if err != nil {
			return nil, fmt.Errorf("dist: agent %q journal: %w", cfg.Name, err)
		}
		if ok {
			journaled = j.Members
			cfg.Metrics.recoveries.Inc()
		}
	}
	if journaled == nil {
		if len(cfg.Members) == 0 {
			return nil, fmt.Errorf("%w: agent %q hosts no members", runner.ErrInvalidConfig, cfg.Name)
		}
		journaled = make([]MemberJournal, len(cfg.Members))
		for i, spec := range cfg.Members {
			journaled[i] = MemberJournal{MemberSpec: spec}
		}
	}

	a := &Agent{cfg: cfg, byID: make(map[string]*amember)}
	a.journal = AgentJournal{Agent: cfg.Name, Members: journaled}
	for i := range a.journal.Members {
		mj := &a.journal.Members[i]
		if _, err := (cluster.MemberParams{Weight: mj.Weight, FloorFrac: mj.FloorFrac, TargetBIPS: mj.TargetBIPS}).Normalize(mj.ID); err != nil {
			return nil, err
		}
		if mj.ID == "" || a.byID[mj.ID] != nil {
			return nil, fmt.Errorf("%w: agent %q member id %q empty or duplicate", runner.ErrInvalidConfig, cfg.Name, mj.ID)
		}
		ses, err := cfg.Build(mj.Spec)
		if err != nil {
			return nil, fmt.Errorf("dist: agent %q member %q: %w", cfg.Name, mj.ID, err)
		}
		m := &amember{
			spec: mj.MemberSpec, ses: ses,
			peak:     ses.PeakPowerW(),
			epochNs:  ses.EpochNs(),
			maxSteps: ses.MaxCoreSteps(),
			total:    ses.TotalEpochs(),
			state:    mAnnouncing,
			// Epoch 0's grant must not look like a duplicate.
			lastEpoch: -1,
		}
		if m.peak <= 0 {
			return nil, fmt.Errorf("%w: member %q platform peak %g W, want > 0", runner.ErrInvalidConfig, mj.ID, m.peak)
		}
		// Restart recovery: replay the journaled grant sequence. The
		// simulator is deterministic, so the rebuilt session lands on
		// the same state, watt for watt, as the one that crashed.
		for _, g := range mj.Grants {
			if err := a.replayGrant(m, g); err != nil {
				return nil, fmt.Errorf("dist: agent %q member %q replaying journal: %w", cfg.Name, mj.ID, err)
			}
			cfg.Metrics.journalReplays.Inc()
		}
		if m.local >= m.total {
			m.state = mDone
			m.result = ses.Result()
		}
		a.members = append(a.members, m)
		a.byID[m.spec.ID] = m
	}
	return a, nil
}

func (a *Agent) replayGrant(m *amember, g float64) error {
	if err := m.ses.SetBudgetFrac(g / m.peak); err != nil {
		return err
	}
	if _, err := m.ses.Step(context.Background()); err != nil {
		return err
	}
	m.local++
	return nil
}

// Start announces every member and arms the retry timer. Done members
// (fully covered by a recovered journal) announce too — with
// done_epochs at total, so the coordinator retires them — and forward
// their result.
func (a *Agent) Start() {
	a.mu.Lock()
	now := a.cfg.Clock.Now()
	for _, m := range a.members {
		switch m.state {
		case mAnnouncing:
			a.announceLocked(m, now)
		case mDone:
			a.announceDoneLocked(m)
		}
	}
	if a.cfg.HeartbeatNs > 0 {
		a.nextBeat = now + a.cfg.HeartbeatNs
	}
	a.armTimerLocked(now)
	a.mu.Unlock()
}

// Stop makes the agent inert: pending timers are cancelled and further
// messages are dropped. It does not notify the coordinator — that is
// what Detach is for; Stop models a crash or an orderly host shutdown.
func (a *Agent) Stop() {
	a.mu.Lock()
	a.stopped = true
	if a.cancelTimer != nil {
		a.cancelTimer()
		a.cancelTimer = nil
	}
	a.mu.Unlock()
}

// Detach withdraws every unfinished member from the cluster and stops
// the agent.
func (a *Agent) Detach() {
	a.mu.Lock()
	for _, m := range a.members {
		if m.state == mAnnouncing || m.state == mActive {
			a.send(Msg{Type: TypeDetach, Member: m.spec.ID})
		}
	}
	a.mu.Unlock()
	a.Stop()
}

func (a *Agent) send(m Msg) {
	m.Agent = a.cfg.Name
	// Best effort: a lost message is the network's business; the
	// coordinator's deadlines and our retries recover.
	_ = a.cfg.Send(m)
}

func (a *Agent) announceLocked(m *amember, now int64) {
	a.send(Msg{
		Type: TypeAnnounce, Member: m.spec.ID,
		PeakW: m.peak, Weight: m.spec.Weight, FloorFrac: m.spec.FloorFrac,
		TargetBIPS: m.spec.TargetBIPS, EpochNs: m.epochNs,
		TotalEpochs: m.total, DoneEpochs: m.local,
	})
	m.attempts++
	if m.backoffNs <= 0 {
		m.backoffNs = a.cfg.AnnounceBackoffNs
	}
	if m.attempts >= a.cfg.MaxAnnounce {
		m.state = mFailed
		m.failure = fmt.Errorf("dist: member %q unadmitted after %d announces", m.spec.ID, m.attempts)
		m.announceAt = 0
		return
	}
	m.announceAt = now + m.backoffNs
	m.backoffNs *= 2
	if m.backoffNs > a.cfg.BackoffMaxNs {
		m.backoffNs = a.cfg.BackoffMaxNs
	}
}

func (a *Agent) announceDoneLocked(m *amember) {
	a.send(Msg{
		Type: TypeAnnounce, Member: m.spec.ID,
		PeakW: m.peak, Weight: m.spec.Weight, FloorFrac: m.spec.FloorFrac,
		TargetBIPS: m.spec.TargetBIPS, EpochNs: m.epochNs,
		TotalEpochs: m.total, DoneEpochs: m.total,
	})
	a.send(Msg{Type: TypeResult, Member: m.spec.ID, Result: m.result})
}

// armTimerLocked schedules the next timer callback for the earliest of
// the pending announce retries and the heartbeat.
func (a *Agent) armTimerLocked(now int64) {
	if a.cancelTimer != nil {
		a.cancelTimer()
		a.cancelTimer = nil
	}
	if a.stopped {
		return
	}
	var at int64
	for _, m := range a.members {
		if m.state == mAnnouncing && m.announceAt > 0 && (at == 0 || m.announceAt < at) {
			at = m.announceAt
		}
	}
	if a.nextBeat > 0 && a.anyWaiting() && (at == 0 || a.nextBeat < at) {
		at = a.nextBeat
	}
	if at == 0 {
		return
	}
	d := at - now
	if d < 0 {
		d = 0
	}
	a.cancelTimer = a.cfg.Clock.After(d, a.onTimer)
}

func (a *Agent) anyWaiting() bool {
	for _, m := range a.members {
		if m.state == mAnnouncing || m.state == mActive {
			return true
		}
	}
	return false
}

func (a *Agent) onTimer() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.stopped {
		return
	}
	now := a.cfg.Clock.Now()
	for _, m := range a.members {
		if m.state == mAnnouncing && m.announceAt > 0 && m.announceAt <= now {
			a.announceLocked(m, now)
		}
	}
	if a.nextBeat > 0 && now >= a.nextBeat {
		if a.anyWaiting() {
			a.send(Msg{Type: TypeHeartbeat})
		}
		a.nextBeat = now + a.cfg.HeartbeatNs
	}
	a.armTimerLocked(now)
}

// Handle processes one message from the coordinator (welcome, grant,
// evict, error; anything else is dropped). The transport calls it for
// every delivery; it never blocks on the network and never panics.
func (a *Agent) Handle(m Msg) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.stopped {
		return
	}
	dm := a.byID[m.Member]
	switch m.Type {
	case TypeWelcome:
		if dm != nil && dm.state == mAnnouncing {
			dm.state = mActive
			dm.attempts, dm.backoffNs, dm.announceAt = 0, 0, 0
		}
	case TypeGrant:
		if dm != nil {
			a.handleGrantLocked(dm, m)
		}
	case TypeEvict:
		// Stale evictions (for epochs we have since executed a grant
		// beyond) are duplicates from the fault fabric; ignore.
		if dm != nil && dm.state == mActive && m.Epoch >= dm.lastEpoch {
			dm.state = mAnnouncing
			dm.attempts, dm.backoffNs = 0, 0
			a.announceLocked(dm, a.cfg.Clock.Now())
		}
	case TypeError:
		if dm != nil && dm.state != mDone {
			dm.state = mFailed
			dm.failure = fmt.Errorf("dist: coordinator refused member %q: %s", m.Member, m.Err)
			dm.announceAt = 0
		}
	}
	a.armTimerLocked(a.cfg.Clock.Now())
}

func (a *Agent) handleGrantLocked(m *amember, g Msg) {
	switch m.state {
	case mFailed:
		return
	case mDone:
		// The coordinator missed our result; resend it.
		a.send(Msg{Type: TypeResult, Member: m.spec.ID, Result: m.result})
		return
	}
	if g.Epoch < m.lastEpoch {
		return // stale duplicate from the fault fabric
	}
	if g.Epoch == m.lastEpoch {
		// Duplicate of the grant we just executed (or a barrier retry
		// after our report was lost): the epoch already ran, resend the
		// cached report rather than stepping twice.
		a.send(m.lastReport)
		return
	}
	// A grant is an implicit welcome: if the welcome was lost, being
	// granted proves admission.
	m.state = mActive
	m.attempts, m.backoffNs, m.announceAt = 0, 0, 0
	m.lastEpoch = g.Epoch

	// Journal the grant BEFORE stepping under it: recovery replays the
	// journal, so an epoch is either absent (crashed before the step —
	// the coordinator evicts and readmits us one epoch back) or fully
	// covered (crashed after — we rejoin exactly where we left off).
	mj := &a.journal.Members[a.indexOf(m)]
	mj.Grants = append(mj.Grants, g.GrantW)
	if a.cfg.Journal != nil {
		if err := a.cfg.Journal.Save(a.journal); err != nil {
			m.state = mFailed
			m.failure = fmt.Errorf("dist: member %q journal: %w", m.spec.ID, err)
			a.send(Msg{Type: TypeDetach, Member: m.spec.ID})
			return
		}
	}

	if err := m.ses.SetBudgetFrac(g.GrantW / m.peak); err != nil {
		a.failMemberLocked(m, err)
		return
	}
	rec, err := m.ses.Step(context.Background())
	if err != nil {
		if errors.Is(err, runner.ErrDone) {
			// Defensive: the session finalized behind our back.
			m.state = mDone
			m.result = m.ses.Result()
			a.send(Msg{Type: TypeResult, Member: m.spec.ID, Result: m.result})
			return
		}
		a.failMemberLocked(m, err)
		return
	}
	m.local++
	done := m.local >= m.total

	// The report mirrors the in-process coordinator's member line field
	// for field: average draw, shed-core throttle fraction, per-core
	// instruction sum in index order.
	instr := 0.0
	for _, v := range rec.Instr {
		instr += v
	}
	m.lastReport = Msg{
		Type: TypeReport, Member: m.spec.ID, Epoch: g.Epoch,
		MemberEpoch: rec.Epoch, PowerW: rec.AvgPowerW,
		ThrottleFrac: throttleFrac(rec.CoreSteps, m.maxSteps),
		Instr:        instr, Done: done,
	}
	a.send(m.lastReport)
	if done {
		m.state = mDone
		m.result = m.ses.Result()
		a.send(Msg{Type: TypeResult, Member: m.spec.ID, Result: m.result})
	}
}

func (a *Agent) failMemberLocked(m *amember, err error) {
	m.state = mFailed
	m.failure = fmt.Errorf("dist: member %q: %w", m.spec.ID, err)
	m.announceAt = 0
	// Withdraw so the coordinator stops granting a dead session.
	a.send(Msg{Type: TypeDetach, Member: m.spec.ID})
}

func (a *Agent) indexOf(m *amember) int {
	for i := range a.members {
		if a.members[i] == m {
			return i
		}
	}
	panic("dist: member not registered") // unreachable: members never shrink
}

// throttleFrac is the fraction of cores that shed DVFS steps below
// their ceiling this epoch — cluster.member.throttleFrac verbatim.
func throttleFrac(coreSteps, maxSteps []int) float64 {
	if len(coreSteps) == 0 {
		return 0
	}
	shed := 0
	for i, st := range coreSteps {
		if st < maxSteps[i] {
			shed++
		}
	}
	return float64(shed) / float64(len(coreSteps))
}

// Done reports whether every member reached a terminal state (done or
// failed).
func (a *Agent) Done() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, m := range a.members {
		if m.state != mDone && m.state != mFailed {
			return false
		}
	}
	return true
}

// Status snapshots the agent for the HTTP surface.
func (a *Agent) Status() AgentStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := AgentStatus{Agent: a.cfg.Name}
	for _, m := range a.members {
		ms := MemberState{ID: m.spec.ID, State: m.state.String(), Epochs: m.local, Total: m.total}
		if m.failure != nil {
			ms.Error = m.failure.Error()
		}
		st.Members = append(st.Members, ms)
	}
	return st
}
