package dist

import "repro/internal/metrics"

// Metrics is the distributed layer's instrumentation: a value struct of
// pre-resolved, nil-safe handles shared by the coordinator service and
// the agent host (the zero value disables everything). Families are
// daemon-global rather than per-cluster: dist clusters are created by
// unauthenticated peers, and letting the network mint unbounded label
// sets would hand it the scrape's memory.
type Metrics struct {
	joins, readmits, evicts, detaches, abandons *metrics.Counter

	heartbeats     *metrics.Counter
	epochs         *metrics.Counter
	journalReplays *metrics.Counter
	recoveries     *metrics.Counter
	wireMsgs       *metrics.Counter
	wireFeed       *metrics.Counter
}

// NewMetrics registers the dist families on reg and returns the
// resolved handles. A nil registry disables instrumentation.
func NewMetrics(reg *metrics.Registry) Metrics {
	if reg == nil {
		return Metrics{}
	}
	ev := reg.CounterVec("fastcap_dist_events_total",
		"Coordinator membership events, by type (join, readmit, evict, detach, abandon).", "type")
	wire := reg.CounterVec("fastcap_dist_wire_errors_total",
		"Frames refused by the wire decoder, by surface: msgs (coordinator inbox) or feed (agent follower).", "surface")
	return Metrics{
		joins:    ev.With("join"),
		readmits: ev.With("readmit"),
		evicts:   ev.With("evict"),
		detaches: ev.With("detach"),
		abandons: ev.With("abandon"),
		heartbeats: reg.Counter("fastcap_dist_heartbeats_total",
			"Agent liveness heartbeats received by hosted coordinators."),
		epochs: reg.Counter("fastcap_dist_epochs_total",
			"Distributed cluster epochs completed by hosted coordinators."),
		journalReplays: reg.Counter("fastcap_dist_journal_replays_total",
			"Journaled grants replayed during agent restart recovery."),
		recoveries: reg.Counter("fastcap_dist_recoveries_total",
			"Agents rebuilt from a persisted journal at construction."),
		wireMsgs: wire.With("msgs"),
		wireFeed: wire.With("feed"),
	}
}

// event counts one membership event by type; unknown types (there are
// none today) are dropped rather than minting a label from wire input.
func (m Metrics) event(typ string) {
	switch typ {
	case "join":
		m.joins.Inc()
	case "readmit":
		m.readmits.Inc()
	case "evict":
		m.evicts.Inc()
	case "detach":
		m.detaches.Inc()
	case "abandon":
		m.abandons.Inc()
	}
}
