package dist_test

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dist"
)

// checkDegradation pins the coordinator's invariants under any fault
// schedule:
//
//  1. Per-member epoch monotonicity — a member's member-local epoch
//     index never repeats or regresses across record lines: duplicated
//     grants are deduped, journal replay never re-executes an epoch.
//  2. Done is terminal and lands exactly on the member's last epoch.
//  3. Membership events alternate legally: one join, then
//     evict/readmit pairs, with detach/abandon as sinks.
//  4. An evicted member contributes no record line from the epoch it
//     was evicted in until the epoch it was readmitted at (exclusive) —
//     eviction leaves the pool immediately, readmission waits for a
//     boundary.
func checkDegradation(t *testing.T, fixture []fixtureMember, recs []cluster.EpochRecord, evs []dist.Event) {
	t.Helper()
	totals := map[string]int{}
	for _, fm := range fixture {
		totals[fm.id] = fm.spec.Epochs
	}

	last := map[string]int{}
	done := map[string]bool{}
	for _, r := range recs {
		for _, l := range r.Members {
			if done[l.ID] {
				t.Errorf("epoch %d: member %q has a line after its done line", r.Epoch, l.ID)
			}
			if prev, ok := last[l.ID]; ok && l.Epoch <= prev {
				t.Errorf("epoch %d: member %q member-epoch %d after %d, want strictly increasing", r.Epoch, l.ID, l.Epoch, prev)
			}
			last[l.ID] = l.Epoch
			if l.Done {
				done[l.ID] = true
				if l.Epoch != totals[l.ID]-1 {
					t.Errorf("member %q done at member-epoch %d, want %d", l.ID, l.Epoch, totals[l.ID]-1)
				}
			}
		}
	}

	type span struct{ from, to int }
	spans := map[string][]span{}
	state := map[string]string{}
	for _, ev := range evs {
		prev := state[ev.Member]
		switch ev.Type {
		case "join":
			if prev != "" {
				t.Errorf("join of %q after %q", ev.Member, prev)
			}
		case "evict":
			if prev != "join" && prev != "readmit" {
				t.Errorf("evict of %q after %q", ev.Member, prev)
			}
			spans[ev.Member] = append(spans[ev.Member], span{from: ev.Epoch, to: math.MaxInt})
		case "readmit":
			if prev != "evict" {
				t.Errorf("readmit of %q after %q", ev.Member, prev)
			}
			if ss := spans[ev.Member]; len(ss) > 0 {
				ss[len(ss)-1].to = ev.Epoch
			}
		case "abandon", "detach":
			if prev == "" {
				t.Errorf("%s of %q with no prior membership", ev.Type, ev.Member)
			}
		default:
			t.Errorf("unknown event type %q", ev.Type)
		}
		state[ev.Member] = ev.Type
	}
	for _, r := range recs {
		for _, l := range r.Members {
			for _, sp := range spans[l.ID] {
				if r.Epoch >= sp.from && r.Epoch < sp.to {
					t.Errorf("member %q has a line at epoch %d inside its eviction span [%d, %d)", l.ID, r.Epoch, sp.from, sp.to)
				}
			}
		}
	}
}

// The seeded chaos table: per-message drop, delay, duplication and
// whole-agent mid-epoch restarts, swept individually and combined. For
// every schedule the run must terminate without error, satisfy the
// degradation invariants, and — run twice from the same seed — produce
// byte-identical records, events and results. Clean under -race and
// -shuffle=on: each run is self-contained.
func TestDistChaosTable(t *testing.T) {
	// DelayNs beyond the straggler deadline turns a delay fault into a
	// missed barrier.
	const longDelay = 15e9
	cases := []struct {
		name   string
		seed   int64
		faults dist.Faults
		expect func(t *testing.T, coord *dist.Coordinator)
	}{
		{name: "drop", seed: 11, faults: dist.Faults{DropProb: 0.05}},
		{name: "dup", seed: 13, faults: dist.Faults{DupProb: 0.30}},
		{name: "delay", seed: 12, faults: dist.Faults{DelayProb: 0.15, DelayNs: longDelay},
			expect: wantEvents("evict", "readmit")},
		{name: "storm", seed: 14, faults: dist.Faults{DropProb: 0.08, DupProb: 0.15, DelayProb: 0.10, DelayNs: longDelay}},
		{name: "restart-before-step", seed: 15,
			faults: dist.Faults{Restarts: []dist.Restart{{Agent: "a1", Epoch: 2, RestartAfterNs: 3e9}}},
			expect: andExpect(wantEvents("evict", "readmit"), wantAllResults)},
		{name: "restart-after-step", seed: 16,
			faults: dist.Faults{Restarts: []dist.Restart{{Agent: "a2", Epoch: 3, AfterStep: true, RestartAfterNs: 5e9}}},
			expect: andExpect(wantEvents("evict", "readmit"), wantAllResults)},
		{name: "double-restart", seed: 17,
			faults: dist.Faults{Restarts: []dist.Restart{
				{Agent: "a1", Epoch: 1, RestartAfterNs: 2e9},
				{Agent: "a1", Epoch: 4, AfterStep: true, RestartAfterNs: 2e9},
			}},
			expect: andExpect(wantEvents("evict", "readmit"), wantAllResults)},
		{name: "agent-dies-for-good", seed: 18,
			faults: dist.Faults{Restarts: []dist.Restart{{Agent: "a2", Epoch: 1}}},
			expect: wantEvents("evict", "abandon")},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			run := func() (*dist.Coordinator, [3][]byte) {
				coord, err := runDist(t, distRun{
					fixture: chaosFixture(), seed: tc.seed, faults: tc.faults,
					cfg: dist.Config{MaxEpochs: 300},
				})
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				return coord, [3][]byte{
					mustJSON(t, coord.Records()),
					mustJSON(t, coord.Events()),
					mustJSON(t, coord.Results()),
				}
			}
			coord, first := run()
			checkDegradation(t, chaosFixture(), coord.Records(), coord.Events())
			if fin, err := coord.Finished(); !fin || err != nil {
				t.Errorf("Finished() = %v, %v after Run returned", fin, err)
			}
			if tc.expect != nil {
				tc.expect(t, coord)
			}
			_, second := run()
			for i, name := range []string{"records", "events", "results"} {
				if !bytes.Equal(first[i], second[i]) {
					t.Errorf("%s diverged between two runs of seed %d", name, tc.seed)
				}
			}
		})
	}
}

// wantEvents asserts at least one event of each named type occurred —
// the schedule actually exercised the degradation path it targets.
func wantEvents(types ...string) func(*testing.T, *dist.Coordinator) {
	return func(t *testing.T, coord *dist.Coordinator) {
		t.Helper()
		seen := map[string]bool{}
		for _, ev := range coord.Events() {
			seen[ev.Type] = true
		}
		for _, typ := range types {
			if !seen[typ] {
				t.Errorf("no %q event fired; events: %+v", typ, coord.Events())
			}
		}
	}
}

// wantAllResults asserts every member delivered its final result — the
// lossless-recovery schedules must lose no member.
func wantAllResults(t *testing.T, coord *dist.Coordinator) {
	t.Helper()
	for _, mr := range coord.Results() {
		if mr.Result == nil {
			t.Errorf("member %q has no final result", mr.ID)
		}
	}
}

func andExpect(fns ...func(*testing.T, *dist.Coordinator)) func(*testing.T, *dist.Coordinator) {
	return func(t *testing.T, coord *dist.Coordinator) {
		for _, fn := range fns {
			fn(t, coord)
		}
	}
}

// A coordinator with no agents on the network must fail typed at the
// join timeout, not hang.
func TestDistNoMembersTimesOutTyped(t *testing.T) {
	net := dist.NewSimNet(dist.SimConfig{Seed: 1})
	coord, err := dist.NewCoordinator(dist.Config{BudgetW: 10, Expect: 2, JoinTimeoutNs: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Run(net); err == nil {
		t.Fatal("Run succeeded with no members")
	}
}

// MaxEpochs bounds any run: even a healthy cluster is cut off at the
// limit with typed abandon events, guaranteeing termination under
// adversarial schedules.
func TestDistMaxEpochsTerminates(t *testing.T) {
	fixture := []fixtureMember{
		{"m1", "a1", testSpec{Mix: "MIX1", Cores: 4, Epochs: 10, Policy: "fastcap"}},
	}
	coord, err := runDist(t, distRun{fixture: fixture, seed: 3, cfg: dist.Config{MaxEpochs: 3}})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := len(coord.Records()); got != 3 {
		t.Errorf("got %d records, want exactly MaxEpochs=3", got)
	}
	var abandoned bool
	for _, ev := range coord.Events() {
		if ev.Type == "abandon" && ev.Member == "m1" {
			abandoned = true
		}
	}
	if !abandoned {
		t.Errorf("no abandon event at the epoch limit: %+v", coord.Events())
	}
}
