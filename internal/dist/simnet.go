package dist

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Faults is SimNet's seeded fault plan. Probabilities apply per
// message, independently in each direction; Restarts are deterministic
// kill/recover schedules keyed to grant deliveries.
type Faults struct {
	// DropProb loses a message outright.
	DropProb float64
	// DupProb delivers a message twice (the duplicate one latency
	// later).
	DupProb float64
	// DelayProb adds DelayNs to a message's latency — enough of it and
	// the message out-runs the straggler deadline.
	DelayProb float64
	DelayNs   int64
	// Restarts crash and recover whole agents mid-epoch.
	Restarts []Restart
}

// Restart crashes an agent at the delivery of the grant for cluster
// epoch Epoch to member Member (any member of the agent if Member is
// empty): before the step executes, or after it (AfterStep) — the
// report for the epoch is lost either way, but the journal differs by
// one entry, which is exactly the recovery fork the journal design
// covers. RestartAfterNs later the harness's rebuild hook runs; 0
// means the agent stays dead.
type Restart struct {
	Agent          string
	Member         string
	Epoch          int
	AfterStep      bool
	RestartAfterNs int64
}

// SimConfig configures a SimNet.
type SimConfig struct {
	// Seed drives every probabilistic fault. Same seed, same plan, same
	// schedule: byte-identical runs.
	Seed int64
	// LatencyNs is the one-way delivery latency. Default 1 ms.
	LatencyNs int64
	Faults    Faults
}

// simEvent is one scheduled delivery or timer in virtual time, ordered
// by (at, seq) — seq breaks ties in schedule order, keeping the run
// deterministic.
type simEvent struct {
	at   int64
	seq  int64
	fire func()
}

type eventHeap []simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)     { *h = append(*h, x.(simEvent)) }
func (h *eventHeap) Pop() any       { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h *eventHeap) peek() simEvent { return (*h)[0] }

// simAgent is one registered endpoint. gen is the incarnation counter:
// every message and timer captures it at scheduling time and is dropped
// at fire time if the agent restarted in between — a crash tears down
// in-flight traffic in both directions, exactly like a dead process.
type simAgent struct {
	name    string
	gen     int
	handle  func(Msg)
	rebuild func()
}

// SimNet is a single-goroutine virtual-time loopback transport: the
// coordinator's Recv pumps the event heap inline, agent handlers run
// synchronously inside the pump, and all randomness comes from one
// seeded source consumed in pump order — so a (seed, fault plan, fixture)
// triple always produces the same run, byte for byte. Every message is
// round-tripped through EncodeMsg/DecodeMsg, so what the protocol logic
// sees is exactly what the JSON wire carries.
//
// SimNet is not safe for concurrent use; it models a cluster, it does
// not run one.
type SimNet struct {
	cfg      SimConfig
	rng      *rand.Rand
	now      int64
	seq      int64
	events   eventHeap
	inbox    []Envelope
	agents   map[string]*simAgent
	restarts []Restart
	err      error
}

// NewSimNet builds a simulated network with the given seed, latency and
// fault plan.
func NewSimNet(cfg SimConfig) *SimNet {
	if cfg.LatencyNs <= 0 {
		cfg.LatencyNs = 1e6
	}
	return &SimNet{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		agents:   make(map[string]*simAgent),
		restarts: append([]Restart(nil), cfg.Faults.Restarts...),
	}
}

// Register connects (or reconnects) an agent endpoint: handle receives
// coordinator deliveries, rebuild is invoked by a Restart plan's
// recovery event. Re-registering bumps the incarnation, so anything
// in flight to or from the previous incarnation dies on the wire.
func (s *SimNet) Register(name string, handle func(Msg), rebuild func()) {
	a := s.agents[name]
	if a == nil {
		a = &simAgent{name: name}
		s.agents[name] = a
	}
	a.gen++
	a.handle = handle
	a.rebuild = rebuild
}

// Kill crashes an agent: its handler is detached and all in-flight
// messages and timers of the old incarnation are torn down.
func (s *SimNet) Kill(name string) {
	if a := s.agents[name]; a != nil {
		a.gen++
		a.handle = nil
	}
}

// schedule queues fn at absolute virtual time at.
func (s *SimNet) schedule(at int64, fn func()) {
	s.seq++
	heap.Push(&s.events, simEvent{at: at, seq: s.seq, fire: fn})
}

// codec round-trips m through the real wire encoding; a message the
// JSON layer cannot carry faithfully is a protocol bug and poisons the
// net with a sticky error that Recv surfaces.
func (s *SimNet) codec(m Msg) (Msg, bool) {
	b, err := EncodeMsg(m)
	if err == nil {
		m, err = DecodeMsg(b)
	}
	if err != nil {
		if s.err == nil {
			s.err = fmt.Errorf("dist: simnet wire round-trip: %w", err)
		}
		return Msg{}, false
	}
	return m, true
}

// deliveries rolls the fault dice for one message: nil means dropped,
// otherwise each entry is a delivery latency (two entries for a
// duplicate). Draw order is fixed — delay, drop, duplicate — so the
// seeded schedule is stable.
func (s *SimNet) deliveries() []int64 {
	f := s.cfg.Faults
	lat := s.cfg.LatencyNs
	if f.DelayProb > 0 && s.rng.Float64() < f.DelayProb {
		lat += f.DelayNs
	}
	if f.DropProb > 0 && s.rng.Float64() < f.DropProb {
		return nil
	}
	if f.DupProb > 0 && s.rng.Float64() < f.DupProb {
		return []int64{lat, lat + s.cfg.LatencyNs}
	}
	return []int64{lat}
}

// restartPlan consumes the first unfired restart matching this grant
// delivery.
func (s *SimNet) restartPlan(agent string, m Msg) *Restart {
	if m.Type != TypeGrant {
		return nil
	}
	for i := range s.restarts {
		r := &s.restarts[i]
		if r.Agent == agent && r.Epoch == m.Epoch && (r.Member == "" || r.Member == m.Member) {
			plan := *r
			s.restarts = append(s.restarts[:i], s.restarts[i+1:]...)
			return &plan
		}
	}
	return nil
}

// Send implements Transport: coordinator → agent delivery through the
// fault fabric. A matching Restart plan fires at delivery time: the
// agent crashes before (or just after) handling the grant, and its
// rebuild hook is scheduled RestartAfterNs later.
func (s *SimNet) Send(agent string, m Msg) {
	m, ok := s.codec(m)
	if !ok {
		return
	}
	a := s.agents[agent]
	if a == nil {
		return // unknown endpoint: the void swallows it
	}
	gen := a.gen
	for _, d := range s.deliveries() {
		s.schedule(s.now+d, func() {
			if a.gen != gen || a.handle == nil {
				return // incarnation died with this message in flight
			}
			if plan := s.restartPlan(agent, m); plan != nil {
				if plan.AfterStep {
					a.handle(m)
				}
				a.gen++
				a.handle = nil
				if plan.RestartAfterNs > 0 && a.rebuild != nil {
					rebuild := a.rebuild
					s.schedule(s.now+plan.RestartAfterNs, rebuild)
				}
				return
			}
			a.handle(m)
		})
	}
}

// Sender returns the agent-side send function: agent → coordinator
// through the same fault fabric. The envelope is stamped with the
// transport-level agent name, like a connection-bound identity.
func (s *SimNet) Sender(name string) func(Msg) error {
	return func(m Msg) error {
		m.Agent = name
		m, ok := s.codec(m)
		if !ok {
			return s.err
		}
		a := s.agents[name]
		if a == nil {
			return fmt.Errorf("dist: simnet agent %q not registered", name)
		}
		gen := a.gen
		for _, d := range s.deliveries() {
			s.schedule(s.now+d, func() {
				if a.gen != gen {
					return
				}
				s.inbox = append(s.inbox, Envelope{Agent: name, Msg: m})
			})
		}
		return nil
	}
}

// Clock returns the agent's virtual clock. Timers are incarnation-bound:
// a crash cancels them like the process they lived in.
func (s *SimNet) Clock(name string) Clock { return simClock{net: s, name: name} }

type simClock struct {
	net  *SimNet
	name string
}

func (c simClock) Now() int64 { return c.net.now }

func (c simClock) After(d int64, f func()) func() {
	if d < 0 {
		d = 0
	}
	cancelled := false
	a := c.net.agents[c.name]
	gen := 0
	if a != nil {
		gen = a.gen
	}
	c.net.schedule(c.net.now+d, func() {
		if cancelled || (a != nil && a.gen != gen) {
			return
		}
		f()
	})
	return func() { cancelled = true }
}

// Now implements Transport.
func (s *SimNet) Now() int64 { return s.now }

// Recv implements Transport: it pumps the event heap in virtual time
// until a coordinator-bound message is available or virtual time
// reaches the deadline with none pending — in which case time jumps to
// the deadline and timeout is returned, with later events left queued.
func (s *SimNet) Recv(deadline int64) (Envelope, bool, error) {
	for {
		if s.err != nil {
			return Envelope{}, false, s.err
		}
		if len(s.inbox) > 0 {
			env := s.inbox[0]
			s.inbox = s.inbox[1:]
			return env, false, nil
		}
		if s.events.Len() == 0 || s.events.peek().at > deadline {
			s.now = deadline
			return Envelope{}, true, nil
		}
		ev := heap.Pop(&s.events).(simEvent)
		if ev.at > s.now {
			s.now = ev.at
		}
		ev.fire()
	}
}

// Close implements Transport.
func (s *SimNet) Close() {}

// Drain pumps all remaining events (agent timers, stray deliveries)
// until the heap is empty or limitNs of virtual time passes. Tests use
// it to flush backoff retries after the coordinator has finished.
func (s *SimNet) Drain(limitNs int64) {
	limit := s.now + limitNs
	for s.events.Len() > 0 && s.events.peek().at <= limit {
		ev := heap.Pop(&s.events).(simEvent)
		if ev.at > s.now {
			s.now = ev.at
		}
		ev.fire()
	}
	s.inbox = nil
}
