package dist_test

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dist"
)

// The fault-free golden gate: the 8-member mixed-machine fixture run
// through a simulated-transport cluster (three agents behind SimNet, no
// faults armed) must produce byte-identical epoch records — per-member
// grant, draw, slack, throttle and instruction lines — and byte-identical
// final results to the in-process Coordinator. The wire is real in the
// loop: every message round-trips through EncodeMsg/DecodeMsg, so this
// also proves JSON carries the protocol losslessly.
func TestDistGoldenMatchesInProcess(t *testing.T) {
	wantRecs, wantResults := runInProcess(t, goldenFixture(), cluster.NewSlackReclaim())

	coord, err := runDist(t, distRun{fixture: goldenFixture(), seed: 1})
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	if got, want := mustJSON(t, coord.Records()), mustJSON(t, wantRecs); !bytes.Equal(got, want) {
		t.Errorf("distributed records diverged from in-process\n got: %.400s\nwant: %.400s", got, want)
	}
	if got, want := mustJSON(t, coord.Results()), mustJSON(t, wantResults); !bytes.Equal(got, want) {
		t.Errorf("distributed results diverged from in-process\n got: %.400s\nwant: %.400s", got, want)
	}

	// With no faults armed the degradation machinery must stay silent:
	// one join per member at epoch 0 and nothing else.
	evs := coord.Events()
	if len(evs) != len(goldenFixture()) {
		t.Fatalf("got %d events, want %d joins: %+v", len(evs), len(goldenFixture()), evs)
	}
	for i, ev := range evs {
		if ev.Type != "join" || ev.Epoch != 0 || ev.Member != goldenFixture()[i].id {
			t.Errorf("event %d = %+v, want epoch-0 join of %q", i, ev, goldenFixture()[i].id)
		}
	}
}

// The same fault-free distributed run twice must be byte-identical to
// itself — SimNet is deterministic end to end.
func TestDistFaultFreeDeterministic(t *testing.T) {
	run := func() ([]byte, []byte, []byte) {
		coord, err := runDist(t, distRun{fixture: goldenFixture(), seed: 99})
		if err != nil {
			t.Fatalf("distributed run: %v", err)
		}
		return mustJSON(t, coord.Records()), mustJSON(t, coord.Events()), mustJSON(t, coord.Results())
	}
	r1, e1, s1 := run()
	r2, e2, s2 := run()
	if !bytes.Equal(r1, r2) || !bytes.Equal(e1, e2) || !bytes.Equal(s1, s2) {
		t.Error("two identical fault-free runs diverged")
	}
}

// Eviction must return the lost member's floor (and share) to the
// water-fill pool within one epoch: kill one of two agents for good and
// the survivor's next grant grows.
func TestEvictionReturnsBudgetWithinOneEpoch(t *testing.T) {
	fixture := []fixtureMember{
		{"keep", "a1", testSpec{Mix: "MIX1", Cores: 4, Epochs: 6, Policy: "fastcap"}},
		{"lose", "a2", testSpec{Mix: "MEM2", Cores: 4, Epochs: 6, Policy: "fastcap"}},
	}
	coord, err := runDist(t, distRun{
		fixture: fixture,
		seed:    5,
		arbiter: func() cluster.Arbiter { return cluster.NewStaticProportional() },
		// a2 dies at the delivery of its epoch-1 grant and never
		// recovers (RestartAfterNs 0).
		faults: dist.Faults{Restarts: []dist.Restart{{Agent: "a2", Epoch: 1}}},
	})
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	recs := coord.Records()
	if len(recs) < 3 {
		t.Fatalf("got %d records, want the run to continue past the eviction", len(recs))
	}
	grantAt := func(e int, id string) float64 {
		t.Helper()
		for _, l := range recs[e].Members {
			if l.ID == id {
				return l.GrantW
			}
		}
		t.Fatalf("epoch %d has no line for %q: %+v", e, id, recs[e].Members)
		return 0
	}
	// Epoch 1: "lose" missed the barrier — no line. Epoch 2: its floor
	// and share are back in the pool, so "keep" (previously capped by
	// the split) is granted strictly more than before the eviction.
	for _, l := range recs[1].Members {
		if l.ID == "lose" {
			t.Error("evicted member reported a line for the epoch it missed")
		}
	}
	if got, before := grantAt(2, "keep"), grantAt(0, "keep"); got <= before {
		t.Errorf("survivor grant %g W after eviction, want > %g W (pool reclaimed within one epoch)", got, before)
	}
	// The survivor finishes; the dead member is first evicted, then
	// abandoned at end of run with a nil result.
	var sawEvict, sawAbandon bool
	for _, ev := range coord.Events() {
		if ev.Member == "lose" && ev.Type == "evict" {
			sawEvict = true
		}
		if ev.Member == "lose" && ev.Type == "abandon" {
			sawAbandon = true
		}
	}
	if !sawEvict || !sawAbandon {
		t.Errorf("dead member events evict=%v abandon=%v, want both: %+v", sawEvict, sawAbandon, coord.Events())
	}
	for _, mr := range coord.Results() {
		switch mr.ID {
		case "keep":
			if mr.Result == nil {
				t.Error("surviving member has no result")
			}
		case "lose":
			if mr.Result != nil {
				t.Error("dead member has a result")
			}
		}
	}
}
