package dist

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
)

// newDistServer mounts a coordinator Server and an AgentHost (building
// member sessions through serve.SessionFromSpec, the production hook)
// on one test daemon.
func newDistServer(t *testing.T, journalDir string) (*httptest.Server, *Server, *AgentHost) {
	t.Helper()
	srv := NewServer()
	srv.StreamHeartbeat = 50 * time.Millisecond
	host := NewAgentHost(serve.SessionFromSpec, journalDir)
	mux := http.NewServeMux()
	srv.Register(mux)
	host.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(func() {
		host.Close()
		srv.Close()
		ts.Close()
	})
	return ts, srv, host
}

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func wantStatus(t *testing.T, resp *http.Response, want int) {
	t.Helper()
	if resp.StatusCode != want {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		t.Fatalf("%s %s: status %d, want %d: %s", resp.Request.Method, resp.Request.URL, resp.StatusCode, want, buf.String())
	}
}

// sessionSpec is a serve.Request JSON for a small member session.
func sessionSpec(mix string, epochs int) string {
	return fmt.Sprintf(`{"mix":%q,"budget_frac":1,"cores":4,"epochs":%d,"epoch_ms":0.5}`, mix, epochs)
}

// readStream follows an NDJSON endpoint to EOF, returning its data
// lines (keepalive heartbeats skipped).
func readStream(t *testing.T, url string) [][]byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var lines [][]byte
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var hb heartbeatLine
		if json.Unmarshal(sc.Bytes(), &hb) == nil && hb.Heartbeat {
			continue
		}
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("GET %s: scan: %v", url, err)
	}
	return lines
}

// TestDistHTTPEndToEnd runs a three-member cluster across two agents
// over real HTTP — announce, barrier epochs, reports and results all
// through POST /msgs and the /feed stream — and checks the arbitration
// invariants on the streamed records.
func TestDistHTTPEndToEnd(t *testing.T) {
	ts, _, _ := newDistServer(t, "")

	resp := postJSON(t, ts.URL+"/dist/clusters",
		`{"id":"c1","budget_w":20,"arbiter":"slack","expect":3,"epoch_deadline_ms":10000}`)
	wantStatus(t, resp, http.StatusCreated)
	coordURL := ts.URL + "/dist/clusters/c1"

	resp = postJSON(t, ts.URL+"/dist/agents", fmt.Sprintf(
		`{"id":"a1","coordinator":%q,"members":[{"id":"m1","session":%s},{"id":"m2","session":%s}]}`,
		coordURL, sessionSpec("MIX1", 4), sessionSpec("MEM2", 3)))
	wantStatus(t, resp, http.StatusCreated)
	resp = postJSON(t, ts.URL+"/dist/agents", fmt.Sprintf(
		`{"id":"a2","coordinator":%q,"members":[{"id":"m3","session":%s}]}`,
		coordURL, sessionSpec("ILP2", 5)))
	wantStatus(t, resp, http.StatusCreated)

	// The stream follows the live run and ends when the cluster
	// finishes: the longest member has 5 epochs, so 5 records.
	var records []cluster.EpochRecord
	for _, line := range readStream(t, coordURL+"/stream") {
		var rec cluster.EpochRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("record line %q: %v", line, err)
		}
		records = append(records, rec)
	}
	if len(records) != 5 {
		t.Fatalf("streamed %d records, want 5", len(records))
	}
	seen := map[string]int{}
	for i, rec := range records {
		if rec.Epoch != i {
			t.Fatalf("record %d has epoch %d", i, rec.Epoch)
		}
		var sum float64
		for _, mg := range rec.Members {
			sum += mg.GrantW
			seen[mg.ID]++
		}
		if sum > rec.BudgetW+1e-9 {
			t.Fatalf("epoch %d grants %.3f W above budget %.3f W", rec.Epoch, sum, rec.BudgetW)
		}
	}
	if seen["m1"] != 4 || seen["m2"] != 3 || seen["m3"] != 5 {
		t.Fatalf("member epoch counts %v, want m1:4 m2:3 m3:5", seen)
	}

	var events []Event
	for _, line := range readStream(t, coordURL+"/events") {
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("event line %q: %v", line, err)
		}
		events = append(events, ev)
	}
	joins := 0
	for _, ev := range events {
		if ev.Type == "evict" || ev.Type == "abandon" {
			t.Fatalf("fault-free run produced %+v", ev)
		}
		if ev.Type == "join" {
			joins++
		}
	}
	if joins != 3 {
		t.Fatalf("%d join events, want 3 (events %+v)", joins, events)
	}

	res := getResult(t, coordURL)
	if res.Error != "" {
		t.Fatalf("cluster finished with error %q", res.Error)
	}
	if len(res.Results) != 3 {
		t.Fatalf("%d member results, want 3", len(res.Results))
	}
	for _, mr := range res.Results {
		if mr.Result == nil {
			t.Fatalf("member %s finished without a result", mr.ID)
		}
	}
}

func getResult(t *testing.T, coordURL string) ClusterResult {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(coordURL + "/result")
		if err != nil {
			t.Fatalf("GET result: %v", err)
		}
		if resp.StatusCode == http.StatusOK {
			var res ClusterResult
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				t.Fatalf("decode result: %v", err)
			}
			resp.Body.Close()
			return res
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict || time.Now().After(deadline) {
			t.Fatalf("GET result: status %d", resp.StatusCode)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDistHTTPAgentRestartRecovers kills the agent daemon mid-run and
// brings up a replacement with the same id and journal directory: the
// new agent replays the journaled grants, re-announces with its
// done-epoch count and is readmitted, and the cluster still drains to
// a complete result with every member epoch executed exactly once.
func TestDistHTTPAgentRestartRecovers(t *testing.T) {
	dir := t.TempDir()
	ts, _, host := newDistServer(t, dir)

	resp := postJSON(t, ts.URL+"/dist/clusters",
		`{"id":"c1","budget_w":10,"expect":1,"epoch_deadline_ms":400,"grace_ms":5000,"join_timeout_ms":5000}`)
	wantStatus(t, resp, http.StatusCreated)
	coordURL := ts.URL + "/dist/clusters/c1"

	const total = 40
	resp = postJSON(t, ts.URL+"/dist/agents", fmt.Sprintf(
		`{"id":"a1","coordinator":%q,"members":[{"id":"m1","session":%s}]}`,
		coordURL, sessionSpec("MIX1", total)))
	wantStatus(t, resp, http.StatusCreated)

	// Let the run get under way, then crash the agent side without
	// detaching — exactly what a killed daemon looks like.
	waitForEpoch(t, coordURL, 3)
	host.Close()

	// The straggler deadline evicts m1; the replacement daemon loads the
	// journal (members omitted on purpose — the journal holds them),
	// replays, and re-announces as the same agent.
	time.Sleep(600 * time.Millisecond)
	ts2, _, _ := newDistServer(t, dir)
	resp = postJSON(t, ts2.URL+"/dist/agents", fmt.Sprintf(
		`{"id":"a1","coordinator":%q}`, coordURL))
	wantStatus(t, resp, http.StatusCreated)

	res := getResult(t, coordURL)
	if res.Error != "" {
		t.Fatalf("cluster finished with error %q", res.Error)
	}
	if len(res.Results) != 1 || res.Results[0].Result == nil {
		t.Fatalf("want one finished member result, got %+v", res.Results)
	}

	// Degradation shape: the eviction and the journal-recovered
	// readmission both happened, and no member epoch was reported twice
	// (replayed epochs are covered by the journal, not re-reported).
	var evicted, readmitted bool
	for _, line := range readStream(t, coordURL+"/events") {
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("event line %q: %v", line, err)
		}
		evicted = evicted || ev.Type == "evict"
		readmitted = readmitted || ev.Type == "readmit"
	}
	if !evicted || !readmitted {
		t.Fatalf("want an evict and a readmit event (evict=%v readmit=%v)", evicted, readmitted)
	}
	last := -1
	reported := 0
	for _, line := range readStream(t, coordURL+"/stream") {
		var rec cluster.EpochRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("record line %q: %v", line, err)
		}
		for _, mg := range rec.Members {
			if mg.Epoch <= last {
				t.Fatalf("member epoch %d reported after %d", mg.Epoch, last)
			}
			last = mg.Epoch
			reported++
		}
	}
	if last != total-1 {
		t.Fatalf("final reported member epoch %d, want %d", last, total-1)
	}
	if reported > total {
		t.Fatalf("%d reported member epochs for a %d-epoch member", reported, total)
	}
}

// waitForEpoch polls the cluster status until the coordinator's epoch
// counter reaches at least n.
func waitForEpoch(t *testing.T, coordURL string, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(coordURL)
		if err != nil {
			t.Fatalf("GET status: %v", err)
		}
		var info ClusterInfo
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode status: %v", err)
		}
		if info.Epoch >= n {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("cluster never reached epoch %d", n)
}

// TestDistHTTPRejectsHostileInput covers the service-level refusals:
// hostile frames get typed 400s, premature result reads 409, unknown
// ids 404 — never a panic or a hollow 200.
func TestDistHTTPRejectsHostileInput(t *testing.T) {
	ts, _, _ := newDistServer(t, "")

	resp := postJSON(t, ts.URL+"/dist/clusters", `{"id":"c1","budget_w":10,"expect":2}`)
	wantStatus(t, resp, http.StatusCreated)

	cases := []struct {
		name, url, body string
		want            int
	}{
		{"garbage frame", ts.URL + "/dist/clusters/c1/msgs", `{"type":"gra`, http.StatusBadRequest},
		{"unknown field", ts.URL + "/dist/clusters/c1/msgs", `{"type":"report","member":"m","agent":"a","surprise":1}`, http.StatusBadRequest},
		{"agentless frame", ts.URL + "/dist/clusters/c1/msgs", `{"type":"detach","member":"m"}`, http.StatusBadRequest},
		{"unknown cluster", ts.URL + "/dist/clusters/nope/msgs", `{"type":"heartbeat","agent":"a"}`, http.StatusNotFound},
		{"duplicate cluster id", ts.URL + "/dist/clusters", `{"id":"c1","budget_w":10,"expect":2}`, http.StatusConflict},
		{"bad budget", ts.URL + "/dist/clusters", `{"id":"c2","budget_w":-1,"expect":2}`, http.StatusBadRequest},
		{"bad arbiter", ts.URL + "/dist/clusters", `{"id":"c2","budget_w":10,"expect":2,"arbiter":"psychic"}`, http.StatusBadRequest},
		{"bad cluster id", ts.URL + "/dist/clusters", `{"id":"../../etc","budget_w":10,"expect":2}`, http.StatusBadRequest},
		{"agent without coordinator", ts.URL + "/dist/agents", `{"id":"a1"}`, http.StatusBadRequest},
		{"agent bad session", ts.URL + "/dist/agents", fmt.Sprintf(`{"id":"a1","coordinator":%q,"members":[{"id":"m1","session":{"mix":"NOPE","budget_frac":1}}]}`, ts.URL+"/dist/clusters/c1"), http.StatusBadRequest},
		{"agent recording session", ts.URL + "/dist/agents", fmt.Sprintf(`{"id":"a1","coordinator":%q,"members":[{"id":"m1","session":%s}]}`, ts.URL+"/dist/clusters/c1", `{"mix":"MIX1","budget_frac":1,"record":true}`), http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := postJSON(t, tc.url, tc.body)
		wantStatus(t, resp, tc.want)
	}

	resp, err := http.Get(ts.URL + "/dist/clusters/c1/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer resp.Body.Close()
	wantStatus(t, resp, http.StatusConflict)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/dist/clusters/nope", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	defer dresp.Body.Close()
	wantStatus(t, dresp, http.StatusNotFound)
}
