package dist

// Envelope is one inbound message at the coordinator, tagged with the
// agent connection it arrived on.
type Envelope struct {
	Agent string
	Msg   Msg
}

// Transport is the coordinator's view of the network: a mailbox of
// inbound agent messages plus per-agent outbound delivery. Two
// implementations exist — SimNet (single-threaded virtual time,
// deterministic, with fault injection) and the HTTP transport behind
// Server (wall clock, real sockets). Time is in nanoseconds; SimNet's
// are virtual, so durations in Config mean "units of Transport.Now",
// not wall time.
//
// Recv MUST return by the deadline: the coordinator's no-hung-barrier
// guarantee (the straggler deadline always fires) rests on it.
type Transport interface {
	// Now returns the transport's current time in nanoseconds.
	Now() int64
	// Recv returns the next inbound message, or timeout=true once the
	// absolute deadline (in Now's timebase) passes with nothing to
	// deliver. A non-nil error is fatal to the run.
	Recv(deadline int64) (env Envelope, timeout bool, err error)
	// Send delivers m to the named agent, best effort: delivery failure
	// is the network's business and surfaces as a missed barrier, not
	// an error here.
	Send(agent string, m Msg)
	// Close releases the transport.
	Close()
}

// Clock abstracts agent-side time so the same Agent runs under SimNet
// (virtual time, deterministic) and the wall clock (HTTP transport).
type Clock interface {
	Now() int64
	// After runs f once d nanoseconds from now; the returned cancel
	// makes a pending f a no-op.
	After(d int64, f func()) (cancel func())
}
