package dist_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/cpusim"
	"repro/internal/dist"
	"repro/internal/dvfs"
	"repro/internal/policy"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// testSpec is the member session spec the tests ship over the wire (and
// through the journal): everything needed to rebuild the exact session,
// JSON-encoded, so restart recovery exercises the real spec round-trip.
type testSpec struct {
	Mix    string `json:"mix"`
	Cores  int    `json:"cores"`
	Epochs int    `json:"epochs"`
	Seed   int64  `json:"seed,omitempty"`
	Policy string `json:"policy,omitempty"`
	Mach   string `json:"mach,omitempty"`
}

func specJSON(t *testing.T, sp testSpec) json.RawMessage {
	t.Helper()
	b, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// bigLittle mirrors the cluster test fixture's 2+2 asymmetric machine.
func bigLittle() *sim.MachineSpec {
	return &sim.MachineSpec{
		Name: "bigLITTLE-2+2",
		Classes: []sim.CoreClass{
			{Name: "big", Count: 2},
			{Name: "little", Count: 2,
				Ladder:       dvfs.EfficiencyCoreLadder(),
				Power:        cpusim.PowerConfig{DynMaxW: 1.5, StaticW: 0.2, GateFrac: 0.12},
				ExecCPIScale: 1.25},
		},
	}
}

// buildSession is the BuildFunc under test: the same construction the
// cluster fixture uses, driven from the JSON spec.
func buildSession(raw json.RawMessage) (*runner.Session, error) {
	var sp testSpec
	if err := json.Unmarshal(raw, &sp); err != nil {
		return nil, err
	}
	mix, err := workload.MixByName(sp.Mix)
	if err != nil {
		return nil, err
	}
	sc := sim.DefaultConfig(sp.Cores)
	sc.EpochNs = 5e5
	sc.ProfileNs = 5e4
	if sp.Seed != 0 {
		sc.Seed = sp.Seed
	}
	switch sp.Mach {
	case "":
	case "biglittle":
		sc.Machine = bigLittle()
	default:
		return nil, fmt.Errorf("unknown machine %q", sp.Mach)
	}
	var pol policy.Policy
	switch sp.Policy {
	case "":
	case "fastcap":
		pol = policy.NewFastCap()
	case "eqlpwr":
		pol = policy.NewEqlPwr()
	case "greedy":
		pol = policy.NewGreedy()
	default:
		return nil, fmt.Errorf("unknown policy %q", sp.Policy)
	}
	return runner.NewSession(runner.Config{Sim: sc, Mix: mix, BudgetFrac: 1, Epochs: sp.Epochs, Policy: pol})
}

// fixtureMember binds one member spec to the agent that hosts it.
type fixtureMember struct {
	id    string
	agent string
	spec  testSpec
}

// goldenFixture is the cluster layer's 8-member mixed-machine golden
// fixture, spread across three agents.
func goldenFixture() []fixtureMember {
	return []fixtureMember{
		{"ilp", "a1", testSpec{Mix: "ILP1", Cores: 8, Epochs: 8, Policy: "fastcap"}},
		{"mem", "a1", testSpec{Mix: "MEM4", Cores: 8, Epochs: 8, Policy: "fastcap"}},
		{"mix", "a1", testSpec{Mix: "MIX3", Cores: 4, Epochs: 7, Seed: 7, Policy: "fastcap"}},
		{"mid", "a2", testSpec{Mix: "MID1", Cores: 4, Epochs: 5, Policy: "eqlpwr"}},
		{"bl1", "a2", testSpec{Mix: "MIX1", Cores: 4, Epochs: 8, Mach: "biglittle", Policy: "fastcap"}},
		{"bl2", "a2", testSpec{Mix: "MEM2", Cores: 4, Epochs: 6, Seed: 42, Mach: "biglittle", Policy: "fastcap"}},
		{"base", "a3", testSpec{Mix: "MID2", Cores: 4, Epochs: 4}},
		{"grd", "a3", testSpec{Mix: "ILP2", Cores: 4, Epochs: 8, Policy: "greedy"}},
	}
}

// chaosFixture is a lighter 4-member, 2-agent cluster for the fault
// sweeps.
func chaosFixture() []fixtureMember {
	return []fixtureMember{
		{"c1", "a1", testSpec{Mix: "MIX1", Cores: 4, Epochs: 8, Policy: "fastcap"}},
		{"c2", "a1", testSpec{Mix: "MEM2", Cores: 4, Epochs: 6, Seed: 42, Mach: "biglittle", Policy: "fastcap"}},
		{"c3", "a2", testSpec{Mix: "ILP2", Cores: 4, Epochs: 5, Policy: "greedy"}},
		{"c4", "a2", testSpec{Mix: "MID1", Cores: 4, Epochs: 7, Policy: "eqlpwr"}},
	}
}

// sumPeaks builds each fixture session once and sums the peaks in
// fixture order — the same float sequence the in-process golden run
// uses for its budget.
func sumPeaks(t *testing.T, fixture []fixtureMember) float64 {
	t.Helper()
	peak := 0.0
	for _, fm := range fixture {
		ses, err := buildSession(specJSON(t, fm.spec))
		if err != nil {
			t.Fatal(err)
		}
		peak += ses.PeakPowerW()
	}
	return peak
}

// distRun configures one simulated distributed run.
type distRun struct {
	fixture []fixtureMember
	seed    int64
	faults  dist.Faults
	arbiter func() cluster.Arbiter // default NewSlackReclaim
	cfg     dist.Config            // BudgetW/Arbiter/Expect filled in
}

// runDist wires the fixture's agents onto a SimNet (with journal-backed
// restart recovery) and drives the coordinator to completion.
func runDist(t *testing.T, r distRun) (*dist.Coordinator, error) {
	t.Helper()
	net := dist.NewSimNet(dist.SimConfig{Seed: r.seed, Faults: r.faults})
	cfg := r.cfg
	if cfg.BudgetW == 0 {
		cfg.BudgetW = 0.7 * sumPeaks(t, r.fixture)
	}
	if cfg.Arbiter == nil {
		if r.arbiter != nil {
			cfg.Arbiter = r.arbiter()
		} else {
			cfg.Arbiter = cluster.NewSlackReclaim()
		}
	}
	if cfg.Expect == 0 {
		cfg.Expect = len(r.fixture)
	}
	coord, err := dist.NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var agents []string
	byAgent := map[string][]dist.MemberSpec{}
	for _, fm := range r.fixture {
		if _, ok := byAgent[fm.agent]; !ok {
			agents = append(agents, fm.agent)
		}
		byAgent[fm.agent] = append(byAgent[fm.agent], dist.MemberSpec{ID: fm.id, Spec: specJSON(t, fm.spec)})
	}
	for _, name := range agents {
		name := name
		journal := &dist.MemJournal{}
		// start both boots and (via the SimNet rebuild hook) reboots
		// the agent: recovery goes through NewAgent's journal replay.
		var start func()
		start = func() {
			a, err := dist.NewAgent(dist.AgentConfig{
				Name: name, Members: byAgent[name],
				Build: buildSession, Send: net.Sender(name), Clock: net.Clock(name),
				Journal: journal,
			})
			if err != nil {
				t.Fatalf("agent %s: %v", name, err)
			}
			net.Register(name, a.Handle, start)
			a.Start()
		}
		start()
	}
	return coord, coord.Run(net)
}

// runInProcess drives the classic single-process Coordinator over the
// same fixture.
func runInProcess(t *testing.T, fixture []fixtureMember, arb cluster.Arbiter) ([]cluster.EpochRecord, []cluster.MemberResult) {
	t.Helper()
	members := make([]cluster.Member, len(fixture))
	peak := 0.0
	for i, fm := range fixture {
		ses, err := buildSession(specJSON(t, fm.spec))
		if err != nil {
			t.Fatal(err)
		}
		peak += ses.PeakPowerW()
		members[i] = cluster.Member{ID: fm.id, Session: ses}
	}
	c, err := cluster.New(cluster.Config{BudgetW: 0.7 * peak, Arbiter: arb, Workers: 1}, members)
	if err != nil {
		t.Fatal(err)
	}
	var recs []cluster.EpochRecord
	for {
		rec, err := c.Step(context.Background())
		if errors.Is(err, cluster.ErrDone) {
			break
		}
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		recs = append(recs, rec)
	}
	return recs, c.Results()
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
