// Package dist splits the cluster layer across the network: a
// coordinator service owns the global watt budget and the epoch
// barrier, remote agents own the member sessions, and an NDJSON wire
// protocol carries announces, grant pushes, draw/slack/throttle reports
// and heartbeats between them. The arbitration arithmetic is
// cluster.ComputeGrants — the exact core the in-process Coordinator
// runs — so when no faults fire the distributed grant stream is
// byte-identical to the local one.
//
// The barrier is failure-aware: members that miss the straggler
// deadline are evicted (their floor returns to the water-fill pool the
// next epoch, with a typed pressure event in the stream) and readmitted
// at a later epoch boundary when their agent recovers — including a
// full agent restart, which replays the journaled grant sequence
// through a rebuilt session to rejoin bit-identically at the current
// boundary.
//
// Transports are pluggable: SimNet is a single-threaded virtual-time
// loopback with seeded fault injection (drop, duplication, delay,
// mid-epoch restart) for deterministic robustness tests; the HTTP
// transport in http.go carries the same messages between fastcapd
// daemons.
package dist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/runner"
)

// MaxMsgBytes bounds one control message (announce, grant, report…).
// Result messages carry a member's full runner.Result — per-epoch
// records included, so the coordinator's finalized results match an
// in-process run byte for byte — and get the larger MaxResultBytes.
// Both are hard caps: allocation during decode is bounded by them.
const (
	MaxMsgBytes    = 1 << 16
	MaxResultBytes = 16 << 20
)

// maxIDLen bounds member and agent identifiers on the wire.
const maxIDLen = 256

// ErrBadMessage reports a wire message that failed to decode or
// validate — truncated, oversized, unknown-typed, non-finite-valued or
// otherwise hostile input. Always typed, never a panic: the decoder
// fronts an unauthenticated surface.
var ErrBadMessage = errors.New("dist: malformed message")

// Type discriminates wire messages.
type Type string

const (
	// TypeAnnounce (agent → coordinator) offers a member for admission
	// or readmission: arbitration parameters plus how many epochs the
	// member has already executed (non-zero after a restart recovery).
	TypeAnnounce Type = "announce"
	// TypeWelcome (coordinator → agent) admits an announced member at
	// the named epoch boundary.
	TypeWelcome Type = "welcome"
	// TypeGrant (coordinator → agent) pushes one member's budget for
	// cluster epoch Epoch. The agent applies it, steps the member one
	// control epoch, and reports.
	TypeGrant Type = "grant"
	// TypeReport (agent → coordinator) returns one member's completed
	// epoch: measured draw, throttle fraction, instructions, done flag.
	TypeReport Type = "report"
	// TypeResult (agent → coordinator) carries a finished member's
	// final aggregate.
	TypeResult Type = "result"
	// TypeEvict (coordinator → agent) notifies that a member missed the
	// straggler deadline for epoch Epoch and left the arbitration pool;
	// the agent re-announces with backoff to be readmitted.
	TypeEvict Type = "evict"
	// TypeDetach (agent → coordinator) withdraws a member permanently.
	TypeDetach Type = "detach"
	// TypeHeartbeat (either direction) keeps the peer's liveness view
	// fresh when no epoch traffic is pending. Carries no epoch data and
	// is ignored by golden comparators.
	TypeHeartbeat Type = "heartbeat"
	// TypeError (coordinator → agent) reports a refused operation (for
	// example a duplicate member id from a different agent).
	TypeError Type = "error"
)

// Msg is one coordinator↔agent wire message — a flat union of every
// message type, NDJSON-framed (one JSON object per line). Unknown
// fields and values outside each type's bounds are rejected typed by
// DecodeMsg.
type Msg struct {
	Type Type `json:"type"`
	// Member names the subject member; Agent the sending (or target)
	// agent daemon.
	Member string `json:"member,omitempty"`
	Agent  string `json:"agent,omitempty"`
	// Epoch is the cluster epoch the message belongs to: the barrier a
	// grant opens, a report answers, an eviction closes.
	Epoch int `json:"epoch,omitempty"`

	// Announce parameters (see cluster.Member).
	PeakW       float64 `json:"peak_w,omitempty"`
	Weight      float64 `json:"weight,omitempty"`
	FloorFrac   float64 `json:"floor_frac,omitempty"`
	TotalEpochs int     `json:"total_epochs,omitempty"`
	// DoneEpochs is how many member-local epochs the agent has already
	// executed — non-zero when a restarted agent replayed its journal
	// and rejoins mid-run.
	DoneEpochs int `json:"done_epochs,omitempty"`
	// TargetBIPS declares the member's optional throughput SLO
	// (giga-instructions per second; 0 = no contract) and EpochNs its
	// control-epoch length — the BIPS denominator, required alongside a
	// target so the coordinator computes rates with the member's own
	// epoch geometry.
	TargetBIPS float64 `json:"target_bips,omitempty"`
	EpochNs    float64 `json:"epoch_ns,omitempty"`

	// Grant payload.
	GrantW float64 `json:"grant_w,omitempty"`

	// Report payload. MemberEpoch is the member-local epoch index just
	// executed (lags the cluster epoch for late joiners).
	MemberEpoch  int     `json:"member_epoch,omitempty"`
	PowerW       float64 `json:"power_w,omitempty"`
	ThrottleFrac float64 `json:"throttle_frac,omitempty"`
	Instr        float64 `json:"instr,omitempty"`
	Done         bool    `json:"done,omitempty"`

	// Result payload.
	Result *runner.Result `json:"result,omitempty"`

	// Error payload.
	Err string `json:"err,omitempty"`
}

// EncodeMsg serializes m to its one-line wire form (no trailing
// newline).
func EncodeMsg(m Msg) ([]byte, error) { return json.Marshal(m) }

// DecodeMsg strictly decodes and validates one wire message: oversized,
// truncated, unknown-field, trailing-garbage, unknown-type and
// out-of-bounds input all fail with ErrBadMessage. It never panics and
// allocates at most in proportion to the (bounded) input.
func DecodeMsg(data []byte) (Msg, error) {
	if len(data) > MaxResultBytes {
		return Msg{}, fmt.Errorf("%w: %d bytes above the %d-byte limit", ErrBadMessage, len(data), MaxResultBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var m Msg
	if err := dec.Decode(&m); err != nil {
		return Msg{}, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	if m.Type != TypeResult && len(data) > MaxMsgBytes {
		return Msg{}, fmt.Errorf("%w: %d-byte %s message above the %d-byte limit", ErrBadMessage, len(data), m.Type, MaxMsgBytes)
	}
	// One message per frame: trailing non-space bytes are framing bugs
	// (or smuggling attempts), not forward compatibility.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return Msg{}, fmt.Errorf("%w: trailing data after message", ErrBadMessage)
	}
	if err := m.Validate(); err != nil {
		return Msg{}, err
	}
	return m, nil
}

// finite reports a usable non-negative float.
func finiteNonNeg(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0
}

// Validate checks the message against its type's bounds. Violations
// wrap ErrBadMessage.
func (m Msg) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrBadMessage, fmt.Sprintf(format, args...))
	}
	if len(m.Member) > maxIDLen || len(m.Agent) > maxIDLen {
		return fail("identifier above %d bytes", maxIDLen)
	}
	if m.Epoch < 0 {
		return fail("%s epoch %d, want >= 0", m.Type, m.Epoch)
	}
	needMember := func() error {
		if m.Member == "" {
			return fail("%s without a member id", m.Type)
		}
		return nil
	}
	switch m.Type {
	case TypeAnnounce:
		if err := needMember(); err != nil {
			return err
		}
		if !finiteNonNeg(m.PeakW) || m.PeakW == 0 {
			return fail("announce peak %g W, want positive and finite", m.PeakW)
		}
		if !finiteNonNeg(m.Weight) {
			return fail("announce weight %g, want finite and >= 0", m.Weight)
		}
		if !finiteNonNeg(m.FloorFrac) || m.FloorFrac > 1 {
			return fail("announce floor fraction %g outside [0, 1]", m.FloorFrac)
		}
		if m.TotalEpochs < 1 || m.TotalEpochs > 1_000_000_000 {
			return fail("announce total epochs %d outside [1, 1e9]", m.TotalEpochs)
		}
		if m.DoneEpochs < 0 || m.DoneEpochs > m.TotalEpochs {
			return fail("announce done epochs %d outside [0, %d]", m.DoneEpochs, m.TotalEpochs)
		}
		if !finiteNonNeg(m.TargetBIPS) {
			return fail("announce target %g BIPS, want finite and >= 0", m.TargetBIPS)
		}
		if !finiteNonNeg(m.EpochNs) {
			return fail("announce epoch length %g ns, want finite and >= 0", m.EpochNs)
		}
		if m.TargetBIPS > 0 && m.EpochNs == 0 {
			return fail("announce declares a %g BIPS target without an epoch length", m.TargetBIPS)
		}
	case TypeWelcome, TypeEvict, TypeDetach:
		if err := needMember(); err != nil {
			return err
		}
	case TypeGrant:
		if err := needMember(); err != nil {
			return err
		}
		if !finiteNonNeg(m.GrantW) || m.GrantW == 0 {
			return fail("grant %g W, want positive and finite", m.GrantW)
		}
	case TypeReport:
		if err := needMember(); err != nil {
			return err
		}
		if m.MemberEpoch < 0 {
			return fail("report member epoch %d, want >= 0", m.MemberEpoch)
		}
		if !finiteNonNeg(m.PowerW) {
			return fail("report power %g W, want finite and >= 0", m.PowerW)
		}
		if !finiteNonNeg(m.ThrottleFrac) || m.ThrottleFrac > 1 {
			return fail("report throttle fraction %g outside [0, 1]", m.ThrottleFrac)
		}
		if !finiteNonNeg(m.Instr) {
			return fail("report instructions %g, want finite and >= 0", m.Instr)
		}
	case TypeResult:
		if err := needMember(); err != nil {
			return err
		}
		if m.Result == nil {
			return fail("result message without a result")
		}
		bad := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
		if bad(m.Result.PeakW) || bad(m.Result.BudgetW) || bad(m.Result.TotalTimeNs) {
			return fail("result with non-finite aggregate")
		}
		for _, s := range [][]float64{m.Result.TotalInstr, m.Result.NsPerInstr} {
			for _, v := range s {
				if bad(v) {
					return fail("result with non-finite per-core aggregate")
				}
			}
		}
	case TypeHeartbeat:
		// Liveness only; either id (or none) is fine.
	case TypeError:
		if m.Err == "" {
			return fail("error message without a cause")
		}
	default:
		return fail("unknown message type %q", m.Type)
	}
	return nil
}
