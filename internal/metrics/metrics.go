// Package metrics is a zero-dependency, race-safe metrics registry that
// renders the Prometheus text exposition format (version 0.0.4). It
// exists so fastcapd can export an observability plane — sessions by
// state, epochs/sec, arbitration latency, eviction churn — without
// pulling client_golang into a module that deliberately has no
// dependencies: the daemon's serving surface is the one place a dep
// would creep in, and everything it needs (atomic counters, gauges,
// labeled families, one histogram shape) fits in a few hundred lines
// whose behavior we can golden-test byte for byte.
//
// Design rules, chosen for the instrumented hot paths:
//
//   - Handles are pre-resolved. Vec.With does a map lookup and may
//     allocate, so instrumented code calls it at construction time and
//     holds the returned *Counter/*Gauge/*Histogram. Steady-state
//     updates are a single atomic op (counter/gauge) or a short
//     mutex'd bucket increment (histogram) — zero allocations, so the
//     arbitration path stays allocation-free with metrics enabled.
//
//   - Nil handles are silent no-ops. Every method checks its receiver,
//     so a zero-value config struct disables instrumentation without a
//     single branch at the call sites. Tests and library users pay
//     nothing for telemetry they did not ask for.
//
//   - Exposition is deterministic: families sort by name, series by
//     label value. Scrapes are diffable and the format is golden-
//     testable, the same discipline the simulator applies to results.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// Counter is a monotonically increasing uint64. A nil Counter no-ops.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down, stored as atomic bits so
// Set is wait-free. A nil Gauge no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by d (CAS loop; contention on a gauge is a
// design smell, so the loop is expected to win first try).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value (0 for a nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket latency histogram over a streaming
// summary: cumulative bucket counts for quantile estimation at the
// scrape side, plus exact sum/count (and min/max/stddev via the
// summary) with O(1) memory regardless of how long the daemon runs.
// Observe takes a short mutex — the histogram guards multi-word state —
// and performs no allocation. A nil Histogram no-ops.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; +Inf bucket is implicit
	counts []uint64  // len(bounds)+1; non-cumulative, summed at scrape
	sum    stats.Streaming
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.counts[stats.BucketIndex(h.bounds, v)]++
	h.sum.Observe(v)
	h.mu.Unlock()
}

// Summary returns a copy of the underlying streaming summary.
func (h *Histogram) Summary() stats.Streaming {
	if h == nil {
		return stats.Streaming{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot copies bucket counts and summary under the lock.
func (h *Histogram) snapshot(counts []uint64) ([]uint64, stats.Streaming) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append(counts[:0], h.counts...), h.sum
}

// DefLatencyBuckets spans 10µs to ~2.6s in powers of four — wide enough
// for sub-millisecond arbitration and multi-second session lifecycles
// in one shape.
var DefLatencyBuckets = stats.ExpBuckets(10e-6, 4, 10)

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled member of a family; exactly one of the value
// fields is set, matching the family's kind (gf for gauge functions).
type series struct {
	labels string // rendered {k="v",...}, "" for the unlabeled series
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

type family struct {
	name, help string
	kind       kind
	labels     []string
	bounds     []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series
	order  []string // insertion-keyed, sorted at scrape
}

// Registry holds metric families and renders them as Prometheus text.
// A nil Registry hands out nil (no-op) handles from every constructor,
// so "metrics off" is spelled by not creating one. Registration of a
// duplicate family name, or of label values whose count mismatches the
// family's label names, panics: both are wiring bugs best caught at
// startup, not scrape time.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(name, help string, k kind, labels []string, bounds []float64) *family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate family %q", name))
	}
	f := &family{
		name: name, help: help, kind: k, labels: labels, bounds: bounds,
		series: make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// renderLabels builds the {k="v",...} block, escaping values per the
// exposition format.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func renderLabels(names, values []string) string {
	if len(names) != len(values) {
		panic(fmt.Sprintf("metrics: %d label values for %d label names", len(values), len(names)))
	}
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// with returns the series for the given label values, creating it on
// first use. Callers resolve handles once at construction; with is not
// meant for hot paths.
func (f *family) with(values []string) *series {
	if f == nil {
		return nil
	}
	key := renderLabels(f.labels, values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labels: key}
	switch f.kind {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	case kindHistogram:
		s.h = &Histogram{bounds: f.bounds, counts: make([]uint64, len(f.bounds)+1)}
	}
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

func (f *family) delete(values []string) {
	if f == nil {
		return
	}
	key := renderLabels(f.labels, values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.series[key]; !ok {
		return
	}
	delete(f.series, key)
	for i, k := range f.order {
		if k == key {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
}

// Counter registers an unlabeled counter family and returns its handle.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindCounter, nil, nil).with(nil).c
}

// Gauge registers an unlabeled gauge family and returns its handle.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindGauge, nil, nil).with(nil).g
}

// GaugeFunc registers an unlabeled gauge whose value is computed by f
// at scrape time — for state that already lives somewhere authoritative
// (queue lengths, map sizes) where mirroring into a Gauge would invite
// drift. f runs on the scrape goroutine and must be safe to call
// concurrently with the instrumented code.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	if r == nil {
		return
	}
	r.register(name, help, kindGauge, nil, nil).with(nil).gf = f
}

// Histogram registers an unlabeled histogram with the given ascending
// bucket bounds (nil means DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	return r.register(name, help, kindHistogram, nil, bounds).with(nil).h
}

// CounterVec is a counter family with label dimensions.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.register(name, help, kindCounter, labels, nil)}
}

// With returns the counter for the given label values, creating it on
// first use. Resolve once at construction, not per update.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.with(values).c
}

// Delete drops the series for the given label values (its running total
// with it — bounded memory wins over keeping departed tenants' history).
func (v *CounterVec) Delete(values ...string) {
	if v == nil {
		return
	}
	v.f.delete(values)
}

// GaugeVec is a gauge family with label dimensions.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.register(name, help, kindGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.with(values).g
}

// WithFunc binds a scrape-time function as the series for the given
// label values (see GaugeFunc).
func (v *GaugeVec) WithFunc(f func() float64, values ...string) {
	if v == nil {
		return
	}
	v.f.with(values).gf = f
}

// Delete drops the series for the given label values, so bounded-
// lifetime label sets (per-cluster gauges) do not accumulate forever in
// a long-lived daemon.
func (v *GaugeVec) Delete(values ...string) {
	if v == nil {
		return
	}
	v.f.delete(values)
}

// HistogramVec is a histogram family with label dimensions.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family (nil bounds means
// DefLatencyBuckets).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	return &HistogramVec{f: r.register(name, help, kindHistogram, labels, bounds)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.with(values).h
}

// Delete drops the series for the given label values.
func (v *HistogramVec) Delete(values ...string) {
	if v == nil {
		return
	}
	v.f.delete(values)
}

// formatFloat renders a float the way the exposition format expects:
// shortest representation, +Inf/-Inf spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// seriesName splices extra labels (the histogram le bound) into an
// already-rendered label block.
func seriesName(name, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return name
	case labels == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + labels
	default:
		return name + labels[:len(labels)-1] + "," + extra + "}"
	}
}

// WriteText renders every family in exposition format, deterministically
// ordered (families by name, series by label block).
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	var counts []uint64
	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		ss := make([]*series, 0, len(keys))
		sort.Strings(keys)
		for _, k := range keys {
			ss = append(ss, f.series[k])
		}
		f.mu.Unlock()
		if len(ss) == 0 {
			continue
		}

		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range ss {
			switch {
			case s.c != nil:
				fmt.Fprintf(&b, "%s %d\n", seriesName(f.name, s.labels, ""), s.c.Value())
			case s.gf != nil:
				fmt.Fprintf(&b, "%s %s\n", seriesName(f.name, s.labels, ""), formatFloat(s.gf()))
			case s.g != nil:
				fmt.Fprintf(&b, "%s %s\n", seriesName(f.name, s.labels, ""), formatFloat(s.g.Value()))
			case s.h != nil:
				var sum stats.Streaming
				counts, sum = s.h.snapshot(counts)
				cum := uint64(0)
				for i, bound := range f.bounds {
					cum += counts[i]
					fmt.Fprintf(&b, "%s %d\n",
						seriesName(f.name+"_bucket", s.labels, `le="`+formatFloat(bound)+`"`), cum)
				}
				cum += counts[len(f.bounds)]
				fmt.Fprintf(&b, "%s %d\n", seriesName(f.name+"_bucket", s.labels, `le="+Inf"`), cum)
				fmt.Fprintf(&b, "%s %s\n", seriesName(f.name+"_sum", s.labels, ""), formatFloat(sum.Sum()))
				fmt.Fprintf(&b, "%s %d\n", seriesName(f.name+"_count", s.labels, ""), sum.Count())
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns the GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Errors past the header are broken-pipe noise; the scraper
		// already left.
		_ = r.WriteText(w)
	})
}
