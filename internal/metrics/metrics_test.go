package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// The exposition format is a wire contract: scrapers parse it byte by
// byte, so we golden-test it byte by byte. Families must sort by name,
// series by label block, histograms must render cumulative buckets with
// the +Inf bucket equal to _count.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()

	c := r.Counter("demo_epochs_total", "Epochs stepped.")
	c.Add(41)
	c.Inc()

	g := r.Gauge("demo_budget_w", "Active watt budget.")
	g.Set(37.5)

	rej := r.CounterVec("demo_rejections_total", "Rejected requests.", "reason")
	rej.With("limit").Add(3)
	rej.With("draining").Inc()

	gv := r.GaugeVec("demo_grant_w", "Granted watts.", "cluster")
	gv.With("c2").Set(12.25)
	gv.With("c1").Set(25)
	gv.WithFunc(func() float64 { return 7 }, "c3")

	h := r.Histogram("demo_step_seconds", "Step latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.005, 0.05, 2.5} {
		h.Observe(v)
	}

	r.GaugeFunc("demo_queue_depth", "Runnable queue length.", func() float64 { return 4 })

	want := strings.Join([]string{
		"# HELP demo_budget_w Active watt budget.",
		"# TYPE demo_budget_w gauge",
		"demo_budget_w 37.5",
		"# HELP demo_epochs_total Epochs stepped.",
		"# TYPE demo_epochs_total counter",
		"demo_epochs_total 42",
		"# HELP demo_grant_w Granted watts.",
		"# TYPE demo_grant_w gauge",
		`demo_grant_w{cluster="c1"} 25`,
		`demo_grant_w{cluster="c2"} 12.25`,
		`demo_grant_w{cluster="c3"} 7`,
		"# HELP demo_queue_depth Runnable queue length.",
		"# TYPE demo_queue_depth gauge",
		"demo_queue_depth 4",
		"# HELP demo_rejections_total Rejected requests.",
		"# TYPE demo_rejections_total counter",
		`demo_rejections_total{reason="draining"} 1`,
		`demo_rejections_total{reason="limit"} 3`,
		"# HELP demo_step_seconds Step latency.",
		"# TYPE demo_step_seconds histogram",
		`demo_step_seconds_bucket{le="0.01"} 2`,
		`demo_step_seconds_bucket{le="0.1"} 3`,
		`demo_step_seconds_bucket{le="1"} 3`,
		`demo_step_seconds_bucket{le="+Inf"} 4`,
		"demo_step_seconds_sum 2.56",
		"demo_step_seconds_count 4",
		"",
	}, "\n")

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}

	// Repeat scrapes must be byte-identical (deterministic ordering).
	var b2 strings.Builder
	if err := r.WriteText(&b2); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if b2.String() != b.String() {
		t.Errorf("second scrape differs from first")
	}
}

func TestLabeledHistogramAndDelete(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("demo_arb_seconds", "Arbitration latency.", []float64{0.5}, "cluster")
	hv.With("c1").Observe(0.25)
	gv := r.GaugeVec("demo_members", "Members.", "cluster")
	gv.With("c1").Set(3)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	for _, line := range []string{
		`demo_arb_seconds_bucket{cluster="c1",le="0.5"} 1`,
		`demo_arb_seconds_bucket{cluster="c1",le="+Inf"} 1`,
		`demo_arb_seconds_sum{cluster="c1"} 0.25`,
		`demo_arb_seconds_count{cluster="c1"} 1`,
		`demo_members{cluster="c1"} 3`,
	} {
		if !strings.Contains(b.String(), line+"\n") {
			t.Errorf("missing line %q in:\n%s", line, b.String())
		}
	}

	// After Delete the series disappears, and with no series left the
	// family header is suppressed too.
	hv.Delete("c1")
	gv.Delete("c1")
	gv.Delete("c1") // idempotent
	b.Reset()
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if strings.Contains(b.String(), "c1") || strings.Contains(b.String(), "# TYPE") {
		t.Errorf("deleted series still rendered:\n%s", b.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("demo_total", "d.", "name")
	v.With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	want := `demo_total{name="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want+"\n") {
		t.Errorf("escaped series = %q not found in:\n%s", want, b.String())
	}
}

// Nil registries and nil handles must be complete no-ops so zero-value
// metric configs disable instrumentation with no branches at call sites.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "d.")
	g := r.Gauge("x", "d.")
	h := r.Histogram("x_seconds", "d.", nil)
	cv := r.CounterVec("xv_total", "d.", "l")
	gv := r.GaugeVec("xv", "d.", "l")
	hv := r.HistogramVec("xv_seconds", "d.", nil, "l")
	r.GaugeFunc("xf", "d.", func() float64 { return 1 })

	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(2)
	h.Observe(3)
	cv.With("a").Inc()
	gv.With("a").Set(1)
	gv.WithFunc(func() float64 { return 1 }, "a")
	gv.Delete("a")
	hv.With("a").Observe(1)
	hv.Delete("a")

	if c.Value() != 0 || g.Value() != 0 || h.Summary().Count() != 0 {
		t.Errorf("nil handles accumulated state")
	}
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Errorf("nil WriteText: %v", err)
	}
}

func TestDuplicateAndMismatchedLabelsPanic(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "d.")
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("duplicate registration did not panic")
			}
		}()
		r.Counter("dup_total", "d.")
	}()
	v := r.CounterVec("lab_total", "d.", "a", "b")
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("label arity mismatch did not panic")
			}
		}()
		v.With("only-one")
	}()
}

func TestGaugeAddConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("x", "d.")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 8000 {
		t.Errorf("Gauge.Add lost updates: %g, want 8000", g.Value())
	}
}

// Concurrent scrapes against concurrent updates must be race-clean and
// always produce parseable output (this test's teeth come from -race).
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "d.")
	h := r.Histogram("x_seconds", "d.", nil)
	v := r.GaugeVec("xv", "d.", "l")
	a := v.With("a")
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				c.Inc()
				h.Observe(0.01)
				a.Add(0.5)
			}
		}
	}()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WriteText(&b); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		if !strings.Contains(b.String(), "# TYPE x_total counter") {
			t.Fatalf("scrape lost a family:\n%s", b.String())
		}
	}
	close(done)
	wg.Wait()
}

func TestFormatFloat(t *testing.T) {
	for _, c := range []struct {
		v    float64
		want string
	}{
		{math.Inf(1), "+Inf"}, {math.Inf(-1), "-Inf"}, {0.25, "0.25"}, {3, "3"},
	} {
		if got := formatFloat(c.v); got != c.want {
			t.Errorf("formatFloat(%g) = %q, want %q", c.v, got, c.want)
		}
	}
}
