package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dvfs"
	"repro/internal/power"
)

// randLadder builds a small valid ladder with a random step count,
// frequency range and proportional voltages.
func randLadder(rng *rand.Rand) *dvfs.Ladder {
	steps := 3 + rng.Intn(10)
	fMin := 0.5 + 2*rng.Float64()
	fMax := fMin * (1.3 + 1.5*rng.Float64())
	l, err := dvfs.NewUniformLadder(steps, fMin, fMax, 0.5, 0.6+0.6*rng.Float64())
	if err != nil {
		panic(err)
	}
	return l
}

// randHeteroInputs draws a machine with per-core ladders plus matching
// optimizer inputs whose budget lies somewhere between floor and peak
// power (sometimes outside, to exercise both guard outcomes).
func randHeteroInputs(rng *rand.Rand) (*Inputs, []*dvfs.Ladder, *dvfs.Ladder) {
	n := 2 + rng.Intn(6)
	ladders := make([]*dvfs.Ladder, n)
	for i := range ladders {
		ladders[i] = randLadder(rng)
	}
	memL := randLadder(rng)

	in := &Inputs{
		ZBar:       make([]float64, n),
		C:          make([]float64, n),
		MaxZRatios: make([]float64, n),
		SbBar:      5 + 10*rng.Float64(),
		Budget:     0, // set below
	}
	in.Power.Ps = 5 + 5*rng.Float64()
	floor, peak := in.Power.Ps, in.Power.Ps
	for i := 0; i < n; i++ {
		in.ZBar[i] = 50 + 500*rng.Float64()
		in.C[i] = 10 * rng.Float64()
		in.MaxZRatios[i] = ladders[i].StepRange()
		m := power.Model{Scale: 1 + 5*rng.Float64(), Exp: 2 + rng.Float64(), Static: 0.2 + 0.5*rng.Float64()}
		in.Power.Cores = append(in.Power.Cores, m)
		floor += m.At(ladders[i].NormFreq(0))
		peak += m.Peak()
	}
	in.Power.Mem = power.Model{Scale: 5 + 10*rng.Float64(), Exp: 1, Static: 2 + 3*rng.Float64()}
	floor += in.Power.Mem.At(memL.NormFreq(0))
	peak += in.Power.Mem.Peak()

	slope := rng.Float64()
	base := 20 * rng.Float64()
	in.Response = func(core int, sb float64) float64 { return base + slope*sb }
	in.SbCandidates = AppendSbCandidates(nil, in.SbBar, memL)
	// Budget drawn from slightly below floor (infeasible) to peak.
	in.Budget = floor*0.9 + (peak-floor*0.9)*rng.Float64()
	return in, ladders, memL
}

// Property: quantized per-core settings always lie on that core's own
// ladder, the reported predicted power matches re-evaluating the
// models at the assignment, and with the guard on the assignment never
// exceeds the budget unless the whole machine is already at its floor.
func TestQuantizePerCoreProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		in, ladders, memL := randHeteroInputs(rng)
		res, err := in.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, guard := range []bool{false, true} {
			var s Solver
			a := s.QuantizePerCore(in, res, ladders, memL, guard)

			if a.MemStep < 0 || a.MemStep >= memL.Len() {
				t.Fatalf("trial %d: memory step %d outside its %d-step ladder", trial, a.MemStep, memL.Len())
			}
			recomputed := in.Power.Ps + in.Power.Mem.At(memL.NormFreq(a.MemStep))
			for i, st := range a.CoreSteps {
				if st < 0 || st >= ladders[i].Len() {
					t.Fatalf("trial %d: core %d step %d outside its own %d-step ladder", trial, i, st, ladders[i].Len())
				}
				recomputed += in.Power.Cores[i].At(ladders[i].NormFreq(st))
			}
			if math.Abs(recomputed-a.PredictedPower) > 1e-6 {
				t.Fatalf("trial %d: predicted power %.9f, recomputed %.9f", trial, a.PredictedPower, recomputed)
			}
			if !guard {
				continue
			}
			if a.PredictedPower <= in.Budget+1e-9 {
				continue
			}
			// Over budget with the guard on is only legal at the floor.
			if a.MemStep != 0 {
				t.Fatalf("trial %d: guard left memory at step %d while over budget", trial, a.MemStep)
			}
			for i, st := range a.CoreSteps {
				if st != 0 {
					t.Fatalf("trial %d: guard left core %d at step %d while over budget", trial, i, st)
				}
			}
		}
	}
}

// The shared-ladder Quantize and QuantizePerCore with N copies of that
// ladder must agree exactly.
func TestQuantizePerCoreMatchesShared(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		in, _, memL := randHeteroInputs(rng)
		shared := dvfs.DefaultCoreLadder()
		ladders := make([]*dvfs.Ladder, len(in.ZBar))
		for i := range ladders {
			ladders[i] = shared
			in.MaxZRatios[i] = shared.StepRange()
		}
		res, err := in.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, guard := range []bool{false, true} {
			var s1, s2 Solver
			a := s1.Quantize(in, res, shared, memL, guard)
			b := s2.QuantizePerCore(in, res, ladders, memL, guard)
			if a.MemStep != b.MemStep || a.PredictedPower != b.PredictedPower {
				t.Fatalf("trial %d: shared vs per-core quantize diverged: %+v vs %+v", trial, a, b)
			}
			for i := range a.CoreSteps {
				if a.CoreSteps[i] != b.CoreSteps[i] {
					t.Fatalf("trial %d: core %d step %d vs %d", trial, i, a.CoreSteps[i], b.CoreSteps[i])
				}
			}
		}
	}
}
