package core

import (
	"math"
	"testing"

	"repro/internal/dvfs"
)

func groupedInputs(n int, budgetFrac float64) *GroupedInputs {
	return &GroupedInputs{Inputs: *testInputs(n, budgetFrac)}
}

func TestGroupedValidate(t *testing.T) {
	gi := groupedInputs(8, 0.6)
	gi.Groups = []BudgetGroup{
		{Cores: []int{0, 1, 2, 3}, Budget: 15},
		{Cores: []int{4, 5, 6, 7}, Budget: 15},
	}
	if err := gi.Validate(); err != nil {
		t.Fatalf("valid groups rejected: %v", err)
	}
	cases := []struct {
		name   string
		groups []BudgetGroup
	}{
		{"empty group", []BudgetGroup{{Cores: nil, Budget: 5}}},
		{"zero budget", []BudgetGroup{{Cores: []int{0}, Budget: 0}}},
		{"out of range", []BudgetGroup{{Cores: []int{99}, Budget: 5}}},
		{"negative core", []BudgetGroup{{Cores: []int{-1}, Budget: 5}}},
		{"overlap", []BudgetGroup{{Cores: []int{0, 1}, Budget: 5}, {Cores: []int{1, 2}, Budget: 5}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			gi := groupedInputs(8, 0.6)
			gi.Groups = c.groups
			if err := gi.Validate(); err == nil {
				t.Error("bad groups accepted")
			}
		})
	}
}

func TestGroupedNoGroupsMatchesUngrouped(t *testing.T) {
	gi := groupedInputs(16, 0.6)
	grouped, err := gi.Solve()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := gi.Inputs.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(grouped.D-plain.D) > 1e-12 {
		t.Errorf("no-group solve D=%g differs from plain %g", grouped.D, plain.D)
	}
}

func TestGroupedSlackGroupsDontBind(t *testing.T) {
	// Enormous group budgets: the solution must match the global-only one.
	gi := groupedInputs(8, 0.6)
	gi.Groups = []BudgetGroup{
		{Cores: []int{0, 1, 2, 3}, Budget: 1e6},
		{Cores: []int{4, 5, 6, 7}, Budget: 1e6},
	}
	grouped, err := gi.Solve()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := gi.Inputs.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(grouped.D-plain.D)/plain.D > 1e-9 {
		t.Errorf("slack groups changed D: %g vs %g", grouped.D, plain.D)
	}
}

func TestGroupedTightGroupBinds(t *testing.T) {
	// Give the first processor a budget well below its share: D must
	// drop below the global-only solution and the group cap must hold.
	gi := groupedInputs(8, 0.8)
	tight := 8.0 // watts for 4 cores that would like ~4.5 W each
	gi.Groups = []BudgetGroup{{Cores: []int{0, 1, 2, 3}, Budget: tight}}
	grouped, err := gi.Solve()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := gi.Inputs.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if grouped.D >= plain.D {
		t.Errorf("tight group did not reduce D: %g vs %g", grouped.D, plain.D)
	}
	// Group power at the solution respects the group budget.
	var gp float64
	for _, i := range []int{0, 1, 2, 3} {
		gp += gi.Power.Cores[i].At(gi.ZBar[i] / grouped.Z[i])
	}
	if gp > tight*(1+1e-6) {
		t.Errorf("group draws %g W over its %g W budget", gp, tight)
	}
	// Global power now has slack (the group constraint binds instead).
	if grouped.PredictedPower > gi.Budget*(1+1e-9) {
		t.Errorf("global budget violated: %g > %g", grouped.PredictedPower, gi.Budget)
	}
}

func TestGroupedInfeasibleGroup(t *testing.T) {
	gi := groupedInputs(8, 0.8)
	gi.Groups = []BudgetGroup{{Cores: []int{0, 1}, Budget: 0.1}} // below static
	res, err := gi.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Error("infeasible group budget reported feasible")
	}
}

func TestGroupedFairnessPreserved(t *testing.T) {
	// Even with a binding group, all cores still share one D bound: cores
	// outside the tight group must not run ahead of the common ratio.
	gi := groupedInputs(8, 0.8)
	gi.Groups = []BudgetGroup{{Cores: []int{0, 1, 2, 3}, Budget: 9}}
	res, err := gi.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for i, z := range res.Z {
		rMin := gi.Response(i, gi.SbBar)
		r := gi.Response(i, res.Sb)
		d := (gi.ZBar[i] + gi.C[i] + rMin) / (z + gi.C[i] + r)
		if d < res.D-1e-6 {
			t.Errorf("core %d ratio %g below D=%g", i, d, res.D)
		}
	}
}

func TestGroupedQuantize(t *testing.T) {
	gi := groupedInputs(8, 0.7)
	gi.Groups = []BudgetGroup{{Cores: []int{0, 1, 2, 3}, Budget: 10}}
	res, err := gi.Solve()
	if err != nil {
		t.Fatal(err)
	}
	a := gi.Quantize(res, dvfs.DefaultCoreLadder(), dvfs.DefaultMemLadder(), true)
	if len(a.CoreSteps) != 8 {
		t.Fatalf("steps: %v", a.CoreSteps)
	}
	if a.PredictedPower > gi.Budget+1e-9 {
		t.Errorf("guarded quantization over global budget: %g > %g", a.PredictedPower, gi.Budget)
	}
}
