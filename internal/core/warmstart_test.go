package core

import (
	"math/rand"
	"testing"
)

// sameResult compares everything a caller can observe except Evals,
// which is the only field the warm start is allowed to change.
func sameResult(a, b Result) bool {
	if a.D != b.D || a.Sb != b.Sb || a.SbIndex != b.SbIndex ||
		a.PredictedPower != b.PredictedPower || a.Feasible != b.Feasible ||
		len(a.Z) != len(b.Z) {
		return false
	}
	for i := range a.Z {
		if a.Z[i] != b.Z[i] {
			return false
		}
	}
	return true
}

// The warm-start contract: a persistent Solver fed an arbitrary epoch
// sequence — drifting budgets, per-app profile changes, heterogeneous
// dilation bounds appearing and vanishing, and shape changes in both N
// and M — returns bit-identical Results to a cold Solver on every call.
func TestWarmStartMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var warm Solver
	n := 16
	for epoch := 0; epoch < 200; epoch++ {
		// Shape changes: core count at 60/120, candidate count on a
		// 7-epoch cadence. Both must invalidate the warm hint.
		switch epoch {
		case 60:
			n = 8
		case 120:
			n = 16
		}
		in := testInputs(n, 0.6)
		if epoch%7 == 3 {
			in.SbCandidates = in.SbCandidates[:len(in.SbCandidates)-2]
		}
		if epoch >= 90 && epoch < 150 {
			// Heterogeneous ladders: per-core dilation bounds.
			ratios := make([]float64, n)
			for i := range ratios {
				ratios[i] = 2 + float64(i%3)
			}
			in.MaxZRatios = ratios
		}
		// Steady-state drift: the budget moves and one app's profile
		// changes — exactly the case the warm path targets.
		in.Budget = (0.4 + 0.55*rng.Float64()) * in.Power.Peak()
		in.ZBar[rng.Intn(n)] *= 0.8 + 0.4*rng.Float64()

		var cold Solver
		want, err := cold.Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		var got Result
		if epoch%13 == 5 {
			// Exhaustive scans must hand a valid hint to later Solves.
			got, err = warm.SolveExhaustive(in)
			wantExh, exhErr := in.SolveExhaustive()
			if exhErr != nil {
				t.Fatal(exhErr)
			}
			want = wantExh
		} else {
			got, err = warm.Solve(in)
		}
		if err != nil {
			t.Fatal(err)
		}
		if !sameResult(got, want) {
			t.Fatalf("epoch %d (n=%d, m=%d): warm result diverged from cold:\nwarm: %+v\ncold: %+v",
				epoch, n, len(in.SbCandidates), got, want)
		}
	}
}

// The warm start must actually engage: re-solving after a small budget
// move costs the winner plus its two neighbors, not a fresh bisection.
func TestWarmStartSkipsBisection(t *testing.T) {
	var s Solver
	in := testInputs(16, 0.6)
	first, err := s.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	in.Budget *= 1.01
	res, err := s.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals > 3 {
		t.Errorf("steady-state re-solve used %d evals, want ≤ 3 (warm start inactive?)", res.Evals)
	}
	if res.SbIndex != first.SbIndex {
		t.Logf("note: winner moved %d → %d under 1%% budget change", first.SbIndex, res.SbIndex)
	}
}

// The Solver's steady-state alloc ceiling: with scratch warm and the
// warm start engaged, a re-solve allocates only the Result's escaping
// Z slice.
func TestSolverSteadyStateAllocs(t *testing.T) {
	var s Solver
	in := testInputs(16, 0.6)
	if _, err := s.Solve(in); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, err := s.Solve(in); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 1 {
		t.Errorf("steady-state Solve allocates %.1f objects, want ≤ 1 (the Z slice)", avg)
	}
}
