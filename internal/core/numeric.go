package core

import (
	"fmt"
	"math"
)

// NumericOptions tune the reference interior-point solver.
type NumericOptions struct {
	// BarrierSteps is the number of outer barrier reductions.
	BarrierSteps int
	// InnerSteps bounds gradient-descent iterations per barrier value.
	InnerSteps int
	// Tol is the relative convergence tolerance on the objective.
	Tol float64
}

// DefaultNumericOptions match the accuracy used in the Table I
// comparison.
func DefaultNumericOptions() NumericOptions {
	return NumericOptions{BarrierSteps: 18, InnerSteps: 400, Tol: 1e-7}
}

// SolveNumeric solves the FastCap program with a log-barrier
// interior-point method over the *continuous* variables (z_1..z_N, s_b,
// u = 1/D) — the style of general-purpose numeric optimization the paper
// attributes to Bergamaschi et al. [20] and characterizes as "usually
// takes many steps to converge". It exists as an independent reference
// for Algorithm 1 (property tests check both land on the same objective)
// and as the measured "Numeric Opt" row of Table I.
//
// Formulation (convex): minimize u subject to
//
//	z_i + c_i + R_i(s_b) − u·T̄_i ≤ 0      (fairness, T̄_i = best turn-around)
//	Σ P_i(z̄_i/z_i)^α_i + P_m(s̄_b/s_b)^β + P_s − B ≤ 0
//	z̄_i ≤ z_i ≤ z̄_i·MaxZRatio,  s̄_b ≤ s_b ≤ s_b,max,  u ≥ 1
//
// The returned Result mirrors Solve's: D = 1/u and the final s_b is
// continuous (not snapped to a candidate); SbIndex is the nearest
// candidate.
func (in *Inputs) SolveNumeric(opt NumericOptions) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	if opt.BarrierSteps <= 0 || opt.InnerSteps <= 0 {
		opt = DefaultNumericOptions()
	}
	n := len(in.ZBar)
	sbMin := in.SbBar
	sbMax := in.SbCandidates[len(in.SbCandidates)-1]

	// R_i(s_b) is affine in s_b for Eq. 1 models; sample slope/intercept
	// per core so gradients are exact.
	rA := make([]float64, n) // intercept
	rB := make([]float64, n) // slope
	for i := 0; i < n; i++ {
		r0 := in.Response(i, sbMin)
		r1 := in.Response(i, sbMax)
		rB[i] = (r1 - r0) / (sbMax - sbMin)
		rA[i] = r0 - rB[i]*sbMin
	}
	tBar := make([]float64, n)
	for i := 0; i < n; i++ {
		tBar[i] = in.ZBar[i] + in.C[i] + rA[i] + rB[i]*sbMin
	}

	// Interior start near the minimum-power corner (which the
	// feasibility pre-check below guarantees is inside the budget), with
	// u loose enough that every fairness constraint has slack.
	z := make([]float64, n)
	for i := range z {
		z[i] = in.ZBar[i] * (1 + 0.98*(in.MaxZRatio-1))
	}
	sb := sbMin + 0.98*(sbMax-sbMin)
	u := 0.0
	for i := 0; i < n; i++ {
		ratio := (z[i] + in.C[i] + rA[i] + rB[i]*sb) / tBar[i]
		if ratio > u {
			u = ratio
		}
	}
	u *= 1.1

	power := func(z []float64, sb float64) float64 {
		p := in.Power.Ps + in.Power.Mem.At(sbMin/sb)
		for i := 0; i < n; i++ {
			p += in.Power.Cores[i].At(in.ZBar[i] / z[i])
		}
		return p
	}
	// Feasibility pre-check: minimum power exceeding the budget means the
	// program is infeasible; report like Solve does.
	zFloor := make([]float64, n)
	for i := range zFloor {
		zFloor[i] = in.ZBar[i] * in.MaxZRatio
	}
	if power(zFloor, sbMax) > in.Budget {
		res, err := in.Solve()
		if err != nil {
			return Result{}, err
		}
		return res, nil // Solve's best-effort floor assignment
	}

	// Barrier value and gradient. Returns +Inf outside the domain.
	eval := func(z []float64, sb, u, mu float64, grad []float64) float64 {
		for i := range grad {
			grad[i] = 0
		}
		val := u
		grad[n+1] = 1 // d/du of the objective
		addLog := func(slack float64, idx []int, dSlack []float64) bool {
			if slack <= 0 {
				return false
			}
			val -= mu * math.Log(slack)
			for k, id := range idx {
				grad[id] -= mu / slack * dSlack[k]
			}
			return true
		}
		// Fairness constraints: slack_i = u·T̄_i − (z_i + c_i + R_i(sb)).
		for i := 0; i < n; i++ {
			slack := u*tBar[i] - (z[i] + in.C[i] + rA[i] + rB[i]*sb)
			if !addLog(slack, []int{i, n, n + 1}, []float64{-1, -rB[i], tBar[i]}) {
				return math.Inf(1)
			}
		}
		// Power constraint: slack = B − power.
		pw := power(z, sb)
		slack := in.Budget - pw
		if slack <= 0 {
			return math.Inf(1)
		}
		val -= mu * math.Log(slack)
		for i := 0; i < n; i++ {
			// d power/d z_i = −α_i·P_i·(z̄/z)^α / z
			x := in.ZBar[i] / z[i]
			dp := -in.Power.Cores[i].Exp * in.Power.Cores[i].Scale * math.Pow(x, in.Power.Cores[i].Exp) / z[i]
			grad[i] -= mu / slack * (-dp)
		}
		xm := sbMin / sb
		dpm := -in.Power.Mem.Exp * in.Power.Mem.Scale * math.Pow(xm, in.Power.Mem.Exp) / sb
		grad[n] -= mu / slack * (-dpm)
		// Box constraints.
		for i := 0; i < n; i++ {
			if !addLog(z[i]-in.ZBar[i], []int{i}, []float64{1}) {
				return math.Inf(1)
			}
			if !addLog(in.ZBar[i]*in.MaxZRatio-z[i], []int{i}, []float64{-1}) {
				return math.Inf(1)
			}
		}
		if !addLog(sb-sbMin, []int{n}, []float64{1}) {
			return math.Inf(1)
		}
		if !addLog(sbMax-sb, []int{n}, []float64{-1}) {
			return math.Inf(1)
		}
		if !addLog(u-1/in.MaxZRatio/4, []int{n + 1}, []float64{1}) {
			return math.Inf(1)
		}
		return val
	}

	// Diagonal preconditioning: think times are O(10²–10³ ns) while u is
	// O(1), so raw gradient descent is hopelessly ill-conditioned.
	// Descending in the normalized variables (z_i/z̄_i, s_b/s̄_b, u) is
	// equivalent to scaling each gradient component by the square of its
	// variable's natural magnitude.
	precond := make([]float64, n+2)
	for i := 0; i < n; i++ {
		precond[i] = in.ZBar[i] * in.ZBar[i]
	}
	precond[n] = sbMin * sbMin
	precond[n+1] = 1

	grad := make([]float64, n+2)
	scratch := make([]float64, n+2)
	trial := make([]float64, n)
	mu := 1.0
	for outer := 0; outer < opt.BarrierSteps; outer++ {
		for inner := 0; inner < opt.InnerSteps; inner++ {
			val := eval(z, sb, u, mu, grad)
			if math.IsInf(val, 1) {
				return Result{}, fmt.Errorf("fastcap: numeric solver left the domain")
			}
			norm := 0.0
			for i, g := range grad {
				norm += g * g * precond[i]
			}
			norm = math.Sqrt(norm)
			if norm < 1e-12 {
				break
			}
			// Backtracking line search along the preconditioned direction.
			step := 1.0 / (1 + norm)
			improved := false
			for bt := 0; bt < 50; bt++ {
				for i := 0; i < n; i++ {
					trial[i] = z[i] - step*grad[i]*precond[i]
				}
				tsb := sb - step*grad[n]*precond[n]
				tu := u - step*grad[n+1]*precond[n+1]
				if v := eval(trial, tsb, tu, mu, scratch); v < val-1e-15 {
					copy(z, trial)
					sb, u = tsb, tu
					improved = true
					break
				}
				step /= 2
			}
			if !improved {
				break
			}
		}
		mu /= 2.5
	}

	d := 1 / u
	best := Result{
		D:              d,
		Z:              append([]float64(nil), z...),
		Sb:             sb,
		SbIndex:        nearestIndex(in.SbCandidates, sb),
		PredictedPower: power(z, sb),
		Feasible:       true,
	}
	return best, nil
}

// nearestIndex returns the index of the candidate closest to v.
func nearestIndex(cands []float64, v float64) int {
	best, bd := 0, math.Inf(1)
	for i, c := range cands {
		if d := math.Abs(c - v); d < bd {
			best, bd = i, d
		}
	}
	return best
}
