package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/qmodel"
)

// testInputs builds a representative 16-core scenario: a spread of
// CPU-bound (long think time) and memory-bound (short think time) cores
// against one memory controller, mirroring the paper's default setup.
func testInputs(n int, budgetFrac float64) *Inputs {
	stats := qmodel.MemStats{Q: 2.0, U: 1.5, Sm: 30}
	cores := make([]power.Model, n)
	zbar := make([]float64, n)
	c := make([]float64, n)
	for i := 0; i < n; i++ {
		cores[i] = power.Model{Scale: 4.0, Exp: 2.5, Static: 0.5}
		if i%2 == 0 {
			zbar[i] = 2000 // CPU-bound: long think time
		} else {
			zbar[i] = 120 // memory-bound: short think time
		}
		c[i] = 7.5
	}
	sys := power.System{
		Cores: cores,
		Mem:   power.Model{Scale: 26, Exp: 1.0, Static: 10},
		Ps:    12,
	}
	memL := dvfs.DefaultMemLadder()
	const sbBar = 5.0
	in := &Inputs{
		ZBar:         zbar,
		C:            c,
		Power:        sys,
		Response:     func(_ int, sb float64) float64 { return stats.Response(sb) },
		SbBar:        sbBar,
		SbCandidates: SbCandidatesFromLadder(sbBar, memL),
		Budget:       budgetFrac * sys.Peak(),
		MaxZRatio:    dvfs.DefaultCoreLadder().StepRange(),
	}
	return in
}

func TestValidate(t *testing.T) {
	in := testInputs(4, 0.6)
	if err := in.Validate(); err != nil {
		t.Fatalf("valid inputs rejected: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Inputs)
	}{
		{"no cores", func(i *Inputs) { i.ZBar = nil }},
		{"C length", func(i *Inputs) { i.C = i.C[:1] }},
		{"models length", func(i *Inputs) { i.Power.Cores = i.Power.Cores[:2] }},
		{"bad zbar", func(i *Inputs) { i.ZBar[0] = 0 }},
		{"negative cache", func(i *Inputs) { i.C[0] = -1 }},
		{"bad sbbar", func(i *Inputs) { i.SbBar = 0 }},
		{"no candidates", func(i *Inputs) { i.SbCandidates = nil }},
		{"candidate below sbbar", func(i *Inputs) { i.SbCandidates[0] = i.SbBar / 2 }},
		{"non-ascending candidates", func(i *Inputs) { i.SbCandidates[1] = i.SbCandidates[0] }},
		{"bad ratio", func(i *Inputs) { i.MaxZRatio = 0.5 }},
		{"bad budget", func(i *Inputs) { i.Budget = 0 }},
		{"nil response", func(i *Inputs) { i.Response = nil }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			in := testInputs(4, 0.6)
			m.mut(in)
			if err := in.Validate(); err == nil {
				t.Error("mutation accepted")
			}
		})
	}
}

func TestSbCandidatesFromLadder(t *testing.T) {
	memL := dvfs.DefaultMemLadder()
	sb := SbCandidatesFromLadder(5.0, memL)
	if len(sb) != memL.Len() {
		t.Fatalf("got %d candidates, want %d", len(sb), memL.Len())
	}
	if math.Abs(sb[0]-5.0) > 1e-9 {
		t.Errorf("fastest candidate = %g, want 5 (SbBar)", sb[0])
	}
	want := 5.0 * 0.8 / 0.2 // slowest: 200 MHz vs 800 MHz → 4×
	if math.Abs(sb[len(sb)-1]-want) > 1e-9 {
		t.Errorf("slowest candidate = %g, want %g", sb[len(sb)-1], want)
	}
	for i := 1; i < len(sb); i++ {
		if sb[i] <= sb[i-1] {
			t.Fatalf("candidates not ascending at %d", i)
		}
	}
}

// Theorem 1: at an interior optimum the budget constraint is an equality.
func TestTheorem1BudgetEquality(t *testing.T) {
	in := testInputs(16, 0.6)
	res, err := in.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("expected feasible solution at 60% budget")
	}
	if math.Abs(res.PredictedPower-in.Budget)/in.Budget > 1e-6 {
		t.Errorf("budget not tight: predicted %g W vs budget %g W", res.PredictedPower, in.Budget)
	}
}

// Theorem 1: each core's turn-around ratio equals 1/D (unless clamped).
func TestTheorem1PerCoreEquality(t *testing.T) {
	in := testInputs(16, 0.6)
	res, err := in.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for i, z := range res.Z {
		rMin := in.Response(i, in.SbBar)
		r := in.Response(i, res.Sb)
		tMin := in.ZBar[i] + in.C[i] + rMin
		tGot := z + in.C[i] + r
		d := tMin / tGot
		clampedLow := math.Abs(z-in.ZBar[i]) < 1e-9
		clampedHigh := math.Abs(z-in.ZBar[i]*in.MaxZRatio) < 1e-9
		if !clampedLow && !clampedHigh && math.Abs(d-res.D)/res.D > 1e-6 {
			t.Errorf("core %d ratio %g differs from D %g", i, d, res.D)
		}
		// The constraint itself must hold for every core regardless.
		if d < res.D-1e-6 {
			t.Errorf("core %d violates the fairness constraint: %g < D=%g", i, d, res.D)
		}
	}
}

func TestGenerousBudgetRunsMax(t *testing.T) {
	in := testInputs(8, 1.0)
	res, err := in.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.D-1.0) > 1e-9 {
		t.Errorf("D = %g, want 1.0 under a 100%% budget", res.D)
	}
	for i, z := range res.Z {
		if math.Abs(z-in.ZBar[i]) > 1e-9 {
			t.Errorf("core %d z = %g, want z̄ = %g", i, z, in.ZBar[i])
		}
	}
	if res.SbIndex != 0 {
		t.Errorf("memory not at max frequency: index %d", res.SbIndex)
	}
}

func TestInfeasibleBudget(t *testing.T) {
	in := testInputs(8, 0.6)
	// Budget below the static floor: nothing can satisfy it.
	floor := in.Power.Ps + in.Power.Mem.Static
	for _, m := range in.Power.Cores {
		floor += m.Static
	}
	in.Budget = floor * 0.5
	res, err := in.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Error("impossible budget reported feasible")
	}
	// Best effort: every core pinned to minimum frequency.
	for i, z := range res.Z {
		if math.Abs(z-in.ZBar[i]*in.MaxZRatio) > 1e-6 {
			t.Errorf("core %d not at minimum frequency under infeasible budget", i)
		}
	}
}

func TestBinaryMatchesExhaustive(t *testing.T) {
	for _, frac := range []float64{0.5, 0.6, 0.7, 0.8, 0.9} {
		in := testInputs(16, frac)
		bin, err := in.Solve()
		if err != nil {
			t.Fatal(err)
		}
		exh, err := in.SolveExhaustive()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(bin.D-exh.D)/exh.D > 1e-9 {
			t.Errorf("budget %g: binary D=%g != exhaustive D=%g (idx %d vs %d)",
				frac, bin.D, exh.D, bin.SbIndex, exh.SbIndex)
		}
	}
}

func TestBinarySearchIsLogM(t *testing.T) {
	in := testInputs(16, 0.6)
	res, err := in.Solve()
	if err != nil {
		t.Fatal(err)
	}
	m := len(in.SbCandidates)
	// Each halving costs ≤2 fresh probes plus the ≤3-wide final scan.
	maxEvals := 2*int(math.Ceil(math.Log2(float64(m)))) + 3
	if res.Evals > maxEvals {
		t.Errorf("binary search used %d evals for M=%d, want ≤ %d", res.Evals, m, maxEvals)
	}
	exh, _ := in.SolveExhaustive()
	if exh.Evals != m {
		t.Errorf("exhaustive evals = %d, want %d", exh.Evals, m)
	}
}

func TestMonotoneInBudget(t *testing.T) {
	prev := 0.0
	for _, frac := range []float64{0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		in := testInputs(16, frac)
		res, err := in.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if res.D < prev-1e-9 {
			t.Errorf("D decreased when budget rose to %g: %g < %g", frac, res.D, prev)
		}
		prev = res.D
	}
}

// Memory-bound mixes should pick a high memory frequency; CPU-bound mixes
// a low one (paper Figs. 7–8 narrative).
func TestWorkloadSteersMemoryFrequency(t *testing.T) {
	mk := func(zbar float64) *Inputs {
		in := testInputs(16, 0.6)
		for i := range in.ZBar {
			in.ZBar[i] = zbar
		}
		return in
	}
	memBound, err := mk(100).Solve() // short think → memory pressure
	if err != nil {
		t.Fatal(err)
	}
	cpuBound, err := mk(5000).Solve() // long think → CPU pressure
	if err != nil {
		t.Fatal(err)
	}
	if memBound.SbIndex >= cpuBound.SbIndex {
		t.Errorf("memory-bound chose sb index %d, CPU-bound %d; want mem-bound at faster memory",
			memBound.SbIndex, cpuBound.SbIndex)
	}
}

// Fairness: a heterogeneous mix must not create outliers — all unclamped
// cores share the same performance ratio even with very different power
// curves.
func TestFairnessAcrossHeterogeneousCores(t *testing.T) {
	in := testInputs(8, 0.55)
	for i := range in.Power.Cores {
		in.Power.Cores[i].Scale = 2.0 + float64(i)*0.7 // widely varying power
		in.Power.Cores[i].Exp = 2.0 + 0.1*float64(i%5)
	}
	res, err := in.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("expected feasible")
	}
	var ratios []float64
	for i, z := range res.Z {
		if math.Abs(z-in.ZBar[i]) < 1e-9 || math.Abs(z-in.ZBar[i]*in.MaxZRatio) < 1e-9 {
			continue // clamped cores may exceed D
		}
		rMin := in.Response(i, in.SbBar)
		r := in.Response(i, res.Sb)
		ratios = append(ratios, (in.ZBar[i]+in.C[i]+rMin)/(z+in.C[i]+r))
	}
	if len(ratios) < 2 {
		t.Skip("too few unclamped cores to compare")
	}
	for _, d := range ratios {
		if math.Abs(d-ratios[0])/ratios[0] > 1e-6 {
			t.Errorf("unequal performance ratios: %v", ratios)
			break
		}
	}
}

func TestQuantizeNearest(t *testing.T) {
	in := testInputs(8, 0.6)
	res, err := in.Solve()
	if err != nil {
		t.Fatal(err)
	}
	coreL, memL := dvfs.DefaultCoreLadder(), dvfs.DefaultMemLadder()
	a := in.Quantize(res, coreL, memL, false)
	if len(a.CoreSteps) != 8 {
		t.Fatalf("got %d steps", len(a.CoreSteps))
	}
	for i, s := range a.CoreSteps {
		if s < 0 || s >= coreL.Len() {
			t.Errorf("core %d step %d out of range", i, s)
		}
		// Nearest rounding: the chosen step's normalized frequency is the
		// closest to the continuous solution.
		want := coreL.NearestNorm(in.ZBar[i] / res.Z[i])
		if s != want {
			t.Errorf("core %d step = %d, want nearest %d", i, s, want)
		}
	}
	if a.MemStep < 0 || a.MemStep >= memL.Len() {
		t.Errorf("mem step %d out of range", a.MemStep)
	}
}

func TestQuantizeGuardEnforcesBudget(t *testing.T) {
	coreL, memL := dvfs.DefaultCoreLadder(), dvfs.DefaultMemLadder()
	for _, frac := range []float64{0.45, 0.55, 0.65, 0.75} {
		in := testInputs(16, frac)
		res, err := in.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible {
			continue
		}
		a := in.Quantize(res, coreL, memL, true)
		if a.PredictedPower > in.Budget+1e-9 {
			t.Errorf("budget %.0f%%: guarded quantization predicts %g W > budget %g W",
				frac*100, a.PredictedPower, in.Budget)
		}
	}
}

func TestQuantizeGuardFloorsOut(t *testing.T) {
	// A budget below the all-minimum-frequency power: the guard must stop
	// at the floor (all steps zero) rather than loop forever.
	in := testInputs(4, 0.6)
	in.Budget = 1 // 1 W: impossible
	res, _ := in.Solve()
	coreL, memL := dvfs.DefaultCoreLadder(), dvfs.DefaultMemLadder()
	a := in.Quantize(res, coreL, memL, true)
	for i, s := range a.CoreSteps {
		if s != 0 {
			t.Errorf("core %d step = %d, want 0 at impossible budget", i, s)
		}
	}
	if a.MemStep != 0 {
		t.Errorf("mem step = %d, want 0", a.MemStep)
	}
}

// Property: across random scenarios the binary search never loses more
// than a whisker to the exhaustive scan, the solution stays within
// bounds, and the fairness constraint holds for every core.
func TestSolveProperties(t *testing.T) {
	coreLadder := dvfs.DefaultCoreLadder()
	memL := dvfs.DefaultMemLadder()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		cores := make([]power.Model, n)
		zbar := make([]float64, n)
		c := make([]float64, n)
		for i := 0; i < n; i++ {
			cores[i] = power.Model{
				Scale:  1 + 5*rng.Float64(),
				Exp:    1.8 + 1.4*rng.Float64(),
				Static: 0.2 + 0.6*rng.Float64(),
			}
			zbar[i] = 50 + 5000*rng.Float64()
			c[i] = 2 + 10*rng.Float64()
		}
		stats := qmodel.MemStats{
			Q:  1 + 4*rng.Float64(),
			U:  1 + 3*rng.Float64(),
			Sm: 15 + 30*rng.Float64(),
		}
		sys := power.System{
			Cores: cores,
			Mem:   power.Model{Scale: 10 + 30*rng.Float64(), Exp: 0.8 + 0.4*rng.Float64(), Static: 5 + 10*rng.Float64()},
			Ps:    5 + 15*rng.Float64(),
		}
		const sbBar = 5.0
		in := &Inputs{
			ZBar:         zbar,
			C:            c,
			Power:        sys,
			Response:     func(_ int, sb float64) float64 { return stats.Response(sb) },
			SbBar:        sbBar,
			SbCandidates: SbCandidatesFromLadder(sbBar, memL),
			Budget:       (0.4 + 0.6*rng.Float64()) * sys.Peak(),
			MaxZRatio:    coreLadder.StepRange(),
		}
		bin, err := in.Solve()
		if err != nil {
			return false
		}
		exh, err := in.SolveExhaustive()
		if err != nil {
			return false
		}
		// Binary search must match the global optimum (convexity ⇒ unimodal).
		if exh.D-bin.D > 1e-7*exh.D {
			return false
		}
		if bin.D <= 0 || bin.D > 1+1e-9 {
			return false
		}
		// Fairness constraint for every core.
		for i, z := range bin.Z {
			if z < in.ZBar[i]-1e-9 || z > in.ZBar[i]*in.MaxZRatio+1e-6 {
				return false
			}
			rMin := in.Response(i, in.SbBar)
			r := in.Response(i, bin.Sb)
			d := (in.ZBar[i] + in.C[i] + rMin) / (z + in.C[i] + r)
			if d < bin.D-1e-6 {
				return false
			}
		}
		// Feasible solutions respect the budget (within bisection slack).
		if bin.Feasible && bin.PredictedPower > in.Budget*(1+1e-6) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The think-time clamp function is the optimizer's hot inner loop; pin
// its behaviour down directly.
func TestZOfD(t *testing.T) {
	const zbar, c, rMin, r, ratio = 100.0, 10.0, 40.0, 60.0, 2.0
	// D = 1 with r > rMin would need z < zbar → clamps to zbar.
	if got := zOfD(zbar, c, rMin, r, 1.0, ratio); got != zbar {
		t.Errorf("zOfD at D=1 = %g, want clamp to %g", got, zbar)
	}
	// Tiny D → enormous z → clamps at zbar·ratio.
	if got := zOfD(zbar, c, rMin, r, 0.01, ratio); got != zbar*ratio {
		t.Errorf("zOfD at D=0.01 = %g, want clamp to %g", got, zbar*ratio)
	}
	// Interior: Eq. 8 exactly (D chosen so z lands in (z̄, z̄·ratio)).
	d := 0.7
	want := (zbar+c+rMin)/d - c - r
	if got := zOfD(zbar, c, rMin, r, d, ratio); math.Abs(got-want) > 1e-12 {
		t.Errorf("zOfD interior = %g, want %g", got, want)
	}
}

func TestMultiControllerResponses(t *testing.T) {
	// Two controllers with very different loads; cores pinned to each.
	statsCold := qmodel.MemStats{Q: 1.1, U: 1.0, Sm: 20}
	statsHot := qmodel.MemStats{Q: 4.0, U: 3.0, Sm: 40}
	mc := &qmodel.Multi{
		Stats:  []qmodel.MemStats{statsCold, statsHot},
		Access: [][]float64{{1, 0}, {0, 1}, {0.5, 0.5}, {0.5, 0.5}},
	}
	in := testInputs(4, 0.6)
	in.Response = func(i int, sb float64) float64 { return mc.CoreResponse(i, sb) }
	res, err := in.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("expected feasible")
	}
	// All cores still satisfy the common fairness bound with their own R_i.
	for i, z := range res.Z {
		rMin := in.Response(i, in.SbBar)
		r := in.Response(i, res.Sb)
		d := (in.ZBar[i] + in.C[i] + rMin) / (z + in.C[i] + r)
		if d < res.D-1e-6 {
			t.Errorf("core %d violates fairness with multi-controller R", i)
		}
	}
}

func BenchmarkSolve16(b *testing.B)  { benchSolve(b, 16) }
func BenchmarkSolve32(b *testing.B)  { benchSolve(b, 32) }
func BenchmarkSolve64(b *testing.B)  { benchSolve(b, 64) }
func BenchmarkSolve256(b *testing.B) { benchSolve(b, 256) }

func benchSolve(b *testing.B, n int) {
	in := testInputs(n, 0.6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
