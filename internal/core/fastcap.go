// Package core implements the FastCap optimizer (paper §III-B): the
// convex program of Eqs. 4–7 solved online in O(N·log M) by Algorithm 1.
//
// For a fixed memory bus transfer time s_b, Theorem 1 makes both
// constraints tight, so every core's think time follows from Eq. 8,
//
//	z_i = (z̄_i + c_i + R_i(s̄_b))/D − c_i − R_i(s_b),
//
// and the budget equality determines the single unknown D, found here by
// bisection on the monotone power-versus-D curve. A binary search over
// the M candidate bus times (D is unimodal in s_b for the convex
// program) yields the full solution.
//
// Times are nanoseconds, powers are watts, frequencies appear only as
// normalized scaling factors.
package core

import (
	"fmt"
	"math"

	"repro/internal/dvfs"
	"repro/internal/power"
)

// ResponseFunc returns the mean memory response time (ns) experienced by
// a given core at bus transfer time sb. With a single controller the
// response is the same for every core (Eq. 1); with multiple controllers
// it is the access-weighted mixture (§IV-B).
type ResponseFunc func(core int, sb float64) float64

// Inputs carries everything Algorithm 1 consumes for one invocation.
// Slices indexed by core must all have the same length N.
type Inputs struct {
	// ZBar[i] is core i's minimum think time (ns) at maximum frequency,
	// estimated from counters via Eq. 9.
	ZBar []float64
	// C[i] is core i's average L2 cache time per memory access (ns); the
	// L2 sits in a fixed voltage domain and does not scale (§III-A).
	C []float64
	// Power holds the fitted per-core and memory power models and the
	// frequency-independent system power P_s.
	Power power.System
	// Response evaluates R_i(s_b). It must be nondecreasing in sb.
	Response ResponseFunc
	// SbBar is the minimum bus transfer time (ns) at maximum memory
	// frequency; SbCandidates are the M selectable transfer times in
	// ascending order (highest frequency first). SbCandidates[0] is
	// normally SbBar itself.
	SbBar        float64
	SbCandidates []float64
	// Budget is the full-system cap in watts: B · P̄.
	Budget float64
	// MaxZRatio bounds think-time dilation: z_i ≤ z̄_i·MaxZRatio, i.e.
	// f_max/f_min of the core ladder. Must be ≥ 1.
	MaxZRatio float64
}

// Validate reports the first structural problem with the inputs, or nil.
func (in *Inputs) Validate() error {
	n := len(in.ZBar)
	if n == 0 {
		return fmt.Errorf("fastcap: no cores")
	}
	if len(in.C) != n {
		return fmt.Errorf("fastcap: len(C)=%d, want %d", len(in.C), n)
	}
	if len(in.Power.Cores) != n {
		return fmt.Errorf("fastcap: %d core power models, want %d", len(in.Power.Cores), n)
	}
	for i := 0; i < n; i++ {
		if in.ZBar[i] <= 0 {
			return fmt.Errorf("fastcap: core %d has non-positive think time %g", i, in.ZBar[i])
		}
		if in.C[i] < 0 {
			return fmt.Errorf("fastcap: core %d has negative cache time", i)
		}
	}
	if in.SbBar <= 0 {
		return fmt.Errorf("fastcap: non-positive SbBar")
	}
	if len(in.SbCandidates) == 0 {
		return fmt.Errorf("fastcap: no bus time candidates")
	}
	for i, sb := range in.SbCandidates {
		if sb < in.SbBar-1e-9 {
			return fmt.Errorf("fastcap: candidate %d (%g) below SbBar %g", i, sb, in.SbBar)
		}
		if i > 0 && sb <= in.SbCandidates[i-1] {
			return fmt.Errorf("fastcap: candidates not strictly ascending at %d", i)
		}
	}
	if in.MaxZRatio < 1 {
		return fmt.Errorf("fastcap: MaxZRatio %g < 1", in.MaxZRatio)
	}
	if in.Budget <= 0 {
		return fmt.Errorf("fastcap: non-positive budget")
	}
	if in.Response == nil {
		return fmt.Errorf("fastcap: nil Response")
	}
	return nil
}

// Result is the continuous solution of the FastCap program, before
// quantization onto the hardware DVFS ladders.
type Result struct {
	// D is the achieved objective: every application runs at fraction D
	// of its best-case performance (1/D is the common slowdown bound).
	D float64
	// Z[i] is core i's selected think time (ns); the normalized core
	// frequency is ZBar[i]/Z[i].
	Z []float64
	// Sb is the selected bus transfer time and SbIndex its position in
	// SbCandidates; the normalized memory frequency is SbBar/Sb.
	Sb      float64
	SbIndex int
	// PredictedPower is the model-predicted full-system power at the
	// solution; by Theorem 1 it equals the budget whenever the budget
	// binds and the solution is interior.
	PredictedPower float64
	// Feasible is false when even the lowest frequencies exceed the
	// budget; the result then carries the minimum-power configuration.
	Feasible bool
	// Evals counts inner D-solves performed, exposed so complexity tests
	// can verify the O(log M) outer search.
	Evals int
}

// dSolution is the inner solve for one candidate sb.
type dSolution struct {
	d        float64
	z        []float64
	pw       float64
	feasible bool
}

const (
	dRootIters = 48    // max root-find steps for the budget equality
	budgetTol  = 1e-9  // watts tolerance on budget equality
	dFloor     = 1e-12 // numeric floor for the objective
)

// zOfD evaluates Eq. 8 with clamping to the realizable think-time range.
func zOfD(zBar, c, rMin, r, d, maxZRatio float64) float64 {
	z := (zBar+c+rMin)/d - c - r
	if z < zBar {
		return zBar
	}
	if zMax := zBar * maxZRatio; z > zMax {
		return zMax
	}
	return z
}

// solveForSb computes the optimal D and think times for one fixed sb via
// bisection on the budget equality (Theorem 1). It runs in O(N) per
// bisection step.
func (in *Inputs) solveForSb(sbIdx int) dSolution {
	sb := in.SbCandidates[sbIdx]
	n := len(in.ZBar)
	r := make([]float64, n)
	rMin := make([]float64, n)
	for i := 0; i < n; i++ {
		r[i] = in.Response(i, sb)
		rMin[i] = in.Response(i, in.SbBar)
	}
	xm := in.SbBar / sb

	// Allocation-free power evaluation: power is all the root finder needs;
	// think times are materialized once at the end.
	powerOnly := func(d float64) float64 {
		p := in.Power.Ps + in.Power.Mem.At(xm)
		for i := 0; i < n; i++ {
			z := zOfD(in.ZBar[i], in.C[i], rMin[i], r[i], d, in.MaxZRatio)
			p += in.Power.Cores[i].At(in.ZBar[i] / z)
		}
		return p
	}
	thinkTimes := func(d float64) []float64 {
		z := make([]float64, n)
		for i := 0; i < n; i++ {
			z[i] = zOfD(in.ZBar[i], in.C[i], rMin[i], r[i], d, in.MaxZRatio)
		}
		return z
	}

	// dHi: the largest meaningful D — every core at maximum frequency
	// (z_i = z̄_i). dLo: every core clamped at minimum frequency.
	dHi, dLo := math.Inf(1), math.Inf(1)
	for i := 0; i < n; i++ {
		tMin := in.ZBar[i] + in.C[i] + rMin[i]
		dHi = math.Min(dHi, tMin/(in.ZBar[i]+in.C[i]+r[i]))
		dLo = math.Min(dLo, tMin/(in.ZBar[i]*in.MaxZRatio+in.C[i]+r[i]))
	}
	if dLo < dFloor {
		dLo = dFloor
	}

	if pHi := powerOnly(dHi); pHi <= in.Budget+budgetTol {
		// Budget does not bind: run everything at maximum frequency.
		return dSolution{d: dHi, z: thinkTimes(dHi), pw: pHi, feasible: true}
	}
	pLo := powerOnly(dLo)
	if pLo > in.Budget+budgetTol {
		// Even minimum frequencies blow the budget at this sb.
		return dSolution{d: dLo, z: thinkTimes(dLo), pw: pLo, feasible: false}
	}

	// Solve power(D) = Budget on [dLo, dHi]. power is monotone
	// nondecreasing in D (possibly flat where clamps bind), so a
	// bracketed secant (Illinois) step alternated with bisection
	// converges superlinearly while never leaving the bracket.
	lo, hi := dLo, dHi
	gLo := pLo - in.Budget // ≤ 0
	gHi := powerOnly(dHi) - in.Budget
	for it := 0; it < dRootIters && hi-lo > 1e-13*hi; it++ {
		var mid float64
		if it%2 == 0 && gHi-gLo > budgetTol {
			mid = lo - gLo*(hi-lo)/(gHi-gLo) // secant through the bracket
			if mid <= lo || mid >= hi {
				mid = 0.5 * (lo + hi)
			}
		} else {
			mid = 0.5 * (lo + hi)
		}
		g := powerOnly(mid) - in.Budget
		if g > 0 {
			hi, gHi = mid, g
		} else {
			lo, gLo = mid, g
			if g > -budgetTol {
				break // budget equality hit from below
			}
		}
	}
	return dSolution{d: lo, z: thinkTimes(lo), pw: gLo + in.Budget, feasible: true}
}

// Solve runs Algorithm 1: binary search over the M bus-time candidates,
// each probe solving D in O(N). The search key is the full betterThan
// order rather than D alone: infeasible candidates (memory frequency so
// high that even minimum core frequencies bust the budget) form a prefix
// of the candidate array over which predicted power decreases, so the
// combined order stays unimodal over the index. The deviation from the
// paper's literal pseudocode — comparing adjacent candidates and
// shrinking [l, r] rather than the three-way probe — is the standard
// unimodal-maximum bisection and avoids the non-progress corner case in
// the published listing; both perform O(log M) probes.
func (in *Inputs) Solve() (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	evals := 0
	memo := make(map[int]dSolution, len(in.SbCandidates))
	probe := func(i int) dSolution {
		if s, ok := memo[i]; ok {
			return s
		}
		s := in.solveForSb(i)
		memo[i] = s
		evals++
		return s
	}

	lo, hi := 0, len(in.SbCandidates)-1
	for hi-lo > 2 {
		m := (lo + hi) / 2
		if betterThan(probe(m+1), probe(m)) {
			lo = m + 1
		} else {
			hi = m
		}
	}
	best, bestIdx := probe(lo), lo
	for i := lo + 1; i <= hi; i++ {
		if s := probe(i); betterThan(s, best) {
			best, bestIdx = s, i
		}
	}
	return Result{
		D:              best.d,
		Z:              best.z,
		Sb:             in.SbCandidates[bestIdx],
		SbIndex:        bestIdx,
		PredictedPower: best.pw,
		Feasible:       best.feasible,
		Evals:          evals,
	}, nil
}

// SolveExhaustive scans all M candidates. It is the reference the binary
// search is validated against and the building block for the CPU-only
// policy (single candidate) and for policies that must probe every
// memory frequency.
func (in *Inputs) SolveExhaustive() (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	var best dSolution
	bestIdx := -1
	evals := 0
	for i := range in.SbCandidates {
		s := in.solveForSb(i)
		evals++
		if bestIdx < 0 || betterThan(s, best) {
			best, bestIdx = s, i
		}
	}
	return Result{
		D:              best.d,
		Z:              best.z,
		Sb:             in.SbCandidates[bestIdx],
		SbIndex:        bestIdx,
		PredictedPower: best.pw,
		Feasible:       best.feasible,
		Evals:          evals,
	}, nil
}

// betterThan orders candidate solutions: feasible beats infeasible; among
// infeasible, lower predicted power wins (closest budget violation);
// among feasible, larger D wins with ties broken toward lower power.
// Because infeasible candidates occupy a prefix of the (ascending)
// bus-time array over which minimum power strictly decreases, this order
// is unimodal in the candidate index, which is what Solve's bisection
// requires.
func betterThan(a, b dSolution) bool {
	if a.feasible != b.feasible {
		return a.feasible
	}
	if !a.feasible {
		return a.pw < b.pw
	}
	if a.d != b.d {
		return a.d > b.d
	}
	return a.pw < b.pw
}

// Assignment is the quantized outcome mapped onto hardware ladders.
type Assignment struct {
	CoreSteps []int // ladder step per core
	MemStep   int   // memory ladder step
	// PredictedPower re-evaluates the power models at the quantized
	// frequencies.
	PredictedPower float64
}

// Quantize maps a continuous Result onto the DVFS ladders, rounding each
// normalized frequency to the nearest step (paper §III-B: "the closest
// to z_i/z̄_i after normalization").
//
// When guard is true and nearest-step rounding lands the predicted power
// above the budget, cores are stepped down one ladder notch at a time —
// always the core currently closest to its best-case performance, which
// preserves FastCap's fairness ordering — until the model predicts the
// budget is met (memory is stepped down only after every core reaches
// its floor).
func (in *Inputs) Quantize(res Result, coreL, memL *dvfs.Ladder, guard bool) Assignment {
	n := len(res.Z)
	steps := make([]int, n)
	for i := 0; i < n; i++ {
		steps[i] = coreL.NearestNorm(in.ZBar[i] / res.Z[i])
	}
	memStep := memL.NearestNorm(in.SbBar / res.Sb)

	predict := func() float64 {
		p := in.Power.Ps + in.Power.Mem.At(memL.NormFreq(memStep))
		for i := 0; i < n; i++ {
			p += in.Power.Cores[i].At(coreL.NormFreq(steps[i]))
		}
		return p
	}
	pw := predict()
	if !guard || pw <= in.Budget {
		return Assignment{CoreSteps: steps, MemStep: memStep, PredictedPower: pw}
	}

	// Performance ratio of core i at its current step: D_i = T_min/T(step).
	ratio := func(i int) float64 {
		rMin := in.Response(i, in.SbBar)
		r := in.Response(i, in.SbCandidates[res.SbIndex])
		z := in.ZBar[i] * coreL.Max() / coreL.Freq(steps[i])
		return (in.ZBar[i] + in.C[i] + rMin) / (z + in.C[i] + r)
	}
	for pw > in.Budget {
		best, bestRatio := -1, -1.0
		for i := 0; i < n; i++ {
			if steps[i] == 0 {
				continue
			}
			if rr := ratio(i); rr > bestRatio {
				best, bestRatio = i, rr
			}
		}
		if best < 0 {
			if memStep > 0 {
				memStep--
				pw = predict()
				continue
			}
			break // everything at the floor; nothing more to shed
		}
		steps[best]--
		pw = predict()
	}
	return Assignment{CoreSteps: steps, MemStep: memStep, PredictedPower: pw}
}

// SbCandidatesFromLadder derives the M candidate bus transfer times from
// a memory ladder: sbBar·(f_max/f_m), returned ascending in time
// (descending in frequency) as Inputs.SbCandidates expects.
func SbCandidatesFromLadder(sbBar float64, memL *dvfs.Ladder) []float64 {
	m := memL.Len()
	out := make([]float64, m)
	for i := 0; i < m; i++ {
		out[i] = sbBar * memL.Max() / memL.Freq(m-1-i)
	}
	return out
}
