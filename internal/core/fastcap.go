// Package core implements the FastCap optimizer (paper §III-B): the
// convex program of Eqs. 4–7 solved online in O(N·log M) by Algorithm 1.
//
// For a fixed memory bus transfer time s_b, Theorem 1 makes both
// constraints tight, so every core's think time follows from Eq. 8,
//
//	z_i = (z̄_i + c_i + R_i(s̄_b))/D − c_i − R_i(s_b),
//
// and the budget equality determines the single unknown D, found here by
// bisection on the monotone power-versus-D curve. A binary search over
// the M candidate bus times (D is unimodal in s_b for the convex
// program) yields the full solution.
//
// Times are nanoseconds, powers are watts, frequencies appear only as
// normalized scaling factors.
package core

import (
	"fmt"
	"math"

	"repro/internal/dvfs"
	"repro/internal/power"
)

// ResponseFunc returns the mean memory response time (ns) experienced by
// a given core at bus transfer time sb. With a single controller the
// response is the same for every core (Eq. 1); with multiple controllers
// it is the access-weighted mixture (§IV-B).
type ResponseFunc func(core int, sb float64) float64

// Inputs carries everything Algorithm 1 consumes for one invocation.
// Slices indexed by core must all have the same length N.
type Inputs struct {
	// ZBar[i] is core i's minimum think time (ns) at maximum frequency,
	// estimated from counters via Eq. 9.
	ZBar []float64
	// C[i] is core i's average L2 cache time per memory access (ns); the
	// L2 sits in a fixed voltage domain and does not scale (§III-A).
	C []float64
	// Power holds the fitted per-core and memory power models and the
	// frequency-independent system power P_s.
	Power power.System
	// Response evaluates R_i(s_b). It must be nondecreasing in sb.
	Response ResponseFunc
	// SbBar is the minimum bus transfer time (ns) at maximum memory
	// frequency; SbCandidates are the M selectable transfer times in
	// ascending order (highest frequency first). SbCandidates[0] is
	// normally SbBar itself.
	SbBar        float64
	SbCandidates []float64
	// Budget is the full-system cap in watts: B · P̄.
	Budget float64
	// MaxZRatio bounds think-time dilation: z_i ≤ z̄_i·MaxZRatio, i.e.
	// f_max/f_min of the core ladder. Must be ≥ 1.
	MaxZRatio float64
	// MaxZRatios, when non-nil, gives each core its own dilation bound
	// (heterogeneous machines, where every core class has its own ladder
	// and hence its own f_max/f_min). len must equal len(ZBar) and every
	// entry must be ≥ 1; MaxZRatio is then ignored.
	MaxZRatios []float64
}

// maxZ returns core i's think-time dilation bound.
func (in *Inputs) maxZ(i int) float64 {
	if in.MaxZRatios != nil {
		return in.MaxZRatios[i]
	}
	return in.MaxZRatio
}

// Validate reports the first structural problem with the inputs, or nil.
func (in *Inputs) Validate() error {
	n := len(in.ZBar)
	if n == 0 {
		return fmt.Errorf("fastcap: no cores")
	}
	if len(in.C) != n {
		return fmt.Errorf("fastcap: len(C)=%d, want %d", len(in.C), n)
	}
	if len(in.Power.Cores) != n {
		return fmt.Errorf("fastcap: %d core power models, want %d", len(in.Power.Cores), n)
	}
	for i := 0; i < n; i++ {
		if in.ZBar[i] <= 0 {
			return fmt.Errorf("fastcap: core %d has non-positive think time %g", i, in.ZBar[i])
		}
		if in.C[i] < 0 {
			return fmt.Errorf("fastcap: core %d has negative cache time", i)
		}
	}
	if in.SbBar <= 0 {
		return fmt.Errorf("fastcap: non-positive SbBar")
	}
	if len(in.SbCandidates) == 0 {
		return fmt.Errorf("fastcap: no bus time candidates")
	}
	for i, sb := range in.SbCandidates {
		if sb < in.SbBar-1e-9 {
			return fmt.Errorf("fastcap: candidate %d (%g) below SbBar %g", i, sb, in.SbBar)
		}
		if i > 0 && sb <= in.SbCandidates[i-1] {
			return fmt.Errorf("fastcap: candidates not strictly ascending at %d", i)
		}
	}
	if in.MaxZRatios != nil {
		if len(in.MaxZRatios) != n {
			return fmt.Errorf("fastcap: len(MaxZRatios)=%d, want %d", len(in.MaxZRatios), n)
		}
		for i, r := range in.MaxZRatios {
			if math.IsNaN(r) || r < 1 {
				return fmt.Errorf("fastcap: core %d MaxZRatio %g < 1", i, r)
			}
		}
	} else if in.MaxZRatio < 1 {
		return fmt.Errorf("fastcap: MaxZRatio %g < 1", in.MaxZRatio)
	}
	if in.Budget <= 0 {
		return fmt.Errorf("fastcap: non-positive budget")
	}
	if in.Response == nil {
		return fmt.Errorf("fastcap: nil Response")
	}
	return nil
}

// Result is the continuous solution of the FastCap program, before
// quantization onto the hardware DVFS ladders.
type Result struct {
	// D is the achieved objective: every application runs at fraction D
	// of its best-case performance (1/D is the common slowdown bound).
	D float64
	// Z[i] is core i's selected think time (ns); the normalized core
	// frequency is ZBar[i]/Z[i].
	Z []float64
	// Sb is the selected bus transfer time and SbIndex its position in
	// SbCandidates; the normalized memory frequency is SbBar/Sb.
	Sb      float64
	SbIndex int
	// PredictedPower is the model-predicted full-system power at the
	// solution; by Theorem 1 it equals the budget whenever the budget
	// binds and the solution is interior.
	PredictedPower float64
	// Feasible is false when even the lowest frequencies exceed the
	// budget; the result then carries the minimum-power configuration.
	Feasible bool
	// Evals counts inner D-solves performed, exposed so complexity tests
	// can verify the O(log M) outer search.
	Evals int
}

// dSolution is the inner solve for one candidate sb. Think times are
// not materialized here — only the winning candidate's z vector is
// computed, once, when the outer search finishes.
type dSolution struct {
	d        float64
	pw       float64
	feasible bool
}

const (
	dRootIters = 48    // max root-find steps for the budget equality
	budgetTol  = 1e-9  // watts tolerance on budget equality
	dFloor     = 1e-12 // numeric floor for the objective
)

// zOfD evaluates Eq. 8 with clamping to the realizable think-time range.
func zOfD(zBar, c, rMin, r, d, maxZRatio float64) float64 {
	z := (zBar+c+rMin)/d - c - r
	if z < zBar {
		return zBar
	}
	if zMax := zBar * maxZRatio; z > zMax {
		return zMax
	}
	return z
}

// Solver carries reusable scratch for Solve/SolveExhaustive/Quantize so
// repeated invocations (one per epoch per policy) allocate only the
// result slices that escape to the caller. The zero value is ready to
// use; a Solver must not be used concurrently.
type Solver struct {
	r      []float64   // R_i at the candidate sb being probed
	rMin   []float64   // R_i at SbBar (fixed per Solve call)
	sols   []dSolution // per-candidate memo
	probed []bool
	num    []float64    // quantization guard: per-core T_min numerators
	rCur   []float64    // quantization guard: R_i at the solved sb
	heap   []guardEntry // quantization guard max-heap

	// Warm-start state: the winning candidate index of the previous
	// Solve/SolveExhaustive and the problem shape (N cores, M candidates)
	// it was solved under. A subsequent Solve with the same shape — the
	// steady-state case, where only the budget or the per-app profiles
	// moved — first probes warmIdx and its neighbors; if warmIdx still
	// strictly beats both, unimodality of the betterThan order over the
	// candidate index makes it the unique argmax and the bisection is
	// skipped entirely. Any shape change (warmN != N or warmM != M)
	// invalidates the hint and falls back to the cold path, as does a
	// failed neighbor test (the probes are memoized, so the cold
	// bisection reuses them). warmN == 0 marks "no previous solution".
	warmIdx int
	warmN   int
	warmM   int
}

// prepare sizes the scratch and evaluates the per-core minimum response
// times, which do not depend on the candidate.
func (s *Solver) prepare(in *Inputs) {
	n, m := len(in.ZBar), len(in.SbCandidates)
	s.r = growF(s.r, n)
	s.rMin = growF(s.rMin, n)
	for i := 0; i < n; i++ {
		s.rMin[i] = in.Response(i, in.SbBar)
	}
	if cap(s.sols) < m {
		s.sols = make([]dSolution, m)
		s.probed = make([]bool, m)
	} else {
		s.sols = s.sols[:m]
		s.probed = s.probed[:m]
		for i := range s.probed {
			s.probed[i] = false
		}
	}
}

// growF resizes a float64 scratch slice, reusing capacity.
func growF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// solveForSb computes the optimal D for one fixed sb via bisection on
// the budget equality (Theorem 1). It runs in O(N) per bisection step
// and does not allocate: response times live in the solver scratch and
// think times are materialized only for the winning candidate.
func (s *Solver) solveForSb(in *Inputs, sbIdx int) dSolution {
	sb := in.SbCandidates[sbIdx]
	n := len(in.ZBar)
	r, rMin := s.r[:n], s.rMin[:n]
	for i := 0; i < n; i++ {
		r[i] = in.Response(i, sb)
	}
	xm := in.SbBar / sb

	powerOnly := func(d float64) float64 {
		p := in.Power.Ps + in.Power.Mem.At(xm)
		for i := 0; i < n; i++ {
			z := zOfD(in.ZBar[i], in.C[i], rMin[i], r[i], d, in.maxZ(i))
			p += in.Power.Cores[i].At(in.ZBar[i] / z)
		}
		return p
	}

	// dHi: the largest meaningful D — every core at maximum frequency
	// (z_i = z̄_i). dLo: every core clamped at minimum frequency.
	dHi, dLo := math.Inf(1), math.Inf(1)
	for i := 0; i < n; i++ {
		tMin := in.ZBar[i] + in.C[i] + rMin[i]
		dHi = math.Min(dHi, tMin/(in.ZBar[i]+in.C[i]+r[i]))
		dLo = math.Min(dLo, tMin/(in.ZBar[i]*in.maxZ(i)+in.C[i]+r[i]))
	}
	if dLo < dFloor {
		dLo = dFloor
	}

	if pHi := powerOnly(dHi); pHi <= in.Budget+budgetTol {
		// Budget does not bind: run everything at maximum frequency.
		return dSolution{d: dHi, pw: pHi, feasible: true}
	}
	pLo := powerOnly(dLo)
	if pLo > in.Budget+budgetTol {
		// Even minimum frequencies blow the budget at this sb.
		return dSolution{d: dLo, pw: pLo, feasible: false}
	}

	// Solve power(D) = Budget on [dLo, dHi]. power is monotone
	// nondecreasing in D (possibly flat where clamps bind), so a
	// bracketed secant (Illinois) step alternated with bisection
	// converges superlinearly while never leaving the bracket.
	lo, hi := dLo, dHi
	gLo := pLo - in.Budget // ≤ 0
	gHi := powerOnly(dHi) - in.Budget
	for it := 0; it < dRootIters && hi-lo > 1e-13*hi; it++ {
		var mid float64
		if it%2 == 0 && gHi-gLo > budgetTol {
			mid = lo - gLo*(hi-lo)/(gHi-gLo) // secant through the bracket
			if mid <= lo || mid >= hi {
				mid = 0.5 * (lo + hi)
			}
		} else {
			mid = 0.5 * (lo + hi)
		}
		g := powerOnly(mid) - in.Budget
		if g > 0 {
			hi, gHi = mid, g
		} else {
			lo, gLo = mid, g
			if g > -budgetTol {
				break // budget equality hit from below
			}
		}
	}
	return dSolution{d: lo, pw: gLo + in.Budget, feasible: true}
}

// finish materializes the winning candidate's think times into a fresh
// Result (the only per-Solve allocation that escapes).
func (s *Solver) finish(in *Inputs, best dSolution, bestIdx, evals int) Result {
	n := len(in.ZBar)
	sb := in.SbCandidates[bestIdx]
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		z[i] = zOfD(in.ZBar[i], in.C[i], s.rMin[i], in.Response(i, sb), best.d, in.maxZ(i))
	}
	return Result{
		D:              best.d,
		Z:              z,
		Sb:             sb,
		SbIndex:        bestIdx,
		PredictedPower: best.pw,
		Feasible:       best.feasible,
		Evals:          evals,
	}
}

// Solve runs Algorithm 1: binary search over the M bus-time candidates,
// each probe solving D in O(N). The search key is the full betterThan
// order rather than D alone: infeasible candidates (memory frequency so
// high that even minimum core frequencies bust the budget) form a prefix
// of the candidate array over which predicted power decreases, so the
// combined order stays unimodal over the index. The deviation from the
// paper's literal pseudocode — comparing adjacent candidates and
// shrinking [l, r] rather than the three-way probe — is the standard
// unimodal-maximum bisection and avoids the non-progress corner case in
// the published listing; both perform O(log M) probes.
func (in *Inputs) Solve() (Result, error) {
	var s Solver
	return s.Solve(in)
}

// Solve runs Algorithm 1 using the solver's scratch buffers; see
// Inputs.Solve for the algorithm description.
func (s *Solver) Solve(in *Inputs) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	s.prepare(in)
	n, m := len(in.ZBar), len(in.SbCandidates)
	evals := 0
	probe := func(i int) dSolution {
		if s.probed[i] {
			return s.sols[i]
		}
		sol := s.solveForSb(in, i)
		s.probed[i] = true
		s.sols[i] = sol
		evals++
		return sol
	}

	// Warm start: in steady state the winning bus frequency rarely moves
	// between epochs. Probe the previous winner and its neighbors; if it
	// strictly beats both, the unimodal betterThan order makes it the
	// unique argmax — any other index j on the far side of a losing
	// neighbor orders no better than that neighbor — so the cold
	// bisection would return the same candidate and the same dSolution.
	// The Result is therefore byte-identical to the cold path's (only
	// Evals differs). A failed test falls through to the bisection, which
	// reuses the memoized probes.
	if s.warmN == n && s.warmM == m {
		w := s.warmIdx
		cw := probe(w)
		if (w == 0 || betterThan(cw, probe(w-1))) &&
			(w == m-1 || betterThan(cw, probe(w+1))) {
			s.warmIdx = w
			return s.finish(in, cw, w, evals), nil
		}
	}

	lo, hi := 0, m-1
	for hi-lo > 2 {
		mid := (lo + hi) / 2
		if betterThan(probe(mid+1), probe(mid)) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	best, bestIdx := probe(lo), lo
	for i := lo + 1; i <= hi; i++ {
		if sol := probe(i); betterThan(sol, best) {
			best, bestIdx = sol, i
		}
	}
	s.warmIdx, s.warmN, s.warmM = bestIdx, n, m
	return s.finish(in, best, bestIdx, evals), nil
}

// SolveExhaustive scans all M candidates. It is the reference the binary
// search is validated against and the building block for the CPU-only
// policy (single candidate) and for policies that must probe every
// memory frequency.
func (in *Inputs) SolveExhaustive() (Result, error) {
	var s Solver
	return s.SolveExhaustive(in)
}

// SolveExhaustive scans all candidates using the solver's scratch.
func (s *Solver) SolveExhaustive(in *Inputs) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	s.prepare(in)
	var best dSolution
	bestIdx := -1
	evals := 0
	for i := range in.SbCandidates {
		sol := s.solveForSb(in, i)
		evals++
		if bestIdx < 0 || betterThan(sol, best) {
			best, bestIdx = sol, i
		}
	}
	s.warmIdx, s.warmN, s.warmM = bestIdx, len(in.ZBar), len(in.SbCandidates)
	return s.finish(in, best, bestIdx, evals), nil
}

// betterThan orders candidate solutions: feasible beats infeasible; among
// infeasible, lower predicted power wins (closest budget violation);
// among feasible, larger D wins with ties broken toward lower power.
// Because infeasible candidates occupy a prefix of the (ascending)
// bus-time array over which minimum power strictly decreases, this order
// is unimodal in the candidate index, which is what Solve's bisection
// requires.
func betterThan(a, b dSolution) bool {
	if a.feasible != b.feasible {
		return a.feasible
	}
	if !a.feasible {
		return a.pw < b.pw
	}
	if a.d != b.d {
		return a.d > b.d
	}
	return a.pw < b.pw
}

// Assignment is the quantized outcome mapped onto hardware ladders.
type Assignment struct {
	CoreSteps []int // ladder step per core
	MemStep   int   // memory ladder step
	// PredictedPower re-evaluates the power models at the quantized
	// frequencies.
	PredictedPower float64
}

// Quantize maps a continuous Result onto the DVFS ladders, rounding each
// normalized frequency to the nearest step (paper §III-B: "the closest
// to z_i/z̄_i after normalization").
//
// When guard is true and nearest-step rounding lands the predicted power
// above the budget, cores are stepped down one ladder notch at a time —
// always the core currently closest to its best-case performance, which
// preserves FastCap's fairness ordering — until the model predicts the
// budget is met (memory is stepped down only after every core reaches
// its floor).
func (in *Inputs) Quantize(res Result, coreL, memL *dvfs.Ladder, guard bool) Assignment {
	var s Solver
	return s.Quantize(in, res, coreL, memL, guard)
}

// guardEntry is one max-heap node of the quantization guard: a core and
// its performance ratio at the step it held when pushed. Entries whose
// step no longer matches the core's current step are stale and are
// discarded lazily on pop.
type guardEntry struct {
	ratio float64
	core  int32
	step  int32
}

// guardLess orders the shed heap: higher ratio first, ties broken
// toward the lower core index (matching the original linear argmax).
func guardLess(a, b guardEntry) bool {
	if a.ratio != b.ratio {
		return a.ratio > b.ratio
	}
	return a.core < b.core
}

func (s *Solver) guardPush(e guardEntry) {
	s.heap = append(s.heap, e)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !guardLess(s.heap[i], s.heap[parent]) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

func (s *Solver) guardPop() guardEntry {
	top := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < last && guardLess(s.heap[l], s.heap[best]) {
			best = l
		}
		if r < last && guardLess(s.heap[r], s.heap[best]) {
			best = r
		}
		if best == i {
			break
		}
		s.heap[i], s.heap[best] = s.heap[best], s.heap[i]
		i = best
	}
	return top
}

// Quantize maps a continuous Result onto the DVFS ladders using the
// solver's scratch. The budget guard runs in O(N·log N + S·log N) for S
// shed steps: power is updated incrementally per step (instead of a
// full O(N) model re-evaluation) and the next core to shed comes from a
// max-heap keyed by performance ratio (instead of a linear argmax),
// with lazy deletion of stale entries.
func (s *Solver) Quantize(in *Inputs, res Result, coreL, memL *dvfs.Ladder, guard bool) Assignment {
	return s.quantize(in, res, nil, coreL, memL, guard)
}

// QuantizePerCore is Quantize for heterogeneous machines: coreLs[i] is
// core i's own DVFS ladder, so every quantized step lands on the ladder
// of the core it is applied to. The guard sheds by the same fairness
// order (the core closest to its best-case performance first), with
// each candidate evaluated against its own ladder.
func (s *Solver) QuantizePerCore(in *Inputs, res Result, coreLs []*dvfs.Ladder, memL *dvfs.Ladder, guard bool) Assignment {
	return s.quantize(in, res, coreLs, nil, memL, guard)
}

// quantize is the shared implementation: perCore supplies per-core
// ladders when non-nil, otherwise every core uses shared.
func (s *Solver) quantize(in *Inputs, res Result, perCore []*dvfs.Ladder, shared *dvfs.Ladder, memL *dvfs.Ladder, guard bool) Assignment {
	lad := func(i int) *dvfs.Ladder {
		if perCore != nil {
			return perCore[i]
		}
		return shared
	}
	n := len(res.Z)
	steps := make([]int, n)
	for i := 0; i < n; i++ {
		steps[i] = lad(i).NearestNorm(in.ZBar[i] / res.Z[i])
	}
	memStep := memL.NearestNorm(in.SbBar / res.Sb)

	pw := in.Power.Ps + in.Power.Mem.At(memL.NormFreq(memStep))
	for i := 0; i < n; i++ {
		pw += in.Power.Cores[i].At(lad(i).NormFreq(steps[i]))
	}
	if !guard || pw <= in.Budget {
		return Assignment{CoreSteps: steps, MemStep: memStep, PredictedPower: pw}
	}

	// Per-core constants of the performance ratio
	// D_i(step) = (z̄_i + c_i + R_i(s̄_b)) / (z̄_i·f_max/f(step) + c_i + R_i(s_b)).
	s.num = growF(s.num, n)
	s.rCur = growF(s.rCur, n)
	sbCur := in.SbCandidates[res.SbIndex]
	for i := 0; i < n; i++ {
		s.num[i] = in.ZBar[i] + in.C[i] + in.Response(i, in.SbBar)
		s.rCur[i] = in.Response(i, sbCur)
	}
	ratioAt := func(i, step int) float64 {
		z := in.ZBar[i] * lad(i).Max() / lad(i).Freq(step)
		return s.num[i] / (z + in.C[i] + s.rCur[i])
	}
	s.heap = s.heap[:0]
	for i := 0; i < n; i++ {
		if steps[i] > 0 {
			s.guardPush(guardEntry{ratio: ratioAt(i, steps[i]), core: int32(i), step: int32(steps[i])})
		}
	}

	for pw > in.Budget {
		// Next live shed candidate: lazily discard entries whose step is
		// out of date.
		shed := -1
		for len(s.heap) > 0 {
			e := s.guardPop()
			if int(e.step) == steps[e.core] {
				shed = int(e.core)
				break
			}
		}
		if shed < 0 {
			if memStep > 0 {
				pw -= in.Power.Mem.At(memL.NormFreq(memStep))
				memStep--
				pw += in.Power.Mem.At(memL.NormFreq(memStep))
				continue
			}
			break // everything at the floor; nothing more to shed
		}
		pw -= in.Power.Cores[shed].At(lad(shed).NormFreq(steps[shed]))
		steps[shed]--
		pw += in.Power.Cores[shed].At(lad(shed).NormFreq(steps[shed]))
		if steps[shed] > 0 {
			s.guardPush(guardEntry{ratio: ratioAt(shed, steps[shed]), core: int32(shed), step: int32(steps[shed])})
		}
	}
	return Assignment{CoreSteps: steps, MemStep: memStep, PredictedPower: pw}
}

// SbCandidatesFromLadder derives the M candidate bus transfer times from
// a memory ladder: sbBar·(f_max/f_m), returned ascending in time
// (descending in frequency) as Inputs.SbCandidates expects.
func SbCandidatesFromLadder(sbBar float64, memL *dvfs.Ladder) []float64 {
	return AppendSbCandidates(nil, sbBar, memL)
}

// AppendSbCandidates is the allocation-conscious form of
// SbCandidatesFromLadder: it appends the candidates to dst (usually a
// reused buffer truncated to length zero) and returns the result.
func AppendSbCandidates(dst []float64, sbBar float64, memL *dvfs.Ladder) []float64 {
	m := memL.Len()
	for i := 0; i < m; i++ {
		dst = append(dst, sbBar*memL.Max()/memL.Freq(m-1-i))
	}
	return dst
}
