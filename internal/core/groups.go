package core

import (
	"fmt"
	"math"
)

// BudgetGroup is a per-processor (socket/voltage-island) power budget:
// the cores in Cores may jointly draw at most Budget watts. The paper's
// §III-B notes the optimization "can be extended to capture
// per-processor power budgets by adding a constraint similar to
// constraint 6 for each processor"; this implements that extension.
type BudgetGroup struct {
	Cores  []int
	Budget float64
}

// validateGroups checks group shape against the core count.
func validateGroups(groups []BudgetGroup, n int) error {
	seen := make([]bool, n)
	for gi, g := range groups {
		if len(g.Cores) == 0 {
			return fmt.Errorf("fastcap: group %d has no cores", gi)
		}
		if g.Budget <= 0 {
			return fmt.Errorf("fastcap: group %d has non-positive budget", gi)
		}
		for _, c := range g.Cores {
			if c < 0 || c >= n {
				return fmt.Errorf("fastcap: group %d references core %d of %d", gi, c, n)
			}
			if seen[c] {
				return fmt.Errorf("fastcap: core %d appears in multiple groups", c)
			}
			seen[c] = true
		}
	}
	return nil
}

// GroupedInputs extends Inputs with per-processor budgets. The global
// budget (Inputs.Budget) still applies to the whole system; each group
// constraint additionally caps the summed core power of its members.
type GroupedInputs struct {
	Inputs
	Groups []BudgetGroup
}

// Validate extends Inputs.Validate with group checks.
func (in *GroupedInputs) Validate() error {
	if err := in.Inputs.Validate(); err != nil {
		return err
	}
	return validateGroups(in.Groups, len(in.ZBar))
}

// Solve runs Algorithm 1 under the additional per-group constraints.
//
// For a fixed s_b every constraint's left-hand side is monotone
// nondecreasing in D (larger D → faster cores → more power), so the
// feasible objective is D* = min(D_global, min_g D_g) where each D_c
// solves its own budget equality; the group solves reuse the same
// bracketed bisection as the global one, keeping the per-candidate cost
// O((G+1)·N) and the whole algorithm O((G+1)·N·log M).
func (in *GroupedInputs) Solve() (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	if len(in.Groups) == 0 {
		return in.Inputs.Solve()
	}
	evals := 0
	probe := func(idx int) (dSolution, []float64) {
		evals++
		return in.solveGroupedForSb(idx)
	}
	// The same unimodal bisection as the ungrouped Solve; the candidate
	// count M is small so we simply scan — group constraints can flatten
	// the objective and plain scanning is robust to ties.
	best, bestZ := probe(0)
	bestIdx := 0
	for i := 1; i < len(in.SbCandidates); i++ {
		if s, z := probe(i); betterThan(s, best) {
			best, bestZ, bestIdx = s, z, i
		}
	}
	return Result{
		D:              best.d,
		Z:              bestZ,
		Sb:             in.SbCandidates[bestIdx],
		SbIndex:        bestIdx,
		PredictedPower: best.pw,
		Feasible:       best.feasible,
		Evals:          evals,
	}, nil
}

// solveGroupedForSb solves the D maximization at one bus time under the
// global and all group constraints, returning the solution and its
// materialized think times.
func (in *GroupedInputs) solveGroupedForSb(sbIdx int) (dSolution, []float64) {
	sb := in.SbCandidates[sbIdx]
	n := len(in.ZBar)
	r := make([]float64, n)
	rMin := make([]float64, n)
	for i := 0; i < n; i++ {
		r[i] = in.Response(i, sb)
		rMin[i] = in.Response(i, in.SbBar)
	}
	xm := in.SbBar / sb

	zAt := func(i int, d float64) float64 {
		return zOfD(in.ZBar[i], in.C[i], rMin[i], r[i], d, in.maxZ(i))
	}
	globalPower := func(d float64) float64 {
		p := in.Power.Ps + in.Power.Mem.At(xm)
		for i := 0; i < n; i++ {
			p += in.Power.Cores[i].At(in.ZBar[i] / zAt(i, d))
		}
		return p
	}
	groupPower := func(g BudgetGroup, d float64) float64 {
		p := 0.0
		for _, i := range g.Cores {
			p += in.Power.Cores[i].At(in.ZBar[i] / zAt(i, d))
		}
		return p
	}

	dHi, dLo := math.Inf(1), math.Inf(1)
	for i := 0; i < n; i++ {
		tMin := in.ZBar[i] + in.C[i] + rMin[i]
		dHi = math.Min(dHi, tMin/(in.ZBar[i]+in.C[i]+r[i]))
		dLo = math.Min(dLo, tMin/(in.ZBar[i]*in.maxZ(i)+in.C[i]+r[i]))
	}
	if dLo < dFloor {
		dLo = dFloor
	}

	// solveConstraint returns the largest D ∈ [dLo, dHi] with
	// power(D) ≤ budget, and whether even dLo violates the budget.
	solveConstraint := func(power func(float64) float64, budget float64) (float64, bool) {
		if power(dHi) <= budget+budgetTol {
			return dHi, true
		}
		if power(dLo) > budget+budgetTol {
			return dLo, false
		}
		lo, hi := dLo, dHi
		for it := 0; it < dRootIters && hi-lo > 1e-13*hi; it++ {
			mid := 0.5 * (lo + hi)
			if power(mid) > budget {
				hi = mid
			} else {
				lo = mid
			}
		}
		return lo, true
	}

	d, feasible := solveConstraint(globalPower, in.Budget)
	for _, g := range in.Groups {
		dg, ok := solveConstraint(func(dd float64) float64 { return groupPower(g, dd) }, g.Budget)
		if dg < d {
			d = dg
		}
		feasible = feasible && ok
	}
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		z[i] = zAt(i, d)
	}
	return dSolution{d: d, pw: globalPower(d), feasible: feasible}, z
}
