package core

import (
	"testing"
)

func TestNumericMatchesAlgorithm1(t *testing.T) {
	// The interior-point reference must land within ~2% of Algorithm 1's
	// objective (Algorithm 1 quantizes s_b to M candidates; the numeric
	// solver works on the continuous interval, so it may be slightly
	// better, never substantially worse).
	for _, frac := range []float64{0.55, 0.65, 0.8} {
		in := testInputs(8, frac)
		alg, err := in.Solve()
		if err != nil {
			t.Fatal(err)
		}
		num, err := in.SolveNumeric(DefaultNumericOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !num.Feasible {
			t.Fatalf("budget %g: numeric infeasible", frac)
		}
		rel := (alg.D - num.D) / alg.D
		if rel > 0.02 {
			t.Errorf("budget %g: numeric D=%.6f vs Algorithm 1 D=%.6f (gap %.2f%%)",
				frac, num.D, alg.D, rel*100)
		}
	}
}

func TestNumericRespectsBudget(t *testing.T) {
	in := testInputs(8, 0.6)
	num, err := in.SolveNumeric(DefaultNumericOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Interior-point solutions stay strictly inside the budget.
	if num.PredictedPower > in.Budget {
		t.Errorf("numeric power %g exceeds budget %g", num.PredictedPower, in.Budget)
	}
	// Think times within bounds.
	for i, z := range num.Z {
		if z < in.ZBar[i]-1e-9 || z > in.ZBar[i]*in.MaxZRatio+1e-9 {
			t.Errorf("core %d z=%g outside [%g, %g]", i, z, in.ZBar[i], in.ZBar[i]*in.MaxZRatio)
		}
	}
	if num.Sb < in.SbBar-1e-9 || num.Sb > in.SbCandidates[len(in.SbCandidates)-1]+1e-9 {
		t.Errorf("sb=%g outside range", num.Sb)
	}
}

func TestNumericInfeasibleFallsBack(t *testing.T) {
	in := testInputs(4, 0.6)
	in.Budget = 1 // impossible
	num, err := in.SolveNumeric(DefaultNumericOptions())
	if err != nil {
		t.Fatal(err)
	}
	if num.Feasible {
		t.Error("impossible budget reported feasible")
	}
}

func TestNumericValidates(t *testing.T) {
	in := testInputs(4, 0.6)
	in.ZBar[0] = -1
	if _, err := in.SolveNumeric(DefaultNumericOptions()); err == nil {
		t.Error("invalid inputs accepted")
	}
}

func TestNumericFairnessConstraint(t *testing.T) {
	in := testInputs(8, 0.6)
	num, err := in.SolveNumeric(DefaultNumericOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i, z := range num.Z {
		rMin := in.Response(i, in.SbBar)
		r := in.Response(i, num.Sb)
		d := (in.ZBar[i] + in.C[i] + rMin) / (z + in.C[i] + r)
		// Interior-point keeps a small slack; every core must meet the
		// reported D within the barrier's residual.
		if d < num.D*(1-1e-3) {
			t.Errorf("core %d ratio %g below numeric D %g", i, d, num.D)
		}
	}
}

func TestNearestIndex(t *testing.T) {
	c := []float64{1, 2, 4, 8}
	cases := []struct {
		v    float64
		want int
	}{{0, 0}, {1.4, 0}, {1.6, 1}, {3.5, 2}, {100, 3}}
	for _, tc := range cases {
		if got := nearestIndex(c, tc.v); got != tc.want {
			t.Errorf("nearestIndex(%g) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func BenchmarkNumericSolve16(b *testing.B) {
	in := testInputs(16, 0.6)
	opt := DefaultNumericOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := in.SolveNumeric(opt); err != nil {
			b.Fatal(err)
		}
	}
}
