package experiments

import (
	"math"

	"repro/internal/workload"
)

// ValidationRow records the online-model accuracy for one workload: the
// paper claims the power model's error stays under 10% (§III-A) and
// that Eq. 1 is "a good approximation" to the true memory response time
// (citing CoScale's validation).
type ValidationRow struct {
	Mix string
	// MeanPowerErrPct is the mean relative error between the fitted
	// model's power prediction at the applied operating point and the
	// measured power over the post-decision window.
	MeanPowerErrPct float64
	MaxPowerErrPct  float64
	// MeanRespErrPct compares the Eq. 1 response prediction (from
	// profiling-phase counters) with the measured mean response in the
	// same epoch's post-decision window.
	MeanRespErrPct float64
}

// ValidateModels runs FastCap on one representative mix per class
// (concurrently) and reports prediction-vs-measurement errors. The
// first two epochs are skipped: the fitters have not yet seen two
// distinct frequencies.
func (l *Lab) ValidateModels() ([]ValidationRow, error) {
	cfg := l.Opt.SimConfig(l.Opt.Cores)
	mixNames := []string{"ILP1", "MID2", "MEM2", "MIX3"}
	out := make([]ValidationRow, len(mixNames))
	err := l.parallelFor(len(mixNames), func(i int) error {
		mixName := mixNames[i]
		mix, err := workload.MixByName(mixName)
		if err != nil {
			return err
		}
		pol, err := newPolicy("FastCap")
		if err != nil {
			return err
		}
		res, err := l.run(mix, cfg, 0.60, pol)
		if err != nil {
			return err
		}
		row := ValidationRow{Mix: mixName}
		var pwErrs, respErrs []float64
		for _, e := range res.Epochs[2:] {
			if e.RestPowerW > 0 && e.PredictedPowerW > 0 {
				pwErrs = append(pwErrs, math.Abs(e.PredictedPowerW-e.RestPowerW)/e.RestPowerW)
			}
			if e.MeasuredRespNs > 0 && e.PredictedRespNs > 0 {
				respErrs = append(respErrs, math.Abs(e.PredictedRespNs-e.MeasuredRespNs)/e.MeasuredRespNs)
			}
		}
		for _, v := range pwErrs {
			row.MeanPowerErrPct += v
			if v*100 > row.MaxPowerErrPct {
				row.MaxPowerErrPct = v * 100
			}
		}
		if len(pwErrs) > 0 {
			row.MeanPowerErrPct = row.MeanPowerErrPct / float64(len(pwErrs)) * 100
		}
		for _, v := range respErrs {
			row.MeanRespErrPct += v
		}
		if len(respErrs) > 0 {
			row.MeanRespErrPct = row.MeanRespErrPct / float64(len(respErrs)) * 100
		}
		out[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
