package experiments

import (
	"repro/internal/stats"
	"repro/internal/workload"
)

// ClassPerf is one pair of bars in Fig. 6: average and worst normalized
// application performance for a workload class under one budget.
type ClassPerf struct {
	Class  string
	Budget float64
	Avg    float64
	Worst  float64
	Jain   float64
}

// Fig6 reproduces Figure 6: average and worst application performance
// per class under 50%, 60% and 80% budgets. Expected shape: worst only
// slightly above average (fairness); MEM classes degrade less than ILP
// under the same budget; tighter budgets degrade more.
//
// Every (budget, class, mix) run is independent, so the whole figure
// fans out on the worker pool; per-run normalized-performance vectors
// are reassembled in submission order before the per-class summaries.
func (l *Lab) Fig6() ([]ClassPerf, error) {
	cfg := l.Opt.SimConfig(l.Opt.Cores)
	classes := []workload.Class{workload.ClassILP, workload.ClassMID, workload.ClassMEM, workload.ClassMIX}
	budgets := []float64{0.50, 0.60, 0.80}

	type cell struct {
		frac  float64
		class workload.Class
		mixes []workload.MixSpec
		start int // index of the cell's first run in the flat job list
	}
	var cells []cell
	var jobs int
	for _, frac := range budgets {
		for _, cl := range classes {
			mixes := workload.MixesByClass(cl)
			cells = append(cells, cell{frac: frac, class: cl, mixes: mixes, start: jobs})
			jobs += len(mixes)
		}
	}
	norms := make([][]float64, jobs)
	err := l.parallelFor(jobs, func(i int) error {
		// Locate the cell owning job i.
		var c cell
		for _, cand := range cells {
			if i >= cand.start && i < cand.start+len(cand.mixes) {
				c = cand
				break
			}
		}
		mix := c.mixes[i-c.start]
		pol, err := newPolicy("FastCap")
		if err != nil {
			return err
		}
		res, base, err := l.runPair(mix, cfg, c.frac, pol)
		if err != nil {
			return err
		}
		n, err := res.NormalizedPerf(base)
		if err != nil {
			return err
		}
		norms[i] = n
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := make([]ClassPerf, 0, len(cells))
	for _, c := range cells {
		var norm []float64
		for j := range c.mixes {
			norm = append(norm, norms[c.start+j]...)
		}
		s := stats.SummarizePerf(norm)
		out = append(out, ClassPerf{
			Class: c.class.String(), Budget: c.frac,
			Avg: s.Avg, Worst: s.Worst, Jain: s.Jain,
		})
	}
	return out, nil
}

// PolicyPerf is one group of bars in Figs. 9–11: per-workload,
// per-policy normalized performance.
type PolicyPerf struct {
	Workload string
	Policy   string
	Avg      float64
	Worst    float64
	Jain     float64
}

// ComparePolicies runs the named policies on the given mixes and
// summarizes normalized performance per (workload, policy). All
// (mix, policy) runs execute concurrently on the Lab's worker pool;
// the output order is the serial submission order and the values are
// identical at any worker count.
func (l *Lab) ComparePolicies(mixes []workload.MixSpec, cores int, frac float64, policyNames []string) ([]PolicyPerf, error) {
	cfg := l.Opt.SimConfig(cores)
	type job struct {
		mix   workload.MixSpec
		pname string
	}
	jobs := make([]job, 0, len(mixes)*len(policyNames))
	for _, mix := range mixes {
		for _, pname := range policyNames {
			jobs = append(jobs, job{mix: mix, pname: pname})
		}
	}
	out := make([]PolicyPerf, len(jobs))
	err := l.parallelFor(len(jobs), func(i int) error {
		j := jobs[i]
		pol, err := newPolicy(j.pname)
		if err != nil {
			return err
		}
		res, base, err := l.runPair(j.mix, cfg, frac, pol)
		if err != nil {
			return err
		}
		norm, err := res.NormalizedPerf(base)
		if err != nil {
			return err
		}
		s := stats.SummarizePerf(norm)
		out[i] = PolicyPerf{
			Workload: j.mix.Name, Policy: j.pname,
			Avg: s.Avg, Worst: s.Worst, Jain: s.Jain,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig9 reproduces Figure 9: FastCap vs CPU-only* vs Freq-Par* vs
// Eql-Pwr on all 16 workloads at a 60% budget ("*" = memory pinned at
// maximum frequency). Expected shape: FastCap's worst-case bars are the
// lowest or tied; Freq-Par shows the largest average-to-worst gaps;
// Eql-Pwr's worst case blows up on heterogeneous (MIX) workloads.
func (l *Lab) Fig9() ([]PolicyPerf, error) {
	return l.ComparePolicies(workload.TableIII, l.Opt.Cores, 0.60,
		[]string{"FastCap", "CPU-only", "Freq-Par", "Eql-Pwr"})
}

// Fig10 reproduces Figure 10: FastCap vs Eql-Freq on the MIX workloads
// on a 64-core system at a 60% budget. Expected shape: Eql-Freq is
// conservative — it cannot harvest the budget, so both its average and
// worst performance trail FastCap's.
func (l *Lab) Fig10() ([]PolicyPerf, error) {
	return l.ComparePolicies(workload.MixesByClass(workload.ClassMIX), 64, 0.60,
		[]string{"FastCap", "Eql-Freq"})
}

// Fig11 reproduces Figure 11: FastCap vs MaxBIPS on the MIX workloads
// on a 4-core system (exhaustive search is intractable beyond that) at
// a 60% budget. Expected shape: MaxBIPS wins slightly on average but
// loses clearly on worst-case performance — the fairness trade.
func (l *Lab) Fig11() ([]PolicyPerf, error) {
	return l.ComparePolicies(workload.MixesByClass(workload.ClassMIX), 4, 0.60,
		[]string{"FastCap", "MaxBIPS"})
}
