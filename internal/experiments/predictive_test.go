package experiments

import (
	"reflect"
	"testing"
)

// predictiveLab mirrors the probe fidelity the sweep was tuned at:
// 8-core members (fixed by the sweep itself), 15 epochs so the step
// scenario has ten post-shift epochs to resolve the hand-off.
func predictiveLab(workers int) *Lab {
	return NewLab(Options{
		Epochs: 15, EpochNs: 5e5, Workers: workers,
	})
}

// The acceptance assertion of the predictive arbiter: on the step
// scenario — donors' draw collapses mid-run — the forecast-driven
// arbiter hands the freed watts to the power-bound surge tenant
// strictly faster than the reactive slack reclaimer, at both budgets,
// and no grant ever leaves a member's [floor, peak] corridor.
func TestPredictiveSweepReclaimsFaster(t *testing.T) {
	rows, err := predictiveLab(0).PredictiveSweep()
	if err != nil {
		t.Fatalf("PredictiveSweep: %v", err)
	}
	if len(rows) != 24 { // 2 scenarios × 2 budgets × 2 arbiters × 3 members
		t.Fatalf("got %d rows, want 24", len(rows))
	}

	// No grant may leave [floor, peak], under either arbiter: the
	// clamp net is what makes a mispredicting forecaster safe to run.
	ttr := map[[3]string]int{}
	for _, r := range rows {
		if r.FloorViolations != 0 || r.ClampViolations != 0 {
			t.Errorf("%s/%s@%.1f%% member %s: %d floor / %d clamp violations, want none",
				r.Scenario, r.Arbiter, r.BudgetFrac*100, r.Member,
				r.FloorViolations, r.ClampViolations)
		}
		if r.AvgPowerW <= 0 || r.GInstr <= 0 {
			t.Errorf("%s/%s@%.1f%% member %s: degenerate row %+v",
				r.Scenario, r.Arbiter, r.BudgetFrac*100, r.Member, r)
		}
		key := [3]string{r.Scenario, r.Arbiter, r.Member}
		if r.Scenario == "step" && r.Member == "surge" {
			// Two budgets per (scenario, arbiter); sum the surge
			// tenant's throttled epochs across them.
			ttr[key] += r.TimeToReclaim
		}
	}
	slack := ttr[[3]string{"step", "slack", "surge"}]
	pred := ttr[[3]string{"step", "predictive", "surge"}]
	if pred >= slack {
		t.Errorf("step scenario: predictive time-to-reclaim %d epochs, slack %d — want strictly fewer", pred, slack)
	}
	if slack == 0 {
		t.Errorf("step scenario: slack surge tenant never throttled post-shift — budgets are outside the hand-off window")
	}
}

// The sweep's rows are identical at any worker count: parallelFor
// assembles results in submission order and every cluster runs with
// its own single-worker coordinator.
func TestPredictiveSweepDeterministicAcrossWorkers(t *testing.T) {
	serial, err := predictiveLab(1).PredictiveSweep()
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parallel, err := predictiveLab(8).PredictiveSweep()
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("rows differ between 1 and 8 workers:\n serial: %+v\nparallel: %+v", serial, parallel)
	}
}
