package experiments

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/runner"
	"repro/internal/workload"
)

// DynamicBudget runs one workload under FastCap while the power budget
// follows a per-epoch trace — the datacenter power-emergency scenario
// the paper's §III-B formulation supports (the cap is just another
// optimizer input, re-read every epoch). It returns two series aligned
// on the epoch axis: the budget in force and the power actually drawn,
// both normalized to peak. The run streams through a runner.Session
// with the trace attached, so each epoch's point is captured by an
// observer as the epoch completes.
func (l *Lab) DynamicBudget(mixName string, trace func(epoch int) float64) ([]Series, error) {
	if trace == nil {
		return nil, fmt.Errorf("experiments: nil budget trace")
	}
	mix, err := workload.MixByName(mixName)
	if err != nil {
		return nil, err
	}
	pol, err := newPolicy("FastCap")
	if err != nil {
		return nil, err
	}
	cfg := runner.Config{
		Sim:        l.Opt.SimConfig(l.Opt.Cores),
		Mix:        mix,
		BudgetFrac: 1, // trace overrides per epoch; BudgetW bookkeeping only
		Epochs:     l.Opt.Epochs,
		Policy:     pol,
	}
	budget := Series{Name: "budget"}
	power := Series{Name: "power"}
	s, err := runner.NewSession(cfg,
		runner.WithBudgetTrace(trace),
		runner.WithObserver(func(e runner.EpochRecord) {
			x := float64(e.Epoch)
			budget.X = append(budget.X, x)
			budget.Y = append(budget.Y, e.BudgetW/e.PeakW)
			power.X = append(power.X, x)
			power.Y = append(power.Y, e.AvgPowerW/e.PeakW)
		}))
	if err != nil {
		return nil, err
	}
	for {
		if _, err := s.Step(context.Background()); err != nil {
			if errors.Is(err, runner.ErrDone) {
				break
			}
			return nil, fmt.Errorf("%s/dynamic-budget: %w", mix.Name, err)
		}
	}
	res := s.Result()
	l.log("ran %-5s FastCap    dynamic budget  avg=%.1fW peak=%.0fW", mix.Name, res.AvgPowerW(), res.PeakW)
	return []Series{budget, power}, nil
}
