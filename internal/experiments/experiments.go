// Package experiments encodes every table and figure of the FastCap
// paper's evaluation (§IV) as a reproducible experiment: each function
// assembles the workloads, policies and machine configuration of one
// figure, runs the simulation, and returns the same rows/series the
// paper plots. The cmd/fastcap-tables binary and the repository-level
// benchmarks are thin wrappers over this package.
//
// Independent runs within a figure execute concurrently on a bounded
// worker pool (Options.Workers); results are keyed by submission index
// and reassembled in submission order, so output is byte-identical to a
// serial execution for the same seeds (see DESIGN.md, "Parallel
// experiment engine").
//
// Run lengths are scaled down from the paper's 100M-instruction
// SimPoints (see DESIGN.md): the default exercises every mechanism at
// reduced wall-clock cost, and Options lets callers raise fidelity.
package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/policy"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Options control experiment fidelity. Zero values take defaults.
type Options struct {
	// Cores for the default system (figures that fix their own core
	// count ignore this). Default 16.
	Cores int
	// Epochs per run. Default 20.
	Epochs int
	// EpochNs is the epoch length. Default 1 ms (the paper uses 5 ms;
	// steady-state behaviour is unchanged, wall-clock cost is 5× lower —
	// pass 5e6 to match the paper exactly).
	EpochNs float64
	// ProfileNs is the profiling window. Default EpochNs/10.
	ProfileNs float64
	// MixesPerClass bounds how many Table III mixes represent each class
	// in the multi-configuration sweeps (Figs. 12–13). Default 2.
	MixesPerClass int
	// Seed for the simulator RNGs.
	Seed int64
	// Workers bounds how many experiment runs execute concurrently.
	// Default runtime.GOMAXPROCS(0); 1 forces serial execution. Output
	// is identical at any worker count.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Cores <= 0 {
		o.Cores = 16
	}
	if o.Epochs <= 0 {
		o.Epochs = 20
	}
	if o.EpochNs <= 0 {
		o.EpochNs = 1e6
	}
	if o.ProfileNs <= 0 {
		o.ProfileNs = o.EpochNs / 10
	}
	if o.MixesPerClass <= 0 {
		o.MixesPerClass = 2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// SimConfig builds the machine configuration for n cores. Zero-valued
// options take their defaults, so the method is safe on hand-built
// Options values as well as Lab-owned ones.
func (o Options) SimConfig(n int) sim.Config {
	o = o.withDefaults()
	cfg := sim.DefaultConfig(n)
	cfg.EpochNs = o.EpochNs
	cfg.ProfileNs = o.ProfileNs
	cfg.Seed = o.Seed
	return cfg
}

// baselineCall is one singleflight cache slot: the first goroutine to
// claim the slot simulates the baseline; everyone else blocks on the
// same Once and shares the result.
type baselineCall struct {
	once sync.Once
	res  *runner.Result
	err  error
}

// Lab runs experiments and caches all-max baselines so that figures
// sharing a configuration do not re-simulate them. A Lab is safe for
// concurrent use: figures may run in parallel and share the baseline
// cache; each baseline is simulated exactly once.
type Lab struct {
	Opt Options
	// Progress, if non-nil, receives one line per completed run. Calls
	// are serialized by the Lab, but with Workers > 1 the line order is
	// scheduling-dependent (results are not).
	Progress func(msg string)

	mu        sync.Mutex
	baselines map[string]*baselineCall
	logMu     sync.Mutex
}

// NewLab builds a Lab with defaulted options.
func NewLab(o Options) *Lab {
	return &Lab{Opt: o.withDefaults(), baselines: map[string]*baselineCall{}}
}

func (l *Lab) log(format string, args ...any) {
	if l.Progress != nil {
		l.logMu.Lock()
		l.Progress(fmt.Sprintf(format, args...))
		l.logMu.Unlock()
	}
}

// parallelFor runs job(0) … job(n-1) on the Lab's worker pool and
// blocks until all started jobs complete. Jobs must write their outputs
// to their own index of a caller-owned slice; submission order is
// therefore the output order regardless of scheduling.
//
// On failure, jobs not yet started are skipped and the error of the
// lowest-indexed failing job is returned. That error is deterministic:
// workers claim indices in order, so by the time any job fails, every
// lower-indexed job has already started and will record its own
// outcome — the minimum failing index is always observed.
func (l *Lab) parallelFor(n int, job func(i int) error) error {
	if n == 0 {
		return nil
	}
	workers := l.Opt.withDefaults().Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	next := int64(-1)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if err := job(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// run executes one policy run (no baseline).
func (l *Lab) run(mix workload.MixSpec, cfg sim.Config, frac float64, pol policy.Policy) (*runner.Result, error) {
	res, err := runner.Run(runner.Config{
		Sim: cfg, Mix: mix, BudgetFrac: frac, Epochs: l.Opt.Epochs, Policy: pol,
	})
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", mix.Name, pol.Name(), err)
	}
	l.log("ran %-5s %-10s budget=%.0f%%  avg=%.1fW peak=%.0fW", mix.Name, pol.Name(), frac*100, res.AvgPowerW(), res.PeakW)
	return res, nil
}

// baseline returns the cached all-max run for (mix, cfg), simulating it
// at most once even when figures race for the same key (singleflight).
func (l *Lab) baseline(mix workload.MixSpec, cfg sim.Config) (*runner.Result, error) {
	machine := ""
	if cfg.Machine != nil {
		// Key by content, not name: unnamed or name-colliding specs must
		// not share another machine's all-max baseline.
		machine = cfg.Machine.Fingerprint()
	}
	key := fmt.Sprintf("%s/n%d/ooo%v/ctl%d/skew%v/e%d/len%g/mach%s",
		mix.Name, cfg.Cores, cfg.OoO, cfg.Controllers, cfg.SkewedAccess, l.Opt.Epochs, cfg.EpochNs, machine)
	l.mu.Lock()
	if l.baselines == nil {
		l.baselines = map[string]*baselineCall{}
	}
	c, ok := l.baselines[key]
	if !ok {
		c = &baselineCall{}
		l.baselines[key] = c
	}
	l.mu.Unlock()
	c.once.Do(func() {
		// The process-wide cache dedups across Labs (and with the cluster
		// sweep's members); the per-Lab slot above keeps the progress log
		// at one line per Lab per configuration.
		c.res, c.err = runner.SharedBaselines.Run(runner.Config{
			Sim: cfg, Mix: mix, BudgetFrac: 1.0, Epochs: l.Opt.Epochs, Policy: nil,
		})
		if c.err != nil {
			c.err = fmt.Errorf("%s/baseline: %w", mix.Name, c.err)
			return
		}
		l.log("ran %-5s baseline            avg=%.1fW peak=%.0fW", mix.Name, c.res.AvgPowerW(), c.res.PeakW)
	})
	return c.res, c.err
}

// runPair returns (policy result, baseline result).
func (l *Lab) runPair(mix workload.MixSpec, cfg sim.Config, frac float64, pol policy.Policy) (*runner.Result, *runner.Result, error) {
	p, err := l.run(mix, cfg, frac, pol)
	if err != nil {
		return nil, nil, err
	}
	b, err := l.baseline(mix, cfg)
	if err != nil {
		return nil, nil, err
	}
	return p, b, nil
}

// newPolicy instantiates a fresh policy by name (stateful policies must
// not be shared across runs).
func newPolicy(name string) (policy.Policy, error) {
	switch name {
	case "FastCap":
		return policy.NewFastCap(), nil
	case "CPU-only":
		return policy.NewCPUOnly(), nil
	case "Freq-Par":
		return policy.NewFreqPar(), nil
	case "Eql-Pwr":
		return policy.NewEqlPwr(), nil
	case "Eql-Freq":
		return policy.NewEqlFreq(), nil
	case "MaxBIPS":
		return policy.NewMaxBIPS(), nil
	case "Greedy":
		return policy.NewGreedy(), nil
	default:
		return nil, fmt.Errorf("experiments: unknown policy %q", name)
	}
}
