// Package experiments encodes every table and figure of the FastCap
// paper's evaluation (§IV) as a reproducible experiment: each function
// assembles the workloads, policies and machine configuration of one
// figure, runs the simulation, and returns the same rows/series the
// paper plots. The cmd/fastcap-tables binary and the repository-level
// benchmarks are thin wrappers over this package.
//
// Run lengths are scaled down from the paper's 100M-instruction
// SimPoints (see DESIGN.md): the default exercises every mechanism at
// reduced wall-clock cost, and Options lets callers raise fidelity.
package experiments

import (
	"fmt"

	"repro/internal/policy"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Options control experiment fidelity. Zero values take defaults.
type Options struct {
	// Cores for the default system (figures that fix their own core
	// count ignore this). Default 16.
	Cores int
	// Epochs per run. Default 20.
	Epochs int
	// EpochNs is the epoch length. Default 1 ms (the paper uses 5 ms;
	// steady-state behaviour is unchanged, wall-clock cost is 5× lower —
	// pass 5e6 to match the paper exactly).
	EpochNs float64
	// ProfileNs is the profiling window. Default EpochNs/10.
	ProfileNs float64
	// MixesPerClass bounds how many Table III mixes represent each class
	// in the multi-configuration sweeps (Figs. 12–13). Default 2.
	MixesPerClass int
	// Seed for the simulator RNGs.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Cores <= 0 {
		o.Cores = 16
	}
	if o.Epochs <= 0 {
		o.Epochs = 20
	}
	if o.EpochNs <= 0 {
		o.EpochNs = 1e6
	}
	if o.ProfileNs <= 0 {
		o.ProfileNs = o.EpochNs / 10
	}
	if o.MixesPerClass <= 0 {
		o.MixesPerClass = 2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// SimConfig builds the machine configuration for n cores. Zero-valued
// options take their defaults, so the method is safe on hand-built
// Options values as well as Lab-owned ones.
func (o Options) SimConfig(n int) sim.Config {
	o = o.withDefaults()
	cfg := sim.DefaultConfig(n)
	cfg.EpochNs = o.EpochNs
	cfg.ProfileNs = o.ProfileNs
	cfg.Seed = o.Seed
	return cfg
}

// Lab runs experiments and caches all-max baselines so that figures
// sharing a configuration do not re-simulate them.
type Lab struct {
	Opt       Options
	baselines map[string]*runner.Result
	// Progress, if non-nil, receives one line per completed run.
	Progress func(msg string)
}

// NewLab builds a Lab with defaulted options.
func NewLab(o Options) *Lab {
	return &Lab{Opt: o.withDefaults(), baselines: map[string]*runner.Result{}}
}

func (l *Lab) log(format string, args ...any) {
	if l.Progress != nil {
		l.Progress(fmt.Sprintf(format, args...))
	}
}

// run executes one policy run (no baseline).
func (l *Lab) run(mix workload.MixSpec, cfg sim.Config, frac float64, pol policy.Policy) (*runner.Result, error) {
	res, err := runner.Run(runner.Config{
		Sim: cfg, Mix: mix, BudgetFrac: frac, Epochs: l.Opt.Epochs, Policy: pol,
	})
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", mix.Name, pol.Name(), err)
	}
	l.log("ran %-5s %-10s budget=%.0f%%  avg=%.1fW peak=%.0fW", mix.Name, pol.Name(), frac*100, res.AvgPowerW(), res.PeakW)
	return res, nil
}

// baseline returns the cached all-max run for (mix, cfg).
func (l *Lab) baseline(mix workload.MixSpec, cfg sim.Config) (*runner.Result, error) {
	key := fmt.Sprintf("%s/n%d/ooo%v/ctl%d/skew%v/e%d/len%g",
		mix.Name, cfg.Cores, cfg.OoO, cfg.Controllers, cfg.SkewedAccess, l.Opt.Epochs, cfg.EpochNs)
	if r, ok := l.baselines[key]; ok {
		return r, nil
	}
	res, err := runner.Run(runner.Config{
		Sim: cfg, Mix: mix, BudgetFrac: 1.0, Epochs: l.Opt.Epochs, Policy: nil,
	})
	if err != nil {
		return nil, fmt.Errorf("%s/baseline: %w", mix.Name, err)
	}
	l.log("ran %-5s baseline            avg=%.1fW peak=%.0fW", mix.Name, res.AvgPowerW(), res.PeakW)
	l.baselines[key] = res
	return res, nil
}

// runPair returns (policy result, baseline result).
func (l *Lab) runPair(mix workload.MixSpec, cfg sim.Config, frac float64, pol policy.Policy) (*runner.Result, *runner.Result, error) {
	p, err := l.run(mix, cfg, frac, pol)
	if err != nil {
		return nil, nil, err
	}
	b, err := l.baseline(mix, cfg)
	if err != nil {
		return nil, nil, err
	}
	return p, b, nil
}

// newPolicy instantiates a fresh policy by name (stateful policies must
// not be shared across runs).
func newPolicy(name string) (policy.Policy, error) {
	switch name {
	case "FastCap":
		return policy.NewFastCap(), nil
	case "CPU-only":
		return policy.NewCPUOnly(), nil
	case "Freq-Par":
		return policy.NewFreqPar(), nil
	case "Eql-Pwr":
		return policy.NewEqlPwr(), nil
	case "Eql-Freq":
		return policy.NewEqlFreq(), nil
	case "MaxBIPS":
		return policy.NewMaxBIPS(), nil
	case "Greedy":
		return policy.NewGreedy(), nil
	default:
		return nil, fmt.Errorf("experiments: unknown policy %q", name)
	}
}
