package experiments

import "testing"

func TestValidateModels(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	l := NewLab(Options{Cores: 4, Epochs: 10, EpochNs: 1e6, MixesPerClass: 1})
	rows, err := l.ValidateModels()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// The paper claims <10% power-model error; allow margin for the
		// short, low-fidelity test runs.
		if r.MeanPowerErrPct > 12 {
			t.Errorf("%s: mean power error %.1f%% exceeds 12%%", r.Mix, r.MeanPowerErrPct)
		}
		if r.MeanPowerErrPct < 0 || r.MaxPowerErrPct < r.MeanPowerErrPct {
			t.Errorf("%s: inconsistent error stats %+v", r.Mix, r)
		}
		// Eq. 1 is an approximation; it should be the right order of
		// magnitude (the paper cites ~good agreement, we accept 50% here).
		if r.MeanRespErrPct > 50 {
			t.Errorf("%s: Eq.1 response error %.1f%% too large", r.Mix, r.MeanRespErrPct)
		}
	}
}

func TestCacheContentionRows(t *testing.T) {
	rows, err := CacheContention(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 2 mixes × 4 apps
		t.Fatalf("got %d rows", len(rows))
	}
	var apMem, apMix ContentionRow
	for _, r := range rows {
		if r.ShareFrac <= 0 || r.ShareFrac >= 1 {
			t.Errorf("%s/%s: share %g", r.Mix, r.App, r.ShareFrac)
		}
		if r.ModelMPKI <= 0 || r.CalibratedMPKI <= 0 {
			t.Errorf("%s/%s: non-positive MPKI", r.Mix, r.App)
		}
		if r.App == "applu" {
			if r.Mix == "MEM1" {
				apMem = r
			} else {
				apMix = r
			}
		}
	}
	// The model and the calibration must agree on the direction: applu
	// misses more in MEM1 than in MIX1.
	if apMem.ModelMPKI <= apMix.ModelMPKI {
		t.Errorf("model: applu %g (MEM1) not above %g (MIX1)", apMem.ModelMPKI, apMix.ModelMPKI)
	}
	if apMem.CalibratedMPKI <= apMix.CalibratedMPKI {
		t.Errorf("calibration: applu %g (MEM1) not above %g (MIX1)", apMem.CalibratedMPKI, apMix.CalibratedMPKI)
	}
	if _, err := CacheContention([]string{"NOPE"}); err == nil {
		t.Error("unknown mix accepted")
	}
}
