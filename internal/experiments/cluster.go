package experiments

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/policy"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ClusterSweepRow is one (arbiter, budget, member) cell of the
// cluster-coordination sweep: how each arbitration policy splits a
// datacenter-level budget across a mixed fleet.
type ClusterSweepRow struct {
	Arbiter string
	// BudgetFrac is the global budget as a fraction of the summed
	// member peaks.
	BudgetFrac float64
	Member     string
	Mix        string
	Machine    string
	// AvgGrantW / AvgPowerW / AvgSlackW average the member's grant,
	// measured draw and slack over its run.
	AvgGrantW float64
	AvgPowerW float64
	AvgSlackW float64
	// FirstGrantW and LastGrantW bracket the run: their difference is
	// the budget the arbiter migrated to (or from) the member.
	FirstGrantW float64
	LastGrantW  float64
	// GInstr is the member's total instructions retired, in billions —
	// the throughput the grant bought.
	GInstr float64
	// NormPerf is GInstr normalized by the member's all-max baseline
	// (same machine, mix and epoch count, uncapped): 1.0 means the
	// arbiter's grant cost the member nothing. Baselines come from the
	// process-wide runner.SharedBaselines cache, so the three members —
	// shared by every (arbiter, budget) job — are each simulated
	// exactly once.
	NormPerf float64
}

// clusterMemberSpec describes one sweep-fleet tenant.
type clusterMemberSpec struct {
	id     string
	mix    string
	weight float64
	cfg    sim.Config
}

// clusterFleet is the sweep's mixed fleet: a compute-bound 16-core
// machine (the power-hungry tenant, weight 2 for the priority arbiter),
// a memory-bound 16-core machine (the natural slack donor), and a
// big.LITTLE part running a balanced mix.
func clusterFleet(o Options) []clusterMemberSpec {
	return []clusterMemberSpec{
		{id: "ilp", mix: "ILP1", weight: 2, cfg: o.SimConfig(16)},
		{id: "mem", mix: "MEM4", weight: 1, cfg: o.SimConfig(16)},
		{id: "bl", mix: "MIX3", weight: 1, cfg: BigLittleConfig(o, 4, 4)},
	}
}

// ClusterSweep runs the mixed fleet under every arbitration policy at
// two global budgets (60% and 75% of the summed peaks) and reports how
// each arbiter splits the watts. At 60% every member is power-bound and
// the arbiters differ only in their shares; at 75% the memory-bound
// member cannot use its proportional share, and the slack-reclaiming
// arbiter demonstrably migrates that budget to the bottlenecked
// compute-bound member (FirstGrantW → LastGrantW). Clusters fan out on
// the Lab's worker pool; rows are assembled in submission order, so
// output is identical at any worker count.
func (l *Lab) ClusterSweep() ([]ClusterSweepRow, error) {
	arbiters := cluster.ArbiterNames()
	budgets := []float64{0.60, 0.75}

	type job struct {
		arb  string
		frac float64
	}
	var jobs []job
	for _, frac := range budgets {
		for _, arb := range arbiters {
			jobs = append(jobs, job{arb: arb, frac: frac})
		}
	}

	specs := clusterFleet(l.Opt)

	// All-max baselines for NormPerf, one per member spec. The shared
	// cache dedups across the jobs (and with any other Lab in the
	// process), so each spec simulates at most once.
	baseInstr := make([]float64, len(specs))
	for k, sp := range specs {
		mix, err := workload.MixByName(sp.mix)
		if err != nil {
			return nil, err
		}
		base, err := runner.SharedBaselines.Run(runner.Config{
			Sim: sp.cfg, Mix: mix, BudgetFrac: 1, Epochs: l.Opt.Epochs,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster baseline %s: %w", sp.id, err)
		}
		for _, v := range base.TotalInstr {
			baseInstr[k] += v
		}
		if baseInstr[k] <= 0 {
			return nil, fmt.Errorf("cluster baseline %s made no progress", sp.id)
		}
	}

	rows := make([][]ClusterSweepRow, len(jobs))
	err := l.parallelFor(len(jobs), func(i int) error {
		j := jobs[i]
		members := make([]cluster.Member, len(specs))
		peaks := 0.0
		for k, sp := range specs {
			mix, err := workload.MixByName(sp.mix)
			if err != nil {
				return err
			}
			ses, err := runner.NewSession(runner.Config{
				Sim: sp.cfg, Mix: mix, BudgetFrac: 1,
				Epochs: l.Opt.Epochs, Policy: policy.NewFastCap(),
			})
			if err != nil {
				return fmt.Errorf("cluster member %s: %w", sp.id, err)
			}
			peaks += ses.PeakPowerW()
			members[k] = cluster.Member{ID: sp.id, Weight: sp.weight, Session: ses}
		}
		arb, ok := cluster.ArbiterByName(j.arb)
		if !ok {
			return fmt.Errorf("unknown arbiter %q", j.arb)
		}
		// Members step serially inside the coordinator: the Lab's pool
		// already runs whole clusters in parallel.
		coord, err := cluster.New(cluster.Config{
			BudgetW: j.frac * peaks, Arbiter: arb, Workers: 1,
		}, members)
		if err != nil {
			return err
		}

		type acc struct {
			grant, power, slack, first, last, instr float64
			epochs                                  int
		}
		accs := make(map[string]*acc, len(specs))
		for {
			rec, err := coord.Step(context.Background())
			if errors.Is(err, cluster.ErrDone) {
				break
			}
			if err != nil {
				return fmt.Errorf("%s@%.0f%%: %w", j.arb, j.frac*100, err)
			}
			for _, mg := range rec.Members {
				a := accs[mg.ID]
				if a == nil {
					a = &acc{first: mg.GrantW}
					accs[mg.ID] = a
				}
				a.grant += mg.GrantW
				a.power += mg.PowerW
				a.slack += mg.SlackW
				a.last = mg.GrantW
				a.instr += mg.Instr
				a.epochs++
			}
		}
		out := make([]ClusterSweepRow, len(specs))
		for k, sp := range specs {
			a := accs[sp.id]
			if a == nil || a.epochs == 0 {
				return fmt.Errorf("%s@%.0f%%: member %s never ran", j.arb, j.frac*100, sp.id)
			}
			n := float64(a.epochs)
			machine := fmt.Sprintf("%d-core", sp.cfg.Cores)
			if sp.cfg.Machine != nil {
				machine = sp.cfg.Machine.Name
			}
			out[k] = ClusterSweepRow{
				Arbiter: j.arb, BudgetFrac: j.frac,
				Member: sp.id, Mix: sp.mix, Machine: machine,
				AvgGrantW: a.grant / n, AvgPowerW: a.power / n, AvgSlackW: a.slack / n,
				FirstGrantW: a.first, LastGrantW: a.last,
				GInstr:   a.instr / 1e9,
				NormPerf: a.instr / baseInstr[k],
			}
		}
		rows[i] = out
		l.log("ran cluster %-8s budget=%.0f%%  granted avg %.1fW",
			j.arb, j.frac*100, (out[0].AvgGrantW + out[1].AvgGrantW + out[2].AvgGrantW))
		return nil
	})
	if err != nil {
		return nil, err
	}
	var flat []ClusterSweepRow
	for _, r := range rows {
		flat = append(flat, r...)
	}
	return flat, nil
}
