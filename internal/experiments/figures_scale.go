package experiments

import (
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// MachineConfig names one column group of Figs. 12–13.
type MachineConfig struct {
	Name string
	// Build customizes the simulator config for this machine.
	Build func(o Options) sim.Config
}

// standardConfigs are the paper's Fig. 12/13 configurations: 16, 32 and
// 64 cores in-order, 16 cores out-of-order, and 16 cores with four
// memory controllers under a highly skewed access distribution.
func standardConfigs() []MachineConfig {
	return []MachineConfig{
		{"16", func(o Options) sim.Config { return o.SimConfig(16) }},
		{"32", func(o Options) sim.Config { return o.SimConfig(32) }},
		{"64", func(o Options) sim.Config { return o.SimConfig(64) }},
		{"OoO-16", func(o Options) sim.Config {
			c := o.SimConfig(16)
			c.OoO = true
			return c
		}},
		{"skew-16", func(o Options) sim.Config {
			c := o.SimConfig(16)
			c.Controllers = 4
			c.BanksPerController = 8
			c.SkewedAccess = true
			return c
		}},
	}
}

// ScaleRow is one (configuration, class) cell shared by Figs. 12 and 13.
type ScaleRow struct {
	Config string
	Class  string
	// Fig. 12: run-average power of the workload with the highest
	// average power, and the maximum single-epoch average power of any
	// workload — both normalized to peak.
	AvgPowerNorm float64
	MaxPowerNorm float64
	// Fig. 13: average and worst normalized application performance
	// across the class's workloads.
	AvgPerf   float64
	WorstPerf float64
}

// Fig12And13 reproduces Figures 12 and 13 in one pass: FastCap at a 60%
// budget across machine configurations and workload classes. Expected
// shapes: every average-power bar at or under 0.60 with max-epoch bars
// only slightly higher (Fig. 12); worst perf only slightly above average
// perf everywhere, including OoO and skewed configs (Fig. 13).
//
// The full (configuration × class × mix) cross product — the most
// expensive sweep in the suite — fans out on the worker pool; per-run
// measurements are reassembled in submission order before the per-cell
// aggregation, so the rows are identical at any worker count.
func (l *Lab) Fig12And13() ([]ScaleRow, error) {
	classes := []workload.Class{workload.ClassILP, workload.ClassMID, workload.ClassMEM, workload.ClassMIX}

	type job struct {
		cfg  sim.Config
		mix  workload.MixSpec
		cell int // index into rows
	}
	type cellMeas struct {
		avgNorm float64
		maxNorm float64
		norm    []float64
	}
	var jobs []job
	var rows []ScaleRow
	for _, mc := range standardConfigs() {
		cfg := mc.Build(l.Opt)
		for _, cl := range classes {
			mixes := workload.MixesByClass(cl)
			if len(mixes) > l.Opt.MixesPerClass {
				mixes = mixes[:l.Opt.MixesPerClass]
			}
			cell := len(rows)
			rows = append(rows, ScaleRow{Config: mc.Name, Class: cl.String()})
			for _, mix := range mixes {
				jobs = append(jobs, job{cfg: cfg, mix: mix, cell: cell})
			}
		}
	}

	meas := make([]cellMeas, len(jobs))
	err := l.parallelFor(len(jobs), func(i int) error {
		j := jobs[i]
		pol, err := newPolicy("FastCap")
		if err != nil {
			return err
		}
		res, base, err := l.runPair(j.mix, j.cfg, 0.60, pol)
		if err != nil {
			return err
		}
		norm, err := res.NormalizedPerf(base)
		if err != nil {
			return err
		}
		meas[i] = cellMeas{
			avgNorm: res.AvgPowerW() / res.PeakW,
			maxNorm: res.MaxEpochPowerW() / res.PeakW,
			norm:    norm,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	classNorm := make([][]float64, len(rows))
	for i, j := range jobs {
		row := &rows[j.cell]
		if meas[i].avgNorm > row.AvgPowerNorm {
			row.AvgPowerNorm = meas[i].avgNorm
		}
		if meas[i].maxNorm > row.MaxPowerNorm {
			row.MaxPowerNorm = meas[i].maxNorm
		}
		classNorm[j.cell] = append(classNorm[j.cell], meas[i].norm...)
	}
	for c := range rows {
		s := stats.SummarizePerf(classNorm[c])
		rows[c].AvgPerf, rows[c].WorstPerf = s.Avg, s.Worst
	}
	return rows, nil
}

// EpochLengthRow is one row of the epoch-length study (§IV-B): FastCap
// behaviour at 5, 10 and 20 ms epochs.
type EpochLengthRow struct {
	EpochMs      float64
	Mix          string
	AvgPowerNorm float64
	AvgPerf      float64
	WorstPerf    float64
}

// EpochLengthStudy reproduces the paper's epoch-length sensitivity
// check on the MIX workloads. Expected shape: power control and
// performance are essentially unchanged across epoch lengths. All
// (epoch length, mix) runs execute concurrently; each epoch length
// keeps its own sub-Lab (and baseline cache), built up front so the
// concurrent jobs only share concurrency-safe state.
func (l *Lab) EpochLengthStudy() ([]EpochLengthRow, error) {
	lengths := []float64{5, 10, 20}
	mixNames := []string{"MIX1", "MIX3"}

	type job struct {
		ms  float64
		mix string
		sub *Lab
		cfg sim.Config
	}
	var jobs []job
	for _, ms := range lengths {
		o := l.Opt
		o.EpochNs = ms * 1e6
		o.ProfileNs = 3e5 // paper's fixed 300 µs profiling phase
		// Hold total simulated time roughly constant.
		o.Epochs = l.Opt.Epochs * int(l.Opt.EpochNs/1e6*5) / int(ms)
		if o.Epochs < 4 {
			o.Epochs = 4
		}
		// Run the sub-Lab's runs serially: this Lab's pool already
		// provides the parallelism across (length, mix) jobs.
		o.Workers = 1
		sub := NewLab(o)
		if l.Progress != nil {
			// Route sub-Lab progress through the parent's log lock so the
			// documented "calls are serialized" guarantee holds even when
			// several sub-Labs report concurrently.
			sub.Progress = func(msg string) { l.log("%s", msg) }
		}
		cfg := o.SimConfig(o.Cores)
		for _, mixName := range mixNames {
			jobs = append(jobs, job{ms: ms, mix: mixName, sub: sub, cfg: cfg})
		}
	}

	out := make([]EpochLengthRow, len(jobs))
	err := l.parallelFor(len(jobs), func(i int) error {
		j := jobs[i]
		mix, err := workload.MixByName(j.mix)
		if err != nil {
			return err
		}
		pol, err := newPolicy("FastCap")
		if err != nil {
			return err
		}
		res, base, err := j.sub.runPair(mix, j.cfg, 0.60, pol)
		if err != nil {
			return err
		}
		norm, err := res.NormalizedPerf(base)
		if err != nil {
			return err
		}
		s := stats.SummarizePerf(norm)
		out[i] = EpochLengthRow{
			EpochMs: j.ms, Mix: j.mix,
			AvgPowerNorm: res.AvgPowerW() / res.PeakW,
			AvgPerf:      s.Avg, WorstPerf: s.Worst,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
