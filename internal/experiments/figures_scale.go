package experiments

import (
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// MachineConfig names one column group of Figs. 12–13.
type MachineConfig struct {
	Name string
	// Build customizes the simulator config for this machine.
	Build func(o Options) sim.Config
}

// standardConfigs are the paper's Fig. 12/13 configurations: 16, 32 and
// 64 cores in-order, 16 cores out-of-order, and 16 cores with four
// memory controllers under a highly skewed access distribution.
func standardConfigs() []MachineConfig {
	return []MachineConfig{
		{"16", func(o Options) sim.Config { return o.SimConfig(16) }},
		{"32", func(o Options) sim.Config { return o.SimConfig(32) }},
		{"64", func(o Options) sim.Config { return o.SimConfig(64) }},
		{"OoO-16", func(o Options) sim.Config {
			c := o.SimConfig(16)
			c.OoO = true
			return c
		}},
		{"skew-16", func(o Options) sim.Config {
			c := o.SimConfig(16)
			c.Controllers = 4
			c.BanksPerController = 8
			c.SkewedAccess = true
			return c
		}},
	}
}

// ScaleRow is one (configuration, class) cell shared by Figs. 12 and 13.
type ScaleRow struct {
	Config string
	Class  string
	// Fig. 12: run-average power of the workload with the highest
	// average power, and the maximum single-epoch average power of any
	// workload — both normalized to peak.
	AvgPowerNorm float64
	MaxPowerNorm float64
	// Fig. 13: average and worst normalized application performance
	// across the class's workloads.
	AvgPerf   float64
	WorstPerf float64
}

// Fig12And13 reproduces Figures 12 and 13 in one pass: FastCap at a 60%
// budget across machine configurations and workload classes. Expected
// shapes: every average-power bar at or under 0.60 with max-epoch bars
// only slightly higher (Fig. 12); worst perf only slightly above average
// perf everywhere, including OoO and skewed configs (Fig. 13).
func (l *Lab) Fig12And13() ([]ScaleRow, error) {
	classes := []workload.Class{workload.ClassILP, workload.ClassMID, workload.ClassMEM, workload.ClassMIX}
	var out []ScaleRow
	for _, mc := range standardConfigs() {
		cfg := mc.Build(l.Opt)
		for _, cl := range classes {
			mixes := workload.MixesByClass(cl)
			if len(mixes) > l.Opt.MixesPerClass {
				mixes = mixes[:l.Opt.MixesPerClass]
			}
			row := ScaleRow{Config: mc.Name, Class: cl.String()}
			var classNorm []float64
			bestAvg := 0.0
			for _, mix := range mixes {
				pol, err := newPolicy("FastCap")
				if err != nil {
					return nil, err
				}
				res, base, err := l.runPair(mix, cfg, 0.60, pol)
				if err != nil {
					return nil, err
				}
				if avg := res.AvgPowerW() / res.PeakW; avg > bestAvg {
					bestAvg = avg
				}
				if m := res.MaxEpochPowerW() / res.PeakW; m > row.MaxPowerNorm {
					row.MaxPowerNorm = m
				}
				norm, err := res.NormalizedPerf(base)
				if err != nil {
					return nil, err
				}
				classNorm = append(classNorm, norm...)
			}
			row.AvgPowerNorm = bestAvg
			s := stats.SummarizePerf(classNorm)
			row.AvgPerf, row.WorstPerf = s.Avg, s.Worst
			out = append(out, row)
		}
	}
	return out, nil
}

// EpochLengthRow is one row of the epoch-length study (§IV-B): FastCap
// behaviour at 5, 10 and 20 ms epochs.
type EpochLengthRow struct {
	EpochMs      float64
	Mix          string
	AvgPowerNorm float64
	AvgPerf      float64
	WorstPerf    float64
}

// EpochLengthStudy reproduces the paper's epoch-length sensitivity
// check on the MIX workloads. Expected shape: power control and
// performance are essentially unchanged across epoch lengths.
func (l *Lab) EpochLengthStudy() ([]EpochLengthRow, error) {
	var out []EpochLengthRow
	for _, ms := range []float64{5, 10, 20} {
		o := l.Opt
		o.EpochNs = ms * 1e6
		o.ProfileNs = 3e5 // paper's fixed 300 µs profiling phase
		// Hold total simulated time roughly constant.
		o.Epochs = l.Opt.Epochs * int(l.Opt.EpochNs/1e6*5) / int(ms)
		if o.Epochs < 4 {
			o.Epochs = 4
		}
		sub := NewLab(o)
		sub.Progress = l.Progress
		cfg := o.SimConfig(o.Cores)
		for _, mixName := range []string{"MIX1", "MIX3"} {
			mix, err := workload.MixByName(mixName)
			if err != nil {
				return nil, err
			}
			pol, err := newPolicy("FastCap")
			if err != nil {
				return nil, err
			}
			res, base, err := sub.runPair(mix, cfg, 0.60, pol)
			if err != nil {
				return nil, err
			}
			norm, err := res.NormalizedPerf(base)
			if err != nil {
				return nil, err
			}
			s := stats.SummarizePerf(norm)
			out = append(out, EpochLengthRow{
				EpochMs: ms, Mix: mixName,
				AvgPowerNorm: res.AvgPowerW() / res.PeakW,
				AvgPerf:      s.Avg, WorstPerf: s.Worst,
			})
		}
	}
	return out, nil
}
