package experiments

import (
	"repro/internal/workload"
)

// PowerBar is one bar of Fig. 3: run-average power normalized to peak.
type PowerBar struct {
	Mix     string
	AvgNorm float64
}

// Fig3 reproduces Figure 3: FastCap average power normalized to the
// peak for all 16 workloads under a 60% budget on the default system.
// Expected shape: every bar at or just under 0.60 (memory-light
// workloads may sit below — they cannot consume the budget). The 16
// runs execute concurrently.
func (l *Lab) Fig3() ([]PowerBar, error) {
	cfg := l.Opt.SimConfig(l.Opt.Cores)
	out := make([]PowerBar, len(workload.TableIII))
	err := l.parallelFor(len(workload.TableIII), func(i int) error {
		mix := workload.TableIII[i]
		pol, err := newPolicy("FastCap")
		if err != nil {
			return err
		}
		res, err := l.run(mix, cfg, 0.60, pol)
		if err != nil {
			return err
		}
		out[i] = PowerBar{Mix: mix.Name, AvgNorm: res.AvgPowerW() / res.PeakW}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Series is a named time series over epochs.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Fig4 reproduces Figure 4: the split of the 60% budget between cores
// and memory while running MIX3, per epoch, normalized to peak power.
// Expected shape: the two shares move in opposite directions as the
// workload changes phase, summing (with Ps) to just under the cap.
func (l *Lab) Fig4() ([]Series, error) {
	mix, err := workload.MixByName("MIX3")
	if err != nil {
		return nil, err
	}
	pol, err := newPolicy("FastCap")
	if err != nil {
		return nil, err
	}
	cfg := l.Opt.SimConfig(l.Opt.Cores)
	res, err := l.run(mix, cfg, 0.60, pol)
	if err != nil {
		return nil, err
	}
	cores := Series{Name: "cores"}
	mem := Series{Name: "memory"}
	total := Series{Name: "total"}
	for _, e := range res.Epochs {
		x := float64(e.Epoch)
		cores.X = append(cores.X, x)
		cores.Y = append(cores.Y, e.CoresW/res.PeakW)
		mem.X = append(mem.X, x)
		mem.Y = append(mem.Y, e.MemW/res.PeakW)
		total.X = append(total.X, x)
		total.Y = append(total.Y, e.AvgPowerW/res.PeakW)
	}
	return []Series{cores, mem, total}, nil
}

// Fig5 reproduces Figure 5: normalized power over time for MEM3 under
// 50%, 60% and 80% budgets (run concurrently). Expected shape: power
// tracks each cap closely; at 80% the workload cannot reach the cap and
// sits below it.
func (l *Lab) Fig5() ([]Series, error) {
	mix, err := workload.MixByName("MEM3")
	if err != nil {
		return nil, err
	}
	cfg := l.Opt.SimConfig(l.Opt.Cores)
	fracs := []float64{0.50, 0.60, 0.80}
	out := make([]Series, len(fracs))
	err = l.parallelFor(len(fracs), func(i int) error {
		frac := fracs[i]
		pol, err := newPolicy("FastCap")
		if err != nil {
			return err
		}
		res, err := l.run(mix, cfg, frac, pol)
		if err != nil {
			return err
		}
		s := Series{Name: seriesName("B", frac)}
		for _, e := range res.Epochs {
			s.X = append(s.X, float64(e.Epoch))
			s.Y = append(s.Y, e.AvgPowerW/res.PeakW)
		}
		out[i] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func seriesName(prefix string, frac float64) string {
	switch frac {
	case 0.5:
		return prefix + "=50%"
	case 0.6:
		return prefix + "=60%"
	case 0.8:
		return prefix + "=80%"
	default:
		return prefix
	}
}

// Fig7 reproduces Figure 7: per-epoch core frequency (GHz) chosen by
// FastCap for the core running vortex in ILP1, swim in MEM1, and swim
// in MIX4, under an 80% budget (the three runs execute concurrently).
// Expected shape: vortex (CPU-bound mix) runs near the top of the
// range; swim in MEM1 runs low; swim in MIX4 runs *higher* than in MEM1
// because MIX4's memory is less busy and the core must compensate for
// the slower memory it chose.
func (l *Lab) Fig7() ([]Series, error) {
	cases := []struct{ mix, app string }{
		{"ILP1", "vortex"},
		{"MEM1", "swim"},
		{"MIX4", "swim"},
	}
	cfg := l.Opt.SimConfig(l.Opt.Cores)
	out := make([]Series, len(cases))
	err := l.parallelFor(len(cases), func(i int) error {
		c := cases[i]
		mix, err := workload.MixByName(c.mix)
		if err != nil {
			return err
		}
		pol, err := newPolicy("FastCap")
		if err != nil {
			return err
		}
		res, err := l.run(mix, cfg, 0.80, pol)
		if err != nil {
			return err
		}
		// First core running the named app.
		wl, err := workload.Instantiate(mix, cfg.Cores)
		if err != nil {
			return err
		}
		coreIdx := -1
		for k, a := range wl.Apps {
			if a.Name == c.app {
				coreIdx = k
				break
			}
		}
		s := Series{Name: c.app + "@" + c.mix}
		for _, e := range res.Epochs {
			if e.CoreSteps == nil {
				continue
			}
			s.X = append(s.X, float64(e.Epoch))
			s.Y = append(s.Y, cfg.CoreLadder.Freq(e.CoreSteps[coreIdx]))
		}
		out[i] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig8 reproduces Figure 8: per-epoch memory frequency (MHz) for ILP1,
// MEM1 and MIX4 under an 80% budget (run concurrently). Expected shape:
// ILP1 drives the memory low, MEM1 keeps it at or near the top, MIX4
// sits in between.
func (l *Lab) Fig8() ([]Series, error) {
	cfg := l.Opt.SimConfig(l.Opt.Cores)
	names := []string{"ILP1", "MEM1", "MIX4"}
	out := make([]Series, len(names))
	err := l.parallelFor(len(names), func(i int) error {
		mix, err := workload.MixByName(names[i])
		if err != nil {
			return err
		}
		pol, err := newPolicy("FastCap")
		if err != nil {
			return err
		}
		res, err := l.run(mix, cfg, 0.80, pol)
		if err != nil {
			return err
		}
		s := Series{Name: names[i]}
		for _, e := range res.Epochs {
			s.X = append(s.X, float64(e.Epoch))
			s.Y = append(s.Y, cfg.MemLadder.Freq(e.MemStep)*1000) // MHz
		}
		out[i] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
