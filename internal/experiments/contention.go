package experiments

import (
	"repro/internal/cache"
	"repro/internal/workload"
)

// ContentionRow reports one application's shared-L2 contention outcome
// within one mix: equilibrium occupancy and effective miss rate from the
// analytic cache model, next to the Table III-normalized value the
// workload package assigns.
type ContentionRow struct {
	Mix            string
	App            string
	ShareFrac      float64
	ModelMPKI      float64
	CalibratedMPKI float64
}

// mrcFromProfile derives a miss-ratio curve from an application profile:
// MemWeight approximates the standalone intensity at a fair (4 MB of
// 16 MB) share; row-locality-heavy streaming codes are capacity-
// insensitive (low theta).
func mrcFromProfile(p workload.AppProfile) cache.MRC {
	theta := 1.2 - p.RowLocality
	if theta < 0.1 {
		theta = 0.1
	}
	return cache.MRC{BaseMPKI: p.MemWeight, RefMB: 4, Theta: theta, FloorMPKI: p.MemWeight / 8}
}

// CacheContention evaluates the shared-L2 equilibrium for the given
// mixes (default: MEM1 and MIX1, the pair sharing applu that motivates
// the mix-dependent calibration) and returns per-app rows.
func CacheContention(mixNames []string) ([]ContentionRow, error) {
	if len(mixNames) == 0 {
		mixNames = []string{"MEM1", "MIX1"}
	}
	const l2MB = 16.0
	var out []ContentionRow
	for _, name := range mixNames {
		mix, err := workload.MixByName(name)
		if err != nil {
			return nil, err
		}
		wl, err := workload.Instantiate(mix, 4)
		if err != nil {
			return nil, err
		}
		var sharers []cache.Sharer
		for _, appName := range mix.Apps {
			p, err := workload.Lookup(appName)
			if err != nil {
				return nil, err
			}
			sharers = append(sharers, cache.Sharer{Name: appName, MRC: mrcFromProfile(p), IPS: 1})
		}
		shares, err := cache.Shares(sharers, l2MB, 0)
		if err != nil {
			return nil, err
		}
		mpki, err := cache.Equilibrium(sharers, l2MB, 0)
		if err != nil {
			return nil, err
		}
		for i, appName := range mix.Apps {
			out = append(out, ContentionRow{
				Mix:            name,
				App:            appName,
				ShareFrac:      shares[i],
				ModelMPKI:      mpki[i],
				CalibratedMPKI: wl.Apps[i].MPKI,
			})
		}
	}
	return out, nil
}
