package experiments

import (
	"reflect"
	"testing"
)

// The heterogeneity sweep must be deterministic at any worker count —
// the same submission-order reassembly guarantee every other figure
// has — and its rows must cover every (machine, policy) cell.
func TestHeterogeneityDeterministic(t *testing.T) {
	run := func(workers int) []HeteroRow {
		t.Helper()
		lab := NewLab(Options{Epochs: 3, EpochNs: 5e5, Workers: workers})
		rows, err := lab.Heterogeneity()
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("Heterogeneity rows differ between Workers=1 and Workers=8")
	}

	machines := map[string]bool{}
	policies := map[string]bool{}
	for _, r := range serial {
		machines[r.Machine] = true
		policies[r.Policy] = true
		if !(r.AvgPowerNorm > 0 && r.AvgPowerNorm < 1) {
			t.Errorf("%s/%s/%s: implausible avg power %g of peak", r.Machine, r.Mix, r.Policy, r.AvgPowerNorm)
		}
		if r.WorstPerf < r.AvgPerf {
			t.Errorf("%s/%s/%s: worst perf %g better than average %g", r.Machine, r.Mix, r.Policy, r.WorstPerf, r.AvgPerf)
		}
		if !(r.Jain > 0 && r.Jain <= 1+1e-9) {
			t.Errorf("%s/%s/%s: Jain index %g outside (0, 1]", r.Machine, r.Mix, r.Policy, r.Jain)
		}
	}
	for _, m := range []string{"bigLITTLE-4+12", "binned-8+8", "bigLITTLE-2+2"} {
		if !machines[m] {
			t.Errorf("sweep missing machine %s", m)
		}
	}
	for _, p := range []string{"FastCap", "CPU-only", "Freq-Par", "Eql-Pwr", "Eql-Freq", "Greedy", "MaxBIPS"} {
		if !policies[p] {
			t.Errorf("sweep missing policy %s", p)
		}
	}
}
