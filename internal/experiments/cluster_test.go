package experiments

import (
	"reflect"
	"testing"
)

// clusterLab is a reduced-fidelity Lab for the sweep tests: 16-core
// members keep the compute/memory draw contrast the sweep demonstrates,
// shorter runs keep it fast.
func clusterLab(workers int) *Lab {
	return NewLab(Options{
		Cores: 16, Epochs: 12, EpochNs: 5e5, Workers: workers,
	})
}

// The acceptance assertion of the cluster layer: under the
// slack-reclaiming arbiter at the loose budget, the compute-bound
// member (pressed against its cap) ends the run with more watts than it
// started with, taken from the memory-bound member that could not use
// its proportional share. At the tight budget everyone is power-bound
// and no such migration happens.
func TestClusterSweepSlackShiftsTowardBottleneck(t *testing.T) {
	rows, err := clusterLab(0).ClusterSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 30 { // 5 arbiters × 2 budgets × 3 members
		t.Fatalf("sweep produced %d rows, want 30", len(rows))
	}
	find := func(arb string, frac float64, member string) ClusterSweepRow {
		for _, r := range rows {
			if r.Arbiter == arb && r.BudgetFrac == frac && r.Member == member {
				return r
			}
		}
		t.Fatalf("row %s/%.2f/%s missing", arb, frac, member)
		return ClusterSweepRow{}
	}

	ilp := find("slack", 0.75, "ilp")
	mem := find("slack", 0.75, "mem")
	if gained := ilp.LastGrantW - ilp.FirstGrantW; gained < 2 {
		t.Errorf("slack@75%%: bottlenecked member gained %.2f W, want >= 2 W", gained)
	}
	if ceded := mem.FirstGrantW - mem.LastGrantW; ceded < 2 {
		t.Errorf("slack@75%%: memory-bound member ceded %.2f W, want >= 2 W", ceded)
	}
	// The reclaimed watts bought throughput: the bottlenecked member
	// beats its static allocation at the same budget.
	ilpStatic := find("static", 0.75, "ilp")
	if ilp.GInstr <= ilpStatic.GInstr {
		t.Errorf("slack@75%%: ilp retired %.3f Ginstr vs %.3f under static — reclaim bought nothing",
			ilp.GInstr, ilpStatic.GInstr)
	}

	// Static never moves a grant.
	for _, member := range []string{"ilp", "mem", "bl"} {
		r := find("static", 0.60, member)
		if r.FirstGrantW != r.LastGrantW {
			t.Errorf("static@60%%: member %s grant moved %.2f → %.2f W", member, r.FirstGrantW, r.LastGrantW)
		}
	}
	// Priority weights bite: ilp (weight 2) gets a larger share of the
	// tight budget than it would proportionally.
	pri := find("priority", 0.60, "ilp")
	sta := find("static", 0.60, "ilp")
	if pri.AvgGrantW <= sta.AvgGrantW {
		t.Errorf("priority@60%%: weight-2 member granted %.2f W vs %.2f under static", pri.AvgGrantW, sta.AvgGrantW)
	}
}

// The sweep is deterministic across Lab worker counts, like every other
// figure.
func TestClusterSweepDeterministicAcrossWorkers(t *testing.T) {
	serial, err := clusterLab(1).ClusterSweep()
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := clusterLab(8).ClusterSweep()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("ClusterSweep output differs between Workers=1 and Workers=8")
	}
}
