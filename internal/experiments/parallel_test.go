package experiments

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/workload"
)

// parallelOpts is a small configuration exercising the worker pool.
func parallelOpts(workers int) Options {
	return Options{Cores: 4, Epochs: 3, EpochNs: 5e5, MixesPerClass: 1, Workers: workers}
}

// The tentpole determinism guarantee: Lab output is byte-identical at
// any worker count, because every run owns its engine and RNGs and
// results are reassembled in submission order.
func TestComparePoliciesParallelDeterminism(t *testing.T) {
	mixes := []workload.MixSpec{}
	for _, cl := range []workload.Class{workload.ClassILP, workload.ClassMEM, workload.ClassMIX} {
		mixes = append(mixes, workload.MixesByClass(cl)[0])
	}
	policies := []string{"FastCap", "CPU-only", "Eql-Pwr"}

	serial, err := NewLab(parallelOpts(1)).ComparePolicies(mixes, 4, 0.60, policies)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewLab(parallelOpts(8)).ComparePolicies(mixes, 4, 0.60, policies)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("Workers=1 and Workers=8 disagree:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// Fig6 exercises the reassembly path (per-run vectors aggregated into
// per-class summaries); it must also be worker-count invariant.
func TestFig6ParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	serial, err := NewLab(parallelOpts(1)).Fig6()
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewLab(parallelOpts(8)).Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("Fig6 differs between Workers=1 and Workers=8")
	}
}

// Two figures sharing (mix, cfg) baselines may run concurrently on one
// Lab: the singleflight cache must simulate each baseline exactly once
// and stay race-clean (run with -race in CI). Results must match the
// serial reference.
func TestBaselineCacheConcurrentFigures(t *testing.T) {
	mixes := []workload.MixSpec{workload.MixesByClass(workload.ClassMIX)[0]}
	policies := []string{"FastCap", "CPU-only"}

	ref, err := NewLab(parallelOpts(1)).ComparePolicies(mixes, 4, 0.60, policies)
	if err != nil {
		t.Fatal(err)
	}

	lab := NewLab(parallelOpts(4))
	var wg sync.WaitGroup
	results := make([][]PolicyPerf, 3)
	errs := make([]error, 3)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = lab.ComparePolicies(mixes, 4, 0.60, policies)
		}(g)
	}
	wg.Wait()
	for g := 0; g < 3; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		if !reflect.DeepEqual(results[g], ref) {
			t.Errorf("goroutine %d result differs from serial reference", g)
		}
	}

	// The shared baseline must have been simulated exactly once.
	if n := len(lab.baselines); n != 1 {
		t.Errorf("baseline cache holds %d entries, want 1", n)
	}
}

// The error surfaced by a parallel sweep is the lowest-indexed failure,
// matching what a serial loop would report.
func TestParallelForFirstErrorDeterministic(t *testing.T) {
	lab := NewLab(parallelOpts(8))
	_, err := lab.ComparePolicies(workload.TableIII[:2], 4, 0.60,
		[]string{"FastCap", "definitely-not-a-policy", "also-bogus"})
	if err == nil {
		t.Fatal("expected error for unknown policy")
	}
	want := `experiments: unknown policy "definitely-not-a-policy"`
	if err.Error() != want {
		t.Errorf("error = %q, want %q (the lowest-indexed failure)", err, want)
	}
}

func TestWorkersDefault(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Workers < 1 {
		t.Errorf("default Workers = %d", o.Workers)
	}
	if w := (Options{Workers: 3}).withDefaults().Workers; w != 3 {
		t.Errorf("explicit Workers overridden to %d", w)
	}
}
