package experiments

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/policy"
	"repro/internal/runner"
	"repro/internal/workload"
)

// SLOSweepRow is one (arbiter, budget, member) cell of the SLO
// arbitration sweep: how a throughput contract fares on a churning
// fleet under a slack-reclaiming arbiter that is blind to the contract
// versus the SLO-aware arbiter that funds it first.
type SLOSweepRow struct {
	Arbiter string
	// BudgetFrac is the global budget as a fraction of the summed peaks
	// of the two resident members (the mid-run arrival adds demand, not
	// budget — that is the stress).
	BudgetFrac float64
	Member     string
	Mix        string
	// TargetBIPS is the member's contracted throughput (0 = best
	// effort); AvgBIPS what it actually retired per epoch on average.
	TargetBIPS float64
	AvgBIPS    float64
	// SatisfiedFrac is the fraction of the member's epochs spent meeting
	// the contract (tracker hysteresis applied); 1 for uncontracted
	// members. Violations counts transitions into violation.
	SatisfiedFrac float64
	Violations    int
	// AvgGrantW / AvgSlackW average the member's grant and unused watts.
	AvgGrantW float64
	AvgSlackW float64
}

// sloChurnPoints shapes the churn timeline: the burst tenant arrives at
// a third of the run and the best-effort donor departs at two thirds.
func sloChurnPoints(epochs int) (arrive, depart int) {
	arrive = epochs / 3
	if arrive < 1 {
		arrive = 1
	}
	depart = 2 * epochs / 3
	if depart <= arrive {
		depart = arrive + 1
	}
	return arrive, depart
}

// SLOSweep runs a churning three-tenant fleet under the slack and slo
// arbiters at two global budgets. The contracted tenant ("gold", a
// compute-bound machine with a diurnal phase schedule) holds a BIPS
// target calibrated against its own uncapped baseline; a memory-bound
// donor ("be") departs mid-run and a bursty tenant ("burst") arrives
// mid-run without any budget increase. The slack arbiter reclaims
// unused watts but is contract-blind; the slo arbiter funds the
// contract's estimated demand first and water-fills the remainder, so
// gold's satisfied fraction should dominate. Clusters fan out on the
// Lab's worker pool; rows are assembled in submission order, so output
// is identical at any worker count.
func (l *Lab) SLOSweep() ([]SLOSweepRow, error) {
	arbiters := []string{"slack", "slo"}
	budgets := []float64{0.55, 0.70}
	epochs := l.Opt.Epochs
	arrive, depart := sloChurnPoints(epochs)

	// The gold tenant's diurnal phase schedule: demand rises after the
	// first quarter and relaxes in the last.
	phases := workload.PhaseSchedule{
		{Epoch: epochs / 4, Scale: 1.5},
		{Epoch: 3 * epochs / 4, Scale: 0.75},
	}
	goldCfg := l.Opt.SimConfig(8)
	goldCfg.PhaseSchedule = phases

	// Calibrate the contract against gold's own uncapped baseline (same
	// machine, mix, schedule), via the shared cache: the target is 70%
	// of the throughput the machine retires with nobody throttling it.
	goldMix, err := workload.MixByName("ILP1")
	if err != nil {
		return nil, err
	}
	base, err := runner.SharedBaselines.Run(runner.Config{
		Sim: goldCfg, Mix: goldMix, BudgetFrac: 1, Epochs: epochs,
	})
	if err != nil {
		return nil, fmt.Errorf("slo baseline: %w", err)
	}
	baseInstr := 0.0
	for _, v := range base.TotalInstr {
		baseInstr += v
	}
	if baseInstr <= 0 {
		return nil, errors.New("slo baseline made no progress")
	}
	target := 0.7 * baseInstr / float64(epochs) / goldCfg.EpochNs

	type memberSpec struct {
		id, mix string
		target  float64
		epochs  int
	}
	resident := []memberSpec{
		{id: "gold", mix: "ILP1", target: target, epochs: epochs},
		{id: "be", mix: "MEM4", epochs: epochs},
	}
	burst := memberSpec{id: "burst", mix: "MIX3", epochs: epochs - arrive}

	newMember := func(sp memberSpec) (cluster.Member, error) {
		mix, err := workload.MixByName(sp.mix)
		if err != nil {
			return cluster.Member{}, err
		}
		cfg := l.Opt.SimConfig(8)
		if sp.id == "gold" {
			cfg = goldCfg
		}
		ses, err := runner.NewSession(runner.Config{
			Sim: cfg, Mix: mix, BudgetFrac: 1,
			Epochs: sp.epochs, Policy: policy.NewFastCap(),
		})
		if err != nil {
			return cluster.Member{}, fmt.Errorf("slo member %s: %w", sp.id, err)
		}
		return cluster.Member{ID: sp.id, Session: ses, TargetBIPS: sp.target}, nil
	}

	type job struct {
		arb  string
		frac float64
	}
	var jobs []job
	for _, frac := range budgets {
		for _, arb := range arbiters {
			jobs = append(jobs, job{arb: arb, frac: frac})
		}
	}

	specs := append(append([]memberSpec{}, resident...), burst)
	rows := make([][]SLOSweepRow, len(jobs))
	jobErr := l.parallelFor(len(jobs), func(i int) error {
		j := jobs[i]
		members := make([]cluster.Member, len(resident))
		peaks := 0.0
		for k, sp := range resident {
			m, err := newMember(sp)
			if err != nil {
				return err
			}
			peaks += m.Session.PeakPowerW()
			members[k] = m
		}
		arb, ok := cluster.ArbiterByName(j.arb)
		if !ok {
			return fmt.Errorf("unknown arbiter %q", j.arb)
		}
		coord, err := cluster.New(cluster.Config{
			BudgetW: j.frac * peaks, Arbiter: arb, Workers: 1,
		}, members)
		if err != nil {
			return err
		}

		type acc struct {
			grant, slack, instr          float64
			epochs, satisfied, violation int
			target                       float64
		}
		accs := map[string]*acc{}
		for e := 0; ; e++ {
			if e == arrive {
				m, err := newMember(burst)
				if err != nil {
					return err
				}
				if err := coord.Attach(m); err != nil {
					return fmt.Errorf("%s@%.0f%%: attach burst: %w", j.arb, j.frac*100, err)
				}
			}
			if e == depart {
				if _, err := coord.Detach("be"); err != nil {
					return fmt.Errorf("%s@%.0f%%: detach be: %w", j.arb, j.frac*100, err)
				}
			}
			rec, err := coord.Step(context.Background())
			if errors.Is(err, cluster.ErrDone) {
				break
			}
			if err != nil {
				return fmt.Errorf("%s@%.0f%%: %w", j.arb, j.frac*100, err)
			}
			for _, mg := range rec.Members {
				a := accs[mg.ID]
				if a == nil {
					a = &acc{}
					accs[mg.ID] = a
				}
				a.grant += mg.GrantW
				a.slack += mg.SlackW
				a.instr += mg.Instr
				a.target = mg.TargetBIPS
				a.epochs++
				if mg.TargetBIPS <= 0 || !mg.SLOViolated {
					a.satisfied++
				}
			}
			for _, ev := range rec.Events {
				if ev.Type == cluster.SLOViolated {
					accs[ev.Member].violation++
				}
			}
		}

		out := make([]SLOSweepRow, 0, len(specs))
		for _, sp := range specs {
			a := accs[sp.id]
			if a == nil || a.epochs == 0 {
				return fmt.Errorf("%s@%.0f%%: member %s never ran", j.arb, j.frac*100, sp.id)
			}
			n := float64(a.epochs)
			out = append(out, SLOSweepRow{
				Arbiter: j.arb, BudgetFrac: j.frac,
				Member: sp.id, Mix: sp.mix,
				TargetBIPS: a.target, AvgBIPS: a.instr / n / l.Opt.EpochNs,
				SatisfiedFrac: float64(a.satisfied) / n,
				Violations:    a.violation,
				AvgGrantW:     a.grant / n, AvgSlackW: a.slack / n,
			})
		}
		rows[i] = out
		l.log("ran slo %-6s budget=%.0f%%  gold satisfied %.0f%%",
			j.arb, j.frac*100, out[0].SatisfiedFrac*100)
		return nil
	})
	if jobErr != nil {
		return nil, jobErr
	}
	var flat []SLOSweepRow
	for _, r := range rows {
		flat = append(flat, r...)
	}
	return flat, nil
}
