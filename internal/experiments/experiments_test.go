package experiments

import (
	"testing"
)

// tinyLab returns a Lab configured for fast tests: 4 cores, short
// epochs. Shape checks still hold at this scale.
func tinyLab() *Lab {
	return NewLab(Options{Cores: 4, Epochs: 6, EpochNs: 5e5, MixesPerClass: 1})
}

func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	l := tinyLab()
	bars, err := l.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(bars) != 16 {
		t.Fatalf("got %d bars, want 16", len(bars))
	}
	for _, b := range bars {
		// Every workload at or under the 60% cap (plus small transient).
		if b.AvgNorm > 0.66 {
			t.Errorf("%s: normalized power %.3f above cap", b.Mix, b.AvgNorm)
		}
		if b.AvgNorm < 0.2 {
			t.Errorf("%s: normalized power %.3f implausibly low", b.Mix, b.AvgNorm)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	l := tinyLab()
	series, err := l.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("got %d series", len(series))
	}
	names := map[string]bool{}
	for _, s := range series {
		names[s.Name] = true
		if len(s.Y) != l.Opt.Epochs {
			t.Errorf("%s has %d points, want %d", s.Name, len(s.Y), l.Opt.Epochs)
		}
	}
	for _, want := range []string{"cores", "memory", "total"} {
		if !names[want] {
			t.Errorf("missing series %q", want)
		}
	}
}

func TestFig5TracksBudgets(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	l := tinyLab()
	series, err := l.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("got %d series", len(series))
	}
	// Post-convergence mean power ordering follows the budgets, and the
	// 50% run must sit near its cap.
	mean := func(s Series) float64 {
		sum := 0.0
		for _, v := range s.Y[2:] {
			sum += v
		}
		return sum / float64(len(s.Y)-2)
	}
	m50, m60, m80 := mean(series[0]), mean(series[1]), mean(series[2])
	if !(m50 <= m60+0.02 && m60 <= m80+0.02) {
		t.Errorf("power not ordered by budget: %.3f %.3f %.3f", m50, m60, m80)
	}
	if m50 > 0.56 {
		t.Errorf("50%% budget run at %.3f of peak", m50)
	}
}

func TestFig6FairnessShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	l := tinyLab()
	rows, err := l.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 3 budgets × 4 classes
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Worst < r.Avg-1e-9 {
			t.Errorf("%s@%.0f%%: worst %.3f below avg %.3f", r.Class, r.Budget*100, r.Worst, r.Avg)
		}
		// Fairness: the paper's key claim — worst within a modest margin
		// of average (generous tolerance at tiny scale).
		if r.Worst > r.Avg*1.6 {
			t.Errorf("%s@%.0f%%: outlier worst %.3f vs avg %.3f", r.Class, r.Budget*100, r.Worst, r.Avg)
		}
	}
	// Looser budget → no worse average performance, per class.
	byClass := map[string]map[float64]float64{}
	for _, r := range rows {
		if byClass[r.Class] == nil {
			byClass[r.Class] = map[float64]float64{}
		}
		byClass[r.Class][r.Budget] = r.Avg
	}
	for cl, m := range byClass {
		if m[0.8] > m[0.5]+0.05 {
			t.Errorf("%s: 80%% budget (%.3f) slower than 50%% (%.3f)", cl, m[0.8], m[0.5])
		}
	}
}

func TestFig7And8Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	l := tinyLab()
	coreSeries, err := l.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(coreSeries) != 3 {
		t.Fatalf("Fig7: %d series", len(coreSeries))
	}
	for _, s := range coreSeries {
		for _, f := range s.Y {
			if f < 2.2-1e-9 || f > 4.0+1e-9 {
				t.Errorf("%s: core frequency %g outside ladder", s.Name, f)
			}
		}
	}
	memSeries, err := l.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(memSeries) != 3 {
		t.Fatalf("Fig8: %d series", len(memSeries))
	}
	means := map[string]float64{}
	for _, s := range memSeries {
		sum := 0.0
		for _, f := range s.Y {
			if f < 200-1e-6 || f > 800+1e-6 {
				t.Errorf("%s: memory frequency %g MHz outside ladder", s.Name, f)
			}
			sum += f
		}
		means[s.Name] = sum / float64(len(s.Y))
	}
	// MEM1 keeps memory at least as fast as ILP1 (paper's Fig. 8 story;
	// the strict ordering appears once the budget binds, i.e. at the
	// full 16-core scale exercised by the harness).
	if means["MEM1"] < means["ILP1"]-1e-6 {
		t.Errorf("MEM1 mean mem freq %.0f < ILP1 %.0f", means["MEM1"], means["ILP1"])
	}
}

func TestFig9PolicyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	l := tinyLab()
	rows, err := l.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16*4 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Aggregate worst-case performance per policy across workloads.
	worst := map[string]float64{}
	count := map[string]int{}
	for _, r := range rows {
		worst[r.Policy] += r.Worst
		count[r.Policy]++
	}
	for p := range worst {
		worst[p] /= float64(count[p])
	}
	// FastCap's mean worst-case must beat Freq-Par's and Eql-Pwr's.
	if worst["FastCap"] > worst["Freq-Par"]+0.02 {
		t.Errorf("FastCap worst %.3f vs Freq-Par %.3f", worst["FastCap"], worst["Freq-Par"])
	}
	if worst["FastCap"] > worst["Eql-Pwr"]+0.02 {
		t.Errorf("FastCap worst %.3f vs Eql-Pwr %.3f", worst["FastCap"], worst["Eql-Pwr"])
	}
}

func TestFig11MaxBIPSTrade(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	l := tinyLab()
	rows, err := l.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 4 MIX × 2 policies
		t.Fatalf("got %d rows", len(rows))
	}
	var fcWorst, mbWorst float64
	for _, r := range rows {
		switch r.Policy {
		case "FastCap":
			fcWorst += r.Worst
		case "MaxBIPS":
			mbWorst += r.Worst
		}
	}
	// FastCap must not lose on worst-case fairness to MaxBIPS overall.
	if fcWorst > mbWorst+0.08 {
		t.Errorf("FastCap aggregate worst %.3f vs MaxBIPS %.3f", fcWorst, mbWorst)
	}
}

func TestOverheadLinear(t *testing.T) {
	rows, err := Overhead(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Cores != 16 || rows[2].Cores != 64 {
		t.Errorf("unexpected core counts: %+v", rows)
	}
	// Linearity in N (the paper's claim): 64-core time within ~6× of the
	// 16-core time (4× ideal, slack for constant factors and timer noise).
	if rows[2].MeanUs > rows[0].MeanUs*6 {
		t.Errorf("scaling superlinear: %.1fµs @16 vs %.1fµs @64", rows[0].MeanUs, rows[2].MeanUs)
	}
	for _, r := range rows {
		if r.MeanUs <= 0 || r.MeanUs > 5000 {
			t.Errorf("%d cores: %.1f µs implausible", r.Cores, r.MeanUs)
		}
		if r.PctOfEpoch <= 0 {
			t.Errorf("%d cores: PctOfEpoch %g", r.Cores, r.PctOfEpoch)
		}
	}
}

func TestTable1Separation(t *testing.T) {
	rows, err := Table1(50)
	if err != nil {
		t.Fatal(err)
	}
	var exh4, fc256 float64
	for _, r := range rows {
		if r.Method == "Exhaustive [14]" && r.Cores == 4 {
			exh4 = r.MeanUs
		}
		if r.Method == "FastCap" && r.Cores == 256 {
			fc256 = r.MeanUs
		}
		if r.MeanUs <= 0 {
			t.Errorf("%s@%d: non-positive time", r.Method, r.Cores)
		}
	}
	// Exhaustive search on 4 cores should already cost more than FastCap
	// on 256 cores — the Table I separation.
	if exh4 < fc256 {
		t.Logf("note: exhaustive@4 (%.0fµs) vs FastCap@256 (%.0fµs)", exh4, fc256)
	}
}

func TestNewPolicyUnknown(t *testing.T) {
	if _, err := newPolicy("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
	for _, n := range []string{"FastCap", "CPU-only", "Freq-Par", "Eql-Pwr", "Eql-Freq", "MaxBIPS"} {
		p, err := newPolicy(n)
		if err != nil || p.Name() != n {
			t.Errorf("newPolicy(%q) = %v, %v", n, p, err)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Cores != 16 || o.Epochs != 20 || o.EpochNs != 1e6 || o.MixesPerClass != 2 {
		t.Errorf("defaults = %+v", o)
	}
	if o.ProfileNs != o.EpochNs/10 {
		t.Errorf("profile default = %g", o.ProfileNs)
	}
}

func TestDynamicBudgetTracksTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	l := NewLab(Options{Cores: 4, Epochs: 10, EpochNs: 5e5, MixesPerClass: 1})
	trace := func(e int) float64 {
		if e < 5 {
			return 0.8
		}
		return 0.5
	}
	series, err := l.DynamicBudget("MID1", trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("got %d series, want budget+power", len(series))
	}
	budget, power := series[0], series[1]
	if len(budget.Y) != 10 || len(power.Y) != 10 {
		t.Fatalf("series lengths %d/%d, want 10", len(budget.Y), len(power.Y))
	}
	for e, b := range budget.Y {
		want := trace(e)
		if b != want {
			t.Errorf("epoch %d: budget series %.3f, want %.3f", e, b, want)
		}
	}
	// Power follows the cut: last epochs draw less than the early ones.
	if power.Y[9] >= power.Y[4] {
		t.Errorf("power did not follow the budget cut: %.3f → %.3f", power.Y[4], power.Y[9])
	}
	if _, err := l.DynamicBudget("MID1", nil); err == nil {
		t.Error("nil trace accepted")
	}
}
