package experiments

import (
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/workload"
)

// AblationRow compares two FastCap variants on one workload.
type AblationRow struct {
	Mix     string
	Variant string
	// AvgPowerNorm and MaxPowerNorm are run-average and worst-epoch
	// power over peak; OverBudgetEpochsPct is the fraction of epochs
	// whose average power exceeded the cap by more than 1%.
	AvgPowerNorm        float64
	MaxPowerNorm        float64
	OverBudgetEpochsPct float64
	AvgPerf             float64
	WorstPerf           float64
}

// AblationGuard quantifies the post-quantization budget guard called out
// in DESIGN.md: with the guard off, nearest-step rounding can land above
// the cap; with it on, predicted compliance is restored at a small
// performance cost. Run on one mix per class at a 60% budget; the
// (mix, variant) sweep fans out on the worker pool.
func (l *Lab) AblationGuard() ([]AblationRow, error) {
	cfg := l.Opt.SimConfig(l.Opt.Cores)
	variants := []struct {
		name string
		mk   func() policy.Policy
	}{
		{"guard-on", func() policy.Policy { return &policy.FastCap{Guard: true} }},
		{"guard-off", func() policy.Policy { return &policy.FastCap{Guard: false} }},
	}
	mixNames := []string{"ILP1", "MID2", "MEM2", "MIX3"}
	type job struct {
		mixName string
		variant int
	}
	var jobs []job
	for _, mixName := range mixNames {
		for vi := range variants {
			jobs = append(jobs, job{mixName: mixName, variant: vi})
		}
	}
	out := make([]AblationRow, len(jobs))
	err := l.parallelFor(len(jobs), func(i int) error {
		j := jobs[i]
		v := variants[j.variant]
		mix, err := workload.MixByName(j.mixName)
		if err != nil {
			return err
		}
		res, base, err := l.runPair(mix, cfg, 0.60, v.mk())
		if err != nil {
			return err
		}
		row := AblationRow{Mix: j.mixName, Variant: v.name}
		row.AvgPowerNorm = res.AvgPowerW() / res.PeakW
		row.MaxPowerNorm = res.MaxEpochPowerW() / res.PeakW
		over := 0
		for _, e := range res.Epochs {
			if e.AvgPowerW > e.BudgetW*1.01 {
				over++
			}
		}
		row.OverBudgetEpochsPct = float64(over) / float64(len(res.Epochs)) * 100
		norm, err := res.NormalizedPerf(base)
		if err != nil {
			return err
		}
		s := stats.SummarizePerf(norm)
		row.AvgPerf, row.WorstPerf = s.Avg, s.Worst
		out[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
