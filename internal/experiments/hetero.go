package experiments

import (
	"fmt"

	"repro/internal/cpusim"
	"repro/internal/dvfs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// littlePower calibrates an efficiency core: a fraction of the big
// core's dynamic draw with a lower leakage floor, in line with the
// big.LITTLE parts the ROADMAP points at.
func littlePower() cpusim.PowerConfig {
	return cpusim.PowerConfig{DynMaxW: 1.5, StaticW: 0.2, GateFrac: 0.12}
}

// BigLittleConfig builds an asymmetric machine of nBig paper-class
// cores (2.2–4.0 GHz, default power) and nLittle efficiency cores
// (1.2–2.4 GHz, ~1/3 the dynamic power, 25% higher ExecCPI), on the
// default memory system for the total core count.
func BigLittleConfig(o Options, nBig, nLittle int) sim.Config {
	cfg := o.SimConfig(nBig + nLittle)
	cfg.Machine = &sim.MachineSpec{
		Name: fmt.Sprintf("bigLITTLE-%d+%d", nBig, nLittle),
		Classes: []sim.CoreClass{
			{Name: "big", Count: nBig},
			{Name: "little", Count: nLittle,
				Ladder:       dvfs.EfficiencyCoreLadder(),
				Power:        littlePower(),
				ExecCPIScale: 1.25},
		},
	}
	return cfg
}

// BinnedConfig builds a machine of nFast full-bin cores and nSlow
// slow-bin cores: the same design, with the slow bin derated to
// 2.0–3.6 GHz and a slightly lower peak dynamic power.
func BinnedConfig(o Options, nFast, nSlow int) sim.Config {
	cfg := o.SimConfig(nFast + nSlow)
	cfg.Machine = &sim.MachineSpec{
		Name: fmt.Sprintf("binned-%d+%d", nFast, nSlow),
		Classes: []sim.CoreClass{
			{Name: "fast", Count: nFast},
			{Name: "slow", Count: nSlow,
				Ladder: dvfs.BinnedCoreLadder(),
				Power:  cpusim.PowerConfig{DynMaxW: 4.2, StaticW: 0.5, GateFrac: 0.15}},
		},
	}
	return cfg
}

// HeteroRow is one (machine, mix, policy) cell of the heterogeneity
// sweep: power control and fairness on an asymmetric machine, with
// performance normalized to the same machine's all-max baseline.
type HeteroRow struct {
	Machine string
	Mix     string
	Policy  string
	// AvgPowerNorm / MaxPowerNorm are run-average and worst single-epoch
	// power over peak (cap compliance).
	AvgPowerNorm float64
	MaxPowerNorm float64
	// AvgPerf / WorstPerf / Jain summarize normalized per-application
	// performance; on an asymmetric machine fairness across classes is
	// the whole story, so Jain is reported alongside the Fig. 9 columns.
	AvgPerf   float64
	WorstPerf float64
	Jain      float64
}

// Heterogeneity sweeps FastCap against every comparison policy on
// asymmetric machines: a 4+12 big.LITTLE part and an 8+8 binned-core
// part at the default core count's budget of 60%, plus a small 2+2
// big.LITTLE machine where MaxBIPS's exhaustive search is tractable.
// All runs fan out on the Lab's worker pool; rows are assembled in
// submission order, so output is identical at any worker count.
func (l *Lab) Heterogeneity() ([]HeteroRow, error) {
	basePols := []string{"FastCap", "CPU-only", "Freq-Par", "Eql-Pwr", "Eql-Freq", "Greedy"}
	smallPols := append(append([]string(nil), basePols...), "MaxBIPS")
	scenarios := []struct {
		cfg   sim.Config
		mixes []string
		pols  []string
	}{
		{BigLittleConfig(l.Opt, 4, 12), []string{"MIX3", "MEM2"}, basePols},
		{BinnedConfig(l.Opt, 8, 8), []string{"MIX3"}, basePols},
		{BigLittleConfig(l.Opt, 2, 2), []string{"MIX3"}, smallPols},
	}

	type job struct {
		cfg sim.Config
		mix string
		pol string
	}
	var jobs []job
	for _, sc := range scenarios {
		for _, mix := range sc.mixes {
			for _, pol := range sc.pols {
				jobs = append(jobs, job{cfg: sc.cfg, mix: mix, pol: pol})
			}
		}
	}

	rows := make([]HeteroRow, len(jobs))
	err := l.parallelFor(len(jobs), func(i int) error {
		j := jobs[i]
		mix, err := workload.MixByName(j.mix)
		if err != nil {
			return err
		}
		pol, err := newPolicy(j.pol)
		if err != nil {
			return err
		}
		res, base, err := l.runPair(mix, j.cfg, 0.60, pol)
		if err != nil {
			return fmt.Errorf("%s: %w", j.cfg.Machine.Name, err)
		}
		norm, err := res.NormalizedPerf(base)
		if err != nil {
			return err
		}
		s := stats.SummarizePerf(norm)
		rows[i] = HeteroRow{
			Machine:      j.cfg.Machine.Name,
			Mix:          j.mix,
			Policy:       res.PolicyName,
			AvgPowerNorm: res.AvgPowerW() / res.PeakW,
			MaxPowerNorm: res.MaxEpochPowerW() / res.PeakW,
			AvgPerf:      s.Avg,
			WorstPerf:    s.Worst,
			Jain:         s.Jain,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
