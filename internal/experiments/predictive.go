package experiments

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/policy"
	"repro/internal/runner"
	"repro/internal/workload"
)

// PredictiveSweepRow is one (scenario, arbiter, budget, member) cell of
// the predictive-arbitration sweep: how fast freed watts reach a
// power-bound tenant after a phase change under the reactive slack
// reclaimer versus the forecast-driven predictive arbiter.
type PredictiveSweepRow struct {
	// Scenario names the phase-change shape: "step" (the donor's demand
	// collapses at one epoch) or "diurnal" (the surge tenant's demand
	// rises then relaxes on a day-like schedule).
	Scenario string
	Arbiter  string
	// BudgetFrac is the global budget as a fraction of the two members'
	// summed peaks.
	BudgetFrac float64
	Member     string
	Mix        string
	// TimeToReclaim counts the member's post-shift epochs spent
	// throttled (ThrottleFrac above the arbiters' 0.10 band): how long
	// the member waited for the watts the phase change freed. The
	// headline number for the surge tenant.
	TimeToReclaim int
	// OvershootWEpochs integrates max(0, GrantW − PowerW) over the run —
	// watt-epochs granted above measured draw, the cost of a cushion or
	// a misprediction.
	OvershootWEpochs float64
	// GInstr is the member's total retired work, in giga-instructions.
	GInstr    float64
	AvgGrantW float64
	AvgPowerW float64
	// FloorViolations / ClampViolations count epochs whose grant left
	// the member's [floor, peak] corridor. Must be zero: the clamp net
	// is what contains a mispredicting model.
	FloorViolations int
	ClampViolations int
}

// predScenario is one phase-change shape of the sweep.
type predScenario struct {
	name string
	// shift is the epoch of the first phase change — TimeToReclaim
	// counts throttled epochs from here on.
	shift func(epochs int) int
	// surgePhases/donorPhases build each member's schedule.
	surgePhases func(epochs int) workload.PhaseSchedule
	donorPhases func(epochs int) workload.PhaseSchedule
}

// PredictiveSweep runs a three-tenant fleet — a compute-bound surge
// tenant ("surge", ILP1) pressed against its cap and two donors
// ("don1" MIX3, "don2" MID1) whose phases go hard memory-bound —
// through two phase-changing scenarios at two global budgets, under
// the reactive slack arbiter and the predictive one:
//
//   - "step": both donors go memory-bound at a third of the run and
//     their draw collapses. The watts they stop drawing are the surge
//     tenant's to claim; TimeToReclaim measures the hand-off.
//   - "diurnal": the donors run a day shape — an overnight lull at a
//     quarter of the run, demand returning at three quarters.
//
// Budgets sit in the hand-off window, where the freed watts are both
// necessary and sufficient to unthrottle the surge tenant: tight
// enough that it is power-bound before the shift, loose enough that
// the donors' post-shift draw leaves it whole. The reactive arbiter
// walks a donor's grant toward its draw one gain-step per epoch; the
// predictive arbiter's demand is the forecast, whose trend term
// extrapolates the collapse, so the hand-off lands epochs earlier.
// Clusters fan out on the Lab's worker pool; rows are assembled in
// submission order, so output is identical at any worker count.
func (l *Lab) PredictiveSweep() ([]PredictiveSweepRow, error) {
	arbiters := []string{"slack", "predictive"}
	budgets := []float64{0.69, 0.705}
	epochs := l.Opt.Epochs

	// Phase Scale multiplies memory intensity: a large scale stalls the
	// donors' cores on memory, so their power draw — and therefore
	// their demand — collapses, freeing watts the throttled surge
	// tenant is waiting for. Even at Scale 1000 an 8-core member's
	// uncapped draw only falls ~10 W (frequency-driven power dominates
	// a stalled core's budget), which is why the sweep fields two
	// donors: together they free enough to unthrottle the surge tenant
	// outright.
	scenarios := []predScenario{
		{
			name:        "step",
			shift:       func(e int) int { return e / 3 },
			surgePhases: func(int) workload.PhaseSchedule { return nil },
			donorPhases: func(e int) workload.PhaseSchedule {
				return workload.PhaseSchedule{{Epoch: e / 3, Scale: 1000}}
			},
		},
		{
			name:        "diurnal",
			shift:       func(e int) int { return e / 4 },
			surgePhases: func(int) workload.PhaseSchedule { return nil },
			donorPhases: func(e int) workload.PhaseSchedule {
				return workload.PhaseSchedule{
					{Epoch: e / 4, Scale: 1000},  // overnight lull: draw drops
					{Epoch: 3 * e / 4, Scale: 1}, // morning: demand returns
				}
			},
		},
	}

	type memberSpec struct {
		id, mix string
		phases  workload.PhaseSchedule
	}
	newMember := func(sp memberSpec) (cluster.Member, float64, error) {
		mix, err := workload.MixByName(sp.mix)
		if err != nil {
			return cluster.Member{}, 0, err
		}
		cfg := l.Opt.SimConfig(8)
		cfg.PhaseSchedule = sp.phases
		ses, err := runner.NewSession(runner.Config{
			Sim: cfg, Mix: mix, BudgetFrac: 1,
			Epochs: epochs, Policy: policy.NewFastCap(),
		})
		if err != nil {
			return cluster.Member{}, 0, fmt.Errorf("predictive member %s: %w", sp.id, err)
		}
		return cluster.Member{ID: sp.id, Session: ses}, ses.PeakPowerW(), nil
	}

	type job struct {
		sc   predScenario
		arb  string
		frac float64
	}
	var jobs []job
	for _, sc := range scenarios {
		for _, frac := range budgets {
			for _, arb := range arbiters {
				jobs = append(jobs, job{sc: sc, arb: arb, frac: frac})
			}
		}
	}

	const throttleBand = 0.10 // both arbiters' power-bound threshold
	rows := make([][]PredictiveSweepRow, len(jobs))
	jobErr := l.parallelFor(len(jobs), func(i int) error {
		j := jobs[i]
		specs := []memberSpec{
			{id: "surge", mix: "ILP1", phases: j.sc.surgePhases(epochs)},
			{id: "don1", mix: "MIX3", phases: j.sc.donorPhases(epochs)},
			{id: "don2", mix: "MID1", phases: j.sc.donorPhases(epochs)},
		}
		members := make([]cluster.Member, len(specs))
		peaks := make(map[string]float64, len(specs))
		sumPeak := 0.0
		for k, sp := range specs {
			m, peak, err := newMember(sp)
			if err != nil {
				return err
			}
			members[k] = m
			peaks[sp.id] = peak
			sumPeak += peak
		}
		arb, ok := cluster.ArbiterByName(j.arb)
		if !ok {
			return fmt.Errorf("unknown arbiter %q", j.arb)
		}
		coord, err := cluster.New(cluster.Config{
			BudgetW: j.frac * sumPeak, Arbiter: arb, Workers: 1,
		}, members)
		if err != nil {
			return err
		}

		type acc struct {
			grant, power, instr, overshoot float64
			epochs, reclaim, floor, clamp  int
		}
		accs := map[string]*acc{}
		shift := j.sc.shift(epochs)
		for e := 0; ; e++ {
			rec, err := coord.Step(context.Background())
			if errors.Is(err, cluster.ErrDone) {
				break
			}
			if err != nil {
				return fmt.Errorf("%s/%s@%.0f%%: %w", j.sc.name, j.arb, j.frac*100, err)
			}
			for _, mg := range rec.Members {
				a := accs[mg.ID]
				if a == nil {
					a = &acc{}
					accs[mg.ID] = a
				}
				a.grant += mg.GrantW
				a.power += mg.PowerW
				a.instr += mg.Instr
				if over := mg.GrantW - mg.PowerW; over > 0 {
					a.overshoot += over
				}
				a.epochs++
				if rec.Epoch >= shift && mg.ThrottleFrac > throttleBand {
					a.reclaim++
				}
				floor := cluster.DefaultFloorFrac * peaks[mg.ID]
				if mg.GrantW < floor-1e-9 {
					a.floor++
				}
				if mg.GrantW > peaks[mg.ID]+1e-9 {
					a.clamp++
				}
			}
		}

		out := make([]PredictiveSweepRow, 0, len(specs))
		for _, sp := range specs {
			a := accs[sp.id]
			if a == nil || a.epochs == 0 {
				return fmt.Errorf("%s/%s@%.0f%%: member %s never ran", j.sc.name, j.arb, j.frac*100, sp.id)
			}
			n := float64(a.epochs)
			out = append(out, PredictiveSweepRow{
				Scenario: j.sc.name, Arbiter: j.arb, BudgetFrac: j.frac,
				Member: sp.id, Mix: sp.mix,
				TimeToReclaim:    a.reclaim,
				OvershootWEpochs: a.overshoot,
				GInstr:           a.instr / 1e9,
				AvgGrantW:        a.grant / n, AvgPowerW: a.power / n,
				FloorViolations: a.floor, ClampViolations: a.clamp,
			})
		}
		rows[i] = out
		l.log("ran predictive %-7s %-10s budget=%.0f%%  surge reclaim %d epochs",
			j.sc.name, j.arb, j.frac*100, out[0].TimeToReclaim)
		return nil
	})
	if jobErr != nil {
		return nil, jobErr
	}
	var flat []PredictiveSweepRow
	for _, r := range rows {
		flat = append(flat, r...)
	}
	return flat, nil
}
