package experiments

import (
	"reflect"
	"testing"
)

// The acceptance assertion of the SLO layer: on the churning fleet the
// contract-aware arbiter keeps the gold tenant inside its BIPS contract
// for at least as many epochs as the contract-blind slack arbiter at
// every budget, and strictly more at the tight one (where the mid-run
// arrival squeezes the contract hardest).
func TestSLOSweepContractBeatsSlack(t *testing.T) {
	rows, err := clusterLab(0).SLOSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 2 arbiters × 2 budgets × 3 members
		t.Fatalf("sweep produced %d rows, want 12", len(rows))
	}
	find := func(arb string, frac float64, member string) SLOSweepRow {
		for _, r := range rows {
			if r.Arbiter == arb && r.BudgetFrac == frac && r.Member == member {
				return r
			}
		}
		t.Fatalf("row %s/%.2f/%s missing", arb, frac, member)
		return SLOSweepRow{}
	}

	for _, r := range rows {
		if r.Member == "gold" && r.TargetBIPS <= 0 {
			t.Errorf("%s@%.0f%%: gold row lost its contract", r.Arbiter, r.BudgetFrac*100)
		}
		if r.Member != "gold" && r.TargetBIPS != 0 {
			t.Errorf("%s@%.0f%%: best-effort member %s has a target", r.Arbiter, r.BudgetFrac*100, r.Member)
		}
		if r.SatisfiedFrac < 0 || r.SatisfiedFrac > 1 {
			t.Errorf("%s@%.0f%%/%s: satisfied fraction %.3f outside [0, 1]", r.Arbiter, r.BudgetFrac*100, r.Member, r.SatisfiedFrac)
		}
	}
	for _, frac := range []float64{0.55, 0.70} {
		slo := find("slo", frac, "gold")
		slack := find("slack", frac, "gold")
		if slo.SatisfiedFrac < slack.SatisfiedFrac {
			t.Errorf("budget %.0f%%: slo satisfied %.3f < slack %.3f — contract-aware arbiter lost to the blind one",
				frac*100, slo.SatisfiedFrac, slack.SatisfiedFrac)
		}
	}
	sloTight := find("slo", 0.55, "gold")
	slackTight := find("slack", 0.55, "gold")
	if sloTight.SatisfiedFrac <= slackTight.SatisfiedFrac {
		t.Errorf("tight budget: slo satisfied %.3f, slack %.3f — want a strict win",
			sloTight.SatisfiedFrac, slackTight.SatisfiedFrac)
	}
}

// The sweep is deterministic across Lab worker counts, like every other
// figure.
func TestSLOSweepDeterministicAcrossWorkers(t *testing.T) {
	serial, err := clusterLab(1).SLOSweep()
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := clusterLab(8).SLOSweep()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("SLOSweep output differs between Workers=1 and Workers=8")
	}
}
