package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/qmodel"
)

// SyntheticSnapshot builds a realistic policy input for n cores (half
// CPU-bound, half memory-bound) used by the timing studies.
func SyntheticSnapshot(n int, budgetFrac float64) *policy.Snapshot {
	coreL, memL := dvfs.DefaultCoreLadder(), dvfs.DefaultMemLadder()
	s := &policy.Snapshot{
		ZBar:          make([]float64, n),
		C:             make([]float64, n),
		IPA:           make([]float64, n),
		Power:         power.System{Ps: 12, Mem: power.Model{Scale: 26, Exp: 1, Static: 10}},
		MemStats:      []qmodel.MemStats{{Q: 2.1, U: 1.7, Sm: 27}},
		AccessProb:    make([][]float64, n),
		SbBar:         5,
		CoreLadder:    coreL,
		MemLadder:     memL,
		MeasuredCoreW: make([]float64, n),
		CurCoreSteps:  make([]int, n),
		CurMemStep:    memL.MaxStep(),
	}
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			s.ZBar[i] = 1500 + float64(i)*13
			s.IPA[i] = 4000
		} else {
			s.ZBar[i] = 90 + float64(i)*2
			s.IPA[i] = 55
		}
		s.C[i] = 7.5
		s.IPA[i] += float64(i % 7)
		s.Power.Cores = append(s.Power.Cores, power.Model{
			Scale: 3.8 + 0.1*float64(i%8), Exp: 2.2 + 0.05*float64(i%10), Static: 0.5,
		})
		s.AccessProb[i] = []float64{1}
		s.MeasuredCoreW[i] = 3.5
		s.CurCoreSteps[i] = coreL.MaxStep()
	}
	s.BudgetW = budgetFrac * s.Power.Peak()
	return s
}

// OverheadRow is one row of the paper's algorithm-overhead study
// (§IV-B): mean FastCap execution time per invocation and its share of
// a 5 ms epoch.
type OverheadRow struct {
	Cores      int
	MeanUs     float64
	PctOfEpoch float64
}

// Overhead times the FastCap solver for 16/32/64 cores, reproducing the
// paper's 33.5/64.9/133.5 µs measurement (absolute values differ with
// hardware; linearity in N is the claim under test). iters ≤ 0 uses a
// default of 2000.
func Overhead(iters int) ([]OverheadRow, error) {
	if iters <= 0 {
		iters = 2000
	}
	var out []OverheadRow
	for _, n := range []int{16, 32, 64} {
		s := SyntheticSnapshot(n, 0.6)
		in := snapshotInputs(s)
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := in.Solve(); err != nil {
				return nil, err
			}
		}
		us := float64(time.Since(start).Microseconds()) / float64(iters)
		out = append(out, OverheadRow{Cores: n, MeanUs: us, PctOfEpoch: us / 5000 * 100})
	}
	return out, nil
}

// SyntheticSnapshotInputs builds optimizer inputs directly (benchmarks).
func SyntheticSnapshotInputs(n int, budgetFrac float64) *core.Inputs {
	return snapshotInputs(SyntheticSnapshot(n, budgetFrac))
}

// snapshotInputs lifts a Snapshot into optimizer inputs (mirrors the
// policy package's internal helper without exporting it).
func snapshotInputs(s *policy.Snapshot) *core.Inputs {
	mc := &qmodel.Multi{Stats: s.MemStats, Access: s.AccessProb}
	return &core.Inputs{
		ZBar:         s.ZBar,
		C:            s.C,
		Power:        s.Power,
		Response:     func(i int, sb float64) float64 { return mc.CoreResponse(i, sb) },
		SbBar:        s.SbBar,
		SbCandidates: core.SbCandidatesFromLadder(s.SbBar, s.MemLadder),
		Budget:       s.BudgetW,
		MaxZRatio:    s.CoreLadder.StepRange(),
	}
}

// Table1Row is one row of the paper's Table I, measured: per-decision
// latency of each policy's search at a given core count.
type Table1Row struct {
	Method string
	Cores  int
	MeanUs float64
	Note   string
}

// Table1 measures the decision latency of FastCap against the
// exhaustive (MaxBIPS-style), heuristic (Eql-Freq grid) and equal-share
// searches, demonstrating the complexity separation of the paper's
// Table I: FastCap scales linearly in N while exhaustive search
// explodes beyond a handful of cores.
func Table1(iters int) ([]Table1Row, error) {
	if iters <= 0 {
		iters = 200
	}
	var out []Table1Row
	timeIt := func(f func() error) (float64, error) {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := f(); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Microseconds()) / float64(iters), nil
	}

	for _, n := range []int{2, 4} {
		s := SyntheticSnapshot(n, 0.6)
		p := policy.NewMaxBIPS()
		us, err := timeIt(func() error { _, err := p.Decide(s); return err })
		if err != nil {
			return nil, err
		}
		out = append(out, Table1Row{Method: "Exhaustive [14]", Cores: n, MeanUs: us, Note: "O(M·F^N)"})
	}
	// The interior-point reference converges in hundreds of milliseconds;
	// a handful of iterations suffices for a stable mean.
	numIters := iters / 40
	if numIters < 2 {
		numIters = 2
	}
	for _, n := range []int{16} {
		in := snapshotInputs(SyntheticSnapshot(n, 0.6))
		start := time.Now()
		for i := 0; i < numIters; i++ {
			if _, err := in.SolveNumeric(core.DefaultNumericOptions()); err != nil {
				return nil, err
			}
		}
		us := float64(time.Since(start).Microseconds()) / float64(numIters)
		out = append(out, Table1Row{Method: "Numeric Opt [20]", Cores: n, MeanUs: us, Note: "interior point, many steps"})
	}
	for _, n := range []int{16, 64, 256} {
		s := SyntheticSnapshot(n, 0.6)
		for _, m := range []struct {
			name string
			pol  policy.Policy
			note string
		}{
			{"Eql-Freq [42]", policy.NewEqlFreq(), "O(M·F·N)"},
			{"Eql-Pwr [16]", policy.NewEqlPwr(), "O(M·F·N)"},
			{"Greedy [18,19]", policy.NewGreedy(), "O(M·F·N·log N)"},
			{"FastCap", policy.NewFastCap(), "O(N·log M)"},
		} {
			us, err := timeIt(func() error { _, err := m.pol.Decide(s); return err })
			if err != nil {
				return nil, err
			}
			out = append(out, Table1Row{Method: m.name, Cores: n, MeanUs: us, Note: m.note})
		}
	}
	return out, nil
}
