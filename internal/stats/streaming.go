package stats

import "math"

// Streaming is an O(1)-memory online summary: count, sum, extremes, and
// Welford-updated mean/variance. It exists for long-running telemetry
// (the metrics histograms observe every epoch of a daemon that may run
// for days) where keeping raw samples for Percentile would grow without
// bound. The zero value is an empty summary, ready to use.
//
// Numerics: Welford's recurrence keeps the variance update numerically
// stable (no catastrophic cancellation of sum-of-squares minus
// squared-sum), and every update is O(1). A NaN observation poisons
// Sum/Mean/StdDev — like Percentile, any numeric answer over NaN data
// would be silently wrong — while Count keeps counting.
//
// Streaming is not goroutine-safe; callers that share one (the metrics
// histogram) serialize access themselves.
type Streaming struct {
	n        uint64
	sum      float64
	min, max float64
	mean, m2 float64
}

// Observe folds one sample into the summary.
func (s *Streaming) Observe(x float64) {
	s.n++
	s.sum += x
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// Merge folds another summary into this one (Chan et al.'s parallel
// variance combination), so per-worker summaries can be reduced without
// revisiting samples.
func (s *Streaming) Merge(o Streaming) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := s.n + o.n
	d := o.mean - s.mean
	s.mean += d * float64(o.n) / float64(n)
	s.m2 += o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	s.sum += o.sum
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n = n
}

// Count returns the number of samples observed.
func (s Streaming) Count() uint64 { return s.n }

// Sum returns the running total.
func (s Streaming) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 when empty (matching the
// batch stats.Mean).
func (s Streaming) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// Min returns the minimum, or +Inf when empty (matching the batch
// stats.Min).
func (s Streaming) Min() float64 {
	if s.n == 0 {
		return math.Inf(1)
	}
	return s.min
}

// Max returns the maximum, or -Inf when empty (matching the batch
// stats.Max).
func (s Streaming) Max() float64 {
	if s.n == 0 {
		return math.Inf(-1)
	}
	return s.max
}

// StdDev returns the population standard deviation, 0 for fewer than
// two samples (matching the batch stats.StdDev).
func (s Streaming) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n))
}

// BucketIndex returns the index of the first bound with x <= bound, or
// len(bounds) when x exceeds every bound (the +Inf overflow bucket).
// Bounds must be sorted ascending. Linear scan: metric histograms use a
// dozen-odd buckets, where the scan beats binary search's branches.
func BucketIndex(bounds []float64, x float64) int {
	for i, b := range bounds {
		if x <= b {
			return i
		}
	}
	return len(bounds)
}

// ExpBuckets returns n ascending bounds starting at start, each factor
// times the previous — the standard shape for latency histograms, where
// interesting behavior spans orders of magnitude. Panics on a
// non-positive start or n, or factor <= 1, since a malformed bucket
// layout is a programming error best caught at construction.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		panic("stats: ExpBuckets needs start > 0, factor > 1, n > 0")
	}
	bs := make([]float64, n)
	b := start
	for i := range bs {
		bs[i] = b
		b *= factor
	}
	return bs
}
