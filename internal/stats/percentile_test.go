package stats

import (
	"math"
	"testing"
)

// Out-of-range and NaN handling: ranks clamp to the data range instead
// of extrapolating, and NaN anywhere (rank or samples) yields NaN.
func TestPercentileEdgeCases(t *testing.T) {
	nan := math.NaN()
	xs := []float64{4, 1, 3, 2}
	cases := []struct {
		name string
		xs   []float64
		p    float64
		want float64 // NaN means "want NaN"
	}{
		{"p below zero clamps to min", xs, -10, 1},
		{"p far below zero clamps to min", xs, math.Inf(-1), 1},
		{"p above 100 clamps to max", xs, 250, 4},
		{"p far above 100 clamps to max", xs, math.Inf(1), 4},
		{"p exactly 0", xs, 0, 1},
		{"p exactly 100", xs, 100, 4},
		{"interior interpolation", xs, 50, 2.5},
		{"NaN rank", xs, nan, nan},
		{"NaN sample", []float64{1, nan, 3}, 50, nan},
		{"all NaN samples", []float64{nan, nan}, 50, nan},
		{"empty", nil, 50, 0},
		{"single sample any p", []float64{7}, 99, 7},
		{"single sample negative p", []float64{7}, -1, 7},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Percentile(c.xs, c.p)
			if math.IsNaN(c.want) {
				if !math.IsNaN(got) {
					t.Errorf("Percentile(%v, %g) = %g, want NaN", c.xs, c.p, got)
				}
				return
			}
			if math.Abs(got-c.want) > 1e-12 {
				t.Errorf("Percentile(%v, %g) = %g, want %g", c.xs, c.p, got, c.want)
			}
		})
	}
}

// Percentiles must agree with Percentile slot for slot — same clamping,
// same NaN propagation, same empty-slice zero — across every edge case
// of the single-rank table, evaluated in one batch.
func TestPercentilesMatchPercentile(t *testing.T) {
	nan := math.NaN()
	samples := [][]float64{
		{4, 1, 3, 2},
		{7},
		{1, nan, 3},
		{nan, nan},
		nil,
		{},
	}
	ps := []float64{-10, math.Inf(-1), 0, 25, 50, 95, 99, 100, 250, math.Inf(1), nan}
	for _, xs := range samples {
		got := Percentiles(xs, ps...)
		if len(got) != len(ps) {
			t.Fatalf("Percentiles(%v) returned %d values for %d ranks", xs, len(got), len(ps))
		}
		for i, p := range ps {
			want := Percentile(xs, p)
			if math.IsNaN(want) {
				if !math.IsNaN(got[i]) {
					t.Errorf("Percentiles(%v)[p=%g] = %g, want NaN", xs, p, got[i])
				}
				continue
			}
			if got[i] != want {
				t.Errorf("Percentiles(%v)[p=%g] = %g, want %g (Percentile)", xs, p, got[i], want)
			}
		}
	}
	if out := Percentiles([]float64{1, 2, 3}); len(out) != 0 {
		t.Errorf("Percentiles with no ranks returned %v, want empty", out)
	}
}
