package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanMaxMin(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := Mean(xs); got != 2.8 {
		t.Errorf("Mean = %g", got)
	}
	if got := Max(xs); got != 5 {
		t.Errorf("Max = %g", got)
	}
	if got := Min(xs); got != 1 {
		t.Errorf("Min = %g", got)
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !math.IsInf(Max(nil), -1) || !math.IsInf(Min(nil), 1) {
		t.Error("empty Max/Min not infinite")
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("constant StdDev = %g", got)
	}
	if got := StdDev([]float64{1, 3}); math.Abs(got-1) > 1e-12 {
		t.Errorf("StdDev = %g, want 1", got)
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("singleton StdDev != 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {75, 40}, {-5, 10}, {110, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile != 0")
	}
	// Does not mutate input.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal Jain = %g, want 1", got)
	}
	// One app hogging everything among n: index → 1/n.
	if got := JainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("hog Jain = %g, want 0.25", got)
	}
	if JainIndex(nil) != 0 || JainIndex([]float64{0, 0}) != 0 {
		t.Error("degenerate Jain not 0")
	}
}

func TestJainBoundsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		nonzero := false
		for i, r := range raw {
			xs[i] = float64(r)
			if r != 0 {
				nonzero = true
			}
		}
		if !nonzero {
			return JainIndex(xs) == 0
		}
		j := JainIndex(xs)
		return j >= 1/float64(len(xs))-1e-12 && j <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarizePerf(t *testing.T) {
	s := SummarizePerf([]float64{1.1, 1.2, 1.5, 1.2})
	if math.Abs(s.Avg-1.25) > 1e-12 {
		t.Errorf("Avg = %g", s.Avg)
	}
	if s.Worst != 1.5 {
		t.Errorf("Worst = %g", s.Worst)
	}
	if s.Jain <= 0.9 || s.Jain > 1 {
		t.Errorf("Jain = %g", s.Jain)
	}
}
