// Package stats provides the numeric summaries used by the experiment
// harness: means, extremes, Jain's fairness index, and normalized-
// performance aggregation as reported in the paper's figures.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mu := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - mu
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile by linear interpolation.
// Out-of-range ranks clamp — p < 0 behaves as 0 (the minimum) and
// p > 100 as 100 (the maximum) — never extrapolating beyond the data.
// A NaN p, or any NaN sample, yields NaN: sorting NaNs produces an
// arbitrary permutation, so any numeric answer would be silently wrong.
// An empty slice returns 0, matching Mean.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if math.IsNaN(p) {
		return math.NaN()
	}
	for _, x := range xs {
		if math.IsNaN(x) {
			return math.NaN()
		}
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	return sortedPercentile(ys, p)
}

// sortedPercentile is the shared rank computation over an already
// ascending, NaN-free, non-empty slice.
func sortedPercentile(ys []float64, p float64) float64 {
	if p <= 0 {
		return ys[0]
	}
	if p >= 100 {
		return ys[len(ys)-1]
	}
	pos := p / 100 * float64(len(ys)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(ys) {
		return ys[len(ys)-1]
	}
	return ys[lo]*(1-frac) + ys[lo+1]*frac
}

// Percentiles evaluates several percentiles of one sample with a single
// copy-and-sort, returning one value per requested rank. Each output is
// exactly what Percentile(xs, p) returns — the same clamping (p ≤ 0 is
// the minimum, p ≥ 100 the maximum), the same NaN propagation (a NaN
// rank yields NaN in its slot; any NaN sample poisons every slot), and
// 0 for an empty sample — just without re-sorting per rank.
func Percentiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		return out
	}
	for _, x := range xs {
		if math.IsNaN(x) {
			for i := range out {
				out[i] = math.NaN()
			}
			return out
		}
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	for i, p := range ps {
		if math.IsNaN(p) {
			out[i] = math.NaN()
			continue
		}
		out[i] = sortedPercentile(ys, p)
	}
	return out
}

// JainIndex computes Jain's fairness index (Σx)²/(n·Σx²) ∈ (0, 1]:
// 1 means perfectly equal allocation.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// PerfSummary aggregates normalized per-application performance the way
// the paper's Figs. 6, 9–11, 13 report it: the average and the worst
// (highest, since >1 means slower) across applications.
type PerfSummary struct {
	Avg   float64
	Worst float64
	Jain  float64
}

// SummarizePerf builds a PerfSummary from per-application normalized
// performance values (capped time-per-instruction / baseline).
func SummarizePerf(norm []float64) PerfSummary {
	return PerfSummary{Avg: Mean(norm), Worst: Max(norm), Jain: JainIndex(norm)}
}
