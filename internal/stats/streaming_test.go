package stats

import (
	"math"
	"testing"
)

// The streaming summary must agree with the batch estimators on the
// same samples — it is the same statistics, computed incrementally.
func TestStreamingMatchesBatch(t *testing.T) {
	cases := [][]float64{
		{},
		{3.5},
		{1, 2, 3, 4, 5},
		{-7, 0.25, 1e6, -3.5, 42, 42},
		{0.001, 0.002, 0.0005, 0.009, 0.004},
	}
	for _, xs := range cases {
		var s Streaming
		for _, x := range xs {
			s.Observe(x)
		}
		if got, want := s.Count(), uint64(len(xs)); got != want {
			t.Errorf("%v: Count = %d, want %d", xs, got, want)
		}
		approx := func(name string, got, want float64) {
			if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Errorf("%v: %s = %g, want %g", xs, name, got, want)
			}
		}
		approx("Mean", s.Mean(), Mean(xs))
		approx("Min", s.Min(), Min(xs))
		approx("Max", s.Max(), Max(xs))
		approx("StdDev", s.StdDev(), StdDev(xs))
		sum := 0.0
		for _, x := range xs {
			sum += x
		}
		approx("Sum", s.Sum(), sum)
	}
}

// Merging per-shard summaries must give the same answer as observing
// the concatenated samples in one summary.
func TestStreamingMerge(t *testing.T) {
	a := []float64{1, 2, 3, 100}
	b := []float64{-5, 0.5, 7}
	var sa, sb, all Streaming
	for _, x := range a {
		sa.Observe(x)
		all.Observe(x)
	}
	for _, x := range b {
		sb.Observe(x)
		all.Observe(x)
	}
	sa.Merge(sb)
	if sa.Count() != all.Count() {
		t.Fatalf("Count = %d, want %d", sa.Count(), all.Count())
	}
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"Mean", sa.Mean(), all.Mean()},
		{"StdDev", sa.StdDev(), all.StdDev()},
		{"Min", sa.Min(), all.Min()},
		{"Max", sa.Max(), all.Max()},
		{"Sum", sa.Sum(), all.Sum()},
	} {
		if math.Abs(c.got-c.want) > 1e-9*math.Max(1, math.Abs(c.want)) {
			t.Errorf("merged %s = %g, want %g", c.name, c.got, c.want)
		}
	}

	// Merging into or from an empty summary is the identity.
	var empty Streaming
	before := sa
	sa.Merge(empty)
	if sa != before {
		t.Errorf("merge of empty changed the summary: %+v -> %+v", before, sa)
	}
	empty.Merge(before)
	if empty != before {
		t.Errorf("merge into empty did not copy: %+v, want %+v", empty, before)
	}
}

func TestStreamingEmpty(t *testing.T) {
	var s Streaming
	if s.Mean() != 0 || s.StdDev() != 0 || s.Sum() != 0 || s.Count() != 0 {
		t.Errorf("empty summary not zero: %+v", s)
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Errorf("empty extremes = (%g, %g), want (+Inf, -Inf)", s.Min(), s.Max())
	}
}

func TestStreamingNaNPoisons(t *testing.T) {
	var s Streaming
	s.Observe(1)
	s.Observe(math.NaN())
	s.Observe(2)
	if s.Count() != 3 {
		t.Errorf("Count = %d, want 3 (NaN still counts)", s.Count())
	}
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Sum()) {
		t.Errorf("NaN observation did not poison Mean/Sum: %g, %g", s.Mean(), s.Sum())
	}
}

func TestBucketIndex(t *testing.T) {
	bounds := []float64{0.001, 0.01, 0.1, 1}
	for _, c := range []struct {
		x    float64
		want int
	}{
		{0, 0}, {0.001, 0}, {0.0011, 1}, {0.05, 2}, {1, 3}, {1.5, 4},
		{math.Inf(1), 4}, {math.Inf(-1), 0},
	} {
		if got := BucketIndex(bounds, c.x); got != c.want {
			t.Errorf("BucketIndex(%g) = %d, want %d", c.x, got, c.want)
		}
	}
	if got := BucketIndex(nil, 5); got != 0 {
		t.Errorf("BucketIndex(nil, 5) = %d, want 0", got)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("bucket[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	for _, bad := range []func(){
		func() { ExpBuckets(0, 2, 3) },
		func() { ExpBuckets(1, 1, 3) },
		func() { ExpBuckets(1, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("malformed ExpBuckets did not panic")
				}
			}()
			bad()
		}()
	}
}
