package engine

import (
	"math/rand"
	"testing"
)

// Raw floor: N timers, each re-arming itself at a sim-like delay.
func BenchmarkTimerCycle(b *testing.B) {
	e := New()
	rng := rand.New(rand.NewSource(1))
	const pop = 30
	timers := make([]*Timer, pop)
	delays := make([]float64, pop)
	for i := 0; i < pop; i++ {
		i := i
		delays[i] = 5 + rng.Float64()*290 // ~0.2 events/ns like the epoch loop
		timers[i] = e.NewTimer(func() { timers[i].Reset(delays[i]) })
		timers[i].Reset(delays[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
