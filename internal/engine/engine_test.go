package engine

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleAndRun(t *testing.T) {
	e := New()
	var fired []float64
	e.Schedule(10, func() { fired = append(fired, e.Now()) })
	e.Schedule(5, func() { fired = append(fired, e.Now()) })
	e.Schedule(20, func() { fired = append(fired, e.Now()) })
	e.RunUntil(15)
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 10 {
		t.Fatalf("fired = %v, want [5 10]", fired)
	}
	if e.Now() != 15 {
		t.Errorf("Now = %g, want 15", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	e.RunUntil(25)
	if len(fired) != 3 || fired[2] != 20 {
		t.Fatalf("fired = %v, want third at 20", fired)
	}
}

func TestFIFOWithinSameInstant(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(7, func() { order = append(order, i) })
	}
	e.RunUntil(7)
	for i, got := range order {
		if got != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestEventsCreatedDuringRun(t *testing.T) {
	e := New()
	var fired []float64
	e.Schedule(1, func() {
		fired = append(fired, e.Now())
		e.Schedule(1, func() { fired = append(fired, e.Now()) }) // at t=2
		e.Schedule(100, func() { fired = append(fired, e.Now()) })
	})
	e.RunUntil(10)
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("fired = %v, want [1 2]", fired)
	}
}

func TestZeroAndNegativeDelay(t *testing.T) {
	e := New()
	e.RunUntil(5)
	var at []float64
	e.Schedule(0, func() { at = append(at, e.Now()) })
	e.Schedule(-3, func() { at = append(at, e.Now()) })
	e.Schedule(math.NaN(), func() { at = append(at, e.Now()) })
	e.RunUntil(5)
	if len(at) != 3 {
		t.Fatalf("fired %d, want 3", len(at))
	}
	for _, v := range at {
		if v != 5 {
			t.Errorf("fired at %g, want 5", v)
		}
	}
}

func TestAtClampsToPast(t *testing.T) {
	e := New()
	e.RunUntil(10)
	var at float64 = -1
	e.At(3, func() { at = e.Now() }) // in the past → fires "now"
	e.RunUntil(10)
	if at != 10 {
		t.Errorf("past event fired at %g, want 10", at)
	}
}

func TestRunUntilBackwardsIsNoop(t *testing.T) {
	e := New()
	e.RunUntil(10)
	fired := false
	e.Schedule(1, func() { fired = true })
	e.RunUntil(5) // in the past: no-op
	if fired {
		t.Error("event fired on backwards RunUntil")
	}
	if e.Now() != 10 {
		t.Errorf("Now moved backwards to %g", e.Now())
	}
	e.RunUntil(math.NaN())
	if e.Now() != 10 {
		t.Errorf("NaN horizon moved clock to %g", e.Now())
	}
}

func TestStep(t *testing.T) {
	e := New()
	if e.Step() {
		t.Error("Step on empty engine returned true")
	}
	n := 0
	e.Schedule(2, func() { n++ })
	e.Schedule(1, func() { n++ })
	if !e.Step() || e.Now() != 1 || n != 1 {
		t.Errorf("first Step: now=%g n=%d", e.Now(), n)
	}
	if !e.Step() || e.Now() != 2 || n != 2 {
		t.Errorf("second Step: now=%g n=%d", e.Now(), n)
	}
}

func TestHeapOrderRandomized(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(42))
	const n = 2000
	times := make([]float64, n)
	for i := range times {
		times[i] = rng.Float64() * 1e6
	}
	var fired []float64
	for _, tt := range times {
		tt := tt
		e.Schedule(tt, func() { fired = append(fired, tt) })
	}
	e.RunUntil(2e6)
	if len(fired) != n {
		t.Fatalf("fired %d, want %d", len(fired), n)
	}
	if !sort.Float64sAreSorted(fired) {
		t.Error("events fired out of order")
	}
}

func TestClockMonotoneDuringCallbacks(t *testing.T) {
	e := New()
	prev := -1.0
	rng := rand.New(rand.NewSource(7))
	var check func()
	count := 0
	check = func() {
		if e.Now() < prev {
			t.Fatalf("clock went backwards: %g < %g", e.Now(), prev)
		}
		prev = e.Now()
		count++
		if count < 500 {
			e.Schedule(rng.Float64()*10, check)
		}
	}
	e.Schedule(0, check)
	e.RunUntil(1e5)
	if count != 500 {
		t.Fatalf("ran %d events, want 500", count)
	}
}

// Property: for any set of delays, events fire sorted and the engine
// clock ends exactly at the horizon.
func TestRunUntilProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e := New()
		var fired []float64
		horizon := 3000.0
		for _, r := range raw {
			d := float64(r % 6000)
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		e.RunUntil(horizon)
		if e.Now() != horizon {
			return false
		}
		if !sort.Float64sAreSorted(fired) {
			return false
		}
		for _, ts := range fired {
			if ts > horizon {
				return false
			}
		}
		// Everything beyond the horizon must still be pending.
		want := 0
		for _, r := range raw {
			if float64(r%6000) > horizon {
				want++
			}
		}
		return e.Pending() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	e := New()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	var fn func()
	fn = func() {
		e.Schedule(rng.Float64()*100, fn)
	}
	// Keep a steady population of 1000 self-rescheduling events.
	for i := 0; i < 1000; i++ {
		e.Schedule(rng.Float64()*100, fn)
	}
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
