package engine

import (
	"math"
	"testing"
)

func TestTimerFires(t *testing.T) {
	e := New()
	var at []float64
	tm := e.NewTimer(func() { at = append(at, e.Now()) })
	if tm.Pending() {
		t.Error("new timer pending")
	}
	tm.Reset(10)
	if !tm.Pending() {
		t.Error("armed timer not pending")
	}
	e.RunUntil(20)
	if len(at) != 1 || at[0] != 10 {
		t.Fatalf("fired at %v, want [10]", at)
	}
	if tm.Pending() {
		t.Error("fired timer still pending")
	}
}

func TestTimerResetReschedules(t *testing.T) {
	e := New()
	var at []float64
	tm := e.NewTimer(func() { at = append(at, e.Now()) })
	tm.Reset(10)
	tm.Reset(5) // earlier
	e.RunUntil(7)
	if len(at) != 1 || at[0] != 5 {
		t.Fatalf("fired at %v, want [5]", at)
	}
	tm.Reset(10) // re-arm after firing
	e.RunUntil(20)
	if len(at) != 2 || at[1] != 17 {
		t.Fatalf("fired at %v, want second at 17", at)
	}
	// Reset to a later time while pending.
	tm.Reset(1)
	tm.Reset(30)
	e.RunUntil(25)
	if len(at) != 2 {
		t.Fatalf("postponed timer fired early: %v", at)
	}
	e.RunUntil(60)
	if len(at) != 3 || at[2] != 50 {
		t.Fatalf("fired at %v, want third at 50", at)
	}
}

func TestTimerStop(t *testing.T) {
	e := New()
	fired := false
	tm := e.NewTimer(func() { fired = true })
	if tm.Stop() {
		t.Error("Stop on idle timer reported pending")
	}
	tm.Reset(5)
	if !tm.Stop() {
		t.Error("Stop on armed timer reported idle")
	}
	e.RunUntil(10)
	if fired {
		t.Error("stopped timer fired")
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d after stop", e.Pending())
	}
	tm.Reset(5) // still usable
	e.RunUntil(20)
	if !fired {
		t.Error("re-armed timer did not fire")
	}
}

func TestTimerSelfResetInCallback(t *testing.T) {
	e := New()
	count := 0
	var tm *Timer
	tm = e.NewTimer(func() {
		count++
		if count < 5 {
			tm.Reset(10)
		}
	})
	tm.Reset(10)
	e.RunUntil(100)
	if count != 5 {
		t.Fatalf("fired %d times, want 5", count)
	}
}

// Timers and one-shot events at the same instant interleave in arming
// order (fresh FIFO sequence per Reset).
func TestTimerFIFOWithSchedule(t *testing.T) {
	e := New()
	var order []int
	t0 := e.NewTimer(func() { order = append(order, 0) })
	e.Schedule(7, func() { order = append(order, 1) })
	t2 := e.NewTimer(func() { order = append(order, 2) })
	t0.Reset(7) // armed after the Schedule → fires after it
	t2.Reset(7)
	e.RunUntil(7)
	want := []int{1, 0, 2}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestTimerNegativeAndNaNDelay(t *testing.T) {
	e := New()
	e.RunUntil(5)
	var at []float64
	tm := e.NewTimer(func() { at = append(at, e.Now()) })
	tm.Reset(-3)
	e.RunUntil(5)
	tm.Reset(math.NaN())
	e.RunUntil(5)
	if len(at) != 2 || at[0] != 5 || at[1] != 5 {
		t.Fatalf("fired at %v, want [5 5]", at)
	}
}

// The steady-state event path must be allocation-free: re-arming timers
// and recycling one-shot nodes allocates nothing after warm-up.
func TestTimerResetDoesNotAllocate(t *testing.T) {
	e := New()
	tms := make([]*Timer, 16)
	for i := range tms {
		i := i
		tms[i] = e.NewTimer(func() { tms[i].Reset(float64(i + 1)) })
		tms[i].Reset(float64(i + 1))
	}
	horizon := 0.0
	avg := testing.AllocsPerRun(1000, func() {
		horizon += 100
		e.RunUntil(horizon)
	})
	if avg != 0 {
		t.Errorf("steady-state timer loop allocates %.1f per run, want 0", avg)
	}
}

// One-shot Schedule recycles heap nodes through the free-list: after
// warm-up, only the closure itself can allocate. With a preexisting
// func value the whole path is allocation-free.
func TestScheduleNodeReuse(t *testing.T) {
	e := New()
	count := 0
	var fn func()
	fn = func() {
		count++
		if count < 10000 {
			e.Schedule(1, fn)
		}
	}
	e.Schedule(1, fn)
	// Warm up, then measure.
	e.RunUntil(100)
	avg := testing.AllocsPerRun(100, func() {
		e.Step()
	})
	if avg != 0 {
		t.Errorf("one-shot path allocates %.1f per event after warm-up, want 0", avg)
	}
}

func TestStopThenRunKeepsOrder(t *testing.T) {
	e := New()
	var order []int
	timers := make([]*Timer, 10)
	for i := range timers {
		i := i
		timers[i] = e.NewTimer(func() { order = append(order, i) })
		timers[i].Reset(float64(10 + i%3)) // mixed instants
	}
	timers[4].Stop()
	timers[7].Stop()
	e.RunUntil(20)
	if len(order) != 8 {
		t.Fatalf("fired %d, want 8: %v", len(order), order)
	}
	// Within the same instant, arming order is preserved.
	seen := map[int]bool{}
	for _, v := range order {
		if v == 4 || v == 7 {
			t.Fatalf("stopped timer %d fired", v)
		}
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("duplicate fires: %v", order)
	}
}
