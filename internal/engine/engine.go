// Package engine provides the discrete-event scheduler underlying the
// many-core system simulator. Time is a float64 in nanoseconds. Events
// scheduled for the same instant fire in FIFO order, which keeps the
// simulation deterministic for a fixed seed.
package engine

import "math"

// event is a scheduled callback.
type event struct {
	at  float64
	seq uint64
	fn  func()
}

// Engine is a single-threaded discrete-event simulator loop.
type Engine struct {
	now  float64
	seq  uint64
	heap []event
}

// New returns an engine positioned at time zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulation time in nanoseconds.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return len(e.heap) }

// Schedule enqueues fn to run delay nanoseconds from now. Negative or
// NaN delays are treated as zero (fire at the current time, after any
// already-queued events for this instant).
func (e *Engine) Schedule(delay float64, fn func()) {
	if !(delay > 0) { // catches negative, zero and NaN
		delay = 0
	}
	e.push(event{at: e.now + delay, seq: e.seq, fn: fn})
	e.seq++
}

// At enqueues fn at absolute time t, clamped to never fire in the past.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.push(event{at: t, seq: e.seq, fn: fn})
	e.seq++
}

// RunUntil fires every event scheduled at or before t in timestamp order
// and then advances the clock to exactly t. Events created while running
// are honoured if they fall within the horizon.
func (e *Engine) RunUntil(t float64) {
	if math.IsNaN(t) || t < e.now {
		return
	}
	for len(e.heap) > 0 && e.heap[0].at <= t {
		ev := e.pop()
		e.now = ev.at
		ev.fn()
	}
	e.now = t
}

// Step fires the single earliest event, returning false if none remain.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	ev.fn()
	return true
}

// less orders events by time, then insertion sequence.
func (e *Engine) less(i, j int) bool {
	if e.heap[i].at != e.heap[j].at {
		return e.heap[i].at < e.heap[j].at
	}
	return e.heap[i].seq < e.heap[j].seq
}

func (e *Engine) push(ev event) {
	e.heap = append(e.heap, ev)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

func (e *Engine) pop() event {
	top := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap = e.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && e.less(l, smallest) {
			smallest = l
		}
		if r < last && e.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		e.heap[i], e.heap[smallest] = e.heap[smallest], e.heap[i]
		i = smallest
	}
	return top
}
