// Package engine provides the discrete-event scheduler underlying the
// many-core system simulator. Time is a float64 in nanoseconds. Events
// scheduled for the same instant fire in FIFO order, which keeps the
// simulation deterministic for a fixed seed.
//
// Two scheduling APIs are offered:
//
//   - Schedule/At enqueue a one-shot callback. The engine recycles the
//     internal heap node through a free-list, so steady-state cost is
//     one closure allocation per event (zero if the caller passes a
//     preexisting func value).
//   - Timer is an intrusive, reusable event owned by the caller: its
//     heap node and callback are allocated once, and Reset re-arms it
//     with no allocation at all. Hot simulation loops (cores, memory
//     controllers) schedule exclusively through Timers, which is what
//     makes the steady-state event path allocation-free.
package engine

import "math"

// node is one heap entry. Timers embed a node; one-shot events draw
// nodes from the engine's free-list.
type node struct {
	at      float64
	seq     uint64
	fn      func()
	idx     int // position in the heap, -1 when not queued
	oneShot bool
}

// Engine is a single-threaded discrete-event simulator loop.
type Engine struct {
	now  float64
	seq  uint64
	heap []*node
	free []*node // recycled one-shot nodes
}

// New returns an engine positioned at time zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulation time in nanoseconds.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return len(e.heap) }

// Schedule enqueues fn to run delay nanoseconds from now. Negative or
// NaN delays are treated as zero (fire at the current time, after any
// already-queued events for this instant).
func (e *Engine) Schedule(delay float64, fn func()) {
	if !(delay > 0) { // catches negative, zero and NaN
		delay = 0
	}
	e.scheduleAt(e.now+delay, fn)
}

// At enqueues fn at absolute time t, clamped to never fire in the past.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.scheduleAt(t, fn)
}

// scheduleAt pushes a one-shot node, reusing a free-list node when one
// is available.
func (e *Engine) scheduleAt(at float64, fn func()) {
	var n *node
	if k := len(e.free); k > 0 {
		n = e.free[k-1]
		e.free = e.free[:k-1]
	} else {
		n = &node{}
	}
	n.at, n.seq, n.fn, n.oneShot = at, e.seq, fn, true
	e.seq++
	e.push(n)
}

// Timer is a reusable scheduled callback. The callback is fixed at
// construction; Reset re-arms the timer (rescheduling it if already
// pending) without allocating. A Timer must not be copied after first
// use and belongs to exactly one Engine.
type Timer struct {
	e *Engine
	n node
}

// NewTimer creates an idle timer that will run fn when it fires. Arm it
// with Reset.
func (e *Engine) NewTimer(fn func()) *Timer {
	t := &Timer{e: e}
	t.n.fn = fn
	t.n.idx = -1
	return t
}

// Reset arms the timer to fire delay nanoseconds from now, rescheduling
// it if it is already pending. Negative or NaN delays are treated as
// zero. Like Schedule, a Reset at the current instant fires after all
// previously queued events for that instant (fresh FIFO sequence).
func (t *Timer) Reset(delay float64) {
	e := t.e
	if !(delay > 0) {
		delay = 0
	}
	t.n.at = e.now + delay
	t.n.seq = e.seq
	e.seq++
	if t.n.idx >= 0 {
		e.fix(t.n.idx)
	} else {
		e.push(&t.n)
	}
}

// Stop cancels a pending timer, reporting whether it was pending. The
// timer stays usable: Reset re-arms it.
func (t *Timer) Stop() bool {
	if t.n.idx < 0 {
		return false
	}
	t.e.remove(t.n.idx)
	return true
}

// Pending reports whether the timer is currently scheduled.
func (t *Timer) Pending() bool { return t.n.idx >= 0 }

// fire pops the minimum node, advances the clock, and runs the
// callback. One-shot nodes return to the free-list before the callback
// runs so the callback can immediately reuse them.
func (e *Engine) fire() {
	n := e.pop()
	e.now = n.at
	fn := n.fn
	if n.oneShot {
		n.fn = nil // release the closure; keep the node
		e.free = append(e.free, n)
	}
	fn()
}

// RunUntil fires every event scheduled at or before t in timestamp order
// and then advances the clock to exactly t. Events created while running
// are honoured if they fall within the horizon.
func (e *Engine) RunUntil(t float64) {
	if math.IsNaN(t) || t < e.now {
		return
	}
	for len(e.heap) > 0 && e.heap[0].at <= t {
		e.fire()
	}
	e.now = t
}

// Step fires the single earliest event, returning false if none remain.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	e.fire()
	return true
}

// less orders events by time, then insertion sequence.
func (e *Engine) less(i, j int) bool {
	if e.heap[i].at != e.heap[j].at {
		return e.heap[i].at < e.heap[j].at
	}
	return e.heap[i].seq < e.heap[j].seq
}

func (e *Engine) swap(i, j int) {
	e.heap[i], e.heap[j] = e.heap[j], e.heap[i]
	e.heap[i].idx = i
	e.heap[j].idx = j
}

func (e *Engine) siftUp(i int) int {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.swap(i, parent)
		i = parent
	}
	return i
}

func (e *Engine) siftDown(i int) int {
	n := len(e.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && e.less(l, smallest) {
			smallest = l
		}
		if r < n && e.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return i
		}
		e.swap(i, smallest)
		i = smallest
	}
}

// fix restores heap order after heap[i]'s key changed in place.
func (e *Engine) fix(i int) {
	if e.siftDown(i) == i {
		e.siftUp(i)
	}
}

func (e *Engine) push(n *node) {
	n.idx = len(e.heap)
	e.heap = append(e.heap, n)
	e.siftUp(n.idx)
}

func (e *Engine) pop() *node {
	top := e.heap[0]
	e.removeAt(0)
	return top
}

// remove deletes the node at heap index i.
func (e *Engine) remove(i int) {
	e.removeAt(i)
}

func (e *Engine) removeAt(i int) {
	n := e.heap[i]
	last := len(e.heap) - 1
	if i != last {
		e.swap(i, last)
	}
	e.heap[last] = nil
	e.heap = e.heap[:last]
	if i != last {
		e.fix(i)
	}
	n.idx = -1
}
