// Package engine provides the discrete-event scheduler underlying the
// many-core system simulator. Time is a float64 in nanoseconds. Events
// scheduled for the same instant fire in FIFO order, which keeps the
// simulation deterministic for a fixed seed.
//
// Two scheduling APIs are offered:
//
//   - Schedule/At enqueue a one-shot callback. The engine recycles the
//     internal event slot through a free-list, so steady-state cost is
//     one closure allocation per event (zero if the caller passes a
//     preexisting func value).
//   - Timer is an intrusive, reusable event owned by the caller: its
//     event slot and callback are allocated once, and Reset re-arms it
//     with no allocation at all. Hot simulation loops (cores, memory
//     controllers) schedule exclusively through Timers, which is what
//     makes the steady-state event path allocation-free.
//
// The queue is a timing wheel, not a heap: simulated hardware schedules
// overwhelmingly at small constant delays (bus bursts, cache hits, DRAM
// timing parameters), so events cluster tightly around the cursor.
// Time is split into fixed-width buckets; pushing insertion-sorts into
// the target bucket (buckets hold a handful of entries, so the sort is
// a shift of one or two 24-byte records), popping advances a cursor and
// takes the head of the current bucket, and cancellation is O(1): a
// cancelled or re-keyed slot simply no longer matches its bucket entry,
// which is dropped when the head reaches it. Events beyond the wheel
// horizon sit in a small overflow min-heap and migrate into the wheel
// as the cursor approaches. Firing is lazy: the winner's slot stays
// armed while its callback runs, so the common fire-then-re-arm cycle
// costs one bucket insert and no other queue maintenance. Bucket order
// is exact — entries dispatch in (at, seq) order within a bucket and
// buckets partition time monotonically — so the firing order is the
// same total order a heap would produce. Pops that share one timestamp
// are batched: ties are adjacent in a sorted bucket, so the whole run
// is parked once and drained in sequence order without touching the
// bucket between callbacks.
package engine

import (
	"math"
	"math/bits"
)

const (
	// noRef marks "no event slot" (e.g. nothing currently firing).
	noRef = -1

	// bShift sets the bucket width to 8 ns (at >> bShift buckets), a
	// little above the common DRAM/bus delays so steady-state buckets
	// hold only a few events.
	bShift   = 3
	wBits    = 8
	nBuckets = 1 << wBits // 256 buckets = 2048 ns horizon
	wMask    = nBuckets - 1

	// bucketCap is the per-bucket capacity carved from the shared
	// backing arena at construction; a bucket that ever overflows it
	// migrates to its own heap-allocated slice and keeps the larger
	// capacity from then on.
	bucketCap = 4

	// farIdle is the cached horizon sentinel when the far heap is empty.
	farIdle = ^uint64(0)
)

var posInf = math.Inf(1)

// ev is one scheduled occurrence of a slot. The entry is live iff the
// slot's current key sequence still equals seq; a cancelled or re-keyed
// slot leaves a stale entry that is discarded when it reaches the head
// of its bucket. The timestamp is stored in the entry (immutable, so
// the bucket's sorted order survives re-keying); only the staleness
// check reads the slot key.
type ev struct {
	at  float64
	seq uint64
	ref int32
}

// key is a slot's current armed key: timestamp (+Inf when idle) and the
// unique sequence number of the arm. Kept as one 16-byte record so the
// validity check and the timestamp land on the same cache line.
type key struct {
	at  float64
	seq uint64
}

// Engine is a single-threaded discrete-event simulator loop.
type Engine struct {
	now float64
	seq uint64
	cur uint64 // absolute bucket number of the wheel cursor

	// wheel[b & wMask] holds the events of absolute bucket b for
	// b in [cur, cur+nBuckets); all other events live in the far heap.
	// hd[i] is bucket i's head offset: entries before it are consumed
	// and reclaimed wholesale when the bucket drains, so a pop is an
	// index bump instead of a shift. occ is the wheel's occupancy
	// bitmap (bit i = bucket i non-empty): steady-state event spacing
	// is many buckets, and the bitmap turns the cursor's walk across
	// empty buckets into one trailing-zeros scan instead of a bucket
	// probe per step.
	wheel [nBuckets][]ev
	hd    [nBuckets]int32
	occ   [nBuckets / 64]uint64

	// Overflow min-heap (binary, keyed by (at, seq)) for events beyond
	// the wheel horizon. Entries may be stale; they are dropped when
	// popped. farMin caches the root's absolute bucket (farIdle when
	// empty) so the pop loop's horizon check is one integer compare.
	farAt  []float64
	farSeq []uint64
	farRef []int32
	farMin uint64

	// Per-slot state, indexed by ref: armed key, callback, and whether
	// the slot is a recyclable one-shot (Schedule/At) or caller-owned
	// (Timer).
	keys    []key
	fns     []func()
	oneShot []bool
	free    []int32 // recycled one-shot slots

	// Batched same-timestamp pops: when the popped head has ties, the
	// rest of the run moves here and drains in seq order (revalidated
	// per entry) before the bucket is touched again.
	bat    []ev
	batPos int

	live   int   // armed slots, including a lazily-popped firing slot
	firing int32 // slot whose callback is running, not yet settled
}

// New returns an engine positioned at time zero.
func New() *Engine {
	e := &Engine{firing: noRef, farMin: farIdle}
	backing := make([]ev, nBuckets*bucketCap)
	for i := range e.wheel {
		e.wheel[i] = backing[i*bucketCap : i*bucketCap : (i+1)*bucketCap]
	}
	return e
}

// Now returns the current simulation time in nanoseconds.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of scheduled events not yet fired.
func (e *Engine) Pending() int {
	if e.firing >= 0 {
		return e.live - 1
	}
	return e.live
}

// newRef allocates a fresh event slot.
func (e *Engine) newRef(fn func(), oneShot bool) int32 {
	ref := int32(len(e.fns))
	e.keys = append(e.keys, key{at: posInf})
	e.fns = append(e.fns, fn)
	e.oneShot = append(e.oneShot, oneShot)
	return ref
}

// enqueue files entry (at, seq, ref) into its wheel bucket, keeping the
// bucket sorted by (at, seq), or into the far heap when it lies beyond
// the horizon. A fresh entry carries the largest seq issued so far, so
// it sorts after every equal-timestamp entry already present and the
// insertion scan compares timestamps alone.
func (e *Engine) enqueue(at float64, seq uint64, ref int32) {
	b := uint64(at) >> bShift
	if b < e.cur {
		b = e.cur // defensive: never file behind the cursor
	} else if b >= e.cur+nBuckets {
		e.farPush(at, seq, ref)
		return
	}
	i := b & wMask
	w := append(e.wheel[i], ev{at, seq, ref})
	lo := int(e.hd[i])
	p := len(w) - 1
	for p > lo && w[p-1].at > at {
		w[p] = w[p-1]
		p--
	}
	w[p] = ev{at, seq, ref}
	e.wheel[i] = w
	e.occ[i>>6] |= 1 << (i & 63)
}

// settle finalizes a lazily-popped firing slot whose callback did not
// re-arm it: the slot goes idle. Its bucket entry was already removed
// by the pop, so this is O(1).
func (e *Engine) settle() {
	if r := e.firing; r >= 0 {
		e.firing = noRef
		e.keys[r].at = posInf
		e.live--
	}
}

// arm schedules slot ref at (at, seq). A pending slot's previous entry
// goes stale by sequence mismatch; arming the currently-firing slot
// keeps its live accounting.
func (e *Engine) arm(ref int32, at float64, seq uint64) {
	if ref == e.firing {
		e.firing = noRef // still counted live; old entry already popped
	} else {
		e.settle()
		if e.keys[ref].at == posInf {
			e.live++
		}
	}
	e.keys[ref] = key{at, seq}
	e.enqueue(at, seq, ref)
}

// Schedule enqueues fn to run delay nanoseconds from now. Negative or
// NaN delays are treated as zero (fire at the current time, after any
// already-queued events for this instant).
func (e *Engine) Schedule(delay float64, fn func()) {
	if !(delay > 0) { // catches negative, zero and NaN
		delay = 0
	}
	e.scheduleAt(e.now+delay, fn)
}

// At enqueues fn at absolute time t, clamped to never fire in the past.
func (e *Engine) At(t float64, fn func()) {
	if !(t > e.now) { // catches past times and NaN
		t = e.now
	}
	e.scheduleAt(t, fn)
}

// scheduleAt arms a one-shot event, reusing a free-list slot when one
// is available.
func (e *Engine) scheduleAt(at float64, fn func()) {
	var ref int32
	if n := len(e.free); n > 0 {
		ref = e.free[n-1]
		e.free = e.free[:n-1]
		e.fns[ref] = fn
	} else {
		ref = e.newRef(fn, true)
	}
	seq := e.seq
	e.seq++
	e.arm(ref, at, seq)
}

// Timer is a reusable scheduled callback. The callback is fixed at
// construction; Reset re-arms the timer (rescheduling it if already
// pending) without allocating. A Timer belongs to exactly one Engine.
type Timer struct {
	e   *Engine
	ref int32
}

// NewTimer creates an idle timer that will run fn when it fires. Arm it
// with Reset.
func (e *Engine) NewTimer(fn func()) *Timer {
	return &Timer{e: e, ref: e.newRef(fn, false)}
}

// Reset arms the timer to fire delay nanoseconds from now, rescheduling
// it if it is already pending. Negative or NaN delays are treated as
// zero. Like Schedule, a Reset at the current instant fires after all
// previously queued events for that instant (fresh FIFO sequence).
func (t *Timer) Reset(delay float64) {
	e := t.e
	if !(delay > 0) {
		delay = 0
	}
	seq := e.seq
	e.seq++
	e.arm(t.ref, e.now+delay, seq)
}

// Stop cancels a pending timer, reporting whether it was pending. The
// timer stays usable: Reset re-arms it. A timer whose callback is
// currently running is no longer pending. Cancellation burns a fresh
// sequence number so the queued entry goes stale by seq mismatch.
func (t *Timer) Stop() bool {
	e := t.e
	if t.ref == e.firing || e.keys[t.ref].at == posInf {
		return false
	}
	e.settle()
	e.keys[t.ref] = key{at: posInf, seq: e.seq}
	e.seq++
	e.live--
	return true
}

// Pending reports whether the timer is currently scheduled.
func (t *Timer) Pending() bool {
	return t.ref != t.e.firing && t.e.keys[t.ref].at != posInf
}

// popBucket statuses.
const (
	popFound  = iota // the bucket's (at, seq) minimum was ≤ tmax: popped
	popBeyond        // the minimum is beyond tmax: nothing to fire at all
	popEmpty         // no live entries in this bucket: advance the cursor
)

// popBucket takes the head of wheel bucket i — the bucket is sorted by
// (at, seq), and buckets partition time, so a live head is the global
// minimum of all events at or after the cursor. Stale entries are
// dropped as the head reaches them. When following entries tie the
// head's timestamp they are adjacent (sorted, and equal-at order is seq
// order); the whole run is parked in the batch buffer so the caller
// drains it in seq order without touching the bucket between callbacks.
func (e *Engine) popBucket(i uint64, tmax float64) (int32, float64, int) {
	b := e.wheel[i]
	j := int(e.hd[i])
	for j < len(b) && e.keys[b[j].ref].seq != b[j].seq {
		j++
	}
	if j == len(b) {
		e.wheel[i] = b[:0]
		e.hd[i] = 0
		e.occ[i>>6] &^= 1 << (i & 63)
		return 0, 0, popEmpty
	}
	en := b[j]
	if en.at > tmax {
		e.hd[i] = int32(j)
		return 0, 0, popBeyond
	}
	k := j + 1
	for k < len(b) && b[k].at == en.at {
		k++
	}
	if k > j+1 {
		// Park the rest of the same-timestamp run (already in seq
		// order); stale members are revalidated away at drain time.
		e.bat = append(e.bat[:0], b[j+1:k]...)
		e.batPos = 0
	}
	if k == len(b) {
		e.wheel[i] = b[:0]
		e.hd[i] = 0
		e.occ[i>>6] &^= 1 << (i & 63)
	} else {
		e.hd[i] = int32(k)
	}
	return en.ref, en.at, popFound
}

// pop removes and returns the earliest event with at ≤ tmax, advancing
// the cursor and migrating far events as their buckets enter the
// horizon. The caller must have settled any firing slot and checked
// live > 0 (which guarantees termination: a live entry exists in the
// wheel, the far heap, or the batch buffer).
func (e *Engine) pop(tmax float64) (int32, float64, bool) {
	// Drain a parked same-timestamp batch first; entries are revalidated
	// because a callback may have cancelled or re-armed a later member.
	for e.batPos < len(e.bat) {
		en := e.bat[e.batPos]
		e.batPos++
		if e.keys[en.ref].seq == en.seq {
			return en.ref, en.at, true
		}
	}
	btMax := ^uint64(0)
	if tmax < math.MaxUint64 {
		btMax = uint64(tmax) >> bShift
	}
	for {
		for e.farMin < e.cur+nBuckets {
			e.farMigrate()
		}
		b, ok := e.nextOccupied()
		if !ok {
			// Wheel empty. Jump the cursor so the far heap's minimum
			// enters the horizon (live > 0 guarantees it exists unless
			// everything left is beyond tmax).
			if e.farMin == farIdle || e.farMin > btMax {
				return 0, 0, false
			}
			e.cur = e.farMin - nBuckets + 1
			continue
		}
		if b > btMax {
			return 0, 0, false
		}
		e.cur = b
		ref, at, st := e.popBucket(b&wMask, tmax)
		if st == popFound {
			return ref, at, true
		}
		if st == popBeyond {
			return 0, 0, false
		}
		// popEmpty: the bucket held only stale entries; its bit is
		// cleared, scan on.
	}
}

// nextOccupied returns the absolute bucket number of the first
// non-empty wheel bucket at or after the cursor, scanning the occupancy
// bitmap in window order (bit positions wrap modulo the wheel size).
func (e *Engine) nextOccupied() (uint64, bool) {
	start := uint(e.cur & wMask)
	w := int(start >> 6)
	word := e.occ[w] &^ (1<<(start&63) - 1) // drop bits below the cursor
	for k := 0; ; k++ {
		if word != 0 {
			i := uint64(w)<<6 + uint64(bits.TrailingZeros64(word))
			off := (i - uint64(start)) & wMask
			return e.cur + off, true
		}
		if k == len(e.occ) {
			return 0, false
		}
		w++
		if w == len(e.occ) {
			w = 0
		}
		word = e.occ[w]
	}
}

// RunUntil fires every event scheduled at or before t in timestamp
// order (FIFO within an instant) and then advances the clock to exactly
// t. Events created while running are honoured if they fall within the
// horizon. Fired slots are left lazily armed: either the callback
// re-arms the slot (one enqueue) or the next queue operation settles
// it. One-shot slots return to the free-list before the callback runs
// so the callback can immediately reuse them.
func (e *Engine) RunUntil(t float64) {
	if math.IsNaN(t) || t < e.now {
		return
	}
	for {
		e.settle()
		if e.live == 0 {
			break
		}
		w, at, ok := e.pop(t)
		if !ok {
			break
		}
		e.now = at
		e.firing = w
		fn := e.fns[w]
		if e.oneShot[w] {
			e.fns[w] = nil // release the closure; keep the slot
			e.free = append(e.free, w)
		}
		fn()
	}
	// Everything at or before t has fired, so no bucket behind t's can
	// hold a live entry; snapping the cursor keeps later pushes cheap
	// after long idle gaps. (Parked batch entries, if any, are stale —
	// live ones are always drained before the loop exits.)
	if bt := uint64(t) >> bShift; t < math.MaxUint64 && bt > e.cur {
		e.cur = bt
	}
	e.now = t
}

// Step fires the single earliest event, returning false if none remain.
func (e *Engine) Step() bool {
	e.settle()
	if e.live == 0 {
		return false
	}
	w, at, ok := e.pop(math.Inf(1))
	if !ok {
		return false
	}
	e.now = at
	e.firing = w
	fn := e.fns[w]
	if e.oneShot[w] {
		e.fns[w] = nil // release the closure; keep the slot
		e.free = append(e.free, w)
	}
	fn()
	e.settle()
	return true
}

// farPush inserts an entry into the overflow min-heap.
func (e *Engine) farPush(at float64, seq uint64, ref int32) {
	e.farAt = append(e.farAt, at)
	e.farSeq = append(e.farSeq, seq)
	e.farRef = append(e.farRef, ref)
	i := len(e.farAt) - 1
	for i > 0 {
		p := (i - 1) >> 1
		if !(at < e.farAt[p] || (at == e.farAt[p] && seq < e.farSeq[p])) {
			break
		}
		e.farAt[i], e.farSeq[i], e.farRef[i] = e.farAt[p], e.farSeq[p], e.farRef[p]
		i = p
	}
	e.farAt[i], e.farSeq[i], e.farRef[i] = at, seq, ref
	e.farMin = uint64(e.farAt[0]) >> bShift
}

// farMigrate pops the overflow minimum and, if still live, files it
// into the wheel (its bucket has entered the horizon).
func (e *Engine) farMigrate() {
	at, seq, ref := e.farAt[0], e.farSeq[0], e.farRef[0]
	n := len(e.farAt) - 1
	la, ls, lr := e.farAt[n], e.farSeq[n], e.farRef[n]
	e.farAt = e.farAt[:n]
	e.farSeq = e.farSeq[:n]
	e.farRef = e.farRef[:n]
	if n > 0 {
		i := 0
		for {
			c := 2*i + 1
			if c >= n {
				break
			}
			if c+1 < n && (e.farAt[c+1] < e.farAt[c] ||
				(e.farAt[c+1] == e.farAt[c] && e.farSeq[c+1] < e.farSeq[c])) {
				c++
			}
			if !(e.farAt[c] < la || (e.farAt[c] == la && e.farSeq[c] < ls)) {
				break
			}
			e.farAt[i], e.farSeq[i], e.farRef[i] = e.farAt[c], e.farSeq[c], e.farRef[c]
			i = c
		}
		e.farAt[i], e.farSeq[i], e.farRef[i] = la, ls, lr
		e.farMin = uint64(e.farAt[0]) >> bShift
	} else {
		e.farMin = farIdle
	}
	if k := e.keys[ref]; k.at == at && k.seq == seq {
		e.enqueue(at, seq, ref)
	}
}
