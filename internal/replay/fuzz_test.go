package replay_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/dvfs"
	"repro/internal/policy"
	"repro/internal/replay"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// seedRecording captures a short live run for the fuzz corpus — real
// golden traces, so mutations explore the neighborhood of actual
// recordings rather than random JSON.
func seedRecording(f *testing.F, mixName string, cores, epochs int, pol policy.Policy) []byte {
	sc := sim.DefaultConfig(cores)
	return seedRecordingCfg(f, mixName, sc, epochs, pol)
}

// seedRecordingCfg is seedRecording over an explicit machine config, so
// the corpus also covers heterogeneous and multi-controller traces
// (their recordings carry per-core ladders and wider access matrices).
func seedRecordingCfg(f *testing.F, mixName string, sc sim.Config, epochs int, pol policy.Policy) []byte {
	f.Helper()
	mix, err := workload.MixByName(mixName)
	if err != nil {
		f.Fatal(err)
	}
	sc.EpochNs = 5e5
	sc.ProfileNs = 5e4
	cfg := runner.Config{Sim: sc, Mix: mix, BudgetFrac: 0.6, Epochs: epochs, Policy: pol}
	var rec *replay.Recorder
	s, err := runner.NewSession(cfg, runner.WithPlatformWrap(func(p runner.Platform) runner.Platform {
		rec = replay.NewRecorder(p)
		return rec
	}))
	if err != nil {
		f.Fatal(err)
	}
	for {
		if _, err := s.Step(context.Background()); err != nil {
			if errors.Is(err, runner.ErrDone) {
				break
			}
			f.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := rec.Recording().WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReplayRoundTrip: any byte string that decodes as a Recording
// must survive JSON marshal → unmarshal bit-identically and, when
// mountable, replay the identical window stream — wrap-around
// included. JSON is the recording's wire format (shipped traces,
// /sessions/{id}/recording), so lossiness anywhere here would silently
// break the replay determinism guarantee.
func FuzzReplayRoundTrip(f *testing.F) {
	f.Add(seedRecording(f, "MIX2", 4, 3, policy.NewFastCap()))
	f.Add(seedRecording(f, "MID1", 4, 2, nil))
	f.Add(seedRecording(f, "MEM1", 8, 2, policy.NewEqlPwr()))
	blCfg := sim.DefaultConfig(4)
	blCfg.Machine = &sim.MachineSpec{
		Name: "bigLITTLE-2+2",
		Classes: []sim.CoreClass{
			{Name: "big", Count: 2},
			{Name: "little", Count: 2, Ladder: dvfs.EfficiencyCoreLadder(), ExecCPIScale: 1.25},
		},
	}
	f.Add(seedRecordingCfg(f, "MIX3", blCfg, 2, policy.NewFastCap()))
	ctlCfg := sim.DefaultConfig(8)
	ctlCfg.Controllers = 2
	ctlCfg.BanksPerController = 16
	ctlCfg.SkewedAccess = true
	f.Add(seedRecordingCfg(f, "MEM2", ctlCfg, 2, policy.NewFastCap()))
	f.Add([]byte(`{"PeakW":1,"SbBarNs":2,"AccessProb":[[1]],"Epochs":[{"Profile":{"Cores":[{}]},"Rest":{},"MemStep":-1}]}`))
	f.Add([]byte(`{}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := replay.ReadJSON(bytes.NewReader(data))
		if err != nil {
			t.Skip() // not a recording
		}
		// Marshal → unmarshal must be lossless…
		var first bytes.Buffer
		if err := rec.WriteJSON(&first); err != nil {
			// JSON can't carry NaN/Inf, so a decoded recording always
			// re-serializes.
			t.Fatalf("re-marshal of a decoded recording failed: %v", err)
		}
		rec2, err := replay.ReadJSON(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("decode of own output failed: %v", err)
		}
		if !reflect.DeepEqual(rec, rec2) {
			t.Fatal("recording changed across a JSON round trip")
		}
		// …and byte-stable: serializing again yields identical bytes.
		var second bytes.Buffer
		if err := rec2.WriteJSON(&second); err != nil {
			t.Fatalf("second marshal failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("recording JSON is not byte-stable")
		}

		// Both mount the same way, and replay identical window streams.
		p1, err1 := replay.New(rec)
		p2, err2 := replay.New(rec2)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("mountability diverged across the round trip: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return // equally unmountable (empty / inconsistent shape)
		}
		if p1.PeakPowerW() != p2.PeakPowerW() || p1.SbBarNs() != p2.SbBarNs() ||
			!reflect.DeepEqual(p1.AccessProb(), p2.AccessProb()) {
			t.Fatal("static platform characteristics diverged")
		}
		p1.Start()
		p2.Start()
		for i := 0; i < 2*p1.Len(); i++ { // ×2 exercises wrap-around
			prof1, prof2 := p1.RunProfile(), p2.RunProfile()
			if !reflect.DeepEqual(prof1, prof2) {
				t.Fatalf("epoch %d: profiling windows diverged", i)
			}
			rest1, rest2 := p1.FinishEpoch(), p2.FinishEpoch()
			if !reflect.DeepEqual(rest1, rest2) {
				t.Fatalf("epoch %d: post-decision windows diverged", i)
			}
			// Bit-level comparison: zero-width windows legitimately
			// combine to NaN, and NaN != NaN would fail a plain compare.
			c1 := math.Float64bits(p1.CombinePower(prof1, rest1))
			c2 := math.Float64bits(p2.CombinePower(prof2, rest2))
			if c1 != c2 {
				t.Fatalf("epoch %d: combined epoch power diverged", i)
			}
		}
	})
}
