// Package replay records and plays back the measurement stream a
// runner.Session consumes, decoupling the control loop from the
// event-driven simulator. A Recorder wraps any live Platform and
// captures every window it produces; the resulting Recording can be
// serialized to JSON, shipped around, and mounted as a replay.Platform
// — a lightweight Platform that replays the trace with no simulation
// at all. That enables policy unit tests against canned traces and
// "dry-run against a production trace" scenarios: because the
// controller is deterministic, replaying a recording under the same
// configuration and policy reproduces the original run bit for bit.
package replay

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/runner"
	"repro/internal/sim"
)

// Epoch is one recorded epoch: the profiling window, the post-decision
// window, and the DVFS decision applied between them (nil CoreSteps for
// a baseline run that never applied one).
type Epoch struct {
	Profile   sim.Profile
	Rest      sim.Profile
	CoreSteps []int
	MemStep   int
}

// Recording is a complete captured run: the platform's static
// characteristics plus the per-epoch window stream.
type Recording struct {
	PeakW      float64
	SbBarNs    float64
	AccessProb [][]float64
	Epochs     []Epoch
}

// Cores returns the recorded machine's core count (0 for an empty
// recording).
func (r *Recording) Cores() int {
	if len(r.Epochs) == 0 {
		return 0
	}
	return len(r.Epochs[0].Profile.Cores)
}

// WriteJSON serializes the recording.
func (r *Recording) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r)
}

// ReadJSON deserializes a recording written by WriteJSON. Go's JSON
// float encoding round-trips exactly, so a decoded recording replays
// bit-identically to the original.
func ReadJSON(rd io.Reader) (*Recording, error) {
	var rec Recording
	if err := json.NewDecoder(rd).Decode(&rec); err != nil {
		return nil, fmt.Errorf("replay: decoding recording: %w", err)
	}
	return &rec, nil
}

// cloneProfile deep-copies a window whose slices alias platform-owned
// reusable buffers.
func cloneProfile(p sim.Profile) sim.Profile {
	out := p
	out.Cores = append([]sim.CoreProfile(nil), p.Cores...)
	out.Mem = append([]sim.MemProfile(nil), p.Mem...)
	return out
}

// Recorder is a pass-through Platform that captures everything the
// wrapped live platform produces. Drive a Session with
// WithPlatform(recorder) (or call the Platform methods directly), then
// take the trace with Recording.
type Recorder struct {
	live runner.Platform
	rec  Recording
	cur  Epoch
}

var _ runner.Platform = (*Recorder)(nil)

// NewRecorder wraps a live platform, capturing its static
// characteristics immediately and its window stream as it is produced.
func NewRecorder(live runner.Platform) *Recorder {
	r := &Recorder{live: live}
	r.rec.PeakW = live.PeakPowerW()
	r.rec.SbBarNs = live.SbBarNs()
	for _, row := range live.AccessProb() {
		r.rec.AccessProb = append(r.rec.AccessProb, append([]float64(nil), row...))
	}
	return r
}

// Recording returns the trace captured so far (one Epoch per completed
// FinishEpoch call). The returned pointer aliases the Recorder's state;
// finish recording before replaying it.
func (r *Recorder) Recording() *Recording { return &r.rec }

func (r *Recorder) Start() { r.live.Start() }

func (r *Recorder) RunProfile() sim.Profile {
	p := r.live.RunProfile()
	r.cur = Epoch{Profile: cloneProfile(p), MemStep: -1}
	return p
}

func (r *Recorder) Apply(coreSteps []int, memStep int) error {
	if err := r.live.Apply(coreSteps, memStep); err != nil {
		return err
	}
	r.cur.CoreSteps = append([]int(nil), coreSteps...)
	r.cur.MemStep = memStep
	return nil
}

func (r *Recorder) FinishEpoch() sim.Profile {
	p := r.live.FinishEpoch()
	r.cur.Rest = cloneProfile(p)
	r.rec.Epochs = append(r.rec.Epochs, r.cur)
	r.cur = Epoch{}
	return p
}

func (r *Recorder) CombinePower(profile, rest sim.Profile) float64 {
	return r.live.CombinePower(profile, rest)
}

func (r *Recorder) PeakPowerW() float64     { return r.live.PeakPowerW() }
func (r *Recorder) AccessProb() [][]float64 { return r.live.AccessProb() }
func (r *Recorder) SbBarNs() float64        { return r.live.SbBarNs() }

// Platform replays a Recording: RunProfile and FinishEpoch return the
// recorded windows in order, and Apply validates the decision's shape
// but moves no machinery. Playback wraps around at the end of the
// trace, so a short trace can soak-test a policy over arbitrarily many
// epochs. The zero cost per epoch (no event engine) makes replay
// platforms suitable for policy unit tests and controller dry-runs
// against captured production traces.
type Platform struct {
	rec   *Recording
	epoch int
	// Applied records every decision the controller issued during
	// playback, in order — the observable output of a dry-run.
	Applied []Epoch
}

var _ runner.Platform = (*Platform)(nil)

// New builds a playback platform over rec.
func New(rec *Recording) (*Platform, error) {
	if rec == nil || len(rec.Epochs) == 0 {
		return nil, fmt.Errorf("replay: empty recording")
	}
	if len(rec.AccessProb) != rec.Cores() {
		return nil, fmt.Errorf("replay: recording has access stats for %d cores, windows for %d",
			len(rec.AccessProb), rec.Cores())
	}
	return &Platform{rec: rec}, nil
}

// Len returns the number of recorded epochs (the wrap-around period).
func (p *Platform) Len() int { return len(p.rec.Epochs) }

func (p *Platform) idx() int { return p.epoch % len(p.rec.Epochs) }

func (p *Platform) Start() {}

func (p *Platform) RunProfile() sim.Profile { return p.rec.Epochs[p.idx()].Profile }

func (p *Platform) Apply(coreSteps []int, memStep int) error {
	if len(coreSteps) != p.rec.Cores() {
		return fmt.Errorf("replay: %d core steps for %d recorded cores", len(coreSteps), p.rec.Cores())
	}
	if memStep < 0 {
		return fmt.Errorf("replay: negative memory step %d", memStep)
	}
	p.Applied = append(p.Applied, Epoch{
		CoreSteps: append([]int(nil), coreSteps...),
		MemStep:   memStep,
	})
	return nil
}

func (p *Platform) FinishEpoch() sim.Profile {
	rest := p.rec.Epochs[p.idx()].Rest
	p.epoch++
	return rest
}

// CombinePower delegates to sim's shared formula so replayed sessions
// report bit-identical epoch powers.
func (p *Platform) CombinePower(profile, rest sim.Profile) float64 {
	return sim.CombinePower(profile, rest)
}

func (p *Platform) PeakPowerW() float64     { return p.rec.PeakW }
func (p *Platform) AccessProb() [][]float64 { return p.rec.AccessProb }
func (p *Platform) SbBarNs() float64        { return p.rec.SbBarNs }
