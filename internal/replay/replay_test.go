package replay_test

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/policy"
	"repro/internal/replay"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

func testCfg(t *testing.T) runner.Config {
	t.Helper()
	mix, err := workload.MixByName("MIX2")
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.DefaultConfig(8)
	sc.EpochNs = 1e6
	sc.ProfileNs = 1e5
	return runner.Config{Sim: sc, Mix: mix, BudgetFrac: 0.6, Epochs: 6, Policy: policy.NewFastCap()}
}

// record drives a session against a recorder-wrapped live simulator and
// returns the live Result plus the captured trace.
func record(t *testing.T, cfg runner.Config) (*runner.Result, *replay.Recording) {
	t.Helper()
	wl, err := workload.Instantiate(cfg.Mix, cfg.Sim.Cores)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := sim.New(cfg.Sim, wl)
	if err != nil {
		t.Fatal(err)
	}
	rec := replay.NewRecorder(sys)
	s, err := runner.NewSession(cfg, runner.WithPlatform(rec))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := s.Step(context.Background()); err != nil {
			if errors.Is(err, runner.ErrDone) {
				break
			}
			t.Fatal(err)
		}
	}
	return s.Result(), rec.Recording()
}

// The round trip: a session replaying a recorded run under the same
// configuration and policy reproduces the live run bit for bit — the
// controller is a pure function of the window stream.
func TestReplayRoundTrip(t *testing.T) {
	cfg := testCfg(t)
	live, recording := record(t, cfg)

	if len(recording.Epochs) != cfg.Epochs {
		t.Fatalf("recorded %d epochs, want %d", len(recording.Epochs), cfg.Epochs)
	}
	if recording.Cores() != cfg.Sim.Cores {
		t.Fatalf("recorded %d cores, want %d", recording.Cores(), cfg.Sim.Cores)
	}

	plat, err := replay.New(recording)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = policy.NewFastCap() // fresh instance, same algorithm
	s, err := runner.NewSession(cfg, runner.WithPlatform(plat))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := s.Step(context.Background()); err != nil {
			if errors.Is(err, runner.ErrDone) {
				break
			}
			t.Fatal(err)
		}
	}
	replayed := s.Result()

	if !reflect.DeepEqual(live, replayed) {
		t.Errorf("replayed result diverged from live run:\nlive:     %+v\nreplayed: %+v", live, replayed)
	}
	// The dry-run's decisions must match the recorded ones.
	if len(plat.Applied) != cfg.Epochs {
		t.Fatalf("replay applied %d decisions, want %d", len(plat.Applied), cfg.Epochs)
	}
	for i, a := range plat.Applied {
		want := recording.Epochs[i]
		if !reflect.DeepEqual(a.CoreSteps, want.CoreSteps) || a.MemStep != want.MemStep {
			t.Errorf("epoch %d: replayed decision (%v, %d) != recorded (%v, %d)",
				i, a.CoreSteps, a.MemStep, want.CoreSteps, want.MemStep)
		}
	}
}

// JSON serialization round-trips exactly: a decoded recording replays
// to the same result as the in-memory one.
func TestRecordingJSONRoundTrip(t *testing.T) {
	cfg := testCfg(t)
	cfg.Epochs = 3
	_, recording := record(t, cfg)

	var buf bytes.Buffer
	if err := recording.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := replay.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recording, decoded) {
		t.Error("recording did not survive the JSON round trip")
	}
}

// Playback wraps around: a trace of K epochs can drive a session for
// more than K epochs.
func TestReplayWrapsAround(t *testing.T) {
	cfg := testCfg(t)
	cfg.Epochs = 3
	_, recording := record(t, cfg)

	plat, err := replay.New(recording)
	if err != nil {
		t.Fatal(err)
	}
	long := cfg
	long.Epochs = 8 // > recorded 3
	long.Policy = policy.NewFastCap()
	s, err := runner.NewSession(long, runner.WithPlatform(plat))
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for {
		if _, err := s.Step(context.Background()); err != nil {
			if errors.Is(err, runner.ErrDone) {
				break
			}
			t.Fatal(err)
		}
		steps++
	}
	if steps != 8 {
		t.Fatalf("stepped %d epochs over a 3-epoch trace, want 8", steps)
	}
}

func TestReplayRejectsBadInput(t *testing.T) {
	if _, err := replay.New(&replay.Recording{}); err == nil {
		t.Error("empty recording accepted")
	}
	cfg := testCfg(t)
	cfg.Epochs = 2
	_, recording := record(t, cfg)
	plat, err := replay.New(recording)
	if err != nil {
		t.Fatal(err)
	}
	if err := plat.Apply([]int{1, 2}, 0); err == nil {
		t.Error("wrong-width decision accepted")
	}
	if err := plat.Apply(make([]int, cfg.Sim.Cores), -1); err == nil {
		t.Error("negative memory step accepted")
	}
	// Machine-shape mismatch between config and platform fails fast at
	// session construction, not mid-run.
	wrong := cfg
	wrong.Sim.Cores = 16
	if _, err := runner.NewSession(wrong, runner.WithPlatform(plat)); !errors.Is(err, runner.ErrInvalidConfig) {
		t.Errorf("8-core trace accepted for a 16-core config: %v", err)
	}
}
