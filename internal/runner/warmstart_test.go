package runner_test

import (
	"reflect"
	"testing"

	"repro/internal/policy"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// coldFastCap discards the solver (and its warm-start state) after
// every epoch by building a fresh FastCap per Decide. Its runs are the
// cold reference the persistent policy's warm-started runs must match
// byte for byte.
type coldFastCap struct{}

func (coldFastCap) Name() string { return "FastCap" }

func (coldFastCap) Decide(s *policy.Snapshot) (policy.Decision, error) {
	return policy.NewFastCap().Decide(s)
}

// End-to-end warm-start equivalence: full runs under the persistent
// policy (warm start active from epoch 1 on) and under a per-epoch
// cold policy must produce deeply equal Results — including across a
// mid-run budget retarget and on a heterogeneous machine.
func TestWarmStartRunEquivalence(t *testing.T) {
	mk := func(pol policy.Policy, hetero bool) runner.Config {
		t.Helper()
		var cfg runner.Config
		if hetero {
			cfg = heteroConfig(t)
		} else {
			mix, err := workload.MixByName("MIX3")
			if err != nil {
				t.Fatal(err)
			}
			sc := sim.DefaultConfig(8)
			sc.EpochNs = 5e5
			sc.ProfileNs = 5e4
			cfg = runner.Config{Sim: sc, Mix: mix, BudgetFrac: 0.6, Epochs: 8}
		}
		// Mid-run retarget: tighten the budget halfway through.
		cfg.BudgetSchedule = func(epoch int) float64 {
			if epoch < cfg.Epochs/2 {
				return 0.75
			}
			return 0.55
		}
		cfg.Policy = pol
		return cfg
	}
	for _, tc := range []struct {
		name   string
		hetero bool
	}{
		{"homogeneous", false},
		{"hetero big.LITTLE", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			warm, err := runner.Run(mk(policy.NewFastCap(), tc.hetero))
			if err != nil {
				t.Fatal(err)
			}
			cold, err := runner.Run(mk(coldFastCap{}, tc.hetero))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(warm, cold) {
				t.Error("warm-started run differs from per-epoch cold run")
			}
		})
	}
}
