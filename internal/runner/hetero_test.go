package runner_test

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/cpusim"
	"repro/internal/dvfs"
	"repro/internal/policy"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// heteroConfig is a 2 big + 2 little machine on a fast epoch.
func heteroConfig(t *testing.T) runner.Config {
	t.Helper()
	mix, err := workload.MixByName("MIX3")
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.DefaultConfig(4)
	sc.EpochNs = 5e5
	sc.ProfileNs = 5e4
	sc.Machine = &sim.MachineSpec{
		Name: "bigLITTLE-2+2",
		Classes: []sim.CoreClass{
			{Name: "big", Count: 2},
			{Name: "little", Count: 2,
				Ladder:       dvfs.EfficiencyCoreLadder(),
				Power:        cpusim.PowerConfig{DynMaxW: 1.5, StaticW: 0.2, GateFrac: 0.12},
				ExecCPIScale: 1.25},
		},
	}
	return runner.Config{Sim: sc, Mix: mix, BudgetFrac: 0.6, Epochs: 6, Policy: policy.NewFastCap()}
}

// The golden back-compat guarantee of the MachineSpec seam: a
// homogeneous config expressed as a machine spec — one class, or
// several classes that all resolve to the same ladder and power —
// produces a byte-identical Result to the legacy (nil Machine) path.
func TestMachineSpecHomogeneousGolden(t *testing.T) {
	mix, err := workload.MixByName("MIX3")
	if err != nil {
		t.Fatal(err)
	}
	base := func() runner.Config {
		sc := sim.DefaultConfig(8)
		sc.EpochNs = 5e5
		sc.ProfileNs = 5e4
		return runner.Config{Sim: sc, Mix: mix, BudgetFrac: 0.6, Epochs: 5, Policy: policy.NewFastCap()}
	}
	legacy, err := runner.Run(base())
	if err != nil {
		t.Fatal(err)
	}

	specs := map[string]*sim.MachineSpec{
		// Everything inherited from the config defaults.
		"one inherited class": {Name: "flat", Classes: []sim.CoreClass{{Name: "all", Count: 8}}},
		// The same machine spelled out explicitly: a different ladder
		// pointer with identical values and the default power written out.
		"one explicit class": {Name: "flat", Classes: []sim.CoreClass{{
			Name: "all", Count: 8, Ladder: dvfs.DefaultCoreLadder(), Power: cpusim.DefaultPower(), ExecCPIScale: 1,
		}}},
		// A partition into classes that are all identical.
		"two identical classes": {Name: "flat", Classes: []sim.CoreClass{
			{Name: "left", Count: 4}, {Name: "right", Count: 4},
		}},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			cfg := base()
			cfg.Policy = policy.NewFastCap() // fresh scratch per run
			cfg.Sim.Machine = spec
			got, err := runner.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, legacy) {
				t.Errorf("machine-spec run diverged from the legacy homogeneous run")
			}
		})
	}
}

// Every epoch's decision must land each core on its own class ladder,
// and identical heterogeneous runs must be deterministic.
func TestHeteroStepsOnOwnLadders(t *testing.T) {
	cfg := heteroConfig(t)
	layout, err := cfg.Sim.Layout()
	if err != nil {
		t.Fatal(err)
	}
	run := func() *runner.Result {
		t.Helper()
		c := cfg
		c.Policy = policy.NewFastCap()
		res, err := runner.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if len(res.Epochs) != cfg.Epochs {
		t.Fatalf("ran %d epochs, want %d", len(res.Epochs), cfg.Epochs)
	}
	for _, e := range res.Epochs {
		for i, st := range e.CoreSteps {
			if st < 0 || st >= layout.Ladder(i).Len() {
				t.Fatalf("epoch %d core %d step %d outside its ladder of %d steps", e.Epoch, i, st, layout.Ladder(i).Len())
			}
		}
		if e.PredictedPowerW > e.BudgetW+1e-9 {
			t.Errorf("epoch %d predicted %.3f W over the %.3f W cap", e.Epoch, e.PredictedPowerW, e.BudgetW)
		}
	}
	if again := run(); !reflect.DeepEqual(again, res) {
		t.Error("identical heterogeneous runs diverged")
	}
}

// Every comparison policy must run on the asymmetric machine and keep
// each core's step on that core's own ladder.
func TestHeteroAllPolicies(t *testing.T) {
	pols := []policy.Policy{
		policy.NewFastCap(), policy.NewCPUOnly(), policy.NewFreqPar(),
		policy.NewEqlPwr(), policy.NewEqlFreq(), policy.NewGreedy(), policy.NewMaxBIPS(),
	}
	cfg := heteroConfig(t)
	layout, err := cfg.Sim.Layout()
	if err != nil {
		t.Fatal(err)
	}
	littleMax := layout.Ladder(2).Len() - 1
	bigMax := layout.Ladder(0).Len() - 1
	if littleMax >= bigMax {
		t.Fatalf("test machine wants a smaller little ladder (big %d, little %d)", bigMax, littleMax)
	}
	for _, pol := range pols {
		t.Run(pol.Name(), func(t *testing.T) {
			c := cfg
			c.Policy = pol
			res, err := runner.Run(c)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range res.Epochs {
				for i, st := range e.CoreSteps {
					if st < 0 || st >= layout.Ladder(i).Len() {
						t.Fatalf("%s: epoch %d core %d step %d outside its %d-step ladder",
							pol.Name(), e.Epoch, i, st, layout.Ladder(i).Len())
					}
				}
			}
		})
	}
}

// Explicit placement machines run without a Table III mix and name the
// Result after the machine.
func TestHeteroPlacementWorkload(t *testing.T) {
	sc := sim.DefaultConfig(4)
	sc.EpochNs = 5e5
	sc.ProfileNs = 5e4
	sc.Machine = &sim.MachineSpec{
		Name: "pinned",
		Classes: []sim.CoreClass{
			{Name: "big", Count: 2, Apps: []string{"swim", "crafty"}},
			{Name: "little", Count: 2, Ladder: dvfs.EfficiencyCoreLadder(), Apps: []string{"ammp"}},
		},
	}
	cfg := runner.Config{Sim: sc, BudgetFrac: 0.6, Epochs: 3, Policy: policy.NewFastCap()}
	res, err := runner.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mix != "pinned" {
		t.Errorf("placement run mix label %q, want machine name", res.Mix)
	}
	if len(res.Epochs) != 3 {
		t.Errorf("ran %d epochs, want 3", len(res.Epochs))
	}
}

// Machine-spec validation failures surface as ErrInvalidConfig.
func TestHeteroValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*runner.Config)
	}{
		{"counts mismatch", func(c *runner.Config) { c.Sim.Machine.Classes[0].Count = 1 }},
		{"negative CPI scale", func(c *runner.Config) { c.Sim.Machine.Classes[1].ExecCPIScale = -2 }},
		{"duplicate class name", func(c *runner.Config) { c.Sim.Machine.Classes[1].Name = "big" }},
		{"unnamed class", func(c *runner.Config) { c.Sim.Machine.Classes[0].Name = "" }},
		{"partial placement", func(c *runner.Config) { c.Sim.Machine.Classes[0].Apps = []string{"swim"} }},
		{"placement not dividing count", func(c *runner.Config) {
			c.Sim.Machine.Classes[0].Apps = []string{"swim", "ammp", "gap"}
			c.Sim.Machine.Classes[1].Apps = []string{"vpr"}
		}},
		{"unknown placed app", func(c *runner.Config) {
			c.Sim.Machine.Classes[0].Apps = []string{"nonesuch"}
			c.Sim.Machine.Classes[1].Apps = []string{"ammp"}
		}},
		{"negative class power", func(c *runner.Config) { c.Sim.Machine.Classes[1].Power.DynMaxW = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := heteroConfig(t)
			tc.mutate(&cfg)
			if _, err := runner.NewSession(cfg); !errors.Is(err, runner.ErrInvalidConfig) {
				t.Errorf("got %v, want ErrInvalidConfig", err)
			}
		})
	}
}
