package runner

import (
	"strings"
	"testing"
)

// A budget schedule returning a fraction outside (0, 1] must fail fast
// with a clear error instead of silently producing nonsense budgets.
func TestBudgetScheduleRangeChecked(t *testing.T) {
	cases := []struct {
		name string
		bad  float64
	}{
		{"zero", 0},
		{"negative", -0.2},
		{"above one", 1.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := fastCfg(t, "MID1", 4, 0.6, nil)
			cfg.Epochs = 3
			cfg.BudgetSchedule = func(epoch int) float64 {
				if epoch == 1 {
					return tc.bad
				}
				return 0.6
			}
			_, err := Run(cfg)
			if err == nil {
				t.Fatalf("schedule returning %g accepted", tc.bad)
			}
			if !strings.Contains(err.Error(), "budget schedule") || !strings.Contains(err.Error(), "epoch 1") {
				t.Errorf("unhelpful error: %v", err)
			}
		})
	}
}

// A valid dynamic schedule still runs and the per-epoch caps follow it.
func TestBudgetScheduleApplied(t *testing.T) {
	cfg := fastCfg(t, "MID1", 4, 0.6, nil)
	cfg.Epochs = 4
	fracs := []float64{0.5, 0.6, 0.8, 0.7}
	cfg.BudgetSchedule = func(epoch int) float64 { return fracs[epoch] }
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for e, rec := range res.Epochs {
		want := fracs[e] * res.PeakW
		if rec.BudgetW != want {
			t.Errorf("epoch %d: BudgetW = %g, want %g", e, rec.BudgetW, want)
		}
	}
}

// RunPair's concurrent policy/baseline execution must equal two serial
// runs with the same seeds.
func TestRunPairMatchesSerialRuns(t *testing.T) {
	cfg := fastCfg(t, "MID2", 4, 0.6, nil)
	cfg.Epochs = 3

	base1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pol, base2, err := RunPair(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pol.PolicyName != "baseline" {
		t.Errorf("policy result name %q", pol.PolicyName)
	}
	if base1.AvgPowerW() != base2.AvgPowerW() {
		t.Errorf("concurrent baseline avg power %g != serial %g", base2.AvgPowerW(), base1.AvgPowerW())
	}
	for i := range base1.NsPerInstr {
		if base1.NsPerInstr[i] != base2.NsPerInstr[i] {
			t.Errorf("core %d: NsPerInstr %g != %g", i, base2.NsPerInstr[i], base1.NsPerInstr[i])
		}
	}
}
