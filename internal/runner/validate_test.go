package runner

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
)

// The model-validation signals recorded per epoch must be populated and
// physically sensible for a policy run, and absent for a baseline run.
func TestValidationSignalsRecorded(t *testing.T) {
	cfg := fastCfg(t, "MID2", 8, 0.6, policy.NewFastCap())
	cfg.Epochs = 8
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Epochs[2:] {
		if e.PredictedPowerW <= 0 {
			t.Errorf("epoch %d: no power prediction", e.Epoch)
		}
		if e.RestPowerW <= 0 {
			t.Errorf("epoch %d: no measured rest power", e.Epoch)
		}
		// Fitted models converge within a couple of epochs; prediction
		// within 15% of measurement (the paper claims <10% in steady
		// state; allow slack for the short run).
		rel := math.Abs(e.PredictedPowerW-e.RestPowerW) / e.RestPowerW
		if rel > 0.15 {
			t.Errorf("epoch %d: power prediction off by %.0f%% (%g vs %g)",
				e.Epoch, rel*100, e.PredictedPowerW, e.RestPowerW)
		}
		if e.PredictedRespNs <= 0 || e.MeasuredRespNs <= 0 {
			t.Errorf("epoch %d: response signals missing (%g, %g)",
				e.Epoch, e.PredictedRespNs, e.MeasuredRespNs)
		}
	}
	// Per-core power recorded and sums near the cores total.
	for _, e := range res.Epochs {
		if len(e.CoreW) != 8 {
			t.Fatalf("epoch %d: CoreW has %d entries", e.Epoch, len(e.CoreW))
		}
		sum := 0.0
		for _, w := range e.CoreW {
			if w <= 0 {
				t.Errorf("epoch %d: non-positive core power", e.Epoch)
			}
			sum += w
		}
		if math.Abs(sum-e.CoresW)/e.CoresW > 1e-6 {
			t.Errorf("epoch %d: Σ CoreW %g != CoresW %g", e.Epoch, sum, e.CoresW)
		}
	}
}

func TestBaselineHasNoPredictions(t *testing.T) {
	cfg := fastCfg(t, "MID1", 4, 0.6, nil)
	cfg.Epochs = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Epochs {
		if e.PredictedPowerW != 0 || e.PredictedRespNs != 0 {
			t.Errorf("baseline epoch %d carries predictions", e.Epoch)
		}
		// Measured rest power still recorded.
		if e.RestPowerW <= 0 {
			t.Errorf("baseline epoch %d: no measured power", e.Epoch)
		}
	}
}

func TestGroupedPolicyEndToEnd(t *testing.T) {
	cfg := fastCfg(t, "MID2", 8, 0.8, nil)
	cfg.Epochs = 6
	const socketCap = 10.0
	cfg.Policy = policy.NewGroupedFastCap([]core.BudgetGroup{
		{Cores: []int{0, 1, 2, 3}, Budget: socketCap},
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Socket 0 (cores 0–3) epoch power stays under its cap once the
	// fitters have two observations.
	for _, e := range res.Epochs[2:] {
		sum := 0.0
		for i := 0; i < 4; i++ {
			sum += e.CoreW[i]
		}
		if sum > socketCap*1.10 {
			t.Errorf("epoch %d: socket power %g W above %g W cap (+10%% tolerance)", e.Epoch, sum, socketCap)
		}
	}
}
