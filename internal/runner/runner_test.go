package runner

import (
	"testing"

	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// fastCfg builds a small, quick experiment configuration.
func fastCfg(t *testing.T, mix string, n int, frac float64, pol policy.Policy) Config {
	t.Helper()
	spec, err := workload.MixByName(mix)
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.DefaultConfig(n)
	sc.EpochNs = 1e6
	sc.ProfileNs = 1e5
	return Config{Sim: sc, Mix: spec, BudgetFrac: frac, Epochs: 8, Policy: pol}
}

func TestRunValidation(t *testing.T) {
	cfg := fastCfg(t, "MID1", 4, 0.6, nil)
	bad := cfg
	bad.Epochs = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero epochs accepted")
	}
	bad = cfg
	bad.BudgetFrac = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero budget accepted")
	}
	bad = cfg
	bad.BudgetFrac = 1.5
	if _, err := Run(bad); err == nil {
		t.Error("budget > 1 accepted")
	}
	bad = cfg
	bad.Sim.Cores = 6 // not a multiple of 4
	if _, err := Run(bad); err == nil {
		t.Error("bad core count accepted")
	}
}

func TestBaselineRunsAtMax(t *testing.T) {
	cfg := fastCfg(t, "MID1", 4, 0.6, nil)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PolicyName != "baseline" {
		t.Errorf("policy name %q", res.PolicyName)
	}
	if len(res.Epochs) != cfg.Epochs {
		t.Fatalf("recorded %d epochs", len(res.Epochs))
	}
	for i, ns := range res.NsPerInstr {
		if ns <= 0 {
			t.Errorf("core %d time-per-instruction %g", i, ns)
		}
	}
	// Unthrottled power can exceed a 60% budget for a balanced mix.
	if res.PeakW <= 0 || res.AvgPowerW() <= 0 {
		t.Error("power accounting empty")
	}
	if res.MaxEpochPowerW() < res.AvgPowerW() {
		t.Error("max epoch power below average")
	}
}

func TestFastCapCapsPower(t *testing.T) {
	cfg := fastCfg(t, "MID2", 8, 0.6, policy.NewFastCap())
	cfg.Epochs = 12
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	budget := res.BudgetW
	// Run-average power must sit at or below the cap (small transient
	// slack allowed for the first profiling phase at full speed).
	if avg := res.AvgPowerW(); avg > budget*1.05 {
		t.Errorf("average power %g W exceeds budget %g W by >5%%", avg, budget)
	}
	// After convergence (skip 3 epochs), every epoch respects the cap
	// within the quantization/model tolerance the paper reports.
	for _, e := range res.Epochs[3:] {
		if e.AvgPowerW > budget*1.08 {
			t.Errorf("epoch %d power %g W > 108%% of budget %g W", e.Epoch, e.AvgPowerW, budget)
		}
	}
}

func TestNormalizedPerfAgainstBaseline(t *testing.T) {
	cfg := fastCfg(t, "MIX3", 8, 0.6, policy.NewFastCap())
	cfg.Epochs = 10
	pol, base, err := RunPair(cfg)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := pol.NormalizedPerf(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(norm) != 8 {
		t.Fatalf("normalized perf for %d cores", len(norm))
	}
	for i, v := range norm {
		// Capped runs are slower (≥ ~1), but not absurdly so.
		if v < 0.9 || v > 4.0 {
			t.Errorf("core %d normalized perf %g implausible", i, v)
		}
	}
	s := stats.SummarizePerf(norm)
	if s.Worst < s.Avg {
		t.Error("worst better than average")
	}
	// Fairness: FastCap's worst should be within 40% of its average even
	// on short runs.
	if s.Worst > s.Avg*1.4 {
		t.Errorf("fairness gap too wide: worst %g vs avg %g", s.Worst, s.Avg)
	}
}

func TestNormalizedPerfShapeMismatch(t *testing.T) {
	a := &Result{NsPerInstr: []float64{1, 2}}
	b := &Result{NsPerInstr: []float64{1}}
	if _, err := a.NormalizedPerf(b); err == nil {
		t.Error("shape mismatch accepted")
	}
	c := &Result{NsPerInstr: []float64{1, 0}}
	if _, err := a.NormalizedPerf(c); err == nil {
		t.Error("zero baseline accepted")
	}
}

func TestBudgetSchedule(t *testing.T) {
	cfg := fastCfg(t, "MID1", 4, 0.6, policy.NewFastCap())
	cfg.Epochs = 6
	cfg.BudgetSchedule = func(e int) float64 {
		if e < 3 {
			return 0.8
		}
		return 0.5
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs[0].BudgetW <= res.Epochs[5].BudgetW {
		t.Error("budget schedule not applied")
	}
	// Power must drop when the budget tightens.
	early := stats.Mean([]float64{res.Epochs[1].AvgPowerW, res.Epochs[2].AvgPowerW})
	late := stats.Mean([]float64{res.Epochs[4].AvgPowerW, res.Epochs[5].AvgPowerW})
	if late >= early {
		t.Errorf("power did not drop on budget cut: %g → %g", early, late)
	}
}

func TestAllPoliciesRunEndToEnd(t *testing.T) {
	pols := []policy.Policy{
		policy.NewFastCap(),
		policy.NewCPUOnly(),
		policy.NewFreqPar(),
		policy.NewEqlPwr(),
		policy.NewEqlFreq(),
	}
	for _, p := range pols {
		cfg := fastCfg(t, "MIX4", 4, 0.6, p)
		cfg.Epochs = 5
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.PolicyName != p.Name() {
			t.Errorf("policy name %q", res.PolicyName)
		}
		// All policies must keep run-average power within 15% of budget.
		if avg := res.AvgPowerW(); avg > res.BudgetW*1.15 {
			t.Errorf("%s: average power %g W far above budget %g W", p.Name(), avg, res.BudgetW)
		}
	}
}

func TestMaxBIPSEndToEnd(t *testing.T) {
	cfg := fastCfg(t, "MIX1", 4, 0.6, policy.NewMaxBIPS())
	cfg.Epochs = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if avg := res.AvgPowerW(); avg > res.BudgetW*1.15 {
		t.Errorf("MaxBIPS average power %g W above budget %g W", avg, res.BudgetW)
	}
}

func TestDeterministicResults(t *testing.T) {
	cfg := fastCfg(t, "MEM2", 4, 0.6, policy.NewFastCap())
	cfg.Epochs = 4
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgPowerW() != b.AvgPowerW() {
		t.Error("power diverged between identical runs")
	}
	for i := range a.NsPerInstr {
		if a.NsPerInstr[i] != b.NsPerInstr[i] {
			t.Errorf("core %d perf diverged", i)
		}
	}
}

func TestOoOAndMultiControllerConfigs(t *testing.T) {
	// OoO mode.
	cfg := fastCfg(t, "MEM2", 4, 0.6, policy.NewFastCap())
	cfg.Sim.OoO = true
	cfg.Epochs = 4
	if _, err := Run(cfg); err != nil {
		t.Fatalf("OoO: %v", err)
	}
	// Four controllers, skewed.
	cfg = fastCfg(t, "MEM2", 8, 0.6, policy.NewFastCap())
	cfg.Sim.Controllers = 4
	cfg.Sim.BanksPerController = 8
	cfg.Sim.SkewedAccess = true
	cfg.Epochs = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("multi-controller: %v", err)
	}
	if avg := res.AvgPowerW(); avg > res.BudgetW*1.15 {
		t.Errorf("skewed multi-controller power %g W above budget %g W", avg, res.BudgetW)
	}
}
