package runner

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/dvfs"
)

// baselineEntry is one singleflight slot of a BaselineCache: the first
// caller to claim the key simulates the baseline, everyone else blocks
// on the same Once and shares the *Result.
type baselineEntry struct {
	once sync.Once
	res  *Result
	err  error
}

// BaselineCache memoizes all-max baseline runs by full run identity.
// The baseline is the one run every figure, cluster member and serve
// tenant normalizes against, and it is pure: Policy is nil, the budget
// never binds, so its Result is a deterministic function of the mix,
// the simulator configuration and the epoch count — nothing else. A
// cache shared across Labs and cluster members therefore returns
// bit-identical results while simulating each distinct configuration
// exactly once.
//
// Cached Results are shared pointers: callers must treat them (and
// their slices) as read-only, which every consumer of the baseline
// already does (NormalizedPerf and friends only read).
//
// The zero value is ready to use and safe for concurrent callers.
type BaselineCache struct {
	mu sync.Mutex
	m  map[string]*baselineEntry
}

// SharedBaselines is the process-wide cache. Experiment Labs and the
// cluster sweep delegate to it so members with identical machine+mix
// configurations solve the baseline once per process rather than once
// per Lab (or once per cluster member).
var SharedBaselines BaselineCache

// baselineKey canonicalizes everything the baseline's output depends
// on. Unlike a per-Lab key it cannot lean on fixed options: two Labs
// (or a Lab and a cluster sweep) may differ in any Config field, so
// the key spells out the mix content, every sim.Config field —
// including ladders, power calibrations, timing and seed — and the
// epoch count.
func baselineKey(cfg Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "mix%v|e%d|n%d/ooo%v/ctl%d/banks%d/skew%v",
		cfg.Mix, cfg.Epochs, cfg.Sim.Cores, cfg.Sim.OoO,
		cfg.Sim.Controllers, cfg.Sim.BanksPerController, cfg.Sim.SkewedAccess)
	fmt.Fprintf(&b, "|len%g/prof%g/seed%d", cfg.Sim.EpochNs, cfg.Sim.ProfileNs, cfg.Sim.Seed)
	fmt.Fprintf(&b, "|cpw%+v|mpw%+v|ps%g|tim%+v",
		cfg.Sim.CorePower, cfg.Sim.MemPower, cfg.Sim.PsW, cfg.Sim.Timing)
	ladder := func(tag string, l *dvfs.Ladder) {
		if l != nil {
			fmt.Fprintf(&b, "|%s:f%v:v%v", tag, l.Freqs(), l.Volts())
		}
	}
	ladder("core", cfg.Sim.CoreLadder)
	ladder("mem", cfg.Sim.MemLadder)
	if cfg.Sim.Machine != nil {
		b.WriteString("|mach")
		b.WriteString(cfg.Sim.Machine.Fingerprint())
	}
	return b.String()
}

// Run returns the baseline result for cfg, simulating it at most once
// per distinct configuration. cfg must be baseline-shaped: Policy nil,
// BudgetFrac 1 and no budget schedule — anything else is not a pure
// function of the key and is executed uncached.
func (c *BaselineCache) Run(cfg Config) (*Result, error) {
	if cfg.Policy != nil || cfg.BudgetSchedule != nil || cfg.BudgetFrac != 1 {
		return Run(cfg)
	}
	key := baselineKey(cfg)
	c.mu.Lock()
	if c.m == nil {
		c.m = map[string]*baselineEntry{}
	}
	e, ok := c.m[key]
	if !ok {
		e = &baselineEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.res, e.err = Run(cfg)
	})
	return e.res, e.err
}
