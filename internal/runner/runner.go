// Package runner drives the closed loop of the FastCap paper's §III-C:
// per epoch, run the 300 µs profiling phase, refresh the online power
// model fits, hand the policy a Snapshot, apply its DVFS decision, and
// finish the epoch — collecting the power and performance series every
// figure of the evaluation is built from.
//
// The loop comes in two forms. Session is the streaming API: one epoch
// per Step call, with per-epoch observers, mid-run budget retargeting
// and context cancellation, against any Platform (the simulator, a
// recorded-trace replay, or a production adapter). Run and RunPair are
// the batch form — thin loops over Session.Step that return after the
// last epoch, kept for the figure harness and produce bit-identical
// results.
package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/cpusim"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Config describes one experiment run.
type Config struct {
	Sim        sim.Config
	Mix        workload.MixSpec
	BudgetFrac float64
	Epochs     int
	// Policy decides DVFS settings; nil runs the all-max baseline the
	// paper normalizes against.
	Policy policy.Policy
	// BudgetSchedule, if non-nil, overrides BudgetFrac per epoch
	// (dynamic budget experiments). Every returned fraction must lie in
	// (0, 1]; the run fails fast on the first epoch whose value does
	// not. Equivalent to the WithBudgetTrace session option.
	BudgetSchedule func(epoch int) float64
}

// EpochRecord is one epoch's outcome.
type EpochRecord struct {
	Epoch int
	// AvgPowerW is the whole-epoch average system power; CoresW/MemW
	// split it (epoch-average, excluding Ps).
	AvgPowerW float64
	CoresW    float64
	MemW      float64
	// BudgetW is the cap in force during this epoch; PeakW the
	// platform's nameplate peak, so streaming observers can normalize
	// without reaching back to the Session.
	BudgetW float64
	PeakW   float64
	// Decision applied after the profiling phase.
	CoreSteps []int
	MemStep   int
	// Instr is per-core instructions retired in the epoch.
	Instr []float64
	// CoreW is the per-core epoch-average power (W).
	CoreW []float64
	// Model-validation signals (policy runs only): the fitted-model
	// power prediction at the applied operating point, the measured
	// power over the post-decision window, and the Eq. 1 response-time
	// prediction vs the measured mean response in that window.
	PredictedPowerW float64
	RestPowerW      float64
	PredictedRespNs float64
	MeasuredRespNs  float64
}

// Result aggregates a full run.
type Result struct {
	Mix        string
	PolicyName string
	Cores      int
	PeakW      float64
	BudgetW    float64
	Epochs     []EpochRecord
	// TotalInstr is per-core instructions over the run; NsPerInstr the
	// per-core average time per instruction (the CPI-equivalent metric
	// used for normalized performance).
	TotalInstr  []float64
	NsPerInstr  []float64
	TotalTimeNs float64
}

// AvgPowerW returns the run-average system power.
func (r *Result) AvgPowerW() float64 {
	if len(r.Epochs) == 0 {
		return 0
	}
	s := 0.0
	for _, e := range r.Epochs {
		s += e.AvgPowerW
	}
	return s / float64(len(r.Epochs))
}

// MaxEpochPowerW returns the highest single-epoch average power — the
// "maximum average power" bars of Fig. 12.
func (r *Result) MaxEpochPowerW() float64 {
	m := 0.0
	for _, e := range r.Epochs {
		if e.AvgPowerW > m {
			m = e.AvgPowerW
		}
	}
	return m
}

// NormalizedPerf divides this run's per-core time-per-instruction by the
// baseline's; values above 1 are the percentage performance loss the
// paper plots.
func (r *Result) NormalizedPerf(baseline *Result) ([]float64, error) {
	if len(r.NsPerInstr) != len(baseline.NsPerInstr) {
		return nil, fmt.Errorf("runner: baseline has %d cores, run has %d", len(baseline.NsPerInstr), len(r.NsPerInstr))
	}
	out := make([]float64, len(r.NsPerInstr))
	for i := range out {
		if baseline.NsPerInstr[i] <= 0 {
			return nil, fmt.Errorf("runner: baseline core %d made no progress", i)
		}
		out[i] = r.NsPerInstr[i] / baseline.NsPerInstr[i]
	}
	return out, nil
}

// Run executes one experiment to completion: a Session stepped from
// epoch 0 through cfg.Epochs. The Result is bit-identical to driving
// the Session.Step loop by hand.
func Run(cfg Config) (*Result, error) {
	s, err := NewSession(cfg)
	if err != nil {
		return nil, err
	}
	for {
		if _, err := s.Step(context.Background()); err != nil {
			if errors.Is(err, ErrDone) {
				break
			}
			return nil, err
		}
	}
	return s.Result(), nil
}

// combineBreakdown produces epoch-average core and memory power.
func combineBreakdown(prof, rest sim.Profile) (coresW, memW float64) {
	total := prof.WindowNs + rest.WindowNs
	var pc, pm, rc, rm float64
	for _, c := range prof.Cores {
		pc += c.PowerW
	}
	for _, m := range prof.Mem {
		pm += m.PowerW
	}
	for _, c := range rest.Cores {
		rc += c.PowerW
	}
	for _, m := range rest.Mem {
		rm += m.PowerW
	}
	coresW = (pc*prof.WindowNs + rc*rest.WindowNs) / total
	memW = (pm*prof.WindowNs + rm*rest.WindowNs) / total
	return coresW, memW
}

// controllerState carries the session-owned online estimation state: the
// per-core and memory power-model fitters, last-known good Eq. 9 inputs,
// and the current operating point.
type controllerState struct {
	cfg          Config
	plat         Platform
	layout       *sim.MachineLayout
	coreFitters  []*power.Fitter
	memFitter    *power.Fitter
	lastZBar     []float64
	lastIPA      []float64
	curCoreSteps []int
	curMemStep   int
	// snap is the reusable policy input: its slices are refilled every
	// epoch (policies only read the snapshot inside Decide).
	snap policy.Snapshot
}

func newControllerState(cfg Config, wl *workload.Workload, plat Platform, layout *sim.MachineLayout) *controllerState {
	n := cfg.Sim.Cores
	st := &controllerState{
		cfg:          cfg,
		plat:         plat,
		layout:       layout,
		lastZBar:     make([]float64, n),
		lastIPA:      make([]float64, n),
		curCoreSteps: make([]int, n),
		curMemStep:   cfg.Sim.MemLadder.MaxStep(),
	}
	for i := 0; i < n; i++ {
		app := wl.Apps[i]
		pc := layout.Power(i)
		guess := pc.DynMaxW * app.Activity
		st.coreFitters = append(st.coreFitters, power.NewCoreFitter(pc.StaticW, guess))
		st.lastZBar[i] = 500 // neutral prior until first profile
		st.lastIPA[i] = app.InstrPerMiss()
		st.curCoreSteps[i] = layout.Ladder(i).MaxStep()
	}
	nCtl := float64(cfg.Sim.Controllers)
	st.memFitter = power.NewMemFitter(
		cfg.Sim.MemPower.StaticW*nCtl,
		(cfg.Sim.MemPower.ClockW+cfg.Sim.MemPower.TransferW)*nCtl,
	)
	return st
}

// observe feeds the profiling window's measurements to the fitters and
// refreshes the Eq. 9 estimates.
func (st *controllerState) observe(prof sim.Profile) {
	for i, cp := range prof.Cores {
		st.coreFitters[i].Observe(cp.FreqGHz/st.layout.Ladder(i).Max(), cp.PowerW)
		if cp.ZBarNs > 0 {
			st.lastZBar[i] = cp.ZBarNs
		}
		if cp.IPA > 0 {
			st.lastIPA[i] = cp.IPA
		}
	}
	memW := 0.0
	for _, mp := range prof.Mem {
		memW += mp.PowerW
	}
	st.memFitter.Observe(prof.Mem[0].FreqGHz/st.cfg.Sim.MemLadder.Max(), memW)
}

// snapshot assembles the policy input for this epoch into the reusable
// snapshot buffer. The returned pointer (and its slices) is valid until
// the next snapshot call — policies consume it within Decide.
func (st *controllerState) snapshot(prof sim.Profile, budgetW float64) *policy.Snapshot {
	n := st.cfg.Sim.Cores
	s := &st.snap
	s.ZBar = append(s.ZBar[:0], st.lastZBar...)
	s.IPA = append(s.IPA[:0], st.lastIPA...)
	if cap(s.C) < n {
		s.C = make([]float64, n)
		for i := range s.C {
			s.C[i] = cpusim.L2HitTimeNs
		}
	} else {
		s.C = s.C[:n]
	}
	s.AccessProb = st.plat.AccessProb()
	s.SbBar = st.plat.SbBarNs()
	s.CoreLadder = st.layout.Uniform()
	s.CoreLadders = st.layout.Ladders()
	s.MemLadder = st.cfg.Sim.MemLadder
	s.BudgetW = budgetW
	s.MeasuredCoreW = s.MeasuredCoreW[:0]
	s.CurCoreSteps = append(s.CurCoreSteps[:0], st.curCoreSteps...)
	s.CurMemStep = st.curMemStep
	s.Power.Cores = s.Power.Cores[:0]
	for i := 0; i < n; i++ {
		s.MeasuredCoreW = append(s.MeasuredCoreW, prof.Cores[i].PowerW)
		s.Power.Cores = append(s.Power.Cores, st.coreFitters[i].Model())
	}
	s.Power.Mem = st.memFitter.Model()
	s.Power.Ps = st.cfg.Sim.PsW
	s.MemStats = s.MemStats[:0]
	s.MeasuredMemW = 0
	for _, mp := range prof.Mem {
		s.MemStats = append(s.MemStats, mp.Stats)
		s.MeasuredMemW += mp.PowerW
	}
	return s
}

// RunPair executes the policy run and its all-max baseline with
// identical seeds and returns both. The two runs build independent
// systems, so they execute concurrently; results are deterministic
// because each run owns its engine and RNGs.
func RunPair(cfg Config) (pol, base *Result, err error) {
	var (
		wg      sync.WaitGroup
		baseErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		bcfg := cfg
		bcfg.Policy = nil
		// The baseline never applies DVFS, so the budget only affects its
		// BudgetW bookkeeping. Drop the schedule rather than invoke a
		// possibly-stateful caller callback from two goroutines at once.
		if bcfg.BudgetSchedule != nil {
			bcfg.BudgetSchedule = nil
			if !(bcfg.BudgetFrac > 0 && bcfg.BudgetFrac <= 1) {
				bcfg.BudgetFrac = 1
			}
		}
		base, baseErr = Run(bcfg)
	}()
	pol, err = Run(cfg)
	wg.Wait()
	if err != nil {
		return nil, nil, err
	}
	if baseErr != nil {
		return nil, nil, baseErr
	}
	return pol, base, nil
}
