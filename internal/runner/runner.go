// Package runner drives the closed loop of the FastCap paper's §III-C:
// per epoch, run the 300 µs profiling phase, refresh the online power
// model fits, hand the policy a Snapshot, apply its DVFS decision, and
// finish the epoch — collecting the power and performance series every
// figure of the evaluation is built from.
package runner

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/cpusim"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Config describes one experiment run.
type Config struct {
	Sim        sim.Config
	Mix        workload.MixSpec
	BudgetFrac float64
	Epochs     int
	// Policy decides DVFS settings; nil runs the all-max baseline the
	// paper normalizes against.
	Policy policy.Policy
	// BudgetSchedule, if non-nil, overrides BudgetFrac per epoch
	// (dynamic budget experiments). Every returned fraction must lie in
	// (0, 1]; Run fails fast on the first epoch whose value does not.
	BudgetSchedule func(epoch int) float64
}

// EpochRecord is one epoch's outcome.
type EpochRecord struct {
	Epoch int
	// AvgPowerW is the whole-epoch average system power; CoresW/MemW
	// split it (epoch-average, excluding Ps).
	AvgPowerW float64
	CoresW    float64
	MemW      float64
	// BudgetW is the cap in force during this epoch.
	BudgetW float64
	// Decision applied after the profiling phase.
	CoreSteps []int
	MemStep   int
	// Instr is per-core instructions retired in the epoch.
	Instr []float64
	// CoreW is the per-core epoch-average power (W).
	CoreW []float64
	// Model-validation signals (policy runs only): the fitted-model
	// power prediction at the applied operating point, the measured
	// power over the post-decision window, and the Eq. 1 response-time
	// prediction vs the measured mean response in that window.
	PredictedPowerW float64
	RestPowerW      float64
	PredictedRespNs float64
	MeasuredRespNs  float64
}

// Result aggregates a full run.
type Result struct {
	Mix        string
	PolicyName string
	Cores      int
	PeakW      float64
	BudgetW    float64
	Epochs     []EpochRecord
	// TotalInstr is per-core instructions over the run; NsPerInstr the
	// per-core average time per instruction (the CPI-equivalent metric
	// used for normalized performance).
	TotalInstr  []float64
	NsPerInstr  []float64
	TotalTimeNs float64
}

// AvgPowerW returns the run-average system power.
func (r *Result) AvgPowerW() float64 {
	if len(r.Epochs) == 0 {
		return 0
	}
	s := 0.0
	for _, e := range r.Epochs {
		s += e.AvgPowerW
	}
	return s / float64(len(r.Epochs))
}

// MaxEpochPowerW returns the highest single-epoch average power — the
// "maximum average power" bars of Fig. 12.
func (r *Result) MaxEpochPowerW() float64 {
	m := 0.0
	for _, e := range r.Epochs {
		if e.AvgPowerW > m {
			m = e.AvgPowerW
		}
	}
	return m
}

// NormalizedPerf divides this run's per-core time-per-instruction by the
// baseline's; values above 1 are the percentage performance loss the
// paper plots.
func (r *Result) NormalizedPerf(baseline *Result) ([]float64, error) {
	if len(r.NsPerInstr) != len(baseline.NsPerInstr) {
		return nil, fmt.Errorf("runner: baseline has %d cores, run has %d", len(baseline.NsPerInstr), len(r.NsPerInstr))
	}
	out := make([]float64, len(r.NsPerInstr))
	for i := range out {
		if baseline.NsPerInstr[i] <= 0 {
			return nil, fmt.Errorf("runner: baseline core %d made no progress", i)
		}
		out[i] = r.NsPerInstr[i] / baseline.NsPerInstr[i]
	}
	return out, nil
}

// Run executes one experiment.
func Run(cfg Config) (*Result, error) {
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("runner: non-positive epoch count")
	}
	if cfg.BudgetFrac <= 0 || cfg.BudgetFrac > 1 {
		if cfg.BudgetSchedule == nil {
			return nil, fmt.Errorf("runner: budget fraction %g outside (0, 1]", cfg.BudgetFrac)
		}
	}
	wl, err := workload.Instantiate(cfg.Mix, cfg.Sim.Cores)
	if err != nil {
		return nil, err
	}
	sys, err := sim.New(cfg.Sim, wl)
	if err != nil {
		return nil, err
	}
	peak := sys.PeakPowerW()

	res := &Result{
		Mix:        cfg.Mix.Name,
		Cores:      cfg.Sim.Cores,
		PeakW:      peak,
		BudgetW:    cfg.BudgetFrac * peak,
		PolicyName: "baseline",
		TotalInstr: make([]float64, cfg.Sim.Cores),
		NsPerInstr: make([]float64, cfg.Sim.Cores),
	}
	if cfg.Policy != nil {
		res.PolicyName = cfg.Policy.Name()
	}

	st := newControllerState(cfg, sys)
	sys.Start()

	// One flat backing array per per-epoch series: every EpochRecord
	// slices into it, so the whole run costs three slice allocations
	// instead of three per epoch.
	n := cfg.Sim.Cores
	res.Epochs = make([]EpochRecord, 0, cfg.Epochs)
	instrBuf := make([]float64, cfg.Epochs*n)
	coreWBuf := make([]float64, cfg.Epochs*n)
	stepsBuf := make([]int, cfg.Epochs*n)

	for e := 0; e < cfg.Epochs; e++ {
		budget := res.BudgetW
		if cfg.BudgetSchedule != nil {
			frac := cfg.BudgetSchedule(e)
			if math.IsNaN(frac) || frac <= 0 || frac > 1 {
				return nil, fmt.Errorf("runner: budget schedule returned %g for epoch %d, want a fraction in (0, 1]", frac, e)
			}
			budget = frac * peak
		}
		prof := sys.RunProfile()
		st.observe(prof)

		rec := EpochRecord{
			Epoch:   e,
			BudgetW: budget,
			MemStep: st.curMemStep,
			Instr:   instrBuf[e*n : (e+1)*n : (e+1)*n],
		}
		if cfg.Policy != nil {
			snap := st.snapshot(prof, budget)
			dec, err := cfg.Policy.Decide(snap)
			if err != nil {
				return nil, fmt.Errorf("epoch %d: %w", e, err)
			}
			if err := sys.Apply(dec.CoreSteps, dec.MemStep); err != nil {
				return nil, fmt.Errorf("epoch %d: %w", e, err)
			}
			st.curCoreSteps = append(st.curCoreSteps[:0], dec.CoreSteps...)
			st.curMemStep = dec.MemStep
			rec.CoreSteps = stepsBuf[e*n : (e+1)*n : (e+1)*n]
			copy(rec.CoreSteps, dec.CoreSteps)
			rec.MemStep = dec.MemStep
			rec.PredictedPowerW = snap.PredictPower(dec.CoreSteps, dec.MemStep)
			sb := snap.SbBar * snap.MemLadder.Max() / snap.MemLadder.Freq(dec.MemStep)
			for _, ms := range snap.MemStats {
				rec.PredictedRespNs += ms.Response(sb)
			}
			rec.PredictedRespNs /= float64(len(snap.MemStats))
		} else {
			rec.CoreSteps = stepsBuf[e*n : (e+1)*n : (e+1)*n]
			copy(rec.CoreSteps, st.curCoreSteps)
		}

		rest := sys.FinishEpoch()
		rec.RestPowerW = rest.TotalPowerW
		var respSum float64
		respN := 0
		for _, mp := range rest.Mem {
			if mp.MeasuredRespNs > 0 {
				respSum += mp.MeasuredRespNs
				respN++
			}
		}
		if respN > 0 {
			rec.MeasuredRespNs = respSum / float64(respN)
		}
		rec.AvgPowerW = sys.CombinePower(prof, rest)
		rec.CoresW, rec.MemW = combineBreakdown(prof, rest)
		rec.CoreW = coreWBuf[e*n : (e+1)*n : (e+1)*n]
		total := prof.WindowNs + rest.WindowNs
		for i := range rec.Instr {
			rec.Instr[i] = prof.Cores[i].Counters.Instructions + rest.Cores[i].Counters.Instructions
			res.TotalInstr[i] += rec.Instr[i]
			rec.CoreW[i] = (prof.Cores[i].PowerW*prof.WindowNs + rest.Cores[i].PowerW*rest.WindowNs) / total
		}
		res.Epochs = append(res.Epochs, rec)
	}
	res.TotalTimeNs = float64(cfg.Epochs) * cfg.Sim.EpochNs
	for i := range res.NsPerInstr {
		if res.TotalInstr[i] > 0 {
			res.NsPerInstr[i] = res.TotalTimeNs / res.TotalInstr[i]
		}
	}
	return res, nil
}

// combineBreakdown produces epoch-average core and memory power.
func combineBreakdown(prof, rest sim.Profile) (coresW, memW float64) {
	total := prof.WindowNs + rest.WindowNs
	var pc, pm, rc, rm float64
	for _, c := range prof.Cores {
		pc += c.PowerW
	}
	for _, m := range prof.Mem {
		pm += m.PowerW
	}
	for _, c := range rest.Cores {
		rc += c.PowerW
	}
	for _, m := range rest.Mem {
		rm += m.PowerW
	}
	coresW = (pc*prof.WindowNs + rc*rest.WindowNs) / total
	memW = (pm*prof.WindowNs + rm*rest.WindowNs) / total
	return coresW, memW
}

// controllerState carries the runner-owned online estimation state: the
// per-core and memory power-model fitters, last-known good Eq. 9 inputs,
// and the current operating point.
type controllerState struct {
	cfg          Config
	sys          *sim.System
	coreFitters  []*power.Fitter
	memFitter    *power.Fitter
	lastZBar     []float64
	lastIPA      []float64
	curCoreSteps []int
	curMemStep   int
	// snap is the reusable policy input: its slices are refilled every
	// epoch (policies only read the snapshot inside Decide).
	snap policy.Snapshot
}

func newControllerState(cfg Config, sys *sim.System) *controllerState {
	n := cfg.Sim.Cores
	st := &controllerState{
		cfg:          cfg,
		sys:          sys,
		lastZBar:     make([]float64, n),
		lastIPA:      make([]float64, n),
		curCoreSteps: make([]int, n),
		curMemStep:   cfg.Sim.MemLadder.MaxStep(),
	}
	for i := 0; i < n; i++ {
		app := sys.Workload.Apps[i]
		guess := cfg.Sim.CorePower.DynMaxW * app.Activity
		st.coreFitters = append(st.coreFitters, power.NewCoreFitter(cfg.Sim.CorePower.StaticW, guess))
		st.lastZBar[i] = 500 // neutral prior until first profile
		st.lastIPA[i] = app.InstrPerMiss()
		st.curCoreSteps[i] = cfg.Sim.CoreLadder.MaxStep()
	}
	nCtl := float64(cfg.Sim.Controllers)
	st.memFitter = power.NewMemFitter(
		cfg.Sim.MemPower.StaticW*nCtl,
		(cfg.Sim.MemPower.ClockW+cfg.Sim.MemPower.TransferW)*nCtl,
	)
	return st
}

// observe feeds the profiling window's measurements to the fitters and
// refreshes the Eq. 9 estimates.
func (st *controllerState) observe(prof sim.Profile) {
	coreMax := st.cfg.Sim.CoreLadder.Max()
	for i, cp := range prof.Cores {
		st.coreFitters[i].Observe(cp.FreqGHz/coreMax, cp.PowerW)
		if cp.ZBarNs > 0 {
			st.lastZBar[i] = cp.ZBarNs
		}
		if cp.IPA > 0 {
			st.lastIPA[i] = cp.IPA
		}
	}
	memW := 0.0
	for _, mp := range prof.Mem {
		memW += mp.PowerW
	}
	st.memFitter.Observe(prof.Mem[0].FreqGHz/st.cfg.Sim.MemLadder.Max(), memW)
}

// snapshot assembles the policy input for this epoch into the reusable
// snapshot buffer. The returned pointer (and its slices) is valid until
// the next snapshot call — policies consume it within Decide.
func (st *controllerState) snapshot(prof sim.Profile, budgetW float64) *policy.Snapshot {
	n := st.cfg.Sim.Cores
	s := &st.snap
	s.ZBar = append(s.ZBar[:0], st.lastZBar...)
	s.IPA = append(s.IPA[:0], st.lastIPA...)
	if cap(s.C) < n {
		s.C = make([]float64, n)
		for i := range s.C {
			s.C[i] = cpusim.L2HitTimeNs
		}
	} else {
		s.C = s.C[:n]
	}
	s.AccessProb = st.sys.AccessProb()
	s.SbBar = st.sys.SbBarNs()
	s.CoreLadder = st.cfg.Sim.CoreLadder
	s.MemLadder = st.cfg.Sim.MemLadder
	s.BudgetW = budgetW
	s.MeasuredCoreW = s.MeasuredCoreW[:0]
	s.CurCoreSteps = append(s.CurCoreSteps[:0], st.curCoreSteps...)
	s.CurMemStep = st.curMemStep
	s.Power.Cores = s.Power.Cores[:0]
	for i := 0; i < n; i++ {
		s.MeasuredCoreW = append(s.MeasuredCoreW, prof.Cores[i].PowerW)
		s.Power.Cores = append(s.Power.Cores, st.coreFitters[i].Model())
	}
	s.Power.Mem = st.memFitter.Model()
	s.Power.Ps = st.cfg.Sim.PsW
	s.MemStats = s.MemStats[:0]
	s.MeasuredMemW = 0
	for _, mp := range prof.Mem {
		s.MemStats = append(s.MemStats, mp.Stats)
		s.MeasuredMemW += mp.PowerW
	}
	return s
}

// RunPair executes the policy run and its all-max baseline with
// identical seeds and returns both. The two runs build independent
// systems, so they execute concurrently; results are deterministic
// because each run owns its engine and RNGs.
func RunPair(cfg Config) (pol, base *Result, err error) {
	var (
		wg      sync.WaitGroup
		baseErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		bcfg := cfg
		bcfg.Policy = nil
		// The baseline never applies DVFS, so the budget only affects its
		// BudgetW bookkeeping. Drop the schedule rather than invoke a
		// possibly-stateful caller callback from two goroutines at once.
		if bcfg.BudgetSchedule != nil {
			bcfg.BudgetSchedule = nil
			if !(bcfg.BudgetFrac > 0 && bcfg.BudgetFrac <= 1) {
				bcfg.BudgetFrac = 1
			}
		}
		base, baseErr = Run(bcfg)
	}()
	pol, err = Run(cfg)
	wg.Wait()
	if err != nil {
		return nil, nil, err
	}
	if baseErr != nil {
		return nil, nil, baseErr
	}
	return pol, base, nil
}
