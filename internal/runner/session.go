package runner

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Platform is the minimal machine surface the §III-C controller needs:
// run the profiling window, apply a DVFS decision, finish the epoch,
// and report the power/queue statistics the policy consumes. It is
// implemented by *sim.System (the event-driven simulator) and by
// *replay.Platform (playback of a recorded run); production adapters
// wrapping real perf counters and DVFS sysfs knobs would implement the
// same eight methods.
//
// Buffer ownership follows the sim.System contract: the Profiles
// returned by RunProfile and FinishEpoch may alias platform-owned
// buffers, each valid until the next call of the same method.
type Platform interface {
	// Start launches the machine; called once, before the first epoch.
	Start()
	// RunProfile advances through the epoch's profiling window and
	// returns its measurements. Called once per epoch, first.
	RunProfile() sim.Profile
	// Apply transitions to the decided operating point: one core-ladder
	// step per core plus the common memory step.
	Apply(coreSteps []int, memStep int) error
	// FinishEpoch advances to the epoch boundary and returns the
	// post-decision window's measurements.
	FinishEpoch() sim.Profile
	// CombinePower returns the whole-epoch average power given the
	// epoch's two windows.
	CombinePower(profile, rest sim.Profile) float64
	// PeakPowerW is the nameplate peak budgets are fractions of.
	PeakPowerW() float64
	// AccessProb is the per-core controller access distribution
	// ([core][controller]) used for weighted response times.
	AccessProb() [][]float64
	// SbBarNs is the minimum memory bus transfer time s̄_b.
	SbBarNs() float64
}

var _ Platform = (*sim.System)(nil)

// ErrInvalidConfig tags configuration errors detected before any
// simulation work: non-positive epoch counts, budgets outside (0, 1],
// an empty workload mix, or an unbuildable machine. Callers test with
// errors.Is(err, ErrInvalidConfig).
var ErrInvalidConfig = errors.New("runner: invalid config")

// ErrDone is returned by Session.Step once the configured number of
// epochs has completed (or after Result finalized the session). It
// signals normal termination, not failure.
var ErrDone = errors.New("runner: session done")

// ErrConcurrentStep is returned by Step when another Step (or a
// Result finalization) is already in flight on the same session. The
// control loop is strictly sequential — one epoch at a time — so a
// second concurrent driver is always a caller bug; the session turns
// the would-be data race into this typed, errors.Is-able refusal and
// stays usable from the original driver.
var ErrConcurrentStep = errors.New("runner: concurrent Step on session")

// SessionOption configures a Session.
type SessionOption func(*sessionOptions)

type sessionOptions struct {
	platform  Platform
	wrap      func(Platform) Platform
	trace     func(epoch int) float64
	observers []func(EpochRecord)
}

// WithObserver registers fn to be called after every completed epoch
// with that epoch's record, before Step returns it. Observers run on
// the Step caller's goroutine in registration order. The record's
// slices are backed by run-length buffers and stay valid for the life
// of the session, so observers may retain them. An observer must not
// call Result — the epoch that invoked it is still in flight, so the
// call would deadlock; a re-entrant Step fails fast with
// ErrConcurrentStep instead.
func WithObserver(fn func(EpochRecord)) SessionOption {
	return func(o *sessionOptions) { o.observers = append(o.observers, fn) }
}

// WithBudgetTrace installs a per-epoch budget schedule: before each
// epoch the trace is consulted with the epoch index and must return a
// fraction of peak power in (0, 1]. A trace takes precedence over the
// static Config.BudgetFrac; a later SetBudgetFrac call detaches it.
// Setting Config.BudgetSchedule is equivalent to passing that function
// here.
func WithBudgetTrace(trace func(epoch int) float64) SessionOption {
	return func(o *sessionOptions) { o.trace = trace }
}

// WithPlatform runs the controller against p instead of building a
// sim.System from Config.Sim. The Config still supplies everything the
// controller itself needs — core count, DVFS ladders, power-model
// priors (via the workload mix), and the epoch geometry — so it must
// describe the same machine shape p exposes.
func WithPlatform(p Platform) SessionOption {
	return func(o *sessionOptions) { o.platform = p }
}

// WithPlatformWrap interposes wrap around the session's platform after
// construction (whether built from Config.Sim or supplied via
// WithPlatform) — the hook pass-through instruments like
// replay.NewRecorder attach with, without duplicating the session's
// own platform building. The wrapped platform must expose the same
// machine shape.
func WithPlatformWrap(wrap func(Platform) Platform) SessionOption {
	return func(o *sessionOptions) { o.wrap = wrap }
}

// Session is the streaming form of the §III-C control loop: one epoch
// per Step call — profile, fit, decide, apply, finish — with the
// telemetry of that epoch returned (and streamed to observers) as it
// happens. Sessions support mid-run budget retargeting (SetBudgetFrac)
// and cancellation (the Step context), which the batch Run API cannot
// express.
//
// A Session is single-threaded in its Step calls: one driver advances
// the loop. SetBudgetFrac, Epoch and PeakPowerW may be called
// concurrently with Step. A second goroutine that calls Step while one
// is in flight gets the typed ErrConcurrentStep instead of a data
// race, and Result serializes against Step, so a supervising service
// may finalize a session it no longer steps. Run and RunPair are thin
// loops over Step and produce bit-identical Results.
type Session struct {
	cfg  Config
	plat Platform
	st   *controllerState
	res  *Result
	peak float64

	// Flat per-epoch series backing arrays (see Run's allocation note).
	instrBuf []float64
	coreWBuf []float64
	stepsBuf []int

	observers []func(EpochRecord)

	mu         sync.Mutex // guards budgetFrac and trace
	budgetFrac float64
	trace      func(epoch int) float64

	// stepMu serializes Step and Result: held for the duration of an
	// epoch (TryLock in Step, so a concurrent driver fails fast with
	// ErrConcurrentStep) and across finalization.
	stepMu    sync.Mutex
	epoch     atomic.Int64
	err       error // sticky: first failure poisons the session
	finalized bool
}

// validateConfig fail-fasts on configuration the controller can reject
// without building anything. hasTrace relaxes the static BudgetFrac
// check, matching Run's historical contract for schedule-driven runs.
// A machine spec with explicit app placement supplies the workload
// itself, so the mix check is skipped for it.
func validateConfig(cfg Config, hasTrace bool) error {
	if cfg.Epochs <= 0 {
		return fmt.Errorf("%w: epoch count %d, want > 0", ErrInvalidConfig, cfg.Epochs)
	}
	if !hasTrace && (math.IsNaN(cfg.BudgetFrac) || cfg.BudgetFrac <= 0 || cfg.BudgetFrac > 1) {
		return fmt.Errorf("%w: budget fraction %g outside (0, 1]", ErrInvalidConfig, cfg.BudgetFrac)
	}
	if !machineHasPlacement(cfg.Sim.Machine) {
		empty := true
		for _, a := range cfg.Mix.Apps {
			if a != "" {
				empty = false
				break
			}
		}
		if empty {
			return fmt.Errorf("%w: workload mix %q names no applications", ErrInvalidConfig, cfg.Mix.Name)
		}
	}
	if cfg.Sim.Cores <= 0 {
		return fmt.Errorf("%w: core count %d, want > 0", ErrInvalidConfig, cfg.Sim.Cores)
	}
	// sim.New re-validates, but a session built on an injected platform
	// (WithPlatform) never reaches it — check here so a malformed
	// schedule always fails typed before the run starts.
	if err := cfg.Sim.PhaseSchedule.Validate(); err != nil {
		return fmt.Errorf("%w: %w", ErrInvalidConfig, err)
	}
	return nil
}

// machineHasPlacement reports whether the machine spec pins apps to
// core classes (full placement is enforced by the spec's own Validate).
func machineHasPlacement(m *sim.MachineSpec) bool {
	if m == nil {
		return false
	}
	for _, cl := range m.Classes {
		if len(cl.Apps) > 0 {
			return true
		}
	}
	return false
}

// NewSession validates the configuration, builds the platform (unless
// WithPlatform supplied one) and the controller state, and starts the
// machine. The first Step call executes epoch 0.
func NewSession(cfg Config, opts ...SessionOption) (*Session, error) {
	var o sessionOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.trace == nil {
		o.trace = cfg.BudgetSchedule
	}
	if err := validateConfig(cfg, o.trace != nil); err != nil {
		return nil, err
	}
	layout, err := cfg.Sim.Layout()
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidConfig, err)
	}
	name := cfg.Mix.Name
	if name == "" && cfg.Sim.Machine != nil {
		name = cfg.Sim.Machine.Name
	}
	wl, err := layout.Workload(cfg.Mix, name, cfg.Sim.Cores)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidConfig, err)
	}
	plat := o.platform
	if plat == nil {
		sys, err := sim.New(cfg.Sim, wl)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrInvalidConfig, err)
		}
		plat = sys
	} else if got := len(plat.AccessProb()); got != cfg.Sim.Cores {
		// Fail fast on machine-shape mismatch: the controller sizes its
		// fitters and record buffers from the config, so a platform with
		// a different core count would panic mid-run otherwise.
		return nil, fmt.Errorf("%w: platform has %d cores, config %d", ErrInvalidConfig, got, cfg.Sim.Cores)
	}
	if o.wrap != nil {
		plat = o.wrap(plat)
		if plat == nil {
			return nil, fmt.Errorf("%w: platform wrapper returned nil", ErrInvalidConfig)
		}
	}
	peak := plat.PeakPowerW()

	res := &Result{
		Mix:        wl.Spec.Name,
		Cores:      cfg.Sim.Cores,
		PeakW:      peak,
		BudgetW:    cfg.BudgetFrac * peak,
		PolicyName: "baseline",
		TotalInstr: make([]float64, cfg.Sim.Cores),
		NsPerInstr: make([]float64, cfg.Sim.Cores),
	}
	if cfg.Policy != nil {
		res.PolicyName = cfg.Policy.Name()
	}

	s := &Session{
		cfg:        cfg,
		plat:       plat,
		st:         newControllerState(cfg, wl, plat, layout),
		res:        res,
		peak:       peak,
		observers:  o.observers,
		budgetFrac: cfg.BudgetFrac,
		trace:      o.trace,
	}
	plat.Start()

	// One flat backing array per per-epoch series: every EpochRecord
	// slices into it, so the whole run costs three slice allocations
	// instead of three per epoch.
	n := cfg.Sim.Cores
	res.Epochs = make([]EpochRecord, 0, cfg.Epochs)
	s.instrBuf = make([]float64, cfg.Epochs*n)
	s.coreWBuf = make([]float64, cfg.Epochs*n)
	s.stepsBuf = make([]int, cfg.Epochs*n)
	return s, nil
}

// Epoch returns the index of the next epoch Step would execute. Safe
// to call concurrently with Step.
func (s *Session) Epoch() int { return int(s.epoch.Load()) }

// TotalEpochs returns the configured run length — how many Steps the
// session executes before ErrDone. Supervisors (the serving layer, the
// cluster coordinator) size buffers and detect natural completion from
// it without consuming a Step call.
func (s *Session) TotalEpochs() int { return s.cfg.Epochs }

// EpochNs returns the configured control-epoch length in nanoseconds.
// Progress telemetry needs it to turn instructions-per-epoch into a
// rate: instr/EpochNs is numerically giga-instructions per second
// (BIPS), the unit SLO targets are declared in.
func (s *Session) EpochNs() float64 { return s.cfg.Sim.EpochNs }

// MaxCoreSteps returns each core's top DVFS ladder step — the operating
// point of an unthrottled core. Compared against an EpochRecord's
// CoreSteps it tells a supervisor whether the capping policy had to
// shed frequency that epoch (the cluster arbiter's throttle signal).
// The returned slice is freshly allocated.
func (s *Session) MaxCoreSteps() []int {
	out := make([]int, s.cfg.Sim.Cores)
	for i := range out {
		out[i] = s.st.layout.Ladder(i).MaxStep()
	}
	return out
}

// PeakPowerW returns the platform's nameplate peak power — the
// reference budget fractions are taken against.
func (s *Session) PeakPowerW() float64 { return s.peak }

// SetBudgetFrac retargets the power budget mid-flight: from the next
// Step on, the cap is f × peak. An installed budget trace (WithBudgetTrace
// or Config.BudgetSchedule) is detached — an explicit retarget
// overrides the remaining schedule. Safe to call concurrently with
// Step; the change deterministically takes effect on the next epoch,
// never the one in progress.
func (s *Session) SetBudgetFrac(f float64) error {
	if math.IsNaN(f) || f <= 0 || f > 1 {
		return fmt.Errorf("%w: budget fraction %g outside (0, 1]", ErrInvalidConfig, f)
	}
	s.mu.Lock()
	s.budgetFrac = f
	s.trace = nil
	s.mu.Unlock()
	return nil
}

// budgetFor resolves the cap in force for epoch e.
func (s *Session) budgetFor(e int) (float64, error) {
	s.mu.Lock()
	frac, trace := s.budgetFrac, s.trace
	s.mu.Unlock()
	if trace != nil {
		f := trace(e)
		if math.IsNaN(f) || f <= 0 || f > 1 {
			return 0, fmt.Errorf("runner: budget schedule returned %g for epoch %d, want a fraction in (0, 1]", f, e)
		}
		return f * s.peak, nil
	}
	return frac * s.peak, nil
}

// Step executes one epoch of the control loop and returns its record.
// It returns ErrDone after the configured number of epochs (or once
// Result has finalized the session), and ErrConcurrentStep if another
// Step or Result is already in flight. A context error or any epoch
// failure is sticky: the session refuses further Steps with the same
// error. Cancellation is checked between epochs — an epoch in progress
// always completes, keeping the simulated machine at an epoch boundary.
func (s *Session) Step(ctx context.Context) (EpochRecord, error) {
	if !s.stepMu.TryLock() {
		return EpochRecord{}, ErrConcurrentStep
	}
	defer s.stepMu.Unlock()
	if s.err != nil {
		return EpochRecord{}, s.err
	}
	if s.finalized || s.Epoch() >= s.cfg.Epochs {
		return EpochRecord{}, ErrDone
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			s.err = err
			return EpochRecord{}, err
		}
	}
	rec, err := s.step()
	if err != nil {
		s.err = err
		return EpochRecord{}, err
	}
	s.res.Epochs = append(s.res.Epochs, rec)
	s.epoch.Add(1)
	for _, fn := range s.observers {
		fn(rec)
	}
	return rec, nil
}

// step is one iteration of the historical Run loop body, operating on
// the session's Platform.
func (s *Session) step() (EpochRecord, error) {
	e := s.Epoch()
	n := s.cfg.Sim.Cores
	st := s.st
	budget, err := s.budgetFor(e)
	if err != nil {
		return EpochRecord{}, err
	}

	prof := s.plat.RunProfile()
	st.observe(prof)

	rec := EpochRecord{
		Epoch:   e,
		BudgetW: budget,
		PeakW:   s.peak,
		MemStep: st.curMemStep,
		Instr:   s.instrBuf[e*n : (e+1)*n : (e+1)*n],
	}
	if s.cfg.Policy != nil {
		snap := st.snapshot(prof, budget)
		dec, err := s.cfg.Policy.Decide(snap)
		if err != nil {
			return EpochRecord{}, fmt.Errorf("epoch %d: %w", e, err)
		}
		if err := s.plat.Apply(dec.CoreSteps, dec.MemStep); err != nil {
			return EpochRecord{}, fmt.Errorf("epoch %d: %w", e, err)
		}
		st.curCoreSteps = append(st.curCoreSteps[:0], dec.CoreSteps...)
		st.curMemStep = dec.MemStep
		rec.CoreSteps = s.stepsBuf[e*n : (e+1)*n : (e+1)*n]
		copy(rec.CoreSteps, dec.CoreSteps)
		rec.MemStep = dec.MemStep
		rec.PredictedPowerW = snap.PredictPower(dec.CoreSteps, dec.MemStep)
		sb := snap.SbBar * snap.MemLadder.Max() / snap.MemLadder.Freq(dec.MemStep)
		for _, ms := range snap.MemStats {
			rec.PredictedRespNs += ms.Response(sb)
		}
		rec.PredictedRespNs /= float64(len(snap.MemStats))
	} else {
		rec.CoreSteps = s.stepsBuf[e*n : (e+1)*n : (e+1)*n]
		copy(rec.CoreSteps, st.curCoreSteps)
	}

	rest := s.plat.FinishEpoch()
	rec.RestPowerW = rest.TotalPowerW
	var respSum float64
	respN := 0
	for _, mp := range rest.Mem {
		if mp.MeasuredRespNs > 0 {
			respSum += mp.MeasuredRespNs
			respN++
		}
	}
	if respN > 0 {
		rec.MeasuredRespNs = respSum / float64(respN)
	}
	rec.AvgPowerW = s.plat.CombinePower(prof, rest)
	rec.CoresW, rec.MemW = combineBreakdown(prof, rest)
	rec.CoreW = s.coreWBuf[e*n : (e+1)*n : (e+1)*n]
	total := prof.WindowNs + rest.WindowNs
	for i := range rec.Instr {
		rec.Instr[i] = prof.Cores[i].Counters.Instructions + rest.Cores[i].Counters.Instructions
		s.res.TotalInstr[i] += rec.Instr[i]
		rec.CoreW[i] = (prof.Cores[i].PowerW*prof.WindowNs + rest.Cores[i].PowerW*rest.WindowNs) / total
	}
	return rec, nil
}

// Result finalizes and returns the run aggregate over the epochs
// executed so far (all of them, for a run driven to ErrDone; a prefix,
// for a cancelled run). Finalizing ends the session: subsequent Step
// calls return ErrDone. Result is idempotent and serializes against
// Step — a concurrent caller blocks until the in-flight epoch
// completes, then finalizes, rather than racing it.
func (s *Session) Result() *Result {
	s.stepMu.Lock()
	defer s.stepMu.Unlock()
	if !s.finalized {
		s.finalized = true
		s.res.TotalTimeNs = float64(len(s.res.Epochs)) * s.cfg.Sim.EpochNs
		for i := range s.res.NsPerInstr {
			if s.res.TotalInstr[i] > 0 {
				s.res.NsPerInstr[i] = s.res.TotalTimeNs / s.res.TotalInstr[i]
			}
		}
	}
	return s.res
}
