package runner

import (
	"context"
	"errors"
	"math"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

// drive steps a session to completion and returns its result.
func drive(t *testing.T, s *Session) *Result {
	t.Helper()
	for {
		if _, err := s.Step(context.Background()); err != nil {
			if errors.Is(err, ErrDone) {
				break
			}
			t.Fatal(err)
		}
	}
	return s.Result()
}

// The golden equivalence test of the API redesign: the batch Run and a
// hand-driven Session.Step loop must produce bit-identical Results for
// the acceptance configuration (FastCap, MIX3, 16 cores, 60% budget).
func TestGoldenRunEqualsSessionLoop(t *testing.T) {
	mix, err := workload.MixByName("MIX3")
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.DefaultConfig(16)
	sc.EpochNs = 1e6
	sc.ProfileNs = 1e5
	cfg := Config{Sim: sc, Mix: mix, BudgetFrac: 0.6, Epochs: 10, Policy: policy.NewFastCap()}

	batch, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Policy = policy.NewFastCap() // fresh instance for the second run
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	streamed := drive(t, s)

	if !reflect.DeepEqual(batch, streamed) {
		t.Errorf("Run and Session.Step loop diverged:\nbatch:    %+v\nstreamed: %+v", batch, streamed)
	}
}

// Baseline runs (nil policy) must round-trip identically too.
func TestGoldenBaselineEqualsSessionLoop(t *testing.T) {
	cfg := fastCfg(t, "MID1", 4, 0.6, nil)
	batch, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if streamed := drive(t, s); !reflect.DeepEqual(batch, streamed) {
		t.Error("baseline Run and Session loop diverged")
	}
}

func TestSessionObserverStreamsEveryEpoch(t *testing.T) {
	cfg := fastCfg(t, "MID2", 4, 0.6, policy.NewFastCap())
	var seen []int
	var powers []float64
	s, err := NewSession(cfg, WithObserver(func(e EpochRecord) {
		seen = append(seen, e.Epoch)
		powers = append(powers, e.AvgPowerW)
	}))
	if err != nil {
		t.Fatal(err)
	}
	res := drive(t, s)
	if len(seen) != cfg.Epochs {
		t.Fatalf("observer saw %d epochs, want %d", len(seen), cfg.Epochs)
	}
	for i, e := range seen {
		if e != i {
			t.Errorf("observer epoch %d out of order (got %d)", i, e)
		}
		if powers[i] != res.Epochs[i].AvgPowerW {
			t.Errorf("epoch %d: streamed power %g != recorded %g", i, powers[i], res.Epochs[i].AvgPowerW)
		}
	}
}

// SetBudgetFrac between Steps takes effect on exactly the next epoch,
// deterministically.
func TestSetBudgetFracNextEpoch(t *testing.T) {
	run := func() *Result {
		cfg := fastCfg(t, "MID1", 4, 0.8, policy.NewFastCap())
		cfg.Epochs = 8
		s, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < cfg.Epochs; e++ {
			if e == 4 {
				if err := s.SetBudgetFrac(0.5); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := s.Step(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
		return s.Result()
	}
	a := run()
	for e, rec := range a.Epochs {
		want := 0.8 * a.PeakW
		if e >= 4 {
			want = 0.5 * a.PeakW
		}
		if rec.BudgetW != want {
			t.Errorf("epoch %d: budget %g W, want %g W", e, rec.BudgetW, want)
		}
	}
	// Deterministic: an identical retargeted run is bit-identical.
	if b := run(); !reflect.DeepEqual(a, b) {
		t.Error("retargeted runs diverged")
	}
	// And the cut must actually shed power.
	if a.Epochs[7].AvgPowerW >= a.Epochs[3].AvgPowerW {
		t.Errorf("power did not drop after retarget: %g → %g",
			a.Epochs[3].AvgPowerW, a.Epochs[7].AvgPowerW)
	}
}

// An explicit retarget detaches an installed budget trace.
func TestSetBudgetFracOverridesTrace(t *testing.T) {
	cfg := fastCfg(t, "MID1", 4, 0.6, policy.NewFastCap())
	cfg.Epochs = 6
	s, err := NewSession(cfg, WithBudgetTrace(func(e int) float64 { return 0.9 }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.SetBudgetFrac(0.4); err != nil {
		t.Fatal(err)
	}
	res := drive(t, s)
	if got := res.Epochs[0].BudgetW; got != 0.9*res.PeakW {
		t.Errorf("epoch 0 budget %g, want trace value %g", got, 0.9*res.PeakW)
	}
	for _, e := range res.Epochs[1:] {
		if e.BudgetW != 0.4*res.PeakW {
			t.Errorf("epoch %d budget %g, want retargeted %g", e.Epoch, e.BudgetW, 0.4*res.PeakW)
		}
	}
	if err := s.SetBudgetFrac(0); err == nil || !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("zero budget fraction accepted: %v", err)
	}
}

// Config.BudgetSchedule and WithBudgetTrace are the same mechanism.
func TestBudgetScheduleEqualsTraceOption(t *testing.T) {
	trace := func(e int) float64 {
		if e < 3 {
			return 0.8
		}
		return 0.5
	}
	cfg := fastCfg(t, "MID1", 4, 0.6, policy.NewFastCap())
	cfg.BudgetSchedule = trace
	viaField, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.BudgetSchedule = nil
	cfg.Policy = policy.NewFastCap()
	s, err := NewSession(cfg, WithBudgetTrace(trace))
	if err != nil {
		t.Fatal(err)
	}
	if viaOpt := drive(t, s); !reflect.DeepEqual(viaField, viaOpt) {
		t.Error("BudgetSchedule field and WithBudgetTrace option diverged")
	}
}

// Cancelling the context stops the run between epochs; the session
// reports the cancellation, stays stopped, and still finalizes the
// prefix it completed. Run under -race, this also proves a concurrent
// canceller leaks no state.
func TestSessionContextCancellation(t *testing.T) {
	cfg := fastCfg(t, "MID2", 4, 0.6, policy.NewFastCap())
	cfg.Epochs = 1000 // far more than we let run
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // concurrent canceller, as a controlling service would use
		defer wg.Done()
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	steps := 0
	var stepErr error
	for {
		if _, err := s.Step(ctx); err != nil {
			stepErr = err
			break
		}
		steps++
	}
	wg.Wait()
	if !errors.Is(stepErr, context.Canceled) {
		t.Fatalf("step error %v, want context.Canceled", stepErr)
	}
	if steps == 0 || steps >= cfg.Epochs {
		t.Fatalf("cancelled after %d epochs, want a strict mid-run prefix", steps)
	}
	// Sticky: the session refuses further work, even with a fresh ctx.
	if _, err := s.Step(context.Background()); !errors.Is(err, context.Canceled) {
		t.Errorf("post-cancel step error %v, want sticky context.Canceled", err)
	}
	res := s.Result()
	if len(res.Epochs) != steps {
		t.Errorf("result has %d epochs, completed %d", len(res.Epochs), steps)
	}
	if res.TotalTimeNs != float64(steps)*cfg.Sim.EpochNs {
		t.Errorf("total time %g, want %g", res.TotalTimeNs, float64(steps)*cfg.Sim.EpochNs)
	}
	for i, ns := range res.NsPerInstr {
		if ns <= 0 {
			t.Errorf("core %d: no per-instruction time in partial result", i)
		}
	}
}

// Result finalizes the session: further Steps return ErrDone and the
// result does not change.
func TestResultFinalizesSession(t *testing.T) {
	cfg := fastCfg(t, "MID1", 4, 0.6, nil)
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	res := s.Result()
	if len(res.Epochs) != 3 {
		t.Fatalf("finalized with %d epochs", len(res.Epochs))
	}
	if _, err := s.Step(context.Background()); !errors.Is(err, ErrDone) {
		t.Errorf("step after Result: %v, want ErrDone", err)
	}
	if again := s.Result(); again != res || len(again.Epochs) != 3 {
		t.Error("Result not idempotent")
	}
}

// A Step issued while another is in flight must get the typed
// ErrConcurrentStep, not a data race. Calling Step from inside an
// observer is the deterministic way to guarantee the overlap: the
// observer runs while the outer Step still holds the session.
func TestConcurrentStepTypedError(t *testing.T) {
	cfg := fastCfg(t, "MID1", 4, 0.6, nil)
	cfg.Epochs = 2
	var s *Session
	var innerErrs []error
	s, err := NewSession(cfg, WithObserver(func(EpochRecord) {
		_, err := s.Step(context.Background())
		innerErrs = append(innerErrs, err)
	}))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, s)
	if len(innerErrs) != cfg.Epochs {
		t.Fatalf("observer ran %d times, want %d", len(innerErrs), cfg.Epochs)
	}
	for i, err := range innerErrs {
		if !errors.Is(err, ErrConcurrentStep) {
			t.Errorf("re-entrant step %d: error %v, want ErrConcurrentStep", i, err)
		}
	}
}

// Two goroutines hammering Step on one session: the mutual exclusion
// must hold under -race, every epoch must execute exactly once, and
// the interleaved result must be bit-identical to a single-driver run
// — losing a race never skips or duplicates an epoch.
func TestConcurrentSteppersRaceClean(t *testing.T) {
	cfg := fastCfg(t, "MID1", 4, 0.6, nil)
	cfg.Epochs = 12
	solo, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var (
		wg      sync.WaitGroup
		stepped atomic.Int64
		refused atomic.Int64
	)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				_, err := s.Step(context.Background())
				switch {
				case err == nil:
					stepped.Add(1)
				case errors.Is(err, ErrConcurrentStep):
					refused.Add(1)
					runtime.Gosched()
				case errors.Is(err, ErrDone):
					return
				default:
					t.Errorf("unexpected step error: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := stepped.Load(); got != int64(cfg.Epochs) {
		t.Errorf("%d successful steps across drivers, want %d (plus %d typed refusals)",
			got, cfg.Epochs, refused.Load())
	}
	if !reflect.DeepEqual(s.Result(), solo) {
		t.Error("contended session diverged from the single-driver run")
	}
}

// Result called concurrently with a stepping goroutine serializes
// instead of racing: it finalizes at an epoch boundary, the stepper
// observes ErrDone, and the result never changes afterwards.
func TestResultConcurrentWithStep(t *testing.T) {
	cfg := fastCfg(t, "MID1", 4, 0.6, nil)
	cfg.Epochs = 200 // long enough that finalization usually lands mid-run
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stepErr := make(chan error, 1)
	go func() {
		for {
			if _, err := s.Step(context.Background()); err != nil {
				stepErr <- err
				return
			}
		}
	}()
	time.Sleep(5 * time.Millisecond)
	res := s.Result()
	n := len(res.Epochs)
	if err := <-stepErr; !errors.Is(err, ErrDone) {
		t.Fatalf("stepper exited with %v, want ErrDone", err)
	}
	if again := s.Result(); again != res || len(again.Epochs) != n {
		t.Error("Result changed after concurrent finalization")
	}
	if n == 0 || n > cfg.Epochs {
		t.Errorf("finalized with %d epochs, want 1..%d", n, cfg.Epochs)
	}
}

// Fail-fast validation: broken configs are rejected before any
// simulation, with the typed, errors.Is-able ErrInvalidConfig.
func TestErrInvalidConfigTyped(t *testing.T) {
	good := fastCfg(t, "MID1", 4, 0.6, nil)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero epochs", func(c *Config) { c.Epochs = 0 }},
		{"negative epochs", func(c *Config) { c.Epochs = -3 }},
		{"zero budget", func(c *Config) { c.BudgetFrac = 0 }},
		{"negative budget", func(c *Config) { c.BudgetFrac = -0.25 }},
		{"NaN budget", func(c *Config) { c.BudgetFrac = math.NaN() }},
		{"budget above one", func(c *Config) { c.BudgetFrac = 1.5 }},
		{"empty mix", func(c *Config) { c.Mix = workload.MixSpec{Name: "empty"} }},
		{"unknown application", func(c *Config) {
			c.Mix = workload.MixSpec{Name: "bogus", Apps: [4]string{"no-such-app", "gcc", "gzip", "eon"}}
		}},
		{"zero cores", func(c *Config) { c.Sim.Cores = 0 }},
		{"negative cores", func(c *Config) { c.Sim.Cores = -8 }},
		{"cores not multiple of 4", func(c *Config) { c.Sim.Cores = 6 }},
		{"bad epoch geometry", func(c *Config) { c.Sim.ProfileNs = c.Sim.EpochNs * 2 }},
	}
	for _, tc := range cases {
		cfg := good
		tc.mutate(&cfg)
		if _, err := NewSession(cfg); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("%s: NewSession error %v, want ErrInvalidConfig", tc.name, err)
		}
		if _, err := Run(cfg); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("%s: Run error %v, want ErrInvalidConfig", tc.name, err)
		}
	}
	// A budget trace relaxes the static fraction check.
	cfg := good
	cfg.BudgetFrac = 0
	cfg.BudgetSchedule = func(int) float64 { return 0.7 }
	if _, err := Run(cfg); err != nil {
		t.Errorf("schedule-driven run rejected: %v", err)
	}
	// SetBudgetFrac applies the same range validation, typed.
	s, err := NewSession(good)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{0, -0.3, 1.2, math.NaN()} {
		if err := s.SetBudgetFrac(f); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("SetBudgetFrac(%g): %v, want ErrInvalidConfig", f, err)
		}
	}
}
