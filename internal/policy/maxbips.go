package policy

import (
	"fmt"
	"math"
)

// MaxBIPS reimplements the global power-management policy of Isci et
// al. [14]: exhaustively evaluate every combination of per-core DVFS
// levels (here extended, as in the paper, with every memory frequency)
// and pick the feasible combination with the highest predicted total
// instruction throughput.
//
// Complexity is O(M·F^N) — the paper's Table I exponential row — so the
// policy refuses to run beyond MaxCores (the paper's own evaluation
// stops at 4 cores for the same reason). Throughput is maximized with no
// fairness term, which is exactly the outlier mechanism Fig. 11 shows.
type MaxBIPS struct {
	// MaxCores bounds N to keep the search tractable.
	MaxCores int
}

// NewMaxBIPS returns the policy with the paper's 4-core practicality
// bound (slightly relaxed to 6 for experimentation).
func NewMaxBIPS() *MaxBIPS { return &MaxBIPS{MaxCores: 6} }

// Name implements Policy.
func (MaxBIPS) Name() string { return "MaxBIPS" }

// Decide implements Policy.
func (p *MaxBIPS) Decide(s *Snapshot) (Decision, error) {
	if err := s.Validate(); err != nil {
		return Decision{}, err
	}
	n := s.N()
	if n > p.MaxCores {
		return Decision{}, fmt.Errorf("maxbips: %d cores exceeds exhaustive-search bound %d (O(F^N))", n, p.MaxCores)
	}
	mc := s.multi()

	// Precompute per-core ladder sizes, power and per-(core, memstep)
	// turn-around denominators so the inner loop is cheap. Each core's
	// step space is its own ladder (heterogeneous machines mix sizes).
	f := make([]int, n)
	pw := make([][]float64, n)
	for i := 0; i < n; i++ {
		lad := s.ladder(i)
		f[i] = lad.Len()
		pw[i] = make([]float64, f[i])
		for k := 0; k < f[i]; k++ {
			pw[i][k] = s.Power.Cores[i].At(lad.NormFreq(k))
		}
	}

	bestBIPS := math.Inf(-1)
	var bestSteps []int
	bestMem := 0
	steps := make([]int, n)
	for m := 0; m < s.MemLadder.Len(); m++ {
		sb := s.sbForMemStep(m)
		memPower := s.Power.Mem.At(s.MemLadder.NormFreq(m)) + s.Power.Ps
		// Per-core response is independent of core steps; cache it.
		resp := make([]float64, n)
		for i := 0; i < n; i++ {
			resp[i] = mc.CoreResponse(i, sb)
		}
		for i := range steps {
			steps[i] = 0
		}
		for {
			total := memPower
			bips := 0.0
			for i := 0; i < n; i++ {
				total += pw[i][steps[i]]
				lad := s.ladder(i)
				z := s.ZBar[i] * lad.Max() / lad.Freq(steps[i])
				bips += s.IPA[i] / (z + s.C[i] + resp[i])
			}
			if total <= s.BudgetW && bips > bestBIPS {
				bestBIPS = bips
				bestSteps = append(bestSteps[:0], steps...)
				bestMem = m
			}
			// Odometer increment over the ΠF_i space.
			j := 0
			for ; j < n; j++ {
				steps[j]++
				if steps[j] < f[j] {
					break
				}
				steps[j] = 0
			}
			if j == n {
				break
			}
		}
	}
	if bestSteps == nil {
		// Nothing feasible: floor everything.
		return Decision{CoreSteps: make([]int, n), MemStep: 0}, nil
	}
	return Decision{CoreSteps: bestSteps, MemStep: bestMem}, nil
}
