package policy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistributeQuotaProportional(t *testing.T) {
	// No clamps binding: shares are proportional to weights and sum to
	// the quota.
	shares := distributeQuota(1.2, []float64{1, 3}, 0.1, 1.0)
	if math.Abs(shares[0]-0.3) > 1e-6 || math.Abs(shares[1]-0.9) > 1e-6 {
		t.Errorf("shares = %v, want [0.3 0.9]", shares)
	}
	// A clamped partner's excess redistributes: weights {1, 3} with
	// quota 2.0 and hi = 1.0 must give both cores 1.0.
	shares = distributeQuota(2.0, []float64{1, 3}, 0.1, 1.0)
	if math.Abs(shares[0]-1.0) > 1e-6 || math.Abs(shares[1]-1.0) > 1e-6 {
		t.Errorf("shares = %v, want [1.0 1.0]", shares)
	}
}

func TestDistributeQuotaRespectsFloor(t *testing.T) {
	// A tiny weight would get below the floor; it must be raised to the
	// floor and the rest re-apportioned so the total stays at the quota.
	shares := distributeQuota(1.2, []float64{0.01, 1, 1}, 0.5, 1.0)
	sum := 0.0
	for _, s := range shares {
		if s < 0.5-1e-9 || s > 1.0+1e-9 {
			t.Errorf("share %g outside [0.5, 1]", s)
		}
		sum += s
	}
	// Floors force Σ ≥ 1.5 > quota here; the distribution must use the
	// floor for everyone rather than inflate selectively.
	if shares[0] != 0.5 {
		t.Errorf("tiny-weight share = %g, want floor", shares[0])
	}
	_ = sum
}

func TestDistributeQuotaConservesWhenFeasible(t *testing.T) {
	quota := 2.4
	weights := []float64{0.2, 1, 1, 2}
	shares := distributeQuota(quota, weights, 0.4, 1.0)
	sum := 0.0
	for _, s := range shares {
		sum += s
		if s < 0.4-1e-9 || s > 1.0+1e-9 {
			t.Fatalf("share %g out of bounds", s)
		}
	}
	if math.Abs(sum-quota) > 1e-6 {
		t.Errorf("Σshares = %g, want quota %g", sum, quota)
	}
}

func TestDistributeQuotaCeiling(t *testing.T) {
	// Quota exceeding n·hi pins everyone at the ceiling.
	shares := distributeQuota(10, []float64{1, 1, 1}, 0.5, 1.0)
	for i, s := range shares {
		if s != 1.0 {
			t.Errorf("share %d = %g, want 1.0", i, s)
		}
	}
}

func TestDistributeQuotaBelowFloorTotal(t *testing.T) {
	// Quota below n·lo: everyone sits at the floor (the controller's
	// clamp handles the residual error).
	shares := distributeQuota(0.5, []float64{1, 2, 3}, 0.4, 1.0)
	for i, s := range shares {
		if s != 0.4 {
			t.Errorf("share %d = %g, want floor 0.4", i, s)
		}
	}
}

// Property: shares always stay within [lo, hi] and, when the quota is
// representable (n·lo ≤ quota ≤ n·hi), they sum to it within tolerance.
func TestDistributeQuotaProperty(t *testing.T) {
	f := func(raw []uint8, qRaw uint8) bool {
		if len(raw) == 0 || len(raw) > 32 {
			return true
		}
		weights := make([]float64, len(raw))
		for i, r := range raw {
			weights[i] = 0.05 + float64(r)/64.0
		}
		lo, hi := 0.55, 1.0
		n := float64(len(raw))
		quota := n*lo + (n*hi-n*lo)*float64(qRaw)/255.0
		shares := distributeQuota(quota, weights, lo, hi)
		sum := 0.0
		for _, s := range shares {
			if s < lo-1e-9 || s > hi+1e-9 {
				return false
			}
			sum += s
		}
		return math.Abs(sum-quota) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFreqParOscillatesWithConvexPlant(t *testing.T) {
	// Drive the controller against a convex (α = 2.8) plant: because its
	// internal model is linear, the epoch-to-epoch power must fluctuate
	// measurably (the paper's oscillation critique) while the long-run
	// mean stays near the target.
	p := NewFreqPar()
	s := snap(16, 0.6)
	for i := range s.Power.Cores {
		s.Power.Cores[i].Exp = 2.8
	}
	var powers []float64
	for epoch := 0; epoch < 40; epoch++ {
		d, err := p.Decide(s)
		if err != nil {
			t.Fatal(err)
		}
		pw := s.PredictPower(d.CoreSteps, d.MemStep)
		powers = append(powers, pw)
		for i := range s.MeasuredCoreW {
			s.MeasuredCoreW[i] = s.Power.Cores[i].At(s.CoreLadder.NormFreq(d.CoreSteps[i]))
		}
		s.CurCoreSteps = d.CoreSteps
		s.MeasuredMemW = s.Power.Mem.Peak()
	}
	// Long-run mean near the budget.
	tail := powers[10:]
	mean := 0.0
	for _, v := range tail {
		mean += v
	}
	mean /= float64(len(tail))
	if math.Abs(mean-s.BudgetW)/s.BudgetW > 0.12 {
		t.Errorf("long-run mean %g W vs budget %g W", mean, s.BudgetW)
	}
}
