package policy

import (
	"testing"

	"repro/internal/core"
)

func TestGroupedFastCapValidDecision(t *testing.T) {
	s := snap(8, 0.7)
	p := NewGroupedFastCap([]core.BudgetGroup{
		{Cores: []int{0, 1, 2, 3}, Budget: 12},
	})
	d, err := p.Decide(s)
	if err != nil {
		t.Fatal(err)
	}
	checkDecision(t, s, d)
	// Group power at the decision respects the group cap.
	gp := 0.0
	for _, i := range []int{0, 1, 2, 3} {
		gp += s.Power.Cores[i].At(s.CoreLadder.NormFreq(d.CoreSteps[i]))
	}
	if gp > 12+1e-9 {
		t.Errorf("group draws %g W over its 12 W cap", gp)
	}
	// Global budget also holds.
	if got := s.PredictPower(d.CoreSteps, d.MemStep); got > s.BudgetW+1e-9 {
		t.Errorf("global %g W over %g W", got, s.BudgetW)
	}
}

func TestGroupedFastCapNoGroupsMatchesPlain(t *testing.T) {
	s := snap(8, 0.6)
	dg, err := NewGroupedFastCap(nil).Decide(s)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := NewFastCap().Decide(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dg.CoreSteps {
		if dg.CoreSteps[i] != dp.CoreSteps[i] {
			t.Fatalf("steps differ without groups: %v vs %v", dg.CoreSteps, dp.CoreSteps)
		}
	}
	if dg.MemStep != dp.MemStep {
		t.Errorf("mem step differs: %d vs %d", dg.MemStep, dp.MemStep)
	}
}

func TestGroupedFastCapTightGroupSlowsMembers(t *testing.T) {
	s := snap(8, 0.9) // generous global budget
	p := NewGroupedFastCap([]core.BudgetGroup{
		{Cores: []int{0, 1}, Budget: 3.0}, // very tight for two ~4.7 W cores
	})
	d, err := p.Decide(s)
	if err != nil {
		t.Fatal(err)
	}
	// Constrained cores sit below the unconstrained ones' steps.
	if d.CoreSteps[0] >= d.CoreSteps[4] && d.CoreSteps[1] >= d.CoreSteps[5] {
		t.Errorf("capped cores not throttled: %v", d.CoreSteps)
	}
	gp := s.Power.Cores[0].At(s.CoreLadder.NormFreq(d.CoreSteps[0])) +
		s.Power.Cores[1].At(s.CoreLadder.NormFreq(d.CoreSteps[1]))
	if gp > 3.0+1e-9 {
		t.Errorf("group power %g W over 3 W", gp)
	}
}

func TestGroupedFastCapRejectsBadGroups(t *testing.T) {
	s := snap(8, 0.6)
	p := NewGroupedFastCap([]core.BudgetGroup{{Cores: []int{99}, Budget: 5}})
	if _, err := p.Decide(s); err == nil {
		t.Error("out-of-range group accepted")
	}
	p2 := NewGroupedFastCap([]core.BudgetGroup{{Cores: []int{0}, Budget: -1}})
	if _, err := p2.Decide(s); err == nil {
		t.Error("negative group budget accepted")
	}
}

func TestGroupedFastCapName(t *testing.T) {
	p := NewGroupedFastCap([]core.BudgetGroup{{Cores: []int{0}, Budget: 5}})
	if p.Name() != "FastCap-1groups" {
		t.Errorf("name = %q", p.Name())
	}
}
