package policy

import (
	"testing"

	"repro/internal/dvfs"
)

// heteroSnap converts the standard test snapshot to a mixed-ladder
// machine: even cores keep the big ladder, odd cores get the little
// one (whose power models are scaled down to match).
func heteroSnap(n int, budgetFrac float64) *Snapshot {
	s := snap(n, budgetFrac)
	big := s.CoreLadder
	little := dvfs.EfficiencyCoreLadder()
	s.CoreLadders = make([]*dvfs.Ladder, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			s.CoreLadders[i] = big
		} else {
			s.CoreLadders[i] = little
			s.Power.Cores[i].Scale = 1.4
			s.Power.Cores[i].Static = 0.2
			s.MeasuredCoreW[i] = 1.1
			s.CurCoreSteps[i] = little.MaxStep()
		}
	}
	s.CoreLadder = nil // heterogeneous snapshots carry only per-core ladders
	s.BudgetW = budgetFrac * s.Power.Peak()
	return s
}

// checkHeteroDecision verifies each core's step against its own ladder.
func checkHeteroDecision(t *testing.T, s *Snapshot, d Decision) {
	t.Helper()
	if len(d.CoreSteps) != s.N() {
		t.Fatalf("decision has %d core steps for %d cores", len(d.CoreSteps), s.N())
	}
	for i, st := range d.CoreSteps {
		if st < 0 || st >= s.CoreLadders[i].Len() {
			t.Errorf("core %d step %d outside its own %d-step ladder", i, st, s.CoreLadders[i].Len())
		}
	}
	if d.MemStep < 0 || d.MemStep >= s.MemLadder.Len() {
		t.Errorf("mem step %d out of range", d.MemStep)
	}
}

// Every policy must produce decisions whose steps respect per-core
// ladders on a heterogeneous snapshot, across budgets.
func TestAllPoliciesHeteroLadders(t *testing.T) {
	pols := append(allPolicies(), NewGreedy())
	for _, p := range pols {
		for _, frac := range []float64{0.4, 0.6, 0.8, 1.0} {
			s := heteroSnap(16, frac)
			d, err := p.Decide(s)
			if err != nil {
				t.Fatalf("%s at %.0f%%: %v", p.Name(), frac*100, err)
			}
			checkHeteroDecision(t, s, d)
		}
	}
	// MaxBIPS separately: its exhaustive search bounds the core count.
	for _, frac := range []float64{0.5, 0.9} {
		s := heteroSnap(4, frac)
		d, err := NewMaxBIPS().Decide(s)
		if err != nil {
			t.Fatalf("MaxBIPS at %.0f%%: %v", frac*100, err)
		}
		checkHeteroDecision(t, s, d)
	}
}

// FastCap's guarded quantization must keep the model-predicted power
// at or under the budget on mixed ladders whenever the floor allows.
func TestFastCapHeteroGuardRespectsBudget(t *testing.T) {
	for _, frac := range []float64{0.4, 0.5, 0.6, 0.8} {
		s := heteroSnap(16, frac)
		d, err := NewFastCap().Decide(s)
		if err != nil {
			t.Fatal(err)
		}
		floor := true
		for _, st := range d.CoreSteps {
			if st != 0 {
				floor = false
				break
			}
		}
		if pw := s.PredictPower(d.CoreSteps, d.MemStep); pw > s.BudgetW+1e-9 && !(floor && d.MemStep == 0) {
			t.Errorf("budget %.0f%%: predicted %.2f W over cap %.2f W off the floor", frac*100, pw, s.BudgetW)
		}
	}
}

// A heterogeneous snapshot missing a per-core ladder is rejected.
func TestHeteroSnapshotValidation(t *testing.T) {
	s := heteroSnap(8, 0.6)
	s.CoreLadders[3] = nil
	if err := s.Validate(); err == nil {
		t.Error("nil per-core ladder accepted")
	}
	s = heteroSnap(8, 0.6)
	s.CoreLadders = s.CoreLadders[:7]
	if err := s.Validate(); err == nil {
		t.Error("short CoreLadders accepted")
	}
	s = heteroSnap(8, 0.6)
	s.CoreLadders = nil // CoreLadder was cleared too: no ladder at all
	if err := s.Validate(); err == nil {
		t.Error("snapshot with no ladders accepted")
	}
}

// Eql-Freq's heterogeneous form must still behave like "one chip-wide
// setting": on a machine where all ladders are the same values but
// distinct pointers, it must agree with the homogeneous code path.
func TestEqlFreqHeteroMatchesUniform(t *testing.T) {
	for _, frac := range []float64{0.5, 0.7, 1.0} {
		hom := snap(12, frac)
		dHom, err := NewEqlFreq().Decide(hom)
		if err != nil {
			t.Fatal(err)
		}
		het := snap(12, frac)
		het.CoreLadders = make([]*dvfs.Ladder, het.N())
		for i := range het.CoreLadders {
			het.CoreLadders[i] = dvfs.DefaultCoreLadder() // distinct pointers, same values
		}
		het.CoreLadder = nil
		dHet, err := NewEqlFreq().Decide(het)
		if err != nil {
			t.Fatal(err)
		}
		if dHom.MemStep != dHet.MemStep {
			t.Errorf("budget %.0f%%: mem step %d vs %d", frac*100, dHom.MemStep, dHet.MemStep)
		}
		for i := range dHom.CoreSteps {
			if dHom.CoreSteps[i] != dHet.CoreSteps[i] {
				t.Errorf("budget %.0f%%: core %d step %d vs %d", frac*100, i, dHom.CoreSteps[i], dHet.CoreSteps[i])
			}
		}
	}
}
