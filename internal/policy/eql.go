package policy

import (
	"math"
	"sort"

	"repro/internal/qmodel"
)

// EqlPwr assigns every core an equal share of the core power budget, as
// proposed by Sharkey et al. [16], extended (as in the paper) with
// FastCap's memory DVFS: for each memory frequency the per-core share is
// (budget − memory − Ps)/N, each core runs as fast as its share allows,
// and the memory frequency with the best fairness objective D wins.
//
// Equal shares ignore application heterogeneity: light (memory-bound)
// apps cannot spend their share while power-hungry apps starve — the
// outlier mechanism visible in the paper's Fig. 9.
type EqlPwr struct{}

// NewEqlPwr returns the policy.
func NewEqlPwr() *EqlPwr { return &EqlPwr{} }

// Name implements Policy.
func (EqlPwr) Name() string { return "Eql-Pwr" }

// Decide implements Policy.
func (EqlPwr) Decide(s *Snapshot) (Decision, error) {
	if err := s.Validate(); err != nil {
		return Decision{}, err
	}
	n := s.N()
	mc := s.multi()
	bestD := math.Inf(-1)
	var best Decision
	for m := 0; m < s.MemLadder.Len(); m++ {
		share := (s.BudgetW - s.Power.Mem.At(s.MemLadder.NormFreq(m)) - s.Power.Ps) / float64(n)
		steps := make([]int, n)
		for i := 0; i < n; i++ {
			// Highest step of the core's own ladder whose predicted power
			// fits the share.
			lad := s.ladder(i)
			st := 0
			for k := lad.MaxStep(); k >= 0; k-- {
				if s.Power.Cores[i].At(lad.NormFreq(k)) <= share {
					st = k
					break
				}
			}
			steps[i] = st
		}
		if s.PredictPower(steps, m) > s.BudgetW {
			continue // even floored cores cannot fit with this memory freq
		}
		if d := s.objectiveD(steps, m, mc); d > bestD {
			bestD = d
			best = Decision{CoreSteps: steps, MemStep: m}
		}
	}
	if best.CoreSteps == nil {
		// No feasible point: floor everything.
		best = Decision{CoreSteps: make([]int, n), MemStep: 0}
	}
	return best, nil
}

// EqlFreq locks all cores to one common frequency, as analyzed by
// Herbert and Marculescu [42], again extended with memory DVFS: the
// (core frequency, memory frequency) pair with the best objective D
// that fits the budget wins. With heterogeneous workloads the common
// frequency is pinned by the hungriest core, leaving budget unharvested
// (paper Fig. 10).
type EqlFreq struct{}

// NewEqlFreq returns the policy.
func NewEqlFreq() *EqlFreq { return &EqlFreq{} }

// Name implements Policy.
func (EqlFreq) Name() string { return "Eql-Freq" }

// Decide implements Policy.
func (EqlFreq) Decide(s *Snapshot) (Decision, error) {
	if err := s.Validate(); err != nil {
		return Decision{}, err
	}
	n := s.N()
	mc := s.multi()
	if s.heterogeneous() {
		return eqlFreqHetero(s, mc)
	}
	bestD := math.Inf(-1)
	bestF, bestM := 0, 0
	found := false
	for m := 0; m < s.MemLadder.Len(); m++ {
		for f := 0; f < s.CoreLadder.Len(); f++ {
			steps := uniformSteps(n, f)
			if s.PredictPower(steps, m) > s.BudgetW {
				continue
			}
			if d := s.objectiveD(steps, m, mc); d > bestD {
				bestD, bestF, bestM = d, f, m
				found = true
			}
		}
	}
	if !found {
		return Decision{CoreSteps: make([]int, n), MemStep: 0}, nil
	}
	return Decision{CoreSteps: uniformSteps(n, bestF), MemStep: bestM}, nil
}

// eqlFreqHetero is Eql-Freq on a machine with mixed ladders, where no
// literal common frequency exists. The policy's spirit — one chip-wide
// setting, no per-core harvesting — carries over as one common
// *normalized* frequency: each candidate normalized level (the union of
// every distinct ladder's levels) maps to the nearest step of each
// core's own ladder, and the best feasible objective D wins.
func eqlFreqHetero(s *Snapshot, mc *qmodel.Multi) (Decision, error) {
	n := s.N()
	norms := candidateNorms(s)
	bestD := math.Inf(-1)
	var best Decision
	steps := make([]int, n)
	for m := 0; m < s.MemLadder.Len(); m++ {
		for _, x := range norms {
			for i := 0; i < n; i++ {
				steps[i] = s.ladder(i).NearestNorm(x)
			}
			if s.PredictPower(steps, m) > s.BudgetW {
				continue
			}
			if d := s.objectiveD(steps, m, mc); d > bestD {
				bestD = d
				best = Decision{CoreSteps: append([]int(nil), steps...), MemStep: m}
			}
		}
	}
	if best.CoreSteps == nil {
		return Decision{CoreSteps: make([]int, n), MemStep: 0}, nil
	}
	return best, nil
}

// candidateNorms collects the distinct normalized frequency levels of
// every core ladder in the snapshot, ascending.
func candidateNorms(s *Snapshot) []float64 {
	seen := map[float64]bool{}
	var norms []float64
	for i := 0; i < s.N(); i++ {
		lad := s.ladder(i)
		for k := 0; k < lad.Len(); k++ {
			x := lad.NormFreq(k)
			if !seen[x] {
				seen[x] = true
				norms = append(norms, x)
			}
		}
	}
	sort.Float64s(norms)
	return norms
}

func uniformSteps(n, step int) []int {
	steps := make([]int, n)
	for i := range steps {
		steps[i] = step
	}
	return steps
}
