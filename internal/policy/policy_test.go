package policy

import (
	"math"
	"testing"

	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/qmodel"
)

// snap builds a plausible 16-core snapshot with a mix of CPU- and
// memory-bound cores under the default ladders.
func snap(n int, budgetFrac float64) *Snapshot {
	coreL, memL := dvfs.DefaultCoreLadder(), dvfs.DefaultMemLadder()
	s := &Snapshot{
		ZBar:          make([]float64, n),
		C:             make([]float64, n),
		IPA:           make([]float64, n),
		Power:         power.System{Ps: 12, Mem: power.Model{Scale: 26, Exp: 1, Static: 10}},
		MemStats:      []qmodel.MemStats{{Q: 2.0, U: 1.6, Sm: 28}},
		AccessProb:    make([][]float64, n),
		SbBar:         5,
		CoreLadder:    coreL,
		MemLadder:     memL,
		MeasuredCoreW: make([]float64, n),
		CurCoreSteps:  make([]int, n),
		CurMemStep:    memL.MaxStep(),
	}
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			s.ZBar[i] = 1800 // CPU-bound
			s.IPA[i] = 4000
			s.MeasuredCoreW[i] = 4.3
		} else {
			s.ZBar[i] = 100 // memory-bound
			s.IPA[i] = 60
			s.MeasuredCoreW[i] = 3.2
		}
		s.C[i] = 7.5
		s.Power.Cores = append(s.Power.Cores, power.Model{Scale: 4.2, Exp: 2.5, Static: 0.5})
		s.AccessProb[i] = []float64{1}
		s.CurCoreSteps[i] = coreL.MaxStep()
	}
	s.BudgetW = budgetFrac * s.Power.Peak()
	return s
}

func checkDecision(t *testing.T, s *Snapshot, d Decision) {
	t.Helper()
	if len(d.CoreSteps) != s.N() {
		t.Fatalf("decision has %d core steps for %d cores", len(d.CoreSteps), s.N())
	}
	for i, st := range d.CoreSteps {
		if st < 0 || st >= s.CoreLadder.Len() {
			t.Errorf("core %d step %d out of range", i, st)
		}
	}
	if d.MemStep < 0 || d.MemStep >= s.MemLadder.Len() {
		t.Errorf("mem step %d out of range", d.MemStep)
	}
}

func allPolicies() []Policy {
	return []Policy{NewFastCap(), NewCPUOnly(), NewFreqPar(), NewEqlPwr(), NewEqlFreq()}
}

func TestAllPoliciesProduceValidDecisions(t *testing.T) {
	for _, p := range allPolicies() {
		for _, frac := range []float64{0.4, 0.6, 0.8, 1.0} {
			s := snap(16, frac)
			d, err := p.Decide(s)
			if err != nil {
				t.Fatalf("%s at %.0f%%: %v", p.Name(), frac*100, err)
			}
			checkDecision(t, s, d)
		}
	}
}

func TestAllPoliciesRejectBadSnapshot(t *testing.T) {
	for _, p := range append(allPolicies(), NewMaxBIPS()) {
		s := snap(4, 0.6)
		s.C = s.C[:2] // corrupt
		if _, err := p.Decide(s); err == nil {
			t.Errorf("%s accepted a corrupt snapshot", p.Name())
		}
	}
}

func TestFastCapRespectsBudget(t *testing.T) {
	for _, frac := range []float64{0.5, 0.6, 0.7, 0.8} {
		s := snap(16, frac)
		d, err := NewFastCap().Decide(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.PredictPower(d.CoreSteps, d.MemStep); got > s.BudgetW+1e-9 {
			t.Errorf("budget %.0f%%: predicted %g W > %g W", frac*100, got, s.BudgetW)
		}
	}
}

func TestFastCapGenerousBudgetRunsMax(t *testing.T) {
	s := snap(8, 1.0)
	d, err := NewFastCap().Decide(s)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range d.CoreSteps {
		if st != s.CoreLadder.MaxStep() {
			t.Errorf("core %d at step %d under a 100%% budget", i, st)
		}
	}
	if d.MemStep != s.MemLadder.MaxStep() {
		t.Errorf("memory at step %d under a 100%% budget", d.MemStep)
	}
}

func TestFastCapBinaryMatchesExhaustive(t *testing.T) {
	s := snap(16, 0.6)
	mc := s.multi()
	dBin, err := NewFastCap().Decide(s)
	if err != nil {
		t.Fatal(err)
	}
	dExh, err := (&FastCap{Guard: true, Exhaustive: true}).Decide(s)
	if err != nil {
		t.Fatal(err)
	}
	objBin := s.objectiveD(dBin.CoreSteps, dBin.MemStep, mc)
	objExh := s.objectiveD(dExh.CoreSteps, dExh.MemStep, mc)
	if math.Abs(objBin-objExh) > 1e-9 {
		t.Errorf("binary objective %g != exhaustive %g", objBin, objExh)
	}
}

func TestFastCapFairnessBeatsEqlPwrOnMixes(t *testing.T) {
	// Heterogeneous snapshot: Eql-Pwr's equal shares must produce a worse
	// (or equal) fairness objective D than FastCap.
	s := snap(16, 0.6)
	mc := s.multi()
	dF, err := NewFastCap().Decide(s)
	if err != nil {
		t.Fatal(err)
	}
	dE, err := NewEqlPwr().Decide(s)
	if err != nil {
		t.Fatal(err)
	}
	dFObj := s.objectiveD(dF.CoreSteps, dF.MemStep, mc)
	dEObj := s.objectiveD(dE.CoreSteps, dE.MemStep, mc)
	if dFObj < dEObj-1e-9 {
		t.Errorf("FastCap D=%g worse than Eql-Pwr D=%g", dFObj, dEObj)
	}
}

func TestFastCapBeatsEqlFreq(t *testing.T) {
	s := snap(16, 0.55)
	mc := s.multi()
	dF, _ := NewFastCap().Decide(s)
	dQ, err := NewEqlFreq().Decide(s)
	if err != nil {
		t.Fatal(err)
	}
	if fo, qo := s.objectiveD(dF.CoreSteps, dF.MemStep, mc), s.objectiveD(dQ.CoreSteps, dQ.MemStep, mc); fo < qo-1e-9 {
		t.Errorf("FastCap D=%g worse than Eql-Freq D=%g", fo, qo)
	}
}

func TestCPUOnlyPinsMemory(t *testing.T) {
	s := snap(16, 0.6)
	d, err := NewCPUOnly().Decide(s)
	if err != nil {
		t.Fatal(err)
	}
	checkDecision(t, s, d)
	if d.MemStep != s.MemLadder.MaxStep() {
		t.Errorf("CPU-only moved memory to step %d", d.MemStep)
	}
	// With memory stuck at max power, cores must run slower than
	// FastCap's on a tight budget for CPU-bound loads.
	if got := s.PredictPower(d.CoreSteps, d.MemStep); got > s.BudgetW+1e-9 {
		t.Errorf("CPU-only over budget: %g > %g", got, s.BudgetW)
	}
}

func TestFreqParFeedbackConverges(t *testing.T) {
	// Iterate the controller against the model-predicted power; it should
	// bring core power close to its target share within a few epochs.
	p := NewFreqPar()
	s := snap(16, 0.6)
	var lastPower float64
	for epoch := 0; epoch < 30; epoch++ {
		d, err := p.Decide(s)
		if err != nil {
			t.Fatal(err)
		}
		checkDecision(t, s, d)
		// Simulate measurement: model-predicted per-core power at the
		// decided steps becomes next epoch's measurement.
		for i := range s.MeasuredCoreW {
			s.MeasuredCoreW[i] = s.Power.Cores[i].At(s.CoreLadder.NormFreq(d.CoreSteps[i]))
		}
		s.CurCoreSteps = d.CoreSteps
		s.MeasuredMemW = s.Power.Mem.Peak() // memory pinned at max
		lastPower = s.PredictPower(d.CoreSteps, d.MemStep)
	}
	if math.Abs(lastPower-s.BudgetW)/s.BudgetW > 0.10 {
		t.Errorf("Freq-Par settled at %g W vs budget %g W (>10%% off)", lastPower, s.BudgetW)
	}
}

func TestFreqParReset(t *testing.T) {
	p := NewFreqPar()
	s := snap(4, 0.6)
	if _, err := p.Decide(s); err != nil {
		t.Fatal(err)
	}
	if p.quota < 0 {
		t.Fatal("quota not initialized")
	}
	p.Reset()
	if p.quota >= 0 {
		t.Error("Reset did not clear quota")
	}
}

func TestEqlPwrStarvesHungryCores(t *testing.T) {
	// With one very hungry core and the rest light, equal shares leave
	// the hungry core slow even though the light cores cannot use their
	// share — the outlier mechanism.
	s := snap(8, 0.55)
	for i := range s.Power.Cores {
		if i == 0 {
			s.Power.Cores[i].Scale = 8.0 // hungry
		} else {
			s.Power.Cores[i].Scale = 2.0
		}
	}
	d, err := NewEqlPwr().Decide(s)
	if err != nil {
		t.Fatal(err)
	}
	hungry := d.CoreSteps[0]
	light := d.CoreSteps[2]
	if hungry >= light {
		t.Errorf("hungry core step %d not below light core step %d", hungry, light)
	}
}

func TestEqlFreqUniform(t *testing.T) {
	s := snap(8, 0.6)
	d, err := NewEqlFreq().Decide(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(d.CoreSteps); i++ {
		if d.CoreSteps[i] != d.CoreSteps[0] {
			t.Fatalf("Eql-Freq produced non-uniform steps: %v", d.CoreSteps)
		}
	}
	if got := s.PredictPower(d.CoreSteps, d.MemStep); got > s.BudgetW {
		t.Errorf("over budget: %g > %g", got, s.BudgetW)
	}
}

func TestEqlFreqInfeasibleFloors(t *testing.T) {
	s := snap(8, 0.6)
	s.BudgetW = 1 // impossible
	d, err := NewEqlFreq().Decide(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range d.CoreSteps {
		if st != 0 {
			t.Errorf("infeasible budget: steps %v, want all 0", d.CoreSteps)
		}
	}
}

func TestMaxBIPSPrefersThroughput(t *testing.T) {
	s := snap(4, 0.6)
	p := NewMaxBIPS()
	d, err := p.Decide(s)
	if err != nil {
		t.Fatal(err)
	}
	checkDecision(t, s, d)
	if got := s.PredictPower(d.CoreSteps, d.MemStep); got > s.BudgetW {
		t.Errorf("over budget: %g > %g", got, s.BudgetW)
	}
	// MaxBIPS must achieve at least FastCap's predicted throughput (it
	// optimizes throughput directly and searches exhaustively).
	mc := s.multi()
	dF, _ := NewFastCap().Decide(s)
	bipsMax := s.predictBIPS(d.CoreSteps, d.MemStep, mc)
	bipsF := s.predictBIPS(dF.CoreSteps, dF.MemStep, mc)
	if bipsMax < bipsF-1e-9 {
		t.Errorf("MaxBIPS throughput %g below FastCap %g", bipsMax, bipsF)
	}
	// ... but its fairness objective is typically no better.
	if dMax := s.objectiveD(d.CoreSteps, d.MemStep, mc); dMax > s.objectiveD(dF.CoreSteps, dF.MemStep, mc)+1e-9 {
		t.Logf("note: MaxBIPS D=%g beat FastCap here (possible on homogeneous snapshots)", dMax)
	}
}

func TestMaxBIPSRefusesLargeN(t *testing.T) {
	s := snap(16, 0.6)
	if _, err := NewMaxBIPS().Decide(s); err == nil {
		t.Error("MaxBIPS accepted 16 cores")
	}
}

func TestMaxBIPSInfeasibleFloors(t *testing.T) {
	s := snap(4, 0.6)
	s.BudgetW = 1
	d, err := NewMaxBIPS().Decide(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range d.CoreSteps {
		if st != 0 {
			t.Fatalf("steps %v under impossible budget", d.CoreSteps)
		}
	}
}

func TestSnapshotValidate(t *testing.T) {
	if err := snap(4, 0.6).Validate(); err != nil {
		t.Fatalf("good snapshot rejected: %v", err)
	}
	muts := []func(*Snapshot){
		func(s *Snapshot) { s.ZBar = nil },
		func(s *Snapshot) { s.IPA = s.IPA[:1] },
		func(s *Snapshot) { s.MemStats = nil },
		func(s *Snapshot) { s.CoreLadder = nil },
		func(s *Snapshot) { s.SbBar = 0 },
		func(s *Snapshot) { s.BudgetW = -1 },
	}
	for i, mut := range muts {
		s := snap(4, 0.6)
		mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestObjectiveDAtMaxIsOne(t *testing.T) {
	s := snap(8, 1.0)
	mc := s.multi()
	steps := uniformSteps(8, s.CoreLadder.MaxStep())
	if d := s.objectiveD(steps, s.MemLadder.MaxStep(), mc); math.Abs(d-1) > 1e-9 {
		t.Errorf("objective at all-max = %g, want 1", d)
	}
	// Any slower assignment strictly reduces D.
	slower := uniformSteps(8, 0)
	if d := s.objectiveD(slower, 0, mc); d >= 1 {
		t.Errorf("objective at all-min = %g, want < 1", d)
	}
}
