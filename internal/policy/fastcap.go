package policy

import (
	"repro/internal/core"
	"repro/internal/qmodel"
)

// solveScratch is the reusable state shared by the FastCap-family
// policies: the optimizer inputs, the weighted response model, the
// candidate buffer, and the solver scratch. One policy instance drives
// one run (epoch after epoch), so reusing these across Decide calls
// removes nearly all per-decision allocation. A policy instance must
// not be used from multiple goroutines.
type solveScratch struct {
	solver  core.Solver
	mc      qmodel.Multi
	in      core.Inputs
	cands   []float64
	zratios []float64
}

// load points the optimizer inputs at the snapshot's slices (valid for
// the duration of one Decide call) with the given sb candidates.
func (sc *solveScratch) load(s *Snapshot, cands []float64) *core.Inputs {
	sc.mc.Stats = s.MemStats
	sc.mc.Access = s.AccessProb
	if sc.in.Response == nil {
		mc := &sc.mc
		sc.in.Response = func(i int, sb float64) float64 { return mc.CoreResponse(i, sb) }
	}
	sc.in.ZBar = s.ZBar
	sc.in.C = s.C
	sc.in.Power = s.Power
	sc.in.SbBar = s.SbBar
	sc.in.SbCandidates = cands
	sc.in.Budget = s.BudgetW
	if s.heterogeneous() {
		sc.zratios = s.maxZRatios(sc.zratios[:0])
		sc.in.MaxZRatio = 0
		sc.in.MaxZRatios = sc.zratios
	} else {
		sc.in.MaxZRatio = s.CoreLadder.StepRange()
		sc.in.MaxZRatios = nil
	}
	return &sc.in
}

// quantize maps the continuous solution onto the machine's ladders —
// the per-core form on heterogeneous machines, the shared-ladder form
// (the exact legacy computation) otherwise.
func (sc *solveScratch) quantize(s *Snapshot, in *core.Inputs, res core.Result, guard bool) core.Assignment {
	if s.heterogeneous() {
		return sc.solver.QuantizePerCore(in, res, s.CoreLadders, s.MemLadder, guard)
	}
	return sc.solver.Quantize(in, res, s.CoreLadder, s.MemLadder, guard)
}

// FastCap is the paper's algorithm: the O(N·log M) joint core/memory
// optimizer of §III-B followed by ladder quantization.
type FastCap struct {
	// Guard enables the post-quantization budget guard: if nearest-step
	// rounding predicts over-budget, cores step down (best-performing
	// first) until the model predicts compliance.
	Guard bool
	// Exhaustive switches the outer s_b search from Algorithm 1's binary
	// search to a full scan over all M candidates (ablation).
	Exhaustive bool

	sc solveScratch
}

// NewFastCap returns the default configuration (guarded, binary search).
func NewFastCap() *FastCap { return &FastCap{Guard: true} }

// Name implements Policy.
func (f *FastCap) Name() string {
	if f.Exhaustive {
		return "FastCap-Exhaustive"
	}
	return "FastCap"
}

// Decide implements Policy.
func (f *FastCap) Decide(s *Snapshot) (Decision, error) {
	if err := s.Validate(); err != nil {
		return Decision{}, err
	}
	f.sc.cands = core.AppendSbCandidates(f.sc.cands[:0], s.SbBar, s.MemLadder)
	in := f.sc.load(s, f.sc.cands)
	var (
		res core.Result
		err error
	)
	if f.Exhaustive {
		res, err = f.sc.solver.SolveExhaustive(in)
	} else {
		res, err = f.sc.solver.Solve(in)
	}
	if err != nil {
		return Decision{}, err
	}
	a := f.sc.quantize(s, in, res, f.Guard)
	// Candidate index i corresponds to memory ladder step M-1-i; the
	// quantizer already produced the ladder step directly.
	return Decision{CoreSteps: a.CoreSteps, MemStep: a.MemStep}, nil
}

// CPUOnly runs the FastCap core optimization with the memory pinned at
// maximum frequency — the paper's "CPU-only" comparison isolating the
// value of memory DVFS. All earlier capping policies share this
// limitation.
type CPUOnly struct {
	Guard bool

	sc solveScratch
}

// NewCPUOnly returns the guarded CPU-only policy.
func NewCPUOnly() *CPUOnly { return &CPUOnly{Guard: true} }

// Name implements Policy.
func (p *CPUOnly) Name() string { return "CPU-only" }

// Decide implements Policy.
func (p *CPUOnly) Decide(s *Snapshot) (Decision, error) {
	if err := s.Validate(); err != nil {
		return Decision{}, err
	}
	p.sc.cands = append(p.sc.cands[:0], s.SbBar) // single candidate: memory at max
	in := p.sc.load(s, p.sc.cands)
	res, err := p.sc.solver.SolveExhaustive(in)
	if err != nil {
		return Decision{}, err
	}
	a := p.sc.quantize(s, in, res, p.Guard)
	return Decision{CoreSteps: a.CoreSteps, MemStep: s.MemLadder.MaxStep()}, nil
}
