package policy

import (
	"repro/internal/core"
)

// FastCap is the paper's algorithm: the O(N·log M) joint core/memory
// optimizer of §III-B followed by ladder quantization.
type FastCap struct {
	// Guard enables the post-quantization budget guard: if nearest-step
	// rounding predicts over-budget, cores step down (best-performing
	// first) until the model predicts compliance.
	Guard bool
	// Exhaustive switches the outer s_b search from Algorithm 1's binary
	// search to a full scan over all M candidates (ablation).
	Exhaustive bool
}

// NewFastCap returns the default configuration (guarded, binary search).
func NewFastCap() *FastCap { return &FastCap{Guard: true} }

// Name implements Policy.
func (f *FastCap) Name() string {
	if f.Exhaustive {
		return "FastCap-Exhaustive"
	}
	return "FastCap"
}

// Decide implements Policy.
func (f *FastCap) Decide(s *Snapshot) (Decision, error) {
	if err := s.Validate(); err != nil {
		return Decision{}, err
	}
	in := s.inputs(core.SbCandidatesFromLadder(s.SbBar, s.MemLadder))
	var (
		res core.Result
		err error
	)
	if f.Exhaustive {
		res, err = in.SolveExhaustive()
	} else {
		res, err = in.Solve()
	}
	if err != nil {
		return Decision{}, err
	}
	a := in.Quantize(res, s.CoreLadder, s.MemLadder, f.Guard)
	// Candidate index i corresponds to memory ladder step M-1-i; the
	// quantizer already produced the ladder step directly.
	return Decision{CoreSteps: a.CoreSteps, MemStep: a.MemStep}, nil
}

// CPUOnly runs the FastCap core optimization with the memory pinned at
// maximum frequency — the paper's "CPU-only" comparison isolating the
// value of memory DVFS. All earlier capping policies share this
// limitation.
type CPUOnly struct {
	Guard bool
}

// NewCPUOnly returns the guarded CPU-only policy.
func NewCPUOnly() *CPUOnly { return &CPUOnly{Guard: true} }

// Name implements Policy.
func (p *CPUOnly) Name() string { return "CPU-only" }

// Decide implements Policy.
func (p *CPUOnly) Decide(s *Snapshot) (Decision, error) {
	if err := s.Validate(); err != nil {
		return Decision{}, err
	}
	in := s.inputs([]float64{s.SbBar}) // single candidate: memory at max
	res, err := in.SolveExhaustive()
	if err != nil {
		return Decision{}, err
	}
	a := in.Quantize(res, s.CoreLadder, s.MemLadder, p.Guard)
	return Decision{CoreSteps: a.CoreSteps, MemStep: s.MemLadder.MaxStep()}, nil
}
