package policy

import "math"

// FreqPar reimplements the control-theoretic policy of Ma et al. [22]
// as described in the paper's §IV-B: a linear feedback loop adjusts a
// chip-wide frequency *quota* each epoch to steer measured core power
// toward the core share of the budget, and the quota is divided among
// cores in proportion to their power efficiency (throughput per watt).
// Memory stays at maximum frequency ("Freq-Par*" in Fig. 9).
//
// Faithfully to the original — and to the paper's critique — the
// controller assumes power is *linear* in frequency. The real curve is
// convex (α ∈ [2,3]), so the loop over- and under-corrects, producing
// the power oscillation and unfairness the paper reports.
type FreqPar struct {
	// Gain is the feedback gain on the power error (fraction of the
	// error corrected per epoch).
	Gain float64
	// quota is the persistent total normalized-frequency allocation
	// Σ f_i/f_max; <0 means "initialize on first Decide".
	quota float64
}

// NewFreqPar returns the policy with the gain used in our evaluation.
func NewFreqPar() *FreqPar { return &FreqPar{Gain: 0.8, quota: -1} }

// Name implements Policy.
func (p *FreqPar) Name() string { return "Freq-Par" }

// Reset clears controller state between runs.
func (p *FreqPar) Reset() { p.quota = -1 }

// Decide implements Policy.
func (p *FreqPar) Decide(s *Snapshot) (Decision, error) {
	if err := s.Validate(); err != nil {
		return Decision{}, err
	}
	n := s.N()
	if p.quota < 0 {
		p.quota = float64(n) // start at all-max
	}

	// Core power target: whatever the budget leaves after measured
	// memory power and the static system floor.
	coreBudget := s.BudgetW - s.MeasuredMemW - s.Power.Ps
	measured := 0.0
	for _, w := range s.MeasuredCoreW {
		measured += w
	}
	// Linear power-frequency model: slope = average peak dynamic power
	// per unit normalized frequency (deliberately ignores curvature).
	slope := 0.0
	for _, m := range s.Power.Cores {
		slope += m.Scale
	}
	slope /= float64(n)
	if slope <= 0 {
		slope = 1
	}
	p.quota += p.Gain * (coreBudget - measured) / slope

	// Efficiency-weighted division: throughput per watt at the current
	// operating point. Inefficient cores receive less frequency — the
	// unfairness mechanism the paper highlights.
	mc := s.multi()
	sb := s.sbForMemStep(s.CurMemStep)
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		bips := s.IPA[i] / s.turnaround(i, s.CurCoreSteps[i], sb, mc)
		w := s.MeasuredCoreW[i]
		if w <= 0 {
			w = 1e-3
		}
		weights[i] = bips / w
	}
	steps := make([]int, n)
	if s.heterogeneous() {
		// Each core's share is normalized to its own ladder, so the
		// per-core lower clamp is that ladder's minimum level.
		lo := make([]float64, n)
		loSum := 0.0
		for i := 0; i < n; i++ {
			lo[i] = s.ladder(i).NormFreq(0)
			loSum += lo[i]
		}
		p.quota = math.Max(loSum, math.Min(float64(n), p.quota))
		shares := distributeQuotaBounds(p.quota, weights, lo, 1)
		for i := 0; i < n; i++ {
			steps[i] = s.ladder(i).NearestNorm(shares[i])
		}
		return Decision{CoreSteps: steps, MemStep: s.MemLadder.MaxStep()}, nil
	}
	fMinNorm := s.CoreLadder.NormFreq(0)
	p.quota = math.Max(float64(n)*fMinNorm, math.Min(float64(n), p.quota))
	shares := distributeQuota(p.quota, weights, fMinNorm, 1)
	for i := 0; i < n; i++ {
		steps[i] = s.CoreLadder.NearestNorm(shares[i])
	}
	return Decision{CoreSteps: steps, MemStep: s.MemLadder.MaxStep()}, nil
}

// distributeQuota splits a total normalized-frequency quota across cores
// proportionally to weights, respecting the per-core [lo, hi] clamps.
// The shares are clamp(λ·w_i, lo, hi) for the multiplier λ that makes
// them sum to the quota; Σ clamp(λ·w_i) is monotone nondecreasing in λ,
// so λ is found by bisection. This keeps the feedback loop honest: the
// allocated total equals the quota whenever n·lo ≤ quota ≤ n·hi.
func distributeQuota(quota float64, weights []float64, lo, hi float64) []float64 {
	n := len(weights)
	shares := make([]float64, n)
	w := make([]float64, n)
	minW := math.Inf(1)
	for i, v := range weights {
		if v <= 0 || math.IsNaN(v) {
			v = 1e-9
		}
		w[i] = v
		if v < minW {
			minW = v
		}
	}
	fill := func(lam float64) float64 {
		sum := 0.0
		for i := 0; i < n; i++ {
			s := lam * w[i]
			if s < lo {
				s = lo
			} else if s > hi {
				s = hi
			}
			shares[i] = s
			sum += s
		}
		return sum
	}
	if quota <= float64(n)*lo {
		fill(0)
		return shares
	}
	if quota >= float64(n)*hi {
		fill(math.Inf(1))
		return shares
	}
	loLam, hiLam := 0.0, hi/minW // at hiLam every share clamps to hi
	for it := 0; it < 60; it++ {
		mid := 0.5 * (loLam + hiLam)
		if fill(mid) < quota {
			loLam = mid
		} else {
			hiLam = mid
		}
	}
	fill(hiLam)
	return shares
}

// distributeQuotaBounds is distributeQuota with a per-core lower clamp:
// on heterogeneous machines each core's share is normalized to its own
// ladder, whose minimum level differs per class. Same bisection on the
// monotone Σ clamp(λ·w_i, lo_i, hi).
func distributeQuotaBounds(quota float64, weights, lo []float64, hi float64) []float64 {
	n := len(weights)
	shares := make([]float64, n)
	w := make([]float64, n)
	minW := math.Inf(1)
	loSum := 0.0
	for i, v := range weights {
		if v <= 0 || math.IsNaN(v) {
			v = 1e-9
		}
		w[i] = v
		if v < minW {
			minW = v
		}
		loSum += lo[i]
	}
	fill := func(lam float64) float64 {
		sum := 0.0
		for i := 0; i < n; i++ {
			s := lam * w[i]
			if s < lo[i] {
				s = lo[i]
			} else if s > hi {
				s = hi
			}
			shares[i] = s
			sum += s
		}
		return sum
	}
	if quota <= loSum {
		fill(0)
		return shares
	}
	if quota >= float64(n)*hi {
		fill(math.Inf(1))
		return shares
	}
	loLam, hiLam := 0.0, hi/minW // at hiLam every share clamps to hi
	for it := 0; it < 60; it++ {
		mid := 0.5 * (loLam + hiLam)
		if fill(mid) < quota {
			loLam = mid
		} else {
			hiLam = mid
		}
	}
	fill(hiLam)
	return shares
}
