package policy

import (
	"fmt"

	"repro/internal/core"
)

// GroupedFastCap runs the FastCap optimization with additional
// per-processor (socket / voltage-island) power budgets — the extension
// the paper sketches in §III-B ("it can be extended to capture
// per-processor power budgets by adding a constraint similar to
// constraint 6 for each processor"). Each group's cores may jointly draw
// at most the group budget, on top of the global cap.
type GroupedFastCap struct {
	Guard  bool
	Groups []core.BudgetGroup

	// solver carries guard scratch across Decide calls (one instance
	// drives one run), matching the solveScratch reuse of the other
	// FastCap-family policies.
	solver core.Solver
}

// NewGroupedFastCap builds the policy for the given socket budgets.
func NewGroupedFastCap(groups []core.BudgetGroup) *GroupedFastCap {
	return &GroupedFastCap{Guard: true, Groups: groups}
}

// Name implements Policy.
func (p *GroupedFastCap) Name() string {
	return fmt.Sprintf("FastCap-%dgroups", len(p.Groups))
}

// Decide implements Policy.
func (p *GroupedFastCap) Decide(s *Snapshot) (Decision, error) {
	if err := s.Validate(); err != nil {
		return Decision{}, err
	}
	gi := &core.GroupedInputs{
		Inputs: *s.inputs(core.SbCandidatesFromLadder(s.SbBar, s.MemLadder)),
		Groups: p.Groups,
	}
	res, err := gi.Solve()
	if err != nil {
		return Decision{}, err
	}
	var a core.Assignment
	if s.heterogeneous() {
		a = p.solver.QuantizePerCore(&gi.Inputs, res, s.CoreLadders, s.MemLadder, p.Guard)
	} else {
		a = gi.Quantize(res, s.CoreLadder, s.MemLadder, p.Guard)
	}
	if p.Guard {
		p.enforceGroups(s, a.CoreSteps)
	}
	return Decision{CoreSteps: a.CoreSteps, MemStep: a.MemStep}, nil
}

// enforceGroups extends the quantization guard to the group budgets:
// while a group's predicted core power exceeds its budget, step down its
// currently-fastest member.
func (p *GroupedFastCap) enforceGroups(s *Snapshot, steps []int) {
	for _, g := range p.Groups {
		power := func() float64 {
			sum := 0.0
			for _, i := range g.Cores {
				sum += s.Power.Cores[i].At(s.ladder(i).NormFreq(steps[i]))
			}
			return sum
		}
		for power() > g.Budget {
			best := -1
			for _, i := range g.Cores {
				if steps[i] > 0 && (best < 0 || steps[i] > steps[best]) {
					best = i
				}
			}
			if best < 0 {
				break // whole group at the floor
			}
			steps[best]--
		}
	}
}
