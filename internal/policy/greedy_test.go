package policy

import (
	"testing"
)

func TestGreedyValidDecision(t *testing.T) {
	// 50% is the tightest feasible budget for this snapshot (the all-
	// minimum-frequency floor sits near 42% of peak).
	for _, frac := range []float64{0.5, 0.6, 0.8, 1.0} {
		s := snap(16, frac)
		d, err := NewGreedy().Decide(s)
		if err != nil {
			t.Fatalf("budget %g: %v", frac, err)
		}
		checkDecision(t, s, d)
		if got := s.PredictPower(d.CoreSteps, d.MemStep); got > s.BudgetW+1e-9 {
			t.Errorf("budget %.0f%%: predicted %g W > %g W", frac*100, got, s.BudgetW)
		}
	}
}

func TestGreedyGenerousBudgetRunsMax(t *testing.T) {
	s := snap(8, 1.0)
	d, err := NewGreedy().Decide(s)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range d.CoreSteps {
		if st != s.CoreLadder.MaxStep() {
			t.Errorf("core %d at step %d under 100%% budget", i, st)
		}
	}
}

func TestGreedyInfeasibleFloors(t *testing.T) {
	s := snap(8, 0.6)
	s.BudgetW = 1
	d, err := NewGreedy().Decide(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range d.CoreSteps {
		if st != 0 {
			t.Fatalf("steps %v under impossible budget", d.CoreSteps)
		}
	}
}

func TestGreedyMatchesMaxBIPSThroughputClosely(t *testing.T) {
	// On a small instance the greedy heuristic should land within a few
	// percent of the exhaustive throughput optimum — the Table I trade:
	// near-optimal quality at a fraction of the cost.
	s := snap(4, 0.6)
	mc := s.multi()
	dG, err := NewGreedy().Decide(s)
	if err != nil {
		t.Fatal(err)
	}
	dM, err := NewMaxBIPS().Decide(s)
	if err != nil {
		t.Fatal(err)
	}
	bG := s.predictBIPS(dG.CoreSteps, dG.MemStep, mc)
	bM := s.predictBIPS(dM.CoreSteps, dM.MemStep, mc)
	if bG < bM*0.93 {
		t.Errorf("greedy throughput %g more than 7%% below exhaustive %g", bG, bM)
	}
	if bG > bM+1e-9 {
		t.Errorf("greedy throughput %g exceeds exhaustive optimum %g", bG, bM)
	}
}

func TestGreedyPrefersEfficientCores(t *testing.T) {
	// One power-hungry core among efficient ones: under a tight budget the
	// throughput-greedy allocation should upgrade the efficient cores
	// further than the hungry one (same IPA/turnaround profile).
	s := snap(8, 0.5)
	for i := range s.Power.Cores {
		s.Power.Cores[i].Scale = 2.0
		s.ZBar[i] = 1000
		s.IPA[i] = 2000
	}
	s.Power.Cores[0].Scale = 9.0 // hungry
	d, err := NewGreedy().Decide(s)
	if err != nil {
		t.Fatal(err)
	}
	if d.CoreSteps[0] >= d.CoreSteps[3] {
		t.Errorf("hungry core step %d not below efficient core %d: %v",
			d.CoreSteps[0], d.CoreSteps[3], d.CoreSteps)
	}
}

func TestGreedyRejectsBadSnapshot(t *testing.T) {
	s := snap(4, 0.6)
	s.IPA = s.IPA[:1]
	if _, err := NewGreedy().Decide(s); err == nil {
		t.Error("corrupt snapshot accepted")
	}
}

func TestGreedyScalesToManyCores(t *testing.T) {
	// Unlike MaxBIPS, greedy must handle large N without complaint.
	s := snap(64, 0.6)
	d, err := NewGreedy().Decide(s)
	if err != nil {
		t.Fatal(err)
	}
	checkDecision(t, s, d)
}
