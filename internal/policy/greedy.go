package policy

import (
	"container/heap"
	"math"
)

// Greedy reimplements the heap-based greedy heuristic family of Meng et
// al. [18] and Winter et al. [19] (the paper's Table I "Heuristics"
// row), extended with memory DVFS like the other baselines: for each
// memory frequency, cores start at their lowest step and repeatedly take
// the single upgrade with the best predicted Δthroughput/Δpower that
// still fits the budget, using a max-heap — O(M·F·N·log N) overall.
//
// Like MaxBIPS it optimizes raw throughput, so it inherits the fairness
// blind spot; unlike MaxBIPS it scales to large N.
type Greedy struct{}

// NewGreedy returns the policy.
func NewGreedy() *Greedy { return &Greedy{} }

// Name implements Policy.
func (Greedy) Name() string { return "Greedy" }

// upgrade is a candidate one-step frequency increase for a core.
type upgrade struct {
	core  int
	ratio float64 // Δthroughput / Δpower
	dPw   float64
	dBips float64
}

type upgradeHeap []upgrade

func (h upgradeHeap) Len() int           { return len(h) }
func (h upgradeHeap) Less(i, j int) bool { return h[i].ratio > h[j].ratio } // max-heap
func (h upgradeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *upgradeHeap) Push(x any)        { *h = append(*h, x.(upgrade)) }
func (h *upgradeHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// Decide implements Policy.
func (p *Greedy) Decide(s *Snapshot) (Decision, error) {
	if err := s.Validate(); err != nil {
		return Decision{}, err
	}
	n := s.N()
	mc := s.multi()

	bestBips := math.Inf(-1)
	var best Decision
	for m := 0; m < s.MemLadder.Len(); m++ {
		sb := s.sbForMemStep(m)
		resp := make([]float64, n)
		for i := 0; i < n; i++ {
			resp[i] = mc.CoreResponse(i, sb)
		}
		bips := func(i, step int) float64 {
			lad := s.ladder(i)
			z := s.ZBar[i] * lad.Max() / lad.Freq(step)
			return s.IPA[i] / (z + s.C[i] + resp[i])
		}
		pw := func(i, step int) float64 {
			return s.Power.Cores[i].At(s.ladder(i).NormFreq(step))
		}

		steps := make([]int, n)
		budget := s.BudgetW - s.Power.Ps - s.Power.Mem.At(s.MemLadder.NormFreq(m))
		used := 0.0
		total := 0.0
		for i := 0; i < n; i++ {
			used += pw(i, 0)
			total += bips(i, 0)
		}
		if used > budget {
			continue // even the floor violates this memory frequency
		}

		h := &upgradeHeap{}
		mk := func(i int) (upgrade, bool) {
			if steps[i] >= s.ladder(i).MaxStep() {
				return upgrade{}, false
			}
			dPw := pw(i, steps[i]+1) - pw(i, steps[i])
			dBips := bips(i, steps[i]+1) - bips(i, steps[i])
			if dPw <= 0 {
				dPw = 1e-12
			}
			return upgrade{core: i, ratio: dBips / dPw, dPw: dPw, dBips: dBips}, true
		}
		for i := 0; i < n; i++ {
			if u, ok := mk(i); ok {
				heap.Push(h, u)
			}
		}
		for h.Len() > 0 {
			u := heap.Pop(h).(upgrade)
			if used+u.dPw > budget {
				continue // this upgrade no longer fits; try others
			}
			steps[u.core]++
			used += u.dPw
			total += u.dBips
			if nu, ok := mk(u.core); ok {
				heap.Push(h, nu)
			}
		}
		if total > bestBips {
			bestBips = total
			best = Decision{CoreSteps: steps, MemStep: m}
		}
	}
	if best.CoreSteps == nil {
		return Decision{CoreSteps: make([]int, n), MemStep: 0}, nil
	}
	return best, nil
}
