// Package policy implements the power-capping policies compared in the
// FastCap paper's evaluation (§IV-B): FastCap itself plus CPU-only,
// Freq-Par (control-theoretic, [22]), Eql-Pwr (equal power shares, [16]),
// Eql-Freq (uniform frequency, [42]), and MaxBIPS (exhaustive throughput
// maximization, [14]) — the latter three extended, as in the paper, with
// FastCap's ability to manage memory DVFS.
//
// Every policy consumes the same per-epoch Snapshot of counters and
// fitted power models and returns DVFS ladder steps for all cores and
// the memory subsystem.
package policy

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/qmodel"
)

// Snapshot is the per-epoch controller input, assembled by the
// runner.Session from profiling-phase counters and online model
// fitting. The Session owns one reusable snapshot buffer per run and
// refills it every epoch: a snapshot (and its slices) is only valid
// for the duration of the Decide call it is passed to, so policies
// retaining per-epoch data must copy it.
type Snapshot struct {
	// ZBar[i] is core i's minimum think time estimate (Eq. 9), ns.
	ZBar []float64
	// C[i] is the L2 time per access, ns.
	C []float64
	// IPA[i] is instructions per memory access (throughput prediction).
	IPA []float64
	// Power carries the fitted per-core/memory models and Ps.
	Power power.System
	// MemStats holds per-controller Eq. 1 queue statistics.
	MemStats []qmodel.MemStats
	// AccessProb[i][k] is core i's probability of using controller k.
	AccessProb [][]float64
	// SbBar is the minimum bus transfer time, ns.
	SbBar float64
	// Ladders.
	CoreLadder *dvfs.Ladder
	MemLadder  *dvfs.Ladder
	// BudgetW is the full-system cap in watts.
	BudgetW float64
	// Measured powers from the profiling window (feedback policies).
	MeasuredCoreW []float64
	MeasuredMemW  float64
	// Current operating point.
	CurCoreSteps []int
	CurMemStep   int
}

// N returns the core count.
func (s *Snapshot) N() int { return len(s.ZBar) }

// Validate reports structural problems.
func (s *Snapshot) Validate() error {
	n := s.N()
	if n == 0 {
		return fmt.Errorf("policy: empty snapshot")
	}
	for _, l := range []int{len(s.C), len(s.IPA), len(s.Power.Cores), len(s.AccessProb), len(s.MeasuredCoreW), len(s.CurCoreSteps)} {
		if l != n {
			return fmt.Errorf("policy: inconsistent snapshot slice lengths")
		}
	}
	if len(s.MemStats) == 0 {
		return fmt.Errorf("policy: no controller stats")
	}
	if s.CoreLadder == nil || s.MemLadder == nil {
		return fmt.Errorf("policy: missing ladders")
	}
	if s.SbBar <= 0 || s.BudgetW <= 0 {
		return fmt.Errorf("policy: non-positive SbBar or budget")
	}
	return nil
}

// Decision is a full DVFS assignment.
type Decision struct {
	CoreSteps []int
	MemStep   int
}

// Policy is one capping algorithm. Implementations may keep internal
// scratch across Decide calls; a policy instance drives one run at a
// time and must not be shared between goroutines.
type Policy interface {
	Name() string
	Decide(s *Snapshot) (Decision, error)
}

// multi builds the weighted response model from the snapshot.
func (s *Snapshot) multi() *qmodel.Multi {
	return &qmodel.Multi{Stats: s.MemStats, Access: s.AccessProb}
}

// response returns the per-core response function R_i(s_b).
func (s *Snapshot) response() core.ResponseFunc {
	mc := s.multi()
	return func(i int, sb float64) float64 { return mc.CoreResponse(i, sb) }
}

// inputs assembles the FastCap optimizer inputs; sbCandidates may be
// restricted (CPU-only passes just {SbBar}).
func (s *Snapshot) inputs(sbCandidates []float64) *core.Inputs {
	return &core.Inputs{
		ZBar:         s.ZBar,
		C:            s.C,
		Power:        s.Power,
		Response:     s.response(),
		SbBar:        s.SbBar,
		SbCandidates: sbCandidates,
		Budget:       s.BudgetW,
		MaxZRatio:    s.CoreLadder.StepRange(),
	}
}

// sbForMemStep converts a memory ladder step to its bus transfer time.
func (s *Snapshot) sbForMemStep(step int) float64 {
	return s.SbBar * s.MemLadder.Max() / s.MemLadder.Freq(step)
}

// turnaround returns core i's mean turn-around time at a core ladder
// step and bus transfer time sb.
func (s *Snapshot) turnaround(i, coreStep int, sb float64, mc *qmodel.Multi) float64 {
	z := s.ZBar[i] * s.CoreLadder.Max() / s.CoreLadder.Freq(coreStep)
	return z + s.C[i] + mc.CoreResponse(i, sb)
}

// minTurnaround is core i's best-case (all-max) turn-around time.
func (s *Snapshot) minTurnaround(i int, mc *qmodel.Multi) float64 {
	return s.ZBar[i] + s.C[i] + mc.CoreResponse(i, s.SbBar)
}

// PredictPower evaluates the fitted models at a full assignment.
func (s *Snapshot) PredictPower(coreSteps []int, memStep int) float64 {
	p := s.Power.Ps + s.Power.Mem.At(s.MemLadder.NormFreq(memStep))
	for i, st := range coreSteps {
		p += s.Power.Cores[i].At(s.CoreLadder.NormFreq(st))
	}
	return p
}

// objectiveD computes the fairness objective of an assignment: the worst
// (smallest) per-core ratio of best-case to achieved turn-around time.
func (s *Snapshot) objectiveD(coreSteps []int, memStep int, mc *qmodel.Multi) float64 {
	sb := s.sbForMemStep(memStep)
	d := math.Inf(1)
	for i := range coreSteps {
		ratio := s.minTurnaround(i, mc) / s.turnaround(i, coreSteps[i], sb, mc)
		if ratio < d {
			d = ratio
		}
	}
	return d
}

// predictBIPS estimates aggregate instruction throughput (instructions
// per ns) for an assignment, using the queuing model: each core retires
// IPA instructions per turn-around time.
func (s *Snapshot) predictBIPS(coreSteps []int, memStep int, mc *qmodel.Multi) float64 {
	sb := s.sbForMemStep(memStep)
	total := 0.0
	for i := range coreSteps {
		total += s.IPA[i] / s.turnaround(i, coreSteps[i], sb, mc)
	}
	return total
}
