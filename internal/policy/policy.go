// Package policy implements the power-capping policies compared in the
// FastCap paper's evaluation (§IV-B): FastCap itself plus CPU-only,
// Freq-Par (control-theoretic, [22]), Eql-Pwr (equal power shares, [16]),
// Eql-Freq (uniform frequency, [42]), and MaxBIPS (exhaustive throughput
// maximization, [14]) — the latter three extended, as in the paper, with
// FastCap's ability to manage memory DVFS.
//
// Every policy consumes the same per-epoch Snapshot of counters and
// fitted power models and returns DVFS ladder steps for all cores and
// the memory subsystem.
package policy

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/qmodel"
)

// Snapshot is the per-epoch controller input, assembled by the
// runner.Session from profiling-phase counters and online model
// fitting. The Session owns one reusable snapshot buffer per run and
// refills it every epoch: a snapshot (and its slices) is only valid
// for the duration of the Decide call it is passed to, so policies
// retaining per-epoch data must copy it.
type Snapshot struct {
	// ZBar[i] is core i's minimum think time estimate (Eq. 9), ns.
	ZBar []float64
	// C[i] is the L2 time per access, ns.
	C []float64
	// IPA[i] is instructions per memory access (throughput prediction).
	IPA []float64
	// Power carries the fitted per-core/memory models and Ps.
	Power power.System
	// MemStats holds per-controller Eq. 1 queue statistics.
	MemStats []qmodel.MemStats
	// AccessProb[i][k] is core i's probability of using controller k.
	AccessProb [][]float64
	// SbBar is the minimum bus transfer time, ns.
	SbBar float64
	// Ladders. CoreLadder is the shared core ladder of a homogeneous
	// machine; on a heterogeneous machine CoreLadders[i] is core i's own
	// ladder (all entries non-nil) and CoreLadder may be nil. Policies
	// must go through ladder(i) — never index a shared ladder directly —
	// so each core's steps always land on its own ladder.
	CoreLadder  *dvfs.Ladder
	CoreLadders []*dvfs.Ladder
	MemLadder   *dvfs.Ladder
	// BudgetW is the full-system cap in watts.
	BudgetW float64
	// Measured powers from the profiling window (feedback policies).
	MeasuredCoreW []float64
	MeasuredMemW  float64
	// Current operating point.
	CurCoreSteps []int
	CurMemStep   int
}

// N returns the core count.
func (s *Snapshot) N() int { return len(s.ZBar) }

// Validate reports structural problems.
func (s *Snapshot) Validate() error {
	n := s.N()
	if n == 0 {
		return fmt.Errorf("policy: empty snapshot")
	}
	for _, l := range []int{len(s.C), len(s.IPA), len(s.Power.Cores), len(s.AccessProb), len(s.MeasuredCoreW), len(s.CurCoreSteps)} {
		if l != n {
			return fmt.Errorf("policy: inconsistent snapshot slice lengths")
		}
	}
	if len(s.MemStats) == 0 {
		return fmt.Errorf("policy: no controller stats")
	}
	if s.MemLadder == nil {
		return fmt.Errorf("policy: missing memory ladder")
	}
	if s.CoreLadders != nil {
		if len(s.CoreLadders) != n {
			return fmt.Errorf("policy: %d core ladders for %d cores", len(s.CoreLadders), n)
		}
		for i, l := range s.CoreLadders {
			if l == nil {
				return fmt.Errorf("policy: core %d has no ladder", i)
			}
		}
	} else if s.CoreLadder == nil {
		return fmt.Errorf("policy: missing core ladder")
	}
	if s.SbBar <= 0 || s.BudgetW <= 0 {
		return fmt.Errorf("policy: non-positive SbBar or budget")
	}
	return nil
}

// Decision is a full DVFS assignment.
type Decision struct {
	CoreSteps []int
	MemStep   int
}

// Policy is one capping algorithm. Implementations may keep internal
// scratch across Decide calls; a policy instance drives one run at a
// time and must not be shared between goroutines.
type Policy interface {
	Name() string
	Decide(s *Snapshot) (Decision, error)
}

// ladder returns core i's DVFS ladder: its own on a heterogeneous
// machine, the shared one otherwise.
func (s *Snapshot) ladder(i int) *dvfs.Ladder {
	if s.CoreLadders != nil {
		return s.CoreLadders[i]
	}
	return s.CoreLadder
}

// heterogeneous reports whether cores carry their own ladders. Policies
// whose homogeneous code path must stay bit-identical branch on this.
func (s *Snapshot) heterogeneous() bool { return s.CoreLadders != nil }

// multi builds the weighted response model from the snapshot.
func (s *Snapshot) multi() *qmodel.Multi {
	return &qmodel.Multi{Stats: s.MemStats, Access: s.AccessProb}
}

// response returns the per-core response function R_i(s_b).
func (s *Snapshot) response() core.ResponseFunc {
	mc := s.multi()
	return func(i int, sb float64) float64 { return mc.CoreResponse(i, sb) }
}

// inputs assembles the FastCap optimizer inputs; sbCandidates may be
// restricted (CPU-only passes just {SbBar}).
func (s *Snapshot) inputs(sbCandidates []float64) *core.Inputs {
	in := &core.Inputs{
		ZBar:         s.ZBar,
		C:            s.C,
		Power:        s.Power,
		Response:     s.response(),
		SbBar:        s.SbBar,
		SbCandidates: sbCandidates,
		Budget:       s.BudgetW,
	}
	if s.heterogeneous() {
		in.MaxZRatios = s.maxZRatios(nil)
	} else {
		in.MaxZRatio = s.CoreLadder.StepRange()
	}
	return in
}

// maxZRatios appends each core's own f_max/f_min dilation bound to dst.
func (s *Snapshot) maxZRatios(dst []float64) []float64 {
	for i := 0; i < s.N(); i++ {
		dst = append(dst, s.ladder(i).StepRange())
	}
	return dst
}

// sbForMemStep converts a memory ladder step to its bus transfer time.
func (s *Snapshot) sbForMemStep(step int) float64 {
	return s.SbBar * s.MemLadder.Max() / s.MemLadder.Freq(step)
}

// turnaround returns core i's mean turn-around time at a step of its
// own core ladder and bus transfer time sb.
func (s *Snapshot) turnaround(i, coreStep int, sb float64, mc *qmodel.Multi) float64 {
	lad := s.ladder(i)
	z := s.ZBar[i] * lad.Max() / lad.Freq(coreStep)
	return z + s.C[i] + mc.CoreResponse(i, sb)
}

// minTurnaround is core i's best-case (all-max) turn-around time.
func (s *Snapshot) minTurnaround(i int, mc *qmodel.Multi) float64 {
	return s.ZBar[i] + s.C[i] + mc.CoreResponse(i, s.SbBar)
}

// PredictPower evaluates the fitted models at a full assignment; each
// core's step is interpreted on that core's own ladder.
func (s *Snapshot) PredictPower(coreSteps []int, memStep int) float64 {
	p := s.Power.Ps + s.Power.Mem.At(s.MemLadder.NormFreq(memStep))
	for i, st := range coreSteps {
		p += s.Power.Cores[i].At(s.ladder(i).NormFreq(st))
	}
	return p
}

// objectiveD computes the fairness objective of an assignment: the worst
// (smallest) per-core ratio of best-case to achieved turn-around time.
func (s *Snapshot) objectiveD(coreSteps []int, memStep int, mc *qmodel.Multi) float64 {
	sb := s.sbForMemStep(memStep)
	d := math.Inf(1)
	for i := range coreSteps {
		ratio := s.minTurnaround(i, mc) / s.turnaround(i, coreSteps[i], sb, mc)
		if ratio < d {
			d = ratio
		}
	}
	return d
}

// predictBIPS estimates aggregate instruction throughput (instructions
// per ns) for an assignment, using the queuing model: each core retires
// IPA instructions per turn-around time.
func (s *Snapshot) predictBIPS(coreSteps []int, memStep int, mc *qmodel.Multi) float64 {
	sb := s.sbForMemStep(memStep)
	total := 0.0
	for i := range coreSteps {
		total += s.IPA[i] / s.turnaround(i, coreSteps[i], sb, mc)
	}
	return total
}
