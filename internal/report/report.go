// Package report renders experiment results as aligned text tables and
// CSV files — the textual equivalents of the paper's figures.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = runeLen(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && runeLen(c) > widths[i] {
				widths[i] = runeLen(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

func pad(s string, w int) string {
	if n := runeLen(s); n < w {
		return s + strings.Repeat(" ", w-n)
	}
	return s
}

// runeLen counts characters, not bytes, so headers like "mean µs" align.
func runeLen(s string) int { return len([]rune(s)) }

// F formats a float with the given number of decimals.
func F(v float64, prec int) string { return strconv.FormatFloat(v, 'f', prec, 64) }

// Pct formats a fraction as a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// WriteCSV emits a header row plus data rows.
func WriteCSV(w io.Writer, headers []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(headers); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SeriesCSV writes aligned time series: the first column is x (assumed
// shared), then one column per named series. Series shorter than the
// longest leave blanks.
func SeriesCSV(w io.Writer, xName string, names []string, xs []float64, ys [][]float64) error {
	if len(names) != len(ys) {
		return fmt.Errorf("report: %d names for %d series", len(names), len(ys))
	}
	headers := append([]string{xName}, names...)
	var rows [][]string
	for i, x := range xs {
		row := []string{F(x, 0)}
		for _, y := range ys {
			if i < len(y) {
				row = append(row, F(y[i], 5))
			} else {
				row = append(row, "")
			}
		}
		rows = append(rows, row)
	}
	return WriteCSV(w, headers, rows)
}
