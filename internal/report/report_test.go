package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "Fig. X",
		Headers: []string{"Mix", "Power"},
	}
	tbl.AddRow("MEM1", "0.59")
	tbl.AddRow("ILP1", "0.60")
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Fig. X", "Mix", "Power", "MEM1", "0.59", "ILP1", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: every data line has the second column starting at
	// the same offset.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	idx := strings.Index(lines[2], "Power")
	_ = idx
	if !strings.HasPrefix(lines[3], "----") {
		t.Errorf("separator missing: %q", lines[3])
	}
}

func TestTableRenderNoTitle(t *testing.T) {
	tbl := &Table{Headers: []string{"A"}}
	tbl.AddRow("1")
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(b.String(), "=") {
		t.Error("title separator emitted without title")
	}
}

func TestFormatters(t *testing.T) {
	if got := F(1.23456, 2); got != "1.23" {
		t.Errorf("F = %q", got)
	}
	if got := Pct(0.595); got != "59.5%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3,4\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestSeriesCSV(t *testing.T) {
	var b strings.Builder
	err := SeriesCSV(&b, "epoch", []string{"p50", "p60"},
		[]float64{0, 1, 2},
		[][]float64{{0.5, 0.51, 0.49}, {0.6, 0.61}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	if lines[0] != "epoch,p50,p60" {
		t.Errorf("header = %q", lines[0])
	}
	// Short series leaves a blank cell.
	if !strings.HasSuffix(lines[3], ",") {
		t.Errorf("missing blank for short series: %q", lines[3])
	}
}

func TestSeriesCSVShapeMismatch(t *testing.T) {
	var b strings.Builder
	if err := SeriesCSV(&b, "x", []string{"one"}, nil, [][]float64{{1}, {2}}); err == nil {
		t.Error("shape mismatch accepted")
	}
}
