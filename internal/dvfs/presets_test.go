package dvfs

import "testing"

func TestNamedCoreLadderPresets(t *testing.T) {
	cases := []struct {
		name       string
		wantSteps  int
		wantMinGHz float64
		wantMaxGHz float64
	}{
		{"", 10, 2.2, 4.0},
		{"perf", 10, 2.2, 4.0},
		{"efficiency", 8, 1.2, 2.4},
		{"binned", 10, 2.0, 3.6},
	}
	for _, c := range cases {
		l, err := NamedCoreLadder(c.name)
		if err != nil {
			t.Fatalf("NamedCoreLadder(%q): %v", c.name, err)
		}
		if err := l.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", c.name, err)
		}
		if l.Len() != c.wantSteps || l.Min() != c.wantMinGHz || l.Max() != c.wantMaxGHz {
			t.Errorf("preset %q: %d steps %g–%g GHz, want %d steps %g–%g",
				c.name, l.Len(), l.Min(), l.Max(), c.wantSteps, c.wantMinGHz, c.wantMaxGHz)
		}
	}
	if _, err := NamedCoreLadder("quantum"); err == nil {
		t.Error("unknown preset accepted")
	}
	// The little ladder must sit strictly below the big one so
	// heterogeneity tests can tell the classes apart.
	if EfficiencyCoreLadder().Max() >= DefaultCoreLadder().Max() {
		t.Error("efficiency ladder reaches the big-core maximum")
	}
	if BinnedCoreLadder().Max() >= DefaultCoreLadder().Max() {
		t.Error("binned ladder reaches the full-bin maximum")
	}
}
