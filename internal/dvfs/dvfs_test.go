package dvfs

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultCoreLadder(t *testing.T) {
	l := DefaultCoreLadder()
	if got := l.Len(); got != 10 {
		t.Fatalf("core ladder has %d steps, want 10", got)
	}
	if got := l.Min(); math.Abs(got-2.2) > 1e-12 {
		t.Errorf("min freq = %g, want 2.2", got)
	}
	if got := l.Max(); math.Abs(got-4.0) > 1e-12 {
		t.Errorf("max freq = %g, want 4.0", got)
	}
	if got := l.Volt(0); math.Abs(got-0.65) > 1e-12 {
		t.Errorf("min volt = %g, want 0.65", got)
	}
	if got := l.Volt(l.MaxStep()); math.Abs(got-1.2) > 1e-12 {
		t.Errorf("max volt = %g, want 1.2", got)
	}
	// Equally spaced: step 0.2 GHz.
	for i := 1; i < l.Len(); i++ {
		if d := l.Freq(i) - l.Freq(i-1); math.Abs(d-0.2) > 1e-9 {
			t.Errorf("step %d spacing = %g, want 0.2", i, d)
		}
	}
}

func TestDefaultMemLadder(t *testing.T) {
	l := DefaultMemLadder()
	if got := l.Len(); got != 10 {
		t.Fatalf("mem ladder has %d steps, want 10", got)
	}
	if got := l.Min(); math.Abs(got-0.200) > 1e-12 {
		t.Errorf("min = %g, want 0.200", got)
	}
	if got := l.Max(); math.Abs(got-0.800) > 1e-12 {
		t.Errorf("max = %g, want 0.800", got)
	}
	// ~66 MHz steps as the paper specifies.
	for i := 1; i < l.Len(); i++ {
		d := l.Freq(i) - l.Freq(i-1)
		if d < 0.060 || d > 0.070 {
			t.Errorf("step %d spacing = %g GHz, want ~0.066", i, d)
		}
	}
}

func TestNewLadderErrors(t *testing.T) {
	cases := []struct {
		name  string
		freqs []float64
		volts []float64
	}{
		{"empty", nil, nil},
		{"length mismatch", []float64{1, 2}, []float64{1}},
		{"non-ascending", []float64{2, 1}, []float64{1, 1}},
		{"duplicate", []float64{1, 1}, []float64{1, 1}},
		{"zero freq", []float64{0, 1}, []float64{1, 1}},
		{"negative volt", []float64{1, 2}, []float64{1, -1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewLadder(c.freqs, c.volts); err == nil {
				t.Fatalf("NewLadder(%v, %v) succeeded, want error", c.freqs, c.volts)
			}
		})
	}
}

func TestNewUniformLadderErrors(t *testing.T) {
	if _, err := NewUniformLadder(0, 1, 2, 1, 1); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := NewUniformLadder(3, -1, 2, 1, 1); err == nil {
		t.Error("negative fMin accepted")
	}
	if _, err := NewUniformLadder(3, 2, 1, 1, 1); err == nil {
		t.Error("fMax < fMin accepted")
	}
}

func TestSingleStepLadder(t *testing.T) {
	l, err := NewUniformLadder(1, 3.0, 3.0, 1.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if l.Nearest(99) != 0 || l.Nearest(0.1) != 0 {
		t.Error("single-step ladder must always quantize to step 0")
	}
	if l.NormFreq(0) != 1.0 {
		t.Errorf("NormFreq = %g, want 1", l.NormFreq(0))
	}
}

func TestNearest(t *testing.T) {
	l := DefaultCoreLadder()
	cases := []struct {
		f    float64
		want int
	}{
		{0.0, 0},
		{2.2, 0},
		{2.29, 0},
		{2.31, 1},
		{4.0, 9},
		{5.5, 9},
		{3.0, 4},  // exact step
		{3.11, 5}, // closer to 3.2 than 3.0... actually 3.11 is closer to 3.2? |3.11-3.0|=0.11, |3.11-3.2|=0.09 → step 5
	}
	for _, c := range cases {
		if got := l.Nearest(c.f); got != c.want {
			t.Errorf("Nearest(%g) = %d (%.2f GHz), want %d", c.f, got, l.Freq(got), c.want)
		}
	}
}

func TestNearestNormRoundTrip(t *testing.T) {
	l := DefaultCoreLadder()
	for i := 0; i < l.Len(); i++ {
		if got := l.NearestNorm(l.NormFreq(i)); got != i {
			t.Errorf("NearestNorm(NormFreq(%d)) = %d, want %d", i, got, i)
		}
	}
}

func TestFloorNorm(t *testing.T) {
	l := DefaultCoreLadder()
	// Exactly on a step stays on that step.
	for i := 0; i < l.Len(); i++ {
		if got := l.FloorNorm(l.NormFreq(i)); got != i {
			t.Errorf("FloorNorm(NormFreq(%d)) = %d, want %d", i, got, i)
		}
	}
	// Slightly above a step floors back down to it.
	if got := l.FloorNorm((2.3) / 4.0); got != 0 {
		t.Errorf("FloorNorm(2.3GHz norm) = %d, want 0", got)
	}
	// Below the bottom clamps to 0.
	if got := l.FloorNorm(0.01); got != 0 {
		t.Errorf("FloorNorm(0.01) = %d, want 0", got)
	}
	// Above the top clamps to the top.
	if got := l.FloorNorm(2.0); got != l.MaxStep() {
		t.Errorf("FloorNorm(2.0) = %d, want %d", got, l.MaxStep())
	}
}

func TestVoltAtFreq(t *testing.T) {
	l := DefaultCoreLadder()
	if got := l.VoltAtFreq(2.2); math.Abs(got-0.65) > 1e-12 {
		t.Errorf("VoltAtFreq(2.2) = %g, want 0.65", got)
	}
	if got := l.VoltAtFreq(4.0); math.Abs(got-1.2) > 1e-12 {
		t.Errorf("VoltAtFreq(4.0) = %g, want 1.2", got)
	}
	// Clamps below/above.
	if got := l.VoltAtFreq(1.0); got != 0.65 {
		t.Errorf("VoltAtFreq(1.0) = %g, want clamp to 0.65", got)
	}
	if got := l.VoltAtFreq(9.0); got != 1.2 {
		t.Errorf("VoltAtFreq(9.0) = %g, want clamp to 1.2", got)
	}
	// Midpoint interpolates: 3.1 GHz is halfway → 0.925 V.
	if got := l.VoltAtFreq(3.1); math.Abs(got-0.925) > 1e-9 {
		t.Errorf("VoltAtFreq(3.1) = %g, want 0.925", got)
	}
	// Monotone in f.
	prev := 0.0
	for f := 2.0; f <= 4.2; f += 0.01 {
		v := l.VoltAtFreq(f)
		if v < prev {
			t.Fatalf("VoltAtFreq not monotone at f=%g", f)
		}
		prev = v
	}
}

func TestScaleTime(t *testing.T) {
	l := DefaultCoreLadder()
	// At the top step time is unchanged.
	if got := l.ScaleTime(100, l.MaxStep()); math.Abs(got-100) > 1e-9 {
		t.Errorf("ScaleTime at max = %g, want 100", got)
	}
	// At the bottom step time dilates by fmax/fmin = 4.0/2.2.
	want := 100 * 4.0 / 2.2
	if got := l.ScaleTime(100, 0); math.Abs(got-want) > 1e-9 {
		t.Errorf("ScaleTime at min = %g, want %g", got, want)
	}
}

func TestStepForTimeRoundTrip(t *testing.T) {
	l := DefaultCoreLadder()
	const tMin = 250.0
	for i := 0; i < l.Len(); i++ {
		tt := l.ScaleTime(tMin, i)
		if got := l.StepForTime(tMin, tt); got != i {
			t.Errorf("StepForTime(ScaleTime(step %d)) = %d", i, got)
		}
	}
	// Degenerate inputs clamp to max step.
	if got := l.StepForTime(0, 10); got != l.MaxStep() {
		t.Errorf("StepForTime(0,10) = %d, want max", got)
	}
	if got := l.StepForTime(10, 0); got != l.MaxStep() {
		t.Errorf("StepForTime(10,0) = %d, want max", got)
	}
}

func TestStepRange(t *testing.T) {
	l := DefaultCoreLadder()
	if got, want := l.StepRange(), 4.0/2.2; math.Abs(got-want) > 1e-12 {
		t.Errorf("StepRange = %g, want %g", got, want)
	}
}

func TestValidate(t *testing.T) {
	if err := DefaultCoreLadder().Validate(); err != nil {
		t.Errorf("core ladder invalid: %v", err)
	}
	if err := DefaultMemLadder().Validate(); err != nil {
		t.Errorf("mem ladder invalid: %v", err)
	}
	if err := (&Ladder{}).Validate(); err == nil {
		t.Error("empty ladder validated")
	}
	if err := (&Ladder{freqs: []float64{math.NaN()}, volts: []float64{1}}).Validate(); err == nil {
		t.Error("NaN frequency validated")
	}
}

// Property: Nearest always returns the step minimizing |f - Freq(step)|.
func TestNearestIsArgmin(t *testing.T) {
	l := DefaultCoreLadder()
	f := func(raw float64) bool {
		// Map arbitrary float into a reasonable range [0, 8) GHz.
		x := math.Mod(math.Abs(raw), 8.0)
		got := l.Nearest(x)
		best, bestD := 0, math.Inf(1)
		for i := 0; i < l.Len(); i++ {
			if d := math.Abs(x - l.Freq(i)); d < bestD {
				best, bestD = i, d
			}
		}
		return math.Abs(x-l.Freq(got)) <= bestD+1e-12 && got >= 0 && got < l.Len() && best >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FloorNorm(x) frequency never exceeds x·Max (modulo epsilon).
func TestFloorNormNeverExceeds(t *testing.T) {
	l := DefaultMemLadder()
	f := func(raw float64) bool {
		x := math.Mod(math.Abs(raw), 1.5)
		step := l.FloorNorm(x)
		if step == 0 {
			return true // clamped; nothing to check
		}
		return l.Freq(step) <= x*l.Max()+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ScaleTime is inverse-monotone in step (higher step → shorter time).
func TestScaleTimeMonotone(t *testing.T) {
	l := DefaultCoreLadder()
	for i := 1; i < l.Len(); i++ {
		if l.ScaleTime(100, i) >= l.ScaleTime(100, i-1) {
			t.Fatalf("ScaleTime not strictly decreasing at step %d", i)
		}
	}
}
