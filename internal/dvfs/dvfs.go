// Package dvfs models the discrete voltage/frequency ladders available to
// the cores and to the memory subsystem, mirroring the platform evaluated
// in the FastCap paper (ISPASS 2016, §IV-A): ten equally spaced core
// frequencies between 2.2 and 4.0 GHz with voltage scaling proportionally
// between 0.65 V and 1.2 V (Sandy Bridge-like), and a memory bus ladder
// from 200 to 800 MHz in 66 MHz steps.
//
// Frequencies are expressed in GHz throughout this package; times derived
// from them are in nanoseconds (1/GHz = ns).
package dvfs

import (
	"fmt"
	"math"
	"sort"
)

// Ladder is an immutable, ascending list of selectable frequencies (GHz)
// together with the voltage (V) applied at each step.
type Ladder struct {
	freqs []float64
	volts []float64
}

// NewLadder builds a ladder from explicit frequency/voltage pairs.
// Frequencies must be strictly ascending and positive, and both slices
// must have the same nonzero length.
func NewLadder(freqs, volts []float64) (*Ladder, error) {
	if len(freqs) == 0 {
		return nil, fmt.Errorf("dvfs: ladder needs at least one step")
	}
	if len(freqs) != len(volts) {
		return nil, fmt.Errorf("dvfs: %d frequencies but %d voltages", len(freqs), len(volts))
	}
	for i, f := range freqs {
		if f <= 0 {
			return nil, fmt.Errorf("dvfs: frequency %g at step %d must be positive", f, i)
		}
		if i > 0 && f <= freqs[i-1] {
			return nil, fmt.Errorf("dvfs: frequencies must be strictly ascending (step %d)", i)
		}
		if volts[i] <= 0 {
			return nil, fmt.Errorf("dvfs: voltage %g at step %d must be positive", volts[i], i)
		}
	}
	l := &Ladder{
		freqs: append([]float64(nil), freqs...),
		volts: append([]float64(nil), volts...),
	}
	return l, nil
}

// NewUniformLadder builds a ladder with n equally spaced frequencies in
// [fMin, fMax] and voltages interpolated linearly in [vMin, vMax], with
// voltage proportional to frequency as the paper assumes.
func NewUniformLadder(n int, fMin, fMax, vMin, vMax float64) (*Ladder, error) {
	if n < 1 {
		return nil, fmt.Errorf("dvfs: need at least one step, got %d", n)
	}
	if fMin <= 0 || fMax < fMin {
		return nil, fmt.Errorf("dvfs: invalid frequency range [%g, %g]", fMin, fMax)
	}
	freqs := make([]float64, n)
	volts := make([]float64, n)
	for i := 0; i < n; i++ {
		t := 0.0
		if n > 1 {
			t = float64(i) / float64(n-1)
		}
		freqs[i] = fMin + t*(fMax-fMin)
		volts[i] = vMin + t*(vMax-vMin)
	}
	return NewLadder(freqs, volts)
}

// DefaultCoreLadder returns the paper's core DVFS ladder: 10 equally
// spaced steps covering 2.2–4.0 GHz at 0.65–1.2 V.
func DefaultCoreLadder() *Ladder {
	l, err := NewUniformLadder(10, 2.2, 4.0, 0.65, 1.2)
	if err != nil {
		panic(err) // constants above are valid by construction
	}
	return l
}

// EfficiencyCoreLadder returns the little-core ladder used by the
// heterogeneous (big.LITTLE-style) machine specs: 8 equally spaced
// steps covering 1.2–2.4 GHz at 0.55–0.95 V. Compared to the paper's
// big-core ladder it trades the top half of the frequency range for a
// much lower voltage envelope.
func EfficiencyCoreLadder() *Ladder {
	l, err := NewUniformLadder(8, 1.2, 2.4, 0.55, 0.95)
	if err != nil {
		panic(err) // constants above are valid by construction
	}
	return l
}

// BinnedCoreLadder returns the slow-bin variant of the paper's core
// ladder: the same 10 steps and voltage envelope, with every frequency
// derated to 2.0–3.6 GHz — a part from the same design whose silicon
// did not bin to the full 4.0 GHz.
func BinnedCoreLadder() *Ladder {
	l, err := NewUniformLadder(10, 2.0, 3.6, 0.65, 1.2)
	if err != nil {
		panic(err)
	}
	return l
}

// NamedCoreLadder resolves a core-class ladder preset by name — the
// vocabulary the serving layer and machine specs accept:
//
//	"perf" (or ""): the paper's 2.2–4.0 GHz big-core ladder
//	"efficiency":   the 1.2–2.4 GHz little-core ladder
//	"binned":       the 2.0–3.6 GHz slow-bin ladder
func NamedCoreLadder(name string) (*Ladder, error) {
	switch name {
	case "", "perf":
		return DefaultCoreLadder(), nil
	case "efficiency":
		return EfficiencyCoreLadder(), nil
	case "binned":
		return BinnedCoreLadder(), nil
	default:
		return nil, fmt.Errorf("dvfs: unknown ladder preset %q (want perf, efficiency, or binned)", name)
	}
}

// DefaultMemLadder returns the paper's memory bus ladder: 200–800 MHz in
// 66 MHz steps (0.200, 0.266, ..., 0.800 GHz — ten steps). Bus and DRAM
// chips scale frequency only, so the voltage column is held at the DDR3
// nominal 1.5 V for every step.
func DefaultMemLadder() *Ladder {
	const steps = 10
	freqs := make([]float64, steps)
	volts := make([]float64, steps)
	for i := 0; i < steps; i++ {
		freqs[i] = 0.200 + 0.0666666666666667*float64(i)
		volts[i] = 1.5
	}
	freqs[steps-1] = 0.800 // pin the top step exactly
	l, err := NewLadder(freqs, volts)
	if err != nil {
		panic(err)
	}
	return l
}

// Len returns the number of steps in the ladder.
func (l *Ladder) Len() int { return len(l.freqs) }

// Freq returns the frequency (GHz) at step i. Steps are 0-based and
// ascending; the highest step is Len()-1.
func (l *Ladder) Freq(i int) float64 { return l.freqs[i] }

// Volt returns the voltage (V) at step i.
func (l *Ladder) Volt(i int) float64 { return l.volts[i] }

// Max returns the highest frequency (GHz) in the ladder.
func (l *Ladder) Max() float64 { return l.freqs[len(l.freqs)-1] }

// Min returns the lowest frequency (GHz) in the ladder.
func (l *Ladder) Min() float64 { return l.freqs[0] }

// MaxStep returns the index of the highest frequency.
func (l *Ladder) MaxStep() int { return len(l.freqs) - 1 }

// Freqs returns a copy of all frequencies, ascending.
func (l *Ladder) Freqs() []float64 { return append([]float64(nil), l.freqs...) }

// Volts returns a copy of all voltages, aligned with Freqs.
func (l *Ladder) Volts() []float64 { return append([]float64(nil), l.volts...) }

// NormFreq returns Freq(i)/Max(), the frequency scaling factor in (0, 1].
func (l *Ladder) NormFreq(i int) float64 { return l.freqs[i] / l.Max() }

// StepRange returns Max()/Min(), i.e. how much slower the lowest step is
// than the highest. FastCap uses this to bound think-time dilation.
func (l *Ladder) StepRange() float64 { return l.Max() / l.Min() }

// Nearest returns the step whose frequency is closest to f (GHz), with
// ties resolved toward the higher step. Values outside the ladder range
// clamp to the first or last step.
func (l *Ladder) Nearest(f float64) int {
	i := sort.SearchFloat64s(l.freqs, f)
	if i == 0 {
		return 0
	}
	if i == len(l.freqs) {
		return len(l.freqs) - 1
	}
	if f-l.freqs[i-1] < l.freqs[i]-f {
		return i - 1
	}
	return i
}

// NearestNorm returns the step whose normalized frequency (Freq/Max) is
// closest to the scaling factor norm ∈ (0, 1]. This is the quantization
// FastCap applies to the continuous optimizer output z̄_i/z_i.
func (l *Ladder) NearestNorm(norm float64) int {
	return l.Nearest(norm * l.Max())
}

// FloorNorm returns the highest step whose normalized frequency does not
// exceed norm, or step 0 if none does. Used by budget-conservative
// quantization.
func (l *Ladder) FloorNorm(norm float64) int {
	target := norm * l.Max()
	// Allow a hair of slack so that exact ladder values round to themselves
	// despite floating-point noise.
	const eps = 1e-9
	i := sort.SearchFloat64s(l.freqs, target+eps) - 1
	if i < 0 {
		return 0
	}
	return i
}

// VoltAtFreq linearly interpolates the ladder's voltage at an arbitrary
// frequency f (GHz), clamping outside the range. It reflects the paper's
// assumption that voltage scales proportionally with frequency between
// the endpoints.
func (l *Ladder) VoltAtFreq(f float64) float64 {
	if f <= l.freqs[0] {
		return l.volts[0]
	}
	n := len(l.freqs)
	if f >= l.freqs[n-1] {
		return l.volts[n-1]
	}
	i := sort.SearchFloat64s(l.freqs, f)
	f0, f1 := l.freqs[i-1], l.freqs[i]
	v0, v1 := l.volts[i-1], l.volts[i]
	t := (f - f0) / (f1 - f0)
	return v0 + t*(v1-v0)
}

// ScaleTime converts a minimum time tMin (achieved at the ladder maximum)
// to the dilated time at step i: tMin · Max/Freq(i). This implements the
// paper's z_i = z̄_i · (f_max/f_i) relation for think times and bus
// transfer times alike.
func (l *Ladder) ScaleTime(tMin float64, i int) float64 {
	return tMin * l.Max() / l.freqs[i]
}

// StepForTime inverts ScaleTime: it returns the ladder step whose dilation
// of tMin is closest to t. t below tMin clamps to the top step.
func (l *Ladder) StepForTime(tMin, t float64) int {
	if t <= 0 || tMin <= 0 {
		return l.MaxStep()
	}
	return l.NearestNorm(tMin / t)
}

// Validate sanity-checks ladder invariants; it is used by property tests
// and returns a descriptive error if an invariant is broken.
func (l *Ladder) Validate() error {
	if len(l.freqs) == 0 {
		return fmt.Errorf("dvfs: empty ladder")
	}
	for i := range l.freqs {
		if math.IsNaN(l.freqs[i]) || math.IsInf(l.freqs[i], 0) {
			return fmt.Errorf("dvfs: non-finite frequency at step %d", i)
		}
		if i > 0 && l.freqs[i] <= l.freqs[i-1] {
			return fmt.Errorf("dvfs: non-ascending at step %d", i)
		}
	}
	return nil
}
