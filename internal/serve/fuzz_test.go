package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"

	"repro/internal/runner"
)

// FuzzClusterRequest drives the cluster-create and member-attach JSON
// request path: any byte string must either decode-fail (the handler's
// 400), resolve cleanly, or yield a typed error that writeErr maps to a
// 4xx — malformed budgets, duplicate member ids, over-MaxSessions
// groups and arbitrary mutations must never panic or surface as a 5xx.
// resolve is the exact validation the handlers run before any simulator
// is built, so fuzzing it covers the unauthenticated decision surface
// without paying for simulator construction per input.
func FuzzClusterRequest(f *testing.F) {
	f.Add([]byte(`{"budget_w":120,"arbiter":"slack","members":[` +
		`{"id":"ilp","weight":2,"session":{"mix":"ILP1","budget_frac":0.6,"cores":8,"epochs":6}},` +
		`{"id":"mem","floor_frac":0.2,"session":{"mix":"MEM3","budget_frac":0.6,"cores":8,"epochs":6}}]}`))
	f.Add([]byte(`{"budget_frac":0.65,"members":[{"session":{"mix":"MIX3","budget_frac":0.6}}]}`))
	f.Add([]byte(`{"budget_w":-40,"members":[{"session":{"mix":"MIX3","budget_frac":0.6}}]}`))
	f.Add([]byte(`{"budget_w":1e308,"budget_frac":0.5,"members":[]}`))
	f.Add([]byte(`{"budget_w":50,"members":[{"id":"a","session":{"mix":"MIX3","budget_frac":0.6}},` +
		`{"id":"a","session":{"mix":"MID1","budget_frac":0.6}}]}`))
	f.Add([]byte(`{"budget_w":50,"arbiter":"chaos","members":[{"session":{"mix":"MIX3","budget_frac":0.6}}]}`))
	f.Add([]byte(`{"budget_w":50,"members":[` +
		`{"session":{"mix":"MIX3","budget_frac":0.6}},{"session":{"mix":"MIX3","budget_frac":0.6}},` +
		`{"session":{"mix":"MIX3","budget_frac":0.6}},{"session":{"mix":"MIX3","budget_frac":0.6}},` +
		`{"session":{"mix":"MIX3","budget_frac":0.6}}]}`))
	f.Add([]byte(`{"budget_w":50,"members":[{"weight":-1,"session":{"mix":"MIX3","budget_frac":0.6}}]}`))
	f.Add([]byte(`{"budget_w":50,"members":[{"floor_frac":1.5,"session":{"mix":"MIX3","budget_frac":0.6}}]}`))
	f.Add([]byte(`{"budget_w":50,"members":[{"session":{"mix":"MIX3","budget_frac":0.6,"record":true}}]}`))
	f.Add([]byte(`{"budget_w":50,"members":[{"session":{"mix":"MIX3","budget_frac":0.6,` +
		`"machine":{"classes":[{"name":"big","count":2},{"name":"little","count":2,"ladder":"efficiency"}]},"cores":4}}]}`))
	f.Add([]byte(`{"id":"late","session":{"mix":"MEM2","budget_frac":0.6}}`))
	f.Add([]byte(`{"budget_w":120,"arbiter":"slo","members":[` +
		`{"id":"gold","target_bips":4,"session":{"mix":"ILP1","budget_frac":0.6,"cores":8,"epochs":6}},` +
		`{"id":"be","session":{"mix":"MEM3","budget_frac":0.6,"cores":8,"epochs":6}}]}`))
	f.Add([]byte(`{"budget_w":120,"arbiter":"predictive","members":[` +
		`{"id":"surge","session":{"mix":"ILP1","budget_frac":0.6,"cores":8,"epochs":6,` +
		`"phases":[{"epoch":2,"scale":2}]}},` +
		`{"id":"donor","session":{"mix":"MEM3","budget_frac":0.6,"cores":8,"epochs":6}}]}`))
	f.Add([]byte(`{"budget_frac":0.55,"arbiter":"predictive","members":[` +
		`{"id":"a","weight":2,"floor_frac":0.2,"session":{"mix":"MIX3","budget_frac":0.6}},` +
		`{"id":"b","session":{"mix":"MID1","budget_frac":0.6}}]}`))
	f.Add([]byte(`{"budget_w":50,"members":[{"target_bips":-2,"session":{"mix":"MIX3","budget_frac":0.6}}]}`))
	f.Add([]byte(`{"budget_w":50,"members":[{"target_bips":NaN,"session":{"mix":"MIX3","budget_frac":0.6}}]}`))
	f.Add([]byte(`{"budget_w":50,"members":[{"session":{"mix":"MIX3","budget_frac":0.6,` +
		`"phases":[{"epoch":2,"scale":2},{"epoch":4,"scale":0.25}]}}]}`))
	f.Add([]byte(`{"budget_w":50,"members":[{"session":{"mix":"MIX3","budget_frac":0.6,` +
		`"phases":[{"epoch":3,"scale":-1}]}}]}`))
	f.Add([]byte(`{"budget_w":50,"members":[{"session":{"mix":"MIX3","budget_frac":0.6,` +
		`"phases":[{"epoch":5,"scale":1},{"epoch":5,"scale":2}]}}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		check := func(err error) {
			t.Helper()
			if err == nil {
				return
			}
			if !errors.Is(err, runner.ErrInvalidConfig) && !errors.Is(err, ErrTooManySessions) {
				t.Fatalf("untyped request error: %v", err)
			}
			rw := httptest.NewRecorder()
			writeErr(rw, err)
			if rw.Code < 400 || rw.Code >= 500 {
				t.Fatalf("request error mapped to %d, want a 4xx: %v", rw.Code, err)
			}
		}

		// Create path: strict decode, then the pure resolution the
		// handler runs before building anything.
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		var req ClusterRequest
		if err := dec.Decode(&req); err == nil {
			_, err := req.resolve(4)
			check(err)
		}

		// Attach path: the same bytes as a member request.
		dec = json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		var mr ClusterMemberRequest
		if err := dec.Decode(&mr); err == nil {
			_, err := resolveMember(mr, 0, map[string]bool{})
			check(err)
		}
	})
}
