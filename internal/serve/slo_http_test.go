package serve_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/serve"
)

// The one-table registry sync: cluster.ArbiterNames is the single
// source of truth the serve layer (create + error hint) and the
// experiments sweep (which fastcap-tables -cluster renders) all consume
// directly. This test pins the canonical table and proves the serve
// surface accepts exactly it — adding an arbiter to the registry must
// come back here, to the request docs and to the CI smokes.
func TestArbiterRegistrySync(t *testing.T) {
	canonical := []string{"static", "slack", "priority", "slo", "predictive"}
	if got := cluster.ArbiterNames(); !reflect.DeepEqual(got, canonical) {
		t.Fatalf("cluster.ArbiterNames() = %v, want %v (update the canonical table and every consumer)", got, canonical)
	}

	m := serve.NewManager(serve.Options{Workers: 1, MaxSessions: 2 * len(canonical)})
	defer m.Shutdown(context.Background())
	for _, name := range canonical {
		st, err := m.CreateCluster(serve.ClusterRequest{
			BudgetFrac: 0.6,
			Arbiter:    name,
			Members:    []serve.ClusterMemberRequest{quickMember("m1", "MIX3", 4, 2)},
		})
		if err != nil {
			t.Fatalf("serve rejected registry arbiter %q: %v", name, err)
		}
		if st.Arbiter != name {
			t.Errorf("create with arbiter %q reported %q", name, st.Arbiter)
		}
	}

	// The rejection hint lists the registry verbatim, so clients learn
	// the same table the registry holds.
	_, err := m.CreateCluster(serve.ClusterRequest{
		BudgetFrac: 0.6,
		Arbiter:    "chaos",
		Members:    []serve.ClusterMemberRequest{quickMember("m1", "MIX3", 4, 2)},
	})
	if err == nil {
		t.Fatal("unknown arbiter accepted")
	}
	for _, name := range canonical {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-arbiter error %q does not mention registry arbiter %q", err, name)
		}
	}
}

// The SLO surface over HTTP: a contracted member's target survives into
// the status, its grant lines carry bips/target_bips/slo_violated, and
// the stream surfaces typed slo events; hostile contract and phase
// payloads map to 4xx, never 5xx.
func TestClusterSLOMemberHTTP(t *testing.T) {
	m := serve.NewManager(serve.Options{Workers: 2, MaxSessions: 4})
	defer m.Shutdown(context.Background())
	srv := httptest.NewServer(serve.NewHandler(m))
	defer srv.Close()

	post := func(path, body string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(b)
	}

	for name, body := range map[string]string{
		"negative target": `{"budget_w":50,"arbiter":"slo","members":[{"target_bips":-1,"session":{"mix":"MIX3","budget_frac":0.6,"cores":2,"epochs":2,"epoch_ms":0.5}}]}`,
		"nan target":      `{"budget_w":50,"arbiter":"slo","members":[{"target_bips":"x","session":{"mix":"MIX3","budget_frac":0.6,"cores":2,"epochs":2,"epoch_ms":0.5}}]}`,
		"bad phase scale": `{"budget_w":50,"members":[{"session":{"mix":"MIX3","budget_frac":0.6,"cores":2,"epochs":2,"epoch_ms":0.5,"phases":[{"epoch":1,"scale":-2}]}}]}`,
		"phase dup epoch": `{"budget_w":50,"members":[{"session":{"mix":"MIX3","budget_frac":0.6,"cores":2,"epochs":2,"epoch_ms":0.5,"phases":[{"epoch":1,"scale":1},{"epoch":1,"scale":2}]}}]}`,
		"phase past run":  `{"budget_w":50,"members":[{"session":{"mix":"MIX3","budget_frac":0.6,"cores":2,"epochs":2,"epoch_ms":0.5,"phases":[{"epoch":100001,"scale":2}]}}]}`,
	} {
		resp, b := post("/clusters", body)
		if resp.StatusCode < 400 || resp.StatusCode >= 500 {
			t.Errorf("%s: status %d (%s), want 4xx", name, resp.StatusCode, b)
		}
	}

	// An unreachable contract on a phase-shifting member: violations are
	// guaranteed, so the stream must carry the typed telemetry.
	resp, body := post("/clusters", `{"budget_frac":0.6,"arbiter":"slo","members":[
		{"id":"gold","target_bips":1000000,"session":{"mix":"ILP1","budget_frac":0.6,"cores":4,"epochs":6,"epoch_ms":0.5,"phases":[{"epoch":2,"scale":1.5}]}},
		{"id":"be","session":{"mix":"MEM2","budget_frac":0.6,"cores":4,"epochs":6,"epoch_ms":0.5}}]}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"target_bips":1000000`) {
		t.Errorf("create status lost the contract: %s", body)
	}

	var id string
	if i := strings.Index(body, `"id":"`); i >= 0 {
		id = body[i+6:]
		id = id[:strings.Index(id, `"`)]
	}
	streamResp, err := http.Get(srv.URL + "/clusters/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	stream, _ := io.ReadAll(streamResp.Body)
	streamResp.Body.Close()
	for _, want := range []string{`"slo_violated":true`, `"target_bips":1000000`, `"bips":`, `"events":[`, `"type":"slo_violated"`} {
		if !strings.Contains(string(stream), want) {
			t.Errorf("stream missing %s", want)
		}
	}
	// The best-effort member never reports contract telemetry.
	for _, line := range strings.Split(string(stream), "\n") {
		if !strings.Contains(line, `"members"`) {
			continue
		}
		var rec cluster.EpochRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("stream line %q: %v", line, err)
		}
		for _, mg := range rec.Members {
			if mg.ID == "be" && (mg.BIPS != 0 || mg.TargetBIPS != 0 || mg.SLOViolated) {
				t.Errorf("best-effort member carries contract telemetry: %+v", mg)
			}
		}
	}
}
