package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/replay"
	"repro/internal/runner"
	"repro/internal/serve"
)

// newServer boots the full HTTP stack over a fresh manager.
func newServer(t *testing.T, o serve.Options) (*httptest.Server, *serve.Manager) {
	t.Helper()
	m := serve.NewManager(o)
	srv := httptest.NewServer(serve.NewHandler(m))
	t.Cleanup(func() {
		srv.Close()
		m.Shutdown(context.Background())
	})
	return srv, m
}

// doJSON posts v (or GETs when v is nil) and returns the response.
func doJSON(t *testing.T, method, url string, v any) *http.Response {
	t.Helper()
	var body io.Reader
	if v != nil {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeStatus(t *testing.T, resp *http.Response) serve.Status {
	t.Helper()
	defer resp.Body.Close()
	var st serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// The full curl flow of the README quick-start, verified to the byte:
// create over HTTP, stream NDJSON, fetch the result — every line and
// the final aggregate identical to a solo runner.Run of the same
// request — then delete.
func TestHTTPLifecycleGolden(t *testing.T) {
	srv, _ := newServer(t, serve.Options{Workers: 2})
	req := quickReq("MIX3", 4, 6, 0.6)
	solo := soloRun(t, req)

	resp := doJSON(t, "POST", srv.URL+"/sessions", req)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc == "" {
		t.Error("create response has no Location header")
	}
	st := decodeStatus(t, resp)
	if st.ID == "" {
		t.Fatal("create returned no id")
	}

	// Stream: every NDJSON line must be byte-identical to the solo
	// run's marshaled epoch record.
	stream := doJSON(t, "GET", srv.URL+"/sessions/"+st.ID+"/stream", nil)
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type %q", ct)
	}
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(nil, 1<<20)
	lines := 0
	for sc.Scan() {
		if isHeartbeatLine(sc.Bytes()) {
			continue // keepalives are not epoch records
		}
		if lines >= len(solo.Epochs) {
			t.Fatalf("stream produced more than the %d solo epochs", len(solo.Epochs))
		}
		want := mustJSON(t, solo.Epochs[lines])
		if !bytes.Equal(sc.Bytes(), want) {
			t.Errorf("stream line %d diverged:\nserved: %s\nsolo:   %s", lines, sc.Bytes(), want)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != len(solo.Epochs) {
		t.Fatalf("streamed %d lines, want %d", lines, len(solo.Epochs))
	}

	// Result: byte-identical to the solo aggregate.
	res := doJSON(t, "GET", srv.URL+"/sessions/"+st.ID+"/result", nil)
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK {
		t.Fatalf("result status %d: %s", res.StatusCode, body)
	}
	if want := mustJSON(t, solo); !bytes.Equal(bytes.TrimRight(body, "\n"), want) {
		t.Error("HTTP result diverged from the solo run")
	}

	// Status reflects completion; a ?from cursor resumes mid-stream.
	if got := decodeStatus(t, doJSON(t, "GET", srv.URL+"/sessions/"+st.ID, nil)); got.State != serve.StateDone || got.EpochsDone != 6 {
		t.Errorf("status after run: %+v", got)
	}
	resumed := doJSON(t, "GET", srv.URL+"/sessions/"+st.ID+"/stream?from=4", nil)
	rb, err := io.ReadAll(resumed.Body)
	resumed.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(rb), "\n"); got != 2 {
		t.Errorf("resume from 4 of 6 yielded %d lines, want 2", got)
	}

	// Delete, then everything 404s.
	if del := doJSON(t, "DELETE", srv.URL+"/sessions/"+st.ID, nil); del.StatusCode != http.StatusNoContent {
		t.Errorf("delete status %d", del.StatusCode)
	}
	if after := doJSON(t, "GET", srv.URL+"/sessions/"+st.ID, nil); after.StatusCode != http.StatusNotFound {
		t.Errorf("status after delete %d, want 404", after.StatusCode)
	}
}

// Live budget retargeting over HTTP: the stream must show an epoch
// under the new cap, and the run keeps going.
func TestHTTPBudgetRetarget(t *testing.T) {
	srv, _ := newServer(t, serve.Options{Workers: 1})
	st := decodeStatus(t, doJSON(t, "POST", srv.URL+"/sessions", quickReq("MID1", 4, 5_000, 0.8)))

	if resp := doJSON(t, "POST", srv.URL+"/sessions/"+st.ID+"/budget", map[string]float64{"budget_frac": 0.5}); resp.StatusCode != http.StatusOK {
		t.Fatalf("budget status %d", resp.StatusCode)
	}
	stream := doJSON(t, "GET", srv.URL+"/sessions/"+st.ID+"/stream", nil)
	defer stream.Body.Close()
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(nil, 1<<20)
	found := false
	for i := 0; i < 100 && sc.Scan(); i++ {
		var rec runner.EpochRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.BudgetW == 0.5*st.PeakW {
			found = true
			break
		}
	}
	if !found {
		t.Error("no streamed epoch ran under the retargeted budget")
	}
	doJSON(t, "DELETE", srv.URL+"/sessions/"+st.ID, nil).Body.Close()
}

// A recorded session serves its trace as JSON that decodes into a
// replayable recording.
func TestHTTPRecordingEndpoint(t *testing.T) {
	srv, m := newServer(t, serve.Options{Workers: 1})
	req := quickReq("MIX2", 4, 4, 0.6)
	req.Record = true
	st := decodeStatus(t, doJSON(t, "POST", srv.URL+"/sessions", req))
	collect(t, m, st.ID) // wait for completion

	resp := doJSON(t, "GET", srv.URL+"/sessions/"+st.ID+"/recording", nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recording status %d", resp.StatusCode)
	}
	rec, err := replay.ReadJSON(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Epochs) != 4 || rec.Cores() != 4 {
		t.Errorf("served recording has %d epochs over %d cores, want 4 over 4", len(rec.Epochs), rec.Cores())
	}
}

// Error mapping: each typed failure surfaces as its HTTP status.
func TestHTTPErrorMapping(t *testing.T) {
	srv, m := newServer(t, serve.Options{Workers: 1, MaxSessions: 1})

	cases := []struct {
		name string
		do   func() *http.Response
		want int
	}{
		{"malformed body", func() *http.Response {
			resp, err := http.Post(srv.URL+"/sessions", "application/json", strings.NewReader("{nope"))
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, http.StatusBadRequest},
		{"unknown field", func() *http.Response {
			resp, err := http.Post(srv.URL+"/sessions", "application/json", strings.NewReader(`{"mix":"MIX3","budget_frc":0.6}`))
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, http.StatusBadRequest},
		{"invalid config", func() *http.Response {
			return doJSON(t, "POST", srv.URL+"/sessions", quickReq("NOPE", 4, 2, 0.6))
		}, http.StatusBadRequest},
		{"unknown session", func() *http.Response {
			return doJSON(t, "GET", srv.URL+"/sessions/zzz", nil)
		}, http.StatusNotFound},
		{"unknown session stream", func() *http.Response {
			return doJSON(t, "GET", srv.URL+"/sessions/zzz/stream", nil)
		}, http.StatusNotFound},
		{"bad stream cursor", func() *http.Response {
			st := decodeStatus(t, doJSON(t, "POST", srv.URL+"/sessions", quickReq("MID1", 4, 10_000, 0.6)))
			t.Cleanup(func() { doJSON(t, "DELETE", srv.URL+"/sessions/"+st.ID, nil).Body.Close() })
			return doJSON(t, "GET", srv.URL+"/sessions/"+st.ID+"/stream?from=-2", nil)
		}, http.StatusBadRequest},
		{"result while live", func() *http.Response {
			sts := m.List()
			return doJSON(t, "GET", srv.URL+"/sessions/"+sts[len(sts)-1].ID+"/result", nil)
		}, http.StatusConflict},
		{"recording absent", func() *http.Response {
			// Created without record: ErrNoRecording (404) fires before
			// the still-running guard.
			sts := m.List()
			return doJSON(t, "GET", srv.URL+"/sessions/"+sts[len(sts)-1].ID+"/recording", nil)
		}, http.StatusNotFound},
		{"too many sessions", func() *http.Response {
			return doJSON(t, "POST", srv.URL+"/sessions", quickReq("MID2", 4, 2, 0.6))
		}, http.StatusTooManyRequests},
		{"bad budget", func() *http.Response {
			sts := m.List()
			return doJSON(t, "POST", srv.URL+"/sessions/"+sts[len(sts)-1].ID+"/budget", map[string]float64{"budget_frac": 1.5})
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := tc.do()
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, bytes.TrimSpace(body))
		}
	}
}

// Draining over HTTP: once Shutdown begins, creates get 503.
func TestHTTPDrainRejectsCreates(t *testing.T) {
	m := serve.NewManager(serve.Options{Workers: 1})
	srv := httptest.NewServer(serve.NewHandler(m))
	defer srv.Close()
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp := doJSON(t, "POST", srv.URL+"/sessions", quickReq("MIX3", 4, 2, 0.6))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("create while draining: %d, want 503", resp.StatusCode)
	}
}

// Listing and liveness.
func TestHTTPListAndHealth(t *testing.T) {
	srv, _ := newServer(t, serve.Options{Workers: 1})
	var ids []string
	for i := 0; i < 3; i++ {
		st := decodeStatus(t, doJSON(t, "POST", srv.URL+"/sessions", quickReq("MID1", 4, 2, 0.6)))
		ids = append(ids, st.ID)
	}
	resp := doJSON(t, "GET", srv.URL+"/sessions", nil)
	defer resp.Body.Close()
	var list []serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("listed %d sessions, want 3", len(list))
	}
	for i, st := range list {
		if st.ID != ids[i] {
			t.Errorf("list[%d] = %s, want %s (creation order)", i, st.ID, ids[i])
		}
	}
	health := doJSON(t, "GET", srv.URL+"/healthz", nil)
	defer health.Body.Close()
	if health.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", health.StatusCode)
	}
}

// A stream opened on a session that then gets deleted ends cleanly
// rather than hanging — the watcher is woken by the close broadcast.
func TestHTTPStreamEndsOnDelete(t *testing.T) {
	srv, _ := newServer(t, serve.Options{Workers: 1})
	st := decodeStatus(t, doJSON(t, "POST", srv.URL+"/sessions", quickReq("MID1", 4, 10_000, 0.6)))

	stream := doJSON(t, "GET", srv.URL+"/sessions/"+st.ID+"/stream", nil)
	defer stream.Body.Close()
	// Read one record to ensure the stream is live, then delete.
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(nil, 1<<20)
	if !sc.Scan() {
		t.Fatalf("no first record: %v", sc.Err())
	}
	doJSON(t, "DELETE", srv.URL+"/sessions/"+st.ID, nil).Body.Close()
	for sc.Scan() {
		// drain whatever landed before the cancel
	}
	if err := sc.Err(); err != nil {
		t.Errorf("stream ended with transport error %v, want clean EOF", err)
	}
}

// isHeartbeatLine reports a stream keepalive — the {"heartbeat":true}
// line idle NDJSON streams emit. Golden comparators skip these: they
// carry no epoch data and their timing is wall-clock, not simulated.
func isHeartbeatLine(b []byte) bool {
	var hb struct {
		Heartbeat bool `json:"heartbeat"`
	}
	return json.Unmarshal(b, &hb) == nil && hb.Heartbeat
}

// An idle stream must emit {"heartbeat":true} keepalives: stream with a
// cursor ahead of production, so nothing lands at it while the session
// is still running, and count the heartbeats that arrive in the gap.
func TestHTTPStreamHeartbeat(t *testing.T) {
	srv, _ := newServer(t, serve.Options{Workers: 1, StreamHeartbeat: 2 * time.Millisecond})
	st := decodeStatus(t, doJSON(t, "POST", srv.URL+"/sessions", quickReq("MID1", 4, 4_000, 0.6)))

	stream := doJSON(t, "GET", srv.URL+"/sessions/"+st.ID+"/stream?from=4000", nil)
	defer stream.Body.Close()
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(nil, 1<<20)
	beats, records := 0, 0
	for sc.Scan() {
		if isHeartbeatLine(sc.Bytes()) {
			if got, want := string(sc.Bytes()), `{"heartbeat":true}`; got != want {
				t.Fatalf("heartbeat line %q, want %q", got, want)
			}
			beats++
			continue
		}
		records++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if beats == 0 {
		t.Error("idle stream emitted no heartbeats")
	}
	if records != 0 {
		t.Errorf("cursor-ahead stream emitted %d records, want 0", records)
	}
}

// Example-shaped smoke for the docs: the exact curl bodies from the
// quick-start parse and run.
func TestHTTPQuickstartBodies(t *testing.T) {
	srv, m := newServer(t, serve.Options{Workers: 1})
	resp, err := http.Post(srv.URL+"/sessions", "application/json",
		strings.NewReader(`{"mix":"MIX3","policy":"FastCap","budget_frac":0.6,"cores":4,"epochs":3,"epoch_ms":0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	st := decodeStatus(t, resp)
	if st.State.Terminal() {
		t.Fatalf("quick-start session born terminal: %+v", st)
	}
	recs, res := collect(t, m, st.ID)
	if len(recs) != 3 || len(res.Epochs) != 3 {
		t.Errorf("quick-start run: %d streamed, %d in result, want 3", len(recs), len(res.Epochs))
	}
	if res.PolicyName != "FastCap" {
		t.Errorf("policy %q", res.PolicyName)
	}
	// The run is over: a retarget can no longer take effect and must
	// conflict instead of returning a hollow 200.
	late := doJSON(t, "POST", srv.URL+"/sessions/"+st.ID+"/budget", map[string]float64{"budget_frac": 0.5})
	late.Body.Close()
	if late.StatusCode != http.StatusConflict {
		t.Errorf("retarget of a finished session: %d, want 409", late.StatusCode)
	}
}
